// Benchmarks regenerating each table and figure of the paper's evaluation
// (Section 6). Go benchmarks are used as the harness: each runs a scaled
// experiment and reports the headline numbers via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. cmd/pboxbench renders the same
// experiments as full text tables.
package pbox_test

import (
	"testing"
	"time"

	"pbox/internal/cases"
	"pbox/internal/experiments"
	"pbox/internal/stats"
)

// quickCfg keeps individual benches in the hundreds of milliseconds.
var quickCfg = experiments.Config{Duration: 200 * time.Millisecond}

// BenchmarkFig01UndoLogMotivation regenerates Figure 1's time series (client
// B's latency before/after the long transaction) and reports the
// before/after latency ratio.
func BenchmarkFig01UndoLogMotivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := cases.Fig1Series(1500 * time.Millisecond)
		before, after := splitSeries(pts, 2.0/3.0)
		if before > 0 {
			b.ReportMetric(after/before, "latency-ratio")
		}
	}
}

// BenchmarkFig02BufferPoolMotivation regenerates Figure 2 (OLTP throughput
// collapse when the dump task starts) and reports the throughput ratio.
func BenchmarkFig02BufferPoolMotivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := cases.Fig2Series(1500 * time.Millisecond)
		before, after := splitThroughput(pts, 1.0/3.0)
		if after > 0 {
			b.ReportMetric(before/after, "throughput-drop-x")
		}
	}
}

// BenchmarkFig03TicketsMotivation regenerates Figure 3 (reader latency jump
// when the fifth client connects) and reports the latency ratio.
func BenchmarkFig03TicketsMotivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := cases.Fig3Series(1500 * time.Millisecond)
		before, after := splitSeries(pts, 2.0/3.0)
		if before > 0 {
			b.ReportMetric(after/before, "latency-ratio")
		}
	}
}

// BenchmarkFig10MicroOps measures the pBox operation latencies of Figure 10.
func BenchmarkFig10MicroOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, row := range experiments.Fig10Micro(20_000) {
			b.ReportMetric(float64(row.Latency.Nanoseconds()), row.Op+"-ns")
		}
	}
}

// BenchmarkTable3InterferenceLevels measures every case's vanilla
// interference level (Table 3's last column).
func BenchmarkTable3InterferenceLevels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(quickCfg)
		var sum float64
		for _, r := range rows {
			b.ReportMetric(r.Level, r.Case.ID+"-level")
			sum += r.Level
		}
		b.ReportMetric(sum/float64(len(rows)), "avg-level")
	}
}

// BenchmarkFig11Mitigation runs the headline comparison: every case under
// pBox (the full five-solution matrix is in cmd/pboxbench -exp fig11) and
// reports pBox's per-case reduction ratio plus the aggregate.
func BenchmarkFig11Mitigation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Mitigation(quickCfg, nil, []cases.Solution{cases.SolutionPBox})
		helped := 0
		var sum float64
		for _, row := range rows {
			r := row.Solutions[cases.SolutionPBox].Reduction
			b.ReportMetric(r*100, row.Case.ID+"-reduction-pct")
			if r > 0 {
				helped++
				sum += r
			}
		}
		b.ReportMetric(float64(helped), "cases-helped")
		if helped > 0 {
			b.ReportMetric(sum/float64(helped)*100, "avg-reduction-pct")
		}
	}
}

// BenchmarkFig11Baselines runs the four baseline solutions on a
// representative case subset and reports their reduction ratios.
func BenchmarkFig11Baselines(b *testing.B) {
	ids := []string{"c1", "c5", "c11", "c16"}
	sols := []cases.Solution{cases.SolutionCgroup, cases.SolutionParties, cases.SolutionDarc, cases.SolutionRetro}
	for i := 0; i < b.N; i++ {
		rows := experiments.Mitigation(quickCfg, ids, sols)
		for _, row := range rows {
			for _, sol := range sols {
				b.ReportMetric(row.Solutions[sol].Reduction*100, row.Case.ID+"-"+string(sol)+"-pct")
			}
		}
	}
}

// BenchmarkFig12TailLatency reports pBox's p95 tail-latency reduction per
// case (Figure 12).
func BenchmarkFig12TailLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Mitigation(quickCfg, nil, []cases.Solution{cases.SolutionPBox})
		reducedTail := 0
		for _, row := range rows {
			sr := row.Solutions[cases.SolutionPBox]
			b.ReportMetric(sr.NormP95, row.Case.ID+"-p95-norm")
			if sr.NormP95 < 1 {
				reducedTail++
			}
		}
		b.ReportMetric(float64(reducedTail), "tail-reduced-cases")
	}
}

// BenchmarkFig13PenaltyActions reports the number of penalty actions and
// convergence steps for the eight Figure 13 cases.
func BenchmarkFig13PenaltyActions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.PenaltyInternals(quickCfg, nil) {
			b.ReportMetric(float64(r.Actions), r.CaseID+"-actions")
			b.ReportMetric(r.ConvergenceSteps, r.CaseID+"-conv-steps")
		}
	}
}

// BenchmarkFig14PenaltyLengths reports the penalty length distribution per
// case (Figure 14).
func BenchmarkFig14PenaltyLengths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.PenaltyInternals(quickCfg, nil) {
			b.ReportMetric(float64(r.PenaltyP50.Microseconds()), r.CaseID+"-p50-us")
			b.ReportMetric(float64(r.PenaltyMax.Microseconds()), r.CaseID+"-max-us")
		}
	}
}

// BenchmarkTable4FixedVsAdaptive compares fixed penalties against the
// adaptive design on the Table 4 cases.
func BenchmarkTable4FixedVsAdaptive(b *testing.B) {
	ids := []string{"c1", "c5", "c7", "c9"}
	for i := 0; i < b.N; i++ {
		adaptiveBest := 0
		rows := experiments.Table4(quickCfg, ids)
		for _, r := range rows {
			b.ReportMetric(float64(r.LatAdaptive.Microseconds()), r.CaseID+"-adaptive-us")
			b.ReportMetric(float64(r.LatShort.Microseconds()), r.CaseID+"-fixed1ms-us")
			b.ReportMetric(float64(r.LatLong.Microseconds()), r.CaseID+"-fixed10ms-us")
			if r.AdaptiveBeatsFixedShort && r.AdaptiveBeatsFixedLong {
				adaptiveBest++
			}
		}
		b.ReportMetric(float64(adaptiveBest), "adaptive-best-cases")
	}
}

// BenchmarkFig15RuleSensitivity sweeps the isolation rule from 25% to 125%
// on a case subset and reports the reduction ratio per level.
func BenchmarkFig15RuleSensitivity(b *testing.B) {
	ids := []string{"c1", "c5", "c12"}
	for i := 0; i < b.N; i++ {
		for _, row := range experiments.RuleSensitivity(quickCfg, ids, nil) {
			for j, lvl := range row.Levels {
				b.ReportMetric(row.Reductions[j]*100, row.CaseID+"-rule"+levelLabel(lvl)+"-pct")
			}
		}
	}
}

// BenchmarkFig16Overhead measures pBox's overhead under normal workloads
// for every app (Figure 16).
func BenchmarkFig16Overhead(b *testing.B) {
	cfg := experiments.Config{Duration: 150 * time.Millisecond}
	for i := 0; i < b.N; i++ {
		rows := experiments.Overhead(cfg, nil, []int{1, 16})
		perApp := map[string][]float64{}
		for _, r := range rows {
			perApp[r.Setting.App] = append(perApp[r.Setting.App], r.OverheadMean)
		}
		for app, ovs := range perApp {
			b.ReportMetric(stats.Mean(ovs)*100, app+"-overhead-pct")
		}
	}
}

// BenchmarkTable5Analyzer runs the static analyzer over the instrumented
// packages (Table 5).
func BenchmarkTable5Analyzer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5(".")
		if err != nil {
			b.Fatal(err)
		}
		manual, detected := 0, 0
		for _, r := range rows {
			manual += r.ManualEvents
			detected += r.Detected
		}
		b.ReportMetric(float64(manual), "manual-event-sites")
		b.ReportMetric(float64(detected), "detected-locations")
	}
}

// BenchmarkMistakeTolerance reruns MySQL cases with 10% of update sites
// dropped (Section 6.8).
func BenchmarkMistakeTolerance(b *testing.B) {
	ids := []string{"c1", "c5"}
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.MistakeTolerance(quickCfg, ids, 2) {
			b.ReportMetric(r.CorrectReduction*100, r.CaseID+"-correct-pct")
			b.ReportMetric(r.AvgDroppedReduction*100, r.CaseID+"-dropped-pct")
		}
	}
}

// splitSeries returns the mean of bucket means before and after the cut
// fraction.
func splitSeries(pts []stats.Point, cut float64) (before, after float64) {
	n := len(pts)
	if n == 0 {
		return 0, 0
	}
	k := int(float64(n) * cut)
	var bs, as float64
	var bn, an int
	for i, p := range pts {
		if p.Count == 0 {
			continue
		}
		if i < k {
			bs += p.Mean
			bn++
		} else {
			as += p.Mean
			an++
		}
	}
	if bn > 0 {
		before = bs / float64(bn)
	}
	if an > 0 {
		after = as / float64(an)
	}
	return before, after
}

// splitThroughput returns mean bucket counts before and after the cut.
func splitThroughput(pts []stats.Point, cut float64) (before, after float64) {
	n := len(pts)
	if n == 0 {
		return 0, 0
	}
	k := int(float64(n) * cut)
	var bs, as float64
	var bn, an int
	for i, p := range pts {
		if i < k {
			bs += float64(p.Count)
			bn++
		} else if i < n-1 { // drop the truncated final bucket
			as += float64(p.Count)
			an++
		}
	}
	if bn > 0 {
		before = bs / float64(bn)
	}
	if an > 0 {
		after = as / float64(an)
	}
	return before, after
}

func levelLabel(l float64) string {
	switch {
	case l < 0.3:
		return "25"
	case l < 0.6:
		return "50"
	case l < 0.8:
		return "75"
	case l < 1.1:
		return "100"
	default:
		return "125"
	}
}

// BenchmarkAblations compares pBox design variants (full, no freeze-time
// monitor, sub-poll minimum penalty, detection off) on the UNDO-log case —
// the ablation study DESIGN.md calls for.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Ablations(quickCfg, "c5") {
			b.ReportMetric(r.Reduction*100, r.Variant+"-reduction-pct")
		}
	}
}
