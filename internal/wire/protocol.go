// Package wire implements pboxd's batched binary ingestion protocol: the
// out-of-process equivalent of the in-process Worker.Update hot path, built
// so external applications can feed a Manager state events at millions of
// events per second over a handful of TCP connections (DESIGN.md §15).
//
// The encoding reuses the internal/capture codec vocabulary — unsigned
// varints for ids and enums, signed zigzag varints for deltas — inside
// length-prefixed frames:
//
//	stream   = preamble *frame
//	preamble = "PBOXWIRE" 0x01                      (client → server, once)
//	frame    = uvarint(len) payload                 (len ≤ MaxFrame)
//	payload  = *op
//	op       = 0x01 tenant ruleType metric float64bits(level) len label…   register
//	         | 0x02 tenant                                                 release
//	         | 0x03 tenant                                                 activate
//	         | 0x04 tenant                                                 freeze
//	         | 0x05 tenant flag                                            shared
//	         | 0x06 tenant                                                 select
//	         | 0x07 seq                                                    ping
//	         | 0x08 tenant                                                 hibernate
//	         | (0x10|EventType) zigzag(key − prevKey)                      event
//	reply    = uvarint(len) 0x07 seq events shedConn shedGlobal            pong
//
// Tenant ids are client-chosen uint64s, scoped to the connection. An event
// op applies to the tenant named by the last select op and encodes its
// resource key as a zigzag delta against the previous event op in the same
// frame — the chain resets at every frame boundary, exactly like the capture
// codec's per-segment timestamp chain, so any frame decodes standalone.
//
// Events are fire-and-forget; only ping produces a reply, written after
// every earlier op in its frame has been applied, so a ping round-trip is a
// full ingestion barrier (the differential tests and the daemon benchmark's
// latency probe both lean on this).
package wire

const (
	// Magic is the 8-byte stream preamble a client sends at connect.
	Magic = "PBOXWIRE"
	// Version is the protocol version byte following the magic.
	Version = 1
	// MaxFrame bounds a frame payload; larger length prefixes are a
	// protocol error (they are far more likely a desynchronized or hostile
	// peer than a real batch).
	MaxFrame = 1 << 20
)

// Op kinds. Like the capture codec's record kinds, existing values are never
// renumbered; new ops append.
const (
	opRegister  = 0x01
	opRelease   = 0x02
	opActivate  = 0x03
	opFreeze    = 0x04
	opShared    = 0x05
	opSelect    = 0x06
	opPing      = 0x07
	opHibernate = 0x08

	// opEventBase marks event ops: the low bits carry the core.EventType
	// (0x10 PREPARE, 0x11 ENTER, 0x12 HOLD, 0x13 UNHOLD).
	opEventBase = 0x10
	opEventMax  = opEventBase + 3
)
