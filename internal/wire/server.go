package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"

	"pbox/internal/core"
	"pbox/internal/exec"
)

// Config tunes a wire Server. The zero value admits everything.
type Config struct {
	// PerConnRate is the event-admission rate (events/sec) of each
	// connection's token bucket; <= 0 disables per-connection shedding.
	PerConnRate float64
	// PerConnBurst is the per-connection bucket depth; <= 0 selects a
	// default of 100ms of PerConnRate (floored at 1024).
	PerConnBurst int
	// GlobalRate is the event-admission ceiling (events/sec) across all
	// connections; <= 0 disables global shedding.
	GlobalRate float64
	// GlobalBurst is the global bucket depth; <= 0 selects the default.
	GlobalBurst int
	// Now supplies the admission clock (ns). Defaults to exec.Now; tests
	// inject a fake clock to drive the buckets deterministically.
	Now func() int64
}

// Stats is a point-in-time snapshot of the server's counters, exported on
// /metrics as the pbox_self_wire_* series and printed by `pboxctl self`.
type Stats struct {
	ConnsTotal  int64 // connections accepted over the server's life
	ConnsActive int64 // connections currently open (gauge)
	Frames      int64 // frames decoded
	Events      int64 // event ops admitted and applied
	ShedConn    int64 // event ops shed by a per-connection bucket
	ShedGlobal  int64 // event ops shed by the global ceiling
	Registers   int64 // tenants registered
	Pings       int64 // ping ops answered
	BindRefused int64 // tenant selects refused by a shared-thread penalty
	Errors      int64 // protocol errors (connection torn down)
}

// Server accepts wire-protocol connections and fans their batched events
// into the manager's Tier-A spool fast path: each connection owns one
// core.Worker (the protocol is sequential per connection, matching Worker's
// thread-local contract), so a single-tenant event run decodes straight into
// the worker spool with zero allocations per batch.
type Server struct {
	mgr    *core.Manager
	cfg    Config
	global globalBucket

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	connsTotal  atomic.Int64
	connsActive atomic.Int64
	frames      atomic.Int64
	events      atomic.Int64
	shedConn    atomic.Int64
	shedGlobal  atomic.Int64
	registers   atomic.Int64
	pings       atomic.Int64
	bindRefused atomic.Int64
	errors      atomic.Int64
}

// NewServer creates a wire server feeding mgr.
func NewServer(mgr *core.Manager, cfg Config) *Server {
	if cfg.Now == nil {
		cfg.Now = exec.Now
	}
	s := &Server{mgr: mgr, cfg: cfg, conns: make(map[net.Conn]struct{})}
	if cfg.GlobalRate > 0 {
		s.global.b = newBucket(cfg.GlobalRate, cfg.GlobalBurst, cfg.Now())
	}
	return s
}

// Stats returns the current counter snapshot (atomics only, safe to poll).
func (s *Server) Stats() Stats {
	return Stats{
		ConnsTotal:  s.connsTotal.Load(),
		ConnsActive: s.connsActive.Load(),
		Frames:      s.frames.Load(),
		Events:      s.events.Load(),
		ShedConn:    s.shedConn.Load(),
		ShedGlobal:  s.shedGlobal.Load(),
		Registers:   s.registers.Load(),
		Pings:       s.pings.Load(),
		BindRefused: s.bindRefused.Load(),
		Errors:      s.errors.Load(),
	}
}

// Serve accepts connections on l until Close. It returns nil after Close,
// or the first accept error otherwise.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("wire: server closed")
	}
	s.ln = l
	s.mu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.connsTotal.Add(1)
		s.connsActive.Add(1)
		go s.serveConn(nc)
	}
}

// Close stops accepting, closes every live connection, and waits for their
// handlers to finish draining (each handler flushes its worker spool on the
// way out, so no spooled tail event is lost — DESIGN.md §15).
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

func (s *Server) dropConn(nc net.Conn) {
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
	nc.Close()
	s.connsActive.Add(-1)
}

// serveConn runs one connection's decode loop. The frame buffer is reused
// across frames and ops decode in place, so a steady-state event batch costs
// zero allocations in the server.
func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(nc)
	br := bufio.NewReaderSize(nc, 64<<10)
	bw := bufio.NewWriterSize(nc, 4<<10)

	pre := make([]byte, len(Magic)+1)
	if _, err := io.ReadFull(br, pre); err != nil ||
		string(pre[:len(Magic)]) != Magic || pre[len(Magic)] != Version {
		s.errors.Add(1)
		return
	}

	w := s.mgr.NewWorker()
	tenants := make(map[uint64]*core.PBox)
	defer func() {
		// Teardown drains before it tears down: spooled tail events reach
		// the books, then every tenant this connection registered goes away.
		w.Flush()
		for _, p := range tenants {
			s.mgr.Release(p)
		}
	}()

	c := connState{
		bkt: newBucket(s.cfg.PerConnRate, s.cfg.PerConnBurst, s.cfg.Now()),
	}
	var frame []byte
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			if err != io.EOF {
				s.errors.Add(1)
			}
			return
		}
		if n > MaxFrame {
			s.errors.Add(1)
			return
		}
		if uint64(cap(frame)) < n {
			frame = make([]byte, n)
		}
		frame = frame[:n]
		if _, err := io.ReadFull(br, frame); err != nil {
			s.errors.Add(1)
			return
		}
		s.frames.Add(1)
		if err := s.applyFrame(frame, w, tenants, &c, bw); err != nil {
			s.errors.Add(1)
			return
		}
		if c.wrotePong {
			c.wrotePong = false
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// connState is the per-connection decode state owned by the connection
// goroutine (no locks).
type connState struct {
	bkt       bucket
	reserve   int  // chunked tokens taken from the global bucket
	skip      bool // selected tenant refused (shared-thread penalty): drop events
	wrotePong bool
}

var errProto = errors.New("wire: protocol error")

// applyFrame decodes and applies one frame payload. The event-key delta
// chain resets here, at the frame boundary.
func (s *Server) applyFrame(frame []byte, w *core.Worker, tenants map[uint64]*core.PBox, c *connState, bw *bufio.Writer) error {
	nowNs := s.cfg.Now()
	var lastKey int64
	off := 0
	// Local uvarint reader against the frame buffer (no allocation).
	u := func() (uint64, bool) {
		v, n := binary.Uvarint(frame[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	for off < len(frame) {
		op := frame[off]
		off++
		if op >= opEventBase && op <= opEventMax {
			d, n := binary.Varint(frame[off:])
			if n <= 0 {
				return errProto
			}
			off += n
			lastKey += d
			if c.skip {
				continue
			}
			// Admission: per-connection bucket first, then a chunk of the
			// global ceiling into the connection-local reserve.
			if s.cfg.PerConnRate > 0 && c.bkt.take(nowNs, 1) == 0 {
				s.shedConn.Add(1)
				continue
			}
			if s.global.enabled() {
				if c.reserve == 0 {
					c.reserve = s.global.take(nowNs, globalChunk)
				}
				if c.reserve == 0 {
					s.shedGlobal.Add(1)
					continue
				}
				c.reserve--
			}
			s.events.Add(1)
			w.Update(core.ResourceKey(lastKey), core.EventType(op-opEventBase))
			continue
		}
		switch op {
		case opRegister:
			tenant, ok1 := u()
			rt, ok2 := u()
			metric, ok3 := u()
			levelBits, ok4 := u()
			labelLen, ok5 := u()
			if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 || uint64(len(frame)-off) < labelLen {
				return errProto
			}
			label := string(frame[off : off+int(labelLen)])
			off += int(labelLen)
			if _, dup := tenants[tenant]; dup {
				return fmt.Errorf("wire: tenant %d already registered", tenant)
			}
			rule := core.IsolationRule{
				Type:   core.RuleType(rt),
				Level:  math.Float64frombits(levelBits),
				Metric: core.Metric(metric),
			}
			p, err := s.mgr.Create(rule)
			if err != nil {
				return err
			}
			if label != "" {
				s.mgr.SetLabel(p, label)
			}
			tenants[tenant] = p
			s.registers.Add(1)
		case opRelease:
			p, err := tenantArg(u, tenants)
			if err != nil {
				return err
			}
			if w.Current() == p {
				c.skip = true // selection is gone with the tenant
			}
			for t, q := range tenants {
				if q == p {
					delete(tenants, t)
				}
			}
			s.mgr.Release(p)
		case opActivate:
			p, err := tenantArg(u, tenants)
			if err != nil {
				return err
			}
			s.mgr.Activate(p)
		case opFreeze:
			p, err := tenantArg(u, tenants)
			if err != nil {
				return err
			}
			s.mgr.Freeze(p)
		case opShared:
			p, err := tenantArg(u, tenants)
			if err != nil {
				return err
			}
			flag, ok := u()
			if !ok {
				return errProto
			}
			s.mgr.SetShared(p, flag != 0)
		case opSelect:
			p, err := tenantArg(u, tenants)
			if err != nil {
				return err
			}
			if err := w.BindDirect(p); err != nil {
				// Shared-thread penalty: the tenant must stay queued, so
				// its events are dropped until a later select succeeds.
				s.bindRefused.Add(1)
				c.skip = true
				continue
			}
			c.skip = false
		case opHibernate:
			p, err := tenantArg(u, tenants)
			if err != nil {
				return err
			}
			// Refusals (mid-activity, cross-activity holds) are advisory:
			// hibernation is a storage hint, not a lifecycle edge.
			_ = s.mgr.Hibernate(p)
		case opPing:
			seq, ok := u()
			if !ok {
				return errProto
			}
			// The reply is written only after every earlier op in the frame
			// has been applied — and the worker spool is drained so the
			// events are in the books, making a ping round-trip a full
			// ingestion barrier.
			w.Flush()
			s.pings.Add(1)
			var pong [6 * binary.MaxVarintLen64]byte
			body := pong[binary.MaxVarintLen64:binary.MaxVarintLen64]
			body = append(body, opPong)
			body = binary.AppendUvarint(body, seq)
			body = binary.AppendUvarint(body, uint64(s.events.Load()))
			body = binary.AppendUvarint(body, uint64(s.shedConn.Load()))
			body = binary.AppendUvarint(body, uint64(s.shedGlobal.Load()))
			hdr := binary.AppendUvarint(pong[:0], uint64(len(body)))
			if _, err := bw.Write(hdr); err != nil {
				return err
			}
			if _, err := bw.Write(body); err != nil {
				return err
			}
			c.wrotePong = true
		default:
			return errProto
		}
	}
	return nil
}

// opPong is the server→client reply kind (same value space as the ops).
const opPong = opPing

// tenantArg decodes a tenant id and resolves it, failing the connection on
// an unknown id (a desynchronized feeder must not be misattributed).
func tenantArg(u func() (uint64, bool), tenants map[uint64]*core.PBox) (*core.PBox, error) {
	t, ok := u()
	if !ok {
		return nil, errProto
	}
	p := tenants[t]
	if p == nil {
		return nil, fmt.Errorf("wire: unknown tenant %d", t)
	}
	return p, nil
}
