package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"

	"pbox/internal/core"
)

// Client is the feeder side of the wire protocol: ops accumulate into the
// current frame and ship on Flush, when the frame fills, or before a Ping.
// Like core.Worker — whose role it mirrors on the far side — a Client is
// not safe for concurrent use.
type Client struct {
	nc      net.Conn
	bw      *bufio.Writer
	br      *bufio.Reader
	payload []byte
	lastKey int64
	events  int // event ops in the current frame
	// BatchLimit is the number of event ops that triggers an automatic
	// Flush. Larger batches amortize the syscall and length prefix further;
	// the default (4096) keeps frames well under MaxFrame.
	BatchLimit int
	err        error
}

// Dial connects to a wire server and sends the stream preamble.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc)
}

// NewClient wraps an established connection and sends the stream preamble.
func NewClient(nc net.Conn) (*Client, error) {
	c := &Client{
		nc:         nc,
		bw:         bufio.NewWriterSize(nc, 64<<10),
		br:         bufio.NewReaderSize(nc, 4<<10),
		BatchLimit: 4096,
	}
	if _, err := c.bw.WriteString(Magic); err != nil {
		nc.Close()
		return nil, err
	}
	if err := c.bw.WriteByte(Version); err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// Err returns the client's sticky error, set by the first failed operation.
func (c *Client) Err() error { return c.err }

// Close flushes the current frame and closes the connection.
func (c *Client) Close() error {
	flushErr := c.Flush()
	closeErr := c.nc.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// Flush ships the buffered frame (if any) and flushes the connection.
func (c *Client) Flush() error {
	if c.err != nil {
		return c.err
	}
	if len(c.payload) > 0 {
		var hdr [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(hdr[:], uint64(len(c.payload)))
		if _, err := c.bw.Write(hdr[:n]); err != nil {
			c.err = err
			return err
		}
		if _, err := c.bw.Write(c.payload); err != nil {
			c.err = err
			return err
		}
		c.payload = c.payload[:0]
		c.lastKey = 0
		c.events = 0
	}
	if err := c.bw.Flush(); err != nil {
		c.err = err
		return err
	}
	return nil
}

// Register creates a tenant with the given isolation rule and label. The
// tenant id is client-chosen and scoped to this connection; registering an
// id twice is a protocol error.
func (c *Client) Register(tenant uint64, rule core.IsolationRule, label string) {
	c.op(opRegister)
	c.u(tenant)
	c.u(uint64(rule.Type))
	c.u(uint64(rule.Metric))
	c.u(math.Float64bits(rule.Level))
	c.u(uint64(len(label)))
	c.payload = append(c.payload, label...)
}

// Release destroys the tenant's pBox.
func (c *Client) Release(tenant uint64) { c.op(opRelease); c.u(tenant) }

// Activate starts an activity in the tenant's pBox.
func (c *Client) Activate(tenant uint64) { c.op(opActivate); c.u(tenant) }

// Freeze ends the tenant's current activity.
func (c *Client) Freeze(tenant uint64) { c.op(opFreeze); c.u(tenant) }

// Hibernate asks the server to compact the idle tenant (advisory).
func (c *Client) Hibernate(tenant uint64) { c.op(opHibernate); c.u(tenant) }

// SetShared sets the tenant's shared-thread marking.
func (c *Client) SetShared(tenant uint64, shared bool) {
	c.op(opShared)
	c.u(tenant)
	var f uint64
	if shared {
		f = 1
	}
	c.u(f)
}

// Select directs subsequent Event calls at the tenant.
func (c *Client) Select(tenant uint64) { c.op(opSelect); c.u(tenant) }

// Event appends one state event for the selected tenant: one op byte plus a
// zigzag key delta — typically two or three bytes on the wire.
func (c *Client) Event(key core.ResourceKey, ev core.EventType) {
	c.op(byte(opEventBase + int(ev)))
	d := int64(key) - c.lastKey
	c.lastKey = int64(key)
	c.payload = binary.AppendVarint(c.payload, d)
	c.events++
	if c.events >= c.BatchLimit {
		c.Flush() // sticky error, checked by the next call or Err
	}
}

// Pong is the server's reply to a Ping: the echoed sequence number plus the
// server's admitted/shed event totals at reply time.
type Pong struct {
	Seq        uint64
	Events     int64
	ShedConn   int64
	ShedGlobal int64
}

// Ping flushes the current frame and waits for the server's reply — a full
// ingestion barrier: every event shipped before the ping is applied (not
// just received) when Ping returns.
func (c *Client) Ping(seq uint64) (Pong, error) {
	if c.err != nil {
		return Pong{}, c.err
	}
	c.op(opPing)
	c.u(seq)
	if err := c.Flush(); err != nil {
		return Pong{}, err
	}
	n, err := binary.ReadUvarint(c.br)
	if err != nil {
		c.err = err
		return Pong{}, err
	}
	if n > MaxFrame {
		c.err = errors.New("wire: oversized reply frame")
		return Pong{}, c.err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		c.err = err
		return Pong{}, err
	}
	var p Pong
	off := 0
	u := func() uint64 {
		v, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			c.err = errors.New("wire: corrupt reply frame")
			return 0
		}
		off += n
		return v
	}
	if len(buf) == 0 || buf[0] != opPong {
		c.err = fmt.Errorf("wire: unexpected reply op")
		return Pong{}, c.err
	}
	off = 1
	p.Seq = u()
	p.Events = int64(u())
	p.ShedConn = int64(u())
	p.ShedGlobal = int64(u())
	if c.err != nil {
		return Pong{}, c.err
	}
	if p.Seq != seq {
		c.err = fmt.Errorf("wire: pong seq %d, want %d", p.Seq, seq)
		return Pong{}, c.err
	}
	return p, nil
}

func (c *Client) op(k byte)  { c.payload = append(c.payload, k) }
func (c *Client) u(v uint64) { c.payload = binary.AppendUvarint(c.payload, v) }
