package wire

import (
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pbox/internal/core"
)

// startServer spins up a wire server on a loopback listener and returns its
// address plus a shutdown func.
func startServer(t *testing.T, mgr *core.Manager, cfg Config) (string, *Server, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := NewServer(mgr, cfg)
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	return ln.Addr().String(), s, func() {
		s.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

// waitFor polls cond for up to 2s — connection teardown on the server side
// is asynchronous past the TCP close.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWireRoundTrip(t *testing.T) {
	mgr := core.NewManager(core.Options{Sleep: func(time.Duration) {}})
	addr, s, stop := startServer(t, mgr, Config{})
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c.Register(1, core.DefaultRule(), "tenant-a")
	c.Register(2, core.DefaultRule(), "tenant-b")
	c.Activate(1)
	c.Select(1)
	// Keys with huge jumps exercise the zigzag delta chain, including the
	// reset at the frame boundary forced by the ping below.
	keys := []core.ResourceKey{7, 1 << 40, 9, 1 << 32}
	for round := 0; round < 50; round++ {
		for _, k := range keys {
			c.Event(k, core.Hold)
			c.Event(k, core.Unhold)
		}
	}
	pong, err := c.Ping(99)
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	if want := int64(50 * len(keys) * 2); pong.Events != want {
		t.Fatalf("pong events = %d, want %d", pong.Events, want)
	}
	c.Freeze(1)
	c.Activate(2)
	c.Select(2)
	c.Event(keys[0], core.Hold)
	c.Event(keys[0], core.Unhold)
	c.Freeze(2)
	c.Hibernate(1)
	if _, err := c.Ping(100); err != nil {
		t.Fatalf("ping: %v", err)
	}

	if got := mgr.Hibernated(); got != 1 {
		t.Fatalf("hibernated = %d, want 1", got)
	}
	snaps := mgr.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(snaps))
	}
	if snaps[0].Label != "tenant-a" || snaps[0].Activities != 1 || snaps[0].State != core.StateHibernated {
		t.Fatalf("tenant-a snapshot: %+v", snaps[0])
	}
	if snaps[1].Label != "tenant-b" || snaps[1].Activities != 1 {
		t.Fatalf("tenant-b snapshot: %+v", snaps[1])
	}
	st := s.Stats()
	if st.Registers != 2 || st.Pings != 2 || st.Events != int64(50*len(keys)*2+2) ||
		st.ShedConn != 0 || st.ShedGlobal != 0 || st.Errors != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.ConnsActive != 1 || st.ConnsTotal != 1 {
		t.Fatalf("conn stats: %+v", st)
	}

	// Closing the connection releases its tenants and drains its spool.
	c.Close()
	waitFor(t, "tenant release", func() bool { return mgr.Live() == 0 })
	waitFor(t, "conn gauge", func() bool { return s.Stats().ConnsActive == 0 })
}

func TestWireAdmissionShedding(t *testing.T) {
	// A frozen admission clock: buckets never refill, so exactly the burst
	// is admitted and everything after it sheds deterministically.
	frozen := func() int64 { return 0 }

	t.Run("per-conn", func(t *testing.T) {
		mgr := core.NewManager(core.Options{Sleep: func(time.Duration) {}})
		addr, s, stop := startServer(t, mgr, Config{PerConnRate: 1, PerConnBurst: 10, Now: frozen})
		defer stop()
		c, err := Dial(addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer c.Close()
		c.Register(1, core.DefaultRule(), "")
		c.Activate(1)
		c.Select(1)
		for i := 0; i < 100; i++ {
			c.Event(core.ResourceKey(5), core.Hold)
		}
		pong, err := c.Ping(1)
		if err != nil {
			t.Fatalf("ping: %v", err)
		}
		if pong.Events != 10 || pong.ShedConn != 90 || pong.ShedGlobal != 0 {
			t.Fatalf("pong: %+v", pong)
		}
		if st := s.Stats(); st.ShedConn != 90 {
			t.Fatalf("stats: %+v", st)
		}
	})

	t.Run("global", func(t *testing.T) {
		mgr := core.NewManager(core.Options{Sleep: func(time.Duration) {}})
		addr, s, stop := startServer(t, mgr, Config{GlobalRate: 1, GlobalBurst: 20, Now: frozen})
		defer stop()
		c, err := Dial(addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer c.Close()
		c.Register(1, core.DefaultRule(), "")
		c.Activate(1)
		c.Select(1)
		for i := 0; i < 100; i++ {
			c.Event(core.ResourceKey(5), core.Hold)
		}
		pong, err := c.Ping(1)
		if err != nil {
			t.Fatalf("ping: %v", err)
		}
		if pong.Events != 20 || pong.ShedGlobal != 80 || pong.ShedConn != 0 {
			t.Fatalf("pong: %+v", pong)
		}
		if st := s.Stats(); st.ShedGlobal != 80 {
			t.Fatalf("stats: %+v", st)
		}
	})
}

func TestWireProtocolErrors(t *testing.T) {
	mgr := core.NewManager(core.Options{Sleep: func(time.Duration) {}})
	addr, s, stop := startServer(t, mgr, Config{})
	defer stop()

	// Bad preamble.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	nc.Write([]byte("NOTPBOXW\x01"))
	waitFor(t, "preamble error", func() bool { return s.Stats().Errors >= 1 })
	nc.Close()

	// Unknown tenant tears the connection down.
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c.Activate(42)
	c.Flush()
	waitFor(t, "unknown-tenant error", func() bool { return s.Stats().Errors >= 2 })
	c.Close()
	waitFor(t, "conn teardown", func() bool { return s.Stats().ConnsActive == 0 })
}

// wireObs records the full observer callback stream for the differential
// test (the wire twin of core's recordingObserver).
type wireObs struct {
	mu     sync.Mutex
	events []wireObsEvent
}

type wireObsEvent struct {
	kind          string
	pbox, victim  int
	key           core.ResourceKey
	ev            core.EventType
	d             time.Duration
	defer_, exec_ int64
}

func (r *wireObs) add(e wireObsEvent) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *wireObs) PBoxCreated(id int, rule core.IsolationRule) {
	r.add(wireObsEvent{kind: "create", pbox: id})
}
func (r *wireObs) PBoxReleased(id int) { r.add(wireObsEvent{kind: "release", pbox: id}) }
func (r *wireObs) StateEvent(id int, key core.ResourceKey, ev core.EventType) {
	r.add(wireObsEvent{kind: "event", pbox: id, key: key, ev: ev})
}
func (r *wireObs) ActivityEnd(id int, deferNs, execNs int64) {
	r.add(wireObsEvent{kind: "activity", pbox: id, defer_: deferNs, exec_: execNs})
}
func (r *wireObs) Detection(noisy, victim int, key core.ResourceKey, projected float64) {
	r.add(wireObsEvent{kind: "detect", pbox: noisy, victim: victim, key: key})
}
func (r *wireObs) PenaltyAction(noisy, victim int, key core.ResourceKey, policy core.PolicyKind, length time.Duration) {
	r.add(wireObsEvent{kind: "action", pbox: noisy, victim: victim, key: key, d: length})
}
func (r *wireObs) PenaltyServed(id int, d time.Duration) {
	r.add(wireObsEvent{kind: "served", pbox: id, d: d})
}

func (r *wireObs) snapshot() []wireObsEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]wireObsEvent(nil), r.events...)
}

// feeder abstracts the two ingestion paths so one script drives both: the
// wire client against a server, and the equivalent direct Worker calls
// in-process. barrier() is the synchronization point after which the script
// advances the shared fake clock — on the wire side it is a ping round trip,
// which the protocol defines as a full ingestion barrier.
type feeder interface {
	register(id uint64, label string)
	activate(id uint64)
	freeze(id uint64)
	hibernate(id uint64)
	selectT(id uint64)
	event(key core.ResourceKey, ev core.EventType)
	release(id uint64)
	barrier()
}

type wireFeeder struct {
	t   *testing.T
	c   *Client
	seq uint64
}

func (f *wireFeeder) register(id uint64, label string) {
	f.c.Register(id, core.DefaultRule(), label)
}
func (f *wireFeeder) activate(id uint64)  { f.c.Activate(id) }
func (f *wireFeeder) freeze(id uint64)    { f.c.Freeze(id) }
func (f *wireFeeder) hibernate(id uint64) { f.c.Hibernate(id) }
func (f *wireFeeder) selectT(id uint64)   { f.c.Select(id) }
func (f *wireFeeder) event(key core.ResourceKey, ev core.EventType) {
	f.c.Event(key, ev)
}
func (f *wireFeeder) release(id uint64) { f.c.Release(id) }
func (f *wireFeeder) barrier() {
	f.seq++
	if _, err := f.c.Ping(f.seq); err != nil {
		f.t.Fatalf("barrier ping: %v", err)
	}
}

type inprocFeeder struct {
	t       *testing.T
	mgr     *core.Manager
	w       *core.Worker
	tenants map[uint64]*core.PBox
}

func (f *inprocFeeder) register(id uint64, label string) {
	p, err := f.mgr.Create(core.DefaultRule())
	if err != nil {
		f.t.Fatalf("Create: %v", err)
	}
	if label != "" {
		f.mgr.SetLabel(p, label)
	}
	f.tenants[id] = p
}
func (f *inprocFeeder) activate(id uint64)  { f.mgr.Activate(f.tenants[id]) }
func (f *inprocFeeder) freeze(id uint64)    { f.mgr.Freeze(f.tenants[id]) }
func (f *inprocFeeder) hibernate(id uint64) { _ = f.mgr.Hibernate(f.tenants[id]) }
func (f *inprocFeeder) selectT(id uint64) {
	if err := f.w.BindDirect(f.tenants[id]); err != nil {
		f.t.Fatalf("BindDirect: %v", err)
	}
}
func (f *inprocFeeder) event(key core.ResourceKey, ev core.EventType) {
	f.w.Update(key, ev)
}
func (f *inprocFeeder) release(id uint64) {
	f.mgr.Release(f.tenants[id])
	delete(f.tenants, id)
}
func (f *inprocFeeder) barrier() { f.w.Flush() }

// differentialScript is a contended two-tenant workload with lifecycle
// churn, hibernation, and cross-frame key-delta chains. The clock advances
// only at barriers, so both ingestion paths account every event at the same
// manager-clock timestamp.
func differentialScript(f feeder, advance func(time.Duration)) {
	f.register(1, "noisy")
	f.register(2, "victim")
	f.barrier()
	for round := 0; round < 30; round++ {
		key := core.ResourceKey(100 + round%5)
		f.activate(1)
		f.activate(2)
		f.selectT(1)
		f.event(key, core.Hold)
		f.selectT(2)
		f.event(key, core.Prepare)
		f.barrier()
		advance(5 * time.Millisecond)
		f.selectT(1)
		f.event(key, core.Unhold)
		f.selectT(2)
		f.event(key, core.Enter)
		f.barrier()
		advance(time.Millisecond)
		f.freeze(2)
		f.freeze(1)
		if round%3 == 0 {
			f.hibernate(1)
			f.hibernate(2)
		}
		f.barrier()
	}
	f.release(1)
	f.release(2)
	f.barrier()
}

// TestWireVsInProcessDifferentialVerdicts proves the wire tier is
// behaviorally invisible: the same scripted event sequence produces an
// identical observer stream (creations, state events, activity accounting,
// detections, penalty actions and serves) whether it is fed through the
// batched binary protocol or through direct in-process Worker calls, on
// managers sharing one fake clock.
func TestWireVsInProcessDifferentialVerdicts(t *testing.T) {
	var now atomic.Int64
	now.Store(1)
	opts := func(obs core.Observer) core.Options {
		return core.Options{
			Now:      func() int64 { return now.Load() },
			Sleep:    func(time.Duration) {},
			Observer: obs,
		}
	}
	advance := func(d time.Duration) { now.Add(int64(d)) }

	wobs := &wireObs{}
	wmgr := core.NewManager(opts(wobs))
	addr, _, stop := startServer(t, wmgr, Config{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	differentialScript(&wireFeeder{t: t, c: c}, advance)
	c.Close()
	stop()

	now.Store(1)
	iobs := &wireObs{}
	imgr := core.NewManager(opts(iobs))
	differentialScript(&inprocFeeder{
		t: t, mgr: imgr, w: imgr.NewWorker(), tenants: map[uint64]*core.PBox{},
	}, advance)

	wire, inproc := wobs.snapshot(), iobs.snapshot()
	if !slices.Equal(wire, inproc) {
		n := len(wire)
		if len(inproc) < n {
			n = len(inproc)
		}
		for i := 0; i < n; i++ {
			if wire[i] != inproc[i] {
				t.Fatalf("verdict streams diverge at %d:\nwire:      %+v\nin-process: %+v", i, wire[i], inproc[i])
			}
		}
		t.Fatalf("verdict stream lengths diverge: wire %d, in-process %d", len(wire), len(inproc))
	}
	if len(wire) == 0 {
		t.Fatal("empty observer streams: script produced no verdicts")
	}
	var detections int
	for _, e := range wire {
		if e.kind == "detect" {
			detections++
		}
	}
	if detections == 0 {
		t.Fatal("script produced no detections; differential is vacuous")
	}
}
