package wire

import "sync"

// Admission control (DESIGN.md §15): the wire front door is the one place an
// external, possibly misbehaving feeder meets the manager, so it carries its
// own load shedding — a token bucket per connection plus a global event-rate
// ceiling across all connections. Only event ops are metered; registration
// and lifecycle ops are rare, cheap, and semantically load-bearing (shedding
// a freeze would corrupt the tenant's activity accounting, shedding an event
// only loses one sample). A shed event is dropped before any manager work —
// no slot, spool, or shard traffic — and counted, never blocked on.

// bucket is a classic token bucket. Not safe for concurrent use; the
// per-connection instance is owned by its connection goroutine.
type bucket struct {
	rate   float64 // tokens per second; <= 0 disables the bucket
	burst  float64 // bucket depth
	tokens float64
	lastNs int64
}

func newBucket(rate float64, burst int, nowNs int64) bucket {
	if burst <= 0 {
		// Default depth: 100ms of line rate, floored so tiny rates still
		// admit bursts of a sane size.
		burst = int(rate / 10)
		if burst < 1024 {
			burst = 1024
		}
	}
	return bucket{rate: rate, burst: float64(burst), tokens: float64(burst), lastNs: nowNs}
}

// take grants up to n tokens at time nowNs and returns how many were
// granted. A disabled bucket grants everything.
func (b *bucket) take(nowNs int64, n int) int {
	if b.rate <= 0 {
		return n
	}
	if dt := nowNs - b.lastNs; dt > 0 {
		b.tokens += b.rate * float64(dt) / 1e9
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.lastNs = nowNs
	}
	g := n
	if g > int(b.tokens) {
		g = int(b.tokens)
	}
	if g > 0 {
		b.tokens -= float64(g)
	}
	return g
}

// globalBucket is the cross-connection event-rate ceiling. Connections take
// tokens in chunks (globalChunk) into a connection-local reserve, so the
// shared mutex is touched once per chunk rather than once per event; the
// ceiling can transiently overshoot by one chunk per connection, which is
// the usual chunked-limiter trade.
type globalBucket struct {
	mu sync.Mutex
	b  bucket
}

const globalChunk = 64

func (g *globalBucket) enabled() bool { return g.b.rate > 0 }

func (g *globalBucket) take(nowNs int64, n int) int {
	if !g.enabled() {
		return n
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.b.take(nowNs, n)
}
