package workload

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"time"
)

// KVConn is a client connection to a minikv TCP server (cmd/pboxd),
// speaking its newline-terminated text protocol. It is the network
// counterpart of the in-process closed-loop clients: the same Spec machinery
// drives it, but every request crosses a real socket, so the served process
// is the one paying the virtual-resource contention and the penalties.
type KVConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// DialKV connects to a minikv server and labels the connection's pBox with
// name (empty name skips the hello).
func DialKV(addr, name string) (*KVConn, error) {
	return dialKV(addr, name, false)
}

// DialKVBackground is DialKV for background tasks: the server gives the
// connection's pBox the relaxed background isolation goal.
func DialKVBackground(addr, name string) (*KVConn, error) {
	return dialKV(addr, name, true)
}

func dialKV(addr, name string, background bool) (*KVConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &KVConn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	if name != "" {
		hello := "hello " + name
		if background {
			hello += " bg"
		}
		resp, err := c.roundTrip(hello)
		if err != nil {
			conn.Close()
			return nil, err
		}
		if resp != "OK" {
			conn.Close()
			return nil, fmt.Errorf("workload: hello rejected: %q", resp)
		}
	}
	return c, nil
}

// roundTrip sends one command line and reads one response line.
func (c *KVConn) roundTrip(cmd string) (string, error) {
	if _, err := c.w.WriteString(cmd + "\n"); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

// Get reads key; it reports whether the key was resident.
func (c *KVConn) Get(key int) (bool, error) {
	resp, err := c.roundTrip(fmt.Sprintf("get %d", key))
	if err != nil {
		return false, err
	}
	switch resp {
	case "HIT":
		return true, nil
	case "MISS":
		return false, nil
	default:
		return false, fmt.Errorf("workload: unexpected get response %q", resp)
	}
}

// Set stores key.
func (c *KVConn) Set(key int) error {
	resp, err := c.roundTrip(fmt.Sprintf("set %d", key))
	if err != nil {
		return err
	}
	if resp != "OK" {
		return fmt.Errorf("workload: unexpected set response %q", resp)
	}
	return nil
}

// Ping checks liveness.
func (c *KVConn) Ping() error {
	resp, err := c.roundTrip("ping")
	if err != nil {
		return err
	}
	if resp != "PONG" {
		return fmt.Errorf("workload: unexpected ping response %q", resp)
	}
	return nil
}

// Close sends quit and closes the socket.
func (c *KVConn) Close() error {
	_, _ = c.roundTrip("quit")
	return c.conn.Close()
}

// KVTCPSpec describes one closed-loop TCP client against a minikv server.
type KVTCPSpec struct {
	// Name labels the client; it becomes the server-side pBox label.
	Name string
	// Addr is the server's TCP address.
	Addr string
	// Keys picks the key for each request.
	Keys func(*rand.Rand) int
	// SetFraction is the probability in [0,1] that a request is a set.
	SetFraction float64
	// Background marks the connection as a background task on the server
	// (relaxed isolation goal, like the paper's dump/purge activities).
	Background bool
	// Think, Start, Stop and Seed mirror the Spec fields.
	Think time.Duration
	Start time.Duration
	Stop  time.Duration
	Seed  int64
	// OnError, if non-nil, receives request errors (closed-loop clients
	// stop on the first error otherwise).
	OnError func(error)
}

// Spec converts the TCP client description into a runnable workload Spec:
// Setup dials (and labels the server-side pBox), Op issues one get or set,
// Teardown closes the connection. The returned Spec shares the Run machinery
// with the in-process clients, so recorders and time series attach the same
// way.
func (t KVTCPSpec) Spec() Spec {
	var conn *KVConn
	var dead bool
	keys := t.Keys
	if keys == nil {
		keys = UniformKeys(1024)
	}
	fail := func(err error) {
		dead = true
		if t.OnError != nil {
			t.OnError(err)
		}
	}
	return Spec{
		Name:  t.Name,
		Start: t.Start,
		Stop:  t.Stop,
		Think: t.Think,
		Seed:  t.Seed,
		Setup: func() {
			c, err := dialKV(t.Addr, t.Name, t.Background)
			if err != nil {
				fail(err)
				return
			}
			conn = c
		},
		Teardown: func() {
			if conn != nil {
				conn.Close()
			}
		},
		Op: func(r *rand.Rand) {
			if dead || conn == nil {
				return
			}
			key := keys(r)
			var err error
			if r.Float64() < t.SetFraction {
				err = conn.Set(key)
			} else {
				_, err = conn.Get(key)
			}
			if err != nil {
				fail(err)
			}
		},
	}
}
