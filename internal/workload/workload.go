// Package workload provides the load generators of the evaluation: closed-
// loop clients with think times and start/stop offsets (sysbench-, ab- and
// Mutilate-style), key-popularity distributions (uniform, Zipf — the
// Facebook USR/VAR workloads are Zipf-like), and weighted operation mixes
// (OLTP read-only / write-only / mixed).
package workload

import (
	"math/rand"
	"sync"
	"time"

	"pbox/internal/exec"
	"pbox/internal/stats"
)

// Spec describes one closed-loop client.
type Spec struct {
	// Name labels the client (also used by group-based baselines).
	Name string
	// Start is the offset after run start at which the client connects
	// (e.g. the fifth client of case c3 joining late).
	Start time.Duration
	// Stop is the offset at which the client disconnects; zero means it
	// runs to the end.
	Stop time.Duration
	// Think is the pause between consecutive requests.
	Think time.Duration
	// Op executes one request. The runner measures its latency.
	Op func(r *rand.Rand)
	// Recorder, if non-nil, receives every request latency.
	Recorder *stats.Recorder
	// Series, if non-nil, receives every latency in ms for time-series
	// figures.
	Series *stats.TimeSeries
	// Setup runs on the client goroutine before its first request
	// (connection establishment); Teardown after its last.
	Setup    func()
	Teardown func()
	// Seed fixes the client's PRNG; zero derives one from the name.
	Seed int64
}

// Run executes the given clients concurrently for the run duration and
// returns when all clients have stopped.
func Run(duration time.Duration, specs []Spec) {
	var wg sync.WaitGroup
	start := time.Now()
	for i := range specs {
		wg.Add(1)
		go func(s *Spec, idx int) {
			defer wg.Done()
			runClient(start, duration, s, idx)
		}(&specs[i], i)
	}
	wg.Wait()
}

func runClient(start time.Time, duration time.Duration, s *Spec, idx int) {
	seed := s.Seed
	if seed == 0 {
		seed = int64(idx+1) * 1_000_003
		for _, c := range s.Name {
			seed = seed*31 + int64(c)
		}
	}
	rng := rand.New(rand.NewSource(seed))

	if s.Start > 0 {
		time.Sleep(s.Start)
	}
	stop := duration
	if s.Stop > 0 && s.Stop < duration {
		stop = s.Stop
	}
	if s.Setup != nil {
		s.Setup()
	}
	if s.Teardown != nil {
		defer s.Teardown()
	}
	for time.Since(start) < stop {
		t0 := time.Now()
		s.Op(rng)
		lat := time.Since(t0)
		if s.Recorder != nil {
			s.Recorder.Record(lat)
		}
		if s.Series != nil {
			s.Series.Add(float64(lat) / float64(time.Millisecond))
		}
		if s.Think > 0 {
			exec.SleepPrecise(s.Think)
		}
	}
}

// UniformKeys returns a picker of uniformly distributed keys in [0, n).
func UniformKeys(n int) func(*rand.Rand) int {
	if n < 1 {
		n = 1
	}
	return func(r *rand.Rand) int { return r.Intn(n) }
}

// SkewedKeys returns a picker of power-law-skewed keys in [0, n): low keys
// are hot, the tail is cold. exponent >= 1 controls the skew (3 gives a
// strongly skewed distribution). The Facebook USR and VAR key-value
// workloads used for the Memcached evaluation are highly skewed; this
// allocation-free power-law pick approximates them.
func SkewedKeys(n int, exponent float64) func(*rand.Rand) int {
	if n < 1 {
		n = 1
	}
	if exponent < 1 {
		exponent = 1
	}
	return func(r *rand.Rand) int {
		u := r.Float64()
		v := u
		for e := 1.0; e < exponent; e++ {
			v *= u
		}
		k := int(v * float64(n))
		if k >= n {
			k = n - 1
		}
		return k
	}
}

// Mix selects among weighted operations.
type Mix struct {
	ops     []func(*rand.Rand)
	weights []int
	total   int
}

// NewMix builds an empty mix.
func NewMix() *Mix { return &Mix{} }

// Add registers op with the given weight and returns the mix for chaining.
func (m *Mix) Add(weight int, op func(*rand.Rand)) *Mix {
	if weight > 0 {
		m.ops = append(m.ops, op)
		m.weights = append(m.weights, weight)
		m.total += weight
	}
	return m
}

// Op returns a single operation function that draws from the mix.
func (m *Mix) Op() func(*rand.Rand) {
	return func(r *rand.Rand) {
		if m.total == 0 {
			return
		}
		pick := r.Intn(m.total)
		for i, w := range m.weights {
			if pick < w {
				m.ops[i](r)
				return
			}
			pick -= w
		}
	}
}

// Sequential returns a picker walking keys 0..n-1 cyclically (table scans,
// mysqldump-style sweeps).
func Sequential(n int) func(*rand.Rand) int {
	if n < 1 {
		n = 1
	}
	var mu sync.Mutex
	next := 0
	return func(*rand.Rand) int {
		mu.Lock()
		k := next
		next = (next + 1) % n
		mu.Unlock()
		return k
	}
}
