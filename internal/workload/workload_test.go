package workload

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"pbox/internal/stats"
)

func TestRunExecutesClients(t *testing.T) {
	var a, b atomic.Int64
	rec := stats.NewRecorder(256)
	Run(50*time.Millisecond, []Spec{
		{
			Name: "a", Think: time.Millisecond, Recorder: rec,
			Op: func(*rand.Rand) { a.Add(1) },
		},
		{
			Name: "b", Think: time.Millisecond,
			Op: func(*rand.Rand) { b.Add(1) },
		},
	})
	if a.Load() == 0 || b.Load() == 0 {
		t.Fatalf("clients did not run: a=%d b=%d", a.Load(), b.Load())
	}
	if int(a.Load()) != rec.Count() {
		t.Fatalf("recorder count %d != ops %d", rec.Count(), a.Load())
	}
}

func TestRunHonorsStartAndStop(t *testing.T) {
	var early, late atomic.Int64
	start := time.Now()
	var lateFirst atomic.Int64
	Run(60*time.Millisecond, []Spec{
		{
			Name: "early", Think: time.Millisecond, Stop: 20 * time.Millisecond,
			Op: func(*rand.Rand) { early.Add(1) },
		},
		{
			Name: "late", Think: time.Millisecond, Start: 30 * time.Millisecond,
			Op: func(*rand.Rand) {
				if late.Add(1) == 1 {
					lateFirst.Store(int64(time.Since(start)))
				}
			},
		},
	})
	if early.Load() == 0 || late.Load() == 0 {
		t.Fatal("clients did not run")
	}
	if d := time.Duration(lateFirst.Load()); d < 30*time.Millisecond {
		t.Fatalf("late client started at %v, want >= 30ms", d)
	}
}

func TestRunSetupTeardown(t *testing.T) {
	var setup, teardown atomic.Int64
	Run(10*time.Millisecond, []Spec{{
		Name:     "c",
		Think:    time.Millisecond,
		Setup:    func() { setup.Add(1) },
		Teardown: func() { teardown.Add(1) },
		Op:       func(*rand.Rand) {},
	}})
	if setup.Load() != 1 || teardown.Load() != 1 {
		t.Fatalf("setup=%d teardown=%d, want 1/1", setup.Load(), teardown.Load())
	}
}

func TestDeterministicSeeding(t *testing.T) {
	draw := func() []int {
		var vals []int
		done := make(chan struct{})
		Run(5*time.Millisecond, []Spec{{
			Name: "fixed", Seed: 42, Think: time.Millisecond,
			Op: func(r *rand.Rand) {
				if len(vals) < 3 {
					vals = append(vals, r.Intn(1000))
				}
			},
		}})
		close(done)
		return vals
	}
	a, b := draw(), draw()
	for i := range a {
		if i < len(b) && a[i] != b[i] {
			t.Fatalf("seeded sequences differ: %v vs %v", a, b)
		}
	}
}

func TestUniformKeysInRange(t *testing.T) {
	pick := UniformKeys(10)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		k := pick(r)
		if k < 0 || k >= 10 {
			t.Fatalf("key %d out of range", k)
		}
	}
	if UniformKeys(0)(r) != 0 {
		t.Fatal("degenerate picker must return 0")
	}
}

func TestSkewedKeysBias(t *testing.T) {
	pick := SkewedKeys(100, 3)
	r := rand.New(rand.NewSource(7))
	lowHalf := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		k := pick(r)
		if k < 0 || k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
		if k < 50 {
			lowHalf++
		}
	}
	// Cubic skew sends ~79% of picks below the median key.
	if float64(lowHalf)/n < 0.6 {
		t.Fatalf("skew too weak: %d/%d in low half", lowHalf, n)
	}
}

func TestMixWeights(t *testing.T) {
	var a, b int
	op := NewMix().
		Add(9, func(*rand.Rand) { a++ }).
		Add(1, func(*rand.Rand) { b++ }).
		Op()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 10_000; i++ {
		op(r)
	}
	frac := float64(a) / float64(a+b)
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("mix fraction = %v, want ≈0.9", frac)
	}
	NewMix().Op()(r) // empty mix must not panic
	// Zero-weight ops are ignored.
	var c int
	NewMix().Add(0, func(*rand.Rand) { c++ }).Op()(r)
	if c != 0 {
		t.Fatal("zero-weight op executed")
	}
}

func TestSequentialCycles(t *testing.T) {
	pick := Sequential(3)
	r := rand.New(rand.NewSource(1))
	got := []int{pick(r), pick(r), pick(r), pick(r)}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", got, want)
		}
	}
}

// TestPropPickersInRange: all key pickers stay in [0, n) for any n.
func TestPropPickersInRange(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		size := int(n%50) + 1
		r := rand.New(rand.NewSource(seed))
		u := UniformKeys(size)
		s := SkewedKeys(size, 3)
		q := Sequential(size)
		for i := 0; i < 50; i++ {
			for _, k := range []int{u(r), s(r), q(r)} {
				if k < 0 || k >= size {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
