package stats

import (
	"encoding/json"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Record(time.Duration(base*100+j) * time.Microsecond)
			}
		}(i)
	}
	wg.Wait()
	if r.Count() != 800 {
		t.Fatalf("count = %d, want 800", r.Count())
	}
	if len(r.Snapshot()) != 800 {
		t.Fatalf("snapshot length = %d", len(r.Snapshot()))
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond // 1..100ms
	}
	s := Summarize(samples)
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Fatalf("mean = %v, want 50.5ms", s.Mean)
	}
	if s.P50 != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", s.P50)
	}
	if s.P95 != 95*time.Millisecond {
		t.Fatalf("p95 = %v, want 95ms", s.P95)
	}
	if s.P99 != 99*time.Millisecond {
		t.Fatalf("p99 = %v, want 99ms", s.P99)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestPercentileEdges(t *testing.T) {
	sorted := []time.Duration{1, 2, 3, 4, 5}
	if got := Percentile(sorted, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(sorted, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
}

func TestInterferenceMath(t *testing.T) {
	// Paper example (case c2): Ti=23.95ms, To=21.67ms, Ts=21.99ms → r≈86%.
	ti := 23950 * time.Microsecond
	to := 21670 * time.Microsecond
	ts := 21990 * time.Microsecond
	r := ReductionRatio(ti, to, ts)
	if r < 0.85 || r > 0.87 {
		t.Fatalf("reduction = %v, want ≈0.86", r)
	}
	p := InterferenceLevel(ti, to)
	if p < 0.10 || p > 0.11 {
		t.Fatalf("level = %v, want ≈0.105", p)
	}
	if n := NormalizedLatency(ts, ti); n < 0.91 || n > 0.92 {
		t.Fatalf("normalized = %v, want ≈0.918", n)
	}
}

func TestReductionRatioDegenerate(t *testing.T) {
	if r := ReductionRatio(100, 100, 50); r != 0 {
		t.Fatalf("degenerate reduction = %v, want 0", r)
	}
	if p := InterferenceLevel(100, 0); p != 0 {
		t.Fatalf("degenerate level = %v, want 0", p)
	}
	if n := NormalizedLatency(50, 0); n != 0 {
		t.Fatalf("degenerate normalized = %v, want 0", n)
	}
}

func TestReductionRatioCanExceedOne(t *testing.T) {
	// Ts below To: the paper reports reductions up to 113.6%.
	if r := ReductionRatio(200, 100, 90); r <= 1 {
		t.Fatalf("reduction = %v, want > 1", r)
	}
	// Ts above Ti: negative reduction (made it worse).
	if r := ReductionRatio(200, 100, 300); r >= 0 {
		t.Fatalf("reduction = %v, want < 0", r)
	}
}

func TestTimeSeriesBuckets(t *testing.T) {
	ts := NewTimeSeries(10 * time.Millisecond)
	ts.Add(1)
	ts.Add(3)
	time.Sleep(12 * time.Millisecond)
	ts.Add(10)
	pts := ts.Points()
	if len(pts) < 2 {
		t.Fatalf("points = %d, want >= 2", len(pts))
	}
	if pts[0].Count != 2 || pts[0].Mean != 2 {
		t.Fatalf("bucket0 = %+v, want count 2 mean 2", pts[0])
	}
	last := pts[len(pts)-1]
	if last.Count != 1 || last.Mean != 10 {
		t.Fatalf("last bucket = %+v", last)
	}
}

func TestMeanHelpers(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("empty mean = %v", m)
	}
	if m := MeanDuration([]time.Duration{2, 4}); m != 3 {
		t.Fatalf("mean duration = %v", m)
	}
	if m := MeanDuration(nil); m != 0 {
		t.Fatalf("empty mean duration = %v", m)
	}
	if s := FormatPct(0.863); s != "86.3%" {
		t.Fatalf("format = %q", s)
	}
}

// TestPropSummaryOrdering: for any sample set, min <= p50 <= p95 <= p99 <=
// max and mean within [min, max].
func TestPropSummaryOrdering(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v)
		}
		s := Summarize(samples)
		ordered := s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max
		meanOK := s.Mean >= s.Min && s.Mean <= s.Max
		return ordered && meanOK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropPercentileMatchesSort: the nearest-rank percentile equals direct
// index computation on the sorted data.
func TestPropPercentileMatchesSort(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := float64(pRaw%99) + 1
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		got := Percentile(samples, p)
		rank := int(math.Ceil(p / 100 * float64(len(samples))))
		if rank < 1 {
			rank = 1
		}
		return got == samples[rank-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	in := Summary{
		Count: 1234,
		Mean:  1500 * time.Microsecond,
		P50:   time.Millisecond,
		P95:   7*time.Millisecond + 250*time.Microsecond,
		P99:   42 * time.Millisecond,
		Max:   time.Second + 13*time.Nanosecond,
		Min:   time.Nanosecond,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	// The wire form is human-readable duration strings.
	if !strings.Contains(string(data), `"mean":"1.5ms"`) {
		t.Fatalf("wire form not a duration string: %s", data)
	}
	var out Summary
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if out != in {
		t.Fatalf("round trip changed the summary:\n in=%+v\nout=%+v", in, out)
	}
}

func TestSummaryJSONZeroAndErrors(t *testing.T) {
	var zero Summary
	data, err := json.Marshal(zero)
	if err != nil {
		t.Fatalf("Marshal zero: %v", err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal zero: %v", err)
	}
	if back != zero {
		t.Fatalf("zero summary round trip: %+v", back)
	}
	// Missing fields decode as zero durations.
	if err := json.Unmarshal([]byte(`{"count":3}`), &back); err != nil {
		t.Fatalf("partial decode: %v", err)
	}
	if back.Count != 3 || back.Mean != 0 {
		t.Fatalf("partial decode: %+v", back)
	}
	// Garbage durations are rejected.
	if err := json.Unmarshal([]byte(`{"mean":"banana"}`), &back); err == nil {
		t.Fatal("bad duration should fail to decode")
	}
}

func TestBucketCounts(t *testing.T) {
	bounds := []time.Duration{time.Microsecond, time.Millisecond, time.Second}
	samples := []time.Duration{
		500 * time.Nanosecond,  // bucket 0
		time.Microsecond,       // bucket 0 (bounds are inclusive upper limits)
		2 * time.Microsecond,   // bucket 1
		time.Millisecond,       // bucket 1
		500 * time.Millisecond, // bucket 2
		2 * time.Second,        // overflow
	}
	got := BucketCounts(samples, bounds)
	want := []int{2, 2, 1, 1}
	if len(got) != len(want) {
		t.Fatalf("BucketCounts returned %d buckets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	// Totals preserved.
	sum := 0
	for _, c := range got {
		sum += c
	}
	if sum != len(samples) {
		t.Fatalf("bucket totals = %d, want %d", sum, len(samples))
	}
	// Empty samples, empty bounds.
	if got := BucketCounts(nil, bounds); len(got) != 4 {
		t.Fatalf("nil samples: %v", got)
	}
	if got := BucketCounts(samples, nil); len(got) != 1 || got[0] != len(samples) {
		t.Fatalf("nil bounds should put everything in overflow: %v", got)
	}
}

func TestDefaultLatencyBucketsAscending(t *testing.T) {
	b := DefaultLatencyBuckets()
	if len(b) == 0 {
		t.Fatal("no default buckets")
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %v <= %v", i, b[i], b[i-1])
		}
	}
	// Callers may mutate the returned slice; a second call must be pristine.
	b[0] = time.Hour
	if DefaultLatencyBuckets()[0] == time.Hour {
		t.Fatal("DefaultLatencyBuckets returns a shared slice")
	}
}
