// Package stats implements the measurement machinery used throughout the
// pBox evaluation: concurrent latency recorders, percentile computation,
// time-series sampling for the motivation figures, and the interference
// arithmetic from Section 6.2 of the paper (interference level p, residual
// level q, reduction ratio r).
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Recorder collects latency samples from concurrent clients. It is safe for
// use from multiple goroutines.
type Recorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// NewRecorder returns an empty Recorder with capacity hint n.
func NewRecorder(n int) *Recorder {
	return &Recorder{samples: make([]time.Duration, 0, n)}
}

// Record appends one latency sample.
func (r *Recorder) Record(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

// Count returns the number of samples recorded so far.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Snapshot returns a copy of the samples recorded so far.
func (r *Recorder) Snapshot() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]time.Duration, len(r.samples))
	copy(out, r.samples)
	return out
}

// Summary reduces the recorded samples to the statistics the evaluation
// reports.
func (r *Recorder) Summary() Summary {
	return Summarize(r.Snapshot())
}

// Summary holds the latency statistics reported in the evaluation figures.
type Summary struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration // Figure 12 uses the 95th percentile
	P99   time.Duration // Section 6.6 reports the 99th percentile
	Max   time.Duration
	Min   time.Duration
}

// summaryJSON is the wire form of Summary: durations as strings in Go
// duration syntax ("1.5ms"), which survives a marshal/unmarshal round trip
// exactly and stays readable in curl output.
type summaryJSON struct {
	Count int    `json:"count"`
	Mean  string `json:"mean"`
	P50   string `json:"p50"`
	P95   string `json:"p95"`
	P99   string `json:"p99"`
	Max   string `json:"max"`
	Min   string `json:"min"`
}

// MarshalJSON implements json.Marshaler with human-readable durations.
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(summaryJSON{
		Count: s.Count,
		Mean:  s.Mean.String(),
		P50:   s.P50.String(),
		P95:   s.P95.String(),
		P99:   s.P99.String(),
		Max:   s.Max.String(),
		Min:   s.Min.String(),
	})
}

// UnmarshalJSON implements json.Unmarshaler, inverting MarshalJSON.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var w summaryJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	parse := func(v string, dst *time.Duration) error {
		if v == "" {
			*dst = 0
			return nil
		}
		d, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("stats: bad duration %q: %w", v, err)
		}
		*dst = d
		return nil
	}
	s.Count = w.Count
	for _, f := range []struct {
		v   string
		dst *time.Duration
	}{
		{w.Mean, &s.Mean}, {w.P50, &s.P50}, {w.P95, &s.P95},
		{w.P99, &s.P99}, {w.Max, &s.Max}, {w.Min, &s.Min},
	} {
		if err := parse(f.v, f.dst); err != nil {
			return err
		}
	}
	return nil
}

// DefaultLatencyBuckets returns the fixed histogram bucket upper bounds used
// by the telemetry subsystem, spanning the reproduction's µs-to-second
// operating range (sub-ms virtual-resource holds up to full experiment-run
// latencies).
func DefaultLatencyBuckets() []time.Duration {
	return []time.Duration{
		10 * time.Microsecond,
		25 * time.Microsecond,
		50 * time.Microsecond,
		100 * time.Microsecond,
		250 * time.Microsecond,
		500 * time.Microsecond,
		1 * time.Millisecond,
		2500 * time.Microsecond,
		5 * time.Millisecond,
		10 * time.Millisecond,
		25 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		250 * time.Millisecond,
		500 * time.Millisecond,
		time.Second,
	}
}

// BucketCounts tallies samples into the given ascending bucket bounds,
// returning len(bounds)+1 counts (the last is the overflow bucket). It is
// the offline counterpart of the telemetry histogram, for summarizing
// recorded samples in reports.
func BucketCounts(samples []time.Duration, bounds []time.Duration) []int {
	counts := make([]int, len(bounds)+1)
	for _, s := range samples {
		i := sort.Search(len(bounds), func(j int) bool { return s <= bounds[j] })
		counts[i]++
	}
	return counts
}

// Summarize computes a Summary over the given samples.
func Summarize(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, s := range sorted {
		sum += s
	}
	return Summary{
		Count: len(sorted),
		Mean:  sum / time.Duration(len(sorted)),
		P50:   Percentile(sorted, 50),
		P95:   Percentile(sorted, 95),
		P99:   Percentile(sorted, 99),
		Max:   sorted[len(sorted)-1],
		Min:   sorted[0],
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) of sorted samples
// using nearest-rank. The input must already be sorted ascending.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// InterferenceLevel computes p = Ti/To - 1, the severity metric in the last
// column of Table 3. Ti is the victim's latency with interference, To
// without.
func InterferenceLevel(ti, to time.Duration) float64 {
	if to <= 0 {
		return 0
	}
	return float64(ti)/float64(to) - 1
}

// ReductionRatio computes r = (Ti - Ts) / (Ti - To), the interference
// reduction ratio from Section 6.2. Ts is the victim's latency running under
// the evaluated solution. Values can exceed 1 (the paper reports up to
// 113.6%) when the solution lands below the interference-free baseline, and
// can be negative when the solution makes the interference worse.
func ReductionRatio(ti, to, ts time.Duration) float64 {
	den := float64(ti - to)
	if den <= 0 {
		return 0
	}
	return float64(ti-ts) / den
}

// NormalizedLatency computes Ts/Ti, the y-axis of Figure 11 and Figure 12.
func NormalizedLatency(ts, ti time.Duration) float64 {
	if ti <= 0 {
		return 0
	}
	return float64(ts) / float64(ti)
}

// TimeSeries samples a metric over wall-clock time; it backs the motivation
// figures (latency or throughput vs. time).
type TimeSeries struct {
	mu     sync.Mutex
	start  time.Time
	bucket time.Duration
	sums   []float64
	counts []int
}

// NewTimeSeries creates a series with the given bucket width.
func NewTimeSeries(bucket time.Duration) *TimeSeries {
	return &TimeSeries{start: time.Now(), bucket: bucket}
}

// Add records value v at the current time.
func (t *TimeSeries) Add(v float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := int(time.Since(t.start) / t.bucket)
	for len(t.sums) <= idx {
		t.sums = append(t.sums, 0)
		t.counts = append(t.counts, 0)
	}
	t.sums[idx] += v
	t.counts[idx]++
}

// Point is one bucket of a TimeSeries.
type Point struct {
	T     time.Duration // bucket start offset
	Mean  float64       // mean of values in the bucket
	Count int           // number of values (throughput per bucket)
}

// Points returns the bucketed series.
func (t *TimeSeries) Points() []Point {
	t.mu.Lock()
	defer t.mu.Unlock()
	pts := make([]Point, 0, len(t.sums))
	for i := range t.sums {
		p := Point{T: time.Duration(i) * t.bucket, Count: t.counts[i]}
		if t.counts[i] > 0 {
			p.Mean = t.sums[i] / float64(t.counts[i])
		}
		pts = append(pts, p)
	}
	return pts
}

// Mean returns the arithmetic mean of a float slice (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanDuration returns the arithmetic mean of durations (0 for empty input).
func MeanDuration(xs []time.Duration) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	var s time.Duration
	for _, x := range xs {
		s += x
	}
	return s / time.Duration(len(xs))
}

// FormatPct renders a ratio as a signed percentage string ("86.3%").
func FormatPct(r float64) string {
	return fmt.Sprintf("%.1f%%", r*100)
}
