package lint_test

import (
	"testing"

	"pbox/internal/lint/eventpair"
	"pbox/internal/lint/linttest"
)

func TestEventPair(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), "eventpair", eventpair.Analyzer)
}

// TestEventPairCrossPackage emits Hold/Unhold through xeventdeps wrappers;
// the emission summaries expand at the call sites with substituted
// arguments.
func TestEventPairCrossPackage(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), "xeventpair", eventpair.Analyzer)
}
