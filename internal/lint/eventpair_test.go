package lint_test

import (
	"testing"

	"pbox/internal/lint/eventpair"
	"pbox/internal/lint/linttest"
)

func TestEventPair(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), "eventpair", eventpair.Analyzer)
}
