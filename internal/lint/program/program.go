// Package program is the whole-program layer of the pboxlint engine
// (DESIGN.md §14). The per-package passes of the original suite could only
// see call chains that stayed inside one package: a telemetry handler that
// re-enters internal/core with a lock held, or a flightrec helper that
// sweeps spools from a snapshot reader, was invisible. This package builds
// one module-wide view from the loader's packages — every function
// declaration indexed across package boundaries, the static call graph over
// them, its strongly-connected components in bottom-up order — so passes can
// compute SCC-ordered function summaries that cross the
// internal/telemetry → internal/core, internal/flightrec → internal/core,
// and internal/capture → internal/core edges.
//
// Object identity across packages is the subtle part: when the loader
// type-checks package A from source, A's view of an imported package B comes
// from compiled export data, so the *types.Func for B.Foo seen from A is a
// different object than the one produced by B's own source check. The index
// therefore keys functions by types.Func.FullName (which embeds the package
// path and receiver), bridging export-data and source objects of the same
// function.
package program

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"pbox/internal/lint/loader"
)

// Func is one declared function or method of the program, with its body and
// the package context needed to resolve names inside it.
type Func struct {
	// Obj is the source-checked object from the defining package.
	Obj *types.Func
	// Decl is the declaration; Decl.Body is non-nil (bodyless declarations
	// are not indexed — there is nothing to summarize).
	Decl *ast.FuncDecl
	// Pkg is the defining package; Pkg.Info resolves identifiers in Decl.
	Pkg *loader.Package

	// Callees are the statically-resolved program functions this one calls,
	// deduplicated, in deterministic order.
	Callees []*Func
	// Callers is the reverse edge set, same ordering guarantees.
	Callers []*Func

	key string
	scc int // index into Program.sccs
}

// Name returns the bare function name.
func (f *Func) Name() string { return f.Obj.Name() }

// FullName returns the package-qualified name (the index key).
func (f *Func) FullName() string { return f.key }

// Program is the module-wide analysis view shared by every pass of one
// driver run.
type Program struct {
	// Pkgs are the loaded packages, in loader order.
	Pkgs []*loader.Package

	funcs map[string]*Func
	order []*Func // deterministic whole-program order (sorted by key)
	sccs  [][]*Func
	cache map[string]any
}

// Build indexes every function declaration of pkgs, resolves the static
// call graph, and computes its SCCs.
func Build(pkgs []*loader.Package) *Program {
	p := &Program{
		Pkgs:  pkgs,
		funcs: make(map[string]*Func),
		cache: make(map[string]any),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := fn.FullName()
				if _, dup := p.funcs[key]; dup {
					continue // e.g. same package loaded twice; first wins
				}
				p.funcs[key] = &Func{Obj: fn, Decl: fd, Pkg: pkg, key: key}
			}
		}
	}
	for _, fn := range p.funcs {
		p.order = append(p.order, fn)
	}
	sort.Slice(p.order, func(i, j int) bool { return p.order[i].key < p.order[j].key })
	p.linkCalls()
	p.computeSCCs()
	return p
}

// linkCalls fills Callees/Callers by resolving every static call in every
// body against the index.
func (p *Program) linkCalls() {
	for _, fn := range p.order {
		seen := make(map[*Func]bool)
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := p.Callee(fn.Pkg.Info, call)
			if callee != nil && !seen[callee] {
				seen[callee] = true
				fn.Callees = append(fn.Callees, callee)
			}
			return true
		})
		sort.Slice(fn.Callees, func(i, j int) bool { return fn.Callees[i].key < fn.Callees[j].key })
	}
	for _, fn := range p.order {
		for _, c := range fn.Callees {
			c.Callers = append(c.Callers, fn)
		}
	}
}

// FuncOf resolves a types.Func — from source checking or export data — to
// its program Func, or nil when the function is outside the program (stdlib,
// bodyless).
func (p *Program) FuncOf(obj *types.Func) *Func {
	if obj == nil {
		return nil
	}
	return p.funcs[obj.FullName()]
}

// CalleeObj resolves the static callee object of a call under info: a plain
// function call, a method call, or a qualified cross-package call. Calls
// through function values, interfaces bound dynamically, or built-ins
// return nil.
func CalleeObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	if fn == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			return nil // dynamically dispatched; no static callee
		}
	}
	return fn
}

// Callee resolves a call in the context of info to a program function, or
// nil for calls that leave the program.
func (p *Program) Callee(info *types.Info, call *ast.CallExpr) *Func {
	return p.FuncOf(CalleeObj(info, call))
}

// Funcs returns every indexed function in deterministic order.
func (p *Program) Funcs() []*Func { return p.order }

// SCCs returns the call graph's strongly-connected components in bottom-up
// order: every SCC a component calls into appears before it, so a single
// forward sweep with a fixpoint inside each component computes any
// monotone bottom-up summary.
func (p *Program) SCCs() [][]*Func { return p.sccs }

// Cache memoizes one whole-program computation per driver run, so a pass
// invoked once per package computes its module-wide summaries exactly once.
func (p *Program) Cache(key string, build func() any) any {
	if v, ok := p.cache[key]; ok {
		return v
	}
	v := build()
	p.cache[key] = v
	return v
}

// computeSCCs runs Tarjan's algorithm over the call graph. Tarjan emits
// components in reverse topological order of the condensation — callees'
// components before callers' — which is exactly the bottom-up order
// summaries need.
func (p *Program) computeSCCs() {
	type nodeState struct {
		index, lowlink int
		onStack        bool
		visited        bool
	}
	states := make(map[*Func]*nodeState, len(p.order))
	for _, fn := range p.order {
		states[fn] = &nodeState{}
	}
	var (
		counter int
		stack   []*Func
	)
	var strongconnect func(v *Func)
	strongconnect = func(v *Func) {
		sv := states[v]
		sv.visited = true
		sv.index, sv.lowlink = counter, counter
		counter++
		stack = append(stack, v)
		sv.onStack = true
		for _, w := range v.Callees {
			sw := states[w]
			if !sw.visited {
				strongconnect(w)
				if sw.lowlink < sv.lowlink {
					sv.lowlink = sw.lowlink
				}
			} else if sw.onStack && sw.index < sv.lowlink {
				sv.lowlink = sw.index
			}
		}
		if sv.lowlink == sv.index {
			var comp []*Func
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				states[w].onStack = false
				w.scc = len(p.sccs)
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Slice(comp, func(i, j int) bool { return comp[i].key < comp[j].key })
			p.sccs = append(p.sccs, comp)
		}
	}
	for _, fn := range p.order {
		if !states[fn].visited {
			strongconnect(fn)
		}
	}
}

// RootIdent peels selector, index, star, and paren layers off an expression
// and returns the base identifier, or nil when the base is not a plain
// identifier (a call result, a composite literal, ...). The second result
// reports whether any layer was peeled — i.e. whether the expression reaches
// *through* the base rather than naming it.
func RootIdent(e ast.Expr) (*ast.Ident, bool) {
	peeled := false
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, peeled
		case *ast.SelectorExpr:
			e, peeled = x.X, true
		case *ast.IndexExpr:
			e, peeled = x.X, true
		case *ast.StarExpr:
			e, peeled = x.X, true
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil, peeled
			}
			e = x.X
		default:
			return nil, peeled
		}
	}
}
