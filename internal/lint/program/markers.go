// Marker annotations shared across passes. A marker is a doc-comment line
// beginning with a //pbox: directive; it opts the function into (or out of)
// a contract that more than one pass consults, so the recognized set and the
// matching logic live here rather than being re-declared per pass.
package program

import (
	"go/ast"
	"strings"
)

// The recognized //pbox: function markers.
const (
	// MarkerHotPath promises the function is statically allocation-free
	// (enforced by hotpathalloc).
	MarkerHotPath = "//pbox:hotpath"
	// MarkerSnapshotReader promises the function serves observability reads
	// from the published view and atomics alone (enforced by snapshotreader).
	MarkerSnapshotReader = "//pbox:snapshotreader"
	// MarkerSnapshotBuilder names the sanctioned snapshot-rebuild escalation:
	// snapshotreader stops its walk there, and viewimmut permits StatusView
	// mutation only inside builder context.
	MarkerSnapshotBuilder = "//pbox:snapshotbuilder"
)

// Marked reports whether the function declaration's doc comment carries the
// marker.
func Marked(fd *ast.FuncDecl, marker string) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, marker) {
			return true
		}
	}
	return false
}

// MarkedAs is Marked lifted to a program function.
func (f *Func) MarkedAs(marker string) bool { return Marked(f.Decl, marker) }
