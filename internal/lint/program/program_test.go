package program_test

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"testing"

	"pbox/internal/lint/loader"
	"pbox/internal/lint/program"
)

// buildFixture loads a testdata/src fixture package (and the sibling
// packages its imports pull in) and builds the whole-program index.
func buildFixture(t *testing.T, pkg string) *program.Program {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	_, all, err := loader.CheckSourceDeps(root, filepath.Join(root, pkg), fset)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}
	return program.Build(all)
}

// findFunc locates a program function by bare name.
func findFunc(t *testing.T, prog *program.Program, name string) *program.Func {
	t.Helper()
	for _, fn := range prog.Funcs() {
		if fn.Name() == name {
			return fn
		}
	}
	t.Fatalf("function %s not indexed; have %d funcs", name, len(prog.Funcs()))
	return nil
}

// TestCrossPackageCallGraph checks that Build links static calls across the
// fixture package boundary in both directions.
func TestCrossPackageCallGraph(t *testing.T) {
	prog := buildFixture(t, "xreentry")
	collect := findFunc(t, prog, "Collect")
	collectAll := findFunc(t, prog, "CollectAll")

	hasCallee := false
	for _, c := range collectAll.Callees {
		if c == collect {
			hasCallee = true
		}
	}
	if !hasCallee {
		t.Errorf("CollectAll.Callees missing Collect: %v", names(collectAll.Callees))
	}
	hasCaller := false
	for _, c := range collect.Callers {
		if c == collectAll {
			hasCaller = true
		}
	}
	if !hasCaller {
		t.Errorf("Collect.Callers missing CollectAll: %v", names(collect.Callers))
	}
	if got := prog.FuncOf(collect.Obj); got != collect {
		t.Errorf("FuncOf(Collect.Obj) = %v, want the indexed Func", got)
	}
}

// TestSCCsBottomUp checks the summary-order invariant every pass relies on:
// a callee's component appears before its caller's.
func TestSCCsBottomUp(t *testing.T) {
	prog := buildFixture(t, "xreentry")
	collect := findFunc(t, prog, "Collect")
	collectAll := findFunc(t, prog, "CollectAll")

	pos := map[*program.Func]int{}
	for i, scc := range prog.SCCs() {
		if len(scc) == 0 {
			t.Fatalf("SCC %d is empty", i)
		}
		for _, fn := range scc {
			pos[fn] = i
		}
	}
	if len(pos) != len(prog.Funcs()) {
		t.Errorf("SCCs cover %d funcs, program has %d", len(pos), len(prog.Funcs()))
	}
	if pos[collect] >= pos[collectAll] {
		t.Errorf("Collect's SCC (%d) must precede CollectAll's (%d)", pos[collect], pos[collectAll])
	}
}

// TestCacheMemoizes checks that Cache builds once per key.
func TestCacheMemoizes(t *testing.T) {
	prog := buildFixture(t, "xreentry")
	builds := 0
	build := func() any { builds++; return builds }
	if v := prog.Cache("test.key", build); v.(int) != 1 {
		t.Errorf("first Cache call = %v, want 1", v)
	}
	if v := prog.Cache("test.key", build); v.(int) != 1 {
		t.Errorf("second Cache call = %v, want the memoized 1", v)
	}
	if builds != 1 {
		t.Errorf("build ran %d times, want 1", builds)
	}
}

// TestMutationSummaries checks the ParamMask dataflow on the xviewdeps
// fixture: Reset writes through its only parameter, Epoch does not.
func TestMutationSummaries(t *testing.T) {
	prog := buildFixture(t, "xviewimmut")
	sums := prog.MutationSummaries()

	reset := findFunc(t, prog, "Reset")
	if !sums[reset].Has(0) {
		t.Errorf("Reset's summary %b should mark parameter 0 written", sums[reset])
	}
	epoch := findFunc(t, prog, "Epoch")
	if sums[epoch] != 0 {
		t.Errorf("Epoch's summary = %b, want empty (it only reads)", sums[epoch])
	}
	if params := program.ParamObjects(reset); len(params) != 1 || params[0].Name() != "v" {
		t.Errorf("ParamObjects(Reset) = %v, want [v]", params)
	}
}

// TestRootIdent checks access-path peeling.
func TestRootIdent(t *testing.T) {
	cases := []struct {
		expr   string
		root   string
		peeled bool
	}{
		{"v", "v", false},
		{"v.Counts", "v", true},
		{"v.Counts[0]", "v", true},
		{"(*v).Epoch", "v", true},
		{"1 + 2", "", false},
	}
	for _, c := range cases {
		e, err := parser.ParseExpr(c.expr)
		if err != nil {
			t.Fatalf("parsing %q: %v", c.expr, err)
		}
		id, peeled := program.RootIdent(e)
		got := ""
		if id != nil {
			got = id.Name
		}
		if got != c.root || peeled != c.peeled {
			t.Errorf("RootIdent(%q) = (%q, %v), want (%q, %v)", c.expr, got, peeled, c.root, c.peeled)
		}
	}
}

func names(fns []*program.Func) []string {
	out := make([]string, len(fns))
	for i, f := range fns {
		out[i] = f.Name()
	}
	return out
}
