// Mutation summaries: for every program function, the set of parameters
// (receiver included) through which it may store. This is the bottom-up
// dataflow behind the atomicpublish and viewimmut passes — "is it safe to
// hand this published pointer to that function?" is answered by the callee's
// summary rather than by re-walking its body at every call site.
//
// The summary is deliberately one-sided: it may miss writes (calls through
// interfaces or function values, writes through aliases that escape into
// globals or heap structures, external callees like sort.Slice) but it never
// invents one — a set bit always corresponds to a syntactic store path. The
// suite's philosophy (DESIGN.md §9) is no false positives on the real tree;
// false negatives are the price.
package program

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ParamMask is a bitset over a function's parameters: bit 0 is the receiver
// when the function has one, followed by the positional parameters.
// Functions with more than 64 parameters saturate (not a concern here).
type ParamMask uint64

// Has reports whether parameter i is in the mask.
func (m ParamMask) Has(i int) bool {
	if i < 0 || i >= 64 {
		return false
	}
	return m&(1<<uint(i)) != 0
}

func (m *ParamMask) set(i int) {
	if i >= 0 && i < 64 {
		*m |= 1 << uint(i)
	}
}

// MutationSummaries computes (once per program, cached) the parameter
// mutation mask of every function: parameter i is set when the function may
// write through it — a store whose access path roots at the parameter and
// crosses at least one selector/index/deref, a builtin copy into it, or a
// call passing it (or a local alias of it) into a callee position whose own
// summary bit is set. Computed bottom-up over the call-graph SCCs with a
// fixpoint inside each component, so mutual recursion converges.
func (p *Program) MutationSummaries() map[*Func]ParamMask {
	return p.Cache("program.mutation", func() any {
		sums := make(map[*Func]ParamMask, len(p.order))
		for _, scc := range p.sccs {
			for changed := true; changed; {
				changed = false
				for _, fn := range scc {
					m := p.mutationOf(fn, sums)
					if m != sums[fn] {
						sums[fn] = m
						changed = true
					}
				}
			}
		}
		return sums
	}).(map[*Func]ParamMask)
}

// ParamObjects returns the receiver (if any) followed by the declared
// parameters of fn, aligned with ParamMask bit positions.
func ParamObjects(fn *Func) []types.Object {
	sig := fn.Obj.Type().(*types.Signature)
	var out []types.Object
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// ReferenceLike reports whether writing through a value of type t can be
// observed by the caller: pointers, slices, and maps share memory across a
// call boundary. (Channels and interfaces are excluded — element sends are
// not field stores, and interface mutation resolves dynamically.)
func ReferenceLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// mutationOf computes fn's mask given the current summaries of everything
// else.
func (p *Program) mutationOf(fn *Func, sums map[*Func]ParamMask) ParamMask {
	info := fn.Pkg.Info
	params := ParamObjects(fn)
	paramIdx := make(map[types.Object]int, len(params))
	for i, o := range params {
		if ReferenceLike(o.Type()) {
			paramIdx[o] = i
		}
	}
	if len(paramIdx) == 0 {
		return 0
	}

	// aliasIdx maps local objects that alias (reach into) a parameter's
	// pointee: q := p, q := p.field (reference-typed). Writing through such
	// an alias is writing through the parameter. Local fixpoint: aliases of
	// aliases converge in a couple of rounds.
	aliasIdx := make(map[types.Object]int)
	rootParam := func(e ast.Expr) (int, bool) {
		id, _ := RootIdent(e)
		if id == nil {
			return 0, false
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if i, ok := paramIdx[obj]; ok {
			return i, true
		}
		if i, ok := aliasIdx[obj]; ok {
			return i, true
		}
		return 0, false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || !ReferenceLike(obj.Type()) {
					continue
				}
				if _, already := aliasIdx[obj]; already {
					continue
				}
				if !ReferenceLike(info.Types[as.Rhs[i]].Type) {
					continue
				}
				if pi, ok := rootParam(as.Rhs[i]); ok {
					aliasIdx[obj] = pi
					changed = true
				}
			}
			return true
		})
	}

	var mask ParamMask
	markWrite := func(lhs ast.Expr) {
		id, peeled := RootIdent(lhs)
		if id == nil {
			return
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		pi, isParam := paramIdx[obj]
		if !isParam {
			pi, isParam = aliasIdx[obj]
		}
		if !isParam {
			return
		}
		// `p = x` rebinds the local copy of the parameter — the caller never
		// sees it; only peeled paths (p.f = x, p[i] = x, *p = x) store
		// through shared memory. Aliases follow the same rule.
		if peeled {
			mask.set(pi)
		}
	}

	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(x.X)
		case *ast.UnaryExpr:
			// &p.f escaping is not itself a write; covered as false negative.
		case *ast.CallExpr:
			// builtin copy(dst, src) writes through dst.
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && isBuiltinCopy(info, id) {
				if len(x.Args) >= 1 {
					if pi, ok := rootParam(x.Args[0]); ok {
						mask.set(pi)
					}
				}
				return true
			}
			callee := p.Callee(info, x)
			if callee == nil {
				return true
			}
			csum := sums[callee]
			if csum == 0 {
				return true
			}
			for ci, argExpr := range CallArgExprs(info, x, callee) {
				if argExpr == nil || !csum.Has(ci) {
					continue
				}
				if pi, ok := rootParam(argExpr); ok && ReferenceLike(info.Types[argExpr].Type) {
					mask.set(pi)
				}
			}
		}
		return true
	})
	return mask
}

// CallArgExprs aligns a call's argument expressions with the callee's
// ParamMask bit positions: index 0 is the receiver expression for method
// calls (nil when the callee has a receiver but the call shape hides it),
// then the positional arguments, with variadic overflow folded onto the
// last parameter.
func CallArgExprs(info *types.Info, call *ast.CallExpr, callee *Func) []ast.Expr {
	sig := callee.Obj.Type().(*types.Signature)
	nParams := sig.Params().Len()
	hasRecv := sig.Recv() != nil
	args := call.Args
	out := make([]ast.Expr, 0, nParams+1)
	if hasRecv {
		var recv ast.Expr
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, isSel := info.Selections[sel]; isSel {
				switch s.Kind() {
				case types.MethodVal:
					// x.M(...) — the receiver is the selector base.
					recv = sel.X
				case types.MethodExpr:
					// T.M(recv, ...) — the receiver is the first argument.
					if len(args) > 0 {
						recv, args = args[0], args[1:]
					}
				}
			}
		}
		out = append(out, recv)
	}
	for i := 0; i < nParams; i++ {
		out = append(out, nil)
	}
	base := 0
	if hasRecv {
		base = 1
	}
	for ai, a := range args {
		pi := ai
		if pi >= nParams {
			pi = nParams - 1 // variadic overflow
		}
		if pi < 0 {
			break
		}
		if out[base+pi] == nil {
			out[base+pi] = a
		}
	}
	return out
}

// isBuiltinCopy reports whether id resolves to the predeclared copy builtin
// (not a shadowing user declaration).
func isBuiltinCopy(info *types.Info, id *ast.Ident) bool {
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "copy"
}
