// Package reentry forbids observer re-entry into the manager. Observer and
// AttributionObserver callbacks fire while manager locks are held
// (internal/core/observer.go documents the contract), so a callback that
// calls back into a Manager method that takes those locks deadlocks — or,
// with RLock, silently reorders the §8 lock graph.
//
// The pass finds every concrete type in the package that implements an
// interface named Observer, AttributionObserver, EventTimeObserver, or
// LifecycleObserver (looked up in the package itself and its direct
// imports), takes each callback method as an entry
// point — except PenaltyServed and PenaltyServedFor, which the contract
// runs outside all locks — and walks the static call closure. Within the
// package the walk is direct; at a call that crosses into another program
// package it consults the whole-program reach summary (DESIGN.md §14):
// every function's set of transitively reachable Manager lock-taking
// methods, computed bottom-up over the call-graph SCCs. A capture or
// telemetry helper that re-enters internal/core is therefore a finding at
// the crossing call site, anchored in the observer's own package where a
// suppression can be written. Any reachable call to a method on the
// Manager type is a finding unless the method is one of the documented
// lock-free accessors: ResourceName, Crossings, ShardCount. Calls through
// non-Manager interfaces (e.g. a ResourceNamer field) are not flagged: the
// indirection is exactly how observers are supposed to defer manager
// access to safe contexts.
package reentry

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"pbox/internal/lint/analysis"
	"pbox/internal/lint/program"
)

// Analyzer is the reentry pass.
var Analyzer = &analysis.Analyzer{
	Name: "reentry",
	Doc: "observer callbacks run under manager locks and must not call " +
		"back into Manager methods that take those locks",
	Run: run,
}

// observerInterfaces are the interface names whose implementations are
// checked.
var observerInterfaces = map[string]bool{
	"Observer":            true,
	"AttributionObserver": true,
	"EventTimeObserver":   true,
	"LifecycleObserver":   true,
}

// lockFree are the Manager methods observers may call: documented to take
// no manager locks (atomic counters and immutable registration data).
var lockFree = map[string]bool{
	"ResourceName": true,
	"Crossings":    true,
	"ShardCount":   true,
}

// outsideLocks are callback methods the Observer contract invokes with no
// manager lock held (penalty sleeps happen outside the event mutexes), so
// re-entry from them is safe.
var outsideLocks = map[string]bool{
	"PenaltyServed":    true,
	"PenaltyServedFor": true,
}

// managerTypeName is the type whose methods are protected.
const managerTypeName = "Manager"

func run(pass *analysis.Pass) (any, error) {
	ifaces := observerIfaces(pass.Pkg)
	if len(ifaces) == 0 {
		return nil, nil
	}
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	// Entry points: callback methods of implementing types.
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		for _, iface := range ifaces {
			if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			for i := 0; i < iface.NumMethods(); i++ {
				m := iface.Method(i)
				if outsideLocks[m.Name()] {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(named, true, pass.Pkg, m.Name())
				entry, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				if _, have := decls[entry]; !have {
					continue // promoted from an embedded external type
				}
				check(pass, decls, reachSummaries(pass.Prog), entry, named.Obj().Name()+"."+m.Name())
			}
		}
	}
	return nil, nil
}

// observerIfaces collects interface types named Observer/AttributionObserver
// visible to the package (its own scope and its direct imports).
func observerIfaces(pkg *types.Package) []*types.Interface {
	var out []*types.Interface
	collect := func(p *types.Package) {
		for name := range observerInterfaces {
			if tn, ok := p.Scope().Lookup(name).(*types.TypeName); ok {
				if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
					out = append(out, iface)
				}
			}
		}
	}
	collect(pkg)
	for _, imp := range pkg.Imports() {
		collect(imp)
	}
	return out
}

// reachSummaries computes — once per program, cached — the set of Manager
// lock-taking method names each function transitively reaches, bottom-up
// over the call-graph SCCs. The lock-free accessors are excluded at the
// source, so a nonempty summary always names a violation.
func reachSummaries(prog *program.Program) map[*program.Func]map[string]bool {
	return prog.Cache("reentry.reach", func() any {
		sums := make(map[*program.Func]map[string]bool, len(prog.Funcs()))
		add := func(fn *program.Func, name string) bool {
			if sums[fn] == nil {
				sums[fn] = make(map[string]bool)
			}
			if sums[fn][name] {
				return false
			}
			sums[fn][name] = true
			return true
		}
		for _, scc := range prog.SCCs() {
			for changed := true; changed; {
				changed = false
				for _, fn := range scc {
					info := fn.Pkg.Info
					ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						if obj := program.CalleeObj(info, call); obj != nil {
							if isManagerMethod(obj) && !lockFree[obj.Name()] {
								if add(fn, obj.Name()) {
									changed = true
								}
							} else if callee := prog.FuncOf(obj); callee != nil {
								for name := range sums[callee] {
									if add(fn, name) {
										changed = true
									}
								}
							}
						}
						return true
					})
				}
			}
		}
		return sums
	}).(map[*program.Func]map[string]bool)
}

// reachedNames renders a summary as a sorted Manager.X list for messages.
func reachedNames(sum map[string]bool) string {
	names := make([]string, 0, len(sum))
	for n := range sum {
		names = append(names, "Manager."+n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// check walks the static call closure from entry, flagging reachable
// Manager method calls. Same-package callees are walked directly (findings
// anchor at the offending call); callees in other program packages are
// judged by their whole-program reach summary, with the finding anchored at
// the crossing call site.
func check(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, reach map[*program.Func]map[string]bool, entry *types.Func, callback string) {
	seen := map[*types.Func]bool{}
	var visit func(fn *types.Func, via string)
	visit = func(fn *types.Func, via string) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		fd := decls[fn]
		if fd == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass, call)
			if callee == nil {
				return true
			}
			if isManagerMethod(callee) && !lockFree[callee.Name()] {
				pass.Reportf(call.Pos(),
					"observer callback %s%s calls Manager.%s, which takes manager locks already held at the callback site",
					callback, via, callee.Name())
				return true
			}
			if _, samePkg := decls[callee]; samePkg {
				next := via
				if next == "" {
					next = " (via " + callee.Name() + ")"
				}
				visit(callee, next)
				return true
			}
			// A call that leaves the package: the whole-program summary
			// says whether the callee's closure re-enters the manager.
			if pfn := pass.Prog.FuncOf(callee); pfn != nil {
				if sum := reach[pfn]; len(sum) > 0 {
					pass.Reportf(call.Pos(),
						"observer callback %s%s calls %s, which reaches %s — manager locks are already held at the callback site",
						callback, via, callee.Name(), reachedNames(sum))
				}
			}
			return true
		})
	}
	visit(entry, "")
}

// calleeFunc resolves the static callee of a call, if any.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isManagerMethod reports whether fn is a method declared on the concrete
// Manager type (interface methods don't count: calling through an
// abstraction like ResourceNamer is the sanctioned pattern).
func isManagerMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, isIface := named.Underlying().(*types.Interface); isIface {
		return false
	}
	return named.Obj().Name() == managerTypeName
}
