package lint_test

import (
	"testing"

	"pbox/internal/lint/linttest"
	"pbox/internal/lint/snapshotreader"
)

func TestSnapshotReader(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), "snapshotreader", snapshotreader.Analyzer)
}
