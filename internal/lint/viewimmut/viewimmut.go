// Package viewimmut enforces the deep immutability of published snapshots
// (DESIGN.md §12, §14): everything reachable from a StatusView a function
// *obtained* — from StatusView()/RefreshStatusView(), an atomic load, a
// field, a parameter — is read-only. Readers may hold a view indefinitely
// and concurrently; one write to a held view's Resources slice or embedded
// Status corrupts every other reader with no race-detector guarantee of
// being caught.
//
// The pass taints, per function, every variable of type *StatusView that
// was not provably constructed locally (&StatusView{...} and
// new(StatusView) are the builder's own fresh value — writes to it before
// publication are the point; atomicpublish covers the post-publication
// half). Taint propagates to reference-like locals assigned from paths
// rooted at a tainted variable (b := v.Resources, p := &v.Status). A write
// through any tainted root is a finding: field stores, element stores,
// copy() into it, and calls that pass a tainted path into a parameter the
// callee's whole-program mutation summary (DESIGN.md §14 ParamMask) marks
// as written.
//
// The sanctioned exception is builder context: functions marked
// //pbox:snapshotbuilder, plus functions whose every caller (computed on
// the whole-program call graph, greatest fixpoint so builder-only cycles
// qualify) is itself builder-context — the helpers a rebuild delegates to
// may fill in a view that is not yet published. Value copies are exempt by
// construction: sv := *v copies the struct, and writes to sv's scalar
// fields touch nothing shared (writes into sv's reference fields still
// alias the view — a documented false negative, per the suite's
// no-false-positives stance, DESIGN.md §9). Suppress intentional
// exceptions with //pboxlint:ignore viewimmut <reason>.
package viewimmut

import (
	"go/ast"
	"go/token"
	"go/types"

	"pbox/internal/lint/analysis"
	"pbox/internal/lint/program"
)

// Analyzer is the viewimmut pass.
var Analyzer = &analysis.Analyzer{
	Name: "viewimmut",
	Doc: "anything reachable from an obtained StatusView is read-only " +
		"outside //pbox:snapshotbuilder context",
	Run: run,
}

// viewTypeName is the published snapshot type. Matching by name keeps
// fixtures self-contained (the pattern of the other passes); core.StatusView
// is the only such type in the module.
const viewTypeName = "StatusView"

func run(pass *analysis.Pass) (any, error) {
	builders := builderContext(pass.Prog)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if pfn := pass.Prog.FuncOf(obj); pfn != nil && builders[pfn] {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// builderContext computes the functions allowed to mutate a view: the
// //pbox:snapshotbuilder-marked ones and those reachable only from builder
// context. Greatest fixpoint: start from "every function with callers could
// qualify" and strike out functions with a non-builder caller until stable,
// so helpers shared between the rebuild and an ordinary reader do not
// qualify.
func builderContext(prog *program.Program) map[*program.Func]bool {
	return prog.Cache("viewimmut.builders", func() any {
		ctx := make(map[*program.Func]bool)
		for _, fn := range prog.Funcs() {
			ctx[fn] = fn.MarkedAs(program.MarkerSnapshotBuilder) || len(fn.Callers) > 0
		}
		for changed := true; changed; {
			changed = false
			for _, fn := range prog.Funcs() {
				if !ctx[fn] || fn.MarkedAs(program.MarkerSnapshotBuilder) {
					continue
				}
				for _, caller := range fn.Callers {
					if !ctx[caller] {
						ctx[fn] = false
						changed = true
						break
					}
				}
			}
		}
		return ctx
	}).(map[*program.Func]bool)
}

// isViewPtr reports whether t is *StatusView (through named pointer types
// too).
func isViewPtr(t types.Type) bool {
	if t == nil {
		return false
	}
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	return ok && named.Obj().Name() == viewTypeName
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Locally constructed views are the builder's fresh value, not an
	// obtained one: a variable every one of whose initializations is
	// &StatusView{...} or new(StatusView) is exempt from seeding.
	constructed := map[types.Object]bool{}
	obtained := map[types.Object]bool{}
	noteViewVar := func(id *ast.Ident, rhs ast.Expr) {
		obj := varObj(info, id)
		if obj == nil || !isViewPtr(obj.Type()) {
			return
		}
		if rhs != nil && isFreshView(info, rhs) {
			if !obtained[obj] {
				constructed[obj] = true
			}
			return
		}
		obtained[obj] = true
		delete(constructed, obj)
	}

	// Seed: parameters and receivers of type *StatusView are always
	// obtained — the caller may hand in a published view.
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				noteViewVar(name, nil)
			}
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				noteViewVar(name, nil)
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						noteViewVar(id, x.Rhs[i])
					}
				}
			} else {
				for _, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						noteViewVar(id, nil) // multi-value: assume obtained
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				var rhs ast.Expr
				if i < len(x.Values) {
					rhs = x.Values[i]
				} else if x.Values == nil {
					// var v *StatusView — nil until assigned; the assignment
					// will classify it.
					continue
				}
				noteViewVar(name, rhs)
			}
		case *ast.RangeStmt:
			if id, ok := x.Value.(*ast.Ident); ok {
				noteViewVar(id, nil)
			}
		}
		return true
	})

	// Taint: obtained view variables, plus reference-like locals assigned
	// from a path rooted at a tainted variable.
	tainted := map[types.Object]bool{}
	for obj := range obtained {
		tainted[obj] = true
	}
	rootTainted := func(e ast.Expr) (types.Object, bool) {
		ex := ast.Unparen(e)
		if u, ok := ex.(*ast.UnaryExpr); ok && u.Op == token.AND {
			ex = u.X
		}
		id, peeled := program.RootIdent(ex)
		if id == nil {
			return nil, false
		}
		obj := varObj(info, id)
		if obj == nil || !tainted[obj] {
			return nil, false
		}
		return obj, peeled
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := varObj(info, id)
				if obj == nil || tainted[obj] || !program.ReferenceLike(obj.Type()) {
					continue
				}
				if ro, _ := rootTainted(as.Rhs[i]); ro != nil {
					// A value copy (x := *v) produces a non-reference type
					// and never lands here; reaching expressions do.
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	if len(tainted) == 0 {
		return
	}

	report := func(pos token.Pos, how string, obj types.Object) {
		pass.Reportf(pos,
			"%s %s, which reaches an obtained StatusView — published snapshots are deeply read-only outside //pbox:snapshotbuilder context",
			how, obj.Name())
	}
	flagWrite := func(lhs ast.Expr, pos token.Pos) {
		obj, peeled := rootTainted(lhs)
		if obj == nil || !peeled {
			return // rebinding the local is not a write into the view
		}
		report(pos, "write through", obj)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				flagWrite(lhs, x.Pos())
			}
		case *ast.IncDecStmt:
			flagWrite(x.X, x.Pos())
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && isBuiltin(info, id, "copy") {
				if len(x.Args) >= 1 {
					if obj, _ := rootTainted(x.Args[0]); obj != nil {
						report(x.Pos(), "copy into", obj)
					}
				}
				return true
			}
			callee := pass.Prog.Callee(info, x)
			if callee == nil || callee.MarkedAs(program.MarkerSnapshotBuilder) {
				return true
			}
			msum := pass.Prog.MutationSummaries()[callee]
			if msum == 0 {
				return true
			}
			for pi, argExpr := range program.CallArgExprs(info, x, callee) {
				if argExpr == nil || !msum.Has(pi) {
					continue
				}
				if obj, _ := rootTainted(argExpr); obj != nil {
					report(x.Pos(), "call to "+callee.Name()+" (which writes through its parameter) passing", obj)
				}
			}
		}
		return true
	})
}

// isFreshView reports whether rhs constructs a new StatusView:
// &StatusView{...} or new(StatusView).
func isFreshView(info *types.Info, rhs ast.Expr) bool {
	e := ast.Unparen(rhs)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		if cl, ok := ast.Unparen(u.X).(*ast.CompositeLit); ok {
			if named, ok := info.Types[cl].Type.(*types.Named); ok {
				return named.Obj().Name() == viewTypeName
			}
		}
		return false
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isBuiltin(info, id, "new") && len(call.Args) == 1 {
			if named, ok := info.Types[call.Args[0]].Type.(*types.Named); ok {
				return named.Obj().Name() == viewTypeName
			}
		}
	}
	return false
}

// varObj resolves an identifier to its variable object.
func varObj(info *types.Info, id *ast.Ident) types.Object {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if v, ok := obj.(*types.Var); ok {
		return v
	}
	return nil
}

// isBuiltin reports whether id resolves to the predeclared builtin name
// (not a shadowing user declaration).
func isBuiltin(info *types.Info, id *ast.Ident, name string) bool {
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
