package lint_test

import (
	"testing"

	"pbox/internal/lint/linttest"
	"pbox/internal/lint/waitloop"
)

func TestWaitLoop(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), "waitloop", waitloop.Analyzer)
}
