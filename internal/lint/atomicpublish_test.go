package lint_test

import (
	"testing"

	"pbox/internal/lint/atomicpublish"
	"pbox/internal/lint/linttest"
)

func TestAtomicPublish(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), "atomicpublish", atomicpublish.Analyzer)
}

// TestAtomicPublishCrossPackage exercises the mixed atomic/plain access rule
// across a package boundary: the atomic accesses live in xatomicdeps, the
// plain ones in xatomicmixed.
func TestAtomicPublishCrossPackage(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), "xatomicmixed", atomicpublish.Analyzer)
}
