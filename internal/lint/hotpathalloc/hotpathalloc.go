// Package hotpathalloc enforces allocation-freedom on functions annotated
//
//	//pbox:hotpath
//
// in their doc comment. The manager's Update path is specified (DESIGN.md,
// BenchmarkUpdateHotPathAllocs) to run with zero heap allocations; this
// pass makes the property a compile-time contract instead of a
// benchmark-time regression. It flags, inside annotated functions:
//
//   - make/new calls and map, slice, and function literals
//   - &CompositeLit (escaping composite allocation; plain value literals
//     such as TraceEntry{...} stay on the stack and are allowed)
//   - append calls (may grow the backing array)
//   - fmt.* calls (allocate for boxing and formatting)
//   - non-constant string concatenation and string↔[]byte conversions
//   - interface boxing: passing, assigning, or returning a concrete
//     non-pointer value where an interface is expected
//
// The check is static and conservative in the other direction from the
// benchmark: it cannot see escape analysis, so a flagged construct might in
// fact stay on the stack — suppress with //pboxlint:ignore hotpathalloc
// <reason> when the benchmark proves it out.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"pbox/internal/lint/analysis"
	"pbox/internal/lint/program"
)

// Marker is the doc-comment annotation that opts a function into the check.
const Marker = program.MarkerHotPath

// Analyzer is the hotpathalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "functions annotated //pbox:hotpath must be statically allocation-free",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !annotated(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// annotated reports whether the function's doc comment carries the marker.
func annotated(fd *ast.FuncDecl) bool { return program.Marked(fd, Marker) }

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "%s is //pbox:hotpath but allocates: function literal (closure allocation)", name)
			return false // contents are off the hot path once flagged
		case *ast.CompositeLit:
			switch pass.TypesInfo.Types[x].Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(x.Pos(), "%s is //pbox:hotpath but allocates: map literal", name)
			case *types.Slice:
				pass.Reportf(x.Pos(), "%s is //pbox:hotpath but allocates: slice literal", name)
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := x.X.(*ast.CompositeLit); ok {
					pass.Reportf(cl.Pos(), "%s is //pbox:hotpath but allocates: &composite literal escapes to the heap", name)
				}
			}
		case *ast.CallExpr:
			checkCall(pass, name, x)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isNonConstantString(pass, x) {
				pass.Reportf(x.Pos(), "%s is //pbox:hotpath but allocates: non-constant string concatenation", name)
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i < len(x.Rhs) {
					checkBoxing(pass, name, x.Rhs[i], pass.TypesInfo.Types[lhs].Type)
				}
			}
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, name, fd, x)
		}
		return true
	})
}

// checkCall flags allocating builtins, fmt calls, string conversions, and
// interface boxing at argument positions.
func checkCall(pass *analysis.Pass, name string, call *ast.CallExpr) {
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "%s is //pbox:hotpath but allocates: make", name)
				return
			case "new":
				pass.Reportf(call.Pos(), "%s is //pbox:hotpath but allocates: new", name)
				return
			case "append":
				pass.Reportf(call.Pos(), "%s is //pbox:hotpath but allocates: append may grow the backing array", name)
				return
			}
		}
	}
	// Conversions: string([]byte), []byte(string), and boxing-free others.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			to, from := tv.Type, pass.TypesInfo.Types[call.Args[0]].Type
			if from != nil && isStringByteConv(to, from) {
				pass.Reportf(call.Pos(), "%s is //pbox:hotpath but allocates: string/[]byte conversion copies", name)
			}
		}
		return
	}
	// fmt.* calls.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "%s is //pbox:hotpath but allocates: fmt.%s formats and boxes", name, sel.Sel.Name)
			return
		}
	}
	// Interface boxing at parameter positions.
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkBoxing(pass, name, arg, pt)
	}
}

// callSignature resolves the signature of a (non-conversion, non-builtin)
// call, or nil.
func callSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// checkBoxing flags a concrete non-pointer value converted to an interface.
func checkBoxing(pass *analysis.Pass, name string, expr ast.Expr, to types.Type) {
	if to == nil {
		return
	}
	iface, ok := to.Underlying().(*types.Interface)
	if !ok {
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.Value != nil {
		// Constants box into read-only statics, no runtime allocation.
		return
	}
	from := tv.Type
	if types.IsInterface(from) {
		return // interface-to-interface, no box
	}
	if isUntypedNil(from) {
		return
	}
	switch from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped, stored directly in the iface word
	}
	_ = iface
	pass.Reportf(expr.Pos(), "%s is //pbox:hotpath but allocates: %s value boxed into interface", name, from)
}

// checkReturnBoxing flags concrete values returned as interface results.
func checkReturnBoxing(pass *analysis.Pass, name string, fd *ast.FuncDecl, ret *ast.ReturnStmt) {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	results := obj.Type().(*types.Signature).Results()
	if results.Len() != len(ret.Results) {
		return
	}
	for i, e := range ret.Results {
		checkBoxing(pass, name, e, results.At(i).Type())
	}
}

func isNonConstantString(pass *analysis.Pass, e *ast.BinaryExpr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsString == 0 {
		return false
	}
	return tv.Value == nil // constant concatenation folds at compile time
}

func isStringByteConv(to, from types.Type) bool {
	return (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
