// Package linttest is the golden-test harness for the pboxlint passes — a
// self-contained analogue of golang.org/x/tools/go/analysis/analysistest.
// Fixture packages live under internal/lint/testdata/src/<pkg>/ (the
// testdata directory keeps them out of ./... builds) and carry expectations
// as comments on the line a diagnostic is expected:
//
//	s.mu.Lock() // want `acquires shard\.mu`
//
// The backquoted text is a regexp matched against the diagnostic message.
// Several want comments may appear on one line (each must match a distinct
// diagnostic); a line with no want comment must produce no diagnostic.
// Suppression comments in fixtures are exercised end-to-end: the harness
// runs the real driver, so //pboxlint:ignore lines silence findings exactly
// as they do in production.
package linttest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"pbox/internal/lint/analysis"
	"pbox/internal/lint/driver"
	"pbox/internal/lint/loader"
)

// wantRx extracts `// want `-style expectations; the pattern is backquoted.
var wantRx = regexp.MustCompile("//\\s*want\\s+`([^`]*)`")

// expectation is one want comment.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// TestData returns the fixture root (testdata/src relative to the caller's
// package directory, i.e. the internal/lint tests).
func TestData(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// Run loads fixture package pkg under srcRoot — plus every sibling fixture
// package its imports pull in, so multi-package fixtures exercise the
// whole-program engine exactly as production runs do — applies the analyzers
// through the production driver, and diffs surviving diagnostics against
// the want comments of every loaded fixture file.
func Run(t *testing.T, srcRoot, pkg string, analyzers ...*analysis.Analyzer) *driver.Result {
	t.Helper()
	fset := token.NewFileSet()
	_, all, err := loader.CheckSourceDeps(srcRoot, filepath.Join(srcRoot, filepath.FromSlash(pkg)), fset)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}
	res, err := driver.Run(all, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", pkg, err)
	}

	var expects []*expectation
	for _, p := range all {
		expects = append(expects, collectWants(t, p)...)
	}
	for _, d := range res.Diagnostics {
		pos := fset.Position(d.Pos)
		if !claim(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic [%s]: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
		}
	}
	return res
}

// collectWants scans the fixture sources for want comments.
func collectWants(t *testing.T, p *loader.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRx.FindAllStringSubmatch(line, -1) {
				rx, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, m[1], err)
				}
				out = append(out, &expectation{file: name, line: i + 1, pattern: rx})
			}
		}
	}
	return out
}

// claim marks the first unmatched expectation covering (file, line, msg).
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if e.matched || e.file != file || e.line != line {
			continue
		}
		if e.pattern.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}
