// Package lint assembles the pboxlint analyzer suite: the registry both
// command drivers (cmd/pboxlint, cmd/pboxanalyze) select passes from.
package lint

import (
	"pbox/internal/lint/analysis"
	"pbox/internal/lint/atomicpublish"
	"pbox/internal/lint/eventpair"
	"pbox/internal/lint/hotpathalloc"
	"pbox/internal/lint/lockorder"
	"pbox/internal/lint/reentry"
	"pbox/internal/lint/snapshotreader"
	"pbox/internal/lint/viewimmut"
	"pbox/internal/lint/waitloop"
)

// Default returns the enforcing passes — the ones CI fails on. waitloop is
// advisory (it proposes annotation sites rather than flagging violations)
// and is excluded; select it explicitly with -passes waitloop.
func Default() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicpublish.Analyzer,
		eventpair.Analyzer,
		hotpathalloc.Analyzer,
		lockorder.Analyzer,
		reentry.Analyzer,
		snapshotreader.Analyzer,
		viewimmut.Analyzer,
	}
}

// All returns every registered pass, advisory ones included.
func All() []*analysis.Analyzer {
	return append(Default(), waitloop.Analyzer)
}

// ByName resolves a pass name against the full registry.
func ByName(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
