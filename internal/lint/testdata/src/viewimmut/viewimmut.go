// Fixture for the viewimmut pass: obtained StatusViews are deeply
// read-only; locally constructed ones belong to the builder until
// published; //pbox:snapshotbuilder context is exempt.
package viewimmut

type Status struct {
	Counts []int
}

type StatusView struct {
	Status
	Epoch uint64
}

type Manager struct {
	cur *StatusView
}

// View stands in for the published-view accessor.
func (m *Manager) View() *StatusView {
	return m.cur
}

// badFieldWrite mutates an obtained view.
func badFieldWrite(m *Manager) {
	v := m.View()
	v.Epoch = 0 // want `write through v, which reaches an obtained StatusView`
}

// badElementWrite mutates through the embedded Status slice.
func badElementWrite(m *Manager) {
	v := m.View()
	v.Counts[0] = 1 // want `write through v, which reaches an obtained StatusView`
}

// badAliasWrite reaches the view through a reference-typed alias.
func badAliasWrite(m *Manager) {
	v := m.View()
	c := v.Counts
	c[1] = 2 // want `write through c, which reaches an obtained StatusView`
}

// badCopyInto overwrites shared backing memory.
func badCopyInto(m *Manager, src []int) {
	v := m.View()
	copy(v.Counts, src) // want `copy into v, which reaches an obtained StatusView`
}

// scrub writes through its parameter; its §14 mutation summary marks it.
func scrub(v *StatusView) {
	v.Epoch = 9 // want `write through v, which reaches an obtained StatusView`
}

// badMutatingCall hands an obtained view to a writer.
func badMutatingCall(m *Manager) {
	v := m.View()
	scrub(v) // want `call to scrub \(which writes through its parameter\) passing v`
}

// goodReads only reads.
func goodReads(m *Manager) int {
	v := m.View()
	return v.Counts[0] + int(v.Epoch)
}

// goodValueCopy copies the struct; scalar writes on the copy touch nothing
// shared.
func goodValueCopy(m *Manager) uint64 {
	v := m.View()
	sv := *v
	sv.Epoch = 5
	return sv.Epoch
}

// goodFreshBuild constructs its own view: writes before publication are the
// builder's business.
func goodFreshBuild() *StatusView {
	v := &StatusView{}
	v.Epoch = 7
	v.Counts = append(v.Counts, 1)
	return v
}

// rebuild is the sanctioned builder: marked, so even obtained views may be
// filled in here.
//
//pbox:snapshotbuilder
func rebuild(m *Manager) {
	v := m.View()
	v.Epoch = 8
	fillCounts(v)
	m.cur = v
}

// fillCounts is called only from builder context and inherits the
// exemption via the greatest fixpoint.
func fillCounts(v *StatusView) {
	v.Counts = append(v.Counts, 3)
}
