// Fixture for cross-package lockorder findings: this package holds ranked
// locks of its own and calls into xlockdeps helpers whose whole-program
// summaries acquire other classes. A per-package walk sees none of this;
// the §14 engine must.
package xlockorder

import (
	"sync"

	"xlockdeps"
)

type shard struct {
	mu sync.Mutex
}

type PBox struct {
	actMu sync.Mutex
}

// badCrossRegistry inverts the order across the package boundary: shard.mu
// is held when the callee acquires Manager.reg.
func badCrossRegistry(m *xlockdeps.Manager, s *shard) {
	s.mu.Lock()
	xlockdeps.TakeRegistry(m) // want `call to TakeRegistry acquires Manager\.reg while holding shard\.mu`
	s.mu.Unlock()
}

// badCrossTransitive reaches the verdict lock through two cross-package
// hops with a terminal leaf held.
func badCrossTransitive(m *xlockdeps.Manager, p *PBox) {
	p.actMu.Lock()
	xlockdeps.TakeVerdict(m) // want `call to TakeVerdict acquires Manager\.verdictMu while holding leaf lock PBox\.actMu`
	p.actMu.Unlock()
}

// badCrossSnap: even the outermost rank may not be acquired under an
// event-path lock.
func badCrossSnap(m *xlockdeps.Manager, s *shard) {
	s.mu.Lock()
	xlockdeps.TakeSnap(m) // want `call to TakeSnap acquires Manager\.snap while holding shard\.mu`
	s.mu.Unlock()
}

// goodCrossCalls: the same helpers called with nothing held are clean.
func goodCrossCalls(m *xlockdeps.Manager, s *shard) {
	xlockdeps.TakeSnap(m)
	xlockdeps.TakeRegistry(m)
	s.mu.Lock()
	s.mu.Unlock()
	xlockdeps.TakeVerdict(m)
}
