// Fixture for cross-package viewimmut findings: the StatusView and its
// accessor live in xviewdeps; mutations here — invisible to any per-package
// walk of that package — must still be flagged.
package xviewimmut

import "xviewdeps"

// badDirectWrite mutates a view obtained from another package.
func badDirectWrite(m *xviewdeps.Manager) {
	v := m.Published()
	v.Epoch = 1 // want `write through v, which reaches an obtained StatusView`
}

// badMutatingCall hands the obtained view to a cross-package writer; the
// mutation summary for Reset crosses the boundary.
func badMutatingCall(m *xviewdeps.Manager) {
	v := m.Published()
	xviewdeps.Reset(v) // want `call to Reset \(which writes through its parameter\) passing v`
}

// badSliceWrite mutates shared backing memory reached through the view.
func badSliceWrite(m *xviewdeps.Manager) {
	v := m.Published()
	v.Counts[0] = 2 // want `write through v, which reaches an obtained StatusView`
}

// goodReads reads directly and through the cross-package read helper.
func goodReads(m *xviewdeps.Manager) uint64 {
	v := m.Published()
	return v.Epoch + xviewdeps.Epoch(v) + uint64(v.Counts[0])
}

// goodFresh builds its own view: pre-publication writes are fine.
func goodFresh() *xviewdeps.StatusView {
	v := &xviewdeps.StatusView{}
	v.Epoch = 3
	return v
}
