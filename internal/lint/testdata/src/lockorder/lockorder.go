// Fixture for the lockorder pass: types mirror the internal/core lock
// classes (the pass ranks by owner-type and field name, so the fixture
// exercises the exact production table).
package lockorder

import "sync"

type Manager struct {
	snap      sync.Mutex
	topo      sync.Mutex
	spools    sync.Mutex
	reg       sync.Mutex
	verdictMu sync.Mutex
	shards    []*shard
}

type eventSpool struct {
	flushMu sync.Mutex
	mu      sync.Mutex
}

type PBox struct {
	mu    sync.Mutex
	actMu sync.Mutex
	penMu sync.Mutex
}

type shard struct {
	mu      sync.Mutex
	namesMu sync.RWMutex
}

type traceRing struct {
	mu sync.Mutex
}

// goodDescent walks the documented order top to bottom: clean.
func goodDescent(m *Manager, p *PBox, s *shard) {
	m.reg.Lock()
	p.mu.Lock()
	s.mu.Lock()
	m.verdictMu.Lock()
	p.actMu.Lock()
	p.actMu.Unlock()
	m.verdictMu.Unlock()
	s.mu.Unlock()
	p.mu.Unlock()
	m.reg.Unlock()
}

// badShardThenRegistry inverts the order.
func badShardThenRegistry(m *Manager, s *shard) {
	s.mu.Lock()
	m.reg.Lock() // want `acquires Manager\.reg while holding shard\.mu`
	m.reg.Unlock()
	s.mu.Unlock()
}

// badTwoPBoxes holds two pbox locks at once.
func badTwoPBoxes(a, b *PBox) {
	a.mu.Lock()
	b.mu.Lock() // want `while a PBox\.mu is already held`
	b.mu.Unlock()
	a.mu.Unlock()
}

// badLeafThenVerdict acquires under a terminal leaf.
func badLeafThenVerdict(m *Manager, p *PBox) {
	p.actMu.Lock()
	m.verdictMu.Lock() // want `while holding leaf lock PBox\.actMu`
	m.verdictMu.Unlock()
	p.actMu.Unlock()
}

// badTwoLeaves holds two leaves at once.
func badTwoLeaves(p *PBox) {
	p.actMu.Lock()
	p.penMu.Lock() // want `while holding leaf lock PBox\.actMu`
	p.penMu.Unlock()
	p.actMu.Unlock()
}

// goodSequentialLeaves takes leaves one at a time: clean.
func goodSequentialLeaves(p *PBox) {
	p.actMu.Lock()
	p.actMu.Unlock()
	p.penMu.Lock()
	p.penMu.Unlock()
}

// takeVerdict is a helper whose summary contains Manager.verdictMu.
func takeVerdict(m *Manager) {
	m.verdictMu.Lock()
	m.verdictMu.Unlock()
}

// badCallUnderLeaf reaches verdictMu interprocedurally with a leaf held.
func badCallUnderLeaf(m *Manager, p *PBox) {
	p.penMu.Lock()
	takeVerdict(m) // want `call to takeVerdict acquires Manager\.verdictMu while holding leaf lock PBox\.penMu`
	p.penMu.Unlock()
}

// goodDefer: deferred unlocks keep the locks held to function end, which is
// still a clean descent.
func goodDefer(m *Manager, p *PBox) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m.verdictMu.Lock()
	defer m.verdictMu.Unlock()
}

// badBranchMerge: a lock taken on one branch is conservatively held after
// the join.
func badBranchMerge(p *PBox, s *shard, cond bool) {
	if cond {
		s.mu.Lock()
	}
	p.mu.Lock() // want `acquires PBox\.mu while holding shard\.mu`
	p.mu.Unlock()
	if cond {
		s.mu.Unlock()
	}
}

// badLoopReacquire is the unsanctioned version of the stop-the-world sweep.
func badLoopReacquire(m *Manager) {
	for _, s := range m.shards {
		s.mu.Lock() // want `while a shard\.mu is already held`
	}
}

// suppressedLoopReacquire carries the documented exception comment and is
// silenced by the driver (exercised end-to-end through linttest).
func suppressedLoopReacquire(m *Manager) {
	for _, s := range m.shards {
		//pboxlint:ignore lockorder index-ordered sweep, documented exception
		s.mu.Lock()
	}
}

// badRLockUnderLeaf: read locks rank the same as writes.
func badRLockUnderLeaf(s *shard) {
	s.namesMu.RLock()
	s.mu.Lock() // want `acquires shard\.mu while holding leaf lock shard\.namesMu`
	s.mu.Unlock()
	s.namesMu.RUnlock()
}

// goodFlushDescent is the spool flush shape: the registered-spool list and
// the flush lock rank before every manager lock, the buffer leaf is taken
// and released before the replay descends. Clean.
func goodFlushDescent(m *Manager, sp *eventSpool, p *PBox, s *shard) {
	m.spools.Lock()
	sp.flushMu.Lock()
	sp.mu.Lock()
	sp.mu.Unlock()
	p.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	p.mu.Unlock()
	sp.flushMu.Unlock()
	m.spools.Unlock()
}

// badSpoolAppendTakesShard: the spool buffer is a terminal leaf owned by its
// Worker — an append-path method reaching for shard state is a finding.
func badSpoolAppendTakesShard(sp *eventSpool, s *shard) {
	sp.mu.Lock()
	s.mu.Lock() // want `acquires shard\.mu while holding leaf lock eventSpool\.mu`
	s.mu.Unlock()
	sp.mu.Unlock()
}

// badFlushUnderPBox: a flush started while holding any manager lock inverts
// the order (flushes must happen before the caller descends).
func badFlushUnderPBox(sp *eventSpool, p *PBox) {
	p.mu.Lock()
	sp.flushMu.Lock() // want `acquires eventSpool\.flushMu while holding PBox\.mu`
	sp.flushMu.Unlock()
	p.mu.Unlock()
}

// badRegistryThenSpoolList: the spool registry precedes even the manager
// registry (a sweep holds it across whole flushes).
func badRegistryThenSpoolList(m *Manager) {
	m.reg.Lock()
	m.spools.Lock() // want `acquires Manager\.spools while holding Manager\.reg`
	m.spools.Unlock()
	m.reg.Unlock()
}

// goodSnapRebuild is the §12 snapshot-rebuild shape: the build mutex is the
// outermost rank, held across the spool sweep and the full descent. Clean.
func goodSnapRebuild(m *Manager, sp *eventSpool, s *shard) {
	m.snap.Lock()
	m.spools.Lock()
	sp.flushMu.Lock()
	sp.flushMu.Unlock()
	m.spools.Unlock()
	m.reg.Lock()
	s.mu.Lock()
	m.verdictMu.Lock()
	m.verdictMu.Unlock()
	s.mu.Unlock()
	m.reg.Unlock()
	m.snap.Unlock()
}

// badSpoolListThenSnap: the snapshot build mutex precedes even the spool
// registry — a rebuild started mid-sweep would deadlock against a sweep
// started mid-rebuild.
func badSpoolListThenSnap(m *Manager) {
	m.spools.Lock()
	m.snap.Lock() // want `acquires Manager\.snap while holding Manager\.spools`
	m.snap.Unlock()
	m.spools.Unlock()
}

// badShardThenSnap: no manager lock may be held when a rebuild starts.
func badShardThenSnap(m *Manager, s *shard) {
	s.mu.Lock()
	m.snap.Lock() // want `acquires Manager\.snap while holding shard\.mu`
	m.snap.Unlock()
	s.mu.Unlock()
}

// goodSizerTick is the §13 adaptive-sizer shape: the topology mutex is taken
// under snap (the rebuild hook) and a resize descends into the spool sweep
// and the all-shard migration under it. Clean.
func goodSizerTick(m *Manager, sp *eventSpool, s *shard) {
	m.snap.Lock()
	m.topo.Lock()
	m.spools.Lock()
	sp.flushMu.Lock()
	sp.flushMu.Unlock()
	m.spools.Unlock()
	s.mu.Lock()
	s.namesMu.Lock()
	s.namesMu.Unlock()
	s.mu.Unlock()
	m.topo.Unlock()
	m.snap.Unlock()
}

// badSpoolListThenTopo: the topology mutex precedes the spool registry — a
// resize started mid-sweep would deadlock against a sweep started
// mid-resize.
func badSpoolListThenTopo(m *Manager) {
	m.spools.Lock()
	m.topo.Lock() // want `acquires Manager\.topo while holding Manager\.spools`
	m.topo.Unlock()
	m.spools.Unlock()
}

// badTopoThenSnap: a sizer tick never escalates to a snapshot rebuild.
func badTopoThenSnap(m *Manager) {
	m.topo.Lock()
	m.snap.Lock() // want `acquires Manager\.snap while holding Manager\.topo`
	m.snap.Unlock()
	m.topo.Unlock()
}

// badShardThenTopo: no event-path lock may be held when a resize starts.
func badShardThenTopo(m *Manager, s *shard) {
	s.mu.Lock()
	m.topo.Lock() // want `acquires Manager\.topo while holding shard\.mu`
	m.topo.Unlock()
	s.mu.Unlock()
}

// localMutex: locks outside the class table are ignored.
func localMutex(r *traceRing) {
	var mu sync.Mutex
	mu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	mu.Unlock()
}
