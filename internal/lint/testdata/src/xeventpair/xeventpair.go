// Fixture for cross-package eventpair findings: Hold is emitted through
// xeventdeps wrapper helpers. The §14 emission summaries expand those calls
// at the call site with this package's arguments substituted into the
// pairing keys, so an early return between the wrapped Hold and its Unhold
// is flagged exactly as if the events were inlined.
package xeventpair

import "xeventdeps"

// badEarlyReturn opens through the wrapper and closes explicitly — but not
// on the error path.
func badEarlyReturn(r *xeventdeps.Recorder, id int, fail bool) bool {
	xeventdeps.EmitHold(r, id) // want `Hold emitted here is not matched by Unhold on every path`
	if fail {
		return false
	}
	r.Emit(id, xeventdeps.Unhold)
	return true
}

// badWrappedBoth opens and closes through wrappers two hops deep; the early
// return still leaks the hold.
func badWrappedBoth(r *xeventdeps.Recorder, id int, fail bool) bool {
	xeventdeps.EmitHoldFor(r, id) // want `Hold emitted here is not matched by Unhold on every path`
	if fail {
		return false
	}
	xeventdeps.EmitUnhold(r, id)
	return true
}

// goodPaired closes on the only path.
func goodPaired(r *xeventdeps.Recorder, id int) {
	xeventdeps.EmitHold(r, id)
	r.Emit(id, xeventdeps.Unhold)
}

// goodDeferredClose closes via a deferred wrapper: the summary's closer
// applies at every exit.
func goodDeferredClose(r *xeventdeps.Recorder, id int, fail bool) bool {
	xeventdeps.EmitHold(r, id)
	defer xeventdeps.EmitUnhold(r, id)
	if fail {
		return false
	}
	return true
}

// goodSplitPhase only opens: pairing is enforced only when a function holds
// both sides of a pair, so the split-phase API shape stays clean.
func goodSplitPhase(r *xeventdeps.Recorder, id int) {
	xeventdeps.EmitHold(r, id)
}

// goodConditionalHelper calls a wrapper whose emission is conditional; the
// conservative summary is empty, so no pairing is assumed or enforced.
func goodConditionalHelper(r *xeventdeps.Recorder, id int, ok bool) {
	xeventdeps.MaybeEmitHold(r, id, ok)
	r.Emit(id, xeventdeps.Unhold)
}
