// Fixture dependency for the cross-package mixed atomic/plain access test:
// this package accesses Stats.N exclusively through the sync/atomic free
// functions, which places the field in the program-wide atomic set.
package xatomicdeps

import "sync/atomic"

type Stats struct {
	N int64
}

// Bump increments atomically; the &s.N operand is sanctioned address-taking.
func Bump(s *Stats) {
	atomic.AddInt64(&s.N, 1)
}

// Read loads atomically.
func Read(s *Stats) int64 {
	return atomic.LoadInt64(&s.N)
}
