// Fixture for the reentry pass: a local Observer interface and Manager type
// stand in for internal/core's (the pass matches by name, in the package
// scope or its imports).
package reentry

type Observer interface {
	StateEvent(id int)
	PenaltyServed(id int)
}

type Manager struct{}

func (m *Manager) Status() int                   { return 0 }
func (m *Manager) ResourceName(k uintptr) string { return "" }
func (m *Manager) Crossings() int64              { return 0 }
func (m *Manager) ShardCount() int               { return 0 }

// badCollector re-enters the manager from a locked callback.
type badCollector struct {
	mgr *Manager
}

func (c *badCollector) StateEvent(id int) {
	_ = c.mgr.Status() // want `observer callback badCollector\.StateEvent calls Manager\.Status`
}

func (c *badCollector) PenaltyServed(id int) {
	_ = c.mgr.Status() // PenaltyServed runs outside manager locks: allowed
}

// indirectCollector hides the re-entry behind a helper; the call closure
// still reaches it.
type indirectCollector struct {
	mgr *Manager
}

func (c *indirectCollector) StateEvent(id int) {
	c.helper()
}

func (c *indirectCollector) helper() {
	_ = c.mgr.Status() // want `observer callback indirectCollector\.StateEvent \(via helper\) calls Manager\.Status`
}

func (c *indirectCollector) PenaltyServed(id int) {}

// goodCollector sticks to the documented lock-free accessors.
type goodCollector struct {
	mgr *Manager
}

func (c *goodCollector) StateEvent(id int) {
	_ = c.mgr.ResourceName(0)
	_ = c.mgr.Crossings()
	_ = c.mgr.ShardCount()
}

func (c *goodCollector) PenaltyServed(id int) {}

// plainUser is not an observer (method set doesn't satisfy the interface):
// free to call anything.
type plainUser struct {
	mgr *Manager
}

func (p *plainUser) poll() {
	_ = p.mgr.Status()
}

// The timestamped/lifecycle observer extensions (the capture recorder's
// surface) run under the same manager locks as the base callbacks.

type EventTimeObserver interface {
	Observer
	StateEventAt(id int, at int64)
}

type LifecycleObserver interface {
	Observer
	PBoxActivated(id int, at int64)
	PBoxFrozen(id int, at int64)
}

// badRecorderSink re-enters the manager from the timestamped hot-path
// callback and from a lifecycle callback.
type badRecorderSink struct {
	mgr *Manager
}

func (s *badRecorderSink) StateEvent(id int)    {}
func (s *badRecorderSink) PenaltyServed(id int) {}

func (s *badRecorderSink) StateEventAt(id int, at int64) {
	_ = s.mgr.Status() // want `observer callback badRecorderSink\.StateEventAt calls Manager\.Status`
}

func (s *badRecorderSink) PBoxActivated(id int, at int64) {
	_ = s.mgr.Status() // want `observer callback badRecorderSink\.PBoxActivated calls Manager\.Status`
}

func (s *badRecorderSink) PBoxFrozen(id int, at int64) {}

// goodRecorderSink is the sanctioned shape: copy the callback into a
// buffer, poke a wake channel, touch only lock-free accessors.
type goodRecorderSink struct {
	mgr  *Manager
	buf  [8]int64
	n    int
	wake chan struct{}
}

func (s *goodRecorderSink) StateEvent(id int)    {}
func (s *goodRecorderSink) PenaltyServed(id int) {}

func (s *goodRecorderSink) StateEventAt(id int, at int64) {
	s.buf[s.n&7] = at
	s.n++
	select {
	case s.wake <- struct{}{}:
	default:
	}
	_ = s.mgr.ResourceName(0)
}

func (s *goodRecorderSink) PBoxActivated(id int, at int64) {}
func (s *goodRecorderSink) PBoxFrozen(id int, at int64)    {}
