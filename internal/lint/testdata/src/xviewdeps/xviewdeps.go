// Fixture dependency for the cross-package viewimmut test: exports the
// StatusView type, an accessor that yields the published view, and a helper
// that writes through its parameter. The helper's own body is flagged too —
// it is not builder context (its only callers are plain functions).
package xviewdeps

type StatusView struct {
	Epoch  uint64
	Counts []int
}

type Manager struct {
	cur *StatusView
}

// Published stands in for the snapshot accessor.
func (m *Manager) Published() *StatusView {
	return m.cur
}

// Reset writes through its parameter; the §14 mutation summary records it,
// so cross-package callers passing an obtained view are flagged at the call
// site — and the body itself is a finding, since no builder calls Reset.
func Reset(v *StatusView) {
	v.Epoch = 0 // want `write through v, which reaches an obtained StatusView`
}

// Epoch only reads; callers may pass obtained views freely.
func Epoch(v *StatusView) uint64 {
	return v.Epoch
}
