// Fixture for cross-package reentry findings: observer callbacks here call
// xreentrydeps helpers whose call closures re-enter the Manager. A
// per-package walk sees an opaque call; the §14 reach summary names the
// transitively reached lock-taking methods, and the finding anchors at the
// crossing call site.
package xreentry

import "xreentrydeps"

type Observer interface {
	StateEvent(id int)
	PenaltyServed(id int)
}

// badCollector re-enters the manager through a cross-package helper.
type badCollector struct {
	mgr *xreentrydeps.Manager
}

func (c *badCollector) StateEvent(id int) {
	_ = xreentrydeps.Collect(c.mgr) // want `observer callback badCollector\.StateEvent calls Collect, which reaches Manager\.Status`
}

func (c *badCollector) PenaltyServed(id int) {
	_ = xreentrydeps.Collect(c.mgr) // PenaltyServed runs outside manager locks: allowed
}

// deepCollector is two hops from the manager; the summaries compose.
type deepCollector struct {
	mgr *xreentrydeps.Manager
}

func (c *deepCollector) StateEvent(id int) {
	_ = xreentrydeps.CollectAll(c.mgr) // want `observer callback deepCollector\.StateEvent calls CollectAll, which reaches Manager\.Status`
}

func (c *deepCollector) PenaltyServed(id int) {}

// goodCollector calls a helper whose closure stays on the lock-free
// accessors: empty summary, no finding.
type goodCollector struct {
	mgr *xreentrydeps.Manager
}

func (c *goodCollector) StateEvent(id int) {
	_ = xreentrydeps.SafeName(c.mgr)
}

func (c *goodCollector) PenaltyServed(id int) {}
