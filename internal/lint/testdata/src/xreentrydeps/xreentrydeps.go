// Fixture dependency for the cross-package reentry test: a Manager with
// lock-taking and lock-free methods, plus helpers whose whole-program reach
// summaries carry the re-entry across the package boundary.
package xreentrydeps

type Manager struct{}

// Status takes manager locks (by the pass's contract: any Manager method
// not on the documented lock-free list).
func (m *Manager) Status() int { return 0 }

// ResourceName is one of the documented lock-free accessors.
func (m *Manager) ResourceName(k uintptr) string { return "" }

// Collect re-enters the manager; its reach summary is {Status}.
func Collect(m *Manager) int {
	return m.Status()
}

// CollectAll reaches Status through one more hop — the summaries compose
// bottom-up over the call graph.
func CollectAll(m *Manager) int {
	return Collect(m)
}

// SafeName touches only the lock-free accessor; its summary is empty.
func SafeName(m *Manager) string {
	return m.ResourceName(0)
}
