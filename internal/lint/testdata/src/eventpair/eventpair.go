// Fixture for the eventpair pass. The named type EventType and its
// Prepare/Enter/Hold/Unhold constants mirror internal/core; the pass keys
// on the type name so the fixture needs no import.
package eventpair

type EventType int

const (
	Prepare EventType = iota
	Enter
	Hold
	Unhold
)

type activity struct{}

func (a *activity) event(key uintptr, ev EventType) {}

// goodPair closes on the single path: clean.
func goodPair(a *activity, k uintptr) {
	a.event(k, Hold)
	a.event(k, Unhold)
}

// badEarlyReturn leaks the Hold on the error path.
func badEarlyReturn(a *activity, k uintptr, err bool) {
	a.event(k, Hold) // want `Hold emitted here is not matched by Unhold`
	if err {
		return
	}
	a.event(k, Unhold)
}

// goodDefer: the deferred closer covers every exit.
func goodDefer(a *activity, k uintptr, err bool) {
	a.event(k, Hold)
	defer a.event(k, Unhold)
	if err {
		return
	}
}

// goodDeferClosure: closers inside a deferred func count too.
func goodDeferClosure(a *activity, k uintptr, err bool) {
	a.event(k, Hold)
	defer func() {
		a.event(k, Unhold)
	}()
	if err {
		return
	}
}

// splitPhaseLock only opens: a split-phase API (like Mutex.Lock), left to
// the dynamic checks.
func splitPhaseLock(a *activity, k uintptr) {
	a.event(k, Prepare)
	a.event(k, Enter)
	a.event(k, Hold)
}

// splitPhaseUnlock only closes: also fine.
func splitPhaseUnlock(a *activity, k uintptr) {
	a.event(k, Unhold)
}

// badReopen pairs once, then reopens on a branch and falls off the end.
func badReopen(a *activity, k uintptr, again bool) {
	a.event(k, Hold)
	a.event(k, Unhold)
	if again {
		a.event(k, Hold) // want `Hold emitted here is not matched by Unhold`
	}
}

// badPrepareBranch forgets Enter on the slow path.
func badPrepareBranch(a *activity, k uintptr, fast bool) {
	a.event(k, Prepare) // want `Prepare emitted here is not matched by Enter`
	if fast {
		a.event(k, Enter)
		return
	}
}

// goodInfiniteLoop is the Queue.Push shape: Prepare, then a no-exit loop
// whose every return emits Enter first.
func goodInfiniteLoop(a *activity, k uintptr, ch chan int) int {
	a.event(k, Prepare)
	for {
		v := <-ch
		if v > 0 {
			a.event(k, Enter)
			return v
		}
		if v < 0 {
			a.event(k, Enter)
			return -v
		}
	}
}

// goodDistinctKeys: events on different activities pair independently.
func goodDistinctKeys(a, q *activity, k uintptr) {
	a.event(k, Hold)
	q.event(k, Hold)
	q.event(k, Unhold)
	a.event(k, Unhold)
}

// badWrongActivity closes the wrong activity's pair.
func badWrongActivity(a, q *activity, k uintptr, err bool) {
	a.event(k, Hold) // want `Hold emitted here is not matched by Unhold`
	if err {
		q.event(k, Unhold)
		return
	}
	a.event(k, Unhold)
}
