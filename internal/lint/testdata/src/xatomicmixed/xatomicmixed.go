// Fixture for the atomicpublish mixed-access rule across packages: Stats.N
// is accessed with sync/atomic in xatomicdeps, so plain reads and writes
// here — a different package, invisible to any per-package walk — race with
// those atomics and must be flagged.
package xatomicmixed

import "xatomicdeps"

// badRead reads the atomically-accessed field plainly.
func badRead(s *xatomicdeps.Stats) int64 {
	return s.N // want `plain access to xatomicdeps\.Stats\.N`
}

// badWrite stores plainly.
func badWrite(s *xatomicdeps.Stats) {
	s.N = 0 // want `plain access to xatomicdeps\.Stats\.N`
}

// goodAtomic stays on the atomic API.
func goodAtomic(s *xatomicdeps.Stats) int64 {
	xatomicdeps.Bump(s)
	return xatomicdeps.Read(s)
}
