// Fixture for the snapshotreader pass: local Manager/shard/eventSpool types
// stand in for internal/core's (the pass matches by name and annotation).
package snapshotreader

import (
	"sync"
	"sync/atomic"
)

type shard struct {
	mu sync.Mutex
}

type eventSpool struct {
	mu sync.Mutex
}

func (sp *eventSpool) flush() {
	sp.mu.Lock()
	sp.mu.Unlock()
}

type view struct{ epoch uint64 }

type Manager struct {
	shards []*shard
	spools []*eventSpool
	view   atomic.Pointer[view]
}

func (m *Manager) sweepSpools() {
	for _, sp := range m.spools {
		sp.flush()
	}
}

func (m *Manager) flushSpoolsFor(id int) {}

func (m *Manager) lockAllShards() func() {
	for _, s := range m.shards {
		s.mu.Lock()
	}
	return func() {}
}

// goodView loads the published view only: the sanctioned read shape.
//
//pbox:snapshotreader
func (m *Manager) goodView() *view {
	return m.view.Load()
}

// rebuild is the sanctioned escalation: builder-annotated, so reader
// closures stop at it even though it stops the world.
//
//pbox:snapshotbuilder
func (m *Manager) rebuild() *view {
	m.sweepSpools()
	unlock := m.lockAllShards()
	defer unlock()
	v := &view{}
	m.view.Store(v)
	return v
}

// goodEscalating escalates through the builder, which is allowed.
//
//pbox:snapshotreader
func (m *Manager) goodEscalating() *view {
	if v := m.view.Load(); v != nil {
		return v
	}
	return m.rebuild()
}

// badSweep flushes on read.
//
//pbox:snapshotreader
func (m *Manager) badSweep() {
	m.sweepSpools() // want `snapshot reader badSweep calls sweepSpools`
}

// badShardLock takes a shard lock on the read path.
//
//pbox:snapshotreader
func (m *Manager) badShardLock() {
	s := m.shards[0]
	s.mu.Lock() // want `snapshot reader badShardLock acquires a shard lock`
	s.mu.Unlock()
}

// badIndirect hides the flush behind a helper; the closure walk reaches it.
//
//pbox:snapshotreader
func (m *Manager) badIndirect() {
	m.helper()
}

func (m *Manager) helper() {
	m.flushSpoolsFor(1) // want `snapshot reader badIndirect \(via helper\) calls flushSpoolsFor`
}

// badSpoolFlush steals one worker's buffer.
//
//pbox:snapshotreader
func (m *Manager) badSpoolFlush() {
	m.spools[0].flush() // want `snapshot reader badSpoolFlush calls eventSpool\.flush`
}

// badLockAll runs the stop-the-world sweep.
//
//pbox:snapshotreader
func (m *Manager) badLockAll() {
	unlock := m.lockAllShards() // want `snapshot reader badLockAll calls lockAllShards`
	unlock()
}

// precise is unannotated: the flush-on-read path may stop the world freely.
func (m *Manager) precise() {
	m.sweepSpools()
	s := m.shards[0]
	s.mu.Lock()
	s.mu.Unlock()
}
