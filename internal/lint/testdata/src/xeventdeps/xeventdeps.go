// Fixture dependency for the cross-package eventpair test: the EventType
// constants, a recorder, and wrapper helpers whose §14 emission summaries
// carry their unconditional event calls — with parameters as placeholders —
// to call sites in other packages.
package xeventdeps

type EventType int

const (
	Prepare EventType = iota
	Enter
	Hold
	Unhold
)

type Recorder struct{}

func (r *Recorder) Emit(id int, e EventType) {}

// EmitHold emits unconditionally; its summary is Hold with the recorder and
// id slots as placeholders.
func EmitHold(r *Recorder, id int) {
	r.Emit(id, Hold)
}

// EmitHoldFor wraps EmitHold: summaries compose bottom-up, so this carries
// the same Hold emission one hop further.
func EmitHoldFor(r *Recorder, id int) {
	EmitHold(r, id)
}

// EmitUnhold is the closing wrapper.
func EmitUnhold(r *Recorder, id int) {
	r.Emit(id, Unhold)
}

// MaybeEmitHold branches before emitting: the conservative top-level scan
// stops at the if, so its summary is empty and call sites are not treated
// as emissions.
func MaybeEmitHold(r *Recorder, id int, ok bool) {
	if ok {
		r.Emit(id, Hold)
	}
}
