// Fixture for the atomicpublish publish-site rule: values stored through an
// atomic.Pointer are published and must never be written again through a
// retained alias.
package atomicpublish

import "sync/atomic"

type view struct {
	n int
	s []int
}

type holder struct {
	p atomic.Pointer[view]
}

// badWriteAfterStore mutates the published value directly.
func badWriteAfterStore(h *holder) {
	v := &view{}
	h.p.Store(v)
	v.n = 1 // want `write through v after v was published via atomic\.Pointer\.Store`
}

// badAliasWrite mutates through an alias retained before the publish.
func badAliasWrite(h *holder) {
	v := &view{}
	q := v
	h.p.Store(v)
	q.n = 2 // want `write through q after v was published via atomic\.Pointer\.Store`
}

// badCopyInto copies into the published value's slice.
func badCopyInto(h *holder, src []int) {
	v := &view{s: make([]int, 4)}
	h.p.Store(v)
	copy(v.s, src) // want `copy into v after v was published`
}

// mutate writes through its parameter — its §14 mutation summary marks it.
func mutate(v *view) {
	v.n = 9
}

// badMutatingCall hands the published value to a writer.
func badMutatingCall(h *holder) {
	v := &view{}
	h.p.Store(v)
	mutate(v) // want `call to mutate \(which writes through its parameter\) passing v`
}

// badSwapResult writes through the previously published value Swap returns —
// concurrent readers may still hold it.
func badSwapResult(h *holder, next *view) {
	old := h.p.Swap(next)
	old.n = 3 // want `write through old after receiving the previously published value from atomic\.Pointer\.Swap`
}

// badAddrPublish publishes &local: every later write to the variable lands
// in published memory, peeled or not.
func badAddrPublish(h *holder) {
	v := view{}
	h.p.Store(&v)
	v = view{n: 4} // want `write through v after v was published`
}

// goodBuildThenPublish writes before the publish and only reads after.
func goodBuildThenPublish(h *holder) int {
	v := &view{}
	v.n = 5
	h.p.Store(v)
	return v.n
}

// goodRebind re-points the local at a fresh value; the published one is
// untouched.
func goodRebind(h *holder) {
	v := &view{}
	h.p.Store(v)
	v = &view{n: 6}
	_ = v
}

// reader only reads its parameter; passing the published value is fine.
func reader(v *view) int {
	return v.n
}

// goodReadingCall passes the published value to a non-writer.
func goodReadingCall(h *holder) int {
	v := &view{}
	h.p.Store(v)
	return reader(v)
}

// goodCopyOnWrite is the sanctioned update shape: clone, mutate the clone,
// re-publish.
func goodCopyOnWrite(h *holder) {
	old := h.p.Load()
	next := &view{n: old.n + 1}
	h.p.Store(next)
}
