// Fixture for the driver's suppression handling: one documented ignore that
// silences a real violation, and one malformed ignore (no reason) that both
// fails to suppress and is itself reported.
package suppress

import "sync"

type Manager struct {
	reg sync.Mutex
}

type shard struct {
	mu sync.Mutex
}

func properlySuppressed(m *Manager, s *shard) {
	s.mu.Lock()
	//pboxlint:ignore lockorder documented exception exercised by the driver test
	m.reg.Lock()
	m.reg.Unlock()
	s.mu.Unlock()
}

func malformedIgnore(m *Manager, s *shard) {
	s.mu.Lock()
	//pboxlint:ignore lockorder
	m.reg.Lock()
	m.reg.Unlock()
	s.mu.Unlock()
}
