// Fixture for the hotpathalloc pass: each annotated function isolates one
// allocating construct; good* functions prove the allowed idioms (value
// composite literals, array writes, pointer-shaped interface stores).
package hotpathalloc

import "fmt"

type entry struct{ id int }

type ring struct {
	buf [4]entry
	n   int
}

//pbox:hotpath
func goodValueLiteral(r *ring, id int) {
	e := entry{id: id}
	r.buf[r.n&3] = e
	r.n++
}

//pbox:hotpath
func badMake() []int {
	return make([]int, 4) // want `allocates: make`
}

//pbox:hotpath
func badNew() *entry {
	return new(entry) // want `allocates: new`
}

//pbox:hotpath
func badEscape() *entry {
	return &entry{id: 1} // want `&composite literal escapes`
}

//pbox:hotpath
func badSliceLit() []int {
	return []int{1, 2} // want `allocates: slice literal`
}

//pbox:hotpath
func badMapLit() map[int]int {
	return map[int]int{} // want `allocates: map literal`
}

//pbox:hotpath
func badAppend(s []int) []int {
	return append(s, 1) // want `append may grow`
}

//pbox:hotpath
func badClosure() func() {
	return func() {} // want `function literal`
}

//pbox:hotpath
func badFmt(id int) {
	fmt.Println(id) // want `fmt\.Println`
}

//pbox:hotpath
func badConcat(a, b string) string {
	return a + b // want `non-constant string concatenation`
}

//pbox:hotpath
func badStringConv(b []byte) string {
	return string(b) // want `string/\[\]byte conversion`
}

//pbox:hotpath
func badBoxing(id int) any {
	return id // want `int value boxed into interface`
}

//pbox:hotpath
func badBoxingArg(id int) {
	sink(id) // want `int value boxed into interface`
}

func sink(v any) { _ = v }

//pbox:hotpath
func goodPointerIface(e *entry) any {
	return e
}

//pbox:hotpath
func goodConstConcat() string {
	const prefix = "pbox:"
	return prefix + "hot"
}

// unannotated functions allocate freely.
func unannotated() []int {
	return make([]int, 8)
}

// The capture recorder's enqueue shape: copy a record value into a
// preallocated double buffer and poke a wake channel — allocation-free.

type record struct {
	kind byte
	id   int
	at   int64
}

type recorderSink struct {
	buf      []record
	n        int
	wake     chan struct{}
	overflow []record
}

//pbox:hotpath
func goodRecorderEnqueue(s *recorderSink, id int, at int64) {
	if s.n == len(s.buf) {
		return
	}
	s.buf[s.n] = record{kind: 5, id: id, at: at}
	s.n++
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

//pbox:hotpath
func badRecorderEnqueue(s *recorderSink, rec record) {
	s.overflow = append(s.overflow, rec) // want `append may grow`
}
