// Fixture dependency for the cross-package lockorder test: helpers in this
// package acquire ranked manager locks, and the importing package calls them
// with other locks held. The whole-program summaries (DESIGN.md §14) must
// carry the acquired classes across the package boundary.
package xlockdeps

import "sync"

type Manager struct {
	snap      sync.Mutex
	reg       sync.Mutex
	verdictMu sync.Mutex
}

// TakeRegistry acquires the registry lock: its summary is {Manager.reg}.
func TakeRegistry(m *Manager) {
	m.reg.Lock()
	m.reg.Unlock()
}

// TakeVerdict acquires the verdict lock through one more hop, so the
// summary propagation is transitive.
func TakeVerdict(m *Manager) {
	takeVerdictInner(m)
}

func takeVerdictInner(m *Manager) {
	m.verdictMu.Lock()
	m.verdictMu.Unlock()
}

// TakeSnap acquires the outermost rank — safe to call with nothing held.
func TakeSnap(m *Manager) {
	m.snap.Lock()
	m.snap.Unlock()
}
