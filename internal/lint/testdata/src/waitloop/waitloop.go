// Fixture for the waitloop pass (Algorithm 2 on the shared driver).
package waitloop

import "time"

type worker struct {
	done bool
}

// spin blocks in a loop whose exit depends on shared state — the paper's
// candidate shape for pbox state events.
func (w *worker) spin() {
	for !w.done {
		time.Sleep(time.Millisecond) // want `wait via time\.Sleep inside loop gated on shared vars`
	}
}

// localOnly waits in a loop gated purely on a local counter: no candidate.
func localOnly() {
	for i := 0; i < 3; i++ {
		time.Sleep(time.Millisecond)
	}
}
