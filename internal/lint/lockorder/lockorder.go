// Package lockorder statically enforces the manager's lock-acquisition
// order (DESIGN.md §8, extended by the §10 spool ranks, the §12 snapshot
// rank, and the §13 topology rank):
//
//	Manager.snap → Manager.topo → Manager.spools → eventSpool.flushMu →
//	registry → pbox.mu → shard.mu → verdictMu → leaves (actMu, penMu,
//	shard.namesMu, trace ring, eventSpool.mu)
//
// plus the extra rules: a shard lock is never held while acquiring the
// registry lock (subsumed by the rank order), at most one lock of a class
// is held at a time (no second PBox.mu, no second shard.mu outside the
// index-ordered stop-the-world sweep, no two actMus), and leaves are
// terminal — nothing is acquired while holding a leaf, which subsumes "no
// leaf is held while acquiring verdictMu".
//
// The pass extracts the static lock graph: every Lock/RLock/Unlock/RUnlock
// call on a sync.Mutex or sync.RWMutex field is classified by the named
// type that owns the field (Manager.spools, eventSpool.flushMu, Manager.reg,
// PBox.mu, shard.mu, Manager.verdictMu, PBox.actMu, PBox.penMu,
// shard.namesMu, traceRing.mu, eventSpool.mu).
// A linear abstract interpretation tracks the held-set through each
// function body (branches merge by union, early returns leave the merge),
// and a whole-program fixpoint over the call graph (SCC-ordered, DESIGN.md
// §14) summarizes which classes each function may acquire — directly or
// through calls that cross package boundaries — so "Freeze calls
// takeActionVerdict while holding pbox.mu" is checked against everything
// takeActionVerdict transitively locks, and a telemetry or capture helper
// that re-enters internal/core under a lock is seen from its caller.
// Unknown mutexes (types outside the configured table) are ignored: the
// order is a contract between the manager's own locks.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"pbox/internal/lint/analysis"
	"pbox/internal/lint/program"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "enforce the DESIGN.md §8 lock order of the manager " +
		"(registry → pbox.mu → shard.mu → verdictMu → leaves)",
	Run: run,
}

// Rank positions in the documented order. Leaves share leafRank and are
// terminal. The spool ranks are negative: the spool registry and a flush
// precede everything the replay acquires, and nothing may take them while
// holding any manager lock. The snapshot build mutex ranks before even the
// spool registry: a rebuild sweeps every spool and then takes the whole
// read path under it. The topology mutex (the §13 adaptive sizer) sits
// between them: the sizer ticks under snap, and a resize sweeps spools and
// takes every shard lock under topo.
const (
	rankSnap       = -30
	rankTopo       = -25
	rankSpoolList  = -20
	rankSpoolFlush = -10
	rankRegistry   = 0
	rankPBoxMu     = 10
	rankShardMu    = 20
	rankVerdict    = 30
	leafRank       = 40
)

// classSpec ranks one lock class, keyed by the owning named type and field.
type classSpec struct {
	owner string // named type that declares the mutex field
	field string // mutex field name
}

// lockTable is the §8 order. Fixture packages declaring types and fields of
// the same names are ranked identically, which is what the golden tests
// exercise.
var lockTable = map[classSpec]int{
	{"Manager", "snap"}:       rankSnap,
	{"Manager", "topo"}:       rankTopo,
	{"Manager", "spools"}:     rankSpoolList,
	{"eventSpool", "flushMu"}: rankSpoolFlush,
	{"Manager", "reg"}:        rankRegistry,
	{"PBox", "mu"}:            rankPBoxMu,
	{"shard", "mu"}:           rankShardMu,
	{"Manager", "verdictMu"}:  rankVerdict,
	{"PBox", "actMu"}:         leafRank,
	{"PBox", "penMu"}:         leafRank,
	{"shard", "namesMu"}:      leafRank,
	{"traceRing", "mu"}:       leafRank,
	{"eventSpool", "mu"}:      leafRank,
}

// orderDoc is appended to order-violation messages.
const orderDoc = "DESIGN.md §8/§10/§12/§13 order: snap → topo → spools → flushMu → registry → pbox.mu → shard.mu → verdictMu → leaves"

// lockClass is one recognized lock class.
type lockClass struct {
	spec classSpec
	rank int
}

func (c lockClass) String() string { return c.spec.owner + "." + c.spec.field }
func (c lockClass) leaf() bool     { return c.rank >= leafRank }

// lockOp is a classified Lock/Unlock call.
type lockOp struct {
	class   lockClass
	acquire bool // Lock/RLock vs Unlock/RUnlock
}

func run(pass *analysis.Pass) (any, error) {
	st := &state{
		pass:      pass,
		info:      pass.TypesInfo,
		summaries: summaries(pass.Prog),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{st: st}
			w.block(fd.Body.List, newHeld())
			for _, fl := range w.funcLits {
				inner := &walker{st: st}
				inner.block(fl.Body.List, newHeld())
			}
		}
	}
	return nil, nil
}

// state is the per-package walking state: the shared whole-program
// acquisition summaries plus the current package's type information (lock
// calls in this package's files resolve through it).
type state struct {
	pass      *analysis.Pass
	info      *types.Info
	summaries map[*program.Func]map[lockClass]bool
}

// summaries computes — once per program, cached — the set of lock classes
// every function may acquire, directly or transitively through calls that
// may cross package boundaries. Bottom-up over the call-graph SCCs with a
// fixpoint inside each component.
func summaries(prog *program.Program) map[*program.Func]map[lockClass]bool {
	return prog.Cache("lockorder.summaries", func() any {
		sums := make(map[*program.Func]map[lockClass]bool, len(prog.Funcs()))
		for _, fn := range prog.Funcs() {
			sums[fn] = make(map[lockClass]bool)
		}
		for _, scc := range prog.SCCs() {
			for changed := true; changed; {
				changed = false
				for _, fn := range scc {
					sum := sums[fn]
					before := len(sum)
					info := fn.Pkg.Info
					ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						if op, ok := classifyLockCall(info, call); ok && op.acquire {
							sum[op.class] = true
							return true
						}
						if callee := prog.Callee(info, call); callee != nil {
							for c := range sums[callee] {
								sum[c] = true
							}
						}
						return true
					})
					if len(sum) != before {
						changed = true
					}
				}
			}
		}
		return sums
	}).(map[*program.Func]map[lockClass]bool)
}

// callee resolves a call to a program function with a known summary, or nil.
func (st *state) callee(call *ast.CallExpr) *program.Func {
	return st.pass.Prog.Callee(st.info, call)
}

// syncLockMethods are the mutex methods the pass models. TryLock is treated
// as an acquisition: the §8 order must hold even for opportunistic paths.
var syncLockMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
	"Unlock": false, "RUnlock": false,
}

// classifyLockCall recognizes expr as a Lock/Unlock-family call on a
// configured lock class, resolving names through the type info of the
// package the call appears in.
func classifyLockCall(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	acquire, isLockMethod := syncLockMethods[sel.Sel.Name]
	if !isLockMethod {
		return lockOp{}, false
	}
	// The method must come from package sync (Mutex/RWMutex, possibly via
	// embedding).
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	// The mutex expression must itself be a field selection owner.field so
	// it can be classified; anything else (local mutex, parameter) is
	// outside the table.
	base, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	ownerType := info.Types[base.X].Type
	if ownerType == nil {
		return lockOp{}, false
	}
	for {
		p, ok := ownerType.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		ownerType = p.Elem()
	}
	named, ok := ownerType.(*types.Named)
	if !ok {
		return lockOp{}, false
	}
	spec := classSpec{owner: named.Obj().Name(), field: base.Sel.Name}
	rank, ok := lockTable[spec]
	if !ok {
		return lockOp{}, false
	}
	return lockOp{class: lockClass{spec: spec, rank: rank}, acquire: acquire}, true
}

// held is the abstract held-set: class → first acquisition position.
type held map[lockClass]token.Pos

func newHeld() held { return make(held) }

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (h held) union(o held) held {
	u := h.clone()
	for k, v := range o {
		if _, ok := u[k]; !ok {
			u[k] = v
		}
	}
	return u
}

// walker interprets one function body.
type walker struct {
	st       *state
	funcLits []*ast.FuncLit
	reported map[token.Pos]bool
}

func (w *walker) reportOnce(pos token.Pos, format string, args ...any) {
	if w.reported == nil {
		w.reported = make(map[token.Pos]bool)
	}
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.st.pass.Reportf(pos, format, args...)
}

// checkAcquire validates acquiring class c while h is held.
func (w *walker) checkAcquire(pos token.Pos, c lockClass, h held, via string) {
	for hc := range h {
		switch {
		case hc == c:
			w.reportOnce(pos, "%sacquires %s while a %s is already held (%s)",
				via, c, hc, "at most one lock of a class may be held")
		case hc.leaf():
			w.reportOnce(pos, "%sacquires %s while holding leaf lock %s (leaves are terminal: nothing may be acquired under them)",
				via, c, hc)
		case c.rank < hc.rank:
			w.reportOnce(pos, "%sacquires %s while holding %s, against the order (%s)",
				via, c, hc, orderDoc)
		}
	}
}

// exprCalls processes every call in an expression tree in inspection order:
// lock operations mutate the held-set, same-package calls are checked
// against their summaries. Function literals are queued for separate
// analysis with an empty held-set (they run on their own goroutine or at a
// later time; §8 violations inside them still surface).
func (w *walker) exprCalls(e ast.Expr, h held) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.funcLits = append(w.funcLits, x)
			return false
		case *ast.CallExpr:
			if op, ok := classifyLockCall(w.st.info, x); ok {
				if op.acquire {
					w.checkAcquire(x.Pos(), op.class, h, "")
					h[op.class] = x.Pos()
				} else {
					delete(h, op.class)
				}
				return true
			}
			if callee := w.st.callee(x); callee != nil {
				for c := range w.st.summaries[callee] {
					w.checkAcquire(x.Pos(), c, h, "call to "+callee.Name()+" ")
				}
			}
		}
		return true
	})
}

// block interprets a statement list, returning the exit held-set and
// whether every path through the list terminates (returns/panics) before
// falling off the end.
func (w *walker) block(stmts []ast.Stmt, h held) (held, bool) {
	for _, s := range stmts {
		var terminated bool
		h, terminated = w.stmt(s, h)
		if terminated {
			return h, true
		}
	}
	return h, false
}

// stmt interprets one statement.
func (w *walker) stmt(s ast.Stmt, h held) (held, bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		w.exprCalls(x.X, h)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			w.exprCalls(e, h)
		}
		for _, e := range x.Lhs {
			w.exprCalls(e, h)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.exprCalls(v, h)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the remainder of the
		// body (correct: later acquisitions happen under it). A deferred
		// anonymous function is analyzed separately.
		if op, ok := classifyLockCall(w.st.info, x.Call); ok && op.acquire {
			// defer mu.Lock() — acquisition at exit; check against the
			// current held-set as an approximation.
			w.checkAcquire(x.Call.Pos(), op.class, h, "deferred ")
		}
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			w.funcLits = append(w.funcLits, fl)
		}
	case *ast.GoStmt:
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			w.funcLits = append(w.funcLits, fl)
		} else {
			w.exprCalls(x.Call, h)
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			w.exprCalls(e, h)
		}
		return h, true
	case *ast.IfStmt:
		if x.Init != nil {
			h, _ = w.stmt(x.Init, h)
		}
		w.exprCalls(x.Cond, h)
		thenH, thenTerm := w.block(x.Body.List, h.clone())
		elseH, elseTerm := h, false
		if x.Else != nil {
			switch e := x.Else.(type) {
			case *ast.BlockStmt:
				elseH, elseTerm = w.block(e.List, h.clone())
			case *ast.IfStmt:
				var eh held
				eh, elseTerm = w.stmt(e, h.clone())
				elseH = eh
			}
		}
		switch {
		case thenTerm && elseTerm:
			return h, true
		case thenTerm:
			return elseH, false
		case elseTerm:
			return thenH, false
		default:
			return thenH.union(elseH), false
		}
	case *ast.BlockStmt:
		return w.block(x.List, h)
	case *ast.ForStmt:
		if x.Init != nil {
			h, _ = w.stmt(x.Init, h)
		}
		w.exprCalls(x.Cond, h)
		bodyH := w.loopBody(x.Body.List, h)
		if x.Post != nil {
			w.stmt(x.Post, bodyH)
		}
		// The body runs zero or more times; merge both possibilities.
		return h.union(bodyH), false
	case *ast.RangeStmt:
		w.exprCalls(x.X, h)
		bodyH := w.loopBody(x.Body.List, h)
		return h.union(bodyH), false
	case *ast.SwitchStmt:
		if x.Init != nil {
			h, _ = w.stmt(x.Init, h)
		}
		w.exprCalls(x.Tag, h)
		return w.caseBodies(x.Body, h)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			h, _ = w.stmt(x.Init, h)
		}
		return w.caseBodies(x.Body, h)
	case *ast.SelectStmt:
		return w.caseBodies(x.Body, h)
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, h)
	case *ast.SendStmt:
		w.exprCalls(x.Chan, h)
		w.exprCalls(x.Value, h)
	case *ast.IncDecStmt:
		w.exprCalls(x.X, h)
	}
	return h, false
}

// loopBody interprets a loop body twice: once from the loop-entry state and
// once from the merged back-edge state, so a lock acquired in iteration N
// and still held when iteration N+1 re-acquires it is caught (the
// stop-the-world sweep shape). reportOnce dedups the double visit.
func (w *walker) loopBody(stmts []ast.Stmt, h held) held {
	first, _ := w.block(stmts, h.clone())
	again, _ := w.block(stmts, h.union(first))
	return first.union(again)
}

// caseBodies merges the clause bodies of a switch/select.
func (w *walker) caseBodies(body *ast.BlockStmt, h held) (held, bool) {
	out := h.clone()
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch c := cs.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.exprCalls(e, h)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.stmt(c.Comm, h.clone())
			}
			stmts = c.Body
		}
		ch, terminated := w.block(stmts, h.clone())
		if !terminated {
			out = out.union(ch)
		}
	}
	return out, false
}
