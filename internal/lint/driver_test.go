package lint_test

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"pbox/internal/lint/analysis"
	"pbox/internal/lint/driver"
	"pbox/internal/lint/linttest"
	"pbox/internal/lint/loader"
	"pbox/internal/lint/lockorder"
)

// TestSuppression exercises the //pboxlint:ignore machinery end to end: a
// documented ignore silences its finding and increments Suppressed; a
// malformed ignore (no reason) suppresses nothing and is itself reported.
func TestSuppression(t *testing.T) {
	srcRoot := linttest.TestData(t)
	fset := token.NewFileSet()
	pkg, err := loader.CheckSource(srcRoot, filepath.Join(srcRoot, "suppress"), fset)
	if err != nil {
		t.Fatal(err)
	}
	res, err := driver.Run([]*loader.Package{pkg}, []*analysis.Analyzer{lockorder.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if res.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1", res.Suppressed)
	}
	var gotViolation, gotMalformed bool
	for _, d := range res.Diagnostics {
		switch {
		case d.Analyzer == "lockorder" && strings.Contains(d.Message, "Manager.reg"):
			gotViolation = true
		case d.Analyzer == "pboxlint" && strings.Contains(d.Message, "malformed suppression"):
			gotMalformed = true
		default:
			t.Errorf("unexpected diagnostic [%s] %s", d.Analyzer, d.Message)
		}
	}
	if !gotViolation {
		t.Error("malformed ignore wrongly suppressed the underlying violation")
	}
	if !gotMalformed {
		t.Error("malformed ignore was not reported")
	}
}
