// Package analysis is a self-contained reimplementation of the
// golang.org/x/tools/go/analysis vocabulary — Analyzer, Pass, Diagnostic —
// for the pboxlint suite. The repo vendors no third-party modules, so the
// x/tools driver cannot be imported; this package keeps the same shape
// (an Analyzer is a named Run function over a type-checked package, a Pass
// is the per-package invocation, diagnostics carry token positions) so the
// passes read like stock go/analysis passes and could be ported onto the
// upstream driver by swapping one import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"pbox/internal/lint/program"
)

// Analyzer describes one static analysis pass and its invariant.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in
	// //pboxlint:ignore comments (e.g. "lockorder").
	Name string
	// Doc is the one-paragraph description printed by pboxlint -list.
	Doc string
	// Run executes the pass over one package. Findings are delivered
	// through pass.Report; the return value is reserved for pass-to-pass
	// facts (unused today, kept for x/tools signature compatibility).
	Run func(*Pass) (any, error)
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Prog is the whole-program view (DESIGN.md §14) shared by every pass
	// of one driver run: the module-wide function index, call graph, and
	// SCC order behind cross-package summaries. The driver always sets it;
	// per-program computations belong in Prog.Cache so a pass invoked once
	// per package pays for them once.
	Prog *program.Program

	// Report delivers one diagnostic. The driver fills in the analyzer
	// name and applies suppression comments.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is the reporting pass's name, filled in by the driver.
	Analyzer string
}

// Position resolves the diagnostic's file position against fset.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}
