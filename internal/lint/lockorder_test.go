package lint_test

import (
	"testing"

	"pbox/internal/lint/linttest"
	"pbox/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), "lockorder", lockorder.Analyzer)
}
