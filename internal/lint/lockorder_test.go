package lint_test

import (
	"testing"

	"pbox/internal/lint/linttest"
	"pbox/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), "lockorder", lockorder.Analyzer)
}

// TestLockOrderCrossPackage holds local locks while calling xlockdeps
// helpers whose whole-program acquisition summaries take other classes.
func TestLockOrderCrossPackage(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), "xlockorder", lockorder.Analyzer)
}
