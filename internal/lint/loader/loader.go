// Package loader loads and type-checks Go packages for the pboxlint passes
// without golang.org/x/tools. It is the offline equivalent of
// go/packages.Load(NeedSyntax|NeedTypes): one `go list -export -deps -json`
// invocation enumerates the target packages and compiles export data for
// every dependency into the build cache, and the stdlib gc importer
// (go/importer with a lookup function) then resolves imports from those
// export files while the targets themselves are parsed and type-checked
// from source.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage mirrors the fields of `go list -json` the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Match      []string
	Error      *struct{ Err string }
}

// Load lists patterns in module directory dir (repo root usually), builds
// export data for the dependency graph, and returns the packages the
// patterns matched, parsed with comments and fully type-checked. Packages
// that fail to list or type-check return an error: the linter refuses to
// bless a tree it could not fully see.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Match,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if len(p.Match) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportImporter returns a gc importer resolving import paths through the
// export-data files go list reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// check parses and type-checks one package from source.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, g := range goFiles {
		name := g
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, g)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// NewInfo allocates a types.Info with every map the passes consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// stdExports caches export-data paths for standard-library packages, shared
// by every CheckSource call in one process (the linttest fixtures).
var stdExports = make(map[string]string)

// CheckSource parses and type-checks an ad-hoc package given explicit file
// paths — the fixture loader behind the analysistest-style golden tests.
// Imports are resolved against sibling fixture directories under srcRoot
// first (GOPATH-style: import "x" loads srcRoot/x), then against the
// standard library via on-demand `go list -export`.
func CheckSource(srcRoot, pkgDir string, fset *token.FileSet) (*Package, error) {
	target, _, err := CheckSourceDeps(srcRoot, pkgDir, fset)
	return target, err
}

// CheckSourceDeps is CheckSource for multi-package fixtures: it returns the
// target package plus every sibling fixture package loaded to satisfy its
// imports (the target included, deterministic order), so the golden harness
// can hand the driver the same whole-program view production runs get.
// Unlike the export-data path of Load, fixture dependencies are type-checked
// from source and share object identity with the target's view of them.
func CheckSourceDeps(srcRoot, pkgDir string, fset *token.FileSet) (*Package, []*Package, error) {
	loading := make(map[string]bool)
	pkgs := make(map[string]*Package)
	var load func(dir, path string) (*Package, error)

	var imp types.Importer
	impFn := importFunc(func(path string) (*types.Package, error) {
		if fixDir := filepath.Join(srcRoot, filepath.FromSlash(path)); isDir(fixDir) {
			p, err := load(fixDir, path)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
		return stdImport(fset, path)
	})
	imp = impFn

	load = func(dir, path string) (*Package, error) {
		if p, ok := pkgs[path]; ok {
			return p, nil
		}
		if loading[path] {
			return nil, fmt.Errorf("loader: fixture import cycle through %q", path)
		}
		loading[path] = true
		defer delete(loading, path)
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var goFiles []string
		for _, e := range ents {
			if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
				goFiles = append(goFiles, filepath.Join(dir, e.Name()))
			}
		}
		if len(goFiles) == 0 {
			return nil, fmt.Errorf("loader: no .go files in %s", dir)
		}
		sort.Strings(goFiles)
		p, err := check(fset, imp, path, dir, goFiles)
		if err != nil {
			return nil, err
		}
		pkgs[path] = p
		return p, nil
	}

	rel, err := filepath.Rel(srcRoot, pkgDir)
	if err != nil {
		rel = filepath.Base(pkgDir)
	}
	target, err := load(pkgDir, filepath.ToSlash(rel))
	if err != nil {
		return nil, nil, err
	}
	paths := make([]string, 0, len(pkgs))
	for path := range pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	all := make([]*Package, 0, len(pkgs))
	for _, path := range paths {
		all = append(all, pkgs[path])
	}
	return target, all, nil
}

// importFunc adapts a function to types.Importer.
type importFunc func(path string) (*types.Package, error)

func (f importFunc) Import(path string) (*types.Package, error) { return f(path) }

// stdImp is the process-wide gc importer for standard-library packages. One
// shared instance (with its own FileSet — export data carries no usable
// positions anyway) keeps type identity consistent: every fixture package
// loaded in one test binary sees the same *types.Package for "sync".
var (
	stdFset = token.NewFileSet()
	stdImp  = exportImporter(stdFset, stdExports)
)

// stdImport imports a standard-library package from compiler export data,
// shelling out to `go list -export` the first time a root is needed.
func stdImport(_ *token.FileSet, path string) (*types.Package, error) {
	if _, ok := stdExports[path]; !ok {
		cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export", path)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("loader: go list -export %s: %v\n%s", path, err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listedPackage
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				stdExports[p.ImportPath] = p.Export
			}
		}
	}
	return stdImp.Import(path)
}

func isDir(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}
