// Package atomicpublish enforces the publish-then-freeze contract of the
// manager's atomic-pointer snapshots (DESIGN.md §9, §12, §14). The epoch
// read path is correct only if a value published through an atomic.Pointer
// — a shard set, a StatusView, a decision log — is never written again:
// readers load the pointer with no locks, so one post-publish store is a
// data race against every reader holding the view.
//
// Two rules:
//
//  1. At every atomic.Pointer[T].Store or Swap publish site, the published
//     value must not be written through any retained alias after the
//     publish: a later v.Field = x, *v = x, copy(v.S, ...), or a call that
//     passes v into a parameter the callee's whole-program mutation summary
//     marks as written (the §14 bottom-up ParamMask dataflow) is flagged.
//     The value a Swap returns is the previously published one — concurrent
//     readers may still hold it — so writes through the swap result are
//     flagged the same way.
//
//  2. A field that is accessed through the sync/atomic free functions
//     (atomic.AddInt64(&s.n, 1), atomic.LoadInt64, CompareAndSwapInt64, …)
//     anywhere in the program must never be read or written plainly: the
//     mixed access is a data race the typed atomics make impossible. The
//     atomically-accessed field set is collected program-wide, so an
//     atomic increment in internal/core convicts a plain read in
//     internal/telemetry.
//
// Both rules are one-sided in the suite's usual direction (DESIGN.md §9):
// aliases that escape through fields or interfaces are missed, never
// invented. Suppress intentional exceptions with
// //pboxlint:ignore atomicpublish <reason>.
package atomicpublish

import (
	"go/ast"
	"go/token"
	"go/types"

	"pbox/internal/lint/analysis"
	"pbox/internal/lint/program"
)

// Analyzer is the atomicpublish pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicpublish",
	Doc: "values published through atomic.Pointer must not be written " +
		"afterward, and sync/atomic-accessed fields must never be accessed plainly",
	Run: run,
}

// atomicPkgPath is the package whose Pointer methods and free functions are
// recognized.
const atomicPkgPath = "sync/atomic"

// publishMethods are the atomic.Pointer methods that publish their argument.
var publishMethods = map[string]bool{"Store": true, "Swap": true}

func run(pass *analysis.Pass) (any, error) {
	checkMixedAccess(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkPublishes(pass, fd)
			}
		}
	}
	return nil, nil
}

// --- rule 1: publish sites ---

// checkPublishes finds every atomic.Pointer Store/Swap in fd and verifies the
// published value is not written through a retained alias afterward.
func checkPublishes(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method := pointerPublish(info, call)
		if method == "" || len(call.Args) != 1 {
			return true
		}
		if obj, whole := publishedRoot(info, call.Args[0]); obj != nil {
			checkWritesAfter(pass, fd, call.End(), obj, whole,
				obj.Name()+" was published via atomic.Pointer."+method)
		}
		if method == "Swap" {
			if obj := swapResult(info, fd, call); obj != nil {
				checkWritesAfter(pass, fd, call.End(), obj, false,
					"receiving the previously published value from atomic.Pointer.Swap into "+obj.Name())
			}
		}
		return true
	})
}

// pointerPublish reports the method name when call is a Store or Swap on an
// atomic.Pointer receiver, "" otherwise.
func pointerPublish(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !publishMethods[sel.Sel.Name] {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != atomicPkgPath {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if ownerName(sig.Recv().Type()) != "Pointer" {
		return ""
	}
	return sel.Sel.Name
}

// publishedRoot resolves the published expression to a trackable local
// object. &v publishes the variable itself (whole = true: every later write
// to v lands in the published value); a plain identifier of reference-like
// type publishes what it points at (only writes *through* it count —
// rebinding the local is fine).
func publishedRoot(info *types.Info, arg ast.Expr) (obj types.Object, whole bool) {
	e := ast.Unparen(arg)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		if id, ok := ast.Unparen(u.X).(*ast.Ident); ok {
			return localVar(info, id), true
		}
		return nil, false
	}
	if id, ok := e.(*ast.Ident); ok {
		if v := localVar(info, id); v != nil && program.ReferenceLike(v.Type()) {
			return v, false
		}
	}
	return nil, false
}

// swapResult returns the object a Swap call's result is bound to, when the
// call is the sole RHS of an enclosing assignment to a plain identifier.
func swapResult(info *types.Info, fd *ast.FuncDecl, call *ast.CallExpr) types.Object {
	var found types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 || ast.Unparen(as.Rhs[0]) != call {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			found = localVar(info, id)
		}
		return false
	})
	return found
}

// localVar resolves an identifier to its variable object (definition or use).
func localVar(info *types.Info, id *ast.Ident) types.Object {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if v, ok := obj.(*types.Var); ok {
		return v
	}
	return nil
}

// checkWritesAfter flags writes through root (or a local alias of it) at
// positions after the publish. whole means the variable itself was published
// (&v), so unpeeled stores to it count too.
func checkWritesAfter(pass *analysis.Pass, fd *ast.FuncDecl, after token.Pos, root types.Object, whole bool, what string) {
	info := pass.TypesInfo

	// Local aliases: q := v (or q := &v when the variable was published).
	aliases := map[types.Object]bool{root: true}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := localVar(info, id)
				if obj == nil || aliases[obj] {
					continue
				}
				rhs := ast.Unparen(as.Rhs[i])
				if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
					rhs = ast.Unparen(u.X)
				}
				if rid, ok := rhs.(*ast.Ident); ok && aliases[localVar(info, rid)] {
					aliases[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	rooted := func(e ast.Expr) (types.Object, bool) {
		id, peeled := program.RootIdent(e)
		if id == nil {
			return nil, false
		}
		obj := localVar(info, id)
		if obj == nil || !aliases[obj] {
			return nil, false
		}
		return obj, peeled
	}
	report := func(pos token.Pos, how string) {
		pass.Reportf(pos, "%s after %s — published values are immutable; build a new value and re-publish it", how, what)
	}
	flagWrite := func(lhs ast.Expr, pos token.Pos) {
		obj, peeled := rooted(lhs)
		if obj == nil {
			return
		}
		// For a published pointer local, `v = x` rebinds the local and is
		// safe; for a published variable (&v), even the unpeeled store lands
		// in published memory.
		if peeled || (whole && obj == root) {
			report(pos, "write through "+obj.Name())
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil || n.Pos() <= after {
			return true
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				flagWrite(lhs, x.Pos())
			}
		case *ast.IncDecStmt:
			flagWrite(x.X, x.Pos())
		case *ast.CallExpr:
			// copy(v.S, ...) writes through the published value; so does any
			// call whose mutation summary marks the parameter written.
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && isBuiltin(info, id, "copy") {
				if len(x.Args) >= 1 {
					if obj, _ := rooted(x.Args[0]); obj != nil {
						report(x.Pos(), "copy into "+obj.Name())
					}
				}
				return true
			}
			callee := pass.Prog.Callee(info, x)
			if callee == nil {
				return true
			}
			msum := pass.Prog.MutationSummaries()[callee]
			if msum == 0 {
				return true
			}
			for pi, argExpr := range program.CallArgExprs(info, x, callee) {
				if argExpr == nil || !msum.Has(pi) {
					continue
				}
				if obj, _ := rooted(argExpr); obj != nil {
					report(x.Pos(), "call to "+callee.Name()+" (which writes through its parameter) passing "+obj.Name())
				}
			}
		}
		return true
	})
}

// --- rule 2: mixed atomic/plain access ---

// atomicFields collects, once per program, the set of fields and
// package-level variables whose address is taken by a sync/atomic free
// function call anywhere in the program, keyed by owning type and name.
func atomicFields(prog *program.Program) map[string]bool {
	return prog.Cache("atomicpublish.fields", func() any {
		set := make(map[string]bool)
		for _, fn := range prog.Funcs() {
			info := fn.Pkg.Info
			ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !atomicFreeCall(info, call) {
					return true
				}
				for _, arg := range call.Args {
					u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || u.Op != token.AND {
						continue
					}
					if key := accessKey(info, u.X); key != "" {
						set[key] = true
					}
				}
				return true
			})
		}
		return set
	}).(map[string]bool)
}

// atomicFreeCall reports whether call invokes a sync/atomic package-level
// function (the typed atomics are methods and never mix with plain access —
// the field's type forbids it).
func atomicFreeCall(info *types.Info, call *ast.CallExpr) bool {
	fn := program.CalleeObj(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != atomicPkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// accessKey names a field (owner type + field) or package-level variable
// (package + name) in a way that is stable across the export-data/source
// object split, or "" for expressions that are neither.
func accessKey(info *types.Info, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		v, ok := info.Uses[x.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return ""
		}
		owner := ownerPath(info.Types[x.X].Type)
		if owner == "" {
			return ""
		}
		return owner + "." + v.Name()
	case *ast.Ident:
		v, ok := info.Uses[x].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return ""
		}
		if v.Parent() != v.Pkg().Scope() {
			return "" // locals are single-goroutine unless they escape; skip
		}
		return v.Pkg().Path() + "." + v.Name()
	}
	return ""
}

// checkMixedAccess flags plain (non-&) reads and writes of fields the
// program accesses atomically. Taking the address (&s.n) is exempt — that is
// how the value reaches the atomic functions in the first place.
func checkMixedAccess(pass *analysis.Pass) {
	fields := atomicFields(pass.Prog)
	if len(fields) == 0 {
		return
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		// Operands of & are sanctioned: address-taking is not an access.
		addrOf := make(map[ast.Expr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.AND {
				addrOf[ast.Unparen(u.X)] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			var key string
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if addrOf[x] {
					return true
				}
				key = accessKey(info, x)
			case *ast.Ident:
				if addrOf[x] {
					return true
				}
				// Only package-level vars key as bare identifiers; field
				// accesses always come through their selector.
				key = accessKey(info, x)
			default:
				return true
			}
			if key != "" && fields[key] {
				pass.Reportf(n.Pos(),
					"plain access to %s, which is accessed with sync/atomic elsewhere in the program — mixed plain/atomic access is a data race",
					key)
				return false
			}
			return true
		})
	}
}

// ownerName peels pointers and returns the named type's bare name, or "".
func ownerName(t types.Type) string {
	for t != nil {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// ownerPath peels pointers and returns the named type's package-qualified
// name, or "".
func ownerPath(t types.Type) string {
	for t != nil {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// isBuiltin reports whether id resolves to the predeclared builtin name
// (not a shadowing user declaration).
func isBuiltin(info *types.Info, id *ast.Ident, name string) bool {
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
