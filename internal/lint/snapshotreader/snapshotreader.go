// Package snapshotreader enforces the zero-interference contract of the
// manager's snapshot read path (DESIGN.md §12). Functions annotated
//
//	//pbox:snapshotreader
//
// in their doc comment promise to serve observability reads from the
// published epoch view and lock-free atomics alone: they must not stop the
// world. The pass walks the same-package static call closure of every
// annotated function and flags anything that would re-introduce
// reader-induced interference:
//
//   - acquiring a shard lock (any Lock/RLock/TryLock on a shard.mu field —
//     the stop-the-world sweep's unit of interference)
//   - calling lockAllShards (the sweep itself)
//   - calling sweepSpools or flushSpoolsFor (flush-on-read: stealing a
//     worker's spool buffer from under it)
//   - calling flush on an eventSpool (the single-spool variant)
//
// The sanctioned escalation — the rebuild that a stale reader triggers — is
// annotated //pbox:snapshotbuilder; the walk stops at such functions, so
// StatusView may call rebuildView without a finding while a reader that
// sweeps spools directly is flagged. Suppress intentional exceptions with
// //pboxlint:ignore snapshotreader <reason>.
package snapshotreader

import (
	"go/ast"
	"go/types"
	"strings"

	"pbox/internal/lint/analysis"
)

// ReaderMarker opts a function into the check; BuilderMarker exempts the
// sanctioned rebuild escalation from the closure walk.
const (
	ReaderMarker  = "//pbox:snapshotreader"
	BuilderMarker = "//pbox:snapshotbuilder"
)

// Analyzer is the snapshotreader pass.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotreader",
	Doc: "functions annotated //pbox:snapshotreader must not acquire shard " +
		"locks or flush worker spools (the §12 zero-interference read contract)",
	Run: run,
}

// flushCalls are the functions whose mere invocation is a flush-on-read:
// they steal spooled events off worker fast paths.
var flushCalls = map[string]string{
	"sweepSpools":    "sweeps every worker spool (flush-on-read)",
	"flushSpoolsFor": "flushes worker spools (flush-on-read)",
	"lockAllShards":  "takes every shard lock (stop-the-world sweep)",
}

// spoolTypeName and shardTypeName are the owning types of the flagged
// receiver-sensitive operations.
const (
	spoolTypeName = "eventSpool"
	shardTypeName = "shard"
)

// lockMethods are the sync acquisition methods (releases are irrelevant: a
// reader that can release a shard lock already acquired one).
var lockMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
}

func run(pass *analysis.Pass) (any, error) {
	decls := make(map[*types.Func]*ast.FuncDecl)
	builders := make(map[*types.Func]bool)
	var entries []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if marked(fd, BuilderMarker) {
				builders[fn] = true
			}
			if marked(fd, ReaderMarker) {
				entries = append(entries, fn)
			}
		}
	}
	for _, entry := range entries {
		check(pass, decls, builders, entry)
	}
	return nil, nil
}

// marked reports whether the function's doc comment carries the marker.
func marked(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, marker) {
			return true
		}
	}
	return false
}

// check walks the same-package static call closure from entry, flagging
// stop-the-world operations. Builder-annotated callees terminate the walk.
func check(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, builders map[*types.Func]bool, entry *types.Func) {
	seen := map[*types.Func]bool{}
	var visit func(fn *types.Func, via string)
	visit = func(fn *types.Func, via string) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		fd := decls[fn]
		if fd == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if what, flagged := classify(pass, call); flagged {
				pass.Reportf(call.Pos(),
					"snapshot reader %s%s %s: //pbox:snapshotreader functions serve from the published view and atomics only",
					entry.Name(), via, what)
				return true
			}
			callee := calleeFunc(pass, call)
			if callee == nil || builders[callee] {
				return true // builder = the sanctioned rebuild escalation
			}
			if _, samePkg := decls[callee]; samePkg {
				next := via
				if next == "" {
					next = " (via " + callee.Name() + ")"
				}
				visit(callee, next)
			}
			return true
		})
	}
	visit(entry, "")
}

// classify reports whether call is a flagged stop-the-world operation and
// describes it.
func classify(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	callee := calleeFunc(pass, call)
	if callee != nil {
		if why, ok := flushCalls[callee.Name()]; ok {
			return "calls " + callee.Name() + ", which " + why, true
		}
		if callee.Name() == "flush" && receiverIs(callee, spoolTypeName) {
			return "calls eventSpool.flush, which steals a worker's spool buffer (flush-on-read)", true
		}
	}
	// x.mu.Lock() where x is a shard: direct stop-the-world unit.
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !lockMethods[sel.Sel.Name] {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	base, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if ownerNamed(pass.TypesInfo.Types[base.X].Type) == shardTypeName {
		return "acquires a shard lock (" + shardTypeName + "." + base.Sel.Name + "." + sel.Sel.Name + ")", true
	}
	return "", false
}

// calleeFunc resolves the static callee of a call, if any.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// receiverIs reports whether fn is a method on the named type (pointer or
// value receiver).
func receiverIs(fn *types.Func, typeName string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return ownerNamed(sig.Recv().Type()) == typeName
}

// ownerNamed unwraps pointers and returns the named type's name, or "".
func ownerNamed(t types.Type) string {
	for t != nil {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if t == nil {
		return ""
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}
