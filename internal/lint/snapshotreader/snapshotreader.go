// Package snapshotreader enforces the zero-interference contract of the
// manager's snapshot read path (DESIGN.md §12). Functions annotated
//
//	//pbox:snapshotreader
//
// in their doc comment promise to serve observability reads from the
// published epoch view and lock-free atomics alone: they must not stop the
// world. The pass walks the static call closure of every annotated function
// and flags anything that would re-introduce reader-induced interference:
//
//   - acquiring a shard lock (any Lock/RLock/TryLock on a shard.mu field —
//     the stop-the-world sweep's unit of interference)
//   - calling lockAllShards (the sweep itself)
//   - calling sweepSpools or flushSpoolsFor (flush-on-read: stealing a
//     worker's spool buffer from under it)
//   - calling flush on an eventSpool (the single-spool variant)
//
// The walk crosses package boundaries through the whole-program engine
// (DESIGN.md §14): every program function carries an interference summary —
// the stop-the-world operations its own call closure performs, computed
// bottom-up over the call-graph SCCs — and a call that leaves the package is
// judged by the callee's summary, with the finding anchored at the crossing
// call site in the reader's own package. A telemetry wrapper that sweeps
// core's spools is therefore flagged inside the annotated reader that calls
// it.
//
// The sanctioned escalation — the rebuild that a stale reader triggers — is
// annotated //pbox:snapshotbuilder; the walk (and the summary propagation)
// stops at such functions, so StatusView may call rebuildView without a
// finding while a reader that sweeps spools directly is flagged. Suppress
// intentional exceptions with //pboxlint:ignore snapshotreader <reason>.
package snapshotreader

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"pbox/internal/lint/analysis"
	"pbox/internal/lint/program"
)

// ReaderMarker opts a function into the check; BuilderMarker exempts the
// sanctioned rebuild escalation from the closure walk.
const (
	ReaderMarker  = program.MarkerSnapshotReader
	BuilderMarker = program.MarkerSnapshotBuilder
)

// Analyzer is the snapshotreader pass.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotreader",
	Doc: "functions annotated //pbox:snapshotreader must not acquire shard " +
		"locks or flush worker spools (the §12 zero-interference read contract)",
	Run: run,
}

// flushCalls are the functions whose mere invocation is a flush-on-read:
// they steal spooled events off worker fast paths.
var flushCalls = map[string]string{
	"sweepSpools":    "sweeps every worker spool (flush-on-read)",
	"flushSpoolsFor": "flushes worker spools (flush-on-read)",
	"lockAllShards":  "takes every shard lock (stop-the-world sweep)",
}

// spoolTypeName and shardTypeName are the owning types of the flagged
// receiver-sensitive operations.
const (
	spoolTypeName = "eventSpool"
	shardTypeName = "shard"
)

// lockMethods are the sync acquisition methods (releases are irrelevant: a
// reader that can release a shard lock already acquired one).
var lockMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
}

func run(pass *analysis.Pass) (any, error) {
	decls := make(map[*types.Func]*ast.FuncDecl)
	builders := make(map[*types.Func]bool)
	var entries []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if program.Marked(fd, BuilderMarker) {
				builders[fn] = true
			}
			if program.Marked(fd, ReaderMarker) {
				entries = append(entries, fn)
			}
		}
	}
	for _, entry := range entries {
		check(pass, decls, builders, entry)
	}
	return nil, nil
}

// interferenceSummaries computes — once per program, cached — the sorted set
// of stop-the-world operation descriptions each function's call closure
// performs, bottom-up over the SCCs. Builder-annotated functions keep an
// empty summary (the sanctioned escalation does not taint its callers), and
// the union rule therefore stops at them exactly as the direct walk does.
func interferenceSummaries(prog *program.Program) map[*program.Func]map[string]bool {
	return prog.Cache("snapshotreader.interference", func() any {
		sums := make(map[*program.Func]map[string]bool)
		add := func(fn *program.Func, desc string) bool {
			if sums[fn] == nil {
				sums[fn] = make(map[string]bool)
			}
			if sums[fn][desc] {
				return false
			}
			sums[fn][desc] = true
			return true
		}
		for _, scc := range prog.SCCs() {
			for changed := true; changed; {
				changed = false
				for _, fn := range scc {
					if fn.MarkedAs(BuilderMarker) {
						continue
					}
					info := fn.Pkg.Info
					ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						if desc, flagged := classify(info, call); flagged {
							if add(fn, desc) {
								changed = true
							}
							return true
						}
						if callee := prog.Callee(info, call); callee != nil {
							for desc := range sums[callee] {
								if add(fn, desc) {
									changed = true
								}
							}
						}
						return true
					})
				}
			}
		}
		return sums
	}).(map[*program.Func]map[string]bool)
}

// describeSummary renders a summary as a sorted, semicolon-joined list.
func describeSummary(sum map[string]bool) string {
	descs := make([]string, 0, len(sum))
	for d := range sum {
		descs = append(descs, d)
	}
	sort.Strings(descs)
	return strings.Join(descs, "; ")
}

// check walks the static call closure from entry, flagging stop-the-world
// operations. Builder-annotated callees terminate the walk; callees in other
// program packages are judged by their whole-program interference summary,
// with the finding anchored at the crossing call site.
func check(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, builders map[*types.Func]bool, entry *types.Func) {
	seen := map[*types.Func]bool{}
	var visit func(fn *types.Func, via string)
	visit = func(fn *types.Func, via string) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		fd := decls[fn]
		if fd == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if what, flagged := classify(pass.TypesInfo, call); flagged {
				pass.Reportf(call.Pos(),
					"snapshot reader %s%s %s: //pbox:snapshotreader functions serve from the published view and atomics only",
					entry.Name(), via, what)
				return true
			}
			callee := calleeFunc(pass, call)
			if callee == nil || builders[callee] {
				return true // builder = the sanctioned rebuild escalation
			}
			if _, samePkg := decls[callee]; samePkg {
				next := via
				if next == "" {
					next = " (via " + callee.Name() + ")"
				}
				visit(callee, next)
				return true
			}
			// Crossing into another program package: consult the callee's
			// whole-program interference summary.
			if pfn := pass.Prog.FuncOf(callee); pfn != nil && !pfn.MarkedAs(BuilderMarker) {
				if sum := interferenceSummaries(pass.Prog)[pfn]; len(sum) > 0 {
					pass.Reportf(call.Pos(),
						"snapshot reader %s%s calls %s, whose call closure %s: //pbox:snapshotreader functions serve from the published view and atomics only",
						entry.Name(), via, callee.Name(), describeSummary(sum))
				}
			}
			return true
		})
	}
	visit(entry, "")
}

// classify reports whether call is a flagged stop-the-world operation and
// describes it.
func classify(info *types.Info, call *ast.CallExpr) (string, bool) {
	callee := calleeObj(info, call)
	if callee != nil {
		if why, ok := flushCalls[callee.Name()]; ok {
			return "calls " + callee.Name() + ", which " + why, true
		}
		if callee.Name() == "flush" && receiverIs(callee, spoolTypeName) {
			return "calls eventSpool.flush, which steals a worker's spool buffer (flush-on-read)", true
		}
	}
	// x.mu.Lock() where x is a shard: direct stop-the-world unit.
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !lockMethods[sel.Sel.Name] {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	base, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if ownerNamed(info.Types[base.X].Type) == shardTypeName {
		return "acquires a shard lock (" + shardTypeName + "." + base.Sel.Name + "." + sel.Sel.Name + ")", true
	}
	return "", false
}

// calleeFunc resolves the static callee of a call, if any.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	return calleeObj(pass.TypesInfo, call)
}

// calleeObj is calleeFunc against a bare types.Info.
func calleeObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// receiverIs reports whether fn is a method on the named type (pointer or
// value receiver).
func receiverIs(fn *types.Func, typeName string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return ownerNamed(sig.Recv().Type()) == typeName
}

// ownerNamed unwraps pointers and returns the named type's name, or "".
func ownerNamed(t types.Type) string {
	for t != nil {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if t == nil {
		return ""
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}
