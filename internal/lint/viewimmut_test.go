package lint_test

import (
	"testing"

	"pbox/internal/lint/linttest"
	"pbox/internal/lint/viewimmut"
)

func TestViewImmut(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), "viewimmut", viewimmut.Analyzer)
}

// TestViewImmutCrossPackage obtains views from xviewdeps and mutates them in
// xviewimmut; the mutation summaries cross the package boundary.
func TestViewImmutCrossPackage(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), "xviewimmut", viewimmut.Analyzer)
}
