package lint_test

import (
	"testing"

	"pbox/internal/lint/hotpathalloc"
	"pbox/internal/lint/linttest"
)

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), "hotpathalloc", hotpathalloc.Analyzer)
}
