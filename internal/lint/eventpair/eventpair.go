// Package eventpair checks that pBox lifecycle events are emitted in
// matched pairs: every Hold must be matched by an Unhold and every Prepare
// by an Enter on all control-flow paths of the enclosing function
// (DESIGN.md §4 — an unmatched Prepare strands the state machine in
// Preparing and an unmatched Hold leaks a holder entry, deadlocking
// every later competitor on the resource).
//
// Modeled on x/tools' lostcancel: the pass finds calls whose argument list
// contains an opener constant (Prepare or Hold) of the core EventType type,
// derives a pairing key from the callee and the remaining arguments (so
// r.event(a, core.Hold) pairs with r.event(a, core.Unhold) but not with
// q.event(a, core.Unhold)), and then checks that a matching closer call is
// reached on every path that leaves the function, honoring defers.
//
// Split-phase APIs are the one legitimate exception: Mutex.Lock emits Hold
// and returns, with Unhold emitted later by Mutex.Unlock. The pass
// therefore only enforces intra-function pairing when the function itself
// contains BOTH sides of a pair for the same key — a function that opens
// and also closes on some path must close on all paths; a function that
// only opens is a split-phase API and is left to the dynamic state-machine
// checks.
package eventpair

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"pbox/internal/lint/analysis"
)

// Analyzer is the eventpair pass.
var Analyzer = &analysis.Analyzer{
	Name: "eventpair",
	Doc: "Hold/Unhold and Prepare/Enter events must pair on every " +
		"control-flow path of a function that emits both sides",
	Run: run,
}

// pairs maps opener event name to its closer.
var pairs = map[string]string{
	"Prepare": "Enter",
	"Hold":    "Unhold",
}

// closers is the reverse index.
var closers = map[string]string{
	"Enter":  "Prepare",
	"Unhold": "Hold",
}

// eventTypeName is the named type whose constants are lifecycle events.
// Matching by type name rather than by import path keeps fixtures
// self-contained while never misfiring in the real tree: core.EventType is
// the only such type in the module.
const eventTypeName = "EventType"

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
		// Function literals get the same treatment, independently.
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				checkBody(pass, fl.Body)
			}
			return true
		})
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	checkBody(pass, fd.Body)
}

// eventCall is one recognized event emission.
type eventCall struct {
	key   string // pairing key: callee + non-event args
	event string // Prepare | Enter | Hold | Unhold
	pos   token.Pos
}

// checkBody runs the pairing analysis over one function body. Nested
// function literals are skipped here (they are analyzed as their own
// bodies): an event emitted in a deferred or spawned closure belongs to
// that closure's control flow.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// First sweep: which pairing keys have both sides present?
	opened := map[string]map[string]bool{} // key → set of events seen
	inspectSkipFuncLits(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if ec, ok := classify(pass, call); ok {
				if opened[ec.key] == nil {
					opened[ec.key] = map[string]bool{}
				}
				opened[ec.key][ec.event] = true
			}
		}
	})
	enforced := map[string]bool{} // key|opener → enforce all-paths pairing
	for key, evs := range opened {
		for opener, closer := range pairs {
			if evs[opener] && evs[closer] {
				enforced[key+"|"+opener] = true
			}
		}
	}
	if len(enforced) == 0 {
		return
	}
	w := &walker{pass: pass, enforced: enforced}
	open := map[string]token.Pos{}
	exit, terminated := w.block(body.List, open)
	if !terminated {
		w.flagOpen(w.atExit(exit), "function returns")
	}
}

// classify recognizes a call that passes a lifecycle-event constant and
// derives its pairing key.
func classify(pass *analysis.Pass, call *ast.CallExpr) (eventCall, bool) {
	eventIdx := -1
	var event string
	for i, arg := range call.Args {
		name, ok := eventConst(pass, arg)
		if !ok {
			continue
		}
		if _, opener := pairs[name]; !opener {
			if _, closer := closers[name]; !closer {
				continue
			}
		}
		eventIdx, event = i, name
		break
	}
	if eventIdx < 0 {
		return eventCall{}, false
	}
	key := render(call.Fun)
	for i, arg := range call.Args {
		if i == eventIdx {
			continue
		}
		key += "," + render(arg)
	}
	return eventCall{key: key, event: event, pos: call.Pos()}, true
}

// eventConst reports whether expr is a constant of the EventType named type
// and returns its declared name.
func eventConst(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := expr.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	c, ok := pass.TypesInfo.Uses[id].(*types.Const)
	if !ok {
		return "", false
	}
	named, ok := c.Type().(*types.Named)
	if !ok || named.Obj().Name() != eventTypeName {
		return "", false
	}
	return c.Name(), true
}

// render produces a stable textual form of an expression for pairing keys.
func render(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return render(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		s := render(x.Fun) + "("
		for i, a := range x.Args {
			if i > 0 {
				s += ","
			}
			s += render(a)
		}
		return s + ")"
	case *ast.IndexExpr:
		return render(x.X) + "[" + render(x.Index) + "]"
	case *ast.BasicLit:
		return x.Value
	case *ast.UnaryExpr:
		return x.Op.String() + render(x.X)
	case *ast.StarExpr:
		return "*" + render(x.X)
	case *ast.ParenExpr:
		return render(x.X)
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// walker tracks open (unclosed) enforced pairs along control-flow paths.
type walker struct {
	pass     *analysis.Pass
	enforced map[string]bool
	deferred []eventCall // closers emitted via defer — apply at every exit
	reported map[token.Pos]bool
}

func (w *walker) flagOpen(open map[string]token.Pos, how string) {
	for ek, pos := range open {
		if w.reported == nil {
			w.reported = map[token.Pos]bool{}
		}
		if w.reported[pos] {
			continue
		}
		// ek is key|opener.
		opener := ek[lastBar(ek)+1:]
		if w.reported[pos] {
			continue
		}
		w.reported[pos] = true
		w.pass.Reportf(pos, "%s emitted here is not matched by %s on every path (%s with the pair still open)",
			opener, pairs[opener], how)
	}
}

func lastBar(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '|' {
			return i
		}
	}
	return -1
}

// apply processes one event call against the open-set.
func (w *walker) apply(ec eventCall, open map[string]token.Pos) {
	if closer, ok := pairs[ec.event]; ok {
		_ = closer
		if w.enforced[ec.key+"|"+ec.event] {
			open[ec.key+"|"+ec.event] = ec.pos
		}
		return
	}
	if opener, ok := closers[ec.event]; ok {
		delete(open, ec.key+"|"+opener)
	}
}

// exprEvents applies every event call inside an expression, skipping nested
// function literals.
func (w *walker) exprEvents(e ast.Expr, open map[string]token.Pos) {
	if e == nil {
		return
	}
	inspectSkipFuncLits(e, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if ec, ok := classify(w.pass, call); ok {
				w.apply(ec, open)
			}
		}
	})
}

// atExit returns the open-set at a function exit after deferred closers run.
func (w *walker) atExit(open map[string]token.Pos) map[string]token.Pos {
	out := clonePos(open)
	for _, ec := range w.deferred {
		w.apply(ec, out)
	}
	return out
}

func clonePos(m map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// mergeOpen unions two open-sets: a pair open on either incoming path is
// open after the join.
func mergeOpen(a, b map[string]token.Pos) map[string]token.Pos {
	u := clonePos(a)
	for k, v := range b {
		if _, ok := u[k]; !ok {
			u[k] = v
		}
	}
	return u
}

// block interprets a statement list; reports at each return. The returned
// bool is true when every path terminates before falling off the end.
func (w *walker) block(stmts []ast.Stmt, open map[string]token.Pos) (map[string]token.Pos, bool) {
	for _, s := range stmts {
		var terminated bool
		open, terminated = w.stmt(s, open)
		if terminated {
			return open, true
		}
	}
	return open, false
}

func (w *walker) stmt(s ast.Stmt, open map[string]token.Pos) (map[string]token.Pos, bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		w.exprEvents(x.X, open)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			w.exprEvents(e, open)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.exprEvents(v, open)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// defer emit(Unhold) — the closer runs at every subsequent exit.
		if ec, ok := classify(w.pass, x.Call); ok {
			w.deferred = append(w.deferred, ec)
			return open, false
		}
		// defer func(){ emit(Unhold) }() — closers inside count the same
		// way; openers inside a deferred closure are its own business.
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			inspectSkipFuncLits(fl.Body, func(n ast.Node) {
				if call, ok := n.(*ast.CallExpr); ok {
					if ec, ok := classify(w.pass, call); ok {
						if _, isCloser := closers[ec.event]; isCloser {
							w.deferred = append(w.deferred, ec)
						}
					}
				}
			})
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			w.exprEvents(e, open)
		}
		w.flagOpen(w.atExit(open), "returns")
		return open, true
	case *ast.BranchStmt:
		// goto/break/continue: approximate by stopping the path without an
		// exit check — the loop-level merge covers the common shapes.
		if x.Tok == token.BREAK || x.Tok == token.CONTINUE || x.Tok == token.GOTO {
			return open, true
		}
	case *ast.IfStmt:
		if x.Init != nil {
			open, _ = w.stmt(x.Init, open)
		}
		w.exprEvents(x.Cond, open)
		thenO, thenT := w.block(x.Body.List, clonePos(open))
		elseO, elseT := open, false
		if x.Else != nil {
			switch e := x.Else.(type) {
			case *ast.BlockStmt:
				elseO, elseT = w.block(e.List, clonePos(open))
			case *ast.IfStmt:
				elseO, elseT = w.stmt(e, clonePos(open))
			}
		}
		switch {
		case thenT && elseT:
			return open, true
		case thenT:
			return elseO, false
		case elseT:
			return thenO, false
		default:
			return mergeOpen(thenO, elseO), false
		}
	case *ast.BlockStmt:
		return w.block(x.List, open)
	case *ast.ForStmt:
		if x.Init != nil {
			open, _ = w.stmt(x.Init, open)
		}
		w.exprEvents(x.Cond, open)
		bodyO, _ := w.block(x.Body.List, clonePos(open))
		if x.Cond == nil && !hasBreak(x.Body) {
			// for{} with no exit: control never falls through. The returns
			// inside the body were already checked.
			return open, true
		}
		return mergeOpen(open, bodyO), false
	case *ast.RangeStmt:
		w.exprEvents(x.X, open)
		bodyO, _ := w.block(x.Body.List, clonePos(open))
		return mergeOpen(open, bodyO), false
	case *ast.SwitchStmt:
		if x.Init != nil {
			open, _ = w.stmt(x.Init, open)
		}
		w.exprEvents(x.Tag, open)
		return w.caseBodies(x.Body, open, hasDefault(x.Body))
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			open, _ = w.stmt(x.Init, open)
		}
		return w.caseBodies(x.Body, open, hasDefault(x.Body))
	case *ast.SelectStmt:
		return w.caseBodies(x.Body, open, true)
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, open)
	case *ast.GoStmt:
		if _, ok := x.Call.Fun.(*ast.FuncLit); !ok {
			w.exprEvents(x.Call, open)
		}
	case *ast.SendStmt:
		w.exprEvents(x.Value, open)
	}
	return open, false
}

// caseBodies merges clause bodies; exhaustive reports whether a default
// clause guarantees one body runs.
func (w *walker) caseBodies(body *ast.BlockStmt, open map[string]token.Pos, exhaustive bool) (map[string]token.Pos, bool) {
	var out map[string]token.Pos
	if !exhaustive {
		out = clonePos(open)
	}
	allTerminated := true
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch c := cs.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.exprEvents(e, open)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.stmt(c.Comm, clonePos(open))
			}
			stmts = c.Body
		}
		co, terminated := w.block(stmts, clonePos(open))
		if !terminated {
			allTerminated = false
			if out == nil {
				out = co
			} else {
				out = mergeOpen(out, co)
			}
		}
	}
	if exhaustive && allTerminated && len(body.List) > 0 {
		return open, true
	}
	if out == nil {
		out = clonePos(open)
	}
	return out, false
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, cs := range body.List {
		if c, ok := cs.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
		if c, ok := cs.(*ast.CommClause); ok && c.Comm == nil {
			return true
		}
	}
	return false
}

// hasBreak reports whether a block contains a break that would exit the
// enclosing for statement (not one belonging to a nested loop or switch).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BranchStmt:
			if x.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false // breaks inside bind to the inner statement
		}
		return true
	}
	for _, s := range body.List {
		ast.Inspect(s, walk)
	}
	return found
}

// inspectSkipFuncLits walks n, calling fn on every node outside nested
// function literals.
func inspectSkipFuncLits(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		fn(m)
		return true
	})
}
