// Package eventpair checks that pBox lifecycle events are emitted in
// matched pairs: every Hold must be matched by an Unhold and every Prepare
// by an Enter on all control-flow paths of the enclosing function
// (DESIGN.md §4 — an unmatched Prepare strands the state machine in
// Preparing and an unmatched Hold leaks a holder entry, deadlocking
// every later competitor on the resource).
//
// Modeled on x/tools' lostcancel: the pass finds calls whose argument list
// contains an opener constant (Prepare or Hold) of the core EventType type,
// derives a pairing key from the callee and the remaining arguments (so
// r.event(a, core.Hold) pairs with r.event(a, core.Unhold) but not with
// q.event(a, core.Unhold)), and then checks that a matching closer call is
// reached on every path that leaves the function, honoring defers.
//
// Split-phase APIs are the one legitimate exception: Mutex.Lock emits Hold
// and returns, with Unhold emitted later by Mutex.Unlock. The pass
// therefore only enforces intra-function pairing when the function itself
// contains BOTH sides of a pair for the same key — a function that opens
// and also closes on some path must close on all paths; a function that
// only opens is a split-phase API and is left to the dynamic state-machine
// checks.
//
// The pass is interprocedural through the whole-program engine (DESIGN.md
// §14): every program function gets an emission summary — the event calls
// its body performs unconditionally (top-level statements and defers, with
// the scan stopping conservatively at the first branching statement) — and
// a call to such a helper counts as emitting those events at the call site,
// with the caller's arguments substituted into the pairing keys. A wrapper
// like emitHold(m, id) in another package therefore pairs against an
// explicit Unhold for the same manager and id, and an early return between
// the two is flagged exactly as if the events were inlined.
package eventpair

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pbox/internal/lint/analysis"
	"pbox/internal/lint/program"
)

// Analyzer is the eventpair pass.
var Analyzer = &analysis.Analyzer{
	Name: "eventpair",
	Doc: "Hold/Unhold and Prepare/Enter events must pair on every " +
		"control-flow path of a function that emits both sides",
	Run: run,
}

// pairs maps opener event name to its closer.
var pairs = map[string]string{
	"Prepare": "Enter",
	"Hold":    "Unhold",
}

// closers is the reverse index.
var closers = map[string]string{
	"Enter":  "Prepare",
	"Unhold": "Hold",
}

// eventTypeName is the named type whose constants are lifecycle events.
// Matching by type name rather than by import path keeps fixtures
// self-contained while never misfiring in the real tree: core.EventType is
// the only such type in the module.
const eventTypeName = "EventType"

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
		// Function literals get the same treatment, independently.
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				checkBody(pass, fl.Body)
			}
			return true
		})
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	checkBody(pass, fd.Body)
}

// eventCall is one recognized event emission.
type eventCall struct {
	key   string // pairing key: callee + non-event args
	event string // Prepare | Enter | Hold | Unhold
	pos   token.Pos
}

// checkBody runs the pairing analysis over one function body. Nested
// function literals are skipped here (they are analyzed as their own
// bodies): an event emitted in a deferred or spawned closure belongs to
// that closure's control flow.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// First sweep: which pairing keys have both sides present?
	opened := map[string]map[string]bool{} // key → set of events seen
	inspectSkipFuncLits(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			for _, ec := range expand(pass, call) {
				if opened[ec.key] == nil {
					opened[ec.key] = map[string]bool{}
				}
				opened[ec.key][ec.event] = true
			}
		}
	})
	enforced := map[string]bool{} // key|opener → enforce all-paths pairing
	for key, evs := range opened {
		for opener, closer := range pairs {
			if evs[opener] && evs[closer] {
				enforced[key+"|"+opener] = true
			}
		}
	}
	if len(enforced) == 0 {
		return
	}
	w := &walker{pass: pass, enforced: enforced}
	open := map[string]token.Pos{}
	exit, terminated := w.block(body.List, open)
	if !terminated {
		w.flagOpen(w.atExit(exit), "function returns")
	}
}

// classify recognizes a call that passes a lifecycle-event constant and
// derives its pairing key.
func classify(info *types.Info, call *ast.CallExpr) (eventCall, bool) {
	return classifyWith(info, call, nil)
}

// classifyWith is classify with an identifier resolver threaded into the key
// rendering — the summary builder substitutes placeholders for the enclosing
// function's parameters.
func classifyWith(info *types.Info, call *ast.CallExpr, resolve func(*ast.Ident) (string, bool)) (eventCall, bool) {
	eventIdx := -1
	var event string
	for i, arg := range call.Args {
		name, ok := eventConst(info, arg)
		if !ok {
			continue
		}
		if _, opener := pairs[name]; !opener {
			if _, closer := closers[name]; !closer {
				continue
			}
		}
		eventIdx, event = i, name
		break
	}
	if eventIdx < 0 {
		return eventCall{}, false
	}
	key := renderWith(call.Fun, resolve)
	for i, arg := range call.Args {
		if i == eventIdx {
			continue
		}
		key += "," + renderWith(arg, resolve)
	}
	return eventCall{key: key, event: event, pos: call.Pos()}, true
}

// eventConst reports whether expr is a constant of the EventType named type
// and returns its declared name.
func eventConst(info *types.Info, expr ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := expr.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok {
		return "", false
	}
	named, ok := c.Type().(*types.Named)
	if !ok || named.Obj().Name() != eventTypeName {
		return "", false
	}
	return c.Name(), true
}

// render produces a stable textual form of an expression for pairing keys.
func render(e ast.Expr) string { return renderWith(e, nil) }

// renderWith renders an expression, diverting identifiers through resolve
// first (used to stamp parameter placeholders into summary templates).
func renderWith(e ast.Expr, resolve func(*ast.Ident) (string, bool)) string {
	switch x := e.(type) {
	case *ast.Ident:
		if resolve != nil {
			if s, ok := resolve(x); ok {
				return s
			}
		}
		return x.Name
	case *ast.SelectorExpr:
		return renderWith(x.X, resolve) + "." + x.Sel.Name
	case *ast.CallExpr:
		s := renderWith(x.Fun, resolve) + "("
		for i, a := range x.Args {
			if i > 0 {
				s += ","
			}
			s += renderWith(a, resolve)
		}
		return s + ")"
	case *ast.IndexExpr:
		return renderWith(x.X, resolve) + "[" + renderWith(x.Index, resolve) + "]"
	case *ast.BasicLit:
		return x.Value
	case *ast.UnaryExpr:
		return x.Op.String() + renderWith(x.X, resolve)
	case *ast.StarExpr:
		return "*" + renderWith(x.X, resolve)
	case *ast.ParenExpr:
		return renderWith(x.X, resolve)
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// emission is one summarized unconditional event call of a program function:
// the event name plus a pairing-key template in which references to the
// function's own parameters appear as placeholders.
type emission struct {
	event string
	key   string
}

// placeholder is the template token for parameter i. NUL bytes cannot occur
// in rendered source text, so substitution is collision-free.
func placeholder(i int) string {
	return "\x00" + fmt.Sprint(i) + "\x00"
}

// emissionSummaries computes (once per program, cached) each function's
// unconditional emissions. Bottom-up over the SCCs so a helper that wraps
// another helper composes; callees inside the same (recursive) component are
// skipped — their summaries are not final, and dropping them only loses
// events, never invents them.
func emissionSummaries(prog *program.Program) map[*program.Func][]emission {
	return prog.Cache("eventpair.emissions", func() any {
		sums := make(map[*program.Func][]emission)
		done := make(map[*program.Func]bool)
		for _, scc := range prog.SCCs() {
			for _, fn := range scc {
				if ems := summarize(prog, fn, sums, done); len(ems) > 0 {
					sums[fn] = ems
				}
			}
			for _, fn := range scc {
				done[fn] = true
			}
		}
		return sums
	}).(map[*program.Func][]emission)
}

// summarize scans fn's top-level statements for event calls and calls to
// already-summarized helpers. The scan stops at the first statement that is
// neither an expression-statement call nor a defer: anything else (an if, a
// loop, an early return) could make later emissions conditional, and the
// summary must only promise events that happen on every path.
func summarize(prog *program.Program, fn *program.Func, sums map[*program.Func][]emission, done map[*program.Func]bool) []emission {
	info := fn.Pkg.Info
	params := program.ParamObjects(fn)
	paramIdx := make(map[types.Object]int, len(params))
	for i, o := range params {
		paramIdx[o] = i
	}
	resolve := func(id *ast.Ident) (string, bool) {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if i, ok := paramIdx[obj]; ok {
			return placeholder(i), true
		}
		return "", false
	}

	var out []emission
	addCall := func(call *ast.CallExpr) {
		if ec, ok := classifyWith(info, call, resolve); ok {
			out = append(out, emission{event: ec.event, key: ec.key})
			return
		}
		callee := prog.Callee(info, call)
		if callee == nil || !done[callee] || len(sums[callee]) == 0 {
			return
		}
		// Inline the helper's summary, substituting its placeholders with
		// this call's arguments rendered in fn's own template language —
		// composition keeps fn's parameters as placeholders.
		args := program.CallArgExprs(info, call, callee)
		for _, em := range sums[callee] {
			key := em.key
			ok := true
			for i, arg := range args {
				if !strings.Contains(key, placeholder(i)) {
					continue
				}
				if arg == nil {
					ok = false
					break
				}
				key = strings.ReplaceAll(key, placeholder(i), renderWith(arg, resolve))
			}
			if ok {
				out = append(out, emission{event: em.event, key: key})
			}
		}
	}

	for _, s := range fn.Decl.Body.List {
		switch x := s.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok {
				addCall(call)
				continue
			}
		case *ast.DeferStmt:
			// A defer directly in the body runs by the time fn returns, so
			// from the caller's view it is as unconditional as a plain call.
			addCall(x.Call)
			continue
		}
		break
	}
	return out
}

// expand returns the event calls a call expression performs: its own
// classification, or — when the callee is a program function with a
// nonempty emission summary — the summarized events with this call's
// arguments substituted into the pairing keys and positions anchored at the
// call site.
func expand(pass *analysis.Pass, call *ast.CallExpr) []eventCall {
	if ec, ok := classify(pass.TypesInfo, call); ok {
		return []eventCall{ec}
	}
	if pass.Prog == nil {
		return nil
	}
	callee := pass.Prog.Callee(pass.TypesInfo, call)
	if callee == nil {
		return nil
	}
	sums := emissionSummaries(pass.Prog)[callee]
	if len(sums) == 0 {
		return nil
	}
	args := program.CallArgExprs(pass.TypesInfo, call, callee)
	out := make([]eventCall, 0, len(sums))
	for _, em := range sums {
		key := em.key
		ok := true
		for i, arg := range args {
			if !strings.Contains(key, placeholder(i)) {
				continue
			}
			if arg == nil {
				ok = false
				break
			}
			key = strings.ReplaceAll(key, placeholder(i), render(arg))
		}
		if ok {
			out = append(out, eventCall{key: key, event: em.event, pos: call.Pos()})
		}
	}
	return out
}

// walker tracks open (unclosed) enforced pairs along control-flow paths.
type walker struct {
	pass     *analysis.Pass
	enforced map[string]bool
	deferred []eventCall // closers emitted via defer — apply at every exit
	reported map[token.Pos]bool
}

func (w *walker) flagOpen(open map[string]token.Pos, how string) {
	for ek, pos := range open {
		if w.reported == nil {
			w.reported = map[token.Pos]bool{}
		}
		if w.reported[pos] {
			continue
		}
		// ek is key|opener.
		opener := ek[lastBar(ek)+1:]
		if w.reported[pos] {
			continue
		}
		w.reported[pos] = true
		w.pass.Reportf(pos, "%s emitted here is not matched by %s on every path (%s with the pair still open)",
			opener, pairs[opener], how)
	}
}

func lastBar(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '|' {
			return i
		}
	}
	return -1
}

// apply processes one event call against the open-set.
func (w *walker) apply(ec eventCall, open map[string]token.Pos) {
	if closer, ok := pairs[ec.event]; ok {
		_ = closer
		if w.enforced[ec.key+"|"+ec.event] {
			open[ec.key+"|"+ec.event] = ec.pos
		}
		return
	}
	if opener, ok := closers[ec.event]; ok {
		delete(open, ec.key+"|"+opener)
	}
}

// exprEvents applies every event call inside an expression, skipping nested
// function literals.
func (w *walker) exprEvents(e ast.Expr, open map[string]token.Pos) {
	if e == nil {
		return
	}
	inspectSkipFuncLits(e, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			for _, ec := range expand(w.pass, call) {
				w.apply(ec, open)
			}
		}
	})
}

// atExit returns the open-set at a function exit after deferred closers run.
func (w *walker) atExit(open map[string]token.Pos) map[string]token.Pos {
	out := clonePos(open)
	for _, ec := range w.deferred {
		w.apply(ec, out)
	}
	return out
}

func clonePos(m map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// mergeOpen unions two open-sets: a pair open on either incoming path is
// open after the join.
func mergeOpen(a, b map[string]token.Pos) map[string]token.Pos {
	u := clonePos(a)
	for k, v := range b {
		if _, ok := u[k]; !ok {
			u[k] = v
		}
	}
	return u
}

// block interprets a statement list; reports at each return. The returned
// bool is true when every path terminates before falling off the end.
func (w *walker) block(stmts []ast.Stmt, open map[string]token.Pos) (map[string]token.Pos, bool) {
	for _, s := range stmts {
		var terminated bool
		open, terminated = w.stmt(s, open)
		if terminated {
			return open, true
		}
	}
	return open, false
}

func (w *walker) stmt(s ast.Stmt, open map[string]token.Pos) (map[string]token.Pos, bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		w.exprEvents(x.X, open)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			w.exprEvents(e, open)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.exprEvents(v, open)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// defer emit(Unhold) — the closer runs at every subsequent exit.
		if ec, ok := classify(w.pass.TypesInfo, x.Call); ok {
			w.deferred = append(w.deferred, ec)
			return open, false
		}
		// defer func(){ emit(Unhold) }() — closers inside count the same
		// way; openers inside a deferred closure are its own business.
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			inspectSkipFuncLits(fl.Body, func(n ast.Node) {
				if call, ok := n.(*ast.CallExpr); ok {
					for _, ec := range expand(w.pass, call) {
						if _, isCloser := closers[ec.event]; isCloser {
							w.deferred = append(w.deferred, ec)
						}
					}
				}
			})
			return open, false
		}
		// defer helper() where helper has an emission summary: its closers
		// run at every subsequent exit, like a direct deferred closer.
		for _, ec := range expand(w.pass, x.Call) {
			if _, isCloser := closers[ec.event]; isCloser {
				w.deferred = append(w.deferred, ec)
			}
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			w.exprEvents(e, open)
		}
		w.flagOpen(w.atExit(open), "returns")
		return open, true
	case *ast.BranchStmt:
		// goto/break/continue: approximate by stopping the path without an
		// exit check — the loop-level merge covers the common shapes.
		if x.Tok == token.BREAK || x.Tok == token.CONTINUE || x.Tok == token.GOTO {
			return open, true
		}
	case *ast.IfStmt:
		if x.Init != nil {
			open, _ = w.stmt(x.Init, open)
		}
		w.exprEvents(x.Cond, open)
		thenO, thenT := w.block(x.Body.List, clonePos(open))
		elseO, elseT := open, false
		if x.Else != nil {
			switch e := x.Else.(type) {
			case *ast.BlockStmt:
				elseO, elseT = w.block(e.List, clonePos(open))
			case *ast.IfStmt:
				elseO, elseT = w.stmt(e, clonePos(open))
			}
		}
		switch {
		case thenT && elseT:
			return open, true
		case thenT:
			return elseO, false
		case elseT:
			return thenO, false
		default:
			return mergeOpen(thenO, elseO), false
		}
	case *ast.BlockStmt:
		return w.block(x.List, open)
	case *ast.ForStmt:
		if x.Init != nil {
			open, _ = w.stmt(x.Init, open)
		}
		w.exprEvents(x.Cond, open)
		bodyO, _ := w.block(x.Body.List, clonePos(open))
		if x.Cond == nil && !hasBreak(x.Body) {
			// for{} with no exit: control never falls through. The returns
			// inside the body were already checked.
			return open, true
		}
		return mergeOpen(open, bodyO), false
	case *ast.RangeStmt:
		w.exprEvents(x.X, open)
		bodyO, _ := w.block(x.Body.List, clonePos(open))
		return mergeOpen(open, bodyO), false
	case *ast.SwitchStmt:
		if x.Init != nil {
			open, _ = w.stmt(x.Init, open)
		}
		w.exprEvents(x.Tag, open)
		return w.caseBodies(x.Body, open, hasDefault(x.Body))
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			open, _ = w.stmt(x.Init, open)
		}
		return w.caseBodies(x.Body, open, hasDefault(x.Body))
	case *ast.SelectStmt:
		return w.caseBodies(x.Body, open, true)
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, open)
	case *ast.GoStmt:
		if _, ok := x.Call.Fun.(*ast.FuncLit); !ok {
			w.exprEvents(x.Call, open)
		}
	case *ast.SendStmt:
		w.exprEvents(x.Value, open)
	}
	return open, false
}

// caseBodies merges clause bodies; exhaustive reports whether a default
// clause guarantees one body runs.
func (w *walker) caseBodies(body *ast.BlockStmt, open map[string]token.Pos, exhaustive bool) (map[string]token.Pos, bool) {
	var out map[string]token.Pos
	if !exhaustive {
		out = clonePos(open)
	}
	allTerminated := true
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch c := cs.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.exprEvents(e, open)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.stmt(c.Comm, clonePos(open))
			}
			stmts = c.Body
		}
		co, terminated := w.block(stmts, clonePos(open))
		if !terminated {
			allTerminated = false
			if out == nil {
				out = co
			} else {
				out = mergeOpen(out, co)
			}
		}
	}
	if exhaustive && allTerminated && len(body.List) > 0 {
		return open, true
	}
	if out == nil {
		out = clonePos(open)
	}
	return out, false
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, cs := range body.List {
		if c, ok := cs.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
		if c, ok := cs.(*ast.CommClause); ok && c.Comm == nil {
			return true
		}
	}
	return false
}

// hasBreak reports whether a block contains a break that would exit the
// enclosing for statement (not one belonging to a nested loop or switch).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BranchStmt:
			if x.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false // breaks inside bind to the inner statement
		}
		return true
	}
	for _, s := range body.List {
		ast.Inspect(s, walk)
	}
	return found
}

// inspectSkipFuncLits walks n, calling fn on every node outside nested
// function literals.
func inspectSkipFuncLits(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		fn(m)
		return true
	})
}
