// Package driver runs a set of analysis passes over loaded packages,
// applies //pboxlint:ignore suppressions, and renders diagnostics — the
// multichecker behind cmd/pboxlint and the shared reporting stack behind
// cmd/pboxanalyze.
//
// Suppression syntax:
//
//	//pboxlint:ignore <pass> <reason>
//
// placed on the diagnostic's line or the line directly above it. The pass
// name must match the reporting analyzer ("*" matches every pass) and the
// reason is mandatory: an undocumented exception is itself a finding.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"

	"pbox/internal/lint/analysis"
	"pbox/internal/lint/loader"
	"pbox/internal/lint/program"
)

// ignorePrefix is the suppression comment marker.
const ignorePrefix = "//pboxlint:ignore"

// Result is the outcome of one Run.
type Result struct {
	// Diagnostics are the surviving (unsuppressed) findings in file/line
	// order.
	Diagnostics []analysis.Diagnostic
	// Suppressed counts findings silenced by //pboxlint:ignore comments.
	Suppressed int
	Fset       *token.FileSet
	// Returns holds each pass's run-value per package, for drivers (like
	// pboxanalyze) that consume structured results rather than diagnostics.
	Returns []PassReturn
}

// PassReturn is one analyzer's return value for one package.
type PassReturn struct {
	Analyzer   string
	ImportPath string
	Value      any
}

// Run executes every analyzer over every package and merges the findings.
// All packages of one Run share one whole-program view (Pass.Prog), so
// passes see call chains that cross package boundaries.
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer) (*Result, error) {
	res := &Result{}
	prog := program.Build(pkgs)
	for _, pkg := range pkgs {
		res.Fset = pkg.Fset
		sup := collectIgnores(pkg)
		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Prog:      prog,
				Report: func(d analysis.Diagnostic) {
					d.Analyzer = a.Name
					diags = append(diags, d)
				},
			}
			val, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
			if val != nil {
				res.Returns = append(res.Returns, PassReturn{
					Analyzer: a.Name, ImportPath: pkg.ImportPath, Value: val,
				})
			}
			for _, d := range diags {
				if sup.matches(pkg.Fset, d) {
					res.Suppressed++
					continue
				}
				res.Diagnostics = append(res.Diagnostics, d)
			}
		}
		// Malformed suppressions are findings too: an ignore with no
		// reason, or one that silenced nothing, is a stale exception.
		for _, bad := range sup.malformed {
			res.Diagnostics = append(res.Diagnostics, bad)
		}
	}
	if res.Fset != nil {
		sort.SliceStable(res.Diagnostics, func(i, j int) bool {
			pi, pj := res.Fset.Position(res.Diagnostics[i].Pos), res.Fset.Position(res.Diagnostics[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return res.Diagnostics[i].Analyzer < res.Diagnostics[j].Analyzer
		})
	}
	return res, nil
}

// Render writes diagnostics in the conventional file:line:col form and
// reports whether any were written.
func Render(w io.Writer, res *Result) bool {
	for _, d := range res.Diagnostics {
		pos := res.Fset.Position(d.Pos)
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	return len(res.Diagnostics) > 0
}

// ignoreEntry is one parsed //pboxlint:ignore comment.
type ignoreEntry struct {
	file string
	line int
	pass string
}

// suppressions is the per-package ignore index.
type suppressions struct {
	entries   []ignoreEntry
	malformed []analysis.Diagnostic
}

// collectIgnores scans a package's comments for suppression markers.
func collectIgnores(pkg *loader.Package) *suppressions {
	s := &suppressions{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, analysis.Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "pboxlint",
						Message:  "malformed suppression: want //pboxlint:ignore <pass> <reason>",
					})
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				s.entries = append(s.entries, ignoreEntry{
					file: pos.Filename,
					line: pos.Line,
					pass: fields[0],
				})
			}
		}
	}
	return s
}

// matches reports whether d is silenced by an ignore on its own line or the
// line directly above.
func (s *suppressions) matches(fset *token.FileSet, d analysis.Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, e := range s.entries {
		if e.file != pos.Filename {
			continue
		}
		if e.line != pos.Line && e.line != pos.Line-1 {
			continue
		}
		if e.pass == "*" || e.pass == d.Analyzer {
			return true
		}
	}
	return false
}

// InspectFiles walks every file of a pass with ast.Inspect — a convenience
// shared by the passes.
func InspectFiles(files []*ast.File, fn func(ast.Node) bool) {
	for _, f := range files {
		ast.Inspect(f, fn)
	}
}
