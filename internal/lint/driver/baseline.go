// Baseline support: a committed JSON multiset of known findings lets new
// passes land enforcing from day one — existing debt is recorded, CI fails
// only on findings not in the record, and a drift gate keeps the committed
// file byte-identical to a fresh regeneration so the record can never rot
// silently. Matching is by (rule, file, message) — line numbers shift with
// every unrelated edit and deliberately do not participate.
package driver

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineFile is the conventional committed baseline path, relative to the
// repository root.
const BaselineFile = ".pboxlint-baseline.json"

// BaselineEntry is one recorded finding. Duplicate entries are meaningful:
// the baseline is a multiset, so two identical findings in one file need two
// entries.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Message string `json:"message"`
}

// Baseline is the committed finding record.
type Baseline struct {
	// Comment documents the file's purpose for humans reading the diff.
	Comment string `json:"comment,omitempty"`
	// Findings is sorted by (rule, file, message) for stable diffs.
	Findings []BaselineEntry `json:"findings"`
}

// NewBaseline records every diagnostic of res as a baseline, with files made
// relative to baseDir (matching must survive checkouts at different paths).
func NewBaseline(res *Result, baseDir string) *Baseline {
	b := &Baseline{
		Comment: "known pboxlint findings; CI fails only on findings not recorded here. " +
			"Regenerate with: go run ./cmd/pboxlint -writebaseline " + BaselineFile + " ./...",
		Findings: []BaselineEntry{},
	}
	for _, d := range res.Diagnostics {
		pos := res.Fset.Position(d.Pos)
		b.Findings = append(b.Findings, BaselineEntry{
			Rule:    d.Analyzer,
			File:    relativeURI(baseDir, pos.Filename),
			Message: d.Message,
		})
	}
	b.sort()
	return b
}

func (b *Baseline) sort() {
	sort.Slice(b.Findings, func(i, j int) bool {
		x, y := b.Findings[i], b.Findings[j]
		if x.Rule != y.Rule {
			return x.Rule < y.Rule
		}
		if x.File != y.File {
			return x.File < y.File
		}
		return x.Message < y.Message
	})
}

// WriteFile writes the baseline as stable, indented JSON with a trailing
// newline — the exact bytes the drift gate compares.
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	return &b, nil
}

// Match partitions res.Diagnostics against the baseline multiset: the
// returned map marks the indexes of diagnostics covered by an entry (each
// entry covers at most one diagnostic). Diagnostics not in the map are new.
func (b *Baseline) Match(res *Result, baseDir string) map[int]bool {
	type key struct{ rule, file, message string }
	budget := make(map[key]int, len(b.Findings))
	for _, e := range b.Findings {
		budget[key{e.Rule, e.File, e.Message}]++
	}
	matched := make(map[int]bool)
	for i, d := range res.Diagnostics {
		pos := res.Fset.Position(d.Pos)
		k := key{d.Analyzer, relativeURI(baseDir, pos.Filename), d.Message}
		if budget[k] > 0 {
			budget[k]--
			matched[i] = true
		}
	}
	return matched
}
