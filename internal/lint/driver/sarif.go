// SARIF 2.1.0 rendering of a driver Result — the interchange format CI
// uploads so findings annotate pull requests. Only the fields consumers
// actually read are emitted: tool.driver with one reportingDescriptor per
// pass, and one result per diagnostic with a physical location. Findings
// matched by the committed baseline carry a suppression of kind "external",
// which SARIF viewers render as "known, not newly introduced".
package driver

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"

	"pbox/internal/lint/analysis"
)

// sarifVersion and sarifSchema pin the emitted format.
const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
)

// SARIF document structure (the subset pboxlint emits).
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// RenderSARIF writes the result as a SARIF 2.1.0 log. analyzers supplies the
// rule table (every selected pass appears, findings or not); baseDir, when
// non-empty, makes artifact URIs repo-relative; baselined marks the
// diagnostics (by index into res.Diagnostics) to emit with an external
// suppression.
func RenderSARIF(w io.Writer, res *Result, analyzers []*analysis.Analyzer, baseDir string, baselined map[int]bool) error {
	rules := make([]sarifRule, 0, len(analyzers))
	ruleIndex := make(map[string]int, len(analyzers))
	for _, a := range analyzers {
		ruleIndex[a.Name] = len(rules)
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	// The driver itself reports malformed suppressions under "pboxlint".
	ensureRule := func(name string) int {
		if i, ok := ruleIndex[name]; ok {
			return i
		}
		ruleIndex[name] = len(rules)
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifMessage{Text: "pboxlint driver diagnostics"}})
		return ruleIndex[name]
	}

	results := make([]sarifResult, 0, len(res.Diagnostics))
	for i, d := range res.Diagnostics {
		pos := res.Fset.Position(d.Pos)
		r := sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ensureRule(d.Analyzer),
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relativeURI(baseDir, pos.Filename)},
					Region:           sarifRegion{StartLine: pos.Line, StartColumn: pos.Column},
				},
			}},
		}
		if baselined[i] {
			r.Suppressions = []sarifSuppression{{Kind: "external", Justification: "baselined in " + BaselineFile}}
		}
		results = append(results, r)
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "pboxlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// relativeURI makes path relative to baseDir with forward slashes — SARIF
// artifact URIs — falling back to the absolute path outside the base.
func relativeURI(baseDir, path string) string {
	if baseDir != "" {
		if rel, err := filepath.Rel(baseDir, path); err == nil && !startsWithDotDot(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(path)
}

func startsWithDotDot(rel string) bool {
	return rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// RenderJSON writes the result as a flat JSON finding list (machine-readable
// without the SARIF envelope).
func RenderJSON(w io.Writer, res *Result, baselined map[int]bool) error {
	type finding struct {
		Rule      string `json:"rule"`
		File      string `json:"file"`
		Line      int    `json:"line"`
		Column    int    `json:"column"`
		Message   string `json:"message"`
		Baselined bool   `json:"baselined,omitempty"`
	}
	out := make([]finding, 0, len(res.Diagnostics))
	for i, d := range res.Diagnostics {
		pos := res.Fset.Position(d.Pos)
		out = append(out, finding{
			Rule: d.Analyzer, File: pos.Filename, Line: pos.Line, Column: pos.Column,
			Message: d.Message, Baselined: baselined[i],
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
