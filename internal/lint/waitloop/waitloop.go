// Package waitloop adapts the hand-rolled Algorithm 2 analyzer
// (internal/analyzer — wait-in-loop candidate locations for state-event
// annotation) onto the pboxlint driver, so pboxanalyze and pboxlint share
// one package-loading and diagnostic-reporting stack.
//
// Unlike the other passes, waitloop reports advisory candidates, not
// violations: each finding marks a loop that blocks on a waiting call and
// whose exit depends on shared state — the paper's signal that pBox state
// events belong there. cmd/pboxlint therefore excludes it from the default
// set; it runs when selected explicitly (-passes waitloop), which is what
// cmd/pboxanalyze does.
package waitloop

import (
	"go/token"

	"pbox/internal/analyzer"
	"pbox/internal/lint/analysis"
)

// Analyzer is the waitloop pass.
var Analyzer = &analysis.Analyzer{
	Name: "waitloop",
	Doc: "Algorithm 2: flag waiting calls inside loops gated on shared " +
		"state as candidate pBox state-event locations (advisory)",
	Run: run,
}

// WaitFuncs overrides the waiting-function list (nil selects
// analyzer.DefaultWaitFuncs). Set by cmd/pboxanalyze's -waitfuncs flag
// before the driver runs.
var WaitFuncs []string

func run(pass *analysis.Pass) (any, error) {
	a := analyzer.New(WaitFuncs)
	res := a.AnalyzeFiles(pass.Fset, pass.Files)
	for _, loc := range res.Locations {
		// Re-derive the token position from the file/line the legacy
		// analyzer reports: scan the pass files for the matching position.
		pos := findPos(pass, loc.File, loc.Line)
		pass.Reportf(pos, "wait via %s inside loop gated on shared vars (%s): candidate pbox state-event location in %s",
			loc.WaitCall, join(loc.SharedVars), loc.Func)
	}
	return res, nil
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}

// findPos maps a file:line back to a token.Pos within the pass's files.
func findPos(pass *analysis.Pass, file string, line int) token.Pos {
	var pos token.Pos
	pass.Fset.Iterate(func(f *token.File) bool {
		if f.Name() != file {
			return true
		}
		if line >= 1 && line <= f.LineCount() {
			pos = f.LineStart(line)
		}
		return false
	})
	return pos
}
