package lint_test

import (
	"path/filepath"
	"testing"

	"pbox/internal/analyzer"
	"pbox/internal/lint/analysis"
	"pbox/internal/lint/driver"
	"pbox/internal/lint/loader"
	"pbox/internal/lint/waitloop"
)

// TestWaitloopPortMatchesLegacy pins the Algorithm 2 port: running the
// analyzer through the shared loader/driver stack must produce exactly the
// candidate locations the legacy directory walker produced on internal/vres
// (same files, lines, wait calls, and shared-variable sets — compared via
// the stable Location.String() rendering pboxanalyze prints).
func TestWaitloopPortMatchesLegacy(t *testing.T) {
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	vresDir := filepath.Join(repoRoot, "internal", "vres")

	legacy, err := analyzer.New(nil).AnalyzeDir(vresDir)
	if err != nil {
		t.Fatal(err)
	}

	pkgs, err := loader.Load(repoRoot, "./internal/vres")
	if err != nil {
		t.Fatal(err)
	}
	res, err := driver.Run(pkgs, []*analysis.Analyzer{waitloop.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	var ported *analyzer.Result
	for _, ret := range res.Returns {
		if r, ok := ret.Value.(*analyzer.Result); ok {
			ported = r
		}
	}
	if ported == nil {
		t.Fatal("waitloop pass returned no result for internal/vres")
	}

	if ported.Files != legacy.Files {
		t.Errorf("Files = %d, legacy %d", ported.Files, legacy.Files)
	}
	if ported.InspectedFuncs != legacy.InspectedFuncs {
		t.Errorf("InspectedFuncs = %d, legacy %d", ported.InspectedFuncs, legacy.InspectedFuncs)
	}
	if got, want := render(ported), render(legacy); got != want {
		t.Errorf("ported locations differ from legacy:\nported:\n%s\nlegacy:\n%s", got, want)
	}
	// Every candidate location must also surface as a driver diagnostic, so
	// pboxlint -passes waitloop reports the same information.
	if len(res.Diagnostics) != len(legacy.Locations) {
		t.Errorf("driver reported %d diagnostics, legacy found %d locations",
			len(res.Diagnostics), len(legacy.Locations))
	}
}

func render(r *analyzer.Result) string {
	out := ""
	for _, l := range r.Locations {
		out += l.String() + "\n"
	}
	return out
}
