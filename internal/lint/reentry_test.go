package lint_test

import (
	"testing"

	"pbox/internal/lint/linttest"
	"pbox/internal/lint/reentry"
)

func TestReentry(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), "reentry", reentry.Analyzer)
}
