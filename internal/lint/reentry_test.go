package lint_test

import (
	"testing"

	"pbox/internal/lint/linttest"
	"pbox/internal/lint/reentry"
)

func TestReentry(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), "reentry", reentry.Analyzer)
}

// TestReentryCrossPackage re-enters the manager through xreentrydeps
// helpers; the whole-program reach summaries carry the violation across the
// package boundary and anchor the finding at the crossing call.
func TestReentryCrossPackage(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), "xreentry", reentry.Analyzer)
}
