package vres

import (
	"testing"
	"testing/quick"
	"time"

	"pbox/internal/core"
)

func testPoolCosts() BufferPoolCosts {
	return BufferPoolCosts{
		Hit:         time.Microsecond,
		ReadIO:      2 * time.Microsecond,
		Scan:        time.Microsecond,
		WritebackIO: 2 * time.Microsecond,
	}
}

func TestBufferPoolHitMiss(t *testing.T) {
	bp := NewBufferPool(4, testPoolCosts())
	id := PageID{Table: "t", Page: 1}
	if hit := bp.Get(nil, id, false); hit {
		t.Fatal("first access reported a hit")
	}
	if hit := bp.Get(nil, id, false); !hit {
		t.Fatal("second access reported a miss")
	}
	if !bp.Cached(id) {
		t.Fatal("page not resident after access")
	}
	if bp.Resident() != 1 || bp.FreeFrames() != 3 {
		t.Fatalf("resident=%d free=%d, want 1/3", bp.Resident(), bp.FreeFrames())
	}
}

func TestBufferPoolEvictsWhenFull(t *testing.T) {
	bp := NewBufferPool(3, testPoolCosts())
	for p := 0; p < 3; p++ {
		bp.Get(nil, PageID{Table: "t", Page: p}, false)
	}
	if bp.FreeFrames() != 0 {
		t.Fatalf("free = %d, want 0", bp.FreeFrames())
	}
	bp.Get(nil, PageID{Table: "t", Page: 99}, false)
	if bp.Resident() != 3 {
		t.Fatalf("resident = %d, want capacity 3", bp.Resident())
	}
	if !bp.Cached(PageID{Table: "t", Page: 99}) {
		t.Fatal("newly accessed page not resident")
	}
}

func TestBufferPoolMissEmitsDeferEvents(t *testing.T) {
	bp := NewBufferPool(1, testPoolCosts())
	act := &recordingActivity{}
	bp.Get(nil, PageID{Table: "t", Page: 0}, false) // fill the pool
	bp.Get(act, PageID{Table: "t", Page: 1}, false) // must evict
	want := []core.EventType{core.Prepare, core.Enter}
	if got := act.sequence(); !eventsEqual(got, want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
}

func TestBufferPoolBatchHoldsFreeList(t *testing.T) {
	bp := NewBufferPool(4, testPoolCosts())
	act := &recordingActivity{}
	ids := []PageID{{Table: "b", Page: 0}, {Table: "b", Page: 1}}
	hits := bp.GetBatch(act, ids)
	if hits != 0 {
		t.Fatalf("hits = %d on a cold pool, want 0", hits)
	}
	seq := act.sequence()
	if len(seq) < 4 || seq[0] != core.Prepare || seq[len(seq)-1] != core.Unhold {
		t.Fatalf("batch events = %v, want Prepare..Unhold", seq)
	}
	if hits := bp.GetBatch(nil, ids); hits != 2 {
		t.Fatalf("warm batch hits = %d, want 2", hits)
	}
}

func TestBufferPoolDirtyTracking(t *testing.T) {
	bp := NewBufferPool(1, testPoolCosts())
	bp.Get(nil, PageID{Table: "t", Page: 0}, true) // dirty page
	act := &recordingActivity{}
	t0 := time.Now()
	bp.Get(act, PageID{Table: "t", Page: 1}, false) // evicts the dirty page
	elapsed := time.Since(t0)
	// Eviction of a dirty page pays scan + writeback + read ≈ 5µs of
	// modeled cost; the call must at least have taken the modeled time.
	if elapsed < 4*time.Microsecond {
		t.Fatalf("dirty eviction too fast: %v", elapsed)
	}
}

// TestPropBufferPoolResidencyInvariant: resident + free == capacity after
// any access pattern.
func TestPropBufferPoolResidencyInvariant(t *testing.T) {
	f := func(pages []uint8) bool {
		bp := NewBufferPool(8, testPoolCosts())
		for _, p := range pages {
			bp.Get(nil, PageID{Table: "t", Page: int(p % 32)}, p%3 == 0)
		}
		return bp.Resident()+bp.FreeFrames() == bp.Capacity() &&
			bp.Resident() <= bp.Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
