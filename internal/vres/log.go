package vres

import (
	"sync/atomic"
	"time"

	"pbox/internal/isolation"
)

// LogCosts parameterizes the append-only log cost model.
type LogCosts struct {
	// Append is the CPU cost of appending one entry.
	Append time.Duration
	// ScanPerEntry is the CPU cost per entry of scanning history
	// (MVCC visibility checks walking old versions).
	ScanPerEntry time.Duration
	// PurgePerEntry is the CPU cost per entry of purging/cleaning.
	PurgePerEntry time.Duration
	// PinnedChain amplifies appends while history is pinned: with an old
	// snapshot alive, every update must retain full version chains
	// instead of collapsing them (the UNDO growth dynamic of the paper's
	// Figure 1). Zero or one means no amplification.
	PinnedChain int64
}

// DefaultLogCosts returns the scaled-down cost model used by the database
// substrates.
func DefaultLogCosts() LogCosts {
	return LogCosts{
		Append:        2 * time.Microsecond,
		ScanPerEntry:  500 * time.Nanosecond,
		PurgePerEntry: 1 * time.Microsecond,
	}
}

// AppendLog models a history log virtual resource: InnoDB's UNDO log (case
// c5, the paper's lead example in Figure 1), PostgreSQL's WAL (c10), or any
// append-mostly structure with a background cleaner. The log itself is the
// contended resource: appends, reads, and purge passes all take it, and a
// purge pass's hold time grows with the backlog — exactly the dynamic of
// "the UNDO log is frequently held by the purge thread (iterating log
// entries)".
type AppendLog struct {
	mu      *Mutex
	costs   LogCosts
	entries atomic.Int64
	// minEntry tracks the oldest entry still needed by a reader snapshot
	// (a long-running transaction pins history, case c5's trigger).
	pinned atomic.Int64
}

// NewAppendLog creates an empty instrumented log.
func NewAppendLog(costs LogCosts) *AppendLog {
	return &AppendLog{mu: NewMutex(), costs: costs}
}

// Append appends n entries on behalf of act. While history is pinned the
// append is amplified by the PinnedChain factor (version chains must be
// retained in full).
func (l *AppendLog) Append(act isolation.Activity, n int) {
	if l.pinned.Load() > 0 && l.costs.PinnedChain > 1 {
		n *= int(l.costs.PinnedChain)
	}
	l.mu.Lock(act)
	if act != nil {
		act.Work(time.Duration(n) * l.costs.Append)
	}
	l.entries.Add(int64(n))
	l.mu.Unlock(act)
}

// Scan reads history on behalf of act; the cost grows with the backlog the
// reader must walk (MVCC reads walking undo chains).
func (l *AppendLog) Scan(act isolation.Activity, maxEntries int64) {
	l.mu.Lock(act)
	n := l.entries.Load()
	if maxEntries > 0 && n > maxEntries {
		n = maxEntries
	}
	if act != nil && n > 0 {
		act.Work(time.Duration(n) * l.costs.ScanPerEntry)
	}
	l.mu.Unlock(act)
}

// Pin marks history as needed by a long-running snapshot: purge cannot
// reclaim entries while pins exist.
func (l *AppendLog) Pin() { l.pinned.Add(1) }

// Unpin releases a snapshot pin.
func (l *AppendLog) Unpin() { l.pinned.Add(-1) }

// PurgeChunk purges up to chunk entries on behalf of act, holding the log
// for the duration of the pass. It returns how many entries were purged.
// While pins exist nothing can be reclaimed (the backlog keeps growing),
// matching the long-transaction trigger of case c5.
func (l *AppendLog) PurgeChunk(act isolation.Activity, chunk int64) int64 {
	if l.pinned.Load() > 0 {
		return 0
	}
	l.mu.Lock(act)
	n := l.entries.Load()
	if n > chunk {
		n = chunk
	}
	if n > 0 {
		if act != nil {
			act.Work(time.Duration(n) * l.costs.PurgePerEntry)
		}
		l.entries.Add(-n)
	}
	l.mu.Unlock(act)
	return n
}

// Len returns the current backlog.
func (l *AppendLog) Len() int64 { return l.entries.Load() }

// Pinned returns the number of active snapshot pins.
func (l *AppendLog) Pinned() int64 { return l.pinned.Load() }

// LockKey exposes the underlying resource key for tests.
func (l *AppendLog) LockKey() uintptr { return uintptr(l.mu.Key()) }
