package vres

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"pbox/internal/core"
	"pbox/internal/exec"
	"pbox/internal/isolation"
)

// recordingActivity captures emitted state events for assertions.
type recordingActivity struct {
	mu     sync.Mutex
	events []recordedEvent
}

type recordedEvent struct {
	key core.ResourceKey
	ev  core.EventType
}

func (r *recordingActivity) Begin(string)      {}
func (r *recordingActivity) End(time.Duration) {}
func (r *recordingActivity) Event(key core.ResourceKey, ev core.EventType) {
	r.mu.Lock()
	r.events = append(r.events, recordedEvent{key, ev})
	r.mu.Unlock()
}
func (r *recordingActivity) Work(d time.Duration) { exec.Work(d) }
func (r *recordingActivity) IO(d time.Duration)   { exec.IOWait(d) }
func (r *recordingActivity) Gate() time.Duration  { return 0 }
func (r *recordingActivity) Close()               {}

func (r *recordingActivity) sequence() []core.EventType {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]core.EventType, len(r.events))
	for i, e := range r.events {
		out[i] = e.ev
	}
	return out
}

var _ isolation.Activity = (*recordingActivity)(nil)

func eventsEqual(got, want []core.EventType) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestMutexEmitsCanonicalEventSequence(t *testing.T) {
	m := NewMutexPoll(time.Microsecond)
	act := &recordingActivity{}
	m.Lock(act)
	if !m.Locked() {
		t.Fatal("mutex not locked after Lock")
	}
	m.Unlock(act)
	if m.Locked() {
		t.Fatal("mutex still locked after Unlock")
	}
	want := []core.EventType{core.Prepare, core.Enter, core.Hold, core.Unhold}
	if got := act.sequence(); !eventsEqual(got, want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
}

func TestMutexNilActivity(t *testing.T) {
	m := NewMutexPoll(time.Microsecond)
	m.Lock(nil) // must not panic
	m.Unlock(nil)
}

func TestMutexMutualExclusion(t *testing.T) {
	m := NewMutexPoll(time.Microsecond)
	var inside atomic.Int32
	var maxInside atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				m.Lock(nil)
				n := inside.Add(1)
				if n > maxInside.Load() {
					maxInside.Store(n)
				}
				inside.Add(-1)
				m.Unlock(nil)
			}
		}()
	}
	wg.Wait()
	if maxInside.Load() > 1 {
		t.Fatalf("observed %d goroutines inside the mutex", maxInside.Load())
	}
}

func TestMutexTryLock(t *testing.T) {
	m := NewMutexPoll(time.Microsecond)
	act := &recordingActivity{}
	if !m.TryLock(act) {
		t.Fatal("TryLock on free mutex failed")
	}
	if m.TryLock(nil) {
		t.Fatal("TryLock on held mutex succeeded")
	}
	m.Unlock(act)
	if !m.TryLock(nil) {
		t.Fatal("TryLock after unlock failed")
	}
	m.Unlock(nil)
}

func TestRWLockSharedHoldersCoexist(t *testing.T) {
	l := NewRWLockPoll(time.Microsecond)
	a, b := &recordingActivity{}, &recordingActivity{}
	l.LockShared(a)
	l.LockShared(b)
	if got := l.Readers(); got != 2 {
		t.Fatalf("readers = %d, want 2", got)
	}
	l.UnlockShared(a)
	l.UnlockShared(b)
	if got := l.Readers(); got != 0 {
		t.Fatalf("readers after unlock = %d, want 0", got)
	}
}

func TestRWLockExclusiveBlocksShared(t *testing.T) {
	l := NewRWLockPoll(time.Microsecond)
	l.LockExclusive(nil)
	acquired := make(chan struct{})
	go func() {
		l.LockShared(nil)
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("shared acquired while exclusive held")
	case <-time.After(2 * time.Millisecond):
	}
	l.UnlockExclusive(nil)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("shared never acquired after exclusive release")
	}
	l.UnlockShared(nil)
}

func TestRWLockSharedBlocksExclusive(t *testing.T) {
	l := NewRWLockPoll(time.Microsecond)
	l.LockShared(nil)
	acquired := make(chan struct{})
	go func() {
		l.LockExclusive(nil)
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("exclusive acquired while shared held")
	case <-time.After(2 * time.Millisecond):
	}
	l.UnlockShared(nil)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("exclusive never acquired after shared release")
	}
	l.UnlockExclusive(nil)
}

func TestKeysAreUnique(t *testing.T) {
	seen := map[core.ResourceKey]bool{}
	for i := 0; i < 100; i++ {
		k := NewKey()
		if seen[k] {
			t.Fatalf("duplicate key %v", k)
		}
		seen[k] = true
	}
	m1, m2 := NewMutex(), NewMutex()
	if m1.Key() == m2.Key() {
		t.Fatal("two mutexes share a key")
	}
}

// TestPropMutexBalancedLockUnlock: any interleaving of balanced Lock/Unlock
// pairs across goroutines leaves the mutex free.
func TestPropMutexBalancedLockUnlock(t *testing.T) {
	f := func(workers uint8, rounds uint8) bool {
		w := int(workers%4) + 1
		r := int(rounds%8) + 1
		m := NewMutexPoll(time.Microsecond)
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < r; j++ {
					m.Lock(nil)
					m.Unlock(nil)
				}
			}()
		}
		wg.Wait()
		return !m.Locked()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
