package vres

import (
	"sync"
	"testing"
	"time"

	"pbox/internal/core"
)

func testLogCosts() LogCosts {
	return LogCosts{
		Append:        100 * time.Nanosecond,
		ScanPerEntry:  50 * time.Nanosecond,
		PurgePerEntry: 100 * time.Nanosecond,
	}
}

func TestAppendLogBasics(t *testing.T) {
	l := NewAppendLog(testLogCosts())
	l.Append(nil, 10)
	if l.Len() != 10 {
		t.Fatalf("len = %d, want 10", l.Len())
	}
	if n := l.PurgeChunk(nil, 4); n != 4 {
		t.Fatalf("purged %d, want 4", n)
	}
	if l.Len() != 6 {
		t.Fatalf("len = %d, want 6", l.Len())
	}
	if n := l.PurgeChunk(nil, 100); n != 6 {
		t.Fatalf("purged %d, want 6", n)
	}
	if n := l.PurgeChunk(nil, 100); n != 0 {
		t.Fatalf("purged %d from empty log", n)
	}
}

func TestAppendLogPinBlocksPurge(t *testing.T) {
	l := NewAppendLog(testLogCosts())
	l.Append(nil, 5)
	l.Pin()
	if n := l.PurgeChunk(nil, 10); n != 0 {
		t.Fatalf("purged %d while pinned", n)
	}
	l.Unpin()
	if n := l.PurgeChunk(nil, 10); n != 5 {
		t.Fatalf("purged %d after unpin, want 5", n)
	}
}

func TestAppendLogPinnedChainAmplification(t *testing.T) {
	costs := testLogCosts()
	costs.PinnedChain = 4
	l := NewAppendLog(costs)
	l.Append(nil, 10)
	if l.Len() != 10 {
		t.Fatalf("unpinned append amplified: %d", l.Len())
	}
	l.Pin()
	l.Append(nil, 10)
	if l.Len() != 50 {
		t.Fatalf("pinned append not amplified: %d, want 50", l.Len())
	}
	l.Unpin()
}

func TestAppendLogScanEmitsLockEvents(t *testing.T) {
	l := NewAppendLog(testLogCosts())
	l.Append(nil, 100)
	act := &recordingActivity{}
	l.Scan(act, 10)
	want := []core.EventType{core.Prepare, core.Enter, core.Hold, core.Unhold}
	if got := act.sequence(); !eventsEqual(got, want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueuePoll[int](0, time.Microsecond)
	for i := 0; i < 5; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	for i := 0; i < 5; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v, want %d", v, ok, i)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestQueueCapacityBound(t *testing.T) {
	q := NewQueuePoll[int](2, time.Microsecond)
	if !q.TryPush(1) || !q.TryPush(2) {
		t.Fatal("pushes under capacity failed")
	}
	if q.TryPush(3) {
		t.Fatal("push over capacity succeeded")
	}
	q.TryPop()
	if !q.TryPush(3) {
		t.Fatal("push after pop failed")
	}
}

func TestQueuePushBlocksUntilSpace(t *testing.T) {
	q := NewQueuePoll[int](1, time.Microsecond)
	q.TryPush(1)
	act := &recordingActivity{}
	pushed := make(chan struct{})
	go func() {
		q.Push(act, 2)
		close(pushed)
	}()
	select {
	case <-pushed:
		t.Fatal("push on full queue returned immediately")
	case <-time.After(2 * time.Millisecond):
	}
	q.TryPop()
	select {
	case <-pushed:
	case <-time.After(time.Second):
		t.Fatal("push never completed after space freed")
	}
	seq := act.sequence()
	if len(seq) != 2 || seq[0] != core.Prepare || seq[1] != core.Enter {
		t.Fatalf("blocked push events = %v", seq)
	}
}

func TestQueuePushDelayed(t *testing.T) {
	q := NewQueuePoll[int](0, time.Microsecond)
	q.PushDelayed(42, 20*time.Millisecond)
	if _, ok := q.TryPop(); ok {
		t.Fatal("delayed item popped before deadline")
	}
	q.TryPush(7)
	v, ok := q.TryPop()
	if !ok || v != 7 {
		t.Fatalf("eligible item skipped: %d,%v", v, ok)
	}
	time.Sleep(25 * time.Millisecond)
	v, ok = q.TryPop()
	if !ok || v != 42 {
		t.Fatalf("delayed item not delivered after deadline: %d,%v", v, ok)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueuePoll[int](0, time.Microsecond)
	q.TryPush(1)
	q.Close()
	if q.TryPush(2) {
		t.Fatal("push after close succeeded")
	}
	if v, ok := q.Pop(nil); !ok || v != 1 {
		t.Fatalf("drain pop = %d,%v", v, ok)
	}
	if _, ok := q.Pop(nil); ok {
		t.Fatal("pop after drain of closed queue succeeded")
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueuePoll[int](8, time.Microsecond)
	const items = 200
	var wg sync.WaitGroup
	got := make(chan int, items)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := q.Pop(nil)
				if !ok {
					return
				}
				q.Done(nil)
				got <- v
			}
		}()
	}
	for i := 0; i < items; i++ {
		q.Push(nil, i)
	}
	q.Close()
	wg.Wait()
	close(got)
	sum := 0
	n := 0
	for v := range got {
		sum += v
		n++
	}
	if n != items {
		t.Fatalf("consumed %d items, want %d", n, items)
	}
	if want := items * (items - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d (items lost or duplicated)", sum, want)
	}
}
