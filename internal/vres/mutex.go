package vres

import (
	"sync/atomic"
	"time"

	"pbox/internal/core"
	"pbox/internal/isolation"
)

// Mutex is an instrumented mutual-exclusion virtual resource (the "custom
// lock" and "custom mutex" of cases c1/c2, the system locks of c15/c16).
// Acquisition follows the paper's annotation pattern: PREPARE before the
// wait loop, ENTER and HOLD once acquired, UNHOLD after release.
type Mutex struct {
	resource
	state atomic.Int32
}

// NewMutex creates an instrumented mutex with the default poll interval.
func NewMutex() *Mutex { return NewMutexPoll(0) }

// NewMutexPoll creates an instrumented mutex with poll interval poll.
func NewMutexPoll(poll time.Duration) *Mutex {
	return &Mutex{resource: newResource(poll)}
}

// Lock acquires the mutex on behalf of act.
func (m *Mutex) Lock(act isolation.Activity) {
	m.event(act, core.Prepare)
	for !m.state.CompareAndSwap(0, 1) {
		m.sleep()
	}
	m.event(act, core.Enter)
	m.event(act, core.Hold)
}

// TryLock attempts to acquire without blocking. On success it emits the
// ENTER/HOLD pair (with a zero-length deferred window).
func (m *Mutex) TryLock(act isolation.Activity) bool {
	if !m.state.CompareAndSwap(0, 1) {
		return false
	}
	m.event(act, core.Prepare)
	m.event(act, core.Enter)
	m.event(act, core.Hold)
	return true
}

// Unlock releases the mutex. The real lock is released before the UNHOLD
// event so a penalty applied to the caller never extends the critical
// section (the action-timing rule of Section 4.4.1).
func (m *Mutex) Unlock(act isolation.Activity) {
	m.state.Store(0)
	m.event(act, core.Unhold)
}

// Locked reports whether the mutex is currently held (diagnostics).
func (m *Mutex) Locked() bool { return m.state.Load() != 0 }

// RWLock is an instrumented shared/exclusive lock, modeling PostgreSQL
// LWLocks (case c8: exclusive-mode waiters blocked by shared-mode holders)
// and table-level locks (c7).
type RWLock struct {
	resource
	// state: 0 free, >0 number of shared holders, -1 exclusive.
	state atomic.Int32
}

// NewRWLock creates an instrumented shared/exclusive lock.
func NewRWLock() *RWLock { return NewRWLockPoll(0) }

// NewRWLockPoll creates an RWLock with poll interval poll.
func NewRWLockPoll(poll time.Duration) *RWLock {
	return &RWLock{resource: newResource(poll)}
}

// LockShared acquires the lock in shared mode.
func (l *RWLock) LockShared(act isolation.Activity) {
	l.event(act, core.Prepare)
	for {
		s := l.state.Load()
		if s >= 0 && l.state.CompareAndSwap(s, s+1) {
			break
		}
		l.sleep()
	}
	l.event(act, core.Enter)
	l.event(act, core.Hold)
}

// UnlockShared releases a shared acquisition.
func (l *RWLock) UnlockShared(act isolation.Activity) {
	l.state.Add(-1)
	l.event(act, core.Unhold)
}

// LockExclusive acquires the lock in exclusive mode.
func (l *RWLock) LockExclusive(act isolation.Activity) {
	l.event(act, core.Prepare)
	for !l.state.CompareAndSwap(0, -1) {
		l.sleep()
	}
	l.event(act, core.Enter)
	l.event(act, core.Hold)
}

// UnlockExclusive releases an exclusive acquisition.
func (l *RWLock) UnlockExclusive(act isolation.Activity) {
	l.state.Store(0)
	l.event(act, core.Unhold)
}

// Readers returns the current reader count (negative means exclusive).
func (l *RWLock) Readers() int { return int(l.state.Load()) }
