// Package vres provides instrumented application virtual resources: mutexes,
// shared/exclusive locks, concurrency tickets, buffer pools, append-only
// logs, and bounded queues. Each primitive emits the four pBox state events
// (PREPARE/ENTER/HOLD/UNHOLD) through the isolation.Activity of the calling
// activity, exactly where the paper tells developers to place update_pbox
// calls (Section 4.2, Figure 9).
//
// All blocking primitives use sleep-and-recheck loops rather than runtime
// synchronization. That is deliberate and faithful: the real-world
// interference cases the paper reproduces all block in such loops (InnoDB's
// srv_conc sleep loop, buf_LRU_get_free_block's goto loop, fcgid's busy
// wait), and the loop keeps waiters visible in the manager's competitor map
// while the holder releases, which is what Algorithm 1's UNHOLD-time
// detection observes.
package vres

import (
	"sync/atomic"
	"time"

	"pbox/internal/core"
	"pbox/internal/exec"
	"pbox/internal/isolation"
)

// DefaultPoll is the default recheck interval of the wait loops. It plays
// the role of os_thread_sleep(sleep_in_us) in Figure 9. The real systems
// back off for milliseconds in these loops (InnoDB's srv_conc sleep
// defaults to 10ms), which is exactly why a noisy activity that re-acquires
// a resource back-to-back starves the sleeping waiters — the dynamic pBox's
// penalties break up. 500µs preserves that dynamic at the reproduction's
// timescale.
const DefaultPoll = 500 * time.Microsecond

// keyCounter allocates unique virtual-resource keys. The paper names a
// resource by the address of its object; a process-wide counter gives the
// same uniqueness without pinning objects.
var keyCounter atomic.Uintptr

// NewKey returns a fresh virtual-resource key.
func NewKey() core.ResourceKey {
	return core.ResourceKey(keyCounter.Add(1))
}

// resource holds the fields every instrumented primitive shares.
type resource struct {
	key  core.ResourceKey
	poll time.Duration
}

func newResource(poll time.Duration) resource {
	if poll <= 0 {
		poll = DefaultPoll
	}
	return resource{key: NewKey(), poll: poll}
}

// Key returns the primitive's virtual-resource key.
func (r *resource) Key() core.ResourceKey { return r.key }

// event emits a state event for the resource on behalf of act. A nil
// activity (un-instrumented caller) is a no-op, which is how the vanilla
// runs and the mistake-tolerance experiment drop annotations.
func (r *resource) event(act isolation.Activity, ev core.EventType) {
	if act != nil {
		act.Event(r.key, ev)
	}
}

// sleep pauses one poll interval.
func (r *resource) sleep() { exec.SleepPrecise(r.poll) }
