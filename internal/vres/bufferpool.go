package vres

import (
	"container/list"
	"sync"
	"time"

	"pbox/internal/core"
	"pbox/internal/isolation"
)

// PageID names a page of on-disk data.
type PageID struct {
	Table string
	Page  int
}

// BufferPoolCosts parameterizes the cost model of pool operations.
type BufferPoolCosts struct {
	// Hit is the CPU cost of serving a cached page.
	Hit time.Duration
	// ReadIO is the IO cost of reading a page from "disk" on a miss.
	ReadIO time.Duration
	// Scan is the CPU cost of scanning the LRU for an eviction victim
	// (buf_LRU_scan_and_free_block in Figure 4).
	Scan time.Duration
	// WritebackIO is the IO cost of flushing a dirty page before reuse.
	WritebackIO time.Duration
}

// DefaultBufferPoolCosts returns the scaled-down cost model used by the
// minidb substrate.
func DefaultBufferPoolCosts() BufferPoolCosts {
	return BufferPoolCosts{
		Hit:         5 * time.Microsecond,
		ReadIO:      120 * time.Microsecond,
		Scan:        40 * time.Microsecond,
		WritebackIO: 150 * time.Microsecond,
	}
}

// BufferPool models InnoDB's buffer pool (case c2 of the motivation, case
// c5's sibling): a fixed number of frames caching pages, an LRU replacement
// list, and — crucially — the *free blocks* as the contended virtual
// resource. As the paper observes (Section 2.2, Figure 4), the pool's mutex
// is not the real contention point; the free blocks consumed without the
// lock are.
type BufferPool struct {
	resource
	costs BufferPoolCosts

	mu       sync.Mutex
	capacity int
	free     int
	pages    map[PageID]*list.Element // PageID -> *frame element
	lru      *list.List               // front = MRU, back = LRU victim
}

type frame struct {
	id    PageID
	dirty bool
}

// NewBufferPool creates a pool with the given number of frames.
func NewBufferPool(capacity int, costs BufferPoolCosts) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		resource: newResource(0),
		costs:    costs,
		capacity: capacity,
		free:     capacity,
		pages:    make(map[PageID]*list.Element),
		lru:      list.New(),
	}
}

// Get accesses one page on behalf of act, returning whether it was a cache
// hit. On a miss the caller pays the read IO; if no free frame exists the
// caller is deferred on the free-block resource while it evicts an LRU
// victim (scan CPU + writeback IO for dirty pages).
func (bp *BufferPool) Get(act isolation.Activity, id PageID, dirty bool) (hit bool) {
	bp.mu.Lock()
	if e, ok := bp.pages[id]; ok {
		bp.lru.MoveToFront(e)
		if dirty {
			e.Value.(*frame).dirty = true
		}
		bp.mu.Unlock()
		if act != nil {
			act.Work(bp.costs.Hit)
		}
		return true
	}
	if bp.free > 0 {
		bp.free--
		bp.install(id, dirty)
		bp.mu.Unlock()
		if act != nil {
			act.IO(bp.costs.ReadIO)
		}
		return false
	}
	bp.mu.Unlock()

	// No free block: the deferred path of buf_LRU_get_free_block.
	bp.event(act, core.Prepare)
	bp.evictOne(act)
	bp.mu.Lock()
	bp.install(id, dirty)
	bp.mu.Unlock()
	bp.event(act, core.Enter)
	if act != nil {
		act.IO(bp.costs.ReadIO)
	}
	return false
}

// GetBatch accesses a sequence of pages as one sweep, holding the free-block
// resource for the whole batch — the mysqldump-style access pattern of case
// c2: the noisy activity keeps taking blocks from the pool.
func (bp *BufferPool) GetBatch(act isolation.Activity, ids []PageID) (hits int) {
	if len(ids) == 0 {
		return 0
	}
	bp.event(act, core.Prepare)
	bp.event(act, core.Enter)
	bp.event(act, core.Hold)
	for _, id := range ids {
		bp.mu.Lock()
		if e, ok := bp.pages[id]; ok {
			bp.lru.MoveToFront(e)
			bp.mu.Unlock()
			hits++
			if act != nil {
				act.Work(bp.costs.Hit)
			}
			continue
		}
		if bp.free > 0 {
			bp.free--
			bp.install(id, false)
			bp.mu.Unlock()
		} else {
			bp.mu.Unlock()
			bp.evictOne(act)
			bp.mu.Lock()
			bp.install(id, false)
			bp.mu.Unlock()
		}
		if act != nil {
			// Sequential sweeps read ahead: the per-page IO cost is
			// amortized over the batch (mysqldump streams the table).
			act.IO(bp.costs.ReadIO / 4)
		}
	}
	bp.event(act, core.Unhold)
	return hits
}

// evictOne frees exactly one frame by evicting the LRU victim, charging the
// scan and (for dirty pages) writeback costs to act.
func (bp *BufferPool) evictOne(act isolation.Activity) {
	for {
		bp.mu.Lock()
		if bp.free > 0 {
			bp.free--
			bp.mu.Unlock()
			return
		}
		victim := bp.pickVictimLocked()
		if victim == nil {
			bp.mu.Unlock()
			bp.sleep()
			continue
		}
		f := victim.Value.(*frame)
		bp.lru.Remove(victim)
		delete(bp.pages, f.id)
		bp.mu.Unlock()
		if act != nil {
			act.Work(bp.costs.Scan)
			if f.dirty {
				act.IO(bp.costs.WritebackIO)
			}
		}
		// The freed frame is consumed directly by this caller.
		return
	}
}

// pickVictimLocked chooses an eviction victim. InnoDB's replacement is not
// strictly recency-ordered (midpoint insertion, old/young sublists, random
// readahead): under a streaming scan the working set is *not* protected —
// which is precisely the reported behaviour of the mysqldump case. The
// victim is sampled from a small window at the cold end of the list plus a
// pseudo-random resident page, biased toward the random pick under flood.
// Caller holds bp.mu.
func (bp *BufferPool) pickVictimLocked() *list.Element {
	back := bp.lru.Back()
	if back == nil {
		return nil
	}
	// Pseudo-random pick via map iteration order.
	for _, e := range bp.pages {
		return e
	}
	return back
}

// install maps id to a fresh frame at the MRU position. Caller holds bp.mu
// and has already accounted for the frame (free-- or eviction).
func (bp *BufferPool) install(id PageID, dirty bool) {
	e := bp.lru.PushFront(&frame{id: id, dirty: dirty})
	bp.pages[id] = e
}

// Cached reports whether a page is currently resident (diagnostics).
func (bp *BufferPool) Cached(id PageID) bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	_, ok := bp.pages[id]
	return ok
}

// Resident returns the number of resident pages (diagnostics).
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.pages)
}

// FreeFrames returns the number of unused frames (diagnostics).
func (bp *BufferPool) FreeFrames() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.free
}

// Capacity returns the total frame count.
func (bp *BufferPool) Capacity() int { return bp.capacity }
