package vres

import (
	"sync"
	"time"

	"pbox/internal/core"
	"pbox/internal/isolation"
)

// Queue is an instrumented bounded task queue. Its capacity (free slots) is
// the virtual resource: producers deferred on a full queue emit
// PREPARE/ENTER, and a consumer that drains a slot emits HOLD/UNHOLD around
// the dequeue, so Algorithm 1 can attribute producer stalls to the activity
// occupying the queue (the fcgid request queue of case c11, the event queues
// of the Varnish/Memcached substrates).
type Queue[T any] struct {
	resource
	mu       sync.Mutex
	items    []queued[T]
	capacity int
	closed   bool
}

type queued[T any] struct {
	item      T
	notBefore time.Time
}

// NewQueue creates a queue with the given capacity (<=0 means unbounded).
func NewQueue[T any](capacity int) *Queue[T] {
	return NewQueuePoll[T](capacity, 0)
}

// NewQueuePoll is NewQueue with an explicit recheck interval. Event loops
// that dispatch continuously want a fine poll; producer backoff on a full
// queue is modeled by the default.
func NewQueuePoll[T any](capacity int, poll time.Duration) *Queue[T] {
	return &Queue[T]{resource: newResource(poll), capacity: capacity}
}

// TryPush enqueues without blocking; reports success.
func (q *Queue[T]) TryPush(item T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || (q.capacity > 0 && len(q.items) >= q.capacity) {
		return false
	}
	q.items = append(q.items, queued[T]{item: item})
	return true
}

// Push enqueues on behalf of act, blocking in a recheck loop while the queue
// is full. Returns false if the queue is closed.
func (q *Queue[T]) Push(act isolation.Activity, item T) bool {
	if q.TryPush(item) {
		return true
	}
	q.event(act, core.Prepare)
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			q.event(act, core.Enter)
			return false
		}
		if q.capacity <= 0 || len(q.items) < q.capacity {
			q.items = append(q.items, queued[T]{item: item})
			q.mu.Unlock()
			q.event(act, core.Enter)
			return true
		}
		q.mu.Unlock()
		q.sleep()
	}
}

// PushDelayed enqueues an item that must not be dequeued before delay has
// elapsed — the requeue primitive event-driven applications use for
// penalized shared-thread pBoxes (Section 5). Delayed pushes bypass the
// capacity bound so a penalty can never deadlock the queue.
func (q *Queue[T]) PushDelayed(item T, delay time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, queued[T]{item: item, notBefore: time.Now().Add(delay)})
}

// TryPop dequeues the first eligible item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	q.mu.Lock()
	defer q.mu.Unlock()
	now := time.Now()
	for i := range q.items {
		if q.items[i].notBefore.IsZero() || !now.Before(q.items[i].notBefore) {
			it := q.items[i].item
			q.items = append(q.items[:i], q.items[i+1:]...)
			return it, true
		}
	}
	return zero, false
}

// Pop dequeues, blocking in a recheck loop until an item is available or the
// queue is closed and drained. The consumer emits HOLD on the queue resource
// while it owns the dequeued slot; callers must call Done when the item's
// processing no longer occupies the slot.
func (q *Queue[T]) Pop(act isolation.Activity) (T, bool) {
	var zero T
	for {
		if it, ok := q.TryPop(); ok {
			q.event(act, core.Hold)
			return it, true
		}
		q.mu.Lock()
		closed := q.closed
		empty := len(q.items) == 0
		q.mu.Unlock()
		if closed && empty {
			return zero, false
		}
		q.sleep()
	}
}

// Done marks the slot taken by Pop as released.
func (q *Queue[T]) Done(act isolation.Activity) {
	q.event(act, core.Unhold)
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close marks the queue closed; Pop drains remaining items then reports
// false, and pushes fail.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
}
