package vres

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pbox/internal/core"
)

func TestSlotsLimitEnforced(t *testing.T) {
	s := NewSlotsPoll(3, time.Microsecond)
	var inside, maxInside atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				s.Acquire(nil)
				n := inside.Add(1)
				for {
					m := maxInside.Load()
					if n <= m || maxInside.CompareAndSwap(m, n) {
						break
					}
				}
				inside.Add(-1)
				s.Release(nil)
			}
		}()
	}
	wg.Wait()
	if maxInside.Load() > 3 {
		t.Fatalf("observed %d concurrent holders, limit 3", maxInside.Load())
	}
	if s.InUse() != 0 {
		t.Fatalf("in use after drain = %d", s.InUse())
	}
}

func TestSlotsTryAcquire(t *testing.T) {
	s := NewSlotsPoll(1, time.Microsecond)
	if !s.TryAcquire(nil) {
		t.Fatal("TryAcquire on free slots failed")
	}
	if s.TryAcquire(nil) {
		t.Fatal("TryAcquire over limit succeeded")
	}
	s.Release(nil)
	if s.InUse() != 0 {
		t.Fatalf("in use = %d, want 0", s.InUse())
	}
}

func TestSlotsEventSequence(t *testing.T) {
	s := NewSlotsPoll(1, time.Microsecond)
	act := &recordingActivity{}
	s.Acquire(act)
	s.Release(act)
	want := []core.EventType{core.Prepare, core.Enter, core.Hold, core.Unhold}
	if got := act.sequence(); !eventsEqual(got, want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
}

func TestSlotsMinimumLimit(t *testing.T) {
	s := NewSlots(0)
	if s.Limit() != 1 {
		t.Fatalf("limit = %d, want clamped to 1", s.Limit())
	}
}

func TestTicketsGrantAllowsReentryWithoutWait(t *testing.T) {
	tk := NewTicketsPoll(1, 3, time.Microsecond)
	act := &recordingActivity{}
	var ts TicketState

	tk.Enter(act, &ts) // takes the slot, grants 3 tickets (uses none extra)
	if tk.Active() != 1 {
		t.Fatalf("active = %d, want 1", tk.Active())
	}
	tk.Exit(act, &ts) // 2 tickets left: stays inside
	if tk.Active() != 1 {
		t.Fatal("left engine despite remaining tickets")
	}
	tk.Enter(act, &ts) // consumes a ticket, no wait
	tk.Exit(act, &ts)  // 1 left
	tk.Enter(act, &ts) // consumes the last
	tk.Exit(act, &ts)  // exhausted: leaves
	if tk.Active() != 0 {
		t.Fatalf("active after exhaustion = %d, want 0", tk.Active())
	}
	// Exactly one Prepare/Enter/Hold and one Unhold across the burst.
	want := []core.EventType{core.Prepare, core.Enter, core.Hold, core.Unhold}
	if got := act.sequence(); !eventsEqual(got, want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
}

func TestTicketsForceExit(t *testing.T) {
	tk := NewTicketsPoll(2, 5, time.Microsecond)
	var ts TicketState
	tk.Enter(nil, &ts)
	if tk.Active() != 1 {
		t.Fatalf("active = %d", tk.Active())
	}
	tk.ForceExit(nil, &ts)
	if tk.Active() != 0 {
		t.Fatalf("active after force exit = %d", tk.Active())
	}
	tk.ForceExit(nil, &ts) // idempotent
	if tk.Active() != 0 {
		t.Fatalf("active went negative: %d", tk.Active())
	}
}

func TestTicketsConcurrencyLimit(t *testing.T) {
	tk := NewTicketsPoll(2, 1, time.Microsecond)
	var inside, maxInside atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ts TicketState
			for j := 0; j < 30; j++ {
				tk.Enter(nil, &ts)
				n := inside.Add(1)
				for {
					m := maxInside.Load()
					if n <= m || maxInside.CompareAndSwap(m, n) {
						break
					}
				}
				inside.Add(-1)
				tk.Exit(nil, &ts)
			}
		}()
	}
	wg.Wait()
	if maxInside.Load() > 2 {
		t.Fatalf("observed %d inside, limit 2", maxInside.Load())
	}
	if tk.Active() != 0 {
		t.Fatalf("active after drain = %d", tk.Active())
	}
}
