package vres

import (
	"sync/atomic"
	"time"

	"pbox/internal/core"
	"pbox/internal/isolation"
)

// Slots is an instrumented counting semaphore: a virtual resource with
// multiple exclusive units (Table 1's "exclusive with multiple units"). It
// models worker-pool capacity (Apache MaxClients, php-fpm pm.maxchildren,
// Varnish thread pools) and any bounded admission structure.
type Slots struct {
	resource
	limit  int32
	active atomic.Int32
}

// NewSlots creates a semaphore with n units.
func NewSlots(n int) *Slots { return NewSlotsPoll(n, 0) }

// NewSlotsPoll creates a semaphore with n units and poll interval poll.
func NewSlotsPoll(n int, poll time.Duration) *Slots {
	if n < 1 {
		n = 1
	}
	return &Slots{resource: newResource(poll), limit: int32(n)}
}

// Acquire takes one unit, blocking in a recheck loop while none is free.
func (s *Slots) Acquire(act isolation.Activity) {
	s.event(act, core.Prepare)
	for {
		n := s.active.Add(1)
		if n <= s.limit {
			break
		}
		s.active.Add(-1)
		s.sleep()
	}
	s.event(act, core.Enter)
	s.event(act, core.Hold)
}

// TryAcquire takes a unit without blocking; reports success.
func (s *Slots) TryAcquire(act isolation.Activity) bool {
	n := s.active.Add(1)
	if n > s.limit {
		s.active.Add(-1)
		return false
	}
	s.event(act, core.Prepare)
	s.event(act, core.Enter)
	s.event(act, core.Hold)
	return true
}

// Release returns one unit.
func (s *Slots) Release(act isolation.Activity) {
	s.active.Add(-1)
	s.event(act, core.Unhold)
}

// InUse returns the number of units currently taken.
func (s *Slots) InUse() int { return int(s.active.Load()) }

// Limit returns the unit count.
func (s *Slots) Limit() int { return int(s.limit) }

// Tickets models InnoDB's thread-concurrency regulation (case c3, Figure 9
// of the paper): at most limit threads may be "inside the engine"
// (srv_conc.n_active); a thread that gets in is granted a number of tickets
// letting it re-enter without waiting until they run out.
type Tickets struct {
	resource
	limit    int32
	perGrant int
	active   atomic.Int32
}

// TicketState is the per-connection ticket credit (trx->n_tickets_to_enter_innodb).
type TicketState struct {
	remaining int
	inside    bool
}

// NewTickets creates a regulator admitting limit concurrent threads,
// granting perGrant tickets on each successful entry.
func NewTickets(limit, perGrant int) *Tickets {
	return NewTicketsPoll(limit, perGrant, 0)
}

// NewTicketsPoll is NewTickets with an explicit poll interval.
func NewTicketsPoll(limit, perGrant int, poll time.Duration) *Tickets {
	if limit < 1 {
		limit = 1
	}
	if perGrant < 1 {
		perGrant = 1
	}
	return &Tickets{resource: newResource(poll), limit: int32(limit), perGrant: perGrant}
}

// Enter admits the calling activity into the engine, mirroring
// srv_conc_enter_innodb_with_atomics: if the connection still has tickets it
// passes straight through; otherwise it waits for an n_active slot and is
// granted fresh tickets.
func (t *Tickets) Enter(act isolation.Activity, ts *TicketState) {
	if ts.inside && ts.remaining > 0 {
		ts.remaining--
		return
	}
	t.event(act, core.Prepare)
	for {
		if t.active.Load() < t.limit {
			n := t.active.Add(1)
			if n <= t.limit {
				break
			}
			t.active.Add(-1)
		}
		t.sleep()
	}
	t.event(act, core.Enter)
	t.event(act, core.Hold)
	ts.inside = true
	ts.remaining = t.perGrant - 1
}

// Exit is called at statement end. Like InnoDB, the thread stays inside
// (keeping its slot) while it has tickets; only when they are exhausted does
// it leave, decrementing n_active and emitting UNHOLD
// (srv_conc_exit_innodb_with_atomics).
func (t *Tickets) Exit(act isolation.Activity, ts *TicketState) {
	if !ts.inside {
		return
	}
	if ts.remaining > 0 {
		return
	}
	t.leave(act, ts)
}

// ForceExit makes the connection leave the engine regardless of remaining
// tickets (connection close, transaction end).
func (t *Tickets) ForceExit(act isolation.Activity, ts *TicketState) {
	if !ts.inside {
		return
	}
	t.leave(act, ts)
}

func (t *Tickets) leave(act isolation.Activity, ts *TicketState) {
	t.active.Add(-1)
	ts.inside = false
	ts.remaining = 0
	t.event(act, core.Unhold)
}

// Active returns the current n_active value.
func (t *Tickets) Active() int { return int(t.active.Load()) }
