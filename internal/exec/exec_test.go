package exec

import (
	"sync"
	"testing"
	"time"
)

func TestNowMonotonic(t *testing.T) {
	a := Now()
	time.Sleep(time.Millisecond)
	b := Now()
	if b <= a {
		t.Fatalf("clock not monotonic: %d -> %d", a, b)
	}
}

func TestWorkDuration(t *testing.T) {
	for _, d := range []time.Duration{50 * time.Microsecond, 500 * time.Microsecond, 2 * time.Millisecond} {
		t0 := time.Now()
		Work(d)
		got := time.Since(t0)
		if got < d {
			t.Fatalf("Work(%v) returned early after %v", d, got)
		}
		if got > d*3+time.Millisecond {
			t.Fatalf("Work(%v) took %v", d, got)
		}
	}
	Work(0)  // must not hang
	Work(-1) // must not hang
}

func TestSleepPreciseAccuracy(t *testing.T) {
	// The whole point: sub-millisecond sleeps despite a ~1ms timer.
	for _, d := range []time.Duration{100 * time.Microsecond, 700 * time.Microsecond, 3 * time.Millisecond} {
		t0 := time.Now()
		SleepPrecise(d)
		got := time.Since(t0)
		if got < d {
			t.Fatalf("SleepPrecise(%v) woke early after %v", d, got)
		}
		if got > d+800*time.Microsecond {
			t.Fatalf("SleepPrecise(%v) overslept: %v", d, got)
		}
	}
	SleepPrecise(0)
}

func TestConcurrentWorkOverlaps(t *testing.T) {
	// N concurrent Work(d) calls complete in ≈d wall time, not N×d — the
	// many-core testbed semantics documented in the package comment.
	const n = 4
	const d = 2 * time.Millisecond
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Work(d)
		}()
	}
	wg.Wait()
	got := time.Since(t0)
	if got > time.Duration(n)*d {
		t.Fatalf("concurrent work serialized: %v for %d×%v", got, n, d)
	}
}

func TestWorkChunkedYields(t *testing.T) {
	var offsets []time.Duration
	WorkChunked(500*time.Microsecond, 100*time.Microsecond, func(done time.Duration) {
		offsets = append(offsets, done)
	})
	if len(offsets) != 5 {
		t.Fatalf("yields = %d, want 5", len(offsets))
	}
	if offsets[len(offsets)-1] != 500*time.Microsecond {
		t.Fatalf("final offset = %v, want 500µs", offsets[len(offsets)-1])
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] <= offsets[i-1] {
			t.Fatalf("offsets not increasing: %v", offsets)
		}
	}
	// Partial last chunk.
	offsets = nil
	WorkChunked(250*time.Microsecond, 100*time.Microsecond, func(done time.Duration) {
		offsets = append(offsets, done)
	})
	if len(offsets) != 3 || offsets[2] != 250*time.Microsecond {
		t.Fatalf("partial chunking offsets = %v", offsets)
	}
	WorkChunked(0, 100, nil) // no-ops must not hang
}

func TestSpinCondition(t *testing.T) {
	n := 0
	ok := Spin(func() bool { n++; return n >= 3 }, 10*time.Microsecond, time.Second)
	if !ok || n < 3 {
		t.Fatalf("spin ok=%v n=%d", ok, n)
	}
	ok = Spin(func() bool { return false }, 10*time.Microsecond, 2*time.Millisecond)
	if ok {
		t.Fatal("spin reported success on timeout")
	}
}
