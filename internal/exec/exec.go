// Package exec provides the simulated execution substrate for the pBox
// reproduction: calibrated work units, IO-style waits, precise short sleeps,
// and a monotonic clock.
//
// The paper's evaluation runs on a 20-hyperthread CloudLab Xeon testbed
// where hardware resources are plentiful — the point of intra-app
// interference is that it happens anyway. The reproduction environment may
// have as little as one CPU and a coarse (~1ms) timer, so this package
// implements duration-accurate waiting as wall-clock-deadline loops that
// call runtime.Gosched() every iteration: N concurrent activities each
// complete in ≈ their nominal wall duration regardless of core count,
// giving the "sufficient hardware" semantics of the paper's testbed, and
// sub-millisecond durations stay accurate despite the coarse timer.
package exec

import (
	"runtime"
	"sync/atomic"
	"time"
)

// sink defeats dead-code elimination of spin loops.
var sink atomic.Uint64

var processStart = time.Now()

// Now returns a monotonic timestamp in nanoseconds. All pBox bookkeeping is
// done on this clock so the manager never observes wall-clock jumps.
func Now() int64 {
	return int64(time.Since(processStart))
}

// spinThreshold is the slack below which waiting is done by yielding spins
// rather than timer sleeps (the environment's timer granularity is ~1ms).
const spinThreshold = 2 * time.Millisecond

// SleepPrecise waits for approximately d with sub-millisecond accuracy:
// long waits park on the timer for the bulk and spin-yield the remainder;
// short waits spin-yield entirely. The yielding spin keeps other goroutines
// (the "other threads" of the simulated application) running.
func SleepPrecise(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := Now() + int64(d)
	// Park on the timer only when the slack left for spinning exceeds the
	// timer's worst-case overshoot (~1.5ms here), so the wakeup always
	// lands before the deadline and the spin finishes precisely.
	if d > 2*spinThreshold {
		time.Sleep(d - 2*spinThreshold)
	}
	for Now() < deadline {
		runtime.Gosched()
	}
}

// Work models d worth of CPU-bound request processing. It completes in ≈ d
// wall time while yielding to peers, so concurrent activities overlap as
// they would on the paper's many-core testbed. Controllers that throttle
// CPU stretch requests by injecting additional waits around Work slices (see
// WorkChunked); the simulated "CPU consumption" is the nominal d, which is
// what quota-based baselines account.
func Work(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := Now() + int64(d)
	var acc uint64
	for Now() < deadline {
		for i := 0; i < 16; i++ {
			acc = acc*6364136223846793005 + 1442695040888963407
		}
		runtime.Gosched()
	}
	sink.Add(acc | 1)
}

// WorkChunked performs a total of d worth of work, invoking yield after
// every chunk with the cumulative amount done. Controllers use the yield
// hook to inject throttling delays (e.g. a cgroup CPU-quota pause)
// mid-request, the way the kernel scheduler preempts a thread between time
// slices.
func WorkChunked(d, chunk time.Duration, yield func(done time.Duration)) {
	if d <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = d
	}
	var done time.Duration
	for done < d {
		step := chunk
		if rem := d - done; rem < step {
			step = rem
		}
		Work(step)
		done += step
		if yield != nil {
			yield(done)
		}
	}
}

// IOWait models a blocking IO operation (disk read after a buffer-pool
// miss, network round trip). It is not CPU consumption: quota-based
// baselines do not account it.
func IOWait(d time.Duration) {
	SleepPrecise(d)
}

// Spin busy-waits (yielding) until the condition function returns true or
// the timeout elapses, polling every poll interval. It mirrors the
// sleep-and-recheck loops (Figure 9 of the paper) that applications use to
// wait for virtual resources. Returns true if cond became true.
func Spin(cond func() bool, poll, timeout time.Duration) bool {
	deadline := Now() + int64(timeout)
	for {
		if cond() {
			return true
		}
		if timeout > 0 && Now() >= deadline {
			return false
		}
		SleepPrecise(poll)
	}
}
