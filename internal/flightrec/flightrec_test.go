package flightrec

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pbox/internal/core"
)

// newWorld builds a fake-clock manager observed by a fresh Recorder and
// returns both plus the clock-advance function. The clock is atomic: the
// recorder's writer goroutine reads it (detection captures stamp snapshot
// provenance) while the test goroutine advances it.
func newWorld(t *testing.T, cfg Config) (*core.Manager, *Recorder, func(time.Duration)) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	rec := New(cfg)
	t.Cleanup(rec.Close)
	var now atomic.Int64
	opts := core.Options{
		Observer:    rec,
		Attribution: true,
		Now:         now.Load,
		Sleep:       func(d time.Duration) { now.Add(int64(d)) },
		MinPenalty:  10 * time.Microsecond,
		MaxPenalty:  100 * time.Millisecond,
	}
	m := core.NewManager(opts)
	rec.AttachManager(m)
	return m, rec, func(d time.Duration) { now.Add(int64(d)) }
}

// newPair creates a labeled noisy/victim pBox pair with a 0.5 goal.
func newPair(m *core.Manager, noisyLabel, victimLabel string) (noisy, victim *core.PBox) {
	rule := core.DefaultRule()
	rule.Level = 0.5
	noisy, _ = m.Create(rule)
	m.SetLabel(noisy, noisyLabel)
	victim, _ = m.Create(rule)
	m.SetLabel(victim, victimLabel)
	return noisy, victim
}

// driveRound runs one noisy-blocks-victim round that ends in a verdict.
func driveRound(m *core.Manager, advance func(time.Duration), key core.ResourceKey, noisy, victim *core.PBox) {
	m.Activate(noisy)
	m.Activate(victim)
	m.Update(noisy, key, core.Hold)
	m.Update(victim, key, core.Prepare)
	advance(5 * time.Millisecond)
	m.Update(noisy, key, core.Unhold)
	m.Update(victim, key, core.Enter)
	m.Freeze(victim)
}

// driveIncident runs one verdict round on a freshly created pair.
func driveIncident(m *core.Manager, advance func(time.Duration), key core.ResourceKey) {
	noisy, victim := newPair(m, "noisy", "victim")
	driveRound(m, advance, key, noisy, victim)
}

func TestDetectionCaptureWritesBundle(t *testing.T) {
	m, rec, advance := newWorld(t, Config{Cooldown: time.Millisecond})
	key := core.ResourceKey(0x7)
	m.NameResource(key, "row_lock")
	driveIncident(m, advance, key)
	rec.Close() // drain the writer

	ids, err := rec.Incidents()
	if err != nil || len(ids) == 0 {
		t.Fatalf("no incident bundles written (ids=%v, err=%v)", ids, err)
	}
	inc, err := rec.Incident(ids[0])
	if err != nil {
		t.Fatalf("load incident %s: %v", ids[0], err)
	}
	if inc.Trigger != "detection" {
		t.Fatalf("trigger = %q, want detection", inc.Trigger)
	}
	if inc.CulpritLabel != "noisy" || inc.VictimLabel != "victim" {
		t.Fatalf("bundle blames %q → %q, want noisy → victim", inc.CulpritLabel, inc.VictimLabel)
	}
	if inc.Resource != "row_lock" {
		t.Fatalf("resource = %q, want row_lock", inc.Resource)
	}
	if inc.ProjectedLevel <= inc.Goal || inc.Goal != 0.5 {
		t.Fatalf("projected %v vs goal %v: verdict inputs missing", inc.ProjectedLevel, inc.Goal)
	}
	if inc.ProjectedSpeedup <= 1 {
		t.Fatalf("projected speedup = %v, want > 1", inc.ProjectedSpeedup)
	}
	if inc.PenaltyPolicy == "" || inc.PenaltyLength == "" {
		t.Fatalf("bundle missing penalty decision: %+v", inc)
	}
	if len(inc.Events) == 0 || len(inc.PBoxes) == 0 || len(inc.Attribution) == 0 {
		t.Fatalf("bundle missing sections: events=%d pboxes=%d attribution=%d",
			len(inc.Events), len(inc.PBoxes), len(inc.Attribution))
	}
	var sawDetection, sawNamed bool
	for _, e := range inc.Events {
		if e.Kind == "detection" {
			sawDetection = true
		}
		if e.Name == "row_lock" {
			sawNamed = true
		}
	}
	if !sawDetection || !sawNamed {
		t.Fatalf("events missing detection (%v) or resource name (%v)", sawDetection, sawNamed)
	}
	top := inc.Attribution[0]
	if top.CulpritLabel != "noisy" {
		t.Fatalf("attribution top culprit = %q, want noisy", top.CulpritLabel)
	}
	if d, err := time.ParseDuration(top.Blocked); err != nil || d <= 0 {
		t.Fatalf("attribution blocked %q not a positive duration (%v)", top.Blocked, err)
	}
}

// stubCapturePosition stands in for a capture.Recorder.
type stubCapturePosition struct{}

func (stubCapturePosition) Position() (string, int64, int) {
	return "seg-000003.pblog", 4096, 2
}

// TestBundleReferencesCapturePosition checks AttachCapture stamps the
// capture-log position into verdict bundles.
func TestBundleReferencesCapturePosition(t *testing.T) {
	m, rec, advance := newWorld(t, Config{Cooldown: time.Millisecond})
	rec.AttachCapture(stubCapturePosition{})
	driveIncident(m, advance, core.ResourceKey(0x7))
	rec.Close()

	ids, err := rec.Incidents()
	if err != nil || len(ids) == 0 {
		t.Fatalf("no incident bundles written (ids=%v, err=%v)", ids, err)
	}
	inc, err := rec.Incident(ids[0])
	if err != nil {
		t.Fatalf("load incident: %v", err)
	}
	if inc.CaptureSegment != "seg-000003.pblog" || inc.CaptureOffset != 4096 || inc.CaptureQueued != 2 {
		t.Fatalf("bundle capture reference = %q @%d (queued %d), want seg-000003.pblog @4096 (queued 2)",
			inc.CaptureSegment, inc.CaptureOffset, inc.CaptureQueued)
	}
}

func TestCooldownLimitsCaptures(t *testing.T) {
	m, rec, advance := newWorld(t, Config{Cooldown: time.Hour})
	key := core.ResourceKey(0x8)
	noisy, victim := newPair(m, "noisy", "victim")
	for i := 0; i < 5; i++ {
		driveRound(m, advance, key, noisy, victim)
	}
	rec.Close()
	ids, _ := rec.Incidents()
	if len(ids) != 1 {
		t.Fatalf("%d bundles written under a 1h cooldown, want 1", len(ids))
	}
}

// TestCooldownIsPerCulprit: a chatty culprit inside its cooldown window must
// not suppress the first capture of a different culprit.
func TestCooldownIsPerCulprit(t *testing.T) {
	m, rec, advance := newWorld(t, Config{Cooldown: time.Hour})
	key := core.ResourceKey(0x8)
	chatty, victimA := newPair(m, "chatty", "victim-a")
	for i := 0; i < 3; i++ {
		driveRound(m, advance, key, chatty, victimA)
	}
	rare, victimB := newPair(m, "rare", "victim-b")
	driveRound(m, advance, key, rare, victimB)
	rec.Close()

	ids, _ := rec.Incidents()
	if len(ids) != 2 {
		t.Fatalf("%d bundles written, want 2 (one per culprit)", len(ids))
	}
	var culprits []string
	for _, id := range ids {
		inc, err := rec.Incident(id)
		if err != nil {
			t.Fatalf("load %s: %v", id, err)
		}
		culprits = append(culprits, inc.CulpritLabel)
	}
	if culprits[0] != "chatty" || culprits[1] != "rare" {
		t.Fatalf("bundle culprits = %v, want [chatty rare]", culprits)
	}
}

func TestManualDump(t *testing.T) {
	m, rec, advance := newWorld(t, Config{})
	key := core.ResourceKey(0x9)
	m.NameResource(key, "queue")
	driveIncident(m, advance, key)

	id, err := rec.Dump("operator paged on p95 burn", 5*time.Second)
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	inc, err := rec.Incident(id)
	if err != nil {
		t.Fatalf("load manual dump %s: %v", id, err)
	}
	if inc.Trigger != "manual" || !strings.Contains(inc.Reason, "paged") {
		t.Fatalf("manual dump trigger=%q reason=%q", inc.Trigger, inc.Reason)
	}
	if len(inc.Events) == 0 || len(inc.PBoxes) == 0 {
		t.Fatalf("manual dump missing sections: events=%d pboxes=%d", len(inc.Events), len(inc.PBoxes))
	}
}

func TestRetentionPrunesOldest(t *testing.T) {
	_, rec, _ := newWorld(t, Config{Retention: 2})
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := rec.Dump("fill", 5*time.Second)
		if err != nil {
			t.Fatalf("dump %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	kept, err := rec.Incidents()
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(kept) != 2 {
		t.Fatalf("retention kept %d bundles, want 2 (%v)", len(kept), kept)
	}
	if kept[0] != ids[3] || kept[1] != ids[4] {
		t.Fatalf("retention kept %v, want the newest two of %v", kept, ids)
	}
}

func TestReadIncidentRejectsPathEscape(t *testing.T) {
	for _, id := range []string{"../etc/passwd", "a/b", `a\b`} {
		if _, err := ReadIncident(t.TempDir(), id); err == nil {
			t.Fatalf("ReadIncident accepted malicious id %q", id)
		}
	}
}

func TestDumpAfterCloseFails(t *testing.T) {
	_, rec, _ := newWorld(t, Config{})
	rec.Close()
	if _, err := rec.Dump("late", time.Second); err == nil {
		t.Fatal("Dump after Close should fail")
	}
	rec.Close() // double Close must not panic
}

// TestRecordPathAllocFree is the flight-recorder half of the hook-path
// discipline: recording an event into the ring, and a verdict arriving
// while the capture cooldown is active, allocate nothing.
func TestRecordPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	rec := New(Config{Dir: t.TempDir(), Cooldown: time.Hour})
	defer rec.Close()
	key := core.ResourceKey(0x42)
	// Prime: consume the one capture the cooldown allows.
	rec.Detection(1, 2, key, 0.9)

	if allocs := testing.AllocsPerRun(1000, func() {
		rec.StateEvent(1, key, core.Prepare)
	}); allocs != 0 {
		t.Fatalf("StateEvent record allocates %.2f objects per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		rec.Detection(1, 2, key, 0.9)
	}); allocs != 0 {
		t.Fatalf("cooled-down Detection allocates %.2f objects per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		rec.Blocked(1, 2, key, 1000)
	}); allocs != 0 {
		t.Fatalf("Blocked record allocates %.2f objects per op, want 0", allocs)
	}
}

// TestPreciseDumpSeesSpooledEvents pins the one consumer that keeps the
// exact flush-on-read path: a manual Dump serves the cached epoch snapshot
// (spooled events invisible, provenance recorded), while DumpPrecise sweeps
// the spools and reflects events no published view has seen yet.
func TestPreciseDumpSeesSpooledEvents(t *testing.T) {
	m, rec, _ := newWorld(t, Config{})
	rule := core.DefaultRule()
	p, err := m.Create(rule)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	m.Activate(p)
	w := m.NewWorker()
	if err := w.BindDirect(p); err != nil {
		t.Fatalf("BindDirect: %v", err)
	}
	key := core.ResourceKey(0x500)
	m.NameResource(key, "spooled_lock")

	v := m.RefreshStatusView() // publish a view BEFORE the spooled event
	w.Update(key, core.Hold)   // Tier A: sits in the worker spool

	cachedID, err := rec.Dump("cached capture", 5*time.Second)
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	cached, err := rec.Incident(cachedID)
	if err != nil {
		t.Fatalf("load %s: %v", cachedID, err)
	}
	if cached.Precise {
		t.Fatal("plain Dump marked precise")
	}
	if cached.SnapshotEpoch != v.Epoch {
		t.Fatalf("cached dump epoch = %d, want published epoch %d", cached.SnapshotEpoch, v.Epoch)
	}
	for _, res := range cached.Resources {
		if res.Key == uint64(key) && res.Holders > 0 {
			t.Fatalf("cached dump sees the spooled hold: %+v", res)
		}
	}

	preciseID, err := rec.DumpPrecise("exact capture", 5*time.Second)
	if err != nil {
		t.Fatalf("DumpPrecise: %v", err)
	}
	precise, err := rec.Incident(preciseID)
	if err != nil {
		t.Fatalf("load %s: %v", preciseID, err)
	}
	if !precise.Precise || precise.SnapshotEpoch != 0 {
		t.Fatalf("precise dump provenance wrong: precise=%v epoch=%d", precise.Precise, precise.SnapshotEpoch)
	}
	var found bool
	for _, res := range precise.Resources {
		if res.Key == uint64(key) && res.Holders == 1 && res.Name == "spooled_lock" {
			found = true
		}
	}
	if !found {
		t.Fatalf("precise dump missed the spooled hold: %+v", precise.Resources)
	}
}
