// Package flightrec is the flight recorder of the pBox reproduction: a
// bounded in-memory ring of recent manager events that freezes into a JSON
// incident bundle when a detection verdict fires (or when an operator asks).
// Metrics say interference is happening and the attribution ledger says who
// is doing it; the flight recorder preserves the moments around a specific
// verdict — the event sequence, the culprit/victim accounting, and the
// Algorithm 1 inputs (defer ratios, projected interference vs. goal) — so an
// incident can be diagnosed after the fact without having had a trace
// subscription open (the post-hoc half of the paper's Section 8 diagnosis
// story).
//
// The Recorder implements core.Observer (and core.AttributionObserver) and
// chains to a next Observer, so it stacks in front of the telemetry
// Collector. Hook-path discipline matches the rest of the reproduction:
// recording an event writes one preallocated ring slot under a short
// recorder-local mutex and never allocates; a verdict capture is a
// per-culprit cooldown check plus a non-blocking channel send. Bundles are
// built and written by a background goroutine that reads the manager's
// epoch-published snapshot (refreshed for detection captures, so the
// verdict that fired is visible) outside any hook, so a dump can never
// block the penalty path. Only DumpPrecise — `pboxctl dump -precise` —
// still uses the exact flush-on-read Status path, which guarantees spooled
// events issued before the dump appear in the bundle.
package flightrec

import (
	"sync"
	"sync/atomic"
	"time"

	"pbox/internal/core"
)

// EventKind classifies a ring entry.
type EventKind uint8

const (
	// KindState is an update_pbox state event (PREPARE/ENTER/HOLD/UNHOLD).
	KindState EventKind = iota
	// KindActivityEnd is a freeze_pbox with the activity's defer/exec time.
	KindActivityEnd
	// KindDetection is an Algorithm 1 (or pBox-level monitor) verdict.
	KindDetection
	// KindAction is a scheduled penalty.
	KindAction
	// KindServed is a served penalty delay.
	KindServed
	// KindBlocked is an attributed hold-over-wait overlap.
	KindBlocked
	// KindCreated and KindReleased are pBox lifecycle events.
	KindCreated
	// KindReleased marks release_pbox.
	KindReleased
)

// String returns the wire name of the kind.
func (k EventKind) String() string {
	switch k {
	case KindState:
		return "state"
	case KindActivityEnd:
		return "activity_end"
	case KindDetection:
		return "detection"
	case KindAction:
		return "action"
	case KindServed:
		return "served"
	case KindBlocked:
		return "blocked"
	case KindCreated:
		return "created"
	case KindReleased:
		return "released"
	default:
		return "unknown"
	}
}

// event is one compact ring slot. Fields are overloaded per kind; the wire
// form (incident.go) renders only the meaningful ones. No pointers, no
// strings — recording must not allocate.
type event struct {
	seq    uint64
	atUnix int64 // wall-clock ns, stamped at delivery (for a spooled event: flush time)
	atMgr  int64 // manager-clock ns of the event itself (state events via StateEventAt)
	kind   EventKind
	state  core.EventType
	pbox   int // acting pBox (culprit for detection/action/blocked)
	victim int
	key    core.ResourceKey
	extra  int64 // defer/penalty/blocked ns, per kind
	policy core.PolicyKind
	level  float64 // projected interference level (detection)
}

// ring is a fixed-capacity event buffer with preallocated slots.
type ring struct {
	mu     sync.Mutex
	events []event
	pos    int
	full   bool
	seq    uint64
}

func newRing(n int) *ring {
	return &ring{events: make([]event, n)}
}

func (r *ring) add(e event) {
	r.mu.Lock()
	r.seq++
	e.seq = r.seq
	r.events[r.pos] = e
	r.pos = (r.pos + 1) % len(r.events)
	if r.pos == 0 {
		r.full = true
	}
	r.mu.Unlock()
}

// tail returns the ring contents oldest first. Called off the hook path;
// the copy is O(ring size) and aliases nothing.
func (r *ring) tail() []event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]event, r.pos)
		copy(out, r.events[:r.pos])
		return out
	}
	out := make([]event, 0, len(r.events))
	out = append(out, r.events[r.pos:]...)
	out = append(out, r.events[:r.pos]...)
	return out
}

// capture is one queued incident-build job.
type capture struct {
	trigger   string // "detection" or "manual"
	reason    string // operator-supplied, for manual dumps
	precise   bool   // build from the exact flush-on-read Status, not the snapshot view
	culprit   int
	victim    int
	key       core.ResourceKey
	projected float64
	atUnix    int64
	reply     chan string // non-nil for manual dumps: receives the incident id
}

// Config parameterizes a Recorder. The zero value of every field selects a
// sensible default except Dir, which is required.
type Config struct {
	// Dir is the incidents directory; bundles are written as
	// incident-<id>.json inside it. Created on first write if missing.
	Dir string
	// RingSize is the event-ring capacity (default 1024).
	RingSize int
	// Cooldown is the minimum spacing between verdict-triggered captures
	// blaming the same culprit (default 2s). A detection storm produces one
	// bundle per culprit per cooldown window, not one per verdict — and a
	// chatty culprit cannot starve captures of a rarer one. Manual dumps
	// ignore it.
	Cooldown time.Duration
	// Retention caps how many bundles are kept on disk (default 32);
	// oldest are pruned after each write.
	Retention int
	// Next is the downstream observer (typically the telemetry Collector);
	// every hook is forwarded to it after recording. May be nil.
	Next core.Observer
}

const (
	defaultRingSize  = 1024
	defaultCooldown  = 2 * time.Second
	defaultRetention = 32

	// maxCooldownEntries bounds the per-culprit cooldown map in daemons that
	// mint a pBox per connection. On overflow the map is reset; the worst
	// case is one early capture per culprit, never unbounded memory.
	maxCooldownEntries = 4096
)

// Recorder is the flight recorder. Create with New, pass as
// core.Options.Observer (or chain via Config.Next), then AttachManager once
// the manager exists, and Close when done.
type Recorder struct {
	cfg      Config
	ring     *ring
	next     core.Observer
	nextAttr core.AttributionObserver

	mgr    atomic.Pointer[core.Manager]
	capPos atomic.Value // CapturePosition, set by AttachCapture

	capMu       sync.Mutex
	lastCapture map[int]int64 // culprit id → unix ns of its last verdict capture
	dropped     atomic.Int64  // captures lost to a full queue

	jobs chan capture
	done chan struct{}

	idMu   sync.Mutex
	idSeq  int
	closed atomic.Bool
}

// New builds a Recorder and starts its writer goroutine.
func New(cfg Config) *Recorder {
	if cfg.RingSize <= 0 {
		cfg.RingSize = defaultRingSize
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = defaultCooldown
	}
	if cfg.Retention <= 0 {
		cfg.Retention = defaultRetention
	}
	r := &Recorder{
		cfg:         cfg,
		ring:        newRing(cfg.RingSize),
		next:        cfg.Next,
		lastCapture: make(map[int]int64),
		jobs:        make(chan capture, 8),
		done:        make(chan struct{}),
	}
	if ao, ok := cfg.Next.(core.AttributionObserver); ok {
		r.nextAttr = ao
	}
	go r.writer()
	return r
}

// AttachManager supplies the manager whose Status the incident builder
// snapshots. Until it is called, bundles carry events only.
func (r *Recorder) AttachManager(m *core.Manager) {
	r.mgr.Store(m)
}

// CapturePosition is the slice of capture.Recorder the incident builder
// needs: the event log's current end. Declared here so flightrec does not
// depend on the capture package.
type CapturePosition interface {
	Position() (segment string, offset int64, queued int)
}

// AttachCapture links a capture event-log recorder (pboxd -record): every
// incident bundle from then on carries the log position at build time, so
// an operator can jump from a verdict to the replayable event stream
// around it (`pboxreplay cat`, then match the bundle's event_at
// timestamps).
func (r *Recorder) AttachCapture(p CapturePosition) {
	r.capPos.Store(p)
}

// Close stops the writer after draining queued captures. The Recorder keeps
// recording events after Close (hooks may still fire), but no further
// bundles are written.
func (r *Recorder) Close() {
	if r.closed.CompareAndSwap(false, true) {
		close(r.jobs)
		<-r.done
	}
}

// Dropped returns how many verdict captures were discarded because the
// writer queue was full.
func (r *Recorder) Dropped() int64 { return r.dropped.Load() }

// Dump requests a manual incident bundle (the /flightrec/dump endpoint and
// pboxctl's dump path) and returns the incident id. It blocks until the
// bundle is written or the timeout elapses. The bundle's manager state
// comes from the epoch snapshot view (bounded staleness); use DumpPrecise
// when un-flushed spooled events must be visible.
func (r *Recorder) Dump(reason string, timeout time.Duration) (string, error) {
	return r.dump(reason, false, timeout)
}

// DumpPrecise is Dump on the exact flush-on-read path: the bundle is built
// from Status(), which sweeps every worker spool first, so every event
// issued before the call — including records still sitting in spools — is
// reflected. This is the one reader that keeps the stop-the-world cost.
func (r *Recorder) DumpPrecise(reason string, timeout time.Duration) (string, error) {
	return r.dump(reason, true, timeout)
}

func (r *Recorder) dump(reason string, precise bool, timeout time.Duration) (string, error) {
	if r.closed.Load() {
		return "", errClosed
	}
	reply := make(chan string, 1)
	job := capture{
		trigger: "manual",
		reason:  reason,
		precise: precise,
		atUnix:  time.Now().UnixNano(),
		reply:   reply,
	}
	select {
	case r.jobs <- job:
	case <-time.After(timeout):
		return "", errBusy
	}
	select {
	case id := <-reply:
		if id == "" {
			return "", errWrite
		}
		return id, nil
	case <-time.After(timeout):
		return "", errBusy
	}
}

// record stores an event. Alloc-free: the slot is preallocated and the
// struct carries no heap references.
func (r *Recorder) record(e event) {
	e.atUnix = time.Now().UnixNano()
	r.ring.add(e)
}

// PBoxCreated implements core.Observer.
func (r *Recorder) PBoxCreated(id int, rule core.IsolationRule) {
	r.record(event{kind: KindCreated, pbox: id})
	if r.next != nil {
		r.next.PBoxCreated(id, rule)
	}
}

// PBoxReleased implements core.Observer.
func (r *Recorder) PBoxReleased(id int) {
	r.record(event{kind: KindReleased, pbox: id})
	if r.next != nil {
		r.next.PBoxReleased(id)
	}
}

// StateEvent implements core.Observer.
func (r *Recorder) StateEvent(pboxID int, key core.ResourceKey, ev core.EventType) {
	r.record(event{kind: KindState, state: ev, pbox: pboxID, key: key})
	if r.next != nil {
		r.next.StateEvent(pboxID, key, ev)
	}
}

// StateEventAt implements core.EventTimeObserver: every state event —
// direct or spool-replayed — arrives here carrying the manager-clock
// timestamp its bookkeeping used. The wall-clock stamp (record's atUnix)
// still marks delivery; the event time rides along so incident bundles
// distinguish when an event happened from when its batch drained. Forwarded
// timed when the next observer understands event time, plain otherwise.
func (r *Recorder) StateEventAt(pboxID int, key core.ResourceKey, ev core.EventType, atNs int64) {
	r.record(event{kind: KindState, state: ev, pbox: pboxID, key: key, atMgr: atNs})
	if r.next != nil {
		if to, ok := r.next.(core.EventTimeObserver); ok {
			to.StateEventAt(pboxID, key, ev, atNs)
		} else {
			r.next.StateEvent(pboxID, key, ev)
		}
	}
}

// ActivityEnd implements core.Observer.
func (r *Recorder) ActivityEnd(pboxID int, deferNs, execNs int64) {
	r.record(event{kind: KindActivityEnd, pbox: pboxID, extra: deferNs})
	if r.next != nil {
		r.next.ActivityEnd(pboxID, deferNs, execNs)
	}
}

// shouldCapture applies the per-culprit cooldown and, when it allows a
// capture, stamps the culprit's slot. The map is keyed by culprit (not
// globally) so frequent low-grade verdicts between one pair cannot starve
// the recorder of a rarer, more damaging culprit's incident.
func (r *Recorder) shouldCapture(culprit int, now int64) bool {
	r.capMu.Lock()
	defer r.capMu.Unlock()
	if last, ok := r.lastCapture[culprit]; ok && now-last < int64(r.cfg.Cooldown) {
		return false
	}
	if len(r.lastCapture) >= maxCooldownEntries {
		clear(r.lastCapture)
	}
	r.lastCapture[culprit] = now
	return true
}

// Detection implements core.Observer. Beyond recording, a verdict is the
// capture trigger: if the culprit's cooldown has passed, a build job is
// queued for the writer goroutine. The hook itself does a map check under a
// recorder-local mutex and a non-blocking send — it cannot block the manager
// lock or the penalty path.
func (r *Recorder) Detection(noisyID, victimID int, key core.ResourceKey, projected float64) {
	now := time.Now().UnixNano()
	r.record(event{kind: KindDetection, pbox: noisyID, victim: victimID, key: key, level: projected})
	if r.shouldCapture(noisyID, now) && !r.closed.Load() {
		select {
		case r.jobs <- capture{
			trigger:   "detection",
			culprit:   noisyID,
			victim:    victimID,
			key:       key,
			projected: projected,
			atUnix:    now,
		}:
		default:
			r.dropped.Add(1)
		}
	}
	if r.next != nil {
		r.next.Detection(noisyID, victimID, key, projected)
	}
}

// PenaltyAction implements core.Observer.
func (r *Recorder) PenaltyAction(noisyID, victimID int, key core.ResourceKey, policy core.PolicyKind, length time.Duration) {
	r.record(event{kind: KindAction, pbox: noisyID, victim: victimID, key: key, policy: policy, extra: int64(length)})
	if r.next != nil {
		r.next.PenaltyAction(noisyID, victimID, key, policy, length)
	}
}

// PenaltyServed implements core.Observer.
func (r *Recorder) PenaltyServed(pboxID int, d time.Duration) {
	r.record(event{kind: KindServed, pbox: pboxID, extra: int64(d)})
	if r.next != nil {
		r.next.PenaltyServed(pboxID, d)
	}
}

// Blocked implements core.AttributionObserver.
func (r *Recorder) Blocked(culpritID, victimID int, key core.ResourceKey, deferNs int64) {
	r.record(event{kind: KindBlocked, pbox: culpritID, victim: victimID, key: key, extra: deferNs})
	if r.nextAttr != nil {
		r.nextAttr.Blocked(culpritID, victimID, key, deferNs)
	}
}

// PenaltyServedFor implements core.AttributionObserver. The served delay is
// already recorded via PenaltyServed; only forwarding happens here.
func (r *Recorder) PenaltyServedFor(culpritID, victimID int, key core.ResourceKey, d time.Duration) {
	if r.nextAttr != nil {
		r.nextAttr.PenaltyServedFor(culpritID, victimID, key, d)
	}
}

// compile-time interface checks
var (
	_ core.Observer            = (*Recorder)(nil)
	_ core.AttributionObserver = (*Recorder)(nil)
)
