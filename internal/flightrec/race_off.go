//go:build !race

package flightrec

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
