package flightrec

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"pbox/internal/core"
)

var (
	errClosed = errors.New("flightrec: recorder closed")
	errBusy   = errors.New("flightrec: writer busy")
	errWrite  = errors.New("flightrec: bundle write failed")
)

// Event is the wire form of one ring entry inside an incident bundle.
type Event struct {
	Seq uint64 `json:"seq"`
	At  string `json:"at"`
	// EventAt is the manager-clock offset at which a state event was
	// issued; At is its delivery time (flush time for spooled events).
	EventAt string  `json:"event_at,omitempty"`
	Kind    string  `json:"kind"`
	State  string  `json:"state,omitempty"`
	PBox   int     `json:"pbox"`
	Victim int     `json:"victim,omitempty"`
	Key    uint64  `json:"key,omitempty"`
	Name   string  `json:"resource,omitempty"`
	Extra  string  `json:"extra,omitempty"`
	Policy string  `json:"policy,omitempty"`
	Level  float64 `json:"level,omitempty"`
}

// PBoxInfo is the wire form of one pBox snapshot in a bundle: the Algorithm 1
// inputs (defer ratio against the rule's goal) at capture time.
type PBoxInfo struct {
	ID                int     `json:"id"`
	Label             string  `json:"label,omitempty"`
	State             string  `json:"state"`
	Goal              float64 `json:"goal"`
	Activities        int     `json:"activities"`
	TotalDefer        string  `json:"total_defer"`
	TotalExec         string  `json:"total_exec"`
	DeferRatio        float64 `json:"defer_ratio"`
	PenaltiesReceived int     `json:"penalties_received"`
	PenaltyServed     string  `json:"penalty_served"`
}

// ResourceInfo is the wire form of one per-resource contention summary in a
// bundle: who-waits/who-holds counts at capture time.
type ResourceInfo struct {
	Key     uint64 `json:"key"`
	Name    string `json:"resource,omitempty"`
	Waiters int    `json:"waiters,omitempty"`
	Holders int    `json:"holders,omitempty"`
}

// AttributionInfo is the wire form of one ledger record in a bundle.
type AttributionInfo struct {
	CulpritID        int    `json:"culprit_id"`
	CulpritLabel     string `json:"culprit_label,omitempty"`
	VictimID         int    `json:"victim_id"`
	VictimLabel      string `json:"victim_label,omitempty"`
	Key              uint64 `json:"key"`
	Resource         string `json:"resource,omitempty"`
	Blocked          string `json:"blocked"`
	Detections       int64  `json:"detections"`
	Actions          int64  `json:"actions"`
	PenaltyScheduled string `json:"penalty_scheduled"`
	PenaltyServed    string `json:"penalty_served"`
}

// Incident is one frozen bundle: the verdict (or manual dump) that triggered
// it, the culprit/victim pair with the Algorithm 1 inputs behind the verdict,
// the recent event ring, and the attribution matrix at capture time.
type Incident struct {
	ID         string `json:"id"`
	CapturedAt string `json:"captured_at"`
	Trigger    string `json:"trigger"`
	Reason     string `json:"reason,omitempty"`

	CulpritID    int    `json:"culprit_id,omitempty"`
	CulpritLabel string `json:"culprit_label,omitempty"`
	VictimID     int    `json:"victim_id,omitempty"`
	VictimLabel  string `json:"victim_label,omitempty"`
	Key          uint64 `json:"key,omitempty"`
	Resource     string `json:"resource,omitempty"`

	// ProjectedLevel is the interference level tf = td/(te−td) the detector
	// projected for the victim; Goal is the victim rule's isolation level λ.
	// ProjectedSpeedup = (1+ProjectedLevel)/(1+Goal) estimates how much
	// faster the victim's activity would finish if the goal held — the
	// quantity Algorithm 1's verdict asserts is being lost.
	ProjectedLevel   float64 `json:"projected_level,omitempty"`
	Goal             float64 `json:"goal,omitempty"`
	ProjectedSpeedup float64 `json:"projected_speedup,omitempty"`

	// PenaltyPolicy and PenaltyLength describe the action scheduled for the
	// verdict, when one is visible in the event window (a verdict under
	// cooldown or with a pending penalty schedules none).
	PenaltyPolicy string `json:"penalty_policy,omitempty"`
	PenaltyLength string `json:"penalty_length,omitempty"`

	// CaptureSegment/CaptureOffset reference the capture event log
	// (pboxd -record) at bundle-build time: the verdict's records land in
	// the named segment within CaptureQueued records of the offset. Only
	// set when a capture recorder is attached (AttachCapture).
	CaptureSegment string `json:"capture_segment,omitempty"`
	CaptureOffset  int64  `json:"capture_offset,omitempty"`
	CaptureQueued  int    `json:"capture_queued,omitempty"`

	// Snapshot provenance: the epoch and age of the manager view the
	// bundle's state sections were built from. Precise marks a bundle built
	// from the exact flush-on-read Status() (DumpPrecise) — spooled events
	// issued before the dump are guaranteed visible; snapshot-built bundles
	// instead carry the epoch metadata of the view used.
	SnapshotEpoch uint64 `json:"snapshot_epoch,omitempty"`
	SnapshotAge   string `json:"snapshot_age,omitempty"`
	Precise       bool   `json:"precise,omitempty"`

	Events             []Event           `json:"events"`
	PBoxes             []PBoxInfo        `json:"pboxes,omitempty"`
	Resources          []ResourceInfo    `json:"resources,omitempty"`
	Attribution        []AttributionInfo `json:"attribution,omitempty"`
	AttributionDropped int64             `json:"attribution_dropped,omitempty"`
}

// writer is the background goroutine draining capture jobs into bundles.
func (r *Recorder) writer() {
	defer close(r.done)
	for job := range r.jobs {
		id, err := r.buildAndWrite(job)
		if job.reply != nil {
			if err != nil {
				id = ""
			}
			job.reply <- id
		}
	}
}

// nextID mints a sortable incident id: UTC second timestamp plus a process
// sequence number, so lexical order is chronological order.
func (r *Recorder) nextID(atUnix int64) string {
	r.idMu.Lock()
	r.idSeq++
	seq := r.idSeq
	r.idMu.Unlock()
	return fmt.Sprintf("%s-%04d", time.Unix(0, atUnix).UTC().Format("20060102T150405"), seq)
}

// buildAndWrite assembles the bundle for one capture and persists it. Runs
// on the writer goroutine, outside every manager hook; reading the manager
// state here (not at verdict time) means the bundle also sees the penalty
// action that the verdict scheduled, since that happens under the same
// manager lock hold that queued the job. Detection captures force a
// snapshot refresh (the verdict must be visible); manual dumps take the
// published view unless the job asks for the precise flush-on-read Status.
func (r *Recorder) buildAndWrite(job capture) (string, error) {
	inc := Incident{
		ID:         r.nextID(job.atUnix),
		CapturedAt: time.Unix(0, job.atUnix).UTC().Format(time.RFC3339Nano),
		Trigger:    job.trigger,
		Reason:     job.reason,
	}
	if p, ok := r.capPos.Load().(CapturePosition); ok {
		inc.CaptureSegment, inc.CaptureOffset, inc.CaptureQueued = p.Position()
	}
	mgr := r.mgr.Load()
	if job.trigger == "detection" {
		inc.CulpritID = job.culprit
		inc.VictimID = job.victim
		inc.Key = uint64(job.key)
		inc.ProjectedLevel = job.projected
		if mgr != nil {
			inc.Resource = mgr.ResourceName(job.key)
		}
	}
	var status core.Status
	if mgr != nil {
		switch {
		case job.precise:
			status = mgr.Status()
			inc.Precise = true
		case job.trigger == "detection":
			v := mgr.RefreshStatusView()
			status = v.Status
			inc.SnapshotEpoch = v.Epoch
			inc.SnapshotAge = mgr.ViewAge(v).String()
		default:
			v := mgr.StatusView()
			status = v.Status
			inc.SnapshotEpoch = v.Epoch
			inc.SnapshotAge = mgr.ViewAge(v).String()
		}
		for _, s := range status.Snapshots {
			inc.PBoxes = append(inc.PBoxes, PBoxInfo{
				ID:                s.ID,
				Label:             s.Label,
				State:             s.State.String(),
				Goal:              s.Goal,
				Activities:        s.Activities,
				TotalDefer:        s.TotalDefer.String(),
				TotalExec:         s.TotalExec.String(),
				DeferRatio:        s.InterferenceLevel,
				PenaltiesReceived: s.PenaltiesReceived,
				PenaltyServed:     s.PenaltyTotal.String(),
			})
			if s.ID == inc.VictimID {
				inc.VictimLabel = s.Label
				inc.Goal = s.Goal
			}
			if s.ID == inc.CulpritID {
				inc.CulpritLabel = s.Label
			}
		}
		for _, a := range status.Attribution {
			inc.Attribution = append(inc.Attribution, AttributionInfo{
				CulpritID:        a.CulpritID,
				CulpritLabel:     a.CulpritLabel,
				VictimID:         a.VictimID,
				VictimLabel:      a.VictimLabel,
				Key:              uint64(a.Key),
				Resource:         a.Resource,
				Blocked:          a.Blocked.String(),
				Detections:       a.Detections,
				Actions:          a.Actions,
				PenaltyScheduled: a.PenaltyScheduled.String(),
				PenaltyServed:    a.PenaltyServed.String(),
			})
			// Labels for a culprit/victim already released at capture time
			// survive in the ledger.
			if inc.CulpritLabel == "" && a.CulpritID == inc.CulpritID {
				inc.CulpritLabel = a.CulpritLabel
			}
			if inc.VictimLabel == "" && a.VictimID == inc.VictimID {
				inc.VictimLabel = a.VictimLabel
			}
		}
		for _, res := range status.Resources {
			inc.Resources = append(inc.Resources, ResourceInfo{
				Key:     uint64(res.Key),
				Name:    res.Name,
				Waiters: res.Waiters,
				Holders: res.Holders,
			})
		}
		inc.AttributionDropped = status.AttributionDropped
	}
	if inc.Goal > 0 || inc.ProjectedLevel > 0 {
		inc.ProjectedSpeedup = (1 + inc.ProjectedLevel) / (1 + inc.Goal)
	}

	for _, e := range r.ring.tail() {
		we := Event{
			Seq:    e.seq,
			At:     time.Unix(0, e.atUnix).UTC().Format(time.RFC3339Nano),
			Kind:   e.kind.String(),
			PBox:   e.pbox,
			Victim: e.victim,
			Key:    uint64(e.key),
			Level:  e.level,
		}
		if e.kind == KindState {
			we.State = e.state.String()
		}
		if e.atMgr != 0 {
			we.EventAt = time.Duration(e.atMgr).String()
		}
		if e.kind == KindAction {
			we.Policy = e.policy.String()
		}
		if e.extra != 0 {
			we.Extra = time.Duration(e.extra).String()
		}
		if mgr != nil && e.key != 0 {
			we.Name = mgr.ResourceName(e.key)
		}
		inc.Events = append(inc.Events, we)
		// The action the verdict scheduled, if any, lands in the ring right
		// after the triggering detection (same culprit and victim).
		if job.trigger == "detection" && e.kind == KindAction &&
			e.pbox == job.culprit && e.victim == job.victim && e.key == job.key {
			inc.PenaltyPolicy = e.policy.String()
			inc.PenaltyLength = time.Duration(e.extra).String()
		}
	}

	if err := r.writeBundle(inc); err != nil {
		return "", err
	}
	r.prune()
	return inc.ID, nil
}

// bundlePath returns the on-disk path for an incident id.
func (r *Recorder) bundlePath(id string) string {
	return filepath.Join(r.cfg.Dir, "incident-"+id+".json")
}

func (r *Recorder) writeBundle(inc Incident) error {
	if err := os.MkdirAll(r.cfg.Dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(inc, "", "  ")
	if err != nil {
		return err
	}
	// Write-then-rename so a reader never sees a torn bundle.
	tmp := r.bundlePath(inc.ID) + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, r.bundlePath(inc.ID))
}

// prune enforces the retention cap, deleting the oldest bundles (ids sort
// chronologically).
func (r *Recorder) prune() {
	ids, err := listIDs(r.cfg.Dir)
	if err != nil || len(ids) <= r.cfg.Retention {
		return
	}
	for _, id := range ids[:len(ids)-r.cfg.Retention] {
		_ = os.Remove(r.bundlePath(id))
	}
}

// listIDs returns the incident ids present in dir, oldest first.
func listIDs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "incident-") && strings.HasSuffix(name, ".json") {
			ids = append(ids, strings.TrimSuffix(strings.TrimPrefix(name, "incident-"), ".json"))
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Incidents lists the bundle ids in the recorder's directory, oldest first.
func (r *Recorder) Incidents() ([]string, error) {
	return listIDs(r.cfg.Dir)
}

// Incident loads one bundle by id.
func (r *Recorder) Incident(id string) (*Incident, error) {
	return ReadIncident(r.cfg.Dir, id)
}

// ReadIncident loads incident-<id>.json from dir. It rejects ids that try to
// escape the directory.
func ReadIncident(dir, id string) (*Incident, error) {
	if strings.ContainsAny(id, "/\\") || strings.Contains(id, "..") {
		return nil, fmt.Errorf("flightrec: invalid incident id %q", id)
	}
	data, err := os.ReadFile(filepath.Join(dir, "incident-"+id+".json"))
	if err != nil {
		return nil, err
	}
	var inc Incident
	if err := json.Unmarshal(data, &inc); err != nil {
		return nil, err
	}
	return &inc, nil
}

// ListIncidents lists bundle ids in dir, oldest first — the directory-level
// twin of Recorder.Incidents for tools that only have the path.
func ListIncidents(dir string) ([]string, error) {
	return listIDs(dir)
}
