package cases

import (
	"fmt"
	"os"
	"testing"
	"time"

	"pbox/internal/core"
	"pbox/internal/isolation"
	"pbox/internal/stats"
)

func TestDebugCase(t *testing.T) {
	id := os.Getenv("PBOX_DEBUG_CASE")
	if id == "" {
		t.Skip("set PBOX_DEBUG_CASE")
	}
	c, ok := ByID(id)
	if !ok {
		t.Fatal("unknown case")
	}
	mgr := core.NewManager(core.Options{})
	var ctrl isolation.Controller
	if c.EventDriven {
		ctrl = isolation.NewPBoxShared(mgr, core.DefaultRule())
	} else {
		ctrl = isolation.NewPBox(mgr, core.DefaultRule())
	}
	env := &Env{Ctrl: ctrl, Interference: true, Duration: 300 * time.Millisecond,
		Victim: stats.NewRecorder(4096), Noisy: stats.NewRecorder(4096)}
	c.Scenario(env)
	v := env.Victim.Summary()
	fmt.Printf("victim mean=%v p95=%v n=%d\n", v.Mean, v.P95, v.Count)
	for _, r := range mgr.ActionReport() {
		tot := time.Duration(0)
		for _, l := range r.Lengths {
			tot += l
		}
		fmt.Printf("noisy=%d key=%#x actions=%d score=%d gap=%d total=%v last=%v\n",
			r.NoisyID, uintptr(r.Key), r.Actions, r.ScoreActions, r.GapActions, tot, r.Lengths[len(r.Lengths)-1])
	}
}
