package cases

import (
	"math/rand"
	"time"

	"pbox/internal/apps/minipg"
	"pbox/internal/workload"
)

// caseC6 — PostgreSQL, table index: a large in-progress INSERT transaction
// holds the index while adding entries and leaves behind in-progress tuples
// that force every reader into MVCC visibility work.
func caseC6() Case {
	return Case{
		ID: "c6", App: "PostgreSQL", Bug: true,
		Resource:   "table index",
		Desc:       "In-progress INSERT causes other queries to spend time on MVCC",
		PaperLevel: 39.16,
		Scenario: func(env *Env) {
			cfg := minipg.DefaultConfig()
			cfg.VisibilityWork = 500 * time.Nanosecond
			db := minipg.New(cfg)
			db.CreateTable("items", 1000)

			victim := db.Connect(env.Ctrl, "reader-1")
			defer victim.Close()
			specs := []workload.Spec{{
				Name:     "reader-1",
				Think:    300 * time.Microsecond,
				Recorder: env.Victim,
				Op: func(r *rand.Rand) {
					victim.Read("items", 10)
				},
			}}
			if env.Interference {
				ins := db.Connect(env.Ctrl, "inserter-1")
				defer ins.Close()
				specs = append(specs, workload.Spec{
					Name:     "inserter-1",
					Think:    500 * time.Microsecond,
					Recorder: env.Noisy,
					Op: func(r *rand.Rand) {
						ins.Begin()
						for i := 0; i < 4; i++ {
							ins.Insert("items", 200)
						}
						ins.Commit()
					},
				})
			}
			workload.Run(env.Duration, specs)
		},
	}
}

// caseC7 — PostgreSQL, table-level lock: SELECT FOR UPDATE on one table
// blocks requests on other tables that hash to the same lock-manager
// partition.
func caseC7() Case {
	return Case{
		ID: "c7", App: "PostgreSQL", Bug: false,
		Resource:   "table-level lock",
		Desc:       "Select for update query blocks the request on other tables",
		PaperLevel: 1204.28,
		Scenario: func(env *Env) {
			cfg := minipg.DefaultConfig()
			cfg.LockPartitions = 1 // every table shares one partition
			db := minipg.New(cfg)
			db.CreateTable("ta", 500)
			db.CreateTable("tb", 500)

			victim := db.Connect(env.Ctrl, "reader-1")
			defer victim.Close()
			specs := []workload.Spec{{
				Name:     "reader-1",
				Think:    300 * time.Microsecond,
				Recorder: env.Victim,
				Op: func(r *rand.Rand) {
					victim.Read("tb", 5) // a *different* table
				},
			}}
			if env.Interference {
				locker := db.Connect(env.Ctrl, "locker-1")
				defer locker.Close()
				specs = append(specs, workload.Spec{
					Name:     "locker-1",
					Think:    time.Millisecond,
					Recorder: env.Noisy,
					Op: func(r *rand.Rand) {
						locker.Begin()
						locker.SelectForUpdate("ta", 300*time.Microsecond)
						time.Sleep(2 * time.Millisecond)
						locker.Commit()
					},
				})
			}
			workload.Run(env.Duration, specs)
		},
	}
}

// caseC8 — PostgreSQL, LWLock: a stream of overlapping shared-mode holders
// starves waiters for exclusive mode.
func caseC8() Case {
	return Case{
		ID: "c8", App: "PostgreSQL", Bug: false,
		Resource:   "table-level lock",
		Desc:       "LWlock waiters for exclusive mode are blocked by shared mode locker",
		PaperLevel: 1727.95,
		Scenario: func(env *Env) {
			cfg := minipg.DefaultConfig()
			cfg.LockPartitions = 1
			db := minipg.New(cfg)
			db.CreateTable("t", 500)

			victim := db.Connect(env.Ctrl, "writer-1")
			defer victim.Close()
			specs := []workload.Spec{{
				Name:     "writer-1",
				Think:    300 * time.Microsecond,
				Recorder: env.Victim,
				Op: func(r *rand.Rand) {
					victim.AcquireExclusive("t", 100*time.Microsecond)
				},
			}}
			if env.Interference {
				// Three overlapping shared-mode lockers: there is
				// essentially never a reader-free instant, so the
				// exclusive waiter starves (the paper reports a
				// 1728x interference level for this case).
				for i := 0; i < 3; i++ {
					sc := db.Connect(env.Ctrl, "scanner-1")
					defer sc.Close()
					rec := env.Noisy
					if i > 0 {
						rec = nil
					}
					specs = append(specs, workload.Spec{
						Name:     "scanner-1",
						Think:    100 * time.Microsecond,
						Seed:     int64(i + 7),
						Recorder: rec,
						Op: func(r *rand.Rand) {
							sc.SharedScan("t", 1500*time.Microsecond)
						},
					})
				}
			}
			workload.Run(env.Duration, specs)
		},
	}
}

// caseC9 — PostgreSQL, dead rows: a VACUUM FULL pass holds the table
// exclusively while compacting dead tuples, blocking requests.
func caseC9() Case {
	return Case{
		ID: "c9", App: "PostgreSQL", Bug: false,
		Resource:   "dead table rows",
		Desc:       "Vacuum full process blocks other requests",
		PaperLevel: 419.14,
		Scenario: func(env *Env) {
			cfg := minipg.DefaultConfig()
			cfg.LockPartitions = 1
			db := minipg.New(cfg)
			db.CreateTable("t", 500)

			if env.Interference {
				// A bulk delete/update left a large dead-row backlog.
				seed := db.Connect(env.Ctrl, "seed-1")
				seed.Update("t", 40000)
				seed.Close()
				vr := db.StartVacuum(env.Ctrl, "t")
				defer vr.Stop()
			}
			victim := db.Connect(env.Ctrl, "reader-1")
			defer victim.Close()
			workload.Run(env.Duration, []workload.Spec{{
				Name:     "reader-1",
				Think:    300 * time.Microsecond,
				Recorder: env.Victim,
				Op: func(r *rand.Rand) {
					victim.Read("t", 5)
				},
			}})
		},
	}
}

// caseC10 — PostgreSQL, write-ahead log: large WAL writes hold the
// group-insert lock and block other backends' commits.
func caseC10() Case {
	return Case{
		ID: "c10", App: "PostgreSQL", Bug: false,
		Resource:   "write-ahead log",
		Desc:       "A large WAL causes the group insertion blocking other requests",
		PaperLevel: 3.69,
		Scenario: func(env *Env) {
			cfg := minipg.DefaultConfig()
			cfg.WALCosts.Append = 2 * time.Microsecond
			db := minipg.New(cfg)
			db.CreateTable("t", 500)

			victim := db.Connect(env.Ctrl, "committer-1")
			defer victim.Close()
			specs := []workload.Spec{{
				Name:     "committer-1",
				Think:    300 * time.Microsecond,
				Recorder: env.Victim,
				Op: func(r *rand.Rand) {
					victim.Begin()
					victim.Insert("t", 2)
					victim.Commit()
				},
			}}
			if env.Interference {
				bulk := db.Connect(env.Ctrl, "bulkwriter-1")
				defer bulk.Close()
				specs = append(specs, workload.Spec{
					Name:     "bulkwriter-1",
					Think:    300 * time.Microsecond,
					Recorder: env.Noisy,
					Op: func(r *rand.Rand) {
						bulk.Update("t", 600)
					},
				})
			}
			workload.Run(env.Duration, specs)
		},
	}
}
