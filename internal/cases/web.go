package cases

import (
	"math/rand"
	"time"

	"pbox/internal/apps/miniweb"
	"pbox/internal/workload"
)

// caseC11 — Apache, fcgid request queue: slow scripts occupy the limited
// mod_fcgid backend slots and block other, fast connections.
func caseC11() Case {
	return Case{
		ID: "c11", App: "Apache", Bug: true,
		Resource:   "fcgid request queue",
		Desc:       "slow request in mod_fcgid blocks other fast connections",
		PaperLevel: 1621.12,
		Scenario: func(env *Env) {
			cfg := miniweb.DefaultConfig()
			cfg.FcgidSlots = 2
			srv := miniweb.New(cfg)

			victim := srv.Connect(env.Ctrl, "fastcgi-1")
			defer victim.Close()
			specs := []workload.Spec{{
				Name:     "fastcgi-1",
				Think:    300 * time.Microsecond,
				Recorder: env.Victim,
				Op: func(r *rand.Rand) {
					victim.CGI(100 * time.Microsecond)
				},
			}}
			if env.Interference {
				for i := 0; i < 2; i++ {
					slow := srv.Connect(env.Ctrl, "slowcgi-1")
					defer slow.Close()
					rec := env.Noisy
					if i > 0 {
						rec = nil
					}
					specs = append(specs, workload.Spec{
						Name:     "slowcgi-1",
						Think:    200 * time.Microsecond,
						Seed:     int64(i + 3),
						Recorder: rec,
						Op: func(r *rand.Rand) {
							slow.CGI(4 * time.Millisecond)
						},
					})
				}
			}
			workload.Run(env.Duration, specs)
		},
	}
}

// caseC12 — Apache, worker pool: slow requests saturate MaxClients and the
// server "locks up" for everyone else.
func caseC12() Case {
	return Case{
		ID: "c12", App: "Apache", Bug: false,
		Resource:   "apache thread pools",
		Desc:       "Apache locks server if reaching maxclient",
		PaperLevel: 1429.21,
		Scenario: func(env *Env) {
			cfg := miniweb.DefaultConfig()
			cfg.MaxClients = 4
			srv := miniweb.New(cfg)

			victim := srv.Connect(env.Ctrl, "fast-1")
			defer victim.Close()
			specs := []workload.Spec{{
				Name:     "fast-1",
				Think:    300 * time.Microsecond,
				Recorder: env.Victim,
				Op: func(r *rand.Rand) {
					victim.Static(50 * time.Microsecond)
				},
			}}
			if env.Interference {
				for i := 0; i < 4; i++ {
					slow := srv.Connect(env.Ctrl, "slow-1")
					defer slow.Close()
					rec := env.Noisy
					if i > 0 {
						rec = nil
					}
					specs = append(specs, workload.Spec{
						Name:     "slow-1",
						Think:    100 * time.Microsecond,
						Seed:     int64(i + 11),
						Recorder: rec,
						Op: func(r *rand.Rand) {
							slow.SlowRequest(3 * time.Millisecond)
						},
					})
				}
			}
			workload.Run(env.Duration, specs)
		},
	}
}

// caseC13 — Apache/php-fpm, children pool: heavy scripts exhaust
// pm.max_children and light PHP pages suddenly crawl.
func caseC13() Case {
	return Case{
		ID: "c13", App: "Apache", Bug: false,
		Resource:   "php thread pool",
		Desc:       "Apache server suddenly slows when the connection reaches pm.maxchildren",
		PaperLevel: 352.38,
		Scenario: func(env *Env) {
			cfg := miniweb.DefaultConfig()
			cfg.PHPChildren = 2
			srv := miniweb.New(cfg)

			victim := srv.Connect(env.Ctrl, "phplight-1")
			defer victim.Close()
			specs := []workload.Spec{{
				Name:     "phplight-1",
				Think:    300 * time.Microsecond,
				Recorder: env.Victim,
				Op: func(r *rand.Rand) {
					victim.PHP(100 * time.Microsecond)
				},
			}}
			if env.Interference {
				for i := 0; i < 2; i++ {
					heavy := srv.Connect(env.Ctrl, "phpheavy-1")
					defer heavy.Close()
					rec := env.Noisy
					if i > 0 {
						rec = nil
					}
					specs = append(specs, workload.Spec{
						Name:     "phpheavy-1",
						Think:    200 * time.Microsecond,
						Seed:     int64(i + 17),
						Recorder: rec,
						Op: func(r *rand.Rand) {
							heavy.PHP(3 * time.Millisecond)
						},
					})
				}
			}
			workload.Run(env.Duration, specs)
		},
	}
}
