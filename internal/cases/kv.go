package cases

import (
	"math/rand"
	"time"

	"pbox/internal/apps/minikv"
	"pbox/internal/workload"
)

// caseC16 — Memcached, system lock: heavy SET traffic drives the LRU
// replacement algorithm, whose scans contend on the global cache lock.
//
// The paper's result: pBox does not achieve effective mitigation here —
// the contention is light and the per-request cost is so small that the
// extra manager crossings outweigh the gain. The reproduction preserves
// those properties (microsecond holds, tens-of-microseconds requests).
func caseC16() Case {
	return Case{
		ID: "c16", App: "Memcached", Bug: false,
		Resource:    "system lock",
		Desc:        "lock contention in the cache replacement algorithm",
		PaperLevel:  0.73,
		EventDriven: true,
		Scenario: func(env *Env) {
			cfg := minikv.DefaultConfig()
			cfg.Capacity = 512
			kv := minikv.New(cfg)

			// Warm the cache so the victim's keys are resident.
			warm := kv.Connect(env.Ctrl, "warm-1")
			for k := 0; k < 256; k++ {
				warm.Set(k)
			}
			warm.Close()

			hot := workload.SkewedKeys(256, 3)
			victim := kv.Connect(env.Ctrl, "getter-1")
			defer victim.Close()
			specs := []workload.Spec{{
				Name:     "getter-1",
				Think:    200 * time.Microsecond,
				Recorder: env.Victim,
				Op: func(r *rand.Rand) {
					victim.GetLatency(hot(r))
				},
			}}
			if env.Interference {
				for i := 0; i < 2; i++ {
					setter := kv.Connect(env.Ctrl, "setter-1")
					defer setter.Close()
					rec := env.Noisy
					if i > 0 {
						rec = nil
					}
					next := 1000 + i*1_000_000
					specs = append(specs, workload.Spec{
						Name:     "setter-1",
						Think:    50 * time.Microsecond,
						Seed:     int64(i + 31),
						Recorder: rec,
						Op: func(r *rand.Rand) {
							// Distinct keys force an eviction scan on
							// every store.
							setter.Set(next)
							next++
						},
					})
				}
			}
			workload.Run(env.Duration, specs)
		},
	}
}
