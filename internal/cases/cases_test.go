package cases

import (
	"testing"
	"time"

	"pbox/internal/core"
	"pbox/internal/stats"
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 16 {
		t.Fatalf("catalog has %d cases, want 16", len(cat))
	}
	apps := map[string]int{}
	seen := map[string]bool{}
	for i, c := range cat {
		if c.ID == "" || c.Desc == "" || c.Resource == "" || c.Scenario == nil {
			t.Fatalf("case %d incomplete: %+v", i, c)
		}
		if seen[c.ID] {
			t.Fatalf("duplicate case id %s", c.ID)
		}
		seen[c.ID] = true
		if c.PaperLevel <= 0 {
			t.Fatalf("case %s missing paper interference level", c.ID)
		}
		apps[c.App]++
	}
	// Table 3's distribution: 5 MySQL, 5 PostgreSQL, 3 Apache, 2 Varnish,
	// 1 Memcached.
	want := map[string]int{"MySQL": 5, "PostgreSQL": 5, "Apache": 3, "Varnish": 2, "Memcached": 1}
	for app, n := range want {
		if apps[app] != n {
			t.Fatalf("%s has %d cases, want %d", app, apps[app], n)
		}
	}
}

func TestByID(t *testing.T) {
	c, ok := ByID("c5")
	if !ok || c.ID != "c5" || c.App != "MySQL" {
		t.Fatalf("ByID(c5) = %+v, %v", c, ok)
	}
	if _, ok := ByID("c99"); ok {
		t.Fatal("ByID(c99) succeeded")
	}
}

func TestEventDrivenFlags(t *testing.T) {
	for _, id := range []string{"c14", "c15", "c16"} {
		c, _ := ByID(id)
		if !c.EventDriven {
			t.Fatalf("%s should be event-driven", id)
		}
	}
	for _, id := range []string{"c1", "c6", "c11"} {
		c, _ := ByID(id)
		if c.EventDriven {
			t.Fatalf("%s should not be event-driven", id)
		}
	}
}

func TestRunVanillaProducesSamples(t *testing.T) {
	c, _ := ByID("c1")
	out := Run(c, RunConfig{Solution: SolutionNone, Interference: false, Duration: 60 * time.Millisecond})
	if out.Victim.Count == 0 {
		t.Fatal("no victim samples recorded")
	}
	if out.Actions != 0 {
		t.Fatalf("vanilla run reported %d actions", out.Actions)
	}
	if out.Noisy.Count != 0 {
		t.Fatal("noisy samples recorded without interference")
	}
}

func TestRunInterferenceRaisesLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	c, _ := ByID("c12")
	to := Run(c, RunConfig{Solution: SolutionNone, Interference: false, Duration: 100 * time.Millisecond})
	ti := Run(c, RunConfig{Solution: SolutionNone, Interference: true, Duration: 100 * time.Millisecond})
	if ti.Victim.Mean <= 2*to.Victim.Mean {
		t.Fatalf("interference too weak: To=%v Ti=%v", to.Victim.Mean, ti.Victim.Mean)
	}
	if ti.Noisy.Count == 0 {
		t.Fatal("no noisy samples under interference")
	}
}

func TestRunPBoxTakesActions(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	c, _ := ByID("c12")
	out := Run(c, RunConfig{Solution: SolutionPBox, Interference: true, Duration: 100 * time.Millisecond})
	if out.Actions == 0 {
		t.Fatal("pBox took no actions on a heavily interfered case")
	}
	if len(out.PenaltyLengths) == 0 {
		t.Fatal("no penalty lengths recorded")
	}
}

func TestRunPBoxMitigates(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive end-to-end check")
	}
	// c12 (MaxClients exhaustion) is the most deterministic strong case.
	c, _ := ByID("c12")
	d := 200 * time.Millisecond
	to := Run(c, RunConfig{Solution: SolutionNone, Interference: false, Duration: d})
	ti := Run(c, RunConfig{Solution: SolutionNone, Interference: true, Duration: d})
	ts := Run(c, RunConfig{Solution: SolutionPBox, Interference: true, Duration: d})
	r := stats.ReductionRatio(ti.Victim.Mean, to.Victim.Mean, ts.Victim.Mean)
	t.Logf("c12: To=%v Ti=%v Ts=%v r=%.1f%%", to.Victim.Mean, ti.Victim.Mean, ts.Victim.Mean, r*100)
	if r < 0.3 {
		t.Fatalf("pBox reduction = %.1f%%, want >= 30%%", r*100)
	}
}

func TestRunAllSolutionsConstruct(t *testing.T) {
	c, _ := ByID("c2")
	for _, sol := range append(Solutions(), SolutionNone) {
		out := Run(c, RunConfig{Solution: sol, Interference: true, Duration: 40 * time.Millisecond})
		if out.Victim.Count == 0 {
			t.Fatalf("solution %s recorded no samples", sol)
		}
	}
}

func TestRunUnknownSolutionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown solution")
		}
	}()
	c, _ := ByID("c1")
	Run(c, RunConfig{Solution: "bogus", Interference: false, Duration: 10 * time.Millisecond})
}

func TestRunCustomRule(t *testing.T) {
	c, _ := ByID("c2")
	out := Run(c, RunConfig{
		Solution: SolutionPBox, Interference: true, Duration: 40 * time.Millisecond,
		Rule: core.IsolationRule{Type: core.Relative, Level: 1.25, Metric: core.MetricAverage},
	})
	if out.Victim.Count == 0 {
		t.Fatal("no samples with custom rule")
	}
}

func TestMotivationSeriesShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow series")
	}
	pts := Fig3Series(600 * time.Millisecond)
	if len(pts) < 10 {
		t.Fatalf("fig3 series too short: %d", len(pts))
	}
	// Latency after the fifth client joins (last third) should exceed the
	// quiet phase.
	var before, after float64
	var bn, an int
	for i, p := range pts {
		if p.Count == 0 {
			continue
		}
		if i < len(pts)*2/3 {
			before += p.Mean
			bn++
		} else if i < len(pts)-1 {
			after += p.Mean
			an++
		}
	}
	if bn == 0 || an == 0 {
		t.Fatal("empty series phases")
	}
	if after/float64(an) <= before/float64(bn) {
		t.Fatalf("fig3 shape inverted: before=%.3f after=%.3f", before/float64(bn), after/float64(an))
	}
}
