package cases

import (
	"math/rand"
	"time"

	"pbox/internal/apps/miniproxy"
	"pbox/internal/workload"
)

// caseC14 — Varnish, thread pool: requests fetching big objects occupy the
// worker threads and requests for small objects queue behind them.
func caseC14() Case {
	return Case{
		ID: "c14", App: "Varnish", Bug: false,
		Resource:    "varnish thread pool",
		Desc:        "Slow request on visiting big objects blocks the requests on small objects",
		PaperLevel:  18045.79,
		EventDriven: true,
		Scenario: func(env *Env) {
			cfg := miniproxy.DefaultConfig()
			cfg.Workers = 4
			p := miniproxy.New(cfg)
			defer p.Stop()

			victim := p.Connect(env.Ctrl, "smallclient-1")
			defer victim.Close()
			specs := []workload.Spec{{
				Name:     "smallclient-1",
				Think:    300 * time.Microsecond,
				Recorder: env.Victim,
				Op: func(r *rand.Rand) {
					victim.Small(50 * time.Microsecond)
				},
			}}
			if env.Interference {
				for i := 0; i < 6; i++ {
					big := p.Connect(env.Ctrl, "bigclient-1")
					defer big.Close()
					rec := env.Noisy
					if i > 0 {
						rec = nil
					}
					specs = append(specs, workload.Spec{
						Name:     "bigclient-1",
						Think:    100 * time.Microsecond,
						Seed:     int64(i + 23),
						Recorder: rec,
						Op: func(r *rand.Rand) {
							big.Big(100*time.Microsecond, 3*time.Millisecond)
						},
					})
				}
			}
			workload.Run(env.Duration, specs)
		},
	}
}

// caseC15 — Varnish, system lock: the WRK_SumStat global lock, taken on
// every request completion, is stalled by statistics aggregation passes.
func caseC15() Case {
	return Case{
		ID: "c15", App: "Varnish", Bug: true,
		Resource:    "system lock",
		Desc:        "WRK_SumStat lock contention with high number of thread pools",
		PaperLevel:  0.68,
		EventDriven: true,
		Scenario: func(env *Env) {
			cfg := miniproxy.DefaultConfig()
			cfg.Workers = 4
			p := miniproxy.New(cfg)
			defer p.Stop()

			if env.Interference {
				f := p.StartStatsFlusher(env.Ctrl, 1500*time.Microsecond, 2500*time.Microsecond)
				defer f.Stop()
			}
			victim := p.Connect(env.Ctrl, "client-1")
			defer victim.Close()
			peer := p.Connect(env.Ctrl, "client-2")
			defer peer.Close()
			workload.Run(env.Duration, []workload.Spec{
				{
					Name:     "client-1",
					Think:    300 * time.Microsecond,
					Recorder: env.Victim,
					Op: func(r *rand.Rand) {
						victim.Small(50 * time.Microsecond)
					},
				},
				{
					Name:  "client-2",
					Think: 300 * time.Microsecond,
					Op: func(r *rand.Rand) {
						peer.Small(50 * time.Microsecond)
					},
				},
			})
		},
	}
}
