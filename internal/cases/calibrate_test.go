package cases

import (
	"fmt"
	"os"
	"testing"
	"time"

	"pbox/internal/stats"
)

// TestCalibrate prints To/Ti/Ts and reduction ratios for each case. It only
// runs when PBOX_CALIBRATE is set (it is a tuning tool, not a regression
// test). PBOX_CASES can narrow it to a comma-separated id list.
func TestCalibrate(t *testing.T) {
	if os.Getenv("PBOX_CALIBRATE") == "" {
		t.Skip("set PBOX_CALIBRATE=1 to run")
	}
	filter := os.Getenv("PBOX_CASES")
	for _, c := range Catalog() {
		if filter != "" && !contains(filter, c.ID) {
			continue
		}
		to := Run(c, RunConfig{Solution: SolutionNone, Interference: false})
		ti := Run(c, RunConfig{Solution: SolutionNone, Interference: true})
		ts := Run(c, RunConfig{Solution: SolutionPBox, Interference: true})
		p := stats.InterferenceLevel(ti.Victim.Mean, to.Victim.Mean)
		r := stats.ReductionRatio(ti.Victim.Mean, to.Victim.Mean, ts.Victim.Mean)
		fmt.Printf("%-4s To=%-10v Ti=%-12v Ts=%-12v p=%-8.2f r=%6.1f%% actions=%d n(Ti)=%d\n",
			c.ID, to.Victim.Mean, ti.Victim.Mean, ts.Victim.Mean, p, r*100, ts.Actions, ti.Victim.Count)
	}
	_ = time.Now
}

func contains(csv, id string) bool {
	for len(csv) > 0 {
		i := 0
		for i < len(csv) && csv[i] != ',' {
			i++
		}
		if csv[:i] == id {
			return true
		}
		if i == len(csv) {
			break
		}
		csv = csv[i+1:]
	}
	return false
}
