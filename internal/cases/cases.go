// Package cases reproduces the 16 real-world intra-application performance
// interference issues of Table 3 in the paper, scaled from the paper's
// 90-second CloudLab runs to sub-second in-process runs. Each case builds
// the relevant application substrate, runs a victim workload with or
// without the noisy component, and records victim and noisy latencies.
//
// A case can run under any solution of Section 6.3: vanilla (no isolation),
// pBox, cgroup, PARTIES, Retro, or DARC. The experiment harness combines
// runs into the paper's metrics: interference level p = Ti/To − 1 and
// reduction ratio r = (Ti − Ts)/(Ti − To).
package cases

import (
	"fmt"
	"time"

	"pbox/internal/baseline"
	"pbox/internal/core"
	"pbox/internal/isolation"
	"pbox/internal/stats"
)

// Env is the scenario execution environment.
type Env struct {
	// Ctrl is the isolation policy for this run.
	Ctrl isolation.Controller
	// Interference enables the noisy component; a run without it measures
	// the interference-free baseline To.
	Interference bool
	// Duration is the measurement length.
	Duration time.Duration
	// Victim receives the victim activity's request latencies.
	Victim *stats.Recorder
	// Noisy receives the noisy activity's request latencies (when the
	// noisy component is request-based).
	Noisy *stats.Recorder
}

// Case is one reproduced interference issue.
type Case struct {
	// ID is the paper's case identifier (c1..c16).
	ID string
	// App names the application substrate.
	App string
	// Bug reports whether the paper found an associated bug report.
	Bug bool
	// Resource is the contended virtual resource (Table 3).
	Resource string
	// Desc is the one-line description from Table 3.
	Desc string
	// PaperLevel is the interference level the paper measured (Table 3,
	// last column), for EXPERIMENTS.md comparison.
	PaperLevel float64
	// EventDriven marks cases whose activities run on shared worker
	// threads (the Varnish/Memcached architecture), selecting the
	// shared-thread pBox controller.
	EventDriven bool
	// Scenario executes the case.
	Scenario func(env *Env)
}

// Solution identifies an isolation policy for a run.
type Solution string

// The evaluated solutions (Section 6.3).
const (
	SolutionNone    Solution = "none"
	SolutionPBox    Solution = "pbox"
	SolutionCgroup  Solution = "cgroup"
	SolutionParties Solution = "parties"
	SolutionRetro   Solution = "retro"
	SolutionDarc    Solution = "darc"
)

// Solutions lists the comparison systems in the order of Figure 11.
func Solutions() []Solution {
	return []Solution{SolutionPBox, SolutionCgroup, SolutionParties, SolutionDarc, SolutionRetro}
}

// RunConfig parameterizes one case run.
type RunConfig struct {
	Solution     Solution
	Interference bool
	// Duration is the measurement length (default 300ms).
	Duration time.Duration
	// Rule overrides the pBox isolation rule (default: 50% relative).
	Rule core.IsolationRule
	// ManagerOptions seeds the pBox manager (fixed penalty mode, event
	// filters for the mistake-tolerance experiment, ...).
	ManagerOptions core.Options
}

// Outcome is the result of one case run.
type Outcome struct {
	CaseID       string
	Solution     Solution
	Interference bool
	Victim       stats.Summary
	Noisy        stats.Summary

	// pBox-manager statistics (zero for other solutions).
	Actions          int
	ScoreActions     int
	GapActions       int
	PenaltyLengths   []time.Duration
	ConvergenceSteps float64
}

// DefaultDuration is the standard per-run measurement length.
const DefaultDuration = 300 * time.Millisecond

// Run executes one case under the configured solution and returns its
// outcome.
func Run(c Case, rc RunConfig) Outcome {
	if rc.Duration <= 0 {
		rc.Duration = DefaultDuration
	}
	rule := rc.Rule
	if !rule.Valid() {
		rule = core.DefaultRule()
	}
	ctrl, mgr := newController(c, rc, rule)
	defer ctrl.Shutdown()

	env := &Env{
		Ctrl:         ctrl,
		Interference: rc.Interference,
		Duration:     rc.Duration,
		Victim:       stats.NewRecorder(4096),
		Noisy:        stats.NewRecorder(4096),
	}
	c.Scenario(env)

	out := Outcome{
		CaseID:       c.ID,
		Solution:     rc.Solution,
		Interference: rc.Interference,
		Victim:       env.Victim.Summary(),
		Noisy:        env.Noisy.Summary(),
	}
	if mgr != nil {
		out.Actions = mgr.TotalActions()
		out.PenaltyLengths = mgr.PenaltyLengths()
		var convSum, convN float64
		for _, rec := range mgr.ActionReport() {
			out.ScoreActions += rec.ScoreActions
			out.GapActions += rec.GapActions
			if rec.ConvergenceSteps > 0 {
				convSum += float64(rec.ConvergenceSteps)
				convN++
			}
		}
		if convN > 0 {
			out.ConvergenceSteps = convSum / convN
		}
	}
	return out
}

// newController builds the isolation controller for a run; the returned
// manager is non-nil only for pBox runs.
func newController(c Case, rc RunConfig, rule core.IsolationRule) (isolation.Controller, *core.Manager) {
	switch rc.Solution {
	case SolutionNone, "":
		return isolation.NewNull(), nil
	case SolutionPBox:
		mgr := core.NewManager(rc.ManagerOptions)
		if c.EventDriven {
			return isolation.NewPBoxShared(mgr, rule), mgr
		}
		return isolation.NewPBox(mgr, rule), mgr
	case SolutionCgroup:
		return baseline.NewCgroup(), nil
	case SolutionParties:
		return baseline.NewParties(), nil
	case SolutionRetro:
		return baseline.NewRetro(), nil
	case SolutionDarc:
		return baseline.NewDarc(), nil
	default:
		panic(fmt.Sprintf("cases: unknown solution %q", rc.Solution))
	}
}

// Catalog returns the 16 cases in Table 3 order.
func Catalog() []Case {
	return []Case{
		caseC1(), caseC2(), caseC3(), caseC4(), caseC5(),
		caseC6(), caseC7(), caseC8(), caseC9(), caseC10(),
		caseC11(), caseC12(), caseC13(),
		caseC14(), caseC15(),
		caseC16(),
	}
}

// isolationNull returns the vanilla controller (helper for the motivation
// figure runners, which always run without isolation).
func isolationNull() isolation.Controller { return isolation.NewNull() }

// ByID returns the case with the given id.
func ByID(id string) (Case, bool) {
	for _, c := range Catalog() {
		if c.ID == id {
			return c, true
		}
	}
	return Case{}, false
}
