package cases

import (
	"math/rand"
	"time"

	"pbox/internal/apps/minidb"
	"pbox/internal/stats"
	"pbox/internal/workload"
)

// caseC1 — MySQL, custom lock: a SELECT FOR UPDATE transaction holds the
// table lock across its lifetime and blocks other clients' inserts.
func caseC1() Case {
	return Case{
		ID: "c1", App: "MySQL", Bug: false,
		Resource:   "custom lock",
		Desc:       "SELECT FOR UPDATE query blocks other clients' insert query",
		PaperLevel: 8.76,
		Scenario: func(env *Env) {
			db := minidb.New(minidb.DefaultConfig())
			db.CreateTable("orders", 400, 10, false)

			victim := db.Connect(env.Ctrl, "inserter-1")
			defer victim.Close()
			specs := []workload.Spec{{
				Name:     "inserter-1",
				Think:    200 * time.Microsecond,
				Recorder: env.Victim,
				Op: func(r *rand.Rand) {
					victim.InsertBlocking("orders", 2)
				},
			}}
			if env.Interference {
				locker := db.Connect(env.Ctrl, "locker-1")
				defer locker.Close()
				specs = append(specs, workload.Spec{
					Name:     "locker-1",
					Think:    time.Millisecond,
					Recorder: env.Noisy,
					Op: func(r *rand.Rand) {
						locker.Begin()
						locker.SelectForUpdate("orders", 500*time.Microsecond)
						time.Sleep(2 * time.Millisecond) // txn stays open
						locker.Commit()
					},
				})
			}
			workload.Run(env.Duration, specs)
		},
	}
}

// caseC2 — MySQL, custom mutex: inserting into tables without a primary key
// serializes on a global engine mutex while the hidden row-id is assigned.
func caseC2() Case {
	return Case{
		ID: "c2", App: "MySQL", Bug: false,
		Resource:   "custom mutex",
		Desc:       "Inserting to tables without primary key would cause contention on global mutex",
		PaperLevel: 0.11,
		Scenario: func(env *Env) {
			db := minidb.New(minidb.DefaultConfig())
			db.CreateTable("nopk", 400, 10, true)

			victim := db.Connect(env.Ctrl, "writer-1")
			defer victim.Close()
			specs := []workload.Spec{{
				Name:     "writer-1",
				Think:    200 * time.Microsecond,
				Recorder: env.Victim,
				Op: func(r *rand.Rand) {
					victim.Insert("nopk", 5)
				},
			}}
			if env.Interference {
				bulk := db.Connect(env.Ctrl, "bulkwriter-1")
				defer bulk.Close()
				specs = append(specs, workload.Spec{
					Name:     "bulkwriter-1",
					Think:    200 * time.Microsecond,
					Recorder: env.Noisy,
					Op: func(r *rand.Rand) {
						bulk.Insert("nopk", 150)
					},
				})
			}
			workload.Run(env.Duration, specs)
		},
	}
}

// caseC3 — MySQL, thread-concurrency tickets (Figure 3): a fifth
// write-intensive client exhausts the innodb_thread_concurrency slots and a
// read-intensive client's latency triples.
func caseC3() Case {
	return Case{
		ID: "c3", App: "MySQL", Bug: false,
		Resource:   "integer and tickets",
		Desc:       "Slow query blocks other clients' requests when concurrency limit is reached",
		PaperLevel: 10.70,
		Scenario: func(env *Env) {
			cfg := minidb.DefaultConfig()
			cfg.TicketLimit = 4
			// One ticket per entry: the slot is released at statement end,
			// so contention is among in-flight statements (5 active
			// clients over 4 slots), as in the reproduction setup of
			// Section 2.1.
			cfg.TicketsPerEnter = 1
			db := minidb.New(cfg)
			for _, name := range []string{"t1", "t2", "t3", "t4", "t5"} {
				db.CreateTable(name, 200, 10, false)
			}

			victim := db.Connect(env.Ctrl, "reader-1")
			defer victim.Close()
			specs := []workload.Spec{{
				Name:     "reader-1",
				Think:    200 * time.Microsecond,
				Recorder: env.Victim,
				Op: func(r *rand.Rand) {
					victim.Read("t4", r.Intn(200), 4)
				},
			}}
			// Three steady write-intensive clients.
			for i, table := range []string{"t1", "t2", "t3"} {
				w := db.Connect(env.Ctrl, "writer-"+table)
				defer w.Close()
				specs = append(specs, workload.Spec{
					Name:  "writer-" + table,
					Think: 400 * time.Microsecond,
					Seed:  int64(i + 1),
					Op: func(r *rand.Rand) {
						w.SlowQuery(table, 800*time.Microsecond)
					},
				})
			}
			if env.Interference {
				fifth := db.Connect(env.Ctrl, "writer-t5")
				defer fifth.Close()
				specs = append(specs, workload.Spec{
					Name:     "writer-t5",
					Think:    100 * time.Microsecond,
					Recorder: env.Noisy,
					Op: func(r *rand.Rand) {
						fifth.SlowQuery("t5", 1200*time.Microsecond)
					},
				})
			}
			workload.Run(env.Duration, specs)
		},
	}
}

// caseC4 — MySQL, SERIALIZABLE isolation: serializable reads take shared
// table locks and block writers.
func caseC4() Case {
	return Case{
		ID: "c4", App: "MySQL", Bug: true,
		Resource:   "integer variable",
		Desc:       "SERIALIZABLE isolation model causes significant overhead to SELECT locking",
		PaperLevel: 6.61,
		Scenario: func(env *Env) {
			db := minidb.New(minidb.DefaultConfig())
			db.CreateTable("acct", 400, 10, false)

			victim := db.Connect(env.Ctrl, "writer-1")
			victim.SetIsolation(minidb.Serializable)
			defer victim.Close()
			specs := []workload.Spec{{
				Name:     "writer-1",
				Think:    300 * time.Microsecond,
				Recorder: env.Victim,
				Op: func(r *rand.Rand) {
					victim.Write("acct", r.Intn(400), 2)
				},
			}}
			if env.Interference {
				serial := db.Connect(env.Ctrl, "serialreader-1")
				serial.SetIsolation(minidb.Serializable)
				defer serial.Close()
				specs = append(specs, workload.Spec{
					Name:     "serialreader-1",
					Think:    200 * time.Microsecond,
					Recorder: env.Noisy,
					Op: func(r *rand.Rand) {
						serial.Read("acct", 0, 500)
					},
				})
			}
			workload.Run(env.Duration, specs)
		},
	}
}

// caseC5 — MySQL, UNDO log (Figure 1): history accumulated behind a long
// transaction forces the purge thread into long chunked passes that block
// client requests.
func caseC5() Case {
	return Case{
		ID: "c5", App: "MySQL", Bug: false,
		Resource:   "UNDO log",
		Desc:       "Background purge task blocks the client's request when purging the UNDO log",
		PaperLevel: 15.35,
		Scenario: func(env *Env) {
			cfg := minidb.DefaultConfig()
			cfg.PurgeChunk = 125
			cfg.UndoCosts.PurgePerEntry = 8 * time.Microsecond
			db := minidb.New(cfg)
			db.CreateTable("t", 400, 10, false)

			if env.Interference {
				// History accumulated behind a just-committed long
				// transaction (the client-A pattern of Figure 1).
				db.Undo().Append(nil, 30000)
				pr := db.StartPurge(env.Ctrl)
				defer pr.Stop()
			}
			victim := db.Connect(env.Ctrl, "writer-1")
			defer victim.Close()
			workload.Run(env.Duration, []workload.Spec{{
				Name:     "writer-1",
				Think:    150 * time.Microsecond,
				Recorder: env.Victim,
				Op: func(r *rand.Rand) {
					victim.Write("t", r.Intn(400), 20)
				},
			}})
		},
	}
}

// Fig1Series reproduces the motivation Figure 1 time series: client B's
// write latency before and after the long-transaction client A joins.
func Fig1Series(d time.Duration) []stats.Point {
	cfg := minidb.DefaultConfig()
	// Small prompt chunks: with no old snapshots the purge trails the
	// writers closely and its passes are short and harmless.
	cfg.PurgeChunk = 50
	cfg.UndoCosts.PurgePerEntry = 8 * time.Microsecond
	cfg.UndoCosts.PinnedChain = 4
	db := minidb.New(cfg)
	db.CreateTable("t", 400, 10, false)
	ctrl := isolationNull()
	pr := db.StartPurge(ctrl)
	// The purge coordinator batches: without old snapshots pinning
	// history, B's steady trickle never reaches the threshold and purge
	// stays out of the way (the quiet first third of Figure 1).
	pr.Threshold = 200
	pr.ChunkPause = 150 * time.Microsecond
	defer pr.Stop()

	series := stats.NewTimeSeries(d / 30)
	b := db.Connect(ctrl, "clientB")
	defer b.Close()
	a := db.Connect(ctrl, "clientA")
	defer a.Close()

	specs := []workload.Spec{
		{
			Name:   "clientB",
			Think:  150 * time.Microsecond,
			Series: series,
			Op: func(r *rand.Rand) {
				b.Write("t", r.Intn(400), 5)
			},
		},
		{
			// Client A joins a third of the way in with one long
			// transaction: its snapshot pins history, so B's writes
			// retain full version chains and the UNDO log balloons.
			// When A finally commits, the purge thread grinds through
			// the backlog and B's latency jumps — the shape of
			// Figure 1.
			Name:  "clientA",
			Start: d / 3,
			Stop:  d/3 + d/5 + d/30,
			Op: func(r *rand.Rand) {
				a.Begin()
				a.Read("t", 0, 1)
				time.Sleep(d / 5) // the long transaction
				a.Commit()
			},
		},
	}
	workload.Run(d, specs)
	return series.Points()
}

// Fig2Series reproduces the motivation Figure 2 time series: throughput of
// OLTP clients collapsing when a backup (dump) task starts.
func Fig2Series(d time.Duration) []stats.Point {
	cfg := minidb.DefaultConfig()
	cfg.BufferPoolFrames = 96
	db := minidb.New(cfg)
	db.CreateTable("small", 600, 10, false) // 60 pages: fits the pool
	db.CreateTable("big", 40000, 10, false) // 4000 pages: does not fit
	ctrl := isolationNull()

	series := stats.NewTimeSeries(d / 30)
	var conns []*minidb.Conn
	specs := make([]workload.Spec, 0, 5)
	for i := 0; i < 4; i++ {
		c := db.Connect(ctrl, "oltp")
		conns = append(conns, c)
		cc := c
		specs = append(specs, workload.Spec{
			Name:  "oltp",
			Think: 150 * time.Microsecond,
			Seed:  int64(i + 1),
			Op: func(r *rand.Rand) {
				t0 := time.Now()
				if r.Intn(2) == 0 {
					cc.Read("small", r.Intn(600), 2)
				} else {
					cc.Write("small", r.Intn(600), 2)
				}
				_ = t0
				series.Add(1) // completion event: bucket count = throughput
			},
		})
	}
	dump := db.ConnectBackground(ctrl, "backup")
	conns = append(conns, dump)
	offset := 0
	specs = append(specs, workload.Spec{
		Name:  "backup",
		Start: d / 3,
		Op: func(r *rand.Rand) {
			dump.Dump("big", offset, 128)
			offset += 128
		},
	})
	workload.Run(d, specs)
	for _, c := range conns {
		c.Close()
	}
	return series.Points()
}

// Fig3Series reproduces the motivation Figure 3 time series: the reader
// client's latency before and after a fifth write-intensive client joins.
func Fig3Series(d time.Duration) []stats.Point {
	cfg := minidb.DefaultConfig()
	cfg.TicketLimit = 4
	// Autocommit statements force-exit the engine at statement end, so
	// one ticket per entry (a slot held across client think time would
	// deadlock a closed-loop workload once connections outnumber slots).
	cfg.TicketsPerEnter = 1
	db := minidb.New(cfg)
	for _, name := range []string{"t1", "t2", "t3", "t4", "t5"} {
		db.CreateTable(name, 200, 10, false)
	}
	ctrl := isolationNull()
	series := stats.NewTimeSeries(d / 30)

	reader := db.Connect(ctrl, "reader")
	defer reader.Close()
	specs := []workload.Spec{{
		Name:   "reader",
		Think:  200 * time.Microsecond,
		Series: series,
		Op: func(r *rand.Rand) {
			reader.Read("t4", r.Intn(200), 4)
		},
	}}
	for i, table := range []string{"t1", "t2", "t3"} {
		w := db.Connect(ctrl, "writer-"+table)
		defer w.Close()
		t := table
		specs = append(specs, workload.Spec{
			Name:  "writer-" + t,
			Think: 400 * time.Microsecond,
			Seed:  int64(i + 1),
			Op: func(r *rand.Rand) {
				w.SlowQuery(t, 800*time.Microsecond)
			},
		})
	}
	fifth := db.Connect(ctrl, "writer-t5")
	defer fifth.Close()
	specs = append(specs, workload.Spec{
		Name:  "writer-t5",
		Start: d * 2 / 3,
		Think: 100 * time.Microsecond,
		Op: func(r *rand.Rand) {
			fifth.SlowQuery("t5", 1200*time.Microsecond)
		},
	})
	workload.Run(d, specs)
	return series.Points()
}
