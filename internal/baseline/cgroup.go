package baseline

import (
	"runtime"
	"sync"
	"time"

	"pbox/internal/core"
	"pbox/internal/exec"
	"pbox/internal/isolation"
)

// Cgroup reproduces the paper's cgroup methodology (Section 6.3): "a script
// dynamically identifies threads that handle different types of workloads
// and puts them into different cgroups... background task threads into one
// cgroup. Then the script configures an even CPU usage quota among the
// cgroups."
//
// Groups are keyed by the workload class of the connection (its name prefix,
// standing in for the script's classification); all background tasks share
// one group. Each group gets an even share of the machine's CPU bandwidth,
// enforced as a token bucket debited by Work calls — the userspace analogue
// of cfs_quota/cfs_period.
type Cgroup struct {
	mu       sync.Mutex
	groups   map[string]*tokenBucket
	totalCPU float64 // machine CPU-ns per wall-ns
	burst    time.Duration
}

// NewCgroup creates the cgroup controller.
func NewCgroup() *Cgroup {
	return &Cgroup{
		groups:   make(map[string]*tokenBucket),
		totalCPU: float64(runtime.GOMAXPROCS(0)),
		burst:    2 * time.Millisecond,
	}
}

// Name implements isolation.Controller.
func (c *Cgroup) Name() string { return "cgroup" }

// Shutdown implements isolation.Controller.
func (c *Cgroup) Shutdown() {}

// ConnStart implements isolation.Controller.
func (c *Cgroup) ConnStart(name string, kind isolation.Kind) isolation.Activity {
	group := groupOf(name, kind)
	c.mu.Lock()
	if _, ok := c.groups[group]; !ok {
		c.groups[group] = newTokenBucket(1, c.burst)
		c.rebalanceLocked()
	}
	b := c.groups[group]
	c.mu.Unlock()
	return &cgroupActivity{bucket: b}
}

// rebalanceLocked assigns each group an even share of total CPU bandwidth.
func (c *Cgroup) rebalanceLocked() {
	if len(c.groups) == 0 {
		return
	}
	share := c.totalCPU / float64(len(c.groups))
	for _, b := range c.groups {
		b.setRate(share)
	}
}

// groupOf classifies a connection name into a workload group: background
// tasks share one group; foreground connections group by name prefix (the
// text before the last '-'), standing in for the script's workload-type
// detection.
func groupOf(name string, kind isolation.Kind) string {
	if kind == isolation.KindBackground {
		return "background"
	}
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '-' {
			return name[:i]
		}
	}
	return name
}

type cgroupActivity struct {
	bucket *tokenBucket
}

func (a *cgroupActivity) Begin(string)                           {}
func (a *cgroupActivity) End(time.Duration)                      {}
func (a *cgroupActivity) Event(core.ResourceKey, core.EventType) {}
func (a *cgroupActivity) Gate() time.Duration                    { return 0 }
func (a *cgroupActivity) Close()                                 {}
func (a *cgroupActivity) IO(d time.Duration)                     { exec.IOWait(d) }

// Work spends CPU under the group quota: the spin is broken into slices and
// the quota sleep is injected between them, exactly like CFS bandwidth
// control preempting a thread mid-request — including while it holds
// application virtual resources, which is why cgroup can worsen intra-app
// interference.
func (a *cgroupActivity) Work(d time.Duration) {
	var prev time.Duration
	exec.WorkChunked(d, 200*time.Microsecond, func(done time.Duration) {
		step := done - prev
		prev = done
		if sleep := a.bucket.consume(step); sleep > 0 {
			exec.SleepPrecise(sleep)
		}
	})
}
