package baseline

import (
	"testing"
	"time"

	"pbox/internal/core"
	"pbox/internal/isolation"
)

func TestTokenBucketThrottles(t *testing.T) {
	// Rate 0.5 CPU-ns per wall-ns, tiny burst: consuming 1ms of CPU
	// requires ≈2ms of wall time.
	b := newTokenBucket(0.5, 100*time.Microsecond)
	var slept time.Duration
	for i := 0; i < 10; i++ {
		if s := b.consume(100 * time.Microsecond); s > 0 {
			slept += s
			time.Sleep(s)
		}
	}
	if slept <= 0 {
		t.Fatal("bucket never throttled")
	}
}

func TestTokenBucketBurstPassesFree(t *testing.T) {
	b := newTokenBucket(1, time.Millisecond)
	if s := b.consume(500 * time.Microsecond); s != 0 {
		t.Fatalf("burst consumption requested sleep %v", s)
	}
}

func TestTokenBucketRateFloor(t *testing.T) {
	b := newTokenBucket(1, time.Millisecond)
	b.setRate(-5)
	if b.rate < 0.01 {
		t.Fatalf("rate = %v, want floored", b.rate)
	}
}

func TestEWMA(t *testing.T) {
	e := &ewma{alpha: 0.5}
	e.add(10)
	if e.get() != 10 {
		t.Fatalf("first value = %v", e.get())
	}
	e.add(20)
	if e.get() != 15 {
		t.Fatalf("ewma = %v, want 15", e.get())
	}
}

func TestMonitorRunsAndStops(t *testing.T) {
	ticks := make(chan struct{}, 100)
	m := startMonitor(2*time.Millisecond, func() { ticks <- struct{}{} })
	time.Sleep(10 * time.Millisecond)
	m.Stop()
	n := len(ticks)
	if n == 0 {
		t.Fatal("monitor never ticked")
	}
	time.Sleep(6 * time.Millisecond)
	if len(ticks) != n {
		t.Fatal("monitor ticked after Stop")
	}
}

func TestCgroupGrouping(t *testing.T) {
	if g := groupOf("writer-3", isolation.KindForeground); g != "writer" {
		t.Fatalf("group = %q, want writer", g)
	}
	if g := groupOf("purge", isolation.KindBackground); g != "background" {
		t.Fatalf("group = %q, want background", g)
	}
	if g := groupOf("plain", isolation.KindForeground); g != "plain" {
		t.Fatalf("group = %q, want plain", g)
	}
}

func TestCgroupEvenQuota(t *testing.T) {
	c := NewCgroup()
	defer c.Shutdown()
	a := c.ConnStart("alpha-1", isolation.KindForeground)
	_ = c.ConnStart("beta-1", isolation.KindForeground)
	_ = c.ConnStart("gamma-1", isolation.KindForeground)
	c.mu.Lock()
	n := len(c.groups)
	var rate float64
	for _, b := range c.groups {
		rate = b.rate
	}
	c.mu.Unlock()
	if n != 3 {
		t.Fatalf("groups = %d, want 3", n)
	}
	want := c.totalCPU / 3
	if rate != want {
		t.Fatalf("rate = %v, want even share %v", rate, want)
	}
	// Work on a throttled group must complete (and be stretched when the
	// quota is tiny).
	a.Work(200 * time.Microsecond)
}

func TestPartiesShiftsShares(t *testing.T) {
	p := NewParties()
	defer p.Shutdown()
	victim := p.ConnStart("v", isolation.KindForeground).(*partiesActivity)
	noisy := p.ConnStart("n", isolation.KindForeground).(*partiesActivity)

	// Calibrate the victim at 1ms, then report violations (5ms); the
	// noisy client burns CPU.
	for i := 0; i < partiesCalibration; i++ {
		victim.End(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		victim.End(5 * time.Millisecond)
	}
	noisy.mu.Lock()
	noisy.cpuWindow = 50 * time.Millisecond
	noisy.mu.Unlock()

	p.adjust()

	noisy.mu.Lock()
	ns := noisy.share
	noisy.mu.Unlock()
	if ns >= 1.0 {
		t.Fatalf("noisy share = %v, want reduced", ns)
	}
}

func TestPartiesRestoresSharesWhenQuiet(t *testing.T) {
	p := NewParties()
	defer p.Shutdown()
	a := p.ConnStart("a", isolation.KindForeground).(*partiesActivity)
	a.mu.Lock()
	a.share = 0.4
	a.mu.Unlock()
	p.adjust() // no violations anywhere
	a.mu.Lock()
	got := a.share
	a.mu.Unlock()
	if got <= 0.4 {
		t.Fatalf("share = %v, want restored upward", got)
	}
}

func TestRetroTracksLockUsageAndThrottles(t *testing.T) {
	// Construct without the background monitor so the explicit bfair()
	// calls below are the only consumers of the usage windows.
	r := &Retro{flows: make(map[*retroActivity]struct{})}
	noisy := r.ConnStart("n", isolation.KindForeground).(*retroActivity)
	quiet := r.ConnStart("q", isolation.KindForeground).(*retroActivity)
	quiet2 := r.ConnStart("q2", isolation.KindForeground).(*retroActivity)

	// The noisy workflow holds a lock for a long time; BFAIR needs the
	// fleet mean to sit well below it (it throttles above 2× the mean).
	noisy.Event(1, core.Hold)
	time.Sleep(3 * time.Millisecond)
	noisy.Event(1, core.Unhold)
	quiet.Work(10 * time.Microsecond)
	quiet2.Work(10 * time.Microsecond)

	r.bfair()

	if noisy.Gate() <= 0 {
		t.Fatalf("noisy gate = %v, want throttled", noisy.Gate())
	}
	if quiet.Gate() != 0 {
		t.Fatalf("quiet gate = %v, want 0", quiet.Gate())
	}
	// The next round with no usage clears the throttle.
	r.bfair()
	r.bfair()
	if noisy.Gate() != 0 {
		t.Fatalf("gate after quiet rounds = %v, want 0", noisy.Gate())
	}
}

func TestRetroUnmatchedUnholdIgnored(t *testing.T) {
	r := NewRetro()
	defer r.Shutdown()
	a := r.ConnStart("a", isolation.KindForeground).(*retroActivity)
	a.Event(9, core.Unhold) // no matching hold: must not panic or count
	a.mu.Lock()
	lw := a.lockWindow
	a.mu.Unlock()
	if lw != 0 {
		t.Fatalf("lock window = %v, want 0", lw)
	}
}

func TestDarcClassifiesAndReserves(t *testing.T) {
	d := NewDarc()
	defer d.Shutdown()
	a := d.ConnStart("a", isolation.KindForeground)

	// Profile: "get" is short, "post" is long.
	for i := 0; i < 20; i++ {
		a.Begin("get")
		a.End(100 * time.Microsecond)
		a.Begin("post")
		a.End(5 * time.Millisecond)
	}
	d.mu.Lock()
	longPost := d.classifyLocked("post")
	longGet := d.classifyLocked("get")
	unknown := d.classifyLocked("delete")
	d.mu.Unlock()
	if !longPost {
		t.Fatal("post not classified long")
	}
	if longGet {
		t.Fatal("get classified long")
	}
	if unknown {
		t.Fatal("unknown type classified long")
	}
}

func TestDarcLongSlotAccounting(t *testing.T) {
	d := NewDarc()
	defer d.Shutdown()
	a := d.ConnStart("a", isolation.KindForeground).(*darcActivity)
	for i := 0; i < 20; i++ {
		a.Begin("get")
		a.End(100 * time.Microsecond)
		a.Begin("post")
		a.End(5 * time.Millisecond)
	}
	a.Begin("post")
	d.mu.Lock()
	inUse := d.longInUse
	d.mu.Unlock()
	if inUse != 1 {
		t.Fatalf("longInUse = %d, want 1", inUse)
	}
	a.End(5 * time.Millisecond)
	d.mu.Lock()
	inUse = d.longInUse
	d.mu.Unlock()
	if inUse != 0 {
		t.Fatalf("longInUse after end = %d, want 0", inUse)
	}
}
