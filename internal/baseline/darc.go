package baseline

import (
	"runtime"
	"sync"
	"time"

	"pbox/internal/core"
	"pbox/internal/exec"
	"pbox/internal/isolation"
)

// Darc reproduces the DARC (Perséphone) methodology as adapted by the paper
// (Section 6.3): "DARC provides request-level scheduling. We extend its
// request classifiers to support four request types for MySQL/PostgreSQL
// (Read, Write, Insert, Delete) and two request types for
// Apache/Varnish/Memcached (Post, Get)."
//
// DARC profiles per-type service times and reserves capacity for short
// requests, letting long requests use only the remaining workers ("when
// idling is ideal"). Here the controller profiles each request type's
// latency (EWMA), classifies types as short or long around the running
// median, and admits long-type activities through a bounded slot pool that
// keeps a fraction of capacity reserved for short requests. Like the real
// system it assumes requests are independent; when a long request holds a
// virtual resource, delaying its peers only builds the convoy.
type Darc struct {
	mu       sync.Mutex
	types    map[string]*ewma
	capacity int
	// longSlots bounds concurrently executing long-type activities.
	longInUse int
	longCap   int
}

// NewDarc creates the DARC controller sized to the machine.
func NewDarc() *Darc {
	capacity := runtime.GOMAXPROCS(0)
	if capacity < 2 {
		capacity = 2
	}
	return &Darc{
		types:    make(map[string]*ewma),
		capacity: capacity,
		longCap:  capacity - 1, // one worker kept idle for short requests
	}
}

// Name implements isolation.Controller.
func (d *Darc) Name() string { return "darc" }

// Shutdown implements isolation.Controller.
func (d *Darc) Shutdown() {}

// ConnStart implements isolation.Controller.
func (d *Darc) ConnStart(name string, kind isolation.Kind) isolation.Activity {
	return &darcActivity{ctrl: d}
}

// classifyLocked reports whether reqType is currently a "long" type: its
// profiled service time is above twice the minimum profiled type. Caller
// holds d.mu.
func (d *Darc) classifyLocked(reqType string) bool {
	e, ok := d.types[reqType]
	if !ok || !e.init {
		return false // unknown types are treated as short until profiled
	}
	min := -1.0
	for _, t := range d.types {
		if t.init && (min < 0 || t.get() < min) {
			min = t.get()
		}
	}
	if min <= 0 {
		return false
	}
	return e.get() > 2*min
}

// admitLong blocks the caller until a long slot is available.
func (d *Darc) admitLong() {
	for {
		d.mu.Lock()
		if d.longInUse < d.longCap {
			d.longInUse++
			d.mu.Unlock()
			return
		}
		d.mu.Unlock()
		exec.SleepPrecise(50 * time.Microsecond)
	}
}

func (d *Darc) releaseLong() {
	d.mu.Lock()
	d.longInUse--
	d.mu.Unlock()
}

// record folds a finished request into the per-type profile.
func (d *Darc) record(reqType string, lat time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.types[reqType]
	if !ok {
		e = &ewma{alpha: 0.2}
		d.types[reqType] = e
	}
	e.add(float64(lat))
}

type darcActivity struct {
	ctrl     *Darc
	curType  string
	admitted bool
}

func (a *darcActivity) Begin(reqType string) {
	a.curType = reqType
	a.ctrl.mu.Lock()
	long := a.ctrl.classifyLocked(reqType)
	a.ctrl.mu.Unlock()
	if long {
		a.ctrl.admitLong()
		a.admitted = true
	}
}

func (a *darcActivity) End(lat time.Duration) {
	if a.admitted {
		a.ctrl.releaseLong()
		a.admitted = false
	}
	if a.curType != "" {
		a.ctrl.record(a.curType, lat)
	}
}

func (a *darcActivity) Event(core.ResourceKey, core.EventType) {}
func (a *darcActivity) Work(d time.Duration)                   { exec.Work(d) }
func (a *darcActivity) IO(d time.Duration)                     { exec.IOWait(d) }
func (a *darcActivity) Gate() time.Duration                    { return 0 }
func (a *darcActivity) Close()                                 {}
