package baseline

import (
	"sync"
	"time"

	"pbox/internal/core"
	"pbox/internal/exec"
	"pbox/internal/isolation"
)

// Parties reproduces the PARTIES methodology as adapted by the paper
// (Section 6.3): "we modify its monitoring component to trace each client's
// latency... PARTIES can then control resource usage at the client level."
//
// PARTIES detects QoS violations from latency and shifts hardware resources
// between services one step at a time. Here each client connection is a
// control target with a CPU share; the monitor establishes a QoS target per
// client from its own early latencies, and on violation it upscales the
// victim by downscaling the client currently consuming the most CPU —
// faithful to PARTIES' resource-shifting loop and, like it, blind to
// virtual resources.
type Parties struct {
	mu      sync.Mutex
	clients map[*partiesActivity]struct{}
	mon     *monitor
}

// PartiesInterval is the monitoring/adjustment period.
const PartiesInterval = 20 * time.Millisecond

// qosSlack is the multiplier over a client's calibration latency that
// defines its QoS target.
const qosSlack = 1.3

// shareStep is the fraction of CPU share shifted per adjustment.
const shareStep = 0.2

// minShare floors a client's CPU share multiplier.
const minShare = 0.1

// NewParties creates the PARTIES controller and starts its monitor.
func NewParties() *Parties {
	p := &Parties{clients: make(map[*partiesActivity]struct{})}
	p.mon = startMonitor(PartiesInterval, p.adjust)
	return p
}

// Name implements isolation.Controller.
func (p *Parties) Name() string { return "parties" }

// Shutdown implements isolation.Controller.
func (p *Parties) Shutdown() { p.mon.Stop() }

// ConnStart implements isolation.Controller.
func (p *Parties) ConnStart(name string, kind isolation.Kind) isolation.Activity {
	a := &partiesActivity{share: 1.0}
	a.lat.alpha = 0.3
	p.mu.Lock()
	p.clients[a] = struct{}{}
	p.mu.Unlock()
	return a
}

// adjust is one PARTIES control step: find the worst QoS violator and shift
// CPU share to it from the heaviest CPU consumer.
func (p *Parties) adjust() {
	p.mu.Lock()
	defer p.mu.Unlock()

	var victim *partiesActivity
	worst := 1.0
	for a := range p.clients {
		a.mu.Lock()
		violation := 0.0
		if a.target > 0 && a.lat.init {
			violation = a.lat.get() / a.target
		}
		a.mu.Unlock()
		if violation > worst {
			worst, victim = violation, a
		}
	}
	if victim == nil {
		// No violation: slowly restore everyone toward full share
		// (PARTIES' upscale-when-slack behaviour).
		for a := range p.clients {
			a.mu.Lock()
			if a.share < 1.0 {
				a.share += shareStep / 2
				if a.share > 1.0 {
					a.share = 1.0
				}
			}
			a.mu.Unlock()
		}
		return
	}
	// Shift share from the heaviest CPU consumer (other than the victim).
	var noisy *partiesActivity
	var maxCPU time.Duration
	for a := range p.clients {
		if a == victim {
			continue
		}
		a.mu.Lock()
		cpu := a.cpuWindow
		a.cpuWindow = 0
		a.mu.Unlock()
		if cpu > maxCPU {
			maxCPU, noisy = cpu, a
		}
	}
	if noisy == nil {
		return
	}
	noisy.mu.Lock()
	noisy.share -= shareStep
	if noisy.share < minShare {
		noisy.share = minShare
	}
	noisy.mu.Unlock()
	victim.mu.Lock()
	victim.share += shareStep
	if victim.share > 1.0 {
		victim.share = 1.0
	}
	victim.mu.Unlock()
}

// partiesActivity is one client-connection control target.
type partiesActivity struct {
	mu        sync.Mutex
	share     float64 // CPU share multiplier in (0,1]
	target    float64 // QoS target latency (ns), from calibration
	calCount  int
	calSum    time.Duration
	lat       ewma // observed latency (ns)
	cpuWindow time.Duration
}

// calibration request count before the QoS target locks in.
const partiesCalibration = 20

func (a *partiesActivity) Begin(string) {}

func (a *partiesActivity) End(latency time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.calCount < partiesCalibration {
		a.calCount++
		a.calSum += latency
		if a.calCount == partiesCalibration {
			a.target = float64(a.calSum/partiesCalibration) * qosSlack
		}
		return
	}
	a.lat.add(float64(latency))
}

func (a *partiesActivity) Event(core.ResourceKey, core.EventType) {}
func (a *partiesActivity) Gate() time.Duration                    { return 0 }
func (a *partiesActivity) Close()                                 {}
func (a *partiesActivity) IO(d time.Duration)                     { exec.IOWait(d) }

// Work runs CPU work stretched by the client's current share: a share of
// 0.5 makes CPU work take twice as long, modeling reduced core/bandwidth
// allocation. The stretch applies even while the activity holds virtual
// resources — PARTIES cannot know.
func (a *partiesActivity) Work(d time.Duration) {
	a.mu.Lock()
	share := a.share
	cpu := d
	a.cpuWindow += cpu
	a.mu.Unlock()
	exec.Work(d)
	if share < 1.0 {
		// The remainder of the time slice is lost to other services.
		exec.SleepPrecise(time.Duration(float64(d) * (1/share - 1)))
	}
}
