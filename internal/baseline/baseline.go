// Package baseline implements the four state-of-the-art comparison systems
// of Section 6.3 as isolation.Controller policies over the simulated
// applications:
//
//   - cgroup: even CPU-quota partitioning across workload groups
//     (Linux control groups driven by the paper's classification script).
//   - PARTIES: per-client QoS monitoring with incremental resource
//     (CPU-share) shifting upon violations.
//   - Retro: per-workflow resource usage tracing (CPU + lock hold time)
//     with BFAIR throttling of the heaviest workflows.
//   - DARC: request-type profiling with reserved capacity for short
//     requests.
//
// Each reproduces the control policy of the original system; none of them
// understands application virtual resources, which is exactly the gap the
// paper demonstrates (they throttle hardware resources, so when the victim
// is waiting for a virtual resource held by the noisy activity, throttling
// the noisy activity's CPU makes the victim wait longer).
package baseline

import (
	"sync"
	"time"

	"pbox/internal/exec"
)

// tokenBucket enforces a CPU-time rate: Consume(d) debits d of CPU time and
// returns how long the caller must sleep to stay within rate.
type tokenBucket struct {
	mu       sync.Mutex
	rate     float64 // CPU-ns earned per wall-ns
	capacity int64   // max accumulated CPU-ns
	tokens   int64
	last     int64
}

func newTokenBucket(rate float64, burst time.Duration) *tokenBucket {
	return &tokenBucket{
		rate:     rate,
		capacity: int64(burst),
		tokens:   int64(burst),
		last:     exec.Now(),
	}
}

// consume debits d and returns the required sleep (0 if within budget).
func (b *tokenBucket) consume(d time.Duration) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := exec.Now()
	b.tokens += int64(float64(now-b.last) * b.rate)
	if b.tokens > b.capacity {
		b.tokens = b.capacity
	}
	b.last = now
	b.tokens -= int64(d)
	if b.tokens >= 0 {
		return 0
	}
	// Sleep until the deficit is earned back.
	return time.Duration(float64(-b.tokens) / b.rate)
}

// setRate changes the refill rate.
func (b *tokenBucket) setRate(rate float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if rate < 0.01 {
		rate = 0.01
	}
	b.rate = rate
}

// ewma is a simple exponentially weighted moving average.
type ewma struct {
	alpha float64
	value float64
	init  bool
}

func (e *ewma) add(v float64) {
	if !e.init {
		e.value, e.init = v, true
		return
	}
	e.value = e.alpha*v + (1-e.alpha)*e.value
}

func (e *ewma) get() float64 { return e.value }

// monitor runs fn every interval until stopped.
type monitor struct {
	stop chan struct{}
	done chan struct{}
}

func startMonitor(interval time.Duration, fn func()) *monitor {
	m := &monitor{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(m.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				fn()
			}
		}
	}()
	return m
}

func (m *monitor) Stop() {
	close(m.stop)
	<-m.done
}
