package baseline

import (
	"sync"
	"time"

	"pbox/internal/core"
	"pbox/internal/exec"
	"pbox/internal/isolation"
)

// Retro reproduces the Retro methodology as re-implemented by the paper
// (Section 6.3): "we trace each activity's resource usage including lock and
// CPU, calculate the slowdown and load factor, and run Retro's BFAIR policy
// to throttle noisy requests."
//
// Each connection is a workflow. The controller aggregates per-workflow CPU
// time (from Work) and lock hold time (from HOLD/UNHOLD state events — Retro
// traces locks as one of its resources), computes each workflow's load
// share, and BFAIR throttles workflows whose share exceeds fairness by
// delaying their next activities (admission rate limiting). Throttling
// happens at activity boundaries rather than mid-hold, which is why Retro
// fares better than cgroup/PARTIES in the paper — though it still cannot
// target the specific contended virtual resource.
type Retro struct {
	mu    sync.Mutex
	flows map[*retroActivity]struct{}
	mon   *monitor
}

// RetroInterval is the BFAIR control period.
const RetroInterval = 20 * time.Millisecond

// retroFairFactor: a workflow is throttled when its usage exceeds
// fairFactor × the mean usage.
const retroFairFactor = 2.0

// retroMaxDelay bounds the per-activity admission delay.
const retroMaxDelay = 5 * time.Millisecond

// NewRetro creates the Retro controller and starts its BFAIR loop.
func NewRetro() *Retro {
	r := &Retro{flows: make(map[*retroActivity]struct{})}
	r.mon = startMonitor(RetroInterval, r.bfair)
	return r
}

// Name implements isolation.Controller.
func (r *Retro) Name() string { return "retro" }

// Shutdown implements isolation.Controller.
func (r *Retro) Shutdown() { r.mon.Stop() }

// ConnStart implements isolation.Controller.
func (r *Retro) ConnStart(name string, kind isolation.Kind) isolation.Activity {
	a := &retroActivity{}
	r.mu.Lock()
	r.flows[a] = struct{}{}
	r.mu.Unlock()
	return a
}

// bfair is one control round: compute each workflow's resource usage in the
// last window and set admission delays for those far above the mean.
func (r *Retro) bfair() {
	r.mu.Lock()
	defer r.mu.Unlock()
	type usage struct {
		a *retroActivity
		u time.Duration
	}
	var usages []usage
	var total time.Duration
	for a := range r.flows {
		a.mu.Lock()
		u := a.cpuWindow + a.lockWindow
		a.cpuWindow, a.lockWindow = 0, 0
		a.mu.Unlock()
		usages = append(usages, usage{a, u})
		total += u
	}
	if len(usages) == 0 || total == 0 {
		// A quiet window lifts all throttles; leaving stale gates in
		// place would keep penalizing workflows that stopped competing.
		for _, u := range usages {
			u.a.mu.Lock()
			u.a.gateDelay = 0
			u.a.mu.Unlock()
		}
		return
	}
	mean := total / time.Duration(len(usages))
	for _, u := range usages {
		u.a.mu.Lock()
		if mean > 0 && u.u > time.Duration(retroFairFactor*float64(mean)) {
			// Delay proportional to the overshoot.
			over := float64(u.u)/float64(mean) - retroFairFactor
			d := time.Duration(over * float64(time.Millisecond))
			if d > retroMaxDelay {
				d = retroMaxDelay
			}
			u.a.gateDelay = d
		} else {
			u.a.gateDelay = 0
		}
		u.a.mu.Unlock()
	}
}

// retroActivity is one workflow's tracing and throttling state.
type retroActivity struct {
	mu         sync.Mutex
	cpuWindow  time.Duration
	lockWindow time.Duration
	holdStart  map[core.ResourceKey]int64
	gateDelay  time.Duration
}

func (a *retroActivity) Begin(string)      {}
func (a *retroActivity) End(time.Duration) {}
func (a *retroActivity) Close()            {}

// Event traces lock usage: Retro's resource model includes locks, so HOLD
// and UNHOLD bracket per-workflow lock time.
func (a *retroActivity) Event(key core.ResourceKey, ev core.EventType) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch ev {
	case core.Hold:
		if a.holdStart == nil {
			a.holdStart = make(map[core.ResourceKey]int64)
		}
		a.holdStart[key] = exec.Now()
	case core.Unhold:
		if s, ok := a.holdStart[key]; ok {
			a.lockWindow += time.Duration(exec.Now() - s)
			delete(a.holdStart, key)
		}
	}
}

func (a *retroActivity) Work(d time.Duration) {
	a.mu.Lock()
	a.cpuWindow += d
	a.mu.Unlock()
	exec.Work(d)
}

func (a *retroActivity) IO(d time.Duration) { exec.IOWait(d) }

// Gate returns the BFAIR admission delay for the workflow's next activity.
func (a *retroActivity) Gate() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gateDelay
}
