package analyzer

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func analyze(t *testing.T, src string) *Result {
	t.Helper()
	res, err := New(nil).AnalyzeSource("test.go", "package p\n\nimport \"time\"\n\nvar _ = time.Now\n"+src)
	if err != nil {
		t.Fatalf("AnalyzeSource: %v", err)
	}
	return res
}

func TestFindsWaitInLoopWithSharedVar(t *testing.T) {
	res := analyze(t, `
type gate struct{ n, limit int64 }

func (g *gate) enter() {
	for {
		if g.n < g.limit {
			g.n++
			break
		}
		time.Sleep(time.Millisecond)
	}
}
`)
	if len(res.Locations) != 1 {
		t.Fatalf("locations = %d, want 1: %v", len(res.Locations), res.Locations)
	}
	l := res.Locations[0]
	if l.Func != "(*gate).enter" {
		t.Fatalf("func = %q", l.Func)
	}
	if !containsVar(l.SharedVars, "g.n") || !containsVar(l.SharedVars, "g.limit") {
		t.Fatalf("shared vars = %v, want g.n and g.limit", l.SharedVars)
	}
}

func TestSkipsSelfWaitingLoop(t *testing.T) {
	res := analyze(t, `
func periodic() {
	for i := 0; i < 10; i++ {
		time.Sleep(time.Millisecond)
	}
}
`)
	if len(res.Locations) != 0 {
		t.Fatalf("self-waiting loop flagged: %v", res.Locations)
	}
}

func TestSkipsLoopWithoutWait(t *testing.T) {
	res := analyze(t, `
var shared int

func busy() {
	for shared < 10 {
		shared++
	}
}
`)
	if len(res.Locations) != 0 {
		t.Fatalf("non-waiting loop flagged: %v", res.Locations)
	}
}

func TestDetectsWrapperFunctions(t *testing.T) {
	res := analyze(t, `
func backoff() {
	time.Sleep(time.Millisecond)
}

var free int

func take() {
	for free == 0 {
		backoff()
	}
}
`)
	if len(res.Wrappers) != 1 || res.Wrappers[0] != "backoff" {
		t.Fatalf("wrappers = %v, want [backoff]", res.Wrappers)
	}
	if len(res.Locations) != 1 {
		t.Fatalf("locations = %d, want 1 (via wrapper)", len(res.Locations))
	}
	if res.Locations[0].WaitCall != "backoff" {
		t.Fatalf("wait call = %q, want backoff", res.Locations[0].WaitCall)
	}
}

func TestWrapperOfWrapperFixpoint(t *testing.T) {
	res := analyze(t, `
func inner() { time.Sleep(time.Millisecond) }
func middle() { inner() }

var cond bool

func waiter() {
	for !cond {
		middle()
	}
}
`)
	if len(res.Wrappers) != 2 {
		t.Fatalf("wrappers = %v, want inner and middle", res.Wrappers)
	}
	if len(res.Locations) != 1 {
		t.Fatalf("locations = %d, want 1 via middle", len(res.Locations))
	}
}

func TestConditionalWaitIsNotAWrapper(t *testing.T) {
	res := analyze(t, `
func maybeSleep(x bool) {
	if x {
		time.Sleep(time.Millisecond)
	}
}
`)
	if len(res.Wrappers) != 0 {
		t.Fatalf("conditional sleeper classified wrapper: %v", res.Wrappers)
	}
}

func TestPackageLevelSharedVar(t *testing.T) {
	res := analyze(t, `
var ready bool

func wait() {
	for !ready {
		time.Sleep(time.Millisecond)
	}
}
`)
	if len(res.Locations) != 1 {
		t.Fatalf("locations = %d, want 1", len(res.Locations))
	}
	if !containsVar(res.Locations[0].SharedVars, "ready") {
		t.Fatalf("shared vars = %v, want ready", res.Locations[0].SharedVars)
	}
}

func TestBreakInsideNestedIf(t *testing.T) {
	res := analyze(t, `
type s struct{ active, limit int64 }

func (x *s) enter() {
	for {
		if x.active < x.limit {
			if x.active >= 0 {
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
}
`)
	if len(res.Locations) != 1 {
		t.Fatalf("nested-break loop not found: %v", res.Locations)
	}
}

func TestAtomicLoadInCondition(t *testing.T) {
	res := analyze(t, `
type counterT struct{}
func (counterT) Load() int64 { return 0 }
var counter counterT
var limit int64

func wait() {
	for counter.Load() >= limit {
		time.Sleep(time.Millisecond)
	}
}
`)
	if len(res.Locations) != 1 {
		t.Fatalf("atomic-load loop not found: %v", res.Locations)
	}
	vars := res.Locations[0].SharedVars
	if !containsVar(vars, "counter") || !containsVar(vars, "limit") {
		t.Fatalf("shared vars = %v", vars)
	}
}

func TestAnalyzeDirSkipsTests(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.go", `package p
import "time"
var ready bool
func wait() {
	for !ready {
		time.Sleep(time.Millisecond)
	}
}
`)
	write("a_test.go", `package p
import "time"
var tready bool
func twait() {
	for !tready {
		time.Sleep(time.Millisecond)
	}
}
`)
	res, err := New(nil).AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Files != 1 {
		t.Fatalf("files = %d, want 1 (tests skipped)", res.Files)
	}
	if len(res.Locations) != 1 {
		t.Fatalf("locations = %d, want 1", len(res.Locations))
	}
}

func TestAnalyzeDirParseError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte("package\n!!!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil).AnalyzeDir(dir); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestCustomWaitFuncs(t *testing.T) {
	a := New([]string{"mylib.Backoff"})
	res, err := a.AnalyzeSource("x.go", `package p
import "mylib"
var busy bool
func wait() {
	for busy {
		mylib.Backoff()
	}
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Locations) != 1 {
		t.Fatalf("locations = %d, want 1 via custom wait func", len(res.Locations))
	}
}

func TestLocationStringFormat(t *testing.T) {
	l := Location{File: "f.go", Line: 10, Func: "g", WaitCall: "time.Sleep", SharedVars: []string{"x"}}
	s := l.String()
	for _, part := range []string{"f.go:10", "g", "time.Sleep", "x"} {
		if !strings.Contains(s, part) {
			t.Fatalf("String() = %q missing %q", s, part)
		}
	}
}

func containsVar(vars []string, want string) bool {
	for _, v := range vars {
		if v == want {
			return true
		}
	}
	return false
}
