// Package analyzer implements the companion static analyzer of Section 4.5
// (Algorithm 2), retargeted from LLVM IR to Go source: it finds candidate
// program locations where update_pbox state events should be added.
//
// The algorithm follows the paper's heuristic (Section 4.2.2): intra-app
// performance interference usually comes down to the application using
// waiting calls to block a victim task. The analyzer therefore
//
//  1. takes a list of standard waiting functions (time.Sleep and friends);
//  2. identifies application wrappers of those functions by checking that a
//     wait call post-dominates the wrapper's entry (approximated on the Go
//     AST as an unconditional top-level wait call);
//  3. finds every call site of a waiting function or wrapper;
//  4. checks whether the call site is inside a loop whose exit condition
//     depends on variables shared among activities (package-level state,
//     struct fields, atomics);
//  5. reports each such location with the shared variables — the likely
//     virtual resources — so developers can add the four state events.
package analyzer

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DefaultWaitFuncs lists the standard waiting functions for Go code; the
// paper's list (semop, pthread_cond_wait, ...) translated to the Go world.
func DefaultWaitFuncs() []string {
	return []string{
		"time.Sleep",
		"runtime.Gosched",
		"sync.(*Cond).Wait",
		"exec.SleepPrecise",
		"exec.IOWait",
	}
}

// Location is one candidate program point for state-event annotation.
type Location struct {
	File string
	Line int
	// Func is the enclosing function.
	Func string
	// WaitCall is the waiting function (or wrapper) called.
	WaitCall string
	// SharedVars are the shared variables the loop condition depends on —
	// the likely virtual resources.
	SharedVars []string
}

// String renders the location like a compiler diagnostic.
func (l Location) String() string {
	return fmt.Sprintf("%s:%d: in %s: wait via %s, shared vars: %s",
		l.File, l.Line, l.Func, l.WaitCall, strings.Join(l.SharedVars, ", "))
}

// Result is the analyzer output for one package tree.
type Result struct {
	// Locations are the candidate annotation points.
	Locations []Location
	// Wrappers are functions identified as wrappers of waiting functions.
	Wrappers []string
	// InspectedFuncs is the number of function declarations examined.
	InspectedFuncs int
	// Files is the number of parsed source files.
	Files int
}

// Analyzer runs Algorithm 2 over Go source trees.
type Analyzer struct {
	waitFuncs map[string]bool
}

// New creates an analyzer for the given waiting functions (nil selects
// DefaultWaitFuncs).
func New(waitFuncs []string) *Analyzer {
	if waitFuncs == nil {
		waitFuncs = DefaultWaitFuncs()
	}
	m := make(map[string]bool, len(waitFuncs))
	for _, f := range waitFuncs {
		m[f] = true
	}
	return &Analyzer{waitFuncs: m}
}

// AnalyzeDir analyzes every .go file under dir (excluding _test.go files).
func (a *Analyzer) AnalyzeDir(dir string) (*Result, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("analyzer: parse %s: %w", path, err)
		}
		files = append(files, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return a.analyze(fset, files), nil
}

// AnalyzeSource analyzes a single in-memory source file (tests, examples).
func (a *Analyzer) AnalyzeSource(filename, src string) (*Result, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	return a.analyze(fset, []*ast.File{f}), nil
}

// AnalyzeFiles analyzes already-parsed files against fset — the entry point
// used by the pboxlint waitloop pass, so the hand-rolled Algorithm 2
// implementation and the go/analysis-style passes share one loading and
// reporting stack.
func (a *Analyzer) AnalyzeFiles(fset *token.FileSet, files []*ast.File) *Result {
	return a.analyze(fset, files)
}

func (a *Analyzer) analyze(fset *token.FileSet, files []*ast.File) *Result {
	res := &Result{Files: len(files)}

	// Pass 1: collect function declarations and identify wrappers
	// (isWrapper of Algorithm 2). Iterate until no new wrappers appear so
	// wrappers-of-wrappers are found (the paper notes its analyzer missed
	// deep call chains; the fixpoint closes that gap).
	type fn struct {
		decl *ast.FuncDecl
		name string
	}
	var fns []fn
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fns = append(fns, fn{decl: fd, name: funcName(fd)})
		}
	}
	res.InspectedFuncs = len(fns)

	waiting := make(map[string]bool, len(a.waitFuncs))
	for w := range a.waitFuncs {
		waiting[w] = true
	}
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			if waiting[f.name] {
				continue
			}
			if postDominatedByWait(f.decl.Body, waiting) {
				waiting[f.name] = true
				res.Wrappers = append(res.Wrappers, f.name)
				changed = true
			}
		}
	}
	sort.Strings(res.Wrappers)

	// Pass 2: find call sites of waiting functions inside loops whose
	// conditions use shared variables.
	for _, f := range fns {
		locals := collectLocals(f.decl)
		ast.Inspect(f.decl.Body, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			call, callee := firstWaitCall(loop.Body, waiting)
			if call == nil {
				return true
			}
			shared := sharedVarsOfLoop(loop, locals)
			if len(shared) == 0 {
				return true
			}
			pos := fset.Position(call.Pos())
			res.Locations = append(res.Locations, Location{
				File:       pos.Filename,
				Line:       pos.Line,
				Func:       f.name,
				WaitCall:   callee,
				SharedVars: shared,
			})
			return true
		})
	}
	sort.Slice(res.Locations, func(i, j int) bool {
		if res.Locations[i].File != res.Locations[j].File {
			return res.Locations[i].File < res.Locations[j].File
		}
		return res.Locations[i].Line < res.Locations[j].Line
	})
	return res
}

// funcName renders a declaration name as Recv.Method or Func.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		return fmt.Sprintf("(%s).%s", typeName(fd.Recv.List[0].Type), fd.Name.Name)
	}
	return fd.Name.Name
}

func typeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return typeName(t.X)
	case *ast.IndexListExpr:
		return typeName(t.X)
	default:
		return "?"
	}
}

// calleeName renders a call target as pkg.Func or (T).Method-ish text.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return "." + f.Sel.Name
	default:
		return ""
	}
}

// matches reports whether a callee name refers to a waiting function. Method
// wrappers are matched by their bare method name suffix so that
// "(*resource).sleep" matches a call "r.sleep()".
func matches(waiting map[string]bool, callee string) (string, bool) {
	if callee == "" {
		return "", false
	}
	if waiting[callee] {
		return callee, true
	}
	// r.sleep() — compare the method part against method-style entries.
	if i := strings.LastIndex(callee, "."); i >= 0 {
		suffix := callee[i+1:]
		for w := range waiting {
			if j := strings.LastIndex(w, "."); j >= 0 && w[j+1:] == suffix && strings.Contains(w, ")") {
				return w, true
			}
		}
	}
	return "", false
}

// postDominatedByWait approximates the paper's post-dominator check: the
// function body contains a wait call at its top statement level (executed on
// every path that reaches the function end without early return guards).
func postDominatedByWait(body *ast.BlockStmt, waiting map[string]bool) bool {
	for _, stmt := range body.List {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if _, ok := matches(waiting, calleeName(call)); ok {
			return true
		}
	}
	return false
}

// firstWaitCall finds the first call to a waiting function (or wrapper)
// anywhere in the loop body.
func firstWaitCall(body *ast.BlockStmt, waiting map[string]bool) (*ast.CallExpr, string) {
	var found *ast.CallExpr
	var name string
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if w, ok := matches(waiting, calleeName(call)); ok {
			found, name = call, w
			return false
		}
		return true
	})
	return found, name
}

// sharedVarsOfLoop collects shared variables from the loop's exit
// conditions: the for-condition itself, plus conditions of if-statements in
// the loop body that lead to break or return (the common `for { if ok {
// break }; sleep() }` shape of Figure 9).
func sharedVarsOfLoop(loop *ast.ForStmt, locals map[string]bool) []string {
	vars := map[string]bool{}
	if loop.Cond != nil {
		collectShared(loop.Cond, locals, vars)
	}
	for _, stmt := range loop.Body.List {
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok || !exits(ifs.Body) {
			continue
		}
		collectShared(ifs.Cond, locals, vars)
	}
	out := make([]string, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// exits reports whether the block (or a nested block, excluding inner
// loops) breaks out of the loop or returns.
func exits(b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		if found {
			return false
		}
		switch st := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return false // a break inside an inner loop exits that loop
		case *ast.BranchStmt:
			if st.Tok == token.BREAK && st.Label == nil {
				found = true
			}
		case *ast.ReturnStmt:
			found = true
		}
		return !found
	})
	return found
}

// collectShared gathers expressions in cond that reference shared state:
// selector expressions (struct fields, package vars) and calls on them
// (atomic Load, length checks on shared containers).
func collectShared(cond ast.Expr, locals map[string]bool, out map[string]bool) {
	builtins := map[string]bool{
		"true": true, "false": true, "nil": true,
		"len": true, "cap": true, "min": true, "max": true,
	}
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			// A field access on anything — receiver, package, shared
			// object — counts as shared state; the paper's analyzer
			// over-approximates the same way. The selector's Sel is
			// never visited on its own, so method names don't leak in.
			if id, ok := x.X.(*ast.Ident); ok {
				out[id.Name+"."+x.Sel.Name] = true
				return
			}
			walk(x.X)
		case *ast.CallExpr:
			// A call in the condition: atomic loads, length helpers.
			// The callee's base expression carries the shared state.
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				walk(sel.X)
			}
			for _, arg := range x.Args {
				walk(arg)
			}
		case *ast.Ident:
			if !locals[x.Name] && !builtins[x.Name] {
				out[x.Name] = true
			}
		case *ast.BinaryExpr:
			walk(x.X)
			walk(x.Y)
		case *ast.UnaryExpr:
			walk(x.X)
		case *ast.ParenExpr:
			walk(x.X)
		case *ast.IndexExpr:
			walk(x.X)
			walk(x.Index)
		}
	}
	walk(cond)
}

// collectLocals gathers names declared within the function: parameters,
// receivers, and := / var declarations.
func collectLocals(fd *ast.FuncDecl) map[string]bool {
	locals := map[string]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				locals[n.Name] = true
			}
		}
	}
	if fd.Recv != nil {
		addFields(fd.Recv)
	}
	if fd.Type != nil {
		addFields(fd.Type.Params)
		addFields(fd.Type.Results)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				for _, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						locals[id.Name] = true
					}
				}
			}
		case *ast.GenDecl:
			if s.Tok == token.VAR {
				for _, spec := range s.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, n := range vs.Names {
							locals[n.Name] = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok {
					locals[id.Name] = true
				}
			}
		}
		return true
	})
	return locals
}
