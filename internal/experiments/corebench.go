package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pbox/internal/core"
)

// Core-hot-path throughput benchmark: how many Update events per second the
// manager sustains at 1, 4, and NumCPU goroutines, on disjoint versus
// contended resource keys, for three ingestion disciplines. The "global"
// variant routes every Update through one external mutex — the serialization
// discipline the manager had before the sharding refactor — so
// BENCH_core.json carries its own before/after comparison and later PRs can
// spot hot-path regressions without reconstructing the old code. The
// "sharded" variant is direct Manager.Update (Tier B on every event); the
// "fastpath" variant drives the same events through per-goroutine Workers,
// so uncontended events take the Tier A spool (DESIGN.md §10). On the
// contended scenario the fastpath rows measure graceful degradation: the
// shared key's slot goes sticky-contended immediately and every event falls
// through to Tier B plus a slot check.

// CoreBenchRow is one (scenario, variant, goroutine-count) measurement.
type CoreBenchRow struct {
	// Scenario is "disjoint" (per-goroutine resources; the scaling case),
	// "contended" (every goroutine on one resource; the striping worst
	// case), or "reader" (disjoint fastpath writers with a concurrent
	// status poller; the observability-interference case).
	Scenario string `json:"scenario"`
	// Variant is "sharded" (direct Manager.Update), "global" (every Update
	// wrapped in one process-wide mutex, emulating the pre-shard manager),
	// or "fastpath" (Worker.Update with the event spool enabled). On the
	// reader scenario it names the poller: "nopoll" (none), "poll1"/
	// "poll100" (StatusView at 1/100 Hz — the epoch snapshot path), or
	// "precise100" (flush-on-read Status() at 100 Hz — the stop-the-world
	// path kept for comparison).
	Variant    string  `json:"variant"`
	Goroutines int     `json:"goroutines"`
	Ops        int64   `json:"ops"`
	NsPerOp    float64 `json:"ns_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`
}

// CoreBenchFile is the BENCH_core.json document. Interpret the speedups
// against NumCPU: on a single-core host the disjoint scenario can only show
// the serialization savings (no parallel execution exists to unlock), while
// on a multi-core host it additionally shows the cores the old global lock
// was wasting.
type CoreBenchFile struct {
	GOMAXPROCS      int            `json:"gomaxprocs"`
	NumCPU          int            `json:"numcpu"`
	Shards          int            `json:"shards"`
	OpsPerGoroutine int            `json:"ops_per_goroutine"`
	Rows            []CoreBenchRow `json:"rows"`
	// DisjointSpeedup maps "<goroutines>" to sharded ops/sec ÷ global
	// ops/sec on the disjoint scenario — the headline scaling number of the
	// sharding refactor.
	DisjointSpeedup map[string]float64 `json:"disjoint_speedup"`
	// FastpathSpeedup maps "<goroutines>" to fastpath ops/sec ÷ sharded
	// ops/sec on the disjoint scenario — the headline number of the two-tier
	// spool (acceptance: ≥ 1.5× at 4 goroutines; ≥ 1.2× on a single-CPU
	// host, where batching saves serialization but no parallelism exists).
	FastpathSpeedup map[string]float64 `json:"fastpath_speedup"`
	// SingleGoroutineOverhead is sharded ns/op ÷ global ns/op at one
	// goroutine on the disjoint scenario: the price of the finer locking
	// when there is nothing to parallelize (acceptance bound: ≤ 1.10).
	SingleGoroutineOverhead float64 `json:"single_goroutine_overhead"`
	// ReaderInterference maps reader-scenario poller variants to their
	// ns/op ratio against the unpolled run: how much a concurrent status
	// reader slows disjoint fast-path writers. The epoch snapshot path's
	// acceptance bound is < 1.10 at 100 Hz ("poll100"); "precise100"
	// documents the flush-on-read gap the snapshot path closes.
	ReaderInterference map[string]float64 `json:"reader_interference,omitempty"`
}

// coreBenchGoroutineCounts returns the goroutine counts to measure:
// 1, 4, NumCPU — deduplicated and ascending.
func coreBenchGoroutineCounts() []int {
	counts := []int{1, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	var out []int
	for _, c := range counts {
		if c > 0 && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// runCoreBench measures one row: g goroutines, each running opsPer Update
// events (hold/unhold cycles) against its pBox. Penalties are swallowed —
// the benchmark measures the manager, not the clock.
func runCoreBench(scenario, variant string, g, opsPer int) CoreBenchRow {
	m := core.NewManager(core.Options{Sleep: func(time.Duration) {}})
	var globalMu sync.Mutex
	update := m.Update
	if variant == "global" {
		update = func(p *core.PBox, key core.ResourceKey, ev core.EventType) {
			globalMu.Lock()
			m.Update(p, key, ev)
			globalMu.Unlock()
		}
	}

	pboxes := make([]*core.PBox, g)
	keys := make([]core.ResourceKey, g)
	for i := range pboxes {
		p, err := m.Create(core.DefaultRule())
		if err != nil {
			panic(err)
		}
		m.Activate(p)
		pboxes[i] = p
		keys[i] = core.ResourceKey(0x100) // contended: one key for all
		if scenario == "disjoint" {
			keys[i] = core.ResourceKey(0x1000 + i)
		}
	}

	var start, stop sync.WaitGroup
	gate := make(chan struct{})
	start.Add(g)
	stop.Add(g)
	for i := 0; i < g; i++ {
		if variant == "fastpath" {
			w := m.NewWorker()
			if err := w.BindDirect(pboxes[i]); err != nil {
				panic(err)
			}
			go func(w *core.Worker, key core.ResourceKey) {
				defer stop.Done()
				start.Done()
				<-gate
				for n := 0; n < opsPer; n++ {
					w.Update(key, core.Hold)
					w.Update(key, core.Unhold)
				}
				w.Flush()
			}(w, keys[i])
			continue
		}
		go func(p *core.PBox, key core.ResourceKey) {
			defer stop.Done()
			start.Done()
			<-gate
			for n := 0; n < opsPer; n++ {
				update(p, key, core.Hold)
				update(p, key, core.Unhold)
			}
		}(pboxes[i], keys[i])
	}
	start.Wait()
	t0 := time.Now()
	close(gate)
	stop.Wait()
	elapsed := time.Since(t0)

	ops := int64(g) * int64(opsPer) * 2 // two Update events per cycle
	sec := elapsed.Seconds()
	row := CoreBenchRow{
		Scenario:   scenario,
		Variant:    variant,
		Goroutines: g,
		Ops:        ops,
	}
	if sec > 0 {
		row.OpsPerSec = float64(ops) / sec
		row.NsPerOp = float64(elapsed.Nanoseconds()) / float64(ops)
	}
	return row
}

// readerBenchWorkers is the fast-path writer pool of the reader scenario:
// fixed (not NumCPU-scaled) so BENCH_core.json rows compare across hosts,
// and matching the 4-goroutine row of the disjoint grid.
const readerBenchWorkers = 4

// runReaderBench measures reader-induced interference: readerBenchWorkers
// fast-path workers run disjoint Hold/Unhold cycles for dur while one poller
// goroutine reads manager status at the variant's frequency. Unlike the
// op-count rows, the run is duration-based — a 1 Hz poller needs wall-clock
// time to fire at all. Variants: "nopoll" (baseline), "poll1"/"poll100"
// (StatusView, the epoch snapshot), "precise100" (Status, flush-on-read).
func runReaderBench(variant string, dur time.Duration) CoreBenchRow {
	m := core.NewManager(core.Options{Sleep: func(time.Duration) {}})
	g := readerBenchWorkers

	var hz int
	var precise bool
	switch variant {
	case "nopoll":
	case "poll1":
		hz = 1
	case "poll100":
		hz = 100
	case "precise100":
		hz, precise = 100, true
	default:
		panic("unknown reader variant " + variant)
	}

	var (
		start, stop sync.WaitGroup
		gate        = make(chan struct{})
		quit        atomic.Bool
		total       atomic.Int64
	)
	start.Add(g)
	stop.Add(g)
	for i := 0; i < g; i++ {
		p, err := m.Create(core.DefaultRule())
		if err != nil {
			panic(err)
		}
		m.Activate(p)
		w := m.NewWorker()
		if err := w.BindDirect(p); err != nil {
			panic(err)
		}
		go func(w *core.Worker, key core.ResourceKey) {
			defer stop.Done()
			start.Done()
			<-gate
			var n int64
			for !quit.Load() {
				w.Update(key, core.Hold)
				w.Update(key, core.Unhold)
				n += 2
			}
			w.Flush()
			total.Add(n)
		}(w, core.ResourceKey(0x1000+i))
	}

	pollerQuit := make(chan struct{})
	var pollerDone sync.WaitGroup
	if hz > 0 {
		pollerDone.Add(1)
		go func() {
			defer pollerDone.Done()
			tick := time.NewTicker(time.Second / time.Duration(hz))
			defer tick.Stop()
			for {
				select {
				case <-pollerQuit:
					return
				case <-tick.C:
				}
				if precise {
					_ = m.Status()
				} else {
					_ = m.StatusView()
				}
			}
		}()
	}

	start.Wait()
	t0 := time.Now()
	close(gate)
	time.Sleep(dur)
	quit.Store(true)
	stop.Wait()
	elapsed := time.Since(t0)
	close(pollerQuit)
	pollerDone.Wait()

	ops := total.Load()
	row := CoreBenchRow{
		Scenario:   "reader",
		Variant:    variant,
		Goroutines: g,
		Ops:        ops,
	}
	if sec := elapsed.Seconds(); sec > 0 && ops > 0 {
		row.OpsPerSec = float64(ops) / sec
		row.NsPerOp = float64(elapsed.Nanoseconds()) / float64(ops)
	}
	return row
}

// CoreBench runs the full grid and assembles the document. Quick mode cuts
// the per-goroutine op count for smoke tests.
func CoreBench(cfg Config) CoreBenchFile {
	opsPer := 200_000
	if cfg.Quick {
		opsPer = 20_000
	}
	doc := CoreBenchFile{
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		NumCPU:             runtime.NumCPU(),
		Shards:             core.NewManager(core.Options{}).ShardCount(),
		OpsPerGoroutine:    opsPer,
		DisjointSpeedup:    map[string]float64{},
		FastpathSpeedup:    map[string]float64{},
		ReaderInterference: map[string]float64{},
	}
	type cell struct{ global, sharded, fastpath CoreBenchRow }
	disjoint := map[int]*cell{}
	for _, scenario := range []string{"disjoint", "contended"} {
		for _, g := range coreBenchGoroutineCounts() {
			for _, variant := range []string{"global", "sharded", "fastpath"} {
				row := runCoreBench(scenario, variant, g, opsPer)
				doc.Rows = append(doc.Rows, row)
				if scenario == "disjoint" {
					c := disjoint[g]
					if c == nil {
						c = &cell{}
						disjoint[g] = c
					}
					switch variant {
					case "global":
						c.global = row
					case "sharded":
						c.sharded = row
					case "fastpath":
						c.fastpath = row
					}
				}
			}
		}
	}
	for g, c := range disjoint {
		if c.global.OpsPerSec > 0 {
			doc.DisjointSpeedup[fmt.Sprintf("%d", g)] = c.sharded.OpsPerSec / c.global.OpsPerSec
		}
		if c.sharded.OpsPerSec > 0 {
			doc.FastpathSpeedup[fmt.Sprintf("%d", g)] = c.fastpath.OpsPerSec / c.sharded.OpsPerSec
		}
		if g == 1 && c.global.NsPerOp > 0 {
			doc.SingleGoroutineOverhead = c.sharded.NsPerOp / c.global.NsPerOp
		}
	}

	readerDur := time.Second
	if cfg.Quick {
		readerDur = 500 * time.Millisecond
	}
	var unpolled CoreBenchRow
	for _, variant := range []string{"nopoll", "poll1", "poll100", "precise100"} {
		row := runReaderBench(variant, readerDur)
		doc.Rows = append(doc.Rows, row)
		if variant == "nopoll" {
			unpolled = row
		} else if unpolled.NsPerOp > 0 && row.NsPerOp > 0 {
			doc.ReaderInterference[variant] = row.NsPerOp / unpolled.NsPerOp
		}
	}
	return doc
}

// coreBenchRegressionTolerance is how much slower (ns/op) a guarded variant
// may measure against the committed baseline before CompareCoreBench fails —
// generous, because CI machines are noisy and the guard must only catch real
// hot-path regressions, not scheduler jitter. The reader scenario gets a
// wider band: its rows are duration-based (a wall-clock poller needs real
// time to fire), and on a single-CPU host the writers and the poller
// time-slice one core, so run-to-run spread is larger than on the
// op-count rows.
const (
	coreBenchRegressionTolerance       = 1.25
	coreBenchReaderRegressionTolerance = 1.5
)

// CompareCoreBench checks a fresh run against a committed baseline: on the
// disjoint scenario, the "sharded" and "fastpath" variants must not regress
// more than the tolerance in ns/op at any goroutine count present in both
// documents (rows for goroutine counts the two machines don't share — e.g.
// a NumCPU row from a bigger host — are skipped, as are variants the
// baseline predates). Reader-scenario rows are guarded the same way except
// "precise100", which exists to document the flush-on-read gap, not to stay
// fast. Returns an error describing every failing row.
func CompareCoreBench(baseline, current CoreBenchFile) error {
	type rowKey struct {
		scenario, variant string
		g                 int
	}
	base := map[rowKey]CoreBenchRow{}
	for _, r := range baseline.Rows {
		base[rowKey{r.Scenario, r.Variant, r.Goroutines}] = r
	}
	guarded := func(r CoreBenchRow) bool {
		switch r.Scenario {
		case "disjoint":
			return r.Variant == "sharded" || r.Variant == "fastpath"
		case "reader":
			return r.Variant != "precise100"
		}
		return false
	}
	var failures []string
	for _, r := range current.Rows {
		if !guarded(r) {
			continue
		}
		b, ok := base[rowKey{r.Scenario, r.Variant, r.Goroutines}]
		if !ok || b.NsPerOp <= 0 || r.NsPerOp <= 0 {
			continue
		}
		tol := coreBenchRegressionTolerance
		if r.Scenario == "reader" {
			tol = coreBenchReaderRegressionTolerance
		}
		if r.NsPerOp > b.NsPerOp*tol {
			failures = append(failures, fmt.Sprintf(
				"%s/%s @%dg: %.1f ns/op vs baseline %.1f ns/op (%.2fx > %.2fx allowed)",
				r.Scenario, r.Variant, r.Goroutines, r.NsPerOp, b.NsPerOp,
				r.NsPerOp/b.NsPerOp, tol))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("core bench regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// ReadCoreBench loads a committed BENCH_core.json.
func ReadCoreBench(path string) (CoreBenchFile, error) {
	var doc CoreBenchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("parse %s: %w", path, err)
	}
	return doc, nil
}

// WriteCoreBench writes the document at path (write-then-rename, so a
// concurrent reader never sees a torn file).
func WriteCoreBench(path string, doc CoreBenchFile) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
