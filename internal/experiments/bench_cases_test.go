package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestBenchCasesWritesDocument(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	rows := BenchCases(quick, []string{"c5", "c12"})
	if len(rows) != 2 {
		t.Fatalf("BenchCases returned %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.ID == "" || r.App == "" {
			t.Fatalf("row missing identity: %+v", r)
		}
		if r.BaselineP95Ns <= 0 || r.InterfereNs <= 0 || r.PBoxP95Ns <= 0 {
			t.Fatalf("row %s has non-positive p95s: %+v", r.ID, r)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_cases.json")
	if err := WriteBenchCases(path, quick, rows); err != nil {
		t.Fatalf("WriteBenchCases: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	var doc BenchCasesFile
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("BENCH_cases.json is not valid JSON: %v", err)
	}
	if doc.Duration == "" || len(doc.Cases) != 2 {
		t.Fatalf("document = %+v", doc)
	}
	if doc.Cases[0].ID != "c5" || doc.Cases[1].ID != "c12" {
		t.Fatalf("case order = %s, %s", doc.Cases[0].ID, doc.Cases[1].ID)
	}
}
