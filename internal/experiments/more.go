package experiments

import (
	"go/ast"
	"go/parser"
	"go/token"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pbox/internal/analyzer"
	"pbox/internal/apps/minidb"
	"pbox/internal/apps/minikv"
	"pbox/internal/apps/minipg"
	"pbox/internal/apps/miniproxy"
	"pbox/internal/apps/miniweb"
	"pbox/internal/cases"
	"pbox/internal/core"
	"pbox/internal/isolation"
	"pbox/internal/stats"
	"pbox/internal/workload"
)

// ---------------------------------------------------------------------------
// Figures 13 and 14: penalty action internals.

// PenaltyCaseIDs are the eight cases Figures 13 and 14 analyze.
func PenaltyCaseIDs() []string {
	return []string{"c1", "c3", "c4", "c5", "c7", "c8", "c9", "c10"}
}

// PenaltyRow is one case's penalty internals.
type PenaltyRow struct {
	CaseID string
	// Actions is the number of penalty actions taken.
	Actions int
	// ScoreActions and GapActions split actions by adaptive policy.
	ScoreActions, GapActions int
	// ConvergenceSteps is the average steps for penalty lengths to reach
	// a fixed point (Figure 13 bottom).
	ConvergenceSteps float64
	// Penalty length distribution (Figure 14).
	PenaltyMin, PenaltyP50, PenaltyMax time.Duration
	// Level is the measured interference level of the vanilla run, for
	// the Figure 13 correlation discussion.
	Level float64
}

// PenaltyInternals runs the Figure 13/14 cases under pBox and reports the
// action statistics.
func PenaltyInternals(cfg Config, ids []string) []PenaltyRow {
	if ids == nil {
		ids = PenaltyCaseIDs()
	}
	var rows []PenaltyRow
	for _, c := range selectCases(ids) {
		d := cfg.caseDuration(c.ID)
		to := cases.Run(c, cases.RunConfig{Solution: cases.SolutionNone, Interference: false, Duration: d})
		ti := cases.Run(c, cases.RunConfig{Solution: cases.SolutionNone, Interference: true, Duration: d})
		ts := cases.Run(c, cases.RunConfig{Solution: cases.SolutionPBox, Interference: true, Duration: d})
		row := PenaltyRow{
			CaseID:           c.ID,
			Actions:          ts.Actions,
			ScoreActions:     ts.ScoreActions,
			GapActions:       ts.GapActions,
			ConvergenceSteps: ts.ConvergenceSteps,
			Level:            stats.InterferenceLevel(ti.Victim.Mean, to.Victim.Mean),
		}
		if n := len(ts.PenaltyLengths); n > 0 {
			row.PenaltyMin = ts.PenaltyLengths[0]
			row.PenaltyP50 = ts.PenaltyLengths[n/2]
			row.PenaltyMax = ts.PenaltyLengths[n-1]
		}
		rows = append(rows, row)
	}
	return rows
}

// ---------------------------------------------------------------------------
// Table 4: fixed versus adaptive penalties.

// Table4CaseIDs are the nine cases of Table 4.
func Table4CaseIDs() []string {
	return []string{"c1", "c3", "c4", "c5", "c6", "c7", "c8", "c9", "c10"}
}

// Table4Row compares victim latency under two fixed penalty lengths and the
// adaptive design. The paper uses 10ms and 100ms on its timescale; scaled to
// this reproduction's µs–ms world these become 1ms and 10ms.
type Table4Row struct {
	CaseID                  string
	FixedShort, FixedLong   time.Duration // the two fixed lengths used
	LatShort, LatLong       time.Duration // victim mean under each
	LatAdaptive             time.Duration
	AdaptiveBeatsFixedShort bool
	AdaptiveBeatsFixedLong  bool
	// Noisy-side impact: the noisy activity's mean latency under each
	// mode. A long fixed penalty can look good on the victim column while
	// quietly demolishing the noisy activity; the paper bounds the noisy
	// impact at +34.1% on average (Section 6.2).
	NoisyShort, NoisyLong, NoisyAdaptive time.Duration
}

// Table4 runs the fixed-versus-adaptive comparison.
func Table4(cfg Config, ids []string) []Table4Row {
	if ids == nil {
		ids = Table4CaseIDs()
	}
	short, long := 1*time.Millisecond, 10*time.Millisecond
	var rows []Table4Row
	for _, c := range selectCases(ids) {
		d := cfg.caseDuration(c.ID)
		fs := cases.Run(c, cases.RunConfig{Solution: cases.SolutionPBox, Interference: true, Duration: d,
			ManagerOptions: core.Options{FixedPenalty: short}})
		fl := cases.Run(c, cases.RunConfig{Solution: cases.SolutionPBox, Interference: true, Duration: d,
			ManagerOptions: core.Options{FixedPenalty: long}})
		ad := cases.Run(c, cases.RunConfig{Solution: cases.SolutionPBox, Interference: true, Duration: d})
		rows = append(rows, Table4Row{
			CaseID:                  c.ID,
			FixedShort:              short,
			FixedLong:               long,
			LatShort:                fs.Victim.Mean,
			LatLong:                 fl.Victim.Mean,
			LatAdaptive:             ad.Victim.Mean,
			AdaptiveBeatsFixedShort: ad.Victim.Mean < fs.Victim.Mean,
			AdaptiveBeatsFixedLong:  ad.Victim.Mean < fl.Victim.Mean,
			NoisyShort:              fs.Noisy.Mean,
			NoisyLong:               fl.Noisy.Mean,
			NoisyAdaptive:           ad.Noisy.Mean,
		})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Figure 15: isolation rule sensitivity.

// Fig15CaseIDs are the ten cases of Figure 15.
func Fig15CaseIDs() []string {
	return []string{"c1", "c2", "c3", "c4", "c5", "c7", "c8", "c9", "c10", "c12"}
}

// Fig15Levels are the evaluated isolation rules (25%..125%).
func Fig15Levels() []float64 { return []float64{0.25, 0.50, 0.75, 1.00, 1.25} }

// RuleSensitivityRow is one case's reduction ratio per isolation rule.
type RuleSensitivityRow struct {
	CaseID     string
	Levels     []float64
	Reductions []float64
}

// RuleSensitivity runs the Figure 15 sweep.
func RuleSensitivity(cfg Config, ids []string, levels []float64) []RuleSensitivityRow {
	if ids == nil {
		ids = Fig15CaseIDs()
	}
	if levels == nil {
		levels = Fig15Levels()
	}
	var rows []RuleSensitivityRow
	for _, c := range selectCases(ids) {
		d := cfg.caseDuration(c.ID)
		to := cases.Run(c, cases.RunConfig{Solution: cases.SolutionNone, Interference: false, Duration: d})
		ti := cases.Run(c, cases.RunConfig{Solution: cases.SolutionNone, Interference: true, Duration: d})
		row := RuleSensitivityRow{CaseID: c.ID, Levels: levels}
		for _, lvl := range levels {
			ts := cases.Run(c, cases.RunConfig{
				Solution: cases.SolutionPBox, Interference: true, Duration: d,
				Rule: core.IsolationRule{Type: core.Relative, Level: lvl, Metric: core.MetricAverage},
			})
			row.Reductions = append(row.Reductions,
				stats.ReductionRatio(ti.Victim.Mean, to.Victim.Mean, ts.Victim.Mean))
		}
		rows = append(rows, row)
	}
	return rows
}

// ---------------------------------------------------------------------------
// Figure 16: overhead under normal workloads.

// OverheadSetting identifies one bar of Figure 16.
type OverheadSetting struct {
	App     string
	Write   bool // read-intensive (r*) or write-intensive (w*)
	Clients int
}

// OverheadRow is the measured overhead for one setting.
type OverheadRow struct {
	Setting      OverheadSetting
	Vanilla      stats.Summary
	WithPBox     stats.Summary
	OverheadMean float64 // (pbox − vanilla)/vanilla on means
	OverheadP99  float64 // Section 6.6's 99th percentile variant
}

// OverheadApps lists the five applications of Figure 16.
func OverheadApps() []string {
	return []string{"mysql", "postgresql", "apache", "varnish", "memcached"}
}

// OverheadClientCounts are the r1..r64 / w1..w64 settings.
func OverheadClientCounts() []int { return []int{1, 16, 32, 64} }

// Overhead runs Figure 16: normal (non-interfering) workloads per app with
// and without pBox, across client counts.
func Overhead(cfg Config, apps []string, counts []int) []OverheadRow {
	if apps == nil {
		apps = OverheadApps()
	}
	if counts == nil {
		counts = OverheadClientCounts()
		if cfg.Quick {
			counts = []int{1, 8}
		}
	}
	var rows []OverheadRow
	for _, app := range apps {
		for _, write := range []bool{false, true} {
			if write && (app == "apache" || app == "varnish") {
				// The paper runs Apache and Varnish under the read
				// settings only (r1..r64).
				continue
			}
			for _, n := range counts {
				set := OverheadSetting{App: app, Write: write, Clients: n}
				van := overheadRun(app, n, write, isolation.NewNull(), cfg.duration())
				mgr := core.NewManager(core.Options{})
				var ctrl isolation.Controller
				if app == "varnish" || app == "memcached" {
					ctrl = isolation.NewPBoxShared(mgr, core.DefaultRule())
				} else {
					ctrl = isolation.NewPBox(mgr, core.DefaultRule())
				}
				pb := overheadRun(app, n, write, ctrl, cfg.duration())
				row := OverheadRow{Setting: set, Vanilla: van, WithPBox: pb}
				if van.Mean > 0 {
					row.OverheadMean = float64(pb.Mean-van.Mean) / float64(van.Mean)
				}
				if van.P99 > 0 {
					row.OverheadP99 = float64(pb.P99-van.P99) / float64(van.P99)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows
}

// overheadRun drives one app's normal workload: n closed-loop clients with
// a 1ms think time, no noisy component.
func overheadRun(app string, n int, write bool, ctrl isolation.Controller, d time.Duration) stats.Summary {
	defer ctrl.Shutdown()
	rec := stats.NewRecorder(8192)
	// Normal workloads are light: enough think time that clients do not
	// contend meaningfully (the paper "assumes" them to not introduce
	// significant interference).
	think := 2 * time.Millisecond
	var specs []workload.Spec

	switch app {
	case "mysql":
		db := minidb.New(minidb.DefaultConfig())
		for i := 0; i < 8; i++ {
			db.CreateTable(tableName(i), 200, 10, false)
		}
		for i := 0; i < n; i++ {
			c := db.Connect(ctrl, "oltp")
			defer c.Close()
			cc, idx := c, i
			specs = append(specs, workload.Spec{
				Name: "oltp", Think: think, Seed: int64(idx + 1), Recorder: rec,
				Op: func(r *rand.Rand) {
					t := tableName(r.Intn(8))
					if write {
						cc.Write(t, r.Intn(200), 1)
					} else {
						cc.Read(t, r.Intn(200), 2)
					}
				},
			})
		}
	case "postgresql":
		db := minipg.New(minipg.DefaultConfig())
		for i := 0; i < 8; i++ {
			db.CreateTable(tableName(i), 200)
		}
		for i := 0; i < n; i++ {
			b := db.Connect(ctrl, "oltp")
			defer b.Close()
			bb, idx := b, i
			specs = append(specs, workload.Spec{
				Name: "oltp", Think: think, Seed: int64(idx + 1), Recorder: rec,
				Op: func(r *rand.Rand) {
					t := tableName(r.Intn(8))
					if write {
						bb.Update(t, 1)
					} else {
						bb.Read(t, 2)
					}
				},
			})
		}
	case "apache":
		srv := miniweb.New(miniweb.DefaultConfig())
		for i := 0; i < n; i++ {
			c := srv.Connect(ctrl, "web")
			defer c.Close()
			cc, idx := c, i
			specs = append(specs, workload.Spec{
				Name: "web", Think: think, Seed: int64(idx + 1), Recorder: rec,
				Op: func(r *rand.Rand) {
					cc.Static(80 * time.Microsecond)
				},
			})
		}
	case "varnish":
		p := miniproxy.New(miniproxy.Config{
			Workers: 8, AcceptWork: 5 * time.Microsecond, SumStatWork: 2 * time.Microsecond,
		})
		defer p.Stop()
		for i := 0; i < n; i++ {
			c := p.Connect(ctrl, "proxy")
			defer c.Close()
			cc, idx := c, i
			specs = append(specs, workload.Spec{
				Name: "proxy", Think: think, Seed: int64(idx + 1), Recorder: rec,
				Op: func(r *rand.Rand) {
					cc.Small(50 * time.Microsecond)
				},
			})
		}
	case "memcached":
		kv := minikv.New(minikv.DefaultConfig())
		warm := kv.Connect(ctrl, "warm")
		for k := 0; k < 512; k++ {
			warm.Set(k)
		}
		warm.Close()
		keys := workload.SkewedKeys(512, 3)
		for i := 0; i < n; i++ {
			c := kv.Connect(ctrl, "kv")
			defer c.Close()
			cc, idx := c, i
			specs = append(specs, workload.Spec{
				Name: "kv", Think: think, Seed: int64(idx + 1), Recorder: rec,
				Op: func(r *rand.Rand) {
					if write {
						cc.Set(keys(r))
					} else {
						cc.GetLatency(keys(r))
					}
				},
			})
		}
	default:
		panic("experiments: unknown app " + app)
	}
	workload.Run(d, specs)
	return rec.Summary()
}

func tableName(i int) string {
	return "t" + string(rune('a'+i))
}

// ---------------------------------------------------------------------------
// Table 5: usage effort and analyzer detection.

// Table5Row reports one package's instrumentation effort.
type Table5Row struct {
	Package        string
	InspectedFuncs int
	// ManualEvents is the number of state-event emission sites written by
	// hand in the package (calls emitting PREPARE/ENTER/HOLD/UNHOLD).
	ManualEvents int
	// Detected is the number of wait-loop locations the static analyzer
	// found in the package.
	Detected int
	// SLOC is the package's source line count (the substrates are whole
	// programs here, so this is total size, not a diff).
	SLOC int
}

// Table5 runs the analyzer over the instrumented packages and counts manual
// annotation sites. root is the repository root.
func Table5(root string) ([]Table5Row, error) {
	pkgs := []string{
		"internal/vres",
		"internal/apps/minidb",
		"internal/apps/minipg",
		"internal/apps/miniweb",
		"internal/apps/miniproxy",
		"internal/apps/minikv",
	}
	a := analyzer.New(nil)
	var rows []Table5Row
	for _, pkg := range pkgs {
		dir := filepath.Join(root, pkg)
		res, err := a.AnalyzeDir(dir)
		if err != nil {
			return nil, err
		}
		manual, sloc, err := countManualEvents(dir)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table5Row{
			Package:        pkg,
			InspectedFuncs: res.InspectedFuncs,
			ManualEvents:   manual,
			Detected:       len(res.Locations),
			SLOC:           sloc,
		})
	}
	return rows, nil
}

// countManualEvents counts call sites that emit state events: calls named
// "event" or "Event", and references to the core event constants.
func countManualEvents(dir string) (events, sloc int, err error) {
	fset := token.NewFileSet()
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		sloc += strings.Count(string(src), "\n")
		f, perr := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
		if perr != nil {
			return perr
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "event" || sel.Sel.Name == "Event" {
					events++
				}
			}
			return true
		})
		return nil
	})
	return events, sloc, err
}

// ---------------------------------------------------------------------------
// Section 6.8: mistake tolerance.

// MistakeRow reports one trial set of the mistake-tolerance experiment.
type MistakeRow struct {
	CaseID string
	// CorrectReduction is the reduction ratio with all events delivered.
	CorrectReduction float64
	// DroppedReductions are the reduction ratios across trials with 10% of
	// (resource, event) update sites removed at random.
	DroppedReductions []float64
	// AvgDroppedReduction averages the trials.
	AvgDroppedReduction float64
	// PositiveTrials counts trials that still mitigated.
	PositiveTrials int
}

// MistakeTolerance reruns the MySQL cases with 10% of update_pbox call
// sites randomly removed, repeated trials times (the paper repeats five
// times).
func MistakeTolerance(cfg Config, ids []string, trials int) []MistakeRow {
	if ids == nil {
		ids = []string{"c1", "c2", "c3", "c4", "c5"}
	}
	if trials <= 0 {
		trials = 5
	}
	var rows []MistakeRow
	for _, c := range selectCases(ids) {
		d := cfg.caseDuration(c.ID)
		to := cases.Run(c, cases.RunConfig{Solution: cases.SolutionNone, Interference: false, Duration: d})
		ti := cases.Run(c, cases.RunConfig{Solution: cases.SolutionNone, Interference: true, Duration: d})
		correct := cases.Run(c, cases.RunConfig{Solution: cases.SolutionPBox, Interference: true, Duration: d})
		row := MistakeRow{
			CaseID:           c.ID,
			CorrectReduction: stats.ReductionRatio(ti.Victim.Mean, to.Victim.Mean, correct.Victim.Mean),
		}
		for trial := 0; trial < trials; trial++ {
			seed := int64(trial + 1)
			filter := dropFilter(seed, 0.10)
			ts := cases.Run(c, cases.RunConfig{
				Solution: cases.SolutionPBox, Interference: true, Duration: d,
				ManagerOptions: core.Options{EventFilter: filter},
			})
			r := stats.ReductionRatio(ti.Victim.Mean, to.Victim.Mean, ts.Victim.Mean)
			row.DroppedReductions = append(row.DroppedReductions, r)
			if r > 0 {
				row.PositiveTrials++
			}
		}
		row.AvgDroppedReduction = stats.Mean(row.DroppedReductions)
		rows = append(rows, row)
	}
	return rows
}

// dropFilter removes a fraction of (resource, event-type) update sites
// deterministically per seed — the paper's "randomly remove 10% of the
// update_pbox calls": a removed call site never delivers, as opposed to
// dropping a random sample of dynamic events.
func dropFilter(seed int64, frac float64) func(core.ResourceKey, core.EventType) bool {
	threshold := uint64(frac * float64(^uint64(0)>>1))
	return func(key core.ResourceKey, ev core.EventType) bool {
		h := uint64(key)*2654435761 + uint64(ev)*40503 + uint64(seed)*9176
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		return (h >> 1) >= threshold
	}
}

// ---------------------------------------------------------------------------
// Ablations: isolate the contribution of individual design choices.

// AblationRow compares pBox variants with one mechanism removed or detuned
// on a single case.
type AblationRow struct {
	CaseID  string
	Variant string
	// VictimMean is the victim's mean latency under the variant.
	VictimMean time.Duration
	// Reduction is the interference reduction ratio vs the vanilla runs.
	Reduction float64
	// Actions is the number of penalty actions taken.
	Actions int
}

// Ablations runs a case under pBox variants: the full design, without the
// pBox-level (freeze-time) monitor, with the minimum penalty below the
// applications' wait-loop poll interval, and with detection disabled
// entirely (tracing only — the no-mitigation control).
func Ablations(cfg Config, caseID string) []AblationRow {
	c, ok := cases.ByID(caseID)
	if !ok {
		return nil
	}
	d := cfg.caseDuration(caseID)
	to := cases.Run(c, cases.RunConfig{Solution: cases.SolutionNone, Interference: false, Duration: d})
	ti := cases.Run(c, cases.RunConfig{Solution: cases.SolutionNone, Interference: true, Duration: d})

	variants := []struct {
		name string
		opts core.Options
	}{
		{"full", core.Options{}},
		{"no-pbox-level-monitor", core.Options{DisablePBoxLevel: true}},
		{"min-penalty-50us", core.Options{MinPenalty: 50 * time.Microsecond}},
		{"detection-off", core.Options{DisableDetection: true}},
	}
	var rows []AblationRow
	for _, v := range variants {
		out := cases.Run(c, cases.RunConfig{
			Solution: cases.SolutionPBox, Interference: true, Duration: d,
			ManagerOptions: v.opts,
		})
		rows = append(rows, AblationRow{
			CaseID:     caseID,
			Variant:    v.name,
			VictimMean: out.Victim.Mean,
			Reduction:  stats.ReductionRatio(ti.Victim.Mean, to.Victim.Mean, out.Victim.Mean),
			Actions:    out.Actions,
		})
	}
	return rows
}
