package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"pbox/internal/capture"
	"pbox/internal/cases"
	"pbox/internal/stats"
)

// BenchCase is one case's machine-readable benchmark record: the victim's
// p95 latency interference-free (baseline), under interference with no
// mitigation (interfere), and under pBox — the three numbers behind the
// Figure 12 tail-latency story, in a form CI and offline tooling can diff.
type BenchCase struct {
	ID       string `json:"id"`
	App      string `json:"app"`
	Resource string `json:"resource"`
	// Duration is the measurement length this case actually ran for
	// (per-case variance adjustments and -caseduration both land here).
	Duration string `json:"duration"`

	BaselineP95   string `json:"victim_p95_baseline"`
	InterfereP95  string `json:"victim_p95_interfere"`
	PBoxP95       string `json:"victim_p95_pbox"`
	BaselineP95Ns int64  `json:"victim_p95_baseline_ns"`
	InterfereNs   int64  `json:"victim_p95_interfere_ns"`
	PBoxP95Ns     int64  `json:"victim_p95_pbox_ns"`

	// ReductionP95 is r = (Ti−Ts)/(Ti−To) on p95s: 1 means pBox fully
	// recovered the baseline tail, 0 means no effect, negative means harm.
	ReductionP95 float64 `json:"reduction_p95"`
	// Actions is the number of penalty actions the pBox run took.
	Actions int `json:"actions"`
}

// BenchCasesFile is the BENCH_cases.json document.
type BenchCasesFile struct {
	Duration string      `json:"duration_per_run"`
	Cases    []BenchCase `json:"cases"`
}

// BenchCases measures every selected case three ways (baseline, interfered,
// pBox) and returns the per-case p95 records. A nil ids selects all 16.
func BenchCases(cfg Config, ids []string) []BenchCase {
	var out []BenchCase
	for _, c := range selectCases(ids) {
		d := cfg.caseDuration(c.ID)
		to := cases.Run(c, cases.RunConfig{Solution: cases.SolutionNone, Interference: false, Duration: d})
		ti := cases.Run(c, cases.RunConfig{Solution: cases.SolutionNone, Interference: true, Duration: d})
		ts := cases.Run(c, cases.RunConfig{Solution: cases.SolutionPBox, Interference: true, Duration: d})
		out = append(out, BenchCase{
			ID:            c.ID,
			App:           c.App,
			Resource:      c.Resource,
			Duration:      d.String(),
			BaselineP95:   to.Victim.P95.String(),
			InterfereP95:  ti.Victim.P95.String(),
			PBoxP95:       ts.Victim.P95.String(),
			BaselineP95Ns: int64(to.Victim.P95),
			InterfereNs:   int64(ti.Victim.P95),
			PBoxP95Ns:     int64(ts.Victim.P95),
			ReductionP95:  stats.ReductionRatio(ti.Victim.P95, to.Victim.P95, ts.Victim.P95),
			Actions:       ts.Actions,
		})
	}
	return out
}

// WriteBenchCases writes rows as the BENCH_cases.json document at path
// (write-then-rename, so a concurrent reader never sees a torn file).
func WriteBenchCases(path string, cfg Config, rows []BenchCase) error {
	d := cfg.duration()
	if cfg.CaseDuration > 0 {
		d = cfg.CaseDuration
	}
	doc := BenchCasesFile{
		Duration: d.String(),
		Cases:    rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// CaseTrace describes one recorded case capture log.
type CaseTrace struct {
	CaseID   string `json:"case"`
	Dir      string `json:"dir"`
	Duration string `json:"duration"`
	Records  int    `json:"records"`
	Bytes    int64  `json:"bytes"`
	Dropped  int64  `json:"dropped"`
}

// RecordCases runs each selected case under pBox with interference and a
// capture recorder attached, writing one log directory per case under
// outDir (clobbering a previous recording of the same case). These logs are
// the raw material for `pboxreplay sweep` and the committed regression
// corpus in internal/capture/testdata/corpus.
func RecordCases(cfg Config, ids []string, outDir string) ([]CaseTrace, error) {
	var out []CaseTrace
	for _, c := range selectCases(ids) {
		d := cfg.caseDuration(c.ID)
		dir := filepath.Join(outDir, c.ID)
		if err := os.RemoveAll(dir); err != nil {
			return out, err
		}
		rec, err := capture.NewRecorder(capture.RecorderConfig{Dir: dir})
		if err != nil {
			return out, err
		}
		rc := cases.RunConfig{Solution: cases.SolutionPBox, Interference: true, Duration: d}
		rc.ManagerOptions.Observer = rec
		cases.Run(c, rc)
		if err := rec.Close(); err != nil {
			return out, fmt.Errorf("case %s: recorder: %w", c.ID, err)
		}
		log, err := capture.ReadLog(dir)
		if err != nil {
			return out, fmt.Errorf("case %s: read back: %w", c.ID, err)
		}
		out = append(out, CaseTrace{
			CaseID:   c.ID,
			Dir:      dir,
			Duration: d.String(),
			Records:  log.Info.Records,
			Bytes:    log.Info.Bytes,
			Dropped:  rec.Dropped(),
		})
	}
	return out, nil
}
