package experiments

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pbox/internal/apps/minikv"
	"pbox/internal/core"
	"pbox/internal/isolation"
	"pbox/internal/wire"
	"pbox/internal/workload"
)

// Daemon ingestion benchmark: how many manager events per second pboxd's two
// network front doors sustain on the same host, and what a pBox costs in
// bytes when it is resident versus hibernated. The "text" row drives the
// minikv line protocol with closed-loop clients — one request/response round
// trip per operation, a handful of manager events each — which is the
// ingestion discipline pboxd had before the wire tier. The "wire" row drives
// the batched binary protocol (internal/wire): each client streams frames of
// delta-encoded events through a per-connection Worker (the Tier-A spool fast
// path, the design target for external feeders) and uses ping — a full
// ingestion barrier — as the closed-loop response. Both rows count events at
// the same place, the manager's EventFilter, so the comparison measures the
// protocols, not the counters. WireSpeedup is the headline number of the
// ingestion tier (acceptance: ≥ 5× on the same host); the hibernation figures
// are the memory half of the million-pBox goal (acceptance: ≤ 512 bytes per
// hibernated pBox).

// DaemonBenchRow is one (protocol, connection-count) ingestion measurement.
type DaemonBenchRow struct {
	// Protocol is "text" (minikv line protocol, one round trip per op) or
	// "wire" (batched binary protocol, ping-barriered frames).
	Protocol string `json:"protocol"`
	Conns    int    `json:"conns"`
	// Events is how many state events the manager's EventFilter counted.
	Events       int64   `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// P99IngestNs is the p99 closed-loop ingest latency in nanoseconds:
	// for text, one op round trip; for wire, one batch flush + ping barrier
	// (the events are on the manager's books when the pong arrives).
	P99IngestNs int64 `json:"p99_ingest_ns"`
	// BatchEvents is the events per closed-loop round trip (1 op ≈ a few
	// events for text; the frame batch size for wire) — the context for
	// reading P99IngestNs.
	BatchEvents int `json:"batch_events"`
}

// DaemonBenchFile is the BENCH_daemon.json document.
type DaemonBenchFile struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`
	Conns      int `json:"conns"`
	DurationMs int `json:"duration_ms"`
	// Rows holds the text and wire ingestion measurements.
	Rows []DaemonBenchRow `json:"rows"`
	// WireSpeedup is wire events/sec ÷ text events/sec at the same
	// connection count — the headline number of the batched binary
	// ingestion tier (acceptance: ≥ 5).
	WireSpeedup float64 `json:"wire_speedup"`
	// HibernatePBoxes is how many pBoxes the memory sweep registered.
	HibernatePBoxes int `json:"hibernate_pboxes"`
	// ResidentBytesPerPBox and HibernatedBytesPerPBox are HeapAlloc deltas
	// per pBox (runtime.MemStats, after runtime.GC) for pBoxes that each ran
	// one real activity: first frozen-resident, then hibernated
	// (acceptance: hibernated ≤ 512).
	ResidentBytesPerPBox   float64 `json:"resident_bytes_per_pbox"`
	HibernatedBytesPerPBox float64 `json:"hibernated_bytes_per_pbox"`
}

// daemonBenchConns is the closed-loop client pool: fixed (not NumCPU-scaled)
// so BENCH_daemon.json rows compare across hosts.
const daemonBenchConns = 4

// daemonBenchPairs is the wire row's batch size in hold/unhold pairs per
// ping-barriered frame.
const daemonBenchPairs = 1024

// daemonCounting returns manager options for an ingestion row: penalties
// swallowed (the benchmark measures the protocols, not the clock) and every
// event counted at the EventFilter — the one point both protocols cross.
func daemonCounting(events *atomic.Int64) core.Options {
	return core.Options{
		Sleep: func(time.Duration) {},
		EventFilter: func(core.ResourceKey, core.EventType) bool {
			events.Add(1)
			return true
		},
	}
}

// p99 returns the 99th-percentile of the samples (nanoseconds); 0 when empty.
func p99(samples []time.Duration) int64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)*99/100].Nanoseconds()
}

// runDaemonText measures the minikv text protocol: conns closed-loop clients
// alternating get/set over real sockets for dur, events counted at the
// manager.
func runDaemonText(conns int, dur time.Duration) DaemonBenchRow {
	var events atomic.Int64
	mgr := core.NewManager(daemonCounting(&events))
	ctrl := isolation.NewPBox(mgr, core.DefaultRule())
	kv := minikv.New(minikv.DefaultConfig())
	srv := minikv.NewServer(kv, ctrl)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	var (
		quit    atomic.Bool
		wg      sync.WaitGroup
		sampMu  sync.Mutex
		samples []time.Duration
	)
	t0 := time.Now()
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := workload.DialKV(addr, fmt.Sprintf("bench-%d", i))
			if err != nil {
				panic(err)
			}
			defer c.Close()
			local := make([]time.Duration, 0, 1<<16)
			for n := 0; !quit.Load(); n++ {
				key := n % 1024
				s0 := time.Now()
				if n%2 == 0 {
					err = c.Set(key)
				} else {
					_, err = c.Get(key)
				}
				local = append(local, time.Since(s0))
				if err != nil {
					panic(err)
				}
			}
			sampMu.Lock()
			samples = append(samples, local...)
			sampMu.Unlock()
		}(i)
	}
	time.Sleep(dur)
	quit.Store(true)
	wg.Wait()
	elapsed := time.Since(t0)

	row := DaemonBenchRow{Protocol: "text", Conns: conns, Events: events.Load()}
	if sec := elapsed.Seconds(); sec > 0 {
		row.EventsPerSec = float64(row.Events) / sec
	}
	row.P99IngestNs = p99(samples)
	if n := int64(len(samples)); n > 0 {
		row.BatchEvents = int(row.Events / n)
	}
	return row
}

// runDaemonWire measures the batched binary protocol: conns clients each
// streaming daemonBenchPairs hold/unhold pairs per frame against their own
// tenant and resource key (the Tier-A fast path), with a ping barrier closing
// each loop iteration so the latency sample covers decode, admission, and the
// worker flush.
func runDaemonWire(conns int, dur time.Duration) DaemonBenchRow {
	var events atomic.Int64
	mgr := core.NewManager(daemonCounting(&events))
	s := wire.NewServer(mgr, wire.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go s.Serve(ln)
	defer s.Close()
	addr := ln.Addr().String()

	var (
		quit    atomic.Bool
		wg      sync.WaitGroup
		sampMu  sync.Mutex
		samples []time.Duration
	)
	t0 := time.Now()
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := wire.Dial(addr)
			if err != nil {
				panic(err)
			}
			defer c.Close()
			tenant := uint64(i + 1)
			c.Register(tenant, core.DefaultRule(), fmt.Sprintf("bench-%d", i))
			c.Activate(tenant)
			c.Select(tenant)
			key := core.ResourceKey(0x1000 + i)
			local := make([]time.Duration, 0, 1<<12)
			var seq uint64
			for !quit.Load() {
				s0 := time.Now()
				for n := 0; n < daemonBenchPairs; n++ {
					c.Event(key, core.Hold)
					c.Event(key, core.Unhold)
				}
				seq++
				if _, err := c.Ping(seq); err != nil {
					panic(err)
				}
				local = append(local, time.Since(s0))
			}
			sampMu.Lock()
			samples = append(samples, local...)
			sampMu.Unlock()
		}(i)
	}
	time.Sleep(dur)
	quit.Store(true)
	wg.Wait()
	elapsed := time.Since(t0)

	row := DaemonBenchRow{
		Protocol:    "wire",
		Conns:       conns,
		Events:      events.Load(),
		BatchEvents: 2 * daemonBenchPairs,
	}
	if sec := elapsed.Seconds(); sec > 0 {
		row.EventsPerSec = float64(row.Events) / sec
	}
	row.P99IngestNs = p99(samples)
	return row
}

// measureHibernation registers n pBoxes that each run one real activity
// (hold/unhold on a bounded key space, then freeze) and reports the HeapAlloc
// delta per pBox resident and after hibernating all of them. The key space is
// bounded because per-resource shard-side state is charged to resources, not
// tenants — the bound under test is bytes per pBox.
func measureHibernation(n int) (resident, hibernated float64) {
	var clock atomic.Int64
	mgr := core.NewManager(core.Options{
		Sleep: func(time.Duration) {},
		Now:   clock.Load,
	})
	heap := func() int64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.HeapAlloc)
	}
	before := heap()
	pboxes := make([]*core.PBox, n)
	for i := range pboxes {
		p, err := mgr.Create(core.DefaultRule())
		if err != nil {
			panic(err)
		}
		mgr.Activate(p)
		key := core.ResourceKey(1 + i%4096)
		mgr.Update(p, key, core.Hold)
		clock.Add(int64(10 * time.Microsecond))
		mgr.Update(p, key, core.Unhold)
		mgr.Freeze(p)
		pboxes[i] = p
	}
	resident = float64(heap()-before) / float64(n)
	for _, p := range pboxes {
		if err := mgr.Hibernate(p); err != nil {
			panic(err)
		}
	}
	hibernated = float64(heap()-before) / float64(n)
	runtime.KeepAlive(pboxes)
	return resident, hibernated
}

// DaemonBench runs both ingestion rows and the hibernation memory sweep.
// Quick mode cuts the measurement duration and the sweep size for smoke
// tests.
func DaemonBench(cfg Config) DaemonBenchFile {
	dur := 2 * time.Second
	hibN := 100_000
	if cfg.Quick {
		dur = 500 * time.Millisecond
		hibN = 20_000
	}
	doc := DaemonBenchFile{
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		Conns:           daemonBenchConns,
		DurationMs:      int(dur.Milliseconds()),
		HibernatePBoxes: hibN,
	}
	text := runDaemonText(daemonBenchConns, dur)
	wireRow := runDaemonWire(daemonBenchConns, dur)
	doc.Rows = []DaemonBenchRow{text, wireRow}
	if text.EventsPerSec > 0 {
		doc.WireSpeedup = wireRow.EventsPerSec / text.EventsPerSec
	}
	doc.ResidentBytesPerPBox, doc.HibernatedBytesPerPBox = measureHibernation(hibN)
	return doc
}

// Daemon bench acceptance bounds (checked on every fresh run, baseline or
// not): the wire tier must ingest at least daemonBenchMinSpeedup× the text
// protocol's events/sec on the same host, and a hibernated pBox must fit in
// daemonBenchMaxHibernatedBytes bytes.
const (
	daemonBenchMinSpeedup         = 5.0
	daemonBenchMaxHibernatedBytes = 512.0
)

// CheckDaemonBench enforces the fresh-run acceptance bounds on a document.
func CheckDaemonBench(doc DaemonBenchFile) error {
	var failures []string
	if doc.WireSpeedup < daemonBenchMinSpeedup {
		failures = append(failures, fmt.Sprintf(
			"wire speedup %.2fx < %.1fx required", doc.WireSpeedup, daemonBenchMinSpeedup))
	}
	if doc.HibernatedBytesPerPBox > daemonBenchMaxHibernatedBytes {
		failures = append(failures, fmt.Sprintf(
			"hibernated bytes/pBox %.0f > %.0f allowed",
			doc.HibernatedBytesPerPBox, daemonBenchMaxHibernatedBytes))
	}
	if doc.HibernatedBytesPerPBox >= doc.ResidentBytesPerPBox {
		failures = append(failures, fmt.Sprintf(
			"hibernation did not shrink the footprint: resident %.0f, hibernated %.0f",
			doc.ResidentBytesPerPBox, doc.HibernatedBytesPerPBox))
	}
	if len(failures) > 0 {
		return fmt.Errorf("daemon bench acceptance:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// daemonBenchRegressionTolerance is how much slower (events/sec) a protocol
// row may measure against the committed baseline before CompareDaemonBench
// fails. Wide, because both rows cross real sockets on a shared CI host and
// the text row is dominated by round-trip scheduling.
const daemonBenchRegressionTolerance = 1.6

// CompareDaemonBench checks a fresh run against a committed baseline: each
// protocol row present in both documents (matched on protocol and connection
// count) must not regress more than the tolerance in events/sec. The
// acceptance bounds of CheckDaemonBench are enforced separately and always.
func CompareDaemonBench(baseline, current DaemonBenchFile) error {
	type rowKey struct {
		protocol string
		conns    int
	}
	base := map[rowKey]DaemonBenchRow{}
	for _, r := range baseline.Rows {
		base[rowKey{r.Protocol, r.Conns}] = r
	}
	var failures []string
	for _, r := range current.Rows {
		b, ok := base[rowKey{r.Protocol, r.Conns}]
		if !ok || b.EventsPerSec <= 0 || r.EventsPerSec <= 0 {
			continue
		}
		if r.EventsPerSec < b.EventsPerSec/daemonBenchRegressionTolerance {
			failures = append(failures, fmt.Sprintf(
				"%s @%d conns: %.0f events/s vs baseline %.0f events/s (%.2fx slower > %.2fx allowed)",
				r.Protocol, r.Conns, r.EventsPerSec, b.EventsPerSec,
				b.EventsPerSec/r.EventsPerSec, daemonBenchRegressionTolerance))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("daemon bench regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// ReadDaemonBench loads a committed BENCH_daemon.json.
func ReadDaemonBench(path string) (DaemonBenchFile, error) {
	var doc DaemonBenchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("parse %s: %w", path, err)
	}
	return doc, nil
}

// WriteDaemonBench writes the document at path (write-then-rename, so a
// concurrent reader never sees a torn file).
func WriteDaemonBench(path string, doc DaemonBenchFile) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
