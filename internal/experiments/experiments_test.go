package experiments

import (
	"testing"
	"time"

	"pbox/internal/cases"
	"pbox/internal/core"
)

var quick = Config{Duration: 60 * time.Millisecond, Quick: true}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all 16 cases")
	}
	rows := Table3(quick)
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	positive := 0
	for _, r := range rows {
		if r.To <= 0 || r.Ti <= 0 {
			t.Fatalf("case %s has empty measurements: %+v", r.Case.ID, r)
		}
		if r.Level > 0.5 {
			positive++
		}
	}
	if positive < 12 {
		t.Fatalf("only %d/16 cases show interference > 50%%", positive)
	}
}

func TestMitigationSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	rows := Mitigation(quick, []string{"c12"}, []cases.Solution{cases.SolutionPBox})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	sr, ok := rows[0].Solutions[cases.SolutionPBox]
	if !ok {
		t.Fatal("missing pbox result")
	}
	if sr.Mean <= 0 || sr.NormMean <= 0 {
		t.Fatalf("empty solution result: %+v", sr)
	}
}

func TestSummarizeCounts(t *testing.T) {
	rows := []MitigationRow{
		{Solutions: map[cases.Solution]SolutionResult{
			cases.SolutionPBox:   {Reduction: 0.9},
			cases.SolutionCgroup: {Reduction: -0.5},
		}},
		{Solutions: map[cases.Solution]SolutionResult{
			cases.SolutionPBox:   {Reduction: 0.7},
			cases.SolutionCgroup: {Reduction: 0.2},
		}},
	}
	sums := Summarize(rows)
	for _, s := range sums {
		switch s.Solution {
		case cases.SolutionPBox:
			if s.Helped != 2 || s.Worsened != 0 {
				t.Fatalf("pbox summary = %+v", s)
			}
			if s.AvgReduction < 0.79 || s.AvgReduction > 0.81 {
				t.Fatalf("pbox avg = %v", s.AvgReduction)
			}
			if s.MaxReduction != 0.9 {
				t.Fatalf("pbox max = %v", s.MaxReduction)
			}
		case cases.SolutionCgroup:
			if s.Helped != 1 || s.Worsened != 1 {
				t.Fatalf("cgroup summary = %+v", s)
			}
			if s.WorstWorsening != -0.5 {
				t.Fatalf("cgroup worst = %v", s.WorstWorsening)
			}
		}
	}
}

func TestFig10MicroRows(t *testing.T) {
	rows := Fig10Micro(2000)
	wantOps := []string{"create", "release", "activate", "freeze", "bind+unbind(lazy)", "update1", "update2", "getpid", "go-spawn"}
	if len(rows) != len(wantOps) {
		t.Fatalf("rows = %d, want %d", len(rows), len(wantOps))
	}
	byOp := map[string]time.Duration{}
	for _, r := range rows {
		if r.Latency <= 0 {
			t.Fatalf("op %s latency = %v", r.Op, r.Latency)
		}
		byOp[r.Op] = r.Latency
	}
	for _, op := range wantOps {
		if _, ok := byOp[op]; !ok {
			t.Fatalf("missing op %s", op)
		}
	}
	// The paper's qualitative claims: update is getpid-scale (within an
	// order of magnitude), create is the most expensive pBox op.
	if byOp["update1"] > 20*byOp["getpid"]+time.Microsecond {
		t.Fatalf("update1 %v far above getpid %v", byOp["update1"], byOp["getpid"])
	}
}

func TestPenaltyInternalsSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	rows := PenaltyInternals(quick, []string{"c12"})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Actions == 0 {
		t.Fatal("no actions recorded")
	}
	if rows[0].PenaltyMax < rows[0].PenaltyMin {
		t.Fatalf("penalty distribution inverted: %+v", rows[0])
	}
}

func TestTable4Subset(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	rows := Table4(quick, []string{"c12"})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.LatShort <= 0 || r.LatLong <= 0 || r.LatAdaptive <= 0 {
		t.Fatalf("empty latencies: %+v", r)
	}
}

func TestRuleSensitivitySubset(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	rows := RuleSensitivity(quick, []string{"c12"}, []float64{0.25, 1.25})
	if len(rows) != 1 || len(rows[0].Reductions) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestOverheadSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	cfg := Config{Duration: 50 * time.Millisecond}
	rows := Overhead(cfg, []string{"memcached"}, []int{2})
	if len(rows) != 2 { // read + write settings
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Vanilla.Count == 0 || r.WithPBox.Count == 0 {
			t.Fatalf("empty overhead run: %+v", r.Setting)
		}
	}
}

func TestOverheadAppsCoverage(t *testing.T) {
	if len(OverheadApps()) != 5 {
		t.Fatalf("apps = %v", OverheadApps())
	}
	if len(OverheadClientCounts()) != 4 {
		t.Fatalf("counts = %v", OverheadClientCounts())
	}
}

func TestTable5OnRepo(t *testing.T) {
	rows, err := Table5("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 packages", len(rows))
	}
	var vres Table5Row
	for _, r := range rows {
		if r.InspectedFuncs == 0 || r.SLOC == 0 {
			t.Fatalf("empty row: %+v", r)
		}
		if r.Package == "internal/vres" {
			vres = r
		}
	}
	if vres.Detected < 6 {
		t.Fatalf("analyzer found %d vres wait loops, want >= 6", vres.Detected)
	}
	if vres.ManualEvents < 20 {
		t.Fatalf("manual event sites in vres = %d, want >= 20", vres.ManualEvents)
	}
}

func TestDropFilterFraction(t *testing.T) {
	filter := dropFilter(1, 0.10)
	dropped := 0
	const n = 4000
	for key := 1; key <= n/4; key++ {
		for ev := core.Prepare; ev <= core.Unhold; ev++ {
			if !filter(core.ResourceKey(key), ev) {
				dropped++
			}
		}
	}
	frac := float64(dropped) / float64(n)
	if frac < 0.05 || frac > 0.15 {
		t.Fatalf("drop fraction = %v, want ≈0.10", frac)
	}
	// Deterministic per seed.
	f2 := dropFilter(1, 0.10)
	for key := 1; key <= 100; key++ {
		if filter(core.ResourceKey(key), core.Hold) != f2(core.ResourceKey(key), core.Hold) {
			t.Fatal("drop filter not deterministic")
		}
	}
}

func TestMistakeToleranceSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	rows := MistakeTolerance(quick, []string{"c12"}, 2)
	if len(rows) != 1 || len(rows[0].DroppedReductions) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestConfigDurations(t *testing.T) {
	if d := (Config{}).duration(); d != cases.DefaultDuration {
		t.Fatalf("default duration = %v", d)
	}
	if d := (Config{Quick: true}).duration(); d != 150*time.Millisecond {
		t.Fatalf("quick duration = %v", d)
	}
	if d := (Config{Duration: time.Second}).caseDuration("c8"); d != 2*time.Second {
		t.Fatalf("c8 duration = %v, want doubled", d)
	}
	if d := (Config{Duration: time.Second}).caseDuration("c1"); d != time.Second {
		t.Fatalf("c1 duration = %v", d)
	}
}
