// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) from the reproduced cases and substrates. Each
// experiment returns typed rows; cmd/pboxbench renders them as text and
// bench_test.go reports them as benchmark metrics.
package experiments

import (
	"sync"
	"syscall"
	"time"

	"pbox/internal/cases"
	"pbox/internal/core"
	"pbox/internal/stats"
)

// Config scales the experiments.
type Config struct {
	// Duration is the per-run measurement length (default 300ms).
	Duration time.Duration
	// CaseDuration, when set, pins every case's run length exactly —
	// overriding both Duration and the per-case variance adjustments
	// (pboxbench -caseduration). The length used is recorded in
	// BENCH_cases.json so the suspected duration-sensitivity of the c1/c2
	// efficacy gap can be investigated from the committed numbers.
	CaseDuration time.Duration
	// Quick trims case sets and durations for smoke tests.
	Quick bool
}

func (c Config) duration() time.Duration {
	if c.Duration > 0 {
		return c.Duration
	}
	if c.Quick {
		return 150 * time.Millisecond
	}
	return cases.DefaultDuration
}

// caseDuration lengthens runs for cases with high run-to-run variance,
// unless an explicit CaseDuration pins it.
func (c Config) caseDuration(id string) time.Duration {
	if c.CaseDuration > 0 {
		return c.CaseDuration
	}
	d := c.duration()
	if id == "c8" && !c.Quick {
		return 2 * d
	}
	return d
}

// ---------------------------------------------------------------------------
// Table 3: the 16 cases and their measured interference levels.

// Table3Row is one case's identification and measured severity.
type Table3Row struct {
	Case cases.Case
	// To and Ti are the victim's interference-free and interfered mean
	// latencies under vanilla execution.
	To, Ti time.Duration
	// Level is the measured interference level p = Ti/To − 1.
	Level float64
}

// Table3 measures the interference level of every case under vanilla
// execution.
func Table3(cfg Config) []Table3Row {
	var rows []Table3Row
	for _, c := range cases.Catalog() {
		d := cfg.caseDuration(c.ID)
		to := cases.Run(c, cases.RunConfig{Solution: cases.SolutionNone, Interference: false, Duration: d})
		ti := cases.Run(c, cases.RunConfig{Solution: cases.SolutionNone, Interference: true, Duration: d})
		rows = append(rows, Table3Row{
			Case:  c,
			To:    to.Victim.Mean,
			Ti:    ti.Victim.Mean,
			Level: stats.InterferenceLevel(ti.Victim.Mean, to.Victim.Mean),
		})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Figures 11 and 12: mitigation comparison across solutions.

// SolutionResult is one solution's outcome on one case.
type SolutionResult struct {
	Mean, P95 time.Duration
	// NormMean and NormP95 are Ts/Ti, the y-axes of Figures 11 and 12.
	NormMean, NormP95 float64
	// Reduction is r = (Ti−Ts)/(Ti−To) on means.
	Reduction float64
	// ReductionP95 is the tail-latency reduction ratio.
	ReductionP95 float64
	// Actions is the number of pBox penalty actions (pBox runs only).
	Actions int
	// NoisyMean is the noisy activity's mean latency under the solution
	// (Section 6.2 reports the impact on the noisy pBox).
	NoisyMean time.Duration
}

// MitigationRow is one case's full comparison (Figure 11 bar group).
type MitigationRow struct {
	Case      cases.Case
	To, Ti    time.Duration
	ToP95     time.Duration
	TiP95     time.Duration
	NoisyTi   time.Duration
	Level     float64
	Solutions map[cases.Solution]SolutionResult
}

// Mitigation runs every requested case under vanilla (with and without
// interference) and under each solution, producing the data behind Figures
// 11 and 12. A nil caseIDs selects all 16; nil solutions selects all five.
func Mitigation(cfg Config, caseIDs []string, sols []cases.Solution) []MitigationRow {
	if sols == nil {
		sols = cases.Solutions()
	}
	var rows []MitigationRow
	for _, c := range selectCases(caseIDs) {
		d := cfg.caseDuration(c.ID)
		to := cases.Run(c, cases.RunConfig{Solution: cases.SolutionNone, Interference: false, Duration: d})
		ti := cases.Run(c, cases.RunConfig{Solution: cases.SolutionNone, Interference: true, Duration: d})
		row := MitigationRow{
			Case:      c,
			To:        to.Victim.Mean,
			Ti:        ti.Victim.Mean,
			ToP95:     to.Victim.P95,
			TiP95:     ti.Victim.P95,
			NoisyTi:   ti.Noisy.Mean,
			Level:     stats.InterferenceLevel(ti.Victim.Mean, to.Victim.Mean),
			Solutions: make(map[cases.Solution]SolutionResult, len(sols)),
		}
		for _, sol := range sols {
			out := cases.Run(c, cases.RunConfig{Solution: sol, Interference: true, Duration: d})
			row.Solutions[sol] = SolutionResult{
				Mean:         out.Victim.Mean,
				P95:          out.Victim.P95,
				NormMean:     stats.NormalizedLatency(out.Victim.Mean, row.Ti),
				NormP95:      stats.NormalizedLatency(out.Victim.P95, row.TiP95),
				Reduction:    stats.ReductionRatio(row.Ti, row.To, out.Victim.Mean),
				ReductionP95: stats.ReductionRatio(row.TiP95, row.ToP95, out.Victim.P95),
				Actions:      out.Actions,
				NoisyMean:    out.Noisy.Mean,
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// MitigationSummary aggregates a solution's results the way Section 6.2/6.3
// reports them: how many cases it helped, the average reduction among
// helped cases, and the average (negative) reduction among worsened cases.
type MitigationSummary struct {
	Solution        cases.Solution
	Helped          int
	Worsened        int
	AvgReduction    float64 // over helped cases
	MaxReduction    float64
	AvgWorsening    float64 // over worsened cases (negative)
	WorstWorsening  float64
	AvgReductionAll float64 // over all cases
}

// Summarize computes per-solution summaries over mitigation rows.
func Summarize(rows []MitigationRow) []MitigationSummary {
	var sums []MitigationSummary
	for _, sol := range cases.Solutions() {
		s := MitigationSummary{Solution: sol}
		var helpedSum, worsenedSum, allSum float64
		n := 0
		for _, row := range rows {
			sr, ok := row.Solutions[sol]
			if !ok {
				continue
			}
			n++
			allSum += sr.Reduction
			if sr.Reduction > 0 {
				s.Helped++
				helpedSum += sr.Reduction
				if sr.Reduction > s.MaxReduction {
					s.MaxReduction = sr.Reduction
				}
			} else {
				s.Worsened++
				worsenedSum += sr.Reduction
				if sr.Reduction < s.WorstWorsening {
					s.WorstWorsening = sr.Reduction
				}
			}
		}
		if s.Helped > 0 {
			s.AvgReduction = helpedSum / float64(s.Helped)
		}
		if s.Worsened > 0 {
			s.AvgWorsening = worsenedSum / float64(s.Worsened)
		}
		if n > 0 {
			s.AvgReductionAll = allSum / float64(n)
		}
		sums = append(sums, s)
	}
	return sums
}

func selectCases(ids []string) []cases.Case {
	if ids == nil {
		return cases.Catalog()
	}
	var out []cases.Case
	for _, id := range ids {
		if c, ok := cases.ByID(id); ok {
			out = append(out, c)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 10: microbenchmark of pBox operation latencies.

// MicroRow is one operation's measured latency.
type MicroRow struct {
	Op      string
	Latency time.Duration
}

// Fig10Micro measures the cost of each pBox operation, plus the two
// reference points the paper uses: a cheap syscall (getpid) and thread
// creation (goroutine spawn+join here).
func Fig10Micro(iters int) []MicroRow {
	if iters <= 0 {
		iters = 100_000
	}
	mgr := core.NewManager(core.Options{})
	// A rule so loose no penalty fires during the microbenchmark.
	rule := core.IsolationRule{Type: core.Relative, Level: 1e12, Metric: core.MetricAverage}

	measure := func(n int, f func(i int)) time.Duration {
		t0 := time.Now()
		for i := 0; i < n; i++ {
			f(i)
		}
		return time.Since(t0) / time.Duration(n)
	}

	var rows []MicroRow

	// create/release measured pairwise to keep the manager's table from
	// growing unboundedly.
	nCR := iters / 10
	var createTotal, releaseTotal time.Duration
	for i := 0; i < nCR; i++ {
		t0 := time.Now()
		p, _ := mgr.Create(rule)
		createTotal += time.Since(t0)
		t1 := time.Now()
		_ = mgr.Release(p)
		releaseTotal += time.Since(t1)
	}
	rows = append(rows, MicroRow{"create", createTotal / time.Duration(nCR)})
	rows = append(rows, MicroRow{"release", releaseTotal / time.Duration(nCR)})

	p, _ := mgr.Create(rule)
	rows = append(rows, MicroRow{"activate", measure(iters, func(int) { mgr.Activate(p) })})
	// Interleave activate/freeze for a valid freeze measurement.
	mgr.Activate(p)
	// freeze is measured as the freeze+activate pair minus the activate
	// cost (freeze needs an active pBox each iteration).
	pair := measure(iters, func(int) {
		mgr.Freeze(p)
		mgr.Activate(p)
	})
	activateCost := rows[len(rows)-1].Latency
	freeze := pair - activateCost
	if freeze < 0 {
		freeze = pair / 2
	}
	rows = append(rows, MicroRow{"freeze", freeze})

	w := mgr.NewWorker()
	_ = w.BindDirect(p)
	rows = append(rows, MicroRow{"bind+unbind(lazy)", measure(iters, func(int) {
		_, _ = w.Unbind(0x1, core.BindShared)
		_, _ = w.Bind(0x1, core.BindShared)
	})})

	key := core.ResourceKey(0x99)
	mgr.Activate(p)
	rows = append(rows, MicroRow{"update1", measure(iters, func(int) {
		mgr.Update(p, key, core.Hold)
		mgr.Update(p, key, core.Unhold)
	})})

	// update2: the unhold path iterates a waiting competitor.
	p2, _ := mgr.Create(rule)
	mgr.Activate(p2)
	mgr.Update(p2, key, core.Prepare)
	rows = append(rows, MicroRow{"update2", measure(iters, func(int) {
		mgr.Update(p, key, core.Hold)
		mgr.Update(p, key, core.Unhold)
	})})

	rows = append(rows, MicroRow{"getpid", measure(iters, func(int) { _ = syscall.Getpid() })})

	nSpawn := iters / 10
	rows = append(rows, MicroRow{"go-spawn", measure(nSpawn, func(int) {
		var wg sync.WaitGroup
		wg.Add(1)
		go wg.Done()
		wg.Wait()
	})})
	return rows
}
