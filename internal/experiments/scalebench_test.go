package experiments

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestScaleBenchQuick runs the whole sweep at smoke scale and checks the
// document's shape: row count, per-row provenance, summary maps, the
// JSON round trip, and both gates against self-consistent inputs.
func TestScaleBenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	doc := ScaleBench(quick)

	gmps := len(scaleBenchGmps())
	gs := len(scaleBenchGoroutines())
	wantRows := gmps*3*gs + 6 + 3 + 4 + 2 // base grid + shard + spool + padding + adaptive axes
	if len(doc.Rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(doc.Rows), wantRows)
	}
	if doc.NumCPU != runtime.NumCPU() || doc.OpsPerGoroutine <= 0 {
		t.Fatalf("document header = %+v", doc)
	}
	var adaptive, unpadded int
	for _, r := range doc.Rows {
		if r.Axis == "" || r.Gomaxprocs <= 0 || r.NumCPU != runtime.NumCPU() {
			t.Fatalf("row missing provenance: %+v", r)
		}
		if r.Shards <= 0 || r.SpoolSize <= 0 {
			t.Fatalf("row missing resolved topology: %+v", r)
		}
		if r.Ops <= 0 || r.NsPerOp <= 0 || r.OpsPerSec <= 0 {
			t.Fatalf("row missing measurement: %+v", r)
		}
		if r.Adaptive {
			adaptive++
		}
		if !r.Padded {
			unpadded++
		}
	}
	if adaptive != 2 || unpadded != 4 {
		t.Fatalf("adaptive rows = %d (want 2), unpadded rows = %d (want 4)", adaptive, unpadded)
	}
	// One efficiency entry per (gmp, scenario, g>1) cell of the base grid.
	if want := gmps * 3 * (gs - 1); len(doc.ScalingEfficiency) != want {
		t.Fatalf("scaling_efficiency has %d entries, want %d: %v",
			len(doc.ScalingEfficiency), want, doc.ScalingEfficiency)
	}
	for k, v := range doc.ScalingEfficiency {
		if v <= 0 {
			t.Fatalf("scaling_efficiency[%s] = %v", k, v)
		}
	}
	if len(doc.PaddingSpeedup) != 4 || len(doc.AdaptiveOverhead) != 2 {
		t.Fatalf("summary maps: padding=%v adaptive=%v", doc.PaddingSpeedup, doc.AdaptiveOverhead)
	}

	path := filepath.Join(t.TempDir(), "BENCH_scale.json")
	if err := WriteScaleBench(path, doc); err != nil {
		t.Fatalf("WriteScaleBench: %v", err)
	}
	back, err := ReadScaleBench(path)
	if err != nil {
		t.Fatalf("ReadScaleBench: %v", err)
	}
	if len(back.Rows) != len(doc.Rows) || back.NumCPU != doc.NumCPU {
		t.Fatalf("round trip lost rows: %d vs %d", len(back.Rows), len(doc.Rows))
	}

	// Self-comparison passes; on a small host the multicore gates must
	// skip with a logged notice rather than fail.
	var notices []string
	logf := func(format string, args ...any) { notices = append(notices, format) }
	if err := CompareScaleBench(back, doc, logf); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
	if runtime.NumCPU() < scaleBenchMulticoreMin && len(notices) == 0 {
		t.Fatalf("expected a skip notice on a %d-CPU host", runtime.NumCPU())
	}

	// A doctored regression on a guarded row must fail the gate.
	bad := doc
	bad.Rows = append([]ScaleBenchRow(nil), doc.Rows...)
	doctored := false
	for i, r := range bad.Rows {
		if r.Scenario == "fastpath" && r.Padded && !r.Adaptive {
			bad.Rows[i].NsPerOp *= 2
			doctored = true
			break
		}
	}
	if !doctored {
		t.Fatal("no guarded row to doctor")
	}
	if err := CompareScaleBench(doc, bad, nil); err == nil {
		t.Fatal("doctored regression passed the gate")
	} else if !strings.Contains(err.Error(), "fastpath") {
		t.Fatalf("unexpected gate error: %v", err)
	}

	// A baseline measured at a different ops scale narrows the row gate
	// to 1-goroutine fastpath rows: a doctored multi-goroutine row slips
	// through with a notice, a doctored g=1 fastpath row still fails.
	fullBase := doc
	fullBase.OpsPerGoroutine = doc.OpsPerGoroutine * 10
	multi := doc
	multi.Rows = append([]ScaleBenchRow(nil), doc.Rows...)
	for i, r := range multi.Rows {
		if r.Scenario == "disjoint" && r.Goroutines > 1 {
			multi.Rows[i].NsPerOp *= 2
			break
		}
	}
	notices = nil
	if err := CompareScaleBench(fullBase, multi, logf); err != nil {
		t.Fatalf("multi-goroutine row gated despite ops-scale mismatch: %v", err)
	}
	mismatchNoticed := false
	for _, n := range notices {
		if strings.Contains(n, "ops_per_goroutine differs") {
			mismatchNoticed = true
		}
	}
	if !mismatchNoticed {
		t.Fatalf("no ops-scale mismatch notice, got %v", notices)
	}
	g1 := doc
	g1.Rows = append([]ScaleBenchRow(nil), doc.Rows...)
	for i, r := range g1.Rows {
		if r.Scenario == "fastpath" && r.Goroutines == 1 && r.Padded && !r.Adaptive {
			g1.Rows[i].NsPerOp *= 2
			break
		}
	}
	if err := CompareScaleBench(fullBase, g1, nil); err == nil {
		t.Fatal("doctored g=1 fastpath row passed the narrowed gate")
	}
}

// TestCheckScaleAgainstCore exercises the cross-harness guard with
// synthetic core baselines around a real sweep row.
func TestCheckScaleAgainstCore(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	row := runScaleBench(scaleConfig{
		axis: "base", scenario: "fastpath", gomaxprocs: runtime.GOMAXPROCS(0), goroutines: 1, padded: true,
	}, 10_000)
	current := ScaleBenchFile{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Rows:       []ScaleBenchRow{row},
	}
	mkCore := func(ns float64, numcpu int) CoreBenchFile {
		return CoreBenchFile{
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     numcpu,
			Rows: []CoreBenchRow{{
				Scenario: "disjoint", Variant: "fastpath", Goroutines: 1, NsPerOp: ns,
			}},
		}
	}

	if err := CheckScaleAgainstCore(mkCore(row.NsPerOp, runtime.NumCPU()), current, nil); err != nil {
		t.Fatalf("matching baseline failed: %v", err)
	}
	if err := CheckScaleAgainstCore(mkCore(row.NsPerOp/10, runtime.NumCPU()), current, nil); err == nil {
		t.Fatal("10x regression passed the cross-check")
	}
	// Provenance mismatch: skip with a notice, not a failure.
	var notices []string
	logf := func(format string, args ...any) { notices = append(notices, format) }
	if err := CheckScaleAgainstCore(mkCore(row.NsPerOp/10, runtime.NumCPU()+1), current, logf); err != nil {
		t.Fatalf("mismatched-host baseline failed instead of skipping: %v", err)
	}
	if len(notices) != 1 {
		t.Fatalf("expected one skip notice, got %v", notices)
	}
}
