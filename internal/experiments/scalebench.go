package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"pbox/internal/core"
)

// Multicore scalability sweep: where BENCH_core.json compares ingestion
// disciplines (global lock vs. sharded vs. fastpath) at a fixed topology,
// BENCH_scale.json sweeps the topology itself — GOMAXPROCS, goroutine count,
// shard count, spool capacity, cache-line padding, and the adaptive sizer —
// over the three hot-path scenarios. Every row records the GOMAXPROCS and
// NumCPU it ran under, because scalability numbers are meaningless without
// that provenance: a 4-goroutine row measured on one core measures
// serialization, the same row on four cores measures parallel speedup, and a
// regression gate must never compare the two.

// ScaleBenchRow is one point of the sweep. Shards and SpoolSize record the
// values the manager actually resolved (defaults included), so rows remain
// self-describing when the defaults move.
type ScaleBenchRow struct {
	// Axis names the sweep section that produced the row ("base", "shards",
	// "spool", "padding", "adaptive"). It also disambiguates rows whose
	// swept value happens to equal the host's resolved default (e.g. the
	// 8-stripe shard-axis row on a host whose default is 8 stripes), which
	// would otherwise collide with a base-grid row in the regression gate.
	Axis string `json:"axis"`
	// Scenario is "disjoint" (direct Manager.Update, per-goroutine keys),
	// "contended" (direct Manager.Update, one shared key), or "fastpath"
	// (Worker.Update on per-goroutine keys — the Tier A spool path).
	Scenario   string `json:"scenario"`
	Gomaxprocs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Goroutines int    `json:"goroutines"`
	Shards     int    `json:"shards"`
	SpoolSize  int    `json:"spool_size"`
	// Padded is false when the run disabled cache-line padding of the
	// contention table (Options.NoCachePad) — the false-sharing ablation.
	Padded bool `json:"padded"`
	// Adaptive is true when the run enabled the §13 topology sizer with a
	// background snapshot poller driving its ticks.
	Adaptive  bool    `json:"adaptive"`
	Ops       int64   `json:"ops"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// ScaleBenchFile is the BENCH_scale.json document.
type ScaleBenchFile struct {
	GOMAXPROCS      int             `json:"gomaxprocs"`
	NumCPU          int             `json:"numcpu"`
	OpsPerGoroutine int             `json:"ops_per_goroutine"`
	Rows            []ScaleBenchRow `json:"rows"`
	// ScalingEfficiency maps "<scenario>/gmp<P>/g<N>" to
	// ops/sec at N goroutines ÷ (N × ops/sec at 1 goroutine), both measured
	// at GOMAXPROCS=P on the default topology. 1.0 is perfect scaling; on a
	// single-CPU host every value sits near 1/N by construction (no
	// parallelism exists), which is why the CI gate reads NumCPU first.
	ScalingEfficiency map[string]float64 `json:"scaling_efficiency"`
	// PaddingSpeedup maps "<scenario>/g<N>" to padded ops/sec ÷ unpadded
	// ops/sec at the maximum swept GOMAXPROCS — the false-sharing ablation.
	// ≥1 means the cache-line pads pay for themselves; on one core the two
	// layouts are equivalent and the ratio hovers at 1.0.
	PaddingSpeedup map[string]float64 `json:"padding_speedup"`
	// AdaptiveOverhead maps "fastpath/g<N>" to adaptive ns/op ÷ fixed ns/op:
	// the hot-path price of running the §13 sizer (with a snapshot poller
	// ticking it) against the same fixed-topology run.
	AdaptiveOverhead map[string]float64 `json:"adaptive_overhead"`
}

// scaleBenchScenarios orders the swept scenarios.
var scaleBenchScenarios = []string{"disjoint", "contended", "fastpath"}

// scaleConfig is one row's topology knobs.
type scaleConfig struct {
	axis       string
	scenario   string
	gomaxprocs int
	goroutines int
	shards     int // 0 = manager default
	spoolSize  int // 0 = manager default
	padded     bool
	adaptive   bool
}

// scaleAdaptiveSnapshotInterval bounds view staleness on adaptive rows so
// the background poller actually produces rebuilds (and therefore sizer
// ticks) within a sub-second benchmark run.
const scaleAdaptiveSnapshotInterval = 5 * time.Millisecond

// runScaleBench measures one row: sc.goroutines goroutines each running
// opsPer Hold/Unhold cycles under GOMAXPROCS=sc.gomaxprocs. The previous
// GOMAXPROCS is restored before returning. Penalties are swallowed — the
// sweep measures the manager, not the clock.
func runScaleBench(sc scaleConfig, opsPer int) ScaleBenchRow {
	prev := runtime.GOMAXPROCS(sc.gomaxprocs)
	defer runtime.GOMAXPROCS(prev)

	opts := core.Options{
		Sleep:            func(time.Duration) {},
		Shards:           sc.shards,
		SpoolSize:        sc.spoolSize,
		NoCachePad:       !sc.padded,
		AdaptiveTopology: sc.adaptive,
	}
	if sc.adaptive {
		opts.SnapshotInterval = scaleAdaptiveSnapshotInterval
	}
	m := core.NewManager(opts)

	row := ScaleBenchRow{
		Axis:       sc.axis,
		Scenario:   sc.scenario,
		Gomaxprocs: sc.gomaxprocs,
		NumCPU:     runtime.NumCPU(),
		Goroutines: sc.goroutines,
		Shards:     m.ShardCount(),
		SpoolSize:  m.SpoolCapacity(),
		Padded:     sc.padded,
		Adaptive:   sc.adaptive,
	}

	g := sc.goroutines
	pboxes := make([]*core.PBox, g)
	keys := make([]core.ResourceKey, g)
	for i := range pboxes {
		p, err := m.Create(core.DefaultRule())
		if err != nil {
			panic(err)
		}
		m.Activate(p)
		pboxes[i] = p
		keys[i] = core.ResourceKey(0x100) // contended: one key for all
		if sc.scenario != "contended" {
			keys[i] = core.ResourceKey(0x1000 + i)
		}
	}

	var start, stop sync.WaitGroup
	gate := make(chan struct{})
	start.Add(g)
	stop.Add(g)
	for i := 0; i < g; i++ {
		if sc.scenario == "fastpath" {
			w := m.NewWorker()
			if err := w.BindDirect(pboxes[i]); err != nil {
				panic(err)
			}
			go func(w *core.Worker, key core.ResourceKey) {
				defer stop.Done()
				start.Done()
				<-gate
				for n := 0; n < opsPer; n++ {
					w.Update(key, core.Hold)
					w.Update(key, core.Unhold)
				}
				w.Flush()
			}(w, keys[i])
			continue
		}
		go func(p *core.PBox, key core.ResourceKey) {
			defer stop.Done()
			start.Done()
			<-gate
			for n := 0; n < opsPer; n++ {
				m.Update(p, key, core.Hold)
				m.Update(p, key, core.Unhold)
			}
		}(pboxes[i], keys[i])
	}

	// Adaptive rows run the sizer the way a deployment would: a status
	// poller whose reads escalate to snapshot rebuilds, which tick the
	// sizer (DESIGN.md §13). Fixed rows carry no poller, so AdaptiveOverhead
	// prices the sizer together with the polling that feeds it.
	pollerQuit := make(chan struct{})
	var pollerDone sync.WaitGroup
	if sc.adaptive {
		pollerDone.Add(1)
		go func() {
			defer pollerDone.Done()
			tick := time.NewTicker(scaleAdaptiveSnapshotInterval / 2)
			defer tick.Stop()
			for {
				select {
				case <-pollerQuit:
					return
				case <-tick.C:
					_ = m.StatusView()
				}
			}
		}()
	}

	start.Wait()
	t0 := time.Now()
	close(gate)
	stop.Wait()
	elapsed := time.Since(t0)
	close(pollerQuit)
	pollerDone.Wait()

	ops := int64(g) * int64(opsPer) * 2 // two Update events per cycle
	row.Ops = ops
	if sec := elapsed.Seconds(); sec > 0 {
		row.OpsPerSec = float64(ops) / sec
		row.NsPerOp = float64(elapsed.Nanoseconds()) / float64(ops)
	}
	return row
}

// scaleBenchGmps returns the GOMAXPROCS values to sweep: 1 and NumCPU,
// deduplicated ascending.
func scaleBenchGmps() []int {
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// scaleBenchGoroutines returns the goroutine counts of the base grid:
// 1, 2, 4, NumCPU — deduplicated and ascending.
func scaleBenchGoroutines() []int {
	counts := []int{1, 2, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	var out []int
	for _, c := range counts {
		if c > 0 && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// scaleBaseKey indexes base-grid rows for the summary maps.
func scaleBaseKey(scenario string, gmp, g int) string {
	return fmt.Sprintf("%s/gmp%d/g%d", scenario, gmp, g)
}

// ScaleBench runs the full sweep and assembles the document. The sweep is:
// a base grid (GOMAXPROCS × scenario × goroutines at the default topology,
// padded) feeding ScalingEfficiency; a shard axis (8/32/128 stripes at four
// goroutines, disjoint and contended); a spool axis (64/256/1024 capacity at
// four fastpath goroutines); a padding ablation (unpadded twins of the
// contended and fastpath base rows) feeding PaddingSpeedup; and an adaptive
// axis (fastpath with the sizer plus poller) feeding AdaptiveOverhead.
// Quick mode cuts the per-goroutine op count for smoke tests.
func ScaleBench(cfg Config) ScaleBenchFile {
	opsPer := 100_000
	if cfg.Quick {
		opsPer = 20_000
	}
	doc := ScaleBenchFile{
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		NumCPU:            runtime.NumCPU(),
		OpsPerGoroutine:   opsPer,
		ScalingEfficiency: map[string]float64{},
		PaddingSpeedup:    map[string]float64{},
		AdaptiveOverhead:  map[string]float64{},
	}

	gmps := scaleBenchGmps()
	gs := scaleBenchGoroutines()
	gmpMax := gmps[len(gmps)-1]

	base := map[string]ScaleBenchRow{}
	for _, gmp := range gmps {
		for _, scenario := range scaleBenchScenarios {
			for _, g := range gs {
				row := measureScaleBench(scaleConfig{
					axis: "base", scenario: scenario, gomaxprocs: gmp, goroutines: g, padded: true,
				}, opsPer)
				doc.Rows = append(doc.Rows, row)
				base[scaleBaseKey(scenario, gmp, g)] = row
			}
		}
	}
	for _, gmp := range gmps {
		for _, scenario := range scaleBenchScenarios {
			one := base[scaleBaseKey(scenario, gmp, 1)]
			if one.OpsPerSec <= 0 {
				continue
			}
			for _, g := range gs {
				if g == 1 {
					continue
				}
				r := base[scaleBaseKey(scenario, gmp, g)]
				doc.ScalingEfficiency[scaleBaseKey(scenario, gmp, g)] =
					r.OpsPerSec / (float64(g) * one.OpsPerSec)
			}
		}
	}

	// Shard axis: does stripe count still matter at this core count?
	for _, scenario := range []string{"disjoint", "contended"} {
		for _, shards := range []int{8, 32, 128} {
			doc.Rows = append(doc.Rows, measureScaleBench(scaleConfig{
				axis: "shards", scenario: scenario, gomaxprocs: gmpMax, goroutines: 4,
				shards: shards, padded: true,
			}, opsPer))
		}
	}

	// Spool axis: batching depth on the fast path.
	for _, spool := range []int{64, 256, 1024} {
		doc.Rows = append(doc.Rows, measureScaleBench(scaleConfig{
			axis: "spool", scenario: "fastpath", gomaxprocs: gmpMax, goroutines: 4,
			spoolSize: spool, padded: true,
		}, opsPer))
	}

	// Padding ablation: unpadded twins of base rows that hammer shared
	// cache lines (the contended slot, the fastpath contention checks).
	for _, scenario := range []string{"contended", "fastpath"} {
		for _, g := range []int{1, 4} {
			row := measureScaleBench(scaleConfig{
				axis: "padding", scenario: scenario, gomaxprocs: gmpMax, goroutines: g, padded: false,
			}, opsPer)
			doc.Rows = append(doc.Rows, row)
			if p, ok := base[scaleBaseKey(scenario, gmpMax, g)]; ok && row.OpsPerSec > 0 {
				doc.PaddingSpeedup[fmt.Sprintf("%s/g%d", scenario, g)] =
					p.OpsPerSec / row.OpsPerSec
			}
		}
	}

	// Adaptive axis: the sizer plus its feeding poller against the fixed twin.
	for _, g := range []int{1, 4} {
		row := measureScaleBench(scaleConfig{
			axis: "adaptive", scenario: "fastpath", gomaxprocs: gmpMax, goroutines: g,
			padded: true, adaptive: true,
		}, opsPer)
		doc.Rows = append(doc.Rows, row)
		if p, ok := base[scaleBaseKey("fastpath", gmpMax, g)]; ok && p.NsPerOp > 0 {
			doc.AdaptiveOverhead[fmt.Sprintf("fastpath/g%d", g)] = row.NsPerOp / p.NsPerOp
		}
	}
	return doc
}

// Gate thresholds. The efficiency and padding gates only mean something
// with real parallelism, so they arm at scaleBenchMulticoreMin cores and
// are skipped (with a logged notice) below it — a single-CPU host measures
// serialization, where 4-goroutine "efficiency" is ~0.25 by construction.
const (
	// scaleBenchRegressionTolerance bounds ns/op against a committed
	// baseline row of identical configuration and provenance; matches the
	// corebench guard band (CI machines are noisy).
	scaleBenchRegressionTolerance = 1.25
	// scaleBenchMinEfficiency is the floor on disjoint and fastpath
	// scaling efficiency at 4 goroutines with GOMAXPROCS = NumCPU ≥ 4.
	scaleBenchMinEfficiency = 0.7
	// scaleBenchPaddingTolerance is how far below 1.0 a PaddingSpeedup
	// entry may fall: padded must not measure slower than unpadded beyond
	// run-to-run noise.
	scaleBenchPaddingTolerance = 0.95
	// scaleBenchMulticoreMin arms the two gates above.
	scaleBenchMulticoreMin = 4
)

// scaleRowKey identifies a row by its complete configuration including
// provenance, so baselines from different hosts never cross-compare.
type scaleRowKey struct {
	axis, scenario     string
	gomaxprocs, numcpu int
	goroutines, shards int
	spoolSize          int
	padded, adaptive   bool
}

func (r ScaleBenchRow) key() scaleRowKey {
	return scaleRowKey{r.Axis, r.Scenario, r.Gomaxprocs, r.NumCPU,
		r.Goroutines, r.Shards, r.SpoolSize, r.Padded, r.Adaptive}
}

// scaleBenchReps is how many times each row is measured; the fastest rep is
// kept. A min-of-N over fresh managers filters the transient interference —
// a GC from the previous row, a neighbor stealing the core — that otherwise
// puts 30%+ of noise on a single millisecond-scale measurement, which a 25%
// regression gate cannot live with.
const scaleBenchReps = 3

// measureScaleBench runs sc scaleBenchReps times and returns the fastest
// row.
func measureScaleBench(sc scaleConfig, opsPer int) ScaleBenchRow {
	best := runScaleBench(sc, opsPer)
	for i := 1; i < scaleBenchReps; i++ {
		if r := runScaleBench(sc, opsPer); r.NsPerOp < best.NsPerOp {
			best = r
		}
	}
	return best
}

// CompareScaleBench gates a fresh sweep. Against the committed baseline it
// checks ns/op regressions on disjoint and fastpath rows whose full
// configuration (topology and host provenance) matches a baseline row —
// rows the two hosts don't share are skipped, and when the two documents
// were measured at different ops-per-goroutine scales (quick CI run vs
// committed full sweep) the row gate narrows to the duration-stable
// single-goroutine fastpath rows. On a host with at least
// scaleBenchMulticoreMin cores it additionally enforces the scaling
// efficiency floor and the padded-vs-unpadded ordering; below that it logs
// a notice through logf and skips those checks. Returns an error listing
// every failure.
func CompareScaleBench(baseline, current ScaleBenchFile, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	base := map[scaleRowKey]ScaleBenchRow{}
	for _, r := range baseline.Rows {
		base[r.key()] = r
	}
	// Rows measured at different ops-per-goroutine scales are not
	// comparable across the board: multi-goroutine and shard-map rows run
	// hot for so little wall time in quick mode that scheduler wakeups
	// and GC skew them 1.3-1.8x against a full-sweep baseline. The
	// single-goroutine fastpath rows are duration-stable (the same loop
	// the core bench guards), so a scale mismatch narrows the row gate to
	// those instead of disabling it.
	scaleMismatch := baseline.OpsPerGoroutine != current.OpsPerGoroutine
	if scaleMismatch {
		logf("scale gate: ops_per_goroutine differs (baseline %d, current %d) — row gate restricted to 1-goroutine fastpath rows",
			baseline.OpsPerGoroutine, current.OpsPerGoroutine)
	}
	var failures []string
	for _, r := range current.Rows {
		if r.Adaptive || (r.Scenario != "disjoint" && r.Scenario != "fastpath") {
			continue
		}
		if scaleMismatch && (r.Scenario != "fastpath" || r.Goroutines != 1) {
			continue
		}
		b, ok := base[r.key()]
		if !ok || b.NsPerOp <= 0 || r.NsPerOp <= 0 {
			continue
		}
		if r.NsPerOp > b.NsPerOp*scaleBenchRegressionTolerance {
			failures = append(failures, fmt.Sprintf(
				"%s gmp=%d g=%d shards=%d spool=%d: %.1f ns/op vs baseline %.1f ns/op (%.2fx > %.2fx allowed)",
				r.Scenario, r.Gomaxprocs, r.Goroutines, r.Shards, r.SpoolSize,
				r.NsPerOp, b.NsPerOp, r.NsPerOp/b.NsPerOp, scaleBenchRegressionTolerance))
		}
	}

	if current.NumCPU >= scaleBenchMulticoreMin {
		for _, scenario := range []string{"disjoint", "fastpath"} {
			key := scaleBaseKey(scenario, current.NumCPU, 4)
			eff, ok := current.ScalingEfficiency[key]
			if !ok {
				failures = append(failures, fmt.Sprintf("missing scaling_efficiency entry %q", key))
				continue
			}
			if eff < scaleBenchMinEfficiency {
				failures = append(failures, fmt.Sprintf(
					"scaling_efficiency[%s] = %.2f < %.2f floor", key, eff, scaleBenchMinEfficiency))
			}
		}
		for key, s := range current.PaddingSpeedup {
			if s < scaleBenchPaddingTolerance {
				failures = append(failures, fmt.Sprintf(
					"padding_speedup[%s] = %.2f < %.2f: padded slower than unpadded",
					key, s, scaleBenchPaddingTolerance))
			}
		}
	} else {
		logf("scale gate: host has %d CPU(s) < %d — skipping scaling-efficiency and padding gates (rows recorded with provenance only)",
			current.NumCPU, scaleBenchMulticoreMin)
	}

	if len(failures) > 0 {
		return fmt.Errorf("scale bench regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// CheckScaleAgainstCore cross-checks the sweep against BENCH_core.json: the
// single-goroutine fastpath row of the base grid (default topology, padded)
// must stay within the regression tolerance of the core bench's
// disjoint/fastpath/1 row — the two harnesses measure the same loop, so a
// gap between them means the sweep harness itself grew overhead. The check
// only fires when the core baseline's host provenance matches; otherwise it
// logs a notice and passes.
func CheckScaleAgainstCore(corebase CoreBenchFile, current ScaleBenchFile, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var coreRow CoreBenchRow
	for _, r := range corebase.Rows {
		if r.Scenario == "disjoint" && r.Variant == "fastpath" && r.Goroutines == 1 {
			coreRow = r
		}
	}
	if coreRow.NsPerOp <= 0 {
		logf("scale gate: core baseline has no disjoint/fastpath/1 row — skipping cross-check")
		return nil
	}
	if corebase.NumCPU != current.NumCPU {
		logf("scale gate: core baseline numcpu=%d != current numcpu=%d — skipping cross-check",
			corebase.NumCPU, current.NumCPU)
		return nil
	}
	for _, r := range current.Rows {
		if r.Axis != "base" || r.Scenario != "fastpath" || r.Goroutines != 1 || !r.Padded || r.Adaptive {
			continue
		}
		if r.Gomaxprocs != corebase.GOMAXPROCS {
			continue
		}
		if r.NsPerOp <= 0 {
			continue
		}
		if r.NsPerOp > coreRow.NsPerOp*scaleBenchRegressionTolerance {
			return fmt.Errorf(
				"scale bench fastpath/g1 (gmp=%d): %.1f ns/op vs core baseline %.1f ns/op (%.2fx > %.2fx allowed)",
				r.Gomaxprocs, r.NsPerOp, coreRow.NsPerOp,
				r.NsPerOp/coreRow.NsPerOp, scaleBenchRegressionTolerance)
		}
		return nil
	}
	logf("scale gate: no fastpath/g1 row at gmp=%d matches core baseline — skipping cross-check",
		corebase.GOMAXPROCS)
	return nil
}

// ReadScaleBench loads a committed BENCH_scale.json.
func ReadScaleBench(path string) (ScaleBenchFile, error) {
	var doc ScaleBenchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("parse %s: %w", path, err)
	}
	return doc, nil
}

// WriteScaleBench writes the document at path (write-then-rename, so a
// concurrent reader never sees a torn file).
func WriteScaleBench(path string, doc ScaleBenchFile) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
