package minidb

import (
	"time"

	"pbox/internal/exec"
	"pbox/internal/isolation"
	"pbox/internal/vres"
)

// IsolationLevel selects the transaction isolation behaviour of a
// connection.
type IsolationLevel int

const (
	// RepeatableRead is InnoDB's default: the first read in a transaction
	// establishes a snapshot, pinning UNDO history until commit (the
	// trigger of case c5 / Figure 1).
	RepeatableRead IsolationLevel = iota
	// Serializable makes every read take a shared table lock (case c4).
	Serializable
)

// Conn is one client connection, handled by one goroutine (the
// do_handle_one_connection model of Figure 8).
type Conn struct {
	db  *DB
	act isolation.Activity
	iso IsolationLevel

	ts vres.TicketState

	inTxn      bool
	snapPinned bool
	// heldLocks tracks table locks taken FOR UPDATE, released at commit.
	heldLocks []*Table
}

// Connect opens a connection under controller ctrl. name labels the
// connection for group-based policies.
func (db *DB) Connect(ctrl isolation.Controller, name string) *Conn {
	return &Conn{db: db, act: ctrl.ConnStart(name, isolation.KindForeground)}
}

// ConnectBackground opens a background-task connection (mysqldump, backup).
func (db *DB) ConnectBackground(ctrl isolation.Controller, name string) *Conn {
	return &Conn{db: db, act: ctrl.ConnStart(name, isolation.KindBackground)}
}

// SetIsolation selects the connection's isolation level.
func (c *Conn) SetIsolation(l IsolationLevel) { c.iso = l }

// Activity exposes the connection's activity handle (tests).
func (c *Conn) Activity() isolation.Activity { return c.act }

// Close releases the connection. An open transaction is committed first so
// pins and locks never leak, and any concurrency slot still held through
// ticket credit is force-released (srv_conc_force_exit_innodb on
// connection teardown).
func (c *Conn) Close() {
	if c.inTxn {
		c.Commit()
	}
	if c.db.tickets != nil {
		c.db.tickets.ForceExit(c.act, &c.ts)
	}
	c.act.Close()
}

// request brackets one statement: admission gate, activate/freeze, and
// InnoDB ticket regulation around the body.
func (c *Conn) request(reqType string, body func()) time.Duration {
	if g := c.act.Gate(); g > 0 {
		exec.SleepPrecise(g)
	}
	t0 := time.Now()
	c.act.Begin(reqType)
	if c.db.tickets != nil {
		c.db.tickets.Enter(c.act, &c.ts)
	}
	c.act.Work(c.db.cfg.ParseWork)
	body()
	if c.db.tickets != nil {
		c.db.tickets.Exit(c.act, &c.ts)
	}
	lat := time.Since(t0)
	c.act.End(lat)
	return lat
}

// Begin starts a transaction.
func (c *Conn) Begin() {
	c.inTxn = true
}

// Commit ends the transaction: snapshot pins and FOR UPDATE locks are
// released, and the InnoDB concurrency slot is force-released regardless of
// remaining ticket credit (srv_conc_force_exit_innodb runs at transaction
// end). COMMIT is a statement, so it runs as an activity of its own — in
// particular the lock releases emit their UNHOLD events inside an active
// window where the manager traces them.
func (c *Conn) Commit() time.Duration {
	return c.request("commit", func() {
		if c.snapPinned {
			c.db.undo.Unpin()
			c.snapPinned = false
		}
		for _, t := range c.heldLocks {
			t.lock.UnlockExclusive(c.act)
		}
		c.heldLocks = nil
		c.inTxn = false
		if c.db.tickets != nil {
			c.db.tickets.ForceExit(c.act, &c.ts)
		}
	})
}

// Read executes a SELECT of nRows starting at key. Under RepeatableRead the
// first read of a transaction pins the UNDO history (snapshot); the read
// walks history proportional to the backlog (MVCC version chains). Under
// Serializable it additionally takes the table lock in shared mode.
func (c *Conn) Read(table string, key, nRows int) time.Duration {
	t := c.db.Table(table)
	if t == nil {
		panic(errNoTable(table))
	}
	return c.request("read", func() {
		if c.iso == Serializable {
			t.lock.LockShared(c.act)
			defer t.lock.UnlockShared(c.act)
		}
		if c.inTxn && !c.snapPinned {
			c.db.undo.Pin()
			c.snapPinned = true
		}
		for _, id := range pagesFor(t, key, nRows) {
			c.db.pool.Get(c.act, id, false)
		}
		c.act.Work(time.Duration(nRows) * c.db.cfg.RowWork)
		// MVCC visibility: walk undo history for recently-modified rows.
		c.db.undo.Scan(c.act, int64(nRows)*4)
	})
}

// Write executes an UPDATE of nRows starting at key: dirty page access plus
// UNDO entries, and under Serializable an exclusive table lock for the
// statement.
func (c *Conn) Write(table string, key, nRows int) time.Duration {
	t := c.db.Table(table)
	if t == nil {
		panic(errNoTable(table))
	}
	return c.request("write", func() {
		if c.iso == Serializable {
			t.lock.LockExclusive(c.act)
			defer t.lock.UnlockExclusive(c.act)
		}
		for _, id := range pagesFor(t, key, nRows) {
			c.db.pool.Get(c.act, id, true)
		}
		c.act.Work(time.Duration(nRows) * c.db.cfg.RowWork)
		c.db.undo.Append(c.act, nRows)
	})
}

// Insert executes an INSERT of nRows. Tables without a primary key
// serialize on the global dict mutex while the engine maintains the hidden
// row-id (case c2's custom mutex), holding it across the row work.
func (c *Conn) Insert(table string, nRows int) time.Duration {
	t := c.db.Table(table)
	if t == nil {
		panic(errNoTable(table))
	}
	return c.request("insert", func() {
		if t.NoPrimaryKey {
			c.db.dictMutex.Lock(c.act)
			c.act.Work(time.Duration(nRows) * c.db.cfg.RowWork)
			c.db.dictMutex.Unlock(c.act)
		} else {
			c.act.Work(time.Duration(nRows) * c.db.cfg.RowWork)
		}
		c.db.pool.Get(c.act, pageOf(t, t.Rows), true)
		c.db.undo.Append(c.act, nRows)
	})
}

// SelectForUpdate takes the table's exclusive lock (the "custom lock" of
// case c1), performs queryWork while holding it, and keeps the lock until
// Commit if a transaction is open.
func (c *Conn) SelectForUpdate(table string, queryWork time.Duration) time.Duration {
	t := c.db.Table(table)
	if t == nil {
		panic(errNoTable(table))
	}
	return c.request("read", func() {
		t.lock.LockExclusive(c.act)
		c.act.Work(queryWork)
		if c.inTxn {
			c.heldLocks = append(c.heldLocks, t)
		} else {
			t.lock.UnlockExclusive(c.act)
		}
	})
}

// InsertBlocking executes an INSERT that must wait for the table lock
// (victim side of case c1).
func (c *Conn) InsertBlocking(table string, nRows int) time.Duration {
	t := c.db.Table(table)
	if t == nil {
		panic(errNoTable(table))
	}
	return c.request("insert", func() {
		t.lock.LockExclusive(c.act)
		c.act.Work(time.Duration(nRows) * c.db.cfg.RowWork)
		c.db.pool.Get(c.act, pageOf(t, t.Rows), true)
		c.db.undo.Append(c.act, nRows)
		t.lock.UnlockExclusive(c.act)
	})
}

// SlowQuery executes a statement that holds a concurrency slot for work
// duration (the long-running query of case c3).
func (c *Conn) SlowQuery(table string, work time.Duration) time.Duration {
	t := c.db.Table(table)
	if t == nil {
		panic(errNoTable(table))
	}
	return c.request("write", func() {
		for i := 0; i < 4; i++ {
			c.db.pool.Get(c.act, pageOf(t, i), true)
		}
		c.act.Work(work)
		c.db.undo.Append(c.act, 4)
	})
}

// Dump performs one backup sweep over nPages pages of the table starting at
// page offset — the mysqldump access pattern of case c2 of the motivation
// (Figure 2), flooding the buffer pool via a batch get.
func (c *Conn) Dump(table string, offset, nPages int) time.Duration {
	t := c.db.Table(table)
	if t == nil {
		panic(errNoTable(table))
	}
	return c.request("dump", func() {
		ids := make([]vres.PageID, 0, nPages)
		for i := 0; i < nPages; i++ {
			ids = append(ids, vres.PageID{Table: t.Name, Page: (offset + i) % t.Pages})
		}
		c.db.pool.GetBatch(c.act, ids)
		c.act.Work(time.Duration(nPages) * c.db.cfg.RowWork)
	})
}
