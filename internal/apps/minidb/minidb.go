// Package minidb is the MySQL/InnoDB substrate of the pBox reproduction: a
// multi-threaded MVCC storage engine exposing exactly the virtual resources
// behind the paper's MySQL interference cases (Table 3, c1–c5, and the three
// motivation cases of Section 2.1):
//
//   - a buffer pool with an LRU free-block list (case c2 of the motivation /
//     Figure 2: a dump task floods the pool and evicts the OLTP working set);
//   - an UNDO log with a background purge task (case c5 / Figure 1: a long
//     transaction pins history, writes grow the backlog, and the purge pass
//     blocks clients);
//   - InnoDB-style thread-concurrency tickets (case c3 / Figure 3: a fifth
//     client exhausts the concurrency slots and starves a reader);
//   - table-level locks (case c1: SELECT FOR UPDATE blocks inserts) and
//     shared locking for SERIALIZABLE reads (case c4);
//   - a global "custom mutex" taken by inserts into tables without a
//     primary key (case c2 of Table 3).
//
// Every connection runs as one goroutine (the thread-per-connection model of
// Figure 6a) and reports activity boundaries and state events through its
// isolation.Activity, so the same engine runs vanilla, under pBox, or under
// any baseline controller.
package minidb

import (
	"fmt"
	"sync"
	"time"

	"pbox/internal/exec"
	"pbox/internal/isolation"
	"pbox/internal/vres"
)

// Config sizes the engine. Durations are scaled to the µs–ms world of the
// reproduction (the paper's testbed runs seconds-long workloads; shapes, not
// absolute numbers, are the target).
type Config struct {
	// BufferPoolFrames is the number of page frames in the buffer pool.
	BufferPoolFrames int
	// TicketLimit is innodb_thread_concurrency (0 disables regulation).
	TicketLimit int
	// TicketsPerEnter is the ticket grant per successful entry
	// (innodb_concurrency_tickets, scaled down).
	TicketsPerEnter int
	// PoolCosts is the buffer-pool cost model.
	PoolCosts vres.BufferPoolCosts
	// UndoCosts is the UNDO log cost model.
	UndoCosts vres.LogCosts
	// RowWork is the CPU cost of processing one row.
	RowWork time.Duration
	// ParseWork is the per-statement parse/plan CPU cost.
	ParseWork time.Duration
	// PurgeChunk is the number of UNDO entries one purge pass cleans.
	PurgeChunk int64
}

// DefaultConfig returns the configuration used by the evaluation cases.
func DefaultConfig() Config {
	return Config{
		BufferPoolFrames: 128,
		TicketLimit:      0,
		TicketsPerEnter:  4,
		PoolCosts:        vres.DefaultBufferPoolCosts(),
		UndoCosts:        vres.DefaultLogCosts(),
		RowWork:          2 * time.Microsecond,
		ParseWork:        5 * time.Microsecond,
		PurgeChunk:       2000,
	}
}

// DB is one database server instance.
type DB struct {
	cfg     Config
	pool    *vres.BufferPool
	undo    *vres.AppendLog
	tickets *vres.Tickets // nil when TicketLimit == 0
	// dictMutex is the global custom mutex contended by inserts into
	// tables without a primary key (case c2: InnoDB's dict/autoinc-style
	// global mutex).
	dictMutex *vres.Mutex

	mu     sync.Mutex
	tables map[string]*Table
}

// Table is one table's metadata and locks.
type Table struct {
	Name        string
	Rows        int
	Pages       int
	RowsPerPage int
	// NoPrimaryKey marks tables whose inserts serialize on the global
	// dict mutex (case c2).
	NoPrimaryKey bool
	// lock is the table-level lock: exclusive for SELECT FOR UPDATE and
	// DDL, shared for SERIALIZABLE reads.
	lock *vres.RWLock
}

// New creates a database.
func New(cfg Config) *DB {
	db := &DB{
		cfg:       cfg,
		pool:      vres.NewBufferPool(cfg.BufferPoolFrames, cfg.PoolCosts),
		undo:      vres.NewAppendLog(cfg.UndoCosts),
		dictMutex: vres.NewMutex(),
		tables:    make(map[string]*Table),
	}
	if cfg.TicketLimit > 0 {
		db.tickets = vres.NewTickets(cfg.TicketLimit, cfg.TicketsPerEnter)
	}
	return db
}

// CreateTable registers a table with the given row count; rowsPerPage
// controls how many pages back it.
func (db *DB) CreateTable(name string, rows, rowsPerPage int, noPK bool) *Table {
	if rowsPerPage < 1 {
		rowsPerPage = 1
	}
	pages := (rows + rowsPerPage - 1) / rowsPerPage
	if pages < 1 {
		pages = 1
	}
	t := &Table{
		Name:         name,
		Rows:         rows,
		Pages:        pages,
		RowsPerPage:  rowsPerPage,
		NoPrimaryKey: noPK,
		lock:         vres.NewRWLock(),
	}
	db.mu.Lock()
	db.tables[name] = t
	db.mu.Unlock()
	return t
}

// Table looks up a table.
func (db *DB) Table(name string) *Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.tables[name]
}

// Pool exposes the buffer pool (diagnostics and tests).
func (db *DB) Pool() *vres.BufferPool { return db.pool }

// Undo exposes the UNDO log (diagnostics and tests).
func (db *DB) Undo() *vres.AppendLog { return db.undo }

// Tickets exposes the concurrency regulator (nil when disabled).
func (db *DB) Tickets() *vres.Tickets { return db.tickets }

// DictMutex exposes the global custom mutex (diagnostics and tests).
func (db *DB) DictMutex() *vres.Mutex { return db.dictMutex }

// pageOf maps a row key of table t to its page.
func pageOf(t *Table, key int) vres.PageID {
	page := 0
	if t.Pages > 0 {
		page = (key / t.RowsPerPage) % t.Pages
	}
	return vres.PageID{Table: t.Name, Page: page}
}

// pagesFor returns the pages covering nRows starting at row key.
func pagesFor(t *Table, key, nRows int) []vres.PageID {
	if nRows < 1 {
		nRows = 1
	}
	n := (nRows + t.RowsPerPage - 1) / t.RowsPerPage
	if n > t.Pages {
		n = t.Pages
	}
	start := (key / t.RowsPerPage) % t.Pages
	ids := make([]vres.PageID, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, vres.PageID{Table: t.Name, Page: (start + i) % t.Pages})
	}
	return ids
}

// errNoTable reports an access to an unknown table (programming error in a
// case definition).
func errNoTable(name string) error {
	return fmt.Errorf("minidb: unknown table %q", name)
}

// PurgeRunner drives the background UNDO purge task, the noisy background
// activity of case c5 / Figure 1. It runs on its own goroutine with its own
// activity domain (the paper: "developers also create pBoxes for other
// activities, e.g., one pBox for each background thread").
type PurgeRunner struct {
	db   *DB
	act  isolation.Activity
	stop chan struct{}
	done chan struct{}
	// Idle is the pause between purge passes when the backlog is empty.
	Idle time.Duration
	// Threshold makes the purge batch: it stays idle until the backlog
	// reaches this many entries (real purge coordinators wake on batch
	// boundaries rather than per entry).
	Threshold int64
	// ChunkPause inserts a scheduling gap between consecutive purge
	// chunks (real purge rounds yield between batches).
	ChunkPause time.Duration
}

// StartPurge launches the purge thread under controller ctrl.
func (db *DB) StartPurge(ctrl isolation.Controller) *PurgeRunner {
	pr := &PurgeRunner{
		db:   db,
		act:  ctrl.ConnStart("purge", isolation.KindBackground),
		stop: make(chan struct{}),
		done: make(chan struct{}),
		Idle: 2 * time.Millisecond,
	}
	go pr.run()
	return pr
}

func (pr *PurgeRunner) run() {
	defer close(pr.done)
	// The background thread is one long-running activity (the paper: "one
	// pBox for each background thread"): a single activate for the thread's
	// lifetime, so its own interference ratio is computed over its full
	// runtime rather than per purge pass.
	t0 := time.Now()
	pr.act.Begin("purge")
	defer func() { pr.act.End(time.Since(t0)) }()
	for {
		select {
		case <-pr.stop:
			return
		default:
		}
		if g := pr.act.Gate(); g > 0 {
			exec.SleepPrecise(g)
			continue
		}
		if pr.Threshold > 0 && pr.db.undo.Len() < pr.Threshold {
			exec.SleepPrecise(pr.Idle)
			continue
		}
		purged := pr.db.undo.PurgeChunk(pr.act, pr.db.cfg.PurgeChunk)
		if purged == 0 {
			exec.SleepPrecise(pr.Idle)
		} else if pr.ChunkPause > 0 {
			exec.SleepPrecise(pr.ChunkPause)
		}
	}
}

// Stop terminates the purge thread and releases its activity domain.
func (pr *PurgeRunner) Stop() {
	close(pr.stop)
	<-pr.done
	pr.act.Close()
}
