package minidb

import (
	"sync"
	"testing"
	"time"

	"pbox/internal/core"
	"pbox/internal/isolation"
	"pbox/internal/stats"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.BufferPoolFrames = 64
	return cfg
}

func TestCreateAndLookupTable(t *testing.T) {
	db := New(testConfig())
	tab := db.CreateTable("t1", 1000, 10, false)
	if tab.Pages != 100 {
		t.Fatalf("pages = %d, want 100", tab.Pages)
	}
	if db.Table("t1") != tab {
		t.Fatal("lookup returned wrong table")
	}
	if db.Table("nope") != nil {
		t.Fatal("unknown table should be nil")
	}
}

func TestPageOfStaysInRange(t *testing.T) {
	db := New(testConfig())
	tab := db.CreateTable("t", 100, 10, false)
	for key := 0; key < 1000; key++ {
		p := pageOf(tab, key)
		if p.Page < 0 || p.Page >= tab.Pages {
			t.Fatalf("page %d out of range for key %d", p.Page, key)
		}
	}
}

func TestReadWriteBasics(t *testing.T) {
	db := New(testConfig())
	db.CreateTable("t", 100, 10, false)
	ctrl := isolation.NewNull()
	c := db.Connect(ctrl, "client-1")
	defer c.Close()

	if lat := c.Read("t", 0, 4); lat <= 0 {
		t.Fatalf("read latency = %v", lat)
	}
	if lat := c.Write("t", 0, 4); lat <= 0 {
		t.Fatalf("write latency = %v", lat)
	}
	if db.Undo().Len() != 4 {
		t.Fatalf("undo backlog = %d, want 4", db.Undo().Len())
	}
}

func TestTxnSnapshotPinsUndo(t *testing.T) {
	db := New(testConfig())
	db.CreateTable("t", 100, 10, false)
	ctrl := isolation.NewNull()
	c := db.Connect(ctrl, "client-1")
	defer c.Close()

	c.Begin()
	c.Read("t", 0, 1)
	if db.Undo().Pinned() != 1 {
		t.Fatalf("pins = %d, want 1 after first txn read", db.Undo().Pinned())
	}
	c.Read("t", 1, 1) // second read must not pin again
	if db.Undo().Pinned() != 1 {
		t.Fatalf("pins = %d, want 1 after second read", db.Undo().Pinned())
	}
	c.Commit()
	if db.Undo().Pinned() != 0 {
		t.Fatalf("pins = %d, want 0 after commit", db.Undo().Pinned())
	}
}

func TestPurgeDrainsBacklogOnlyWhenUnpinned(t *testing.T) {
	db := New(testConfig())
	db.CreateTable("t", 100, 10, false)
	ctrl := isolation.NewNull()
	w := db.Connect(ctrl, "writer-1")
	defer w.Close()

	w.Write("t", 0, 50)
	db.Undo().Pin()
	act := ctrl.ConnStart("purge", isolation.KindBackground)
	if n := db.Undo().PurgeChunk(act, 1000); n != 0 {
		t.Fatalf("purged %d entries while pinned, want 0", n)
	}
	db.Undo().Unpin()
	if n := db.Undo().PurgeChunk(act, 1000); n != 50 {
		t.Fatalf("purged %d entries, want 50", n)
	}
	if db.Undo().Len() != 0 {
		t.Fatalf("backlog = %d after purge, want 0", db.Undo().Len())
	}
}

func TestSelectForUpdateBlocksInsertUntilCommit(t *testing.T) {
	db := New(testConfig())
	db.CreateTable("t", 100, 10, false)
	ctrl := isolation.NewNull()
	locker := db.Connect(ctrl, "locker-1")
	inserter := db.Connect(ctrl, "inserter-1")
	defer locker.Close()
	defer inserter.Close()

	locker.Begin()
	locker.SelectForUpdate("t", 100*time.Microsecond)

	done := make(chan time.Duration, 1)
	go func() {
		done <- inserter.InsertBlocking("t", 1)
	}()
	select {
	case lat := <-done:
		t.Fatalf("insert completed in %v while table locked", lat)
	case <-time.After(5 * time.Millisecond):
	}
	locker.Commit()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("insert never completed after commit")
	}
}

func TestSerializableReadBlocksWriter(t *testing.T) {
	db := New(testConfig())
	tab := db.CreateTable("t", 100, 10, false)
	ctrl := isolation.NewNull()
	reader := db.Connect(ctrl, "reader-1")
	reader.SetIsolation(Serializable)
	defer reader.Close()

	// Hold the table shared by acquiring directly (simulating mid-read).
	tab.lock.LockShared(reader.act)
	writer := db.Connect(ctrl, "writer-1")
	writer.SetIsolation(Serializable)
	defer writer.Close()

	done := make(chan struct{})
	go func() {
		writer.Write("t", 0, 1)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("serializable write completed while shared lock held")
	case <-time.After(3 * time.Millisecond):
	}
	tab.lock.UnlockShared(reader.act)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("write never completed")
	}
}

func TestTicketsLimitConcurrency(t *testing.T) {
	cfg := testConfig()
	cfg.TicketLimit = 2
	cfg.TicketsPerEnter = 1
	db := New(cfg)
	db.CreateTable("t", 100, 10, false)
	ctrl := isolation.NewNull()

	var wg sync.WaitGroup
	maxSeen := 0
	var mu sync.Mutex
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := db.Connect(ctrl, "client")
			defer c.Close()
			for j := 0; j < 5; j++ {
				c.SlowQuery("t", 200*time.Microsecond)
				mu.Lock()
				if a := db.Tickets().Active(); a > maxSeen {
					maxSeen = a
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if maxSeen > 2 {
		t.Fatalf("observed %d active threads, limit 2", maxSeen)
	}
}

func TestDumpFloodsBufferPool(t *testing.T) {
	db := New(testConfig())                 // 64 frames
	db.CreateTable("small", 200, 10, false) // 20 pages, fits
	db.CreateTable("big", 20000, 10, false) // 2000 pages, does not fit
	ctrl := isolation.NewNull()
	oltp := db.Connect(ctrl, "oltp-1")
	defer oltp.Close()

	// Warm the small table.
	for k := 0; k < 200; k++ {
		oltp.Read("small", k, 1)
	}
	warmHits := 0
	for k := 0; k < 20; k++ {
		if db.Pool().Cached(pageOf(db.Table("small"), k)) {
			warmHits++
		}
	}
	if warmHits != 20 {
		t.Fatalf("small table resident pages = %d, want 20", warmHits)
	}

	dump := db.ConnectBackground(ctrl, "backup")
	defer dump.Close()
	dump.Dump("big", 0, 200) // far more pages than the pool holds

	coldHits := 0
	for k := 0; k < 20; k++ {
		if db.Pool().Cached(pageOf(db.Table("small"), k)) {
			coldHits++
		}
	}
	if coldHits >= warmHits {
		t.Fatalf("dump did not evict the OLTP working set: %d resident", coldHits)
	}
}

// TestUndoPurgeInterferenceMitigated is the end-to-end check of the whole
// stack: reproduce case c5 (Figure 1) — a backlog of UNDO history built
// behind a long transaction, a background purge thread churning through it
// in chunked passes, and a victim writer deferred on the log — under the
// Null controller and under pBox, and require pBox to reduce the victim's
// mean latency substantially.
func TestUndoPurgeInterferenceMitigated(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive end-to-end test")
	}
	run := func(ctrl isolation.Controller) stats.Summary {
		cfg := testConfig()
		cfg.PurgeChunk = 125
		cfg.UndoCosts.PurgePerEntry = 8 * time.Microsecond
		db := New(cfg)
		db.CreateTable("t", 1000, 10, false)
		// History accumulated behind a long transaction that just
		// committed (the client-A pattern of Figure 1).
		db.Undo().Append(nil, 20000)
		pr := db.StartPurge(ctrl)
		defer pr.Stop()

		rec := stats.NewRecorder(4096)
		victim := db.Connect(ctrl, "writer-victim")
		deadline := time.Now().Add(300 * time.Millisecond)
		for time.Now().Before(deadline) {
			rec.Record(victim.Write("t", 1, 20))
			time.Sleep(100 * time.Microsecond)
		}
		victim.Close()
		return rec.Summary()
	}

	vanilla := run(isolation.NewNull())

	mgr := core.NewManager(core.Options{})
	withPBox := run(isolation.NewPBox(mgr, core.DefaultRule()))

	t.Logf("victim mean: vanilla=%v pbox=%v p99: vanilla=%v pbox=%v actions=%d",
		vanilla.Mean, withPBox.Mean, vanilla.P99, withPBox.P99, mgr.TotalActions())
	if mgr.TotalActions() == 0 {
		t.Fatal("pBox took no actions; detection failed")
	}
	if withPBox.Mean >= vanilla.Mean {
		t.Fatalf("pBox did not reduce interference: vanilla=%v pbox=%v", vanilla.Mean, withPBox.Mean)
	}
}

// TestTicketSlotReleasedOnCloseAndCommit is the regression test for a
// deadlock: a connection that stopped issuing statements while still
// holding a concurrency slot through ticket credit would starve every other
// client. Commit and Close must force-release the slot
// (srv_conc_force_exit_innodb semantics).
func TestTicketSlotReleasedOnCloseAndCommit(t *testing.T) {
	cfg := testConfig()
	cfg.TicketLimit = 1
	cfg.TicketsPerEnter = 5 // plenty of credit left after one statement
	db := New(cfg)
	db.CreateTable("t", 100, 10, false)
	ctrl := isolation.NewNull()

	holder := db.Connect(ctrl, "holder-1")
	holder.Read("t", 0, 1) // enters the engine, keeps the slot via credit
	if db.Tickets().Active() != 1 {
		t.Fatalf("active = %d, want 1 (slot kept via tickets)", db.Tickets().Active())
	}
	holder.Close()
	if db.Tickets().Active() != 0 {
		t.Fatalf("active after close = %d, want 0", db.Tickets().Active())
	}

	// The freed slot must be usable by another client promptly.
	other := db.Connect(ctrl, "other-1")
	done := make(chan struct{})
	go func() {
		other.Read("t", 0, 1)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("slot leaked: second client starved")
	}
	other.Close() // release the slot its ticket credit keeps

	// Commit releases the slot too.
	txn := db.Connect(ctrl, "txn-1")
	defer txn.Close()
	txn.Begin()
	txn.Read("t", 0, 1)
	if db.Tickets().Active() != 1 {
		t.Fatalf("active during txn = %d, want 1", db.Tickets().Active())
	}
	txn.Commit()
	if db.Tickets().Active() != 0 {
		t.Fatalf("active after commit = %d, want 0", db.Tickets().Active())
	}
}
