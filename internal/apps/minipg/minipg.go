// Package minipg is the PostgreSQL substrate of the pBox reproduction: a
// multi-process (one goroutine per backend) MVCC database exposing the
// virtual resources behind the paper's PostgreSQL interference cases
// (Table 3, c6–c10):
//
//   - table indexes whose in-progress insertions force other queries into
//     MVCC visibility work while the inserter holds the index (c6);
//   - a partitioned lock manager where SELECT FOR UPDATE on one table can
//     block requests on other tables hashing to the same partition (c7);
//   - LWLocks with shared/exclusive modes where exclusive waiters are
//     starved by streams of shared holders (c8);
//   - VACUUM FULL passes that hold a table exclusively while scanning dead
//     rows (c9);
//   - a write-ahead log whose group-insert lock serializes commits behind
//     large WAL writes (c10).
package minipg

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pbox/internal/exec"
	"pbox/internal/isolation"
	"pbox/internal/vres"
)

// Config sizes the engine.
type Config struct {
	// LockPartitions is the number of lock-manager partitions
	// (NUM_LOCK_PARTITIONS in PostgreSQL; 1 maximizes cross-table
	// blocking for case c7).
	LockPartitions int
	// RowWork is the CPU cost of processing one row.
	RowWork time.Duration
	// ParseWork is the per-statement parse/plan cost.
	ParseWork time.Duration
	// VisibilityWork is the CPU cost of one MVCC visibility check against
	// an in-progress tuple (case c6).
	VisibilityWork time.Duration
	// WALCosts is the WAL append cost model.
	WALCosts vres.LogCosts
	// VacuumRowWork is the CPU cost per dead row in a VACUUM FULL pass.
	VacuumRowWork time.Duration
	// VacuumChunk is the number of dead rows one vacuum pass reclaims.
	VacuumChunk int
}

// DefaultConfig returns the configuration used by the evaluation cases.
func DefaultConfig() Config {
	return Config{
		LockPartitions: 4,
		RowWork:        2 * time.Microsecond,
		ParseWork:      5 * time.Microsecond,
		VisibilityWork: 3 * time.Microsecond,
		WALCosts: vres.LogCosts{
			Append:        1 * time.Microsecond,
			ScanPerEntry:  200 * time.Nanosecond,
			PurgePerEntry: 500 * time.Nanosecond,
		},
		VacuumRowWork: 4 * time.Microsecond,
		VacuumChunk:   250,
	}
}

// DB is one database cluster instance.
type DB struct {
	cfg Config

	mu     sync.Mutex
	tables map[string]*Table

	// lockParts is the partitioned lock manager: a table's heavyweight
	// lock lives in the partition its name hashes to, so exclusive locks
	// on one table can defer requests on unrelated tables (case c7).
	lockParts []*vres.RWLock
	// wal is the write-ahead log; commit records serialize on its
	// internal lock (WALInsertLock, case c10).
	wal *vres.AppendLog
}

// Table is one table's metadata.
type Table struct {
	Name string
	Rows int
	// index guards the table's index; batch inserts hold it while adding
	// in-progress entries (case c6).
	index *vres.Mutex
	// inProgress counts index entries from uncommitted transactions;
	// every reader pays a visibility check per entry.
	inProgress atomic.Int64
	// deadRows counts dead tuples awaiting vacuum (case c9).
	deadRows atomic.Int64
}

// New creates a cluster.
func New(cfg Config) *DB {
	if cfg.LockPartitions < 1 {
		cfg.LockPartitions = 1
	}
	db := &DB{
		cfg:    cfg,
		tables: make(map[string]*Table),
		wal:    vres.NewAppendLog(cfg.WALCosts),
	}
	for i := 0; i < cfg.LockPartitions; i++ {
		db.lockParts = append(db.lockParts, vres.NewRWLock())
	}
	return db
}

// CreateTable registers a table.
func (db *DB) CreateTable(name string, rows int) *Table {
	t := &Table{Name: name, Rows: rows, index: vres.NewMutex()}
	db.mu.Lock()
	db.tables[name] = t
	db.mu.Unlock()
	return t
}

// Table looks up a table.
func (db *DB) Table(name string) *Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.tables[name]
}

// WAL exposes the write-ahead log (tests/diagnostics).
func (db *DB) WAL() *vres.AppendLog { return db.wal }

// partitionOf returns the lock-manager partition for a table name.
func (db *DB) partitionOf(name string) *vres.RWLock {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return db.lockParts[h%uint32(len(db.lockParts))]
}

// InProgress returns the table's current in-progress entry count.
func (t *Table) InProgress() int64 { return t.inProgress.Load() }

// DeadRows returns the table's current dead-tuple count.
func (t *Table) DeadRows() int64 { return t.deadRows.Load() }

// Backend is one client backend process (one goroutine), the multi-process
// architecture of Figure 6c.
type Backend struct {
	db  *DB
	act isolation.Activity

	inTxn bool
	// myInProgress counts this transaction's uncommitted index entries.
	myInProgress map[*Table]int64
	// heldParts are lock partitions held FOR UPDATE until commit.
	heldParts []*vres.RWLock
}

// Connect forks a backend for a new client connection.
func (db *DB) Connect(ctrl isolation.Controller, name string) *Backend {
	return &Backend{
		db:           db,
		act:          ctrl.ConnStart(name, isolation.KindForeground),
		myInProgress: make(map[*Table]int64),
	}
}

// Activity exposes the backend's activity handle (tests).
func (b *Backend) Activity() isolation.Activity { return b.act }

// Close terminates the backend, committing any open transaction.
func (b *Backend) Close() {
	if b.inTxn {
		b.Commit()
	}
	b.act.Close()
}

// request brackets one statement.
func (b *Backend) request(reqType string, body func()) time.Duration {
	if g := b.act.Gate(); g > 0 {
		exec.SleepPrecise(g)
	}
	t0 := time.Now()
	b.act.Begin(reqType)
	b.act.Work(b.db.cfg.ParseWork)
	body()
	lat := time.Since(t0)
	b.act.End(lat)
	return lat
}

// Begin starts a transaction.
func (b *Backend) Begin() { b.inTxn = true }

// Commit ends the transaction: in-progress index entries become visible
// (and generate dead rows for the superseded versions), held partition
// locks release, and a commit record serializes on the WAL lock.
func (b *Backend) Commit() time.Duration {
	return b.request("commit", func() {
		for t, n := range b.myInProgress {
			t.inProgress.Add(-n)
			t.deadRows.Add(n)
			delete(b.myInProgress, t)
		}
		for _, p := range b.heldParts {
			p.UnlockExclusive(b.act)
		}
		b.heldParts = nil
		b.inTxn = false
		b.db.wal.Append(b.act, 1)
	})
}

// Read executes a SELECT of nRows: a shared heavyweight lock on the table's
// partition, row work, and one MVCC visibility check per in-progress index
// entry (the c6 cost: "In-progress INSERT causes other queries to spend
// time on MVCC").
func (b *Backend) Read(table string, nRows int) time.Duration {
	t := b.db.Table(table)
	if t == nil {
		panic(fmt.Errorf("minipg: unknown table %q", table))
	}
	part := b.db.partitionOf(table)
	return b.request("read", func() {
		part.LockShared(b.act)
		defer part.UnlockShared(b.act)
		// Index lookup: deferred while an inserter holds the index.
		t.index.Lock(b.act)
		inProg := t.inProgress.Load()
		t.index.Unlock(b.act)
		b.act.Work(time.Duration(nRows) * b.db.cfg.RowWork)
		if inProg > 0 {
			b.act.Work(time.Duration(inProg) * b.db.cfg.VisibilityWork)
		}
	})
}

// Insert executes a batch INSERT of nRows inside the current transaction:
// the index is held while the in-progress entries are added, and the rows
// stay in-progress (imposing visibility work on every reader) until commit.
func (b *Backend) Insert(table string, nRows int) time.Duration {
	t := b.db.Table(table)
	if t == nil {
		panic(fmt.Errorf("minipg: unknown table %q", table))
	}
	part := b.db.partitionOf(table)
	return b.request("insert", func() {
		part.LockShared(b.act)
		defer part.UnlockShared(b.act)
		t.index.Lock(b.act)
		b.act.Work(time.Duration(nRows) * b.db.cfg.RowWork)
		t.inProgress.Add(int64(nRows))
		t.index.Unlock(b.act)
		if b.inTxn {
			b.myInProgress[t] += int64(nRows)
		} else {
			t.inProgress.Add(-int64(nRows))
			t.deadRows.Add(int64(nRows))
		}
		b.db.wal.Append(b.act, (nRows+9)/10)
	})
}

// Update executes an UPDATE of nRows: shared partition lock, row work, dead
// row creation (old versions), and WAL records — a large update writes a
// large WAL entry under the group-insert lock (case c10).
func (b *Backend) Update(table string, nRows int) time.Duration {
	t := b.db.Table(table)
	if t == nil {
		panic(fmt.Errorf("minipg: unknown table %q", table))
	}
	part := b.db.partitionOf(table)
	return b.request("write", func() {
		part.LockShared(b.act)
		defer part.UnlockShared(b.act)
		b.act.Work(time.Duration(nRows) * b.db.cfg.RowWork)
		t.deadRows.Add(int64(nRows))
		b.db.wal.Append(b.act, nRows)
	})
}

// SelectForUpdate takes the table's partition lock exclusively for
// queryWork, keeping it until commit when a transaction is open (case c7:
// the exclusive partition lock blocks requests on other tables in the same
// partition).
func (b *Backend) SelectForUpdate(table string, queryWork time.Duration) time.Duration {
	t := b.db.Table(table)
	if t == nil {
		panic(fmt.Errorf("minipg: unknown table %q", table))
	}
	part := b.db.partitionOf(table)
	return b.request("read", func() {
		part.LockExclusive(b.act)
		b.act.Work(queryWork)
		if b.inTxn {
			b.heldParts = append(b.heldParts, part)
		} else {
			part.UnlockExclusive(b.act)
		}
	})
}

// AcquireExclusive executes a statement needing the partition lock in
// exclusive mode (the LWLock exclusive waiter of case c8), holding it only
// for the statement.
func (b *Backend) AcquireExclusive(table string, work time.Duration) time.Duration {
	return b.request("write", func() {
		part := b.db.partitionOf(table)
		part.LockExclusive(b.act)
		b.act.Work(work)
		part.UnlockExclusive(b.act)
	})
}

// SharedScan executes a statement holding the partition lock in shared mode
// for work (the shared-mode lockers that starve exclusive waiters, c8).
func (b *Backend) SharedScan(table string, work time.Duration) time.Duration {
	return b.request("read", func() {
		part := b.db.partitionOf(table)
		part.LockShared(b.act)
		b.act.Work(work)
		part.UnlockShared(b.act)
	})
}
