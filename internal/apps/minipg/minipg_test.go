package minipg

import (
	"testing"
	"time"

	"pbox/internal/isolation"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.RowWork = time.Microsecond
	cfg.ParseWork = time.Microsecond
	return cfg
}

func TestCreateAndLookupTable(t *testing.T) {
	db := New(testConfig())
	tab := db.CreateTable("t", 100)
	if db.Table("t") != tab {
		t.Fatal("lookup returned wrong table")
	}
	if db.Table("missing") != nil {
		t.Fatal("missing table not nil")
	}
}

func TestPartitionCountClamped(t *testing.T) {
	cfg := testConfig()
	cfg.LockPartitions = 0
	db := New(cfg)
	if len(db.lockParts) != 1 {
		t.Fatalf("partitions = %d, want 1", len(db.lockParts))
	}
}

func TestPartitionOfIsStable(t *testing.T) {
	db := New(testConfig())
	a := db.partitionOf("orders")
	b := db.partitionOf("orders")
	if a != b {
		t.Fatal("partition hash not stable")
	}
}

func TestInsertTracksInProgressUntilCommit(t *testing.T) {
	db := New(testConfig())
	tab := db.CreateTable("t", 100)
	ctrl := isolation.NewNull()
	b := db.Connect(ctrl, "ins-1")
	defer b.Close()

	b.Begin()
	b.Insert("t", 10)
	if got := tab.InProgress(); got != 10 {
		t.Fatalf("in-progress = %d, want 10", got)
	}
	b.Insert("t", 5)
	if got := tab.InProgress(); got != 15 {
		t.Fatalf("in-progress = %d, want 15", got)
	}
	b.Commit()
	if got := tab.InProgress(); got != 0 {
		t.Fatalf("in-progress after commit = %d, want 0", got)
	}
	if got := tab.DeadRows(); got != 15 {
		t.Fatalf("dead rows after commit = %d, want 15", got)
	}
}

func TestAutocommitInsertLeavesNoInProgress(t *testing.T) {
	db := New(testConfig())
	tab := db.CreateTable("t", 100)
	ctrl := isolation.NewNull()
	b := db.Connect(ctrl, "ins-1")
	defer b.Close()
	b.Insert("t", 7) // no explicit transaction
	if got := tab.InProgress(); got != 0 {
		t.Fatalf("in-progress = %d, want 0", got)
	}
	if got := tab.DeadRows(); got != 7 {
		t.Fatalf("dead rows = %d, want 7", got)
	}
}

func TestUpdateCreatesDeadRowsAndWAL(t *testing.T) {
	db := New(testConfig())
	tab := db.CreateTable("t", 100)
	ctrl := isolation.NewNull()
	b := db.Connect(ctrl, "w-1")
	defer b.Close()
	b.Update("t", 20)
	if got := tab.DeadRows(); got != 20 {
		t.Fatalf("dead rows = %d, want 20", got)
	}
	if got := db.WAL().Len(); got != 20 {
		t.Fatalf("wal entries = %d, want 20", got)
	}
}

func TestSelectForUpdateHoldsPartitionAcrossTables(t *testing.T) {
	cfg := testConfig()
	cfg.LockPartitions = 1
	db := New(cfg)
	db.CreateTable("ta", 100)
	db.CreateTable("tb", 100)
	ctrl := isolation.NewNull()
	locker := db.Connect(ctrl, "locker-1")
	reader := db.Connect(ctrl, "reader-1")
	defer locker.Close()
	defer reader.Close()

	locker.Begin()
	locker.SelectForUpdate("ta", 10*time.Microsecond)

	done := make(chan struct{})
	go func() {
		reader.Read("tb", 1) // different table, same partition
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("cross-table read completed while partition locked")
	case <-time.After(3 * time.Millisecond):
	}
	locker.Commit()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("read never completed after commit")
	}
}

func TestCloseCommitsOpenTransaction(t *testing.T) {
	cfg := testConfig()
	cfg.LockPartitions = 1
	db := New(cfg)
	tab := db.CreateTable("t", 100)
	ctrl := isolation.NewNull()
	b := db.Connect(ctrl, "b-1")
	b.Begin()
	b.Insert("t", 3)
	b.Close()
	if got := tab.InProgress(); got != 0 {
		t.Fatalf("in-progress after close = %d", got)
	}
}

func TestVacuumReclaimsDeadRows(t *testing.T) {
	cfg := testConfig()
	cfg.VacuumChunk = 50
	cfg.VacuumRowWork = time.Microsecond
	db := New(cfg)
	tab := db.CreateTable("t", 100)
	ctrl := isolation.NewNull()
	seed := db.Connect(ctrl, "seed-1")
	seed.Update("t", 200)
	seed.Close()

	vr := db.StartVacuum(ctrl, "t")
	deadline := time.Now().Add(2 * time.Second)
	for tab.DeadRows() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	vr.Stop()
	if got := tab.DeadRows(); got != 0 {
		t.Fatalf("dead rows = %d after vacuum, want 0", got)
	}
}

func TestVacuumBlocksReadersWhileCompacting(t *testing.T) {
	cfg := testConfig()
	cfg.LockPartitions = 1
	cfg.VacuumChunk = 100000
	cfg.VacuumRowWork = time.Microsecond // one long 40ms pass
	db := New(cfg)
	db.CreateTable("t", 100)
	ctrl := isolation.NewNull()
	seed := db.Connect(ctrl, "seed-1")
	seed.Update("t", 40000)
	seed.Close()

	vr := db.StartVacuum(ctrl, "t")
	defer vr.Stop()
	time.Sleep(3 * time.Millisecond) // let the pass start

	reader := db.Connect(ctrl, "r-1")
	defer reader.Close()
	lat := reader.Read("t", 1)
	if lat < 5*time.Millisecond {
		t.Fatalf("read latency = %v, want blocked behind vacuum pass", lat)
	}
}

func TestSharedScanAndExclusiveInterlock(t *testing.T) {
	cfg := testConfig()
	cfg.LockPartitions = 1
	db := New(cfg)
	db.CreateTable("t", 100)
	ctrl := isolation.NewNull()
	sc := db.Connect(ctrl, "s-1")
	w := db.Connect(ctrl, "w-1")
	defer sc.Close()
	defer w.Close()

	done := make(chan struct{})
	go func() {
		sc.SharedScan("t", 10*time.Millisecond)
		close(done)
	}()
	time.Sleep(2 * time.Millisecond)
	t0 := time.Now()
	w.AcquireExclusive("t", 10*time.Microsecond)
	if wait := time.Since(t0); wait < 5*time.Millisecond {
		t.Fatalf("exclusive acquired in %v while shared scan running", wait)
	}
	<-done
}

func TestCommitWritesWAL(t *testing.T) {
	db := New(testConfig())
	db.CreateTable("t", 100)
	ctrl := isolation.NewNull()
	b := db.Connect(ctrl, "c-1")
	defer b.Close()
	before := db.WAL().Len()
	b.Begin()
	b.Commit()
	if got := db.WAL().Len(); got != before+1 {
		t.Fatalf("wal after commit = %d, want %d", got, before+1)
	}
}
