package minipg

import (
	"time"

	"pbox/internal/exec"
	"pbox/internal/isolation"
)

// VacuumRunner drives a VACUUM FULL background process over one table (the
// noisy background activity of case c9): each pass takes the table's
// partition lock exclusively and reclaims a chunk of dead rows, holding the
// lock for work proportional to the chunk.
type VacuumRunner struct {
	db    *DB
	table *Table
	act   isolation.Activity
	stop  chan struct{}
	done  chan struct{}
	// Idle is the pause between passes when there is nothing to reclaim.
	Idle time.Duration
}

// StartVacuum launches a vacuum process for the table under ctrl.
func (db *DB) StartVacuum(ctrl isolation.Controller, table string) *VacuumRunner {
	t := db.Table(table)
	if t == nil {
		panic("minipg: vacuum on unknown table " + table)
	}
	vr := &VacuumRunner{
		db:    db,
		table: t,
		act:   ctrl.ConnStart("vacuum", isolation.KindBackground),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		Idle:  2 * time.Millisecond,
	}
	go vr.run()
	return vr
}

func (vr *VacuumRunner) run() {
	defer close(vr.done)
	// One long-running activity for the background process's lifetime.
	t0 := time.Now()
	vr.act.Begin("vacuum")
	defer func() { vr.act.End(time.Since(t0)) }()
	part := vr.db.partitionOf(vr.table.Name)
	for {
		select {
		case <-vr.stop:
			return
		default:
		}
		if g := vr.act.Gate(); g > 0 {
			exec.SleepPrecise(g)
			continue
		}
		dead := vr.table.deadRows.Load()
		if dead <= 0 {
			exec.SleepPrecise(vr.Idle)
			continue
		}
		chunk := int64(vr.db.cfg.VacuumChunk)
		if dead < chunk {
			chunk = dead
		}
		// VACUUM FULL holds the table exclusively while compacting.
		part.LockExclusive(vr.act)
		vr.act.Work(time.Duration(chunk) * vr.db.cfg.VacuumRowWork)
		vr.table.deadRows.Add(-chunk)
		part.UnlockExclusive(vr.act)
	}
}

// Stop terminates the vacuum process.
func (vr *VacuumRunner) Stop() {
	close(vr.stop)
	<-vr.done
	vr.act.Close()
}
