package minikv

import (
	"sync"
	"testing"
	"time"

	"pbox/internal/isolation"
)

func testConfig() Config {
	return Config{
		Capacity:         8,
		GetWork:          time.Microsecond,
		SetWork:          time.Microsecond,
		EvictScanPerItem: time.Microsecond,
		EvictScanItems:   4,
	}
}

func TestGetSetBasics(t *testing.T) {
	kv := New(testConfig())
	ctrl := isolation.NewNull()
	c := kv.Connect(ctrl, "c-1")
	defer c.Close()

	if c.Get(1) {
		t.Fatal("hit on empty cache")
	}
	c.Set(1)
	if !c.Get(1) {
		t.Fatal("miss after set")
	}
	if kv.Len() != 1 {
		t.Fatalf("len = %d, want 1", kv.Len())
	}
}

func TestCapacityEviction(t *testing.T) {
	kv := New(testConfig()) // capacity 8
	ctrl := isolation.NewNull()
	c := kv.Connect(ctrl, "c-1")
	defer c.Close()
	for k := 0; k < 20; k++ {
		c.Set(k)
	}
	if kv.Len() != 8 {
		t.Fatalf("len = %d, want capacity 8", kv.Len())
	}
	// The most recent key must be resident.
	if !c.Get(19) {
		t.Fatal("most recent key evicted")
	}
}

func TestSetExistingRefreshes(t *testing.T) {
	kv := New(testConfig())
	ctrl := isolation.NewNull()
	c := kv.Connect(ctrl, "c-1")
	defer c.Close()
	for k := 0; k < 8; k++ {
		c.Set(k)
	}
	c.Set(0) // refresh, no eviction
	if kv.Len() != 8 {
		t.Fatalf("len = %d after refresh, want 8", kv.Len())
	}
	if !c.Get(0) {
		t.Fatal("refreshed key missing")
	}
}

func TestEvictionScanCostOnFullCache(t *testing.T) {
	cfg := testConfig()
	cfg.EvictScanItems = 64
	cfg.EvictScanPerItem = 50 * time.Microsecond // 3.2ms scan
	kv := New(cfg)
	ctrl := isolation.NewNull()
	c := kv.Connect(ctrl, "c-1")
	defer c.Close()
	for k := 0; k < 8; k++ {
		c.Set(k)
	}
	lat := c.Set(100) // forces an eviction scan
	if lat < 3*time.Millisecond {
		t.Fatalf("eviction set latency = %v, want >= scan cost", lat)
	}
}

func TestConcurrentClientsConsistency(t *testing.T) {
	kv := New(Config{
		Capacity: 128, GetWork: time.Microsecond, SetWork: time.Microsecond,
		EvictScanPerItem: time.Microsecond, EvictScanItems: 2,
	})
	ctrl := isolation.NewNull()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			c := kv.Connect(ctrl, "c")
			defer c.Close()
			for k := 0; k < 100; k++ {
				c.Set(base*1000 + k)
				c.Get(base*1000 + k)
			}
		}(i)
	}
	wg.Wait()
	if kv.Len() > 128 {
		t.Fatalf("len = %d exceeds capacity", kv.Len())
	}
	if kv.CacheLock().Locked() {
		t.Fatal("cache lock leaked")
	}
}
