package minikv

import (
	"bufio"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pbox/internal/core"
	"pbox/internal/isolation"
	"pbox/internal/telemetry"
	"pbox/internal/workload"
)

// startTestServer brings up a full pboxd-shaped stack on an ephemeral port:
// manager + collector, per-connection pBoxes, KV behind real TCP.
func startTestServer(t *testing.T, capacity, evictScan int) (addr string, mgr *core.Manager, reg *telemetry.Registry) {
	t.Helper()
	reg = telemetry.NewRegistry()
	mgr = core.NewManager(core.Options{Observer: telemetry.NewCollector(reg), TraceSize: 512})
	rule := core.DefaultRule()
	rule.Level = 0.5
	ctrl := isolation.NewPBox(mgr, rule)

	cfg := DefaultConfig()
	cfg.Capacity = capacity
	cfg.EvictScanItems = evictScan
	kv := New(cfg)
	mgr.NameResource(kv.CacheLock().Key(), "cache_lock")
	srv := NewServer(kv, ctrl)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return ln.Addr().String(), mgr, reg
}

func TestServerProtocol(t *testing.T) {
	addr, mgr, _ := startTestServer(t, 64, 16)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func(cmd string) string {
		t.Helper()
		if _, err := conn.Write([]byte(cmd + "\n")); err != nil {
			t.Fatalf("write %q: %v", cmd, err)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read after %q: %v", cmd, err)
		}
		return strings.TrimSpace(line)
	}

	for _, step := range []struct{ cmd, want string }{
		{"hello tester", "OK"},
		{"ping", "PONG"},
		{"get 1", "MISS"},
		{"set 1", "OK"},
		{"get 1", "HIT"},
		{"get", "ERR usage: get <key>"},
		{"set banana", "ERR bad key"},
		{"frobnicate", "ERR unknown command"},
	} {
		if got := send(step.cmd); got != step.want {
			t.Fatalf("%q -> %q, want %q", step.cmd, got, step.want)
		}
	}

	// The connection's pBox carries the hello label.
	var labeled bool
	for _, s := range mgr.Snapshots() {
		if s.Label == "tester" {
			labeled = true
		}
	}
	if !labeled {
		t.Fatalf("no pBox labeled tester in %+v", mgr.Snapshots())
	}

	if got := send("quit"); got != "BYE" {
		t.Fatalf("quit -> %q", got)
	}
}

// TestServerEndToEndPenalties is the CI-able version of the pboxd -demo
// acceptance run: one noisy set-heavy background client keeps evicting (long
// cache-lock holds) while victim clients do short gets, all over real TCP.
// The manager must detect the interference and penalize the noisy
// connection's pBox, and the collector must count it.
func TestServerEndToEndPenalties(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real TCP traffic for up to several seconds")
	}
	const capacity = 256
	addr, mgr, reg := startTestServer(t, capacity, 128)

	// Preload so victim gets are hits.
	pre, err := workload.DialKV(addr, "preload")
	if err != nil {
		t.Fatalf("preload dial: %v", err)
	}
	for k := 0; k < capacity; k++ {
		if err := pre.Set(k); err != nil {
			t.Fatalf("preload set: %v", err)
		}
	}
	pre.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	client := func(name string, background bool, op func(*workload.KVConn, *rand.Rand) error) {
		defer wg.Done()
		var c *workload.KVConn
		var err error
		if background {
			c, err = workload.DialKVBackground(addr, name)
		} else {
			c, err = workload.DialKV(addr, name)
		}
		if err != nil {
			t.Errorf("%s dial: %v", name, err)
			return
		}
		defer c.Close()
		r := rand.New(rand.NewSource(int64(len(name))))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := op(c, r); err != nil {
				select {
				case <-stop: // errors after shutdown are expected
				default:
					t.Errorf("%s: %v", name, err)
				}
				return
			}
		}
	}
	wg.Add(3)
	go client("noisy", true, func(c *workload.KVConn, r *rand.Rand) error {
		return c.Set(capacity + r.Intn(8*capacity))
	})
	for i := 0; i < 2; i++ {
		go client("victim", false, func(c *workload.KVConn, r *rand.Rand) error {
			_, err := c.Get(r.Intn(capacity / 2))
			time.Sleep(time.Millisecond)
			return err
		})
	}

	penalties := reg.Counter("pbox_penalties_total", "")
	deadline := time.After(10 * time.Second)
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	var noisyPenalized bool
poll:
	for {
		select {
		case <-deadline:
			break poll
		case <-tick.C:
		}
		if penalties.Value() == 0 {
			continue
		}
		for _, s := range mgr.Snapshots() {
			if s.Label == "noisy" && s.PenaltiesReceived > 0 && s.PenaltyTotal > 0 {
				noisyPenalized = true
				break poll
			}
		}
	}
	close(stop)
	wg.Wait()

	if penalties.Value() == 0 {
		t.Fatal("pbox_penalties_total stayed zero: no penalty was ever scheduled")
	}
	if !noisyPenalized {
		t.Fatalf("noisy pBox never showed served penalty time; snapshots: %+v", mgr.Snapshots())
	}
}
