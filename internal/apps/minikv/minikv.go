// Package minikv is the Memcached substrate of the pBox reproduction: an
// in-memory key-value store whose LRU cache lock — taken by the replacement
// algorithm — is the contended virtual resource of case c16 ("lock
// contention in the cache replacement algorithm").
//
// The paper's result for this case is instructive: pBox does *not* achieve
// effective mitigation, because the contention is light and the system is
// so fast that even a couple of additional manager crossings outweigh the
// gain. The substrate is tuned to preserve that property: holds are a few
// microseconds, requests complete in tens of microseconds.
package minikv

import (
	"container/list"
	"sync"
	"time"

	"pbox/internal/exec"
	"pbox/internal/isolation"
	"pbox/internal/vres"
)

// Config sizes the store.
type Config struct {
	// Capacity is the maximum number of resident items.
	Capacity int
	// GetWork is the CPU cost of serving a hit.
	GetWork time.Duration
	// SetWork is the CPU cost of storing an item.
	SetWork time.Duration
	// EvictScanPerItem is the CPU cost per item inspected by the LRU
	// replacement scan, performed under the cache lock.
	EvictScanPerItem time.Duration
	// EvictScanItems is how many LRU entries one eviction inspects
	// (modern-LRU style second-chance scanning).
	EvictScanItems int
}

// DefaultConfig returns the configuration used by the evaluation cases.
func DefaultConfig() Config {
	return Config{
		Capacity:         1024,
		GetWork:          3 * time.Microsecond,
		SetWork:          4 * time.Microsecond,
		EvictScanPerItem: 1 * time.Microsecond,
		EvictScanItems:   16,
	}
}

// KV is one memcached instance.
type KV struct {
	cfg Config
	// cacheLock is the global lock guarding the hash table and LRU list;
	// the replacement path holds it for the whole eviction scan.
	cacheLock *vres.Mutex

	mu    sync.Mutex // guards items/lru data (the real memory operations)
	items map[int]*list.Element
	lru   *list.List
}

type kvItem struct {
	key int
}

// New creates a store.
func New(cfg Config) *KV {
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	return &KV{
		cfg:       cfg,
		cacheLock: vres.NewMutex(),
		items:     make(map[int]*list.Element),
		lru:       list.New(),
	}
}

// CacheLock exposes the global cache lock (tests/diagnostics).
func (kv *KV) CacheLock() *vres.Mutex { return kv.cacheLock }

// Len returns the resident item count.
func (kv *KV) Len() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return len(kv.items)
}

// Client is one client connection.
type Client struct {
	kv  *KV
	act isolation.Activity
}

// Connect opens a client connection under ctrl.
func (kv *KV) Connect(ctrl isolation.Controller, name string) *Client {
	return kv.ConnectKind(ctrl, name, isolation.KindForeground)
}

// ConnectKind is Connect with an explicit activity kind, for background
// tasks (dumps, crawlers) that declare the relaxed isolation goal.
func (kv *KV) ConnectKind(ctrl isolation.Controller, name string, kind isolation.Kind) *Client {
	return &Client{kv: kv, act: ctrl.ConnStart(name, kind)}
}

// Activity exposes the connection's activity handle (tests).
func (c *Client) Activity() isolation.Activity { return c.act }

// Close closes the connection.
func (c *Client) Close() { c.act.Close() }

// request brackets one command.
func (c *Client) request(reqType string, body func()) time.Duration {
	if g := c.act.Gate(); g > 0 {
		exec.SleepPrecise(g)
	}
	t0 := time.Now()
	c.act.Begin(reqType)
	body()
	lat := time.Since(t0)
	c.act.End(lat)
	return lat
}

// Get reads a key; the cache lock is held briefly for the lookup and LRU
// touch.
func (c *Client) Get(key int) (hit bool) {
	c.request("get", func() {
		c.kv.cacheLock.Lock(c.act)
		c.kv.mu.Lock()
		e, ok := c.kv.items[key]
		if ok {
			c.kv.lru.MoveToFront(e)
		}
		c.kv.mu.Unlock()
		c.act.Work(c.kv.cfg.GetWork)
		c.kv.cacheLock.Unlock(c.act)
		hit = ok
	})
	return hit
}

// GetLatency is Get returning the request latency instead of hit status.
func (c *Client) GetLatency(key int) time.Duration {
	return c.request("get", func() {
		c.kv.cacheLock.Lock(c.act)
		c.kv.mu.Lock()
		if e, ok := c.kv.items[key]; ok {
			c.kv.lru.MoveToFront(e)
		}
		c.kv.mu.Unlock()
		c.act.Work(c.kv.cfg.GetWork)
		c.kv.cacheLock.Unlock(c.act)
	})
}

// Set stores a key. When the cache is full the replacement algorithm scans
// the LRU tail under the cache lock (the c16 contention).
func (c *Client) Set(key int) time.Duration {
	return c.request("set", func() {
		c.kv.cacheLock.Lock(c.act)
		c.kv.mu.Lock()
		if e, ok := c.kv.items[key]; ok {
			c.kv.lru.MoveToFront(e)
			c.kv.mu.Unlock()
			c.act.Work(c.kv.cfg.SetWork)
			c.kv.cacheLock.Unlock(c.act)
			return
		}
		needEvict := len(c.kv.items) >= c.kv.cfg.Capacity
		if needEvict {
			if back := c.kv.lru.Back(); back != nil {
				delete(c.kv.items, back.Value.(*kvItem).key)
				c.kv.lru.Remove(back)
			}
		}
		c.kv.items[key] = c.kv.lru.PushFront(&kvItem{key: key})
		c.kv.mu.Unlock()
		if needEvict {
			// Second-chance scan cost, under the cache lock.
			c.act.Work(time.Duration(c.kv.cfg.EvictScanItems) * c.kv.cfg.EvictScanPerItem)
		}
		c.act.Work(c.kv.cfg.SetWork)
		c.kv.cacheLock.Unlock(c.act)
	})
}
