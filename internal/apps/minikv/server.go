package minikv

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"pbox/internal/isolation"
)

// Server exposes a KV store over a real TCP listener with a memcached-style
// line protocol, one pBox (activity domain) per connection. It is the
// network front-end of cmd/pboxd: client traffic drives the instrumented
// cache-lock path, so the manager sees real cross-connection interference
// and the telemetry endpoints show it live.
//
// Protocol (newline-terminated ASCII):
//
//	hello <name> [bg]  label this connection's pBox; "bg" marks it a
//	                   background task (relaxed isolation goal)   → OK
//	get <key>          read an integer key                        → HIT | MISS
//	set <key>          store an integer key (may evict + scan)    → OK
//	ping               liveness check                             → PONG
//	quit               close the connection                       → BYE
type Server struct {
	kv   *KV
	ctrl isolation.Controller

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	nextID int
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps kv in a TCP front-end creating per-connection activity
// domains from ctrl.
func NewServer(kv *KV, ctrl isolation.Controller) *Server {
	return &Server{kv: kv, ctrl: ctrl, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on l until Close is called. It always returns a
// non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.nextID++
		id := s.nextID
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn, id)
	}
}

// Close stops the listener and closes every live connection, then waits for
// the connection handlers to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// dropConn removes a finished connection from the live set.
func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// serveConn runs one connection's command loop. The per-connection pBox is
// created lazily at the first command so a leading "hello <name>" can label
// it; penalties scheduled against a noisy connection sleep right here, on
// the connection's own goroutine, between requests.
func (s *Server) serveConn(conn net.Conn, id int) {
	defer s.wg.Done()
	defer s.dropConn(conn)
	defer conn.Close()

	name := fmt.Sprintf("conn-%d", id)
	kind := isolation.KindForeground
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	var client *Client
	defer func() {
		if client != nil {
			client.Close()
		}
	}()

	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		cmd := strings.ToLower(fields[0])

		if cmd == "hello" && client == nil && (len(fields) == 2 || len(fields) == 3) {
			name = fields[1]
			if len(fields) == 3 && strings.EqualFold(fields[2], "bg") {
				// Background task (a dump, a crawler): per the paper's
				// usage model it declares a relaxed isolation goal, so
				// its own intentional waiting never reads as a violation
				// that would retaliate against foreground clients.
				kind = isolation.KindBackground
			}
			if !reply(w, "OK") {
				return
			}
			continue
		}
		if client == nil {
			client = &Client{kv: s.kv, act: s.ctrl.ConnStart(name, kind)}
		}

		switch cmd {
		case "get", "set":
			if len(fields) != 2 {
				if !reply(w, "ERR usage: "+cmd+" <key>") {
					return
				}
				continue
			}
			key, err := strconv.Atoi(fields[1])
			if err != nil {
				if !reply(w, "ERR bad key") {
					return
				}
				continue
			}
			var resp string
			if cmd == "get" {
				if client.Get(key) {
					resp = "HIT"
				} else {
					resp = "MISS"
				}
			} else {
				client.Set(key)
				resp = "OK"
			}
			if !reply(w, resp) {
				return
			}
		case "ping":
			if !reply(w, "PONG") {
				return
			}
		case "quit":
			reply(w, "BYE")
			return
		default:
			if !reply(w, "ERR unknown command") {
				return
			}
		}
	}
}

// reply writes one response line and flushes; false means the peer is gone.
func reply(w *bufio.Writer, line string) bool {
	if _, err := w.WriteString(line + "\n"); err != nil {
		return false
	}
	return w.Flush() == nil
}
