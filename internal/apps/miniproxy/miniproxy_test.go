package miniproxy

import (
	"sync"
	"testing"
	"time"

	"pbox/internal/core"
	"pbox/internal/isolation"
)

func testConfig() Config {
	return Config{
		Workers:     2,
		AcceptWork:  time.Microsecond,
		SumStatWork: time.Microsecond,
	}
}

func TestSmallRequestCompletes(t *testing.T) {
	p := New(testConfig())
	defer p.Stop()
	ctrl := isolation.NewNull()
	c := p.Connect(ctrl, "c-1")
	defer c.Close()
	if lat := c.Small(10 * time.Microsecond); lat <= 0 {
		t.Fatalf("latency = %v", lat)
	}
}

func TestWorkersProcessConcurrently(t *testing.T) {
	p := New(testConfig()) // 2 workers
	defer p.Stop()
	ctrl := isolation.NewNull()
	a := p.Connect(ctrl, "a")
	b := p.Connect(ctrl, "b")
	defer a.Close()
	defer b.Close()

	var wg sync.WaitGroup
	t0 := time.Now()
	wg.Add(2)
	go func() { defer wg.Done(); a.Big(10*time.Microsecond, 10*time.Millisecond) }()
	go func() { defer wg.Done(); b.Big(10*time.Microsecond, 10*time.Millisecond) }()
	wg.Wait()
	if el := time.Since(t0); el > 18*time.Millisecond {
		t.Fatalf("two fetches on two workers took %v, want parallel", el)
	}
}

func TestBigRequestsQueueSmallOnes(t *testing.T) {
	p := New(testConfig()) // 2 workers
	defer p.Stop()
	ctrl := isolation.NewNull()
	big1 := p.Connect(ctrl, "b1")
	big2 := p.Connect(ctrl, "b2")
	small := p.Connect(ctrl, "s")
	defer big1.Close()
	defer big2.Close()
	defer small.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); big1.Big(10*time.Microsecond, 15*time.Millisecond) }()
	go func() { defer wg.Done(); big2.Big(10*time.Microsecond, 15*time.Millisecond) }()
	time.Sleep(3 * time.Millisecond) // both workers occupied

	lat := small.Small(10 * time.Microsecond)
	wg.Wait()
	if lat < 5*time.Millisecond {
		t.Fatalf("small latency = %v, want queued behind big fetches", lat)
	}
}

func TestPenalizedPBoxTasksAreRequeued(t *testing.T) {
	mgr := core.NewManager(core.Options{})
	ctrl := isolation.NewPBoxShared(mgr, core.DefaultRule())
	p := New(testConfig())
	defer p.Stop()

	noisy := p.Connect(ctrl, "noisy")
	defer noisy.Close()
	victimAct := ctrl.ConnStart("victim", isolation.KindForeground)
	defer victimAct.Close()

	// Manufacture a penalty on the noisy client's pBox: the victim waits
	// on a resource the noisy pBox holds.
	np, _ := isolation.PBoxOf(noisy.Activity())
	vp, _ := isolation.PBoxOf(victimAct)
	victimAct.Begin("x")
	mgr.Activate(np)
	mgr.Update(np, 77, core.Hold)
	mgr.Update(vp, 77, core.Prepare)
	time.Sleep(5 * time.Millisecond)
	mgr.Update(np, 77, core.Unhold)
	mgr.Freeze(np)

	wait := mgr.PenaltyWait(np)
	if wait <= 0 {
		t.Fatal("no penalty deadline on the noisy shared pBox")
	}
	// The noisy client's next request must take at least the requeue wait.
	lat := noisy.Small(10 * time.Microsecond)
	if lat < wait/2 {
		t.Fatalf("penalized request latency = %v, want >= ~%v (requeued)", lat, wait)
	}
}

func TestStatsFlusherContendsOnSumStat(t *testing.T) {
	p := New(testConfig())
	defer p.Stop()
	ctrl := isolation.NewNull()
	f := p.StartStatsFlusher(ctrl, time.Millisecond, 5*time.Millisecond)
	defer f.Stop()
	time.Sleep(2 * time.Millisecond) // flusher holding

	c := p.Connect(ctrl, "c")
	defer c.Close()
	// Some request should observe SumStat contention; sample a few.
	var worst time.Duration
	for i := 0; i < 10; i++ {
		if lat := c.Small(10 * time.Microsecond); lat > worst {
			worst = lat
		}
	}
	if worst < time.Millisecond {
		t.Fatalf("worst latency = %v, want SumStat contention visible", worst)
	}
}

func TestStopDrainsWorkers(t *testing.T) {
	p := New(testConfig())
	ctrl := isolation.NewNull()
	c := p.Connect(ctrl, "c")
	c.Small(10 * time.Microsecond)
	c.Close()
	p.Stop() // must not hang
}
