// Package miniproxy is the Varnish substrate of the pBox reproduction: an
// event-driven caching proxy with an acceptor queue and a fixed worker
// thread pool, exposing the virtual resources behind the paper's Varnish
// interference cases (Table 3, c14–c15):
//
//   - c14: slow requests for big objects occupy worker threads and the
//     requests for small objects queue behind them;
//   - c15: the WRK_SumStat global lock, taken on request completion to fold
//     per-worker statistics, becomes contended; a stats aggregation pass
//     holding it stalls request completions.
//
// The proxy exercises the event-driven pBox model (Figure 6b): activities
// of many client pBoxes share the worker threads, so penalties surface as
// requeue deadlines (Activity.Gate) rather than thread delays — the
// userspace equivalent of the paper's kernel task-queue manipulation
// (Section 5).
package miniproxy

import (
	"sync"
	"time"

	"pbox/internal/core"
	"pbox/internal/exec"
	"pbox/internal/isolation"
	"pbox/internal/vres"
)

// Config sizes the proxy.
type Config struct {
	// Workers is the worker thread pool size.
	Workers int
	// AcceptWork is the per-request accept/parse overhead.
	AcceptWork time.Duration
	// SumStatWork is the per-completion statistics work under the global
	// SumStat lock.
	SumStatWork time.Duration
}

// DefaultConfig returns the configuration used by the evaluation cases.
func DefaultConfig() Config {
	return Config{
		Workers:     4,
		AcceptWork:  5 * time.Microsecond,
		SumStatWork: 2 * time.Microsecond,
	}
}

// task is one queued request.
type task struct {
	act     isolation.Activity
	reqType string
	work    time.Duration // CPU part (object delivery)
	fetchIO time.Duration // backend fetch IO (big objects)
	done    chan struct{}
}

// Proxy is one Varnish instance.
type Proxy struct {
	cfg   Config
	queue *vres.Queue[*task]
	// poolKey is the worker-pool virtual resource: tasks PREPARE on it at
	// enqueue and their processing HOLDs one unit.
	poolKey core.ResourceKey
	sumStat *vres.Mutex

	wg      sync.WaitGroup
	stopped chan struct{}
}

// New creates a proxy and starts its worker threads.
func New(cfg Config) *Proxy {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	p := &Proxy{
		cfg:     cfg,
		queue:   vres.NewQueuePoll[*task](0, 20*time.Microsecond),
		poolKey: vres.NewKey(),
		sumStat: vres.NewMutex(),
		stopped: make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Stop drains and terminates the worker threads.
func (p *Proxy) Stop() {
	p.queue.Close()
	p.wg.Wait()
	close(p.stopped)
}

// SumStat exposes the global statistics lock (tests/diagnostics).
func (p *Proxy) SumStat() *vres.Mutex { return p.sumStat }

// PoolKey exposes the worker-pool resource key (tests/diagnostics).
func (p *Proxy) PoolKey() core.ResourceKey { return p.poolKey }

// QueueLen returns the number of queued tasks (tests/diagnostics).
func (p *Proxy) QueueLen() int { return p.queue.Len() }

// worker is one worker thread: it pops tasks, honours penalty requeue
// deadlines, and processes requests on behalf of the owning pBox.
func (p *Proxy) worker() {
	defer p.wg.Done()
	for {
		t, ok := p.queue.Pop(nil)
		if !ok {
			return
		}
		// Shared-thread penalty: a task whose pBox is under penalty goes
		// back to the task queue until the deadline (Section 5).
		if g := t.act.Gate(); g > 0 {
			p.queue.PushDelayed(t, g)
			continue
		}
		p.process(t)
	}
}

// process runs one request on the worker thread. The task's activity owns
// the thread for the duration (bind), and the worker-pool unit it occupies
// is reported as HOLD/UNHOLD. The activity itself was begun by the client
// at submission so the queue wait is part of it.
func (p *Proxy) process(t *task) {
	t.act.Event(p.poolKey, core.Enter)
	t.act.Event(p.poolKey, core.Hold)
	t.act.Work(p.cfg.AcceptWork)
	if t.fetchIO > 0 {
		t.act.IO(t.fetchIO)
	}
	t.act.Work(t.work)
	t.act.Event(p.poolKey, core.Unhold)
	// Completion statistics under the global SumStat lock (case c15).
	p.sumStat.Lock(t.act)
	t.act.Work(p.cfg.SumStatWork)
	p.sumStat.Unlock(t.act)
	close(t.done)
}

// Client is one proxy client connection.
type Client struct {
	proxy *Proxy
	act   isolation.Activity
}

// Connect opens a client connection under ctrl.
func (p *Proxy) Connect(ctrl isolation.Controller, name string) *Client {
	return &Client{proxy: p, act: ctrl.ConnStart(name, isolation.KindForeground)}
}

// Activity exposes the connection's activity handle (tests).
func (c *Client) Activity() isolation.Activity { return c.act }

// Close closes the connection.
func (c *Client) Close() { c.act.Close() }

// do submits a request and waits for its completion; the latency is queue
// wait plus processing, as a real client would observe. The activity spans
// submission to completion: the client begins it, the worker thread runs
// its middle on behalf of the owning pBox, and the client ends it.
func (c *Client) do(reqType string, work, fetchIO time.Duration) time.Duration {
	t0 := time.Now()
	c.act.Begin(reqType)
	t := &task{act: c.act, reqType: reqType, work: work, fetchIO: fetchIO, done: make(chan struct{})}
	// The task waits in the accept queue for a worker: it is deferred on
	// the worker pool from enqueue until a worker picks it up.
	c.act.Event(c.proxy.poolKey, core.Prepare)
	c.proxy.queue.TryPush(t)
	<-t.done
	lat := time.Since(t0)
	c.act.End(lat)
	return lat
}

// Small requests a small cached object.
func (c *Client) Small(work time.Duration) time.Duration {
	return c.do("get", work, 0)
}

// Big requests a large object requiring a backend fetch that occupies the
// worker for fetchIO (case c14).
func (c *Client) Big(work, fetchIO time.Duration) time.Duration {
	return c.do("get", work, fetchIO)
}

// StatsFlusher is a background task that periodically aggregates statistics
// holding the SumStat lock for holdWork (the noisy side of case c15).
type StatsFlusher struct {
	proxy *Proxy
	act   isolation.Activity
	stop  chan struct{}
	done  chan struct{}
	// Interval between aggregation passes.
	Interval time.Duration
	// HoldWork is the work performed under the SumStat lock per pass.
	HoldWork time.Duration
}

// StartStatsFlusher launches the aggregation task.
func (p *Proxy) StartStatsFlusher(ctrl isolation.Controller, interval, holdWork time.Duration) *StatsFlusher {
	f := &StatsFlusher{
		proxy:    p,
		act:      ctrl.ConnStart("statsflush", isolation.KindBackground),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		Interval: interval,
		HoldWork: holdWork,
	}
	go f.run()
	return f
}

func (f *StatsFlusher) run() {
	defer close(f.done)
	t0 := time.Now()
	f.act.Begin("stats")
	defer func() { f.act.End(time.Since(t0)) }()
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		if g := f.act.Gate(); g > 0 {
			exec.SleepPrecise(g)
			continue
		}
		f.proxy.sumStat.Lock(f.act)
		f.act.Work(f.HoldWork)
		f.proxy.sumStat.Unlock(f.act)
		exec.SleepPrecise(f.Interval)
	}
}

// Stop terminates the flusher.
func (f *StatsFlusher) Stop() {
	close(f.stop)
	<-f.done
	f.act.Close()
}
