package miniweb

import (
	"sync"
	"testing"
	"time"

	"pbox/internal/isolation"
)

func testConfig() Config {
	return Config{
		MaxClients:  4,
		FcgidSlots:  2,
		PHPChildren: 2,
		HandlerWork: time.Microsecond,
	}
}

func TestStaticRequestCompletes(t *testing.T) {
	srv := New(testConfig())
	ctrl := isolation.NewNull()
	c := srv.Connect(ctrl, "c-1")
	defer c.Close()
	if lat := c.Static(10 * time.Microsecond); lat <= 0 {
		t.Fatalf("latency = %v", lat)
	}
	if srv.Workers().InUse() != 0 {
		t.Fatalf("worker slots leaked: %d", srv.Workers().InUse())
	}
}

func TestWorkerPoolBoundsConcurrency(t *testing.T) {
	srv := New(testConfig()) // MaxClients 4
	ctrl := isolation.NewNull()
	var wg sync.WaitGroup
	maxSeen := 0
	var mu sync.Mutex
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := srv.Connect(ctrl, "c")
			defer c.Close()
			for j := 0; j < 5; j++ {
				c.SlowRequest(200 * time.Microsecond)
				mu.Lock()
				if u := srv.Workers().InUse(); u > maxSeen {
					maxSeen = u
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if maxSeen > 4 {
		t.Fatalf("observed %d concurrent workers, MaxClients 4", maxSeen)
	}
}

func TestFcgidSlotExhaustionBlocksFastRequests(t *testing.T) {
	srv := New(testConfig()) // FcgidSlots 2
	ctrl := isolation.NewNull()
	slow1 := srv.Connect(ctrl, "s-1")
	slow2 := srv.Connect(ctrl, "s-2")
	fast := srv.Connect(ctrl, "f-1")
	defer slow1.Close()
	defer slow2.Close()
	defer fast.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); slow1.CGI(20 * time.Millisecond) }()
	go func() { defer wg.Done(); slow2.CGI(20 * time.Millisecond) }()
	time.Sleep(3 * time.Millisecond) // both slots taken

	lat := fast.CGI(10 * time.Microsecond)
	wg.Wait()
	if lat < 5*time.Millisecond {
		t.Fatalf("fast CGI latency = %v, want blocked behind slot holders", lat)
	}
	if srv.Fcgid().InUse() != 0 {
		t.Fatalf("fcgid slots leaked: %d", srv.Fcgid().InUse())
	}
}

func TestPHPChildrenLimit(t *testing.T) {
	srv := New(testConfig()) // PHPChildren 2
	ctrl := isolation.NewNull()
	var wg sync.WaitGroup
	maxSeen := 0
	var mu sync.Mutex
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := srv.Connect(ctrl, "p")
			defer c.Close()
			for j := 0; j < 4; j++ {
				c.PHP(100 * time.Microsecond)
				mu.Lock()
				if u := srv.PHP().InUse(); u > maxSeen {
					maxSeen = u
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if maxSeen > 2 {
		t.Fatalf("observed %d php children, limit 2", maxSeen)
	}
}

func TestStaticUnaffectedByFcgidExhaustion(t *testing.T) {
	srv := New(testConfig())
	ctrl := isolation.NewNull()
	slow1 := srv.Connect(ctrl, "s-1")
	slow2 := srv.Connect(ctrl, "s-2")
	static := srv.Connect(ctrl, "st-1")
	defer slow1.Close()
	defer slow2.Close()
	defer static.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); slow1.CGI(10 * time.Millisecond) }()
	go func() { defer wg.Done(); slow2.CGI(10 * time.Millisecond) }()
	time.Sleep(2 * time.Millisecond)

	// Static requests need only a worker slot (4 total, 2 busy).
	lat := static.Static(10 * time.Microsecond)
	wg.Wait()
	if lat > 5*time.Millisecond {
		t.Fatalf("static latency = %v, should not block on fcgid", lat)
	}
}
