// Package miniweb is the Apache httpd substrate of the pBox reproduction: a
// multi-threaded web server whose worker pool, mod_fcgid backend slots, and
// php-fpm children are the bounded virtual resources behind the paper's
// Apache interference cases (Table 3, c11–c13):
//
//   - c11: a slow request in mod_fcgid occupies backend slots and blocks
//     other, fast connections;
//   - c12: the server "locks up" when MaxClients is reached — slow requests
//     hold worker slots and every other connection defers on them;
//   - c13: PHP scripts suddenly slow down when the connection count reaches
//     pm.max_children.
package miniweb

import (
	"time"

	"pbox/internal/exec"
	"pbox/internal/isolation"
	"pbox/internal/vres"
)

// Config sizes the server.
type Config struct {
	// MaxClients bounds concurrently served requests (the Apache worker
	// pool).
	MaxClients int
	// FcgidSlots bounds concurrent mod_fcgid backend requests.
	FcgidSlots int
	// PHPChildren bounds concurrent php-fpm workers.
	PHPChildren int
	// HandlerWork is the fixed per-request server overhead.
	HandlerWork time.Duration
}

// DefaultConfig returns the configuration used by the evaluation cases.
func DefaultConfig() Config {
	return Config{
		MaxClients:  8,
		FcgidSlots:  4,
		PHPChildren: 4,
		HandlerWork: 10 * time.Microsecond,
	}
}

// Server is one httpd instance.
type Server struct {
	cfg     Config
	workers *vres.Slots
	fcgid   *vres.Slots
	php     *vres.Slots
}

// New creates a server.
func New(cfg Config) *Server {
	return &Server{
		cfg:     cfg,
		workers: vres.NewSlots(cfg.MaxClients),
		fcgid:   vres.NewSlots(cfg.FcgidSlots),
		php:     vres.NewSlots(cfg.PHPChildren),
	}
}

// Workers exposes the worker pool (tests/diagnostics).
func (s *Server) Workers() *vres.Slots { return s.workers }

// Fcgid exposes the fcgid slot pool (tests/diagnostics).
func (s *Server) Fcgid() *vres.Slots { return s.fcgid }

// PHP exposes the php-fpm children pool (tests/diagnostics).
func (s *Server) PHP() *vres.Slots { return s.php }

// Client is one HTTP client connection (keep-alive), handled by one server
// thread per request.
type Client struct {
	srv *Server
	act isolation.Activity
}

// Connect opens a client connection under ctrl.
func (s *Server) Connect(ctrl isolation.Controller, name string) *Client {
	return &Client{srv: s, act: ctrl.ConnStart(name, isolation.KindForeground)}
}

// Activity exposes the connection's activity handle (tests).
func (c *Client) Activity() isolation.Activity { return c.act }

// Close closes the connection.
func (c *Client) Close() { c.act.Close() }

// request brackets one HTTP request: admission gate, activate/freeze, and
// the worker-slot acquisition every request needs.
func (c *Client) request(reqType string, body func()) time.Duration {
	if g := c.act.Gate(); g > 0 {
		exec.SleepPrecise(g)
	}
	t0 := time.Now()
	c.act.Begin(reqType)
	c.srv.workers.Acquire(c.act)
	c.act.Work(c.srv.cfg.HandlerWork)
	body()
	c.srv.workers.Release(c.act)
	lat := time.Since(t0)
	c.act.End(lat)
	return lat
}

// Static serves a static file: worker slot plus file work.
func (c *Client) Static(work time.Duration) time.Duration {
	return c.request("get", func() {
		c.act.Work(work)
	})
}

// CGI serves a request through mod_fcgid: worker slot plus an fcgid backend
// slot held for the script's duration (case c11: a slow script starves the
// slot pool).
func (c *Client) CGI(scriptWork time.Duration) time.Duration {
	return c.request("post", func() {
		c.srv.fcgid.Acquire(c.act)
		c.act.Work(scriptWork)
		c.srv.fcgid.Release(c.act)
	})
}

// PHP serves a request through php-fpm: worker slot plus a php child held
// for the script's duration (case c13).
func (c *Client) PHP(scriptWork time.Duration) time.Duration {
	return c.request("post", func() {
		c.srv.php.Acquire(c.act)
		c.act.Work(scriptWork)
		c.srv.php.Release(c.act)
	})
}

// SlowRequest serves a request whose handler holds a worker slot for the
// whole duration (the MaxClients exhaustion of case c12: long polls, slow
// upstreams).
func (c *Client) SlowRequest(work time.Duration) time.Duration {
	return c.request("post", func() {
		c.act.Work(work)
	})
}
