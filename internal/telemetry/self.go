package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"pbox/internal/core"
)

// This file serves the snapshot read path and the manager's self-telemetry:
//
//	/status  the epoch-published StatusView — pBoxes, attribution matrix,
//	         per-resource waiter/holder counts, trace cursor — plus the
//	         view's epoch, age, and build cost (pboxctl top's data source)
//	/self    the manager-observes-itself report (core.SelfStats): snapshot
//	         build/caching counters, spool flush/overflow traffic,
//	         contention-table claim/revoke rates, shard-lock totals, and
//	         the verdict-latency histogram (pboxctl self's data source)
//
// /metrics additionally exposes the same self-telemetry as the pbox_self_*
// Prometheus series (rendered from atomics — scraping them costs the event
// path nothing).

// ResourceStatus is the wire form of one per-resource contention summary in
// the /status response.
type ResourceStatus struct {
	Key     uint64 `json:"key"`
	Name    string `json:"name,omitempty"`
	Waiters int    `json:"waiters"`
	Holders int    `json:"holders"`
}

// StatusResponse is the /status payload: the published snapshot's contents
// plus its epoch metadata. Age is the view's manager-clock age at serve
// time — by the bounded-staleness contract it never exceeds Interval unless
// the manager clock is frozen (tests) or caching is disabled.
type StatusResponse struct {
	Epoch         uint64             `json:"epoch"`
	Age           string             `json:"age"`
	AgeNs         int64              `json:"age_ns"`
	BuildDuration string             `json:"build_duration"`
	Interval      string             `json:"interval"`
	TraceSeq      uint64             `json:"trace_seq"`
	PBoxes        []PBoxStatus       `json:"pboxes"`
	Resources     []ResourceStatus   `json:"resources,omitempty"`
	Matrix        []AttributionEntry `json:"matrix"`
	Dropped       int64              `json:"dropped"`
}

// statusResponse converts a view (plus its age under mgr's clock) to wire
// form.
func statusResponse(mgr *core.Manager, v *core.StatusView) StatusResponse {
	age := mgr.ViewAge(v)
	resp := StatusResponse{
		Epoch:         v.Epoch,
		Age:           age.String(),
		AgeNs:         int64(age),
		BuildDuration: v.BuildDuration.String(),
		Interval:      mgr.SelfStats().SnapshotInterval.String(),
		TraceSeq:      v.TraceSeq,
		PBoxes:        make([]PBoxStatus, 0, len(v.Snapshots)),
		Matrix:        make([]AttributionEntry, 0, len(v.Attribution)),
		Dropped:       v.AttributionDropped,
	}
	for _, s := range v.Snapshots {
		resp.PBoxes = append(resp.PBoxes, statusFromSnapshot(s))
	}
	for _, rec := range v.Attribution {
		resp.Matrix = append(resp.Matrix, attributionEntry(rec))
	}
	for _, res := range v.Resources {
		resp.Resources = append(resp.Resources, ResourceStatus{
			Key:     uint64(res.Key),
			Name:    res.Name,
			Waiters: res.Waiters,
			Holders: res.Holders,
		})
	}
	return resp
}

func (e *Exporter) handleStatus(w http.ResponseWriter, r *http.Request) {
	if e.mgr == nil {
		http.Error(w, "manager not attached", http.StatusNotFound)
		return
	}
	var v *core.StatusView
	if r.URL.Query().Get("refresh") != "" {
		v = e.mgr.RefreshStatusView()
	} else {
		v = e.mgr.StatusView()
	}
	writeJSON(w, statusResponse(e.mgr, v))
}

// LatencyBucket is one verdict-latency histogram bucket in the /self
// response (LE is the inclusive upper bound; "+Inf" for the last bucket).
type LatencyBucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// VerdictLatencyStatus is the wire form of the verdict-latency histogram.
type VerdictLatencyStatus struct {
	Count   int64           `json:"count"`
	Sum     string          `json:"sum"`
	Buckets []LatencyBucket `json:"buckets"`
}

// SelfResponse is the /self payload: core.SelfStats in wire form.
type SelfResponse struct {
	SnapshotEpoch      uint64 `json:"snapshot_epoch"`
	SnapshotAge        string `json:"snapshot_age"`
	SnapshotAgeNs      int64  `json:"snapshot_age_ns"`
	SnapshotInterval   string `json:"snapshot_interval"`
	SnapshotBuilds     int64  `json:"snapshot_builds"`
	SnapshotCacheHits  int64  `json:"snapshot_cache_hits"`
	SnapshotLastBuild  string `json:"snapshot_last_build"`
	SnapshotBuildTotal string `json:"snapshot_build_total"`

	SpoolFlushes       int64 `json:"spool_flushes"`
	SpoolFlushedEvents int64 `json:"spool_flushed_events"`
	SpoolSweeps        int64 `json:"spool_sweeps"`
	SpoolOverflows     int64 `json:"spool_overflows"`

	ContentionClaims      int64 `json:"contention_claims"`
	ContentionRevocations int64 `json:"contention_revocations"`
	ContentionStickySlots int   `json:"contention_sticky_slots"`

	ShardLockAcquisitions int64 `json:"shard_lock_acquisitions"`
	ShardLockMax          int64 `json:"shard_lock_max"`
	Shards                int   `json:"shards"`

	AdaptiveTopology  bool               `json:"adaptive_topology"`
	SpoolCapacity     int                `json:"spool_capacity"`
	TopologyTicks     int64              `json:"topology_ticks"`
	ShardResizes      int64              `json:"shard_resizes"`
	SpoolResizes      int64              `json:"spool_resizes"`
	TopologyDecisions []TopologyDecision `json:"topology_decisions,omitempty"`

	Hibernations int64 `json:"hibernations"`
	Wakes        int64 `json:"wakes"`
	Hibernated   int64 `json:"hibernated"`

	Crossings int64 `json:"crossings"`

	VerdictLatency VerdictLatencyStatus `json:"verdict_latency"`

	// Wire is the attached wire-ingestion server's counters (absent when no
	// wire server is attached).
	Wire *WireSelf `json:"wire,omitempty"`
}

// TopologyDecision is the wire form of one adaptive-sizer (or manual)
// resize decision.
type TopologyDecision struct {
	AtNs   int64  `json:"at_ns"`
	Kind   string `json:"kind"`
	From   int    `json:"from"`
	To     int    `json:"to"`
	Reason string `json:"reason"`
}

// selfResponse converts SelfStats to wire form.
func selfResponse(st core.SelfStats) SelfResponse {
	resp := SelfResponse{
		SnapshotEpoch:      st.SnapshotEpoch,
		SnapshotAge:        st.SnapshotAge.String(),
		SnapshotAgeNs:      int64(st.SnapshotAge),
		SnapshotInterval:   st.SnapshotInterval.String(),
		SnapshotBuilds:     st.SnapshotBuilds,
		SnapshotCacheHits:  st.SnapshotCacheHits,
		SnapshotLastBuild:  st.SnapshotLastBuild.String(),
		SnapshotBuildTotal: st.SnapshotBuildTotal.String(),

		SpoolFlushes:       st.SpoolFlushes,
		SpoolFlushedEvents: st.SpoolFlushedEvents,
		SpoolSweeps:        st.SpoolSweeps,
		SpoolOverflows:     st.SpoolOverflows,

		ContentionClaims:      st.ContentionClaims,
		ContentionRevocations: st.ContentionRevocations,
		ContentionStickySlots: st.ContentionStickySlots,

		ShardLockAcquisitions: st.ShardLockAcquisitions,
		ShardLockMax:          st.ShardLockMax,
		Shards:                st.Shards,

		AdaptiveTopology: st.AdaptiveTopology,
		SpoolCapacity:    st.SpoolCapacity,
		TopologyTicks:    st.TopologyTicks,
		ShardResizes:     st.ShardResizes,
		SpoolResizes:     st.SpoolResizes,

		Hibernations: st.Hibernations,
		Wakes:        st.Wakes,
		Hibernated:   st.Hibernated,

		Crossings: st.Crossings,

		VerdictLatency: VerdictLatencyStatus{
			Count: st.VerdictLatency.Count,
			Sum:   st.VerdictLatency.Sum.String(),
		},
	}
	for _, d := range st.TopologyDecisions {
		resp.TopologyDecisions = append(resp.TopologyDecisions, TopologyDecision{
			AtNs: d.AtNs, Kind: d.Kind, From: d.From, To: d.To, Reason: d.Reason,
		})
	}
	h := st.VerdictLatency
	for i, c := range h.Counts {
		le := "+Inf"
		if i < len(h.Bounds) {
			le = formatSeconds(h.Bounds[i])
		}
		resp.VerdictLatency.Buckets = append(resp.VerdictLatency.Buckets, LatencyBucket{LE: le, Count: c})
	}
	return resp
}

func (e *Exporter) handleSelf(w http.ResponseWriter, r *http.Request) {
	if e.mgr == nil {
		http.Error(w, "manager not attached", http.StatusNotFound)
		return
	}
	resp := selfResponse(e.mgr.SelfStats())
	if e.wireSrv != nil {
		resp.Wire = wireSelf(e.wireSrv.Stats())
	}
	writeJSON(w, resp)
}

// writeSelfMetrics renders SelfStats as the pbox_self_* Prometheus series.
// The series are assembled from the manager's atomics on each scrape rather
// than registered in the Registry: the values live in internal/core, which
// cannot depend on this package, and double-counting them into Registry
// metrics from an observer would put extra work on the hook path.
func writeSelfMetrics(w io.Writer, st core.SelfStats) {
	writeSelfGauge(w, "pbox_self_snapshot_epoch", "Epoch of the published status snapshot (0 = none yet).", int64(st.SnapshotEpoch))
	writeSelfGaugeSeconds(w, "pbox_self_snapshot_age_seconds", "Manager-clock age of the published status snapshot.", st.SnapshotAge)
	writeSelfGaugeSeconds(w, "pbox_self_snapshot_interval_seconds", "Configured bounded-staleness budget of the snapshot read path.", st.SnapshotInterval)
	writeSelfCounter(w, "pbox_self_snapshot_builds_total", "Stop-the-world snapshot view rebuilds.", st.SnapshotBuilds)
	writeSelfCounter(w, "pbox_self_snapshot_cache_hits_total", "Snapshot reads served by the published view without a rebuild.", st.SnapshotCacheHits)
	writeSelfGaugeSeconds(w, "pbox_self_snapshot_build_seconds", "Wall-clock cost of the latest snapshot rebuild.", st.SnapshotLastBuild)
	writeSelfCounterSeconds(w, "pbox_self_snapshot_build_seconds_total", "Cumulative wall-clock cost of snapshot rebuilds.", st.SnapshotBuildTotal)

	writeSelfCounter(w, "pbox_self_spool_flushes_total", "Non-empty event-spool flushes.", st.SpoolFlushes)
	writeSelfCounter(w, "pbox_self_spool_flushed_events_total", "Events replayed out of worker spools.", st.SpoolFlushedEvents)
	writeSelfCounter(w, "pbox_self_spool_sweeps_total", "All-spool sweeps (contended hand-offs and precise reads).", st.SpoolSweeps)
	writeSelfCounter(w, "pbox_self_spool_overflows_total", "Spool appends that failed (full or foreign buffer), forcing a flush.", st.SpoolOverflows)

	writeSelfCounter(w, "pbox_self_contention_claims_total", "Successful fast-path contention-slot claims.", st.ContentionClaims)
	writeSelfCounter(w, "pbox_self_contention_revocations_total", "Slow-path revocations of a live contention-slot claim.", st.ContentionRevocations)
	writeSelfGauge(w, "pbox_self_contention_sticky_slots", "Contention slots currently stuck at the contended value.", int64(st.ContentionStickySlots))

	writeSelfCounter(w, "pbox_self_shard_lock_acquisitions_total", "Shard-lock acquisitions across all stripes.", st.ShardLockAcquisitions)
	writeSelfCounter(w, "pbox_self_shard_lock_max_total", "Shard-lock acquisitions on the hottest single stripe.", st.ShardLockMax)
	writeSelfGauge(w, "pbox_self_shards", "Configured resource-state lock stripes.", int64(st.Shards))

	adaptive := int64(0)
	if st.AdaptiveTopology {
		adaptive = 1
	}
	writeSelfGauge(w, "pbox_self_topology_adaptive", "1 when the adaptive topology sizer is enabled.", adaptive)
	writeSelfGauge(w, "pbox_self_topology_spool_capacity", "Capacity new worker spools are sized to (sizer-retuned).", int64(st.SpoolCapacity))
	writeSelfCounter(w, "pbox_self_topology_ticks_total", "Adaptive-sizer evaluation ticks.", st.TopologyTicks)
	writeSelfCounter(w, "pbox_self_topology_shard_resizes_total", "Shard stripe-set migrations (adaptive or manual).", st.ShardResizes)
	writeSelfCounter(w, "pbox_self_topology_spool_resizes_total", "Spool-capacity retunes (adaptive or manual).", st.SpoolResizes)

	writeSelfCounter(w, "pbox_self_hibernations_total", "pBoxes compacted by Manager.Hibernate.", st.Hibernations)
	writeSelfCounter(w, "pbox_self_wakes_total", "Hibernated pBoxes transparently woken by Activate.", st.Wakes)
	writeSelfGauge(w, "pbox_self_hibernated", "pBoxes currently hibernated.", st.Hibernated)

	writeSelfCounter(w, "pbox_self_crossings_total", "Conceptual user/kernel boundary crossings.", st.Crossings)

	writeSelfHistogram(w, "pbox_self_verdict_latency_seconds", "Wall-clock length of detection-verdict critical sections.", st.VerdictLatency)
}

func writeSelfCounter(w io.Writer, name, help string, v int64) {
	writeSelfHeader(w, name, help, "counter")
	writeSelfValue(w, name, v)
}

func writeSelfGauge(w io.Writer, name, help string, v int64) {
	writeSelfHeader(w, name, help, "gauge")
	writeSelfValue(w, name, v)
}

func writeSelfGaugeSeconds(w io.Writer, name, help string, d time.Duration) {
	writeSelfHeader(w, name, help, "gauge")
	fmt.Fprintf(w, "%s %s\n", name, formatSeconds(d))
}

func writeSelfCounterSeconds(w io.Writer, name, help string, d time.Duration) {
	writeSelfHeader(w, name, help, "counter")
	fmt.Fprintf(w, "%s %s\n", name, formatSeconds(d))
}

func writeSelfHistogram(w io.Writer, name, help string, h core.LatencyHistogram) {
	writeSelfHeader(w, name, help, "histogram")
	var cum int64
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = formatSeconds(h.Bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
	}
	fmt.Fprintf(w, "%s_sum %s\n", name, formatSeconds(h.Sum))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

func writeSelfHeader(w io.Writer, name, help, kind string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
}

func writeSelfValue(w io.Writer, name string, v int64) {
	fmt.Fprintf(w, "%s %d\n", name, v)
}
