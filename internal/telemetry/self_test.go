package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestSelfEndpointTopologyFields drives manual topology resizes through the
// manager and checks that /self reports them: mode, live spool capacity,
// resize counters, and the bounded decision log with its reasons.
func TestSelfEndpointTopologyFields(t *testing.T) {
	m, exp, _ := newTestWorld(t)
	srv := httptest.NewServer(exp)
	defer srv.Close()

	m.ResizeShards(32)
	m.ResizeSpoolCapacity(128)

	code, body := get(t, srv, "/self")
	if code != http.StatusOK {
		t.Fatalf("/self status = %d", code)
	}
	var st SelfResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/self not valid JSON: %v\n%s", err, body)
	}
	if st.AdaptiveTopology {
		t.Fatal("adaptive_topology = true for a fixed-topology manager")
	}
	if st.Shards != 32 {
		t.Fatalf("shards = %d, want 32", st.Shards)
	}
	if st.SpoolCapacity != 128 {
		t.Fatalf("spool_capacity = %d, want 128", st.SpoolCapacity)
	}
	if st.ShardResizes != 1 || st.SpoolResizes != 1 {
		t.Fatalf("resize counters = %d/%d, want 1/1", st.ShardResizes, st.SpoolResizes)
	}
	if len(st.TopologyDecisions) != 2 {
		t.Fatalf("decision log = %+v, want 2 entries", st.TopologyDecisions)
	}
	kinds := map[string]TopologyDecision{}
	for _, d := range st.TopologyDecisions {
		kinds[d.Kind] = d
	}
	if d := kinds["shards"]; d.To != 32 || d.Reason != "manual" {
		t.Fatalf("shards decision = %+v", d)
	}
	if d := kinds["spool"]; d.To != 128 || d.Reason != "manual" {
		t.Fatalf("spool decision = %+v", d)
	}
}

// TestMetricsTopologySeries checks the pbox_self_topology_* Prometheus
// series render from the same counters.
func TestMetricsTopologySeries(t *testing.T) {
	m, exp, _ := newTestWorld(t)
	srv := httptest.NewServer(exp)
	defer srv.Close()

	m.ResizeShards(16)
	m.ResizeSpoolCapacity(512)

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"pbox_self_topology_adaptive 0",
		"pbox_self_topology_spool_capacity 512",
		"pbox_self_topology_shard_resizes_total 1",
		"pbox_self_topology_spool_resizes_total 1",
		"pbox_self_topology_ticks_total 0",
		"pbox_self_shards 16",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}
