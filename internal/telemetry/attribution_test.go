package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"pbox/internal/core"
)

func TestAttributionEndpoint(t *testing.T) {
	_, exp, _ := newTestWorld(t)
	srv := httptest.NewServer(exp)
	defer srv.Close()

	code, body := get(t, srv, "/attribution")
	if code != http.StatusOK {
		t.Fatalf("/attribution status = %d", code)
	}
	var resp AttributionResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("/attribution JSON: %v\n%s", err, body)
	}
	if len(resp.PBoxes) != 2 {
		t.Fatalf("/attribution returned %d pboxes, want 2", len(resp.PBoxes))
	}
	if len(resp.Matrix) == 0 {
		t.Fatalf("/attribution matrix is empty:\n%s", body)
	}
	top := resp.Matrix[0]
	if top.CulpritLabel != "noisy" || top.VictimLabel != "victim" {
		t.Fatalf("top matrix entry blames %q → %q, want noisy → victim:\n%s",
			top.CulpritLabel, top.VictimLabel, body)
	}
	if top.Resource != "bufpool" {
		t.Fatalf("top matrix entry resource = %q, want bufpool", top.Resource)
	}
	if top.BlockedNs <= 0 || top.Detections == 0 {
		t.Fatalf("top matrix entry has no blocked time or detections: %+v", top)
	}
	if d, err := time.ParseDuration(top.Blocked); err != nil || d <= 0 {
		t.Fatalf("blocked %q did not round-trip to a positive duration (%v)", top.Blocked, err)
	}
}

// TestAttributedSeriesLabels is the label-cardinality contract: resource
// labels on the pbox_attributed_* families carry the names registered via
// Manager.NameResource, and keys without a name are rendered in the stable
// key-0x… form — raw pointer values never appear as bare label text.
func TestAttributedSeriesLabels(t *testing.T) {
	m, exp, advance := newTestWorld(t)
	srv := httptest.NewServer(exp)
	defer srv.Close()

	// Drive one interference round on an unnamed resource too.
	rule := core.DefaultRule()
	rule.Level = 0.5
	noisy, _ := m.Create(rule)
	victim, _ := m.Create(rule)
	m.Activate(noisy)
	m.Activate(victim)
	unnamed := core.ResourceKey(0xbeef)
	m.Update(noisy, unnamed, core.Hold)
	m.Update(victim, unnamed, core.Prepare)
	advance(5 * time.Millisecond)
	m.Update(noisy, unnamed, core.Unhold)
	m.Update(victim, unnamed, core.Enter)

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(body, `pbox_attributed_blocked_nanoseconds_total{culprit="1",victim="2",resource="bufpool"}`) {
		t.Fatalf("/metrics missing named attributed series:\n%s", body)
	}
	if !strings.Contains(body, `resource="key-0xbeef"`) {
		t.Fatalf("/metrics missing key-0x fallback label for unnamed resource:\n%s", body)
	}
	// No attributed series may carry a bare numeric resource label.
	bare := regexp.MustCompile(`resource="\d`)
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "pbox_attributed_") && bare.MatchString(line) {
			t.Fatalf("attributed series leaks a raw key as resource label: %s", line)
		}
	}
	if !strings.Contains(body, "pbox_attributed_detections_total{") {
		t.Fatalf("/metrics missing attributed detections family:\n%s", body)
	}
}

// TestAttributedSeriesCardinalityCap drives more triples than the series cap
// and checks the overflow is counted instead of exported.
func TestAttributedSeriesCardinalityCap(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg)
	for i := 0; i < maxAttrSeries+37; i++ {
		c.Blocked(1, 2, core.ResourceKey(uintptr(i+1)), 100)
	}
	c.attrMu.Lock()
	n := len(c.attrSeries)
	c.attrMu.Unlock()
	if n != maxAttrSeries {
		t.Fatalf("collector caches %d triples, want cap %d", n, maxAttrSeries)
	}
	if got := c.attrDropped.Value(); got != 37 {
		t.Fatalf("dropped counter = %d, want 37", got)
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	if got := strings.Count(b.String(), "pbox_attributed_blocked_nanoseconds_total{"); got != maxAttrSeries {
		t.Fatalf("exported %d blocked series, want %d", got, maxAttrSeries)
	}
	if !strings.Contains(b.String(), "pbox_attributed_series_dropped_total 37") {
		t.Fatalf("missing dropped-series counter in exposition:\n%s", b.String())
	}
}

// TestStatusEndpointsDuringChurn hammers /pboxes and /attribution while
// pBoxes are created, driven, and released concurrently. Run under -race in
// CI, it is the consistency check for the combined Status accessor: the
// endpoints must never observe a half-updated manager.
func TestStatusEndpointsDuringChurn(t *testing.T) {
	reg := NewRegistry()
	col := NewCollector(reg)
	opts := core.Options{
		Observer:    col,
		Attribution: true,
		TraceSize:   64,
		MinPenalty:  10 * time.Microsecond,
		MaxPenalty:  time.Millisecond,
		Sleep:       func(time.Duration) {},
	}
	m := core.NewManager(opts)
	col.AttachNamer(m)
	key := core.ResourceKey(0x11)
	m.NameResource(key, "churn_lock")
	exp := NewExporter(reg, m)
	srv := httptest.NewServer(exp)
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Churner: short-lived noisy/victim pairs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rule := core.DefaultRule()
		rule.Level = 0.1
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			noisy, _ := m.Create(rule)
			victim, _ := m.Create(rule)
			m.SetLabel(noisy, fmt.Sprintf("noisy-%d", i))
			m.Activate(noisy)
			m.Activate(victim)
			m.Update(noisy, key, core.Hold)
			m.Update(victim, key, core.Prepare)
			m.Update(noisy, key, core.Unhold)
			m.Update(victim, key, core.Enter)
			m.Freeze(victim)
			m.Release(noisy)
			m.Release(victim)
		}
	}()
	// Readers: both JSON status endpoints plus the metrics scrape.
	for _, path := range []string{"/pboxes", "/attribution", "/metrics"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				if path == "/attribution" {
					var ar AttributionResponse
					if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
						t.Errorf("decode %s: %v", path, err)
					}
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(path)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}
