package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same (name, labels) returns the same handle.
	if reg.Counter("reqs_total", "requests") != c {
		t.Fatal("Counter lookup did not return the existing series")
	}
	g := reg.Gauge("live", "live things")
	g.Set(10)
	g.Dec()
	g.Add(-2)
	g.Inc()
	if got := g.Value(); got != 8 {
		t.Fatalf("gauge = %d, want 8", got)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("ev_total", "events", Label{"event", "ENTER"})
	b := reg.Counter("ev_total", "events", Label{"event", "HOLD"})
	if a == b {
		t.Fatal("different label values must give different series")
	}
	a.Add(3)
	b.Add(7)
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`ev_total{event="ENTER"} 3`,
		`ev_total{event="HOLD"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE ev_total counter") != 1 {
		t.Fatalf("family header should appear exactly once:\n%s", out)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge should panic")
		}
	}()
	reg.Gauge("x_total", "x")
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "latency",
		[]time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(500 * time.Microsecond) // bucket le=0.001
	h.Observe(time.Millisecond)       // le is inclusive: still le=0.001
	h.Observe(5 * time.Millisecond)   // le=0.01
	h.Observe(time.Second)            // +Inf overflow
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	if want := 1006500 * time.Microsecond; h.Sum() != want {
		t.Fatalf("Sum = %v, want %v", h.Sum(), want)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.001"} 2`,
		`lat_seconds_bucket{le="0.01"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramLabelsMergeWithLe(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("op_seconds", "op latency", nil, Label{"op", "get"})
	h.Observe(time.Microsecond)
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	if !strings.Contains(out, `op_seconds_bucket{op="get",le="1e-05"} 1`) {
		t.Fatalf("labeled bucket line wrong:\n%s", out)
	}
	if !strings.Contains(out, `op_seconds_count{op="get"} 1`) {
		t.Fatalf("labeled count line wrong:\n%s", out)
	}
}

// TestPrometheusTextWellFormed line-scans the full output: every non-comment
// line must be "name{labels} value" with balanced quotes, every family must
// have HELP and TYPE headers, and histogram buckets must be cumulative.
func TestPrometheusTextWellFormed(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "a").Add(2)
	reg.Gauge("b", "b gauge", Label{"x", "1"}).Set(-3)
	h := reg.Histogram("c_seconds", "c latency", nil)
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * 37 * time.Microsecond)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)

	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	var prevBucket int64 = -1
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line %q", line)
		}
		// name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %q has no value", line)
		}
		id, val := line[:sp], line[sp+1:]
		if _, err := parseNumber(val); err != nil {
			t.Fatalf("line %q: bad value %q: %v", line, val, err)
		}
		if i := strings.IndexByte(id, '{'); i >= 0 {
			if !strings.HasSuffix(id, "}") {
				t.Fatalf("line %q: unbalanced label braces", line)
			}
			if strings.Count(id, `"`)%2 != 0 {
				t.Fatalf("line %q: unbalanced quotes", line)
			}
		}
		if strings.HasPrefix(id, "c_seconds_bucket") {
			n, _ := parseNumber(val)
			if int64(n) < prevBucket {
				t.Fatalf("bucket counts not cumulative: %d after %d", int64(n), prevBucket)
			}
			prevBucket = int64(n)
		}
	}
	if prevBucket != 100 {
		t.Fatalf("+Inf bucket = %d, want 100", prevBucket)
	}
}

func parseNumber(s string) (float64, error) {
	var f float64
	_, err := fmt.Sscanf(s, "%g", &f)
	return f, err
}

func TestRegistryConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n_total", "n")
	h := reg.Histogram("d_seconds", "d", nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(time.Duration(i) * time.Microsecond)
				// Concurrent renders must not race with updates.
				if i%250 == 0 {
					reg.WritePrometheus(&bytes.Buffer{})
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
