package telemetry

import (
	"net/http"
	"time"

	"pbox/internal/flightrec"
)

// dumpTimeout bounds how long a /flightrec/dump request waits for the
// recorder's writer goroutine.
const dumpTimeout = 10 * time.Second

// AttachFlightRecorder mounts the flight-recorder API on the exporter:
//
//	/flightrec/incidents      JSON list of incident bundle ids, oldest first
//	/flightrec/incident?id=X  one bundle
//	/flightrec/dump           POST: freeze a bundle now (operator dump);
//	                          ?precise=1 forces the exact flush-on-read
//	                          capture instead of the epoch snapshot
//
// Call once during wiring, before the exporter starts serving.
func (e *Exporter) AttachFlightRecorder(rec *flightrec.Recorder) {
	e.mux.HandleFunc("/flightrec/incidents", func(w http.ResponseWriter, r *http.Request) {
		ids, err := rec.Incidents()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if ids == nil {
			ids = []string{}
		}
		writeJSON(w, ids)
	})
	e.mux.HandleFunc("/flightrec/incident", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if id == "" {
			http.Error(w, "missing id parameter", http.StatusBadRequest)
			return
		}
		inc, err := rec.Incident(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, inc)
	})
	e.mux.HandleFunc("/flightrec/dump", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		reason := r.URL.Query().Get("reason")
		if reason == "" {
			reason = "operator dump"
		}
		var id string
		var err error
		if r.URL.Query().Get("precise") != "" {
			id, err = rec.DumpPrecise(reason, dumpTimeout)
		} else {
			id, err = rec.Dump(reason, dumpTimeout)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, map[string]string{"id": id})
	})
}
