package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"pbox/internal/core"
	"pbox/internal/wire"
)

// maxTraceWait bounds how long a /trace long-poll may block.
const maxTraceWait = 30 * time.Second

// PBoxStatus is the wire form of one pBox in the /pboxes response:
// the live defer ratio, isolation goal, and penalty totals of
// core.Snapshot, with durations as Go duration strings so the JSON stays
// readable in curl output and round-trips exactly.
type PBoxStatus struct {
	ID                int     `json:"id"`
	Label             string  `json:"label,omitempty"`
	State             string  `json:"state"`
	Goal              float64 `json:"goal"`
	Metric            string  `json:"metric"`
	Activities        int     `json:"activities"`
	TotalDefer        string  `json:"total_defer"`
	TotalExec         string  `json:"total_exec"`
	DeferRatio        float64 `json:"defer_ratio"`
	PenaltiesReceived int     `json:"penalties_received"`
	PenaltyServed     string  `json:"penalty_served"`
}

// statusFromSnapshot converts a manager snapshot to its wire form.
func statusFromSnapshot(s core.Snapshot) PBoxStatus {
	return PBoxStatus{
		ID:                s.ID,
		Label:             s.Label,
		State:             s.State.String(),
		Goal:              s.Goal,
		Metric:            s.Metric.String(),
		Activities:        s.Activities,
		TotalDefer:        s.TotalDefer.String(),
		TotalExec:         s.TotalExec.String(),
		DeferRatio:        s.InterferenceLevel,
		PenaltiesReceived: s.PenaltiesReceived,
		PenaltyServed:     s.PenaltyTotal.String(),
	}
}

// AttributionEntry is the wire form of one culprit↔victim ledger record in
// the /attribution response.
type AttributionEntry struct {
	CulpritID        int    `json:"culprit_id"`
	CulpritLabel     string `json:"culprit_label,omitempty"`
	VictimID         int    `json:"victim_id"`
	VictimLabel      string `json:"victim_label,omitempty"`
	Key              uint64 `json:"key"`
	Resource         string `json:"resource,omitempty"`
	Blocked          string `json:"blocked"`
	BlockedNs        int64  `json:"blocked_ns"`
	Detections       int64  `json:"detections"`
	Actions          int64  `json:"actions"`
	PenaltyScheduled string `json:"penalty_scheduled"`
	PenaltyServed    string `json:"penalty_served"`
}

// attributionEntry converts a ledger record to its wire form.
func attributionEntry(r core.AttributionRecord) AttributionEntry {
	return AttributionEntry{
		CulpritID:        r.CulpritID,
		CulpritLabel:     r.CulpritLabel,
		VictimID:         r.VictimID,
		VictimLabel:      r.VictimLabel,
		Key:              uint64(r.Key),
		Resource:         r.Resource,
		Blocked:          r.Blocked.String(),
		BlockedNs:        int64(r.Blocked),
		Detections:       r.Detections,
		Actions:          r.Actions,
		PenaltyScheduled: r.PenaltyScheduled.String(),
		PenaltyServed:    r.PenaltyServed.String(),
	}
}

// AttributionResponse is the /attribution payload: the combined consistent
// view — pBoxes and the culprit↔victim matrix from one published snapshot —
// plus the ledger's overflow count and the snapshot's epoch metadata.
type AttributionResponse struct {
	PBoxes  []PBoxStatus       `json:"pboxes"`
	Matrix  []AttributionEntry `json:"matrix"`
	Dropped int64              `json:"dropped"`
	// SnapshotEpoch and SnapshotAge identify the published view the
	// response was built from (bounded staleness, DESIGN.md §12).
	SnapshotEpoch uint64 `json:"snapshot_epoch,omitempty"`
	SnapshotAge   string `json:"snapshot_age,omitempty"`
}

// TraceEvent is the wire form of one trace-ring entry in the /trace
// response.
type TraceEvent struct {
	Seq   uint64 `json:"seq"`
	At    string `json:"at"`
	PBox  int    `json:"pbox"`
	Key   uint64 `json:"key"`
	Name  string `json:"name,omitempty"`
	What  string `json:"what"`
	Extra string `json:"extra,omitempty"`
}

// TraceResponse is the /trace payload: the entries after the requested
// sequence number and the cursor to pass as ?since= on the next poll.
type TraceResponse struct {
	Next    uint64       `json:"next"`
	Entries []TraceEvent `json:"entries"`
}

// Exporter serves the telemetry HTTP API for one manager:
//
//	/metrics   Prometheus text exposition of the registry + pbox_self_*
//	/status    JSON: the epoch-published snapshot (pBoxes, matrix,
//	           resources, trace cursor) with epoch/age metadata
//	/self      JSON: manager self-telemetry (core.SelfStats)
//	/pboxes    JSON: live per-pBox defer ratio, isolation goal, penalties
//	/trace     JSON: trace-ring snapshot; ?since=N&wait=5s long-polls for
//	           entries newer than sequence N
//
// Every manager-state endpoint reads the epoch snapshot (DESIGN.md §12):
// serving a request costs one atomic pointer load, never a shard lock or a
// spool flush, so any polling frequency is interference-free.
type Exporter struct {
	reg *Registry
	mgr *core.Manager
	mux *http.ServeMux
	// wireSrv is the attached wire-ingestion server (AttachWire); its
	// counters render as the pbox_self_wire_* series and the /self "wire"
	// section.
	wireSrv *wire.Server
}

// NewExporter builds the exporter. reg may be nil when only /pboxes and
// /trace are wanted; mgr may be nil when only /metrics is wanted.
func NewExporter(reg *Registry, mgr *core.Manager) *Exporter {
	e := &Exporter{reg: reg, mgr: mgr, mux: http.NewServeMux()}
	e.mux.HandleFunc("/", e.handleIndex)
	e.mux.HandleFunc("/metrics", e.handleMetrics)
	e.mux.HandleFunc("/status", e.handleStatus)
	e.mux.HandleFunc("/self", e.handleSelf)
	e.mux.HandleFunc("/pboxes", e.handlePBoxes)
	e.mux.HandleFunc("/attribution", e.handleAttribution)
	e.mux.HandleFunc("/trace", e.handleTrace)
	return e
}

// Handler returns the HTTP handler serving the telemetry API.
func (e *Exporter) Handler() http.Handler { return e.mux }

// ServeHTTP implements http.Handler directly so an Exporter can be mounted
// as-is.
func (e *Exporter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	e.mux.ServeHTTP(w, r)
}

func (e *Exporter) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "pbox telemetry")
	fmt.Fprintln(w, "  /metrics           Prometheus text metrics (incl. pbox_self_* self-telemetry)")
	fmt.Fprintln(w, "  /status            epoch snapshot: pboxes, matrix, resources + age (JSON)")
	fmt.Fprintln(w, "  /self              manager self-telemetry (JSON)")
	fmt.Fprintln(w, "  /pboxes            live per-pBox accounting (JSON)")
	fmt.Fprintln(w, "  /attribution       culprit↔victim interference matrix (JSON)")
	fmt.Fprintln(w, "  /trace             trace ring snapshot (JSON)")
	fmt.Fprintln(w, "  /trace?since=N&wait=5s  long-poll for entries newer than seq N")
}

func (e *Exporter) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if e.reg == nil && e.mgr == nil {
		http.Error(w, "metrics registry not enabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if e.reg != nil {
		e.reg.WritePrometheus(w)
	}
	if e.mgr != nil {
		writeSelfMetrics(w, e.mgr.SelfStats())
	}
	if e.wireSrv != nil {
		writeWireMetrics(w, e.wireSrv.Stats())
	}
}

func (e *Exporter) handlePBoxes(w http.ResponseWriter, r *http.Request) {
	if e.mgr == nil {
		http.Error(w, "manager not attached", http.StatusNotFound)
		return
	}
	snaps := e.mgr.StatusView().Snapshots
	out := make([]PBoxStatus, 0, len(snaps))
	for _, s := range snaps {
		out = append(out, statusFromSnapshot(s))
	}
	writeJSON(w, out)
}

func (e *Exporter) handleAttribution(w http.ResponseWriter, r *http.Request) {
	if e.mgr == nil {
		http.Error(w, "manager not attached", http.StatusNotFound)
		return
	}
	st := e.mgr.StatusView()
	resp := AttributionResponse{
		PBoxes:        make([]PBoxStatus, 0, len(st.Snapshots)),
		Matrix:        make([]AttributionEntry, 0, len(st.Attribution)),
		Dropped:       st.AttributionDropped,
		SnapshotEpoch: st.Epoch,
		SnapshotAge:   e.mgr.ViewAge(st).String(),
	}
	for _, s := range st.Snapshots {
		resp.PBoxes = append(resp.PBoxes, statusFromSnapshot(s))
	}
	for _, rec := range st.Attribution {
		resp.Matrix = append(resp.Matrix, attributionEntry(rec))
	}
	writeJSON(w, resp)
}

func (e *Exporter) handleTrace(w http.ResponseWriter, r *http.Request) {
	if e.mgr == nil {
		http.Error(w, "manager not attached", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad since parameter", http.StatusBadRequest)
			return
		}
		since = n
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			http.Error(w, "bad wait parameter", http.StatusBadRequest)
			return
		}
		if d > maxTraceWait {
			d = maxTraceWait
		}
		wait = d
	}

	// TraceView reads the ring without the flush-on-read spool sweep
	// TraceSince performs: a tailing client must not flush other workers'
	// spools on every poll. Spooled events appear once a write-side flush
	// trigger lands them in the ring (bounded by the spool capacity).
	entries, next := e.mgr.TraceView(since)
	if len(entries) == 0 && wait > 0 {
		// Long poll: block until a newer entry lands, the client leaves,
		// or the wait expires, then re-read.
		notify := e.mgr.TraceNotify(since)
		if notify != nil {
			timer := time.NewTimer(wait)
			select {
			case <-notify:
			case <-timer.C:
			case <-r.Context().Done():
				timer.Stop()
				return
			}
			timer.Stop()
			entries, next = e.mgr.TraceView(since)
		}
	}

	resp := TraceResponse{Next: next, Entries: make([]TraceEvent, 0, len(entries))}
	for _, t := range entries {
		ev := TraceEvent{
			Seq:  t.Seq,
			At:   t.At.String(),
			PBox: t.PBox,
			Key:  uint64(t.Key),
			Name: t.Name,
			What: t.What,
		}
		if t.Extra != 0 {
			ev.Extra = t.Extra.String()
		}
		resp.Entries = append(resp.Entries, ev)
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
