package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"pbox/internal/core"
)

// Collector implements core.Observer by folding manager hook callbacks into
// registry metrics. Every callback touches only pre-registered atomic
// handles, so it is safe to run under the manager lock (where most hooks
// fire) and adds no allocations to the event hot path.
type Collector struct {
	reg *Registry

	created    *Counter
	released   *Counter
	live       *Gauge
	events     [4]*Counter // indexed by core.EventType
	activities *Counter
	detections *Counter
	penalties  *Counter

	activityLatency *Histogram
	activityDefer   *Histogram
	penaltyServed   *Histogram

	deferNsTotal     *Counter
	execNsTotal      *Counter
	penaltyNsTotal   *Counter
	penaltyScheduled *Counter

	// Attributed-series state (attribution.go): the per-triple handle cache
	// behind the pbox_attributed_* culprit↔victim matrix.
	namer       atomic.Value // namerBox
	attrMu      sync.Mutex
	attrSeries  map[attrTriple]*attrHandles
	attrDropped *Counter
}

// NewCollector registers the pBox metric families in reg and returns the
// observer to pass as core.Options.Observer.
func NewCollector(reg *Registry) *Collector {
	c := &Collector{
		reg:      reg,
		created:  reg.Counter("pbox_created_total", "pBoxes created (create_pbox calls)"),
		released: reg.Counter("pbox_released_total", "pBoxes released (release_pbox calls)"),
		live:     reg.Gauge("pbox_live", "pBoxes currently alive"),
		activities: reg.Counter("pbox_activities_total",
			"activities completed (freeze_pbox calls)"),
		detections: reg.Counter("pbox_detections_total",
			"detection verdicts reached by Algorithm 1 or the pBox-level monitor"),
		penalties: reg.Counter("pbox_penalties_total",
			"penalty actions scheduled on noisy pBoxes"),
		activityLatency: reg.Histogram("pbox_activity_seconds",
			"end-to-end activity execution time", nil),
		activityDefer: reg.Histogram("pbox_activity_defer_seconds",
			"per-activity deferring time", nil),
		penaltyServed: reg.Histogram("pbox_penalty_served_seconds",
			"penalty delays served on noisy goroutines", nil),
		deferNsTotal: reg.Counter("pbox_defer_nanoseconds_total",
			"cumulative deferring time across all activities"),
		execNsTotal: reg.Counter("pbox_exec_nanoseconds_total",
			"cumulative execution time across all activities"),
		penaltyNsTotal: reg.Counter("pbox_penalty_served_nanoseconds_total",
			"cumulative served penalty time"),
		penaltyScheduled: reg.Counter("pbox_penalty_scheduled_nanoseconds_total",
			"cumulative scheduled penalty time"),
		attrSeries: make(map[attrTriple]*attrHandles),
		attrDropped: reg.Counter("pbox_attributed_series_dropped_total",
			"attribution triples not exported because the series cap was reached"),
	}
	for _, ev := range []core.EventType{core.Prepare, core.Enter, core.Hold, core.Unhold} {
		c.events[ev] = reg.Counter("pbox_events_total",
			"state events received by the manager (update_pbox calls)",
			Label{Name: "event", Value: ev.String()})
	}
	return c
}

// Registry returns the registry the collector reports into.
func (c *Collector) Registry() *Registry { return c.reg }

// PBoxCreated implements core.Observer.
func (c *Collector) PBoxCreated(id int, rule core.IsolationRule) {
	c.created.Inc()
	c.live.Inc()
}

// PBoxReleased implements core.Observer.
func (c *Collector) PBoxReleased(id int) {
	c.released.Inc()
	c.live.Dec()
}

// StateEvent implements core.Observer.
func (c *Collector) StateEvent(pboxID int, key core.ResourceKey, ev core.EventType) {
	if ev >= 0 && int(ev) < len(c.events) {
		c.events[ev].Inc()
	}
}

// ActivityEnd implements core.Observer.
func (c *Collector) ActivityEnd(pboxID int, deferNs, execNs int64) {
	c.activities.Inc()
	c.deferNsTotal.Add(deferNs)
	c.execNsTotal.Add(execNs)
	c.activityLatency.Observe(time.Duration(execNs))
	if deferNs > 0 {
		c.activityDefer.Observe(time.Duration(deferNs))
	}
}

// Detection implements core.Observer.
func (c *Collector) Detection(noisyID, victimID int, key core.ResourceKey, projected float64) {
	c.detections.Inc()
	c.attrDetection(noisyID, victimID, key)
}

// PenaltyAction implements core.Observer.
func (c *Collector) PenaltyAction(noisyID, victimID int, key core.ResourceKey, policy core.PolicyKind, length time.Duration) {
	c.penalties.Inc()
	c.penaltyScheduled.Add(int64(length))
	c.attrAction(noisyID, victimID, key, length)
}

// PenaltyServed implements core.Observer.
func (c *Collector) PenaltyServed(pboxID int, d time.Duration) {
	c.penaltyServed.Observe(d)
	c.penaltyNsTotal.Add(int64(d))
}

// compile-time interface check
var _ core.Observer = (*Collector)(nil)
