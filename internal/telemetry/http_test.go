package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"pbox/internal/core"
)

// newTestWorld builds a manager with tracing, attribution, and a collector,
// drives one small noisy/victim scenario through it (fake clock, recorded
// sleeps), and returns the exporter serving it plus a function advancing the
// fake clock.
func newTestWorld(t *testing.T) (*core.Manager, *Exporter, func(time.Duration)) {
	t.Helper()
	var now int64
	reg := NewRegistry()
	col := NewCollector(reg)
	opts := core.Options{
		Observer:    col,
		Attribution: true,
		TraceSize:   128,
		Now:         func() int64 { return now },
		Sleep:       func(d time.Duration) { now += int64(d) },
	}
	opts.MinPenalty = 10 * time.Microsecond
	opts.MaxPenalty = 100 * time.Millisecond
	m := core.NewManager(opts)
	col.AttachNamer(m)
	m.NameResource(core.ResourceKey(1), "bufpool")

	rule := core.DefaultRule()
	rule.Level = 0.5
	noisy, _ := m.Create(rule)
	m.SetLabel(noisy, "noisy")
	victim, _ := m.Create(rule)
	m.SetLabel(victim, "victim")
	m.Activate(noisy)
	m.Activate(victim)
	m.Update(noisy, core.ResourceKey(1), core.Hold)
	m.Update(victim, core.ResourceKey(1), core.Prepare)
	now += int64(5 * time.Millisecond)
	m.Update(noisy, core.ResourceKey(1), core.Unhold)
	m.Update(victim, core.ResourceKey(1), core.Enter)
	m.Freeze(victim)

	return m, NewExporter(reg, m), func(d time.Duration) { now += int64(d) }
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	_, exp, _ := newTestWorld(t)
	srv := httptest.NewServer(exp)
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"pbox_created_total 2",
		"pbox_live 2",
		`pbox_events_total{event="HOLD"} 1`,
		"pbox_activities_total 1",
		"# TYPE pbox_activity_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	// Detection and penalty counts depend on whether the pBox-level monitor
	// also fires at Freeze; they must be nonzero but the exact count is a
	// scenario detail.
	for _, name := range []string{"pbox_detections_total", "pbox_penalties_total"} {
		if strings.Contains(body, name+" 0\n") || !strings.Contains(body, name+" ") {
			t.Fatalf("/metrics %s should be nonzero:\n%s", name, body)
		}
	}
}

func TestPBoxesEndpointJSONRoundTrips(t *testing.T) {
	_, exp, _ := newTestWorld(t)
	srv := httptest.NewServer(exp)
	defer srv.Close()

	code, body := get(t, srv, "/pboxes")
	if code != http.StatusOK {
		t.Fatalf("/pboxes status = %d", code)
	}
	var statuses []PBoxStatus
	if err := json.Unmarshal([]byte(body), &statuses); err != nil {
		t.Fatalf("/pboxes JSON: %v\n%s", err, body)
	}
	if len(statuses) != 2 {
		t.Fatalf("/pboxes returned %d pboxes, want 2", len(statuses))
	}
	byLabel := map[string]PBoxStatus{}
	for _, s := range statuses {
		byLabel[s.Label] = s
	}
	noisy, ok := byLabel["noisy"]
	if !ok {
		t.Fatalf("no pbox labeled noisy in %s", body)
	}
	if noisy.Goal != 0.5 {
		t.Fatalf("noisy goal = %v, want 0.5", noisy.Goal)
	}
	if noisy.PenaltiesReceived == 0 {
		t.Fatal("noisy pbox shows zero penalties received")
	}
	served, err := time.ParseDuration(noisy.PenaltyServed)
	if err != nil || served <= 0 {
		t.Fatalf("penalty_served %q did not round-trip to a positive duration (%v)", noisy.PenaltyServed, err)
	}
	victim := byLabel["victim"]
	if victim.Activities != 1 {
		t.Fatalf("victim activities = %d, want 1", victim.Activities)
	}
	if d, err := time.ParseDuration(victim.TotalDefer); err != nil || d <= 0 {
		t.Fatalf("victim total_defer %q did not round-trip to a positive duration (%v)", victim.TotalDefer, err)
	}
}

func TestTraceEndpointSnapshotAndCursor(t *testing.T) {
	_, exp, _ := newTestWorld(t)
	srv := httptest.NewServer(exp)
	defer srv.Close()

	code, body := get(t, srv, "/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status = %d", code)
	}
	var tr TraceResponse
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("/trace JSON: %v\n%s", err, body)
	}
	if len(tr.Entries) == 0 || tr.Next == 0 {
		t.Fatalf("/trace returned %d entries, next=%d", len(tr.Entries), tr.Next)
	}
	var sawName, sawAction bool
	for _, e := range tr.Entries {
		if e.Name == "bufpool" {
			sawName = true
		}
		if strings.HasPrefix(e.What, "action:") {
			sawAction = true
		}
	}
	if !sawName || !sawAction {
		t.Fatalf("trace entries missing named resource (%v) or action (%v):\n%s", sawName, sawAction, body)
	}

	// Polling from the cursor returns nothing new.
	code, body = get(t, srv, "/trace?since="+uintStr(tr.Next))
	if code != http.StatusOK {
		t.Fatalf("/trace?since status = %d", code)
	}
	var tr2 TraceResponse
	if err := json.Unmarshal([]byte(body), &tr2); err != nil {
		t.Fatalf("/trace?since JSON: %v", err)
	}
	if len(tr2.Entries) != 0 || tr2.Next != tr.Next {
		t.Fatalf("caught-up poll returned %d entries, next=%d (want 0, %d)", len(tr2.Entries), tr2.Next, tr.Next)
	}
}

func TestTraceEndpointLongPollDelivers(t *testing.T) {
	m, exp, _ := newTestWorld(t)
	srv := httptest.NewServer(exp)
	defer srv.Close()

	_, body := get(t, srv, "/trace")
	var tr TraceResponse
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("/trace JSON: %v", err)
	}

	// Fire an event shortly after the long poll parks.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(50 * time.Millisecond)
		p, _ := m.Create(core.DefaultRule())
		m.Activate(p)
		m.Update(p, core.ResourceKey(1), core.Prepare)
	}()

	start := time.Now()
	code, body := get(t, srv, "/trace?since="+uintStr(tr.Next)+"&wait=5s")
	elapsed := time.Since(start)
	<-done
	if code != http.StatusOK {
		t.Fatalf("long poll status = %d", code)
	}
	var tr3 TraceResponse
	if err := json.Unmarshal([]byte(body), &tr3); err != nil {
		t.Fatalf("long poll JSON: %v", err)
	}
	if len(tr3.Entries) == 0 {
		t.Fatalf("long poll returned no entries:\n%s", body)
	}
	if elapsed >= 5*time.Second {
		t.Fatalf("long poll waited the full timeout (%v) instead of waking on the event", elapsed)
	}
	for _, e := range tr3.Entries {
		if e.Seq <= tr.Next {
			t.Fatalf("long poll returned stale entry seq=%d <= %d", e.Seq, tr.Next)
		}
	}
}

func TestTraceEndpointBadParams(t *testing.T) {
	_, exp, _ := newTestWorld(t)
	srv := httptest.NewServer(exp)
	defer srv.Close()
	if code, _ := get(t, srv, "/trace?since=banana"); code != http.StatusBadRequest {
		t.Fatalf("bad since: status = %d, want 400", code)
	}
	if code, _ := get(t, srv, "/trace?wait=banana"); code != http.StatusBadRequest {
		t.Fatalf("bad wait: status = %d, want 400", code)
	}
}

func TestExporterNilPieces(t *testing.T) {
	srv := httptest.NewServer(NewExporter(nil, nil))
	defer srv.Close()
	if code, _ := get(t, srv, "/metrics"); code != http.StatusNotFound {
		t.Fatalf("nil registry /metrics status = %d, want 404", code)
	}
	if code, _ := get(t, srv, "/pboxes"); code != http.StatusNotFound {
		t.Fatalf("nil manager /pboxes status = %d, want 404", code)
	}
	if code, _ := get(t, srv, "/"); code != http.StatusOK {
		t.Fatal("index should still serve")
	}
}

func uintStr(v uint64) string { return strconv.FormatUint(v, 10) }
