package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pbox/internal/core"
	"pbox/internal/flightrec"
)

// TestFlightRecorderEndpoints wires the full observer chain — recorder in
// front of the collector — and exercises dump/list/fetch over HTTP.
func TestFlightRecorderEndpoints(t *testing.T) {
	var now int64
	reg := NewRegistry()
	col := NewCollector(reg)
	rec := flightrec.New(flightrec.Config{
		Dir: t.TempDir(),
		// The first verdict captures (the cooldown window starts empty);
		// the long cooldown keeps later verdicts from adding more.
		Cooldown: time.Hour,
		Next:     col,
	})
	defer rec.Close()
	opts := core.Options{
		Observer:    rec,
		Attribution: true,
		Now:         func() int64 { return now },
		Sleep:       func(d time.Duration) { now += int64(d) },
		MinPenalty:  10 * time.Microsecond,
		MaxPenalty:  100 * time.Millisecond,
	}
	m := core.NewManager(opts)
	col.AttachNamer(m)
	rec.AttachManager(m)
	key := core.ResourceKey(0x5)
	m.NameResource(key, "wal_lock")

	rule := core.DefaultRule()
	rule.Level = 0.5
	noisy, _ := m.Create(rule)
	m.SetLabel(noisy, "noisy")
	victim, _ := m.Create(rule)
	m.Activate(noisy)
	m.Activate(victim)
	m.Update(noisy, key, core.Hold)
	m.Update(victim, key, core.Prepare)
	now += int64(5 * time.Millisecond)
	m.Update(noisy, key, core.Unhold)
	m.Update(victim, key, core.Enter)

	exp := NewExporter(reg, m)
	exp.AttachFlightRecorder(rec)
	srv := httptest.NewServer(exp)
	defer srv.Close()

	// GET on dump is rejected.
	if resp, err := http.Get(srv.URL + "/flightrec/dump"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /flightrec/dump status = %d, want 405", resp.StatusCode)
	}

	resp, err := http.Post(srv.URL+"/flightrec/dump?reason=test", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var dumped map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&dumped); err != nil {
		t.Fatalf("dump response JSON: %v", err)
	}
	resp.Body.Close()
	if dumped["id"] == "" {
		t.Fatal("dump returned no incident id")
	}

	code, body := get(t, srv, "/flightrec/incidents")
	if code != http.StatusOK {
		t.Fatalf("/flightrec/incidents status = %d", code)
	}
	var ids []string
	if err := json.Unmarshal([]byte(body), &ids); err != nil {
		t.Fatalf("incidents JSON: %v\n%s", err, body)
	}
	// One verdict-triggered bundle from the scenario plus the manual dump,
	// oldest first.
	if len(ids) != 2 || ids[1] != dumped["id"] {
		t.Fatalf("incidents = %v, want the manual dump %s last of two", ids, dumped["id"])
	}

	code, body = get(t, srv, "/flightrec/incident?id="+dumped["id"])
	if code != http.StatusOK {
		t.Fatalf("/flightrec/incident status = %d", code)
	}
	var inc flightrec.Incident
	if err := json.Unmarshal([]byte(body), &inc); err != nil {
		t.Fatalf("incident JSON: %v", err)
	}
	if inc.Trigger != "manual" || inc.Reason != "test" {
		t.Fatalf("incident trigger=%q reason=%q", inc.Trigger, inc.Reason)
	}
	if len(inc.Events) == 0 || len(inc.Attribution) == 0 {
		t.Fatalf("incident missing sections: events=%d attribution=%d", len(inc.Events), len(inc.Attribution))
	}

	if code, _ := get(t, srv, "/flightrec/incident"); code != http.StatusBadRequest {
		t.Fatalf("missing id: status = %d, want 400", code)
	}
	if code, _ := get(t, srv, "/flightrec/incident?id=nope"); code != http.StatusNotFound {
		t.Fatalf("unknown id: status = %d, want 404", code)
	}
}
