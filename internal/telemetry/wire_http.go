package telemetry

import (
	"io"

	"pbox/internal/wire"
)

// AttachWire connects the wire-ingestion server's admission counters to the
// exporter: /metrics gains the pbox_self_wire_* series and /self gains a
// "wire" section (both rendered from the server's atomics on each request).
// Call once during wiring, before the exporter starts serving.
func (e *Exporter) AttachWire(s *wire.Server) { e.wireSrv = s }

// WireSelf is the wire-tier section of the /self response: admission and
// shed counters of the batched binary ingestion front door (DESIGN.md §15).
type WireSelf struct {
	ConnsTotal  int64 `json:"conns_total"`
	ConnsActive int64 `json:"conns_active"`
	Frames      int64 `json:"frames"`
	Events      int64 `json:"events"`
	ShedConn    int64 `json:"shed_conn"`
	ShedGlobal  int64 `json:"shed_global"`
	Registers   int64 `json:"registers"`
	Pings       int64 `json:"pings"`
	BindRefused int64 `json:"bind_refused"`
	Errors      int64 `json:"errors"`
}

func wireSelf(st wire.Stats) *WireSelf {
	return &WireSelf{
		ConnsTotal:  st.ConnsTotal,
		ConnsActive: st.ConnsActive,
		Frames:      st.Frames,
		Events:      st.Events,
		ShedConn:    st.ShedConn,
		ShedGlobal:  st.ShedGlobal,
		Registers:   st.Registers,
		Pings:       st.Pings,
		BindRefused: st.BindRefused,
		Errors:      st.Errors,
	}
}

// writeWireMetrics renders the wire server's counters as the
// pbox_self_wire_* Prometheus series.
func writeWireMetrics(w io.Writer, st wire.Stats) {
	writeSelfCounter(w, "pbox_self_wire_conns_total", "Wire-protocol connections accepted.", st.ConnsTotal)
	writeSelfGauge(w, "pbox_self_wire_conns_active", "Wire-protocol connections currently open.", st.ConnsActive)
	writeSelfCounter(w, "pbox_self_wire_frames_total", "Wire frames decoded.", st.Frames)
	writeSelfCounter(w, "pbox_self_wire_events_total", "Wire event ops admitted and applied.", st.Events)
	writeSelfCounter(w, "pbox_self_wire_shed_conn_total", "Wire event ops shed by a per-connection token bucket.", st.ShedConn)
	writeSelfCounter(w, "pbox_self_wire_shed_global_total", "Wire event ops shed by the global event-rate ceiling.", st.ShedGlobal)
	writeSelfCounter(w, "pbox_self_wire_registers_total", "Wire tenants registered.", st.Registers)
	writeSelfCounter(w, "pbox_self_wire_pings_total", "Wire ping ops answered.", st.Pings)
	writeSelfCounter(w, "pbox_self_wire_bind_refused_total", "Wire tenant selects refused by a shared-thread penalty.", st.BindRefused)
	writeSelfCounter(w, "pbox_self_wire_errors_total", "Wire protocol errors (connection torn down).", st.Errors)
}
