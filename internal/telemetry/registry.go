// Package telemetry is the live observability subsystem of the pBox
// reproduction: a lightweight metrics registry (counters, gauges, and
// fixed-bucket latency histograms with atomic hot paths), a Collector that
// implements core.Observer to turn manager hook callbacks into metrics, and
// an HTTP exporter serving Prometheus-text /metrics, JSON /pboxes, and a
// long-polling /trace stream. The paper argues (Section 8) that the pBox
// event stream doubles as a diagnosis aid; this package makes that stream
// observable while a workload runs instead of via post-hoc trace dumps.
package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pbox/internal/stats"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// labelString renders labels in Prometheus text form: {a="x",b="y"}.
// Labels are rendered in the order given; callers use a consistent order.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// metricKind is the Prometheus metric type of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// series is one exported time series within a family.
type series interface {
	write(w io.Writer, name, labels string)
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	order  []string // label strings in registration order
	series map[string]series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Metric lookups take the registry lock once at
// registration; the returned handles update via atomics only.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup finds or creates the series for (name, labels), enforcing one kind
// per family. make constructs the series on first use.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label, mk func() series) series {
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %v and %v", name, f.kind, kind))
	}
	s := f.series[ls]
	if s == nil {
		s = mk()
		f.series[ls] = s
		f.order = append(f.order, ls)
	}
	return s
}

// Counter returns the monotonically increasing counter for (name, labels),
// creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, kindCounter, labels, func() series { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, kindGauge, labels, func() series { return &Gauge{} }).(*Gauge)
}

// Histogram returns the fixed-bucket duration histogram for (name, labels),
// creating it with the given bucket upper bounds on first use (nil selects
// DefaultBuckets). Bounds must be ascending.
func (r *Registry) Histogram(name, help string, buckets []time.Duration, labels ...Label) *Histogram {
	return r.lookup(name, help, kindHistogram, labels, func() series { return newHistogram(buckets) }).(*Histogram)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (families in registration order, series in registration
// order within a family).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, ls := range f.order {
			f.series[ls].write(w, f.name, ls)
		}
	}
}

// Counter is a monotonically increasing counter with an atomic hot path.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.v.Load())
}

// Gauge is a value that can go up and down, with an atomic hot path.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc and Dec move the gauge by ±1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, g.v.Load())
}

// Histogram is a fixed-bucket latency histogram. Observe is lock-free: it
// finds the bucket with a short linear scan (bucket counts are small and
// fixed) and updates three atomics. Exposition follows the Prometheus
// convention: cumulative _bucket{le="..."} series in seconds, plus _sum and
// _count.
type Histogram struct {
	bounds []time.Duration // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64  // one per bound, plus the +Inf overflow at the end
	sumNs  atomic.Int64
	total  atomic.Int64
}

func newHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be ascending")
		}
	}
	h := &Histogram{
		bounds: append([]time.Duration(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	return h
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.total.Add(1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

func (h *Histogram) write(w io.Writer, name, labels string) {
	// Merge the le label into any existing label set.
	open := "{"
	if labels != "" {
		open = labels[:len(labels)-1] + ","
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%sle=%q} %d\n", name, open, formatSeconds(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", name, open, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatSeconds(time.Duration(h.sumNs.Load())))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.total.Load())
}

// formatSeconds renders a duration as a seconds value without trailing
// zeros, the customary Prometheus form.
func formatSeconds(d time.Duration) string {
	s := fmt.Sprintf("%g", d.Seconds())
	return s
}

// DefaultBuckets returns the latency bucket bounds shared with the stats
// package, spanning the reproduction's µs-to-second operating range.
func DefaultBuckets() []time.Duration {
	return stats.DefaultLatencyBuckets()
}
