package telemetry

import (
	"fmt"
	"strconv"
	"time"

	"pbox/internal/core"
)

// This file extends the Collector with the attributed metric families: the
// culprit↔victim matrix of pbox_attributed_* series, one set of counters per
// (culprit, victim, resource) triple the manager reports. The plain counters
// in collector.go say "interference is happening"; these say who is doing it
// to whom, which is what an operator pages through when a latency SLO burns.

// ResourceNamer resolves a virtual resource key to the human-readable name
// registered with Manager.NameResource. *core.Manager satisfies it; the
// indirection keeps the Collector constructible before the manager (the
// usual wiring order, since the manager takes the observer in its Options).
type ResourceNamer interface {
	ResourceName(key core.ResourceKey) string
}

// maxAttrSeries caps how many distinct (culprit, victim, resource) triples
// the Collector will export. Label cardinality is a real operational hazard:
// a churny workload could otherwise mint unbounded series and bloat every
// scrape. Triples beyond the cap are counted in
// pbox_attributed_series_dropped_total instead of exported.
const maxAttrSeries = 512

// attrTriple keys the per-triple handle cache.
type attrTriple struct {
	culprit int
	victim  int
	key     core.ResourceKey
}

// attrHandles holds the registered counters for one triple.
type attrHandles struct {
	blocked    *Counter
	detections *Counter
	actions    *Counter
	scheduled  *Counter
	served     *Counter
}

// namerBox gives the atomic.Value a single concrete type to hold.
type namerBox struct{ n ResourceNamer }

// AttachNamer supplies the resource-name resolver used for the resource
// label of attributed series. Attach the manager right after NewManager;
// triples that surface before a namer is attached fall back to the raw key
// form "key-0x…". Safe to call concurrently with hook delivery.
func (c *Collector) AttachNamer(n ResourceNamer) {
	c.namer.Store(namerBox{n: n})
}

// resourceLabel renders the resource label for a key: the registered name
// when a namer is attached and knows the key, otherwise a stable hex form.
// Raw pointer-sized keys never leak into labels unformatted.
func (c *Collector) resourceLabel(key core.ResourceKey) string {
	if b, ok := c.namer.Load().(namerBox); ok && b.n != nil {
		if name := b.n.ResourceName(key); name != "" {
			return name
		}
	}
	return fmt.Sprintf("key-0x%x", uintptr(key))
}

// attrFor finds or registers the handles for a triple. The fast path is one
// short mutex hold and a struct-keyed map lookup — no allocation, safe under
// the manager lock where Blocked and Detection fire. Registration (first
// sighting of a triple) takes the registry lock and allocates the series.
// Returns nil when the series cap is reached.
func (c *Collector) attrFor(t attrTriple) *attrHandles {
	c.attrMu.Lock()
	defer c.attrMu.Unlock()
	h := c.attrSeries[t]
	if h != nil {
		return h
	}
	if len(c.attrSeries) >= maxAttrSeries {
		c.attrDropped.Inc()
		return nil
	}
	labels := []Label{
		{Name: "culprit", Value: strconv.Itoa(t.culprit)},
		{Name: "victim", Value: strconv.Itoa(t.victim)},
		{Name: "resource", Value: c.resourceLabel(t.key)},
	}
	h = &attrHandles{
		blocked: c.reg.Counter("pbox_attributed_blocked_nanoseconds_total",
			"wait time the culprit's holds inflicted on the victim, per resource", labels...),
		detections: c.reg.Counter("pbox_attributed_detections_total",
			"detection verdicts against the (culprit, victim, resource) triple", labels...),
		actions: c.reg.Counter("pbox_attributed_actions_total",
			"penalty actions scheduled against the triple", labels...),
		scheduled: c.reg.Counter("pbox_attributed_penalty_scheduled_nanoseconds_total",
			"penalty time scheduled against the triple", labels...),
		served: c.reg.Counter("pbox_attributed_penalty_served_nanoseconds_total",
			"penalty time actually served for the triple", labels...),
	}
	c.attrSeries[t] = h
	return h
}

// Blocked implements core.AttributionObserver.
func (c *Collector) Blocked(culpritID, victimID int, key core.ResourceKey, deferNs int64) {
	if h := c.attrFor(attrTriple{culprit: culpritID, victim: victimID, key: key}); h != nil {
		h.blocked.Add(deferNs)
	}
}

// PenaltyServedFor implements core.AttributionObserver.
func (c *Collector) PenaltyServedFor(culpritID, victimID int, key core.ResourceKey, d time.Duration) {
	if h := c.attrFor(attrTriple{culprit: culpritID, victim: victimID, key: key}); h != nil {
		h.served.Add(int64(d))
	}
}

// attrDetection and attrAction fold the per-triple dimension of the plain
// Detection/PenaltyAction hooks into the matrix.
func (c *Collector) attrDetection(noisyID, victimID int, key core.ResourceKey) {
	if h := c.attrFor(attrTriple{culprit: noisyID, victim: victimID, key: key}); h != nil {
		h.detections.Inc()
	}
}

func (c *Collector) attrAction(noisyID, victimID int, key core.ResourceKey, length time.Duration) {
	if h := c.attrFor(attrTriple{culprit: noisyID, victim: victimID, key: key}); h != nil {
		h.actions.Inc()
		h.scheduled.Add(int64(length))
	}
}

// compile-time interface check: a Collector passed as core.Options.Observer
// also receives the attribution stream.
var _ core.AttributionObserver = (*Collector)(nil)
