package isolation

import (
	"testing"
	"time"

	"pbox/internal/core"
)

func TestNullControllerIsInert(t *testing.T) {
	ctrl := NewNull()
	if ctrl.Name() != "none" {
		t.Fatalf("name = %q", ctrl.Name())
	}
	act := ctrl.ConnStart("x", KindForeground)
	act.Begin("read")
	act.Event(1, core.Prepare)
	act.Work(10 * time.Microsecond)
	act.IO(10 * time.Microsecond)
	if g := act.Gate(); g != 0 {
		t.Fatalf("gate = %v, want 0", g)
	}
	act.End(time.Millisecond)
	act.Close()
	ctrl.Shutdown()
}

func TestPBoxControllerLifecycleMapping(t *testing.T) {
	mgr := core.NewManager(core.Options{})
	ctrl := NewPBox(mgr, core.DefaultRule())
	if ctrl.Name() != "pbox" {
		t.Fatalf("name = %q", ctrl.Name())
	}
	act := ctrl.ConnStart("conn", KindForeground)
	p, ok := PBoxOf(act)
	if !ok {
		t.Fatal("PBoxOf failed on pbox activity")
	}
	if p.State() != core.StateStarted {
		t.Fatalf("state = %v, want started", p.State())
	}
	act.Begin("read")
	if p.State() != core.StateActive {
		t.Fatalf("state after Begin = %v, want active", p.State())
	}
	act.Event(7, core.Prepare)
	if mgr.Waiters(7) != 1 {
		t.Fatal("event not forwarded to manager")
	}
	act.Event(7, core.Enter)
	act.End(time.Millisecond)
	if p.State() != core.StateFrozen {
		t.Fatalf("state after End = %v, want frozen", p.State())
	}
	act.Close()
	if p.State() != core.StateDestroyed {
		t.Fatalf("state after Close = %v, want destroyed", p.State())
	}
	if mgr.Live() != 0 {
		t.Fatalf("live pboxes = %d", mgr.Live())
	}
}

func TestPBoxControllerBackgroundGetsRelaxedRule(t *testing.T) {
	mgr := core.NewManager(core.Options{})
	ctrl := NewPBox(mgr, core.DefaultRule())
	fg := ctrl.ConnStart("conn", KindForeground)
	bg := ctrl.ConnStart("purge", KindBackground)
	pf, _ := PBoxOf(fg)
	pb, _ := PBoxOf(bg)
	if pf.Rule().Level != 0.5 {
		t.Fatalf("foreground level = %v", pf.Rule().Level)
	}
	if pb.Rule().Level != 0.5*BackgroundLevelFactor {
		t.Fatalf("background level = %v, want %v", pb.Rule().Level, 0.5*BackgroundLevelFactor)
	}
}

func TestPBoxSharedControllerMarksShared(t *testing.T) {
	mgr := core.NewManager(core.Options{})
	ctrl := NewPBoxShared(mgr, core.DefaultRule())
	noisyAct := ctrl.ConnStart("noisy", KindForeground)
	victimAct := ctrl.ConnStart("victim", KindForeground)
	noisy, _ := PBoxOf(noisyAct)
	victim, _ := PBoxOf(victimAct)

	// Drive interference so a penalty lands on the noisy pBox: under the
	// shared-thread model it must become a gate, not a sleep.
	noisyAct.Begin("x")
	victimAct.Begin("y")
	mgr.Update(noisy, 5, core.Hold)
	mgr.Update(victim, 5, core.Prepare)
	time.Sleep(5 * time.Millisecond)
	mgr.Update(noisy, 5, core.Unhold)

	if g := noisyAct.Gate(); g <= 0 {
		t.Fatalf("noisy gate = %v, want > 0 (requeue deadline)", g)
	}
	if g := victimAct.Gate(); g != 0 {
		t.Fatalf("victim gate = %v, want 0", g)
	}
}

func TestPBoxOfOnNonPBoxActivity(t *testing.T) {
	if _, ok := PBoxOf(NewNull().ConnStart("x", KindForeground)); ok {
		t.Fatal("PBoxOf succeeded on null activity")
	}
}
