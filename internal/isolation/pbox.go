package isolation

import (
	"time"

	"pbox/internal/core"
	"pbox/internal/exec"
)

// PBoxController adapts the pBox manager to the Controller interface: each
// activity domain gets one pBox (the paper's per-connection granularity,
// Section 3 "Usage"), Begin/End map to activate/freeze, and Event maps to
// update_pbox. Penalty delays are executed inside Event/End on the noisy
// domain's own goroutine, and Gate surfaces shared-thread requeue deadlines
// for event-driven applications.
type PBoxController struct {
	mgr  *core.Manager
	rule core.IsolationRule
	// bgRule is the rule used for background-task domains. Background
	// threads (purge, vacuum, dump) have no latency SLO of their own —
	// developers give them a very relaxed goal so that, per Algorithm 1,
	// their own (intentional, low-priority) waiting never reads as a
	// violation and accuses the foreground clients they serve.
	bgRule core.IsolationRule
	// SharedThreads marks domains as running on shared worker threads
	// (event-driven apps), so penalties become requeue deadlines instead
	// of direct delays.
	sharedThreads bool
}

// BackgroundLevelFactor scales the foreground isolation level for
// background-task pBoxes.
const BackgroundLevelFactor = 40

// NewPBox returns a controller backed by mgr, creating pBoxes with rule for
// foreground connections and a relaxed variant for background tasks.
func NewPBox(mgr *core.Manager, rule core.IsolationRule) *PBoxController {
	bg := rule
	bg.Level = rule.Level * BackgroundLevelFactor
	return &PBoxController{mgr: mgr, rule: rule, bgRule: bg}
}

// NewPBoxShared returns a controller for event-driven applications whose
// activities run on shared worker threads.
func NewPBoxShared(mgr *core.Manager, rule core.IsolationRule) *PBoxController {
	c := NewPBox(mgr, rule)
	c.sharedThreads = true
	return c
}

// Manager exposes the underlying pBox manager (for experiment reporting).
func (c *PBoxController) Manager() *core.Manager { return c.mgr }

// Name implements Controller.
func (c *PBoxController) Name() string { return "pbox" }

// Shutdown implements Controller.
func (c *PBoxController) Shutdown() {}

// ConnStart implements Controller: create_pbox at the activity boundary.
func (c *PBoxController) ConnStart(name string, kind Kind) Activity {
	rule := c.rule
	if kind == KindBackground {
		rule = c.bgRule
	}
	p, err := c.mgr.Create(rule)
	if err != nil {
		// An invalid rule is a programming error in the harness.
		panic(err)
	}
	c.mgr.SetLabel(p, name)
	if c.sharedThreads {
		c.mgr.MarkShared(p)
	}
	return &pboxActivity{mgr: c.mgr, p: p}
}

type pboxActivity struct {
	mgr *core.Manager
	p   *core.PBox
}

// PBox returns the underlying pBox (used by event-driven apps that bind and
// unbind workers explicitly).
func (a *pboxActivity) PBox() *core.PBox { return a.p }

func (a *pboxActivity) Begin(string)         { a.mgr.Activate(a.p) }
func (a *pboxActivity) End(time.Duration)    { a.mgr.Freeze(a.p) }
func (a *pboxActivity) Work(d time.Duration) { exec.Work(d) }
func (a *pboxActivity) IO(d time.Duration)   { exec.IOWait(d) }
func (a *pboxActivity) Close()               { _ = a.mgr.Release(a.p) }

func (a *pboxActivity) Event(key core.ResourceKey, ev core.EventType) {
	a.mgr.Update(a.p, key, ev)
}

func (a *pboxActivity) Gate() time.Duration {
	return a.mgr.PenaltyWait(a.p)
}

// PBoxOf extracts the pBox handle from an Activity if it is pBox-backed.
// Event-driven applications use it to drive the bind/unbind worker shim.
func PBoxOf(a Activity) (*core.PBox, bool) {
	pa, ok := a.(*pboxActivity)
	if !ok {
		return nil, false
	}
	return pa.p, true
}
