// Package isolation decouples the simulated applications from the
// performance-isolation policy they run under. An application registers one
// Activity domain per connection or background task and reports request
// boundaries, CPU work, IO waits, and virtual-resource state events through
// it. The pBox controller maps these calls onto the pBox API; the baseline
// controllers (cgroup, PARTIES, Retro, DARC in internal/baseline) map them
// onto their own control mechanisms; the Null controller maps them onto
// nothing, yielding the vanilla run.
//
// This mirrors the paper's evaluation methodology: the same application and
// workload run under every solution (Section 6.3), with only the control
// policy swapped.
package isolation

import (
	"time"

	"pbox/internal/core"
	"pbox/internal/exec"
)

// Kind classifies an activity domain, so policies that group activities
// (cgroup by workload type, DARC by request type) can do so.
type Kind string

const (
	// KindForeground marks request-serving activity (a client connection).
	KindForeground Kind = "fg"
	// KindBackground marks background tasks (purge thread, vacuum, dump).
	KindBackground Kind = "bg"
)

// Controller is a performance-isolation policy instance for one application
// run.
type Controller interface {
	// ConnStart registers an activity domain: a client connection or a
	// background task. name is diagnostic; kind groups domains for
	// group-based policies.
	ConnStart(name string, kind Kind) Activity
	// Name identifies the policy ("none", "pbox", "cgroup", ...).
	Name() string
	// Shutdown stops any policy goroutines. The controller must not be
	// used afterwards.
	Shutdown()
}

// Activity is one activity domain's handle. Methods are called from the
// goroutine(s) executing the domain's activities.
type Activity interface {
	// Begin marks the start of one activity (one request, one background
	// pass). reqType labels the request type for type-aware policies.
	Begin(reqType string)
	// End marks the end of the activity started by Begin, with its
	// end-to-end latency as measured by the application.
	End(latency time.Duration)
	// Event reports a virtual-resource state event (Table 1).
	Event(key core.ResourceKey, ev core.EventType)
	// Work performs d worth of CPU-bound work on behalf of the activity.
	// Policies that throttle CPU stretch this call.
	Work(d time.Duration)
	// IO performs a blocking IO wait of duration d.
	IO(d time.Duration)
	// Gate returns how long the domain's next activity must be delayed
	// (admission control / requeue). Zero means runnable now. Thread-per-
	// connection applications sleep the returned duration before Begin;
	// event-driven applications requeue the task.
	Gate() time.Duration
	// Close unregisters the domain (connection closed, task finished).
	Close()
}

// Null is the vanilla controller: no isolation at all.
type Null struct{}

// NewNull returns the vanilla (no-isolation) controller.
func NewNull() *Null { return &Null{} }

// Name implements Controller.
func (*Null) Name() string { return "none" }

// Shutdown implements Controller.
func (*Null) Shutdown() {}

// ConnStart implements Controller.
func (*Null) ConnStart(string, Kind) Activity { return nullActivity{} }

type nullActivity struct{}

func (nullActivity) Begin(string)                           {}
func (nullActivity) End(time.Duration)                      {}
func (nullActivity) Event(core.ResourceKey, core.EventType) {}
func (nullActivity) Work(d time.Duration)                   { exec.Work(d) }
func (nullActivity) IO(d time.Duration)                     { exec.IOWait(d) }
func (nullActivity) Gate() time.Duration                    { return 0 }
func (nullActivity) Close()                                 {}
