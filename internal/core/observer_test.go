package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// obsEvent is one recorded Observer callback.
type obsEvent struct {
	kind   string // "create", "release", "event", "activity", "detect", "action", "served"
	pbox   int    // subject pBox (noisy for detect/action)
	victim int
	ev     EventType
	d      time.Duration
}

// recordingObserver captures every callback in order. Callbacks fire under
// the manager lock (except PenaltyServed), so the recorder takes its own
// lock to stay race-clean either way.
type recordingObserver struct {
	mu     sync.Mutex
	events []obsEvent
}

func (r *recordingObserver) append(e obsEvent) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *recordingObserver) PBoxCreated(id int, rule IsolationRule) {
	r.append(obsEvent{kind: "create", pbox: id})
}
func (r *recordingObserver) PBoxReleased(id int) {
	r.append(obsEvent{kind: "release", pbox: id})
}
func (r *recordingObserver) StateEvent(id int, key ResourceKey, ev EventType) {
	r.append(obsEvent{kind: "event", pbox: id, ev: ev})
}
func (r *recordingObserver) ActivityEnd(id int, deferNs, execNs int64) {
	r.append(obsEvent{kind: "activity", pbox: id, d: time.Duration(execNs)})
}
func (r *recordingObserver) Detection(noisy, victim int, key ResourceKey, projected float64) {
	r.append(obsEvent{kind: "detect", pbox: noisy, victim: victim})
}
func (r *recordingObserver) PenaltyAction(noisy, victim int, key ResourceKey, policy PolicyKind, length time.Duration) {
	r.append(obsEvent{kind: "action", pbox: noisy, victim: victim, d: length})
}
func (r *recordingObserver) PenaltyServed(id int, d time.Duration) {
	r.append(obsEvent{kind: "served", pbox: id, d: d})
}

func (r *recordingObserver) snapshot() []obsEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]obsEvent(nil), r.events...)
}

func TestObserverLifecycleAndPenaltyOrdering(t *testing.T) {
	obs := &recordingObserver{}
	h := newHarness(t, func(o *Options) { o.Observer = obs })
	noisy := h.pbox(0.5)
	victim := h.pbox(0.5)
	h.m.Activate(noisy)
	h.m.Activate(victim)
	h.m.Update(noisy, ResourceKey(1), Hold)
	h.m.Update(victim, ResourceKey(1), Prepare)
	h.advance(5 * time.Millisecond)
	h.m.Update(noisy, ResourceKey(1), Unhold)
	h.m.Update(victim, ResourceKey(1), Enter)
	h.m.Freeze(victim)
	h.m.Freeze(noisy)
	h.m.Release(victim)
	h.m.Release(noisy)

	got := obs.snapshot()
	idx := func(kind string, pbox int) int {
		for i, e := range got {
			if e.kind == kind && e.pbox == pbox {
				return i
			}
		}
		return -1
	}
	// Lifecycle brackets everything.
	for _, p := range []*PBox{noisy, victim} {
		c, r := idx("create", p.ID()), idx("release", p.ID())
		if c < 0 || r < 0 || c >= r {
			t.Fatalf("pbox %d: create at %d, release at %d", p.ID(), c, r)
		}
		for i, e := range got {
			if e.pbox == p.ID() && (i < c || i > r) {
				t.Fatalf("pbox %d: callback %+v outside create/release window", p.ID(), e)
			}
		}
	}
	// The detection verdict precedes the penalty action, which precedes the
	// served penalty, all against the noisy pBox.
	d, a, s := idx("detect", noisy.ID()), idx("action", noisy.ID()), idx("served", noisy.ID())
	if d < 0 || a < 0 || s < 0 {
		t.Fatalf("missing detect/action/served for noisy: %d %d %d (events %+v)", d, a, s, got)
	}
	if !(d < a && a < s) {
		t.Fatalf("ordering detect=%d action=%d served=%d, want detect < action < served", d, a, s)
	}
	for _, e := range got {
		if e.kind == "action" && e.d <= 0 {
			t.Fatalf("action with non-positive length: %+v", e)
		}
		if e.kind == "served" && e.d <= 0 {
			t.Fatalf("served with non-positive length: %+v", e)
		}
	}
}

// TestObserverConcurrentEvents hammers one manager from many goroutines and
// checks that the serialized callback stream keeps its per-pBox invariants:
// created before any other callback, nothing after released, and state-event
// counts matching what each goroutine issued.
func TestObserverConcurrentEvents(t *testing.T) {
	obs := &recordingObserver{}
	m := NewManager(Options{Observer: obs, DisableDetection: true})
	const goroutines = 8
	const rounds = 50

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := ResourceKey(100 + g)
			for i := 0; i < rounds; i++ {
				p, err := m.Create(DefaultRule())
				if err != nil {
					t.Errorf("Create: %v", err)
					return
				}
				m.Activate(p)
				m.Update(p, key, Prepare)
				m.Update(p, key, Enter)
				m.Update(p, key, Hold)
				m.Update(p, key, Unhold)
				m.Freeze(p)
				if err := m.Release(p); err != nil {
					t.Errorf("Release: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	got := obs.snapshot()
	type state struct {
		created, released bool
		events            int
		activities        int
	}
	perBox := make(map[int]*state)
	for _, e := range got {
		st := perBox[e.pbox]
		if st == nil {
			st = &state{}
			perBox[e.pbox] = st
		}
		switch e.kind {
		case "create":
			if st.created {
				t.Fatalf("pbox %d created twice", e.pbox)
			}
			st.created = true
		case "release":
			if !st.created || st.released {
				t.Fatalf("pbox %d released out of order", e.pbox)
			}
			st.released = true
		default:
			if !st.created || st.released {
				t.Fatalf("pbox %d: %q outside lifecycle window", e.pbox, e.kind)
			}
			if e.kind == "event" {
				st.events++
			}
			if e.kind == "activity" {
				st.activities++
			}
		}
	}
	if len(perBox) != goroutines*rounds {
		t.Fatalf("observed %d pboxes, want %d", len(perBox), goroutines*rounds)
	}
	for id, st := range perBox {
		if !st.created || !st.released {
			t.Fatalf("pbox %d: incomplete lifecycle %+v", id, st)
		}
		if st.events != 4 {
			t.Fatalf("pbox %d: %d state events, want 4", id, st.events)
		}
		if st.activities != 1 {
			t.Fatalf("pbox %d: %d activities, want 1", id, st.activities)
		}
	}
}

// runDisabledEventPath is the hot path measured by the nil-observer
// allocation guard: one contested-free Prepare/Enter wait pair.
func runDisabledEventPath(m *Manager, p *PBox, key ResourceKey) {
	m.Update(p, key, Prepare)
	m.Update(p, key, Enter)
}

func TestObserverDisabledAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	m := NewManager(Options{})
	p, _ := m.Create(DefaultRule())
	m.Activate(p)
	key := ResourceKey(7)
	// Warm up internal slices/maps to steady state.
	for i := 0; i < 100; i++ {
		runDisabledEventPath(m, p, key)
	}
	allocs := testing.AllocsPerRun(1000, func() { runDisabledEventPath(m, p, key) })
	if allocs != 0 {
		t.Fatalf("nil-observer event path allocates %.1f objects per op, want 0", allocs)
	}
}

// BenchmarkObserverDisabled proves the nil-observer event path stays
// allocation-free: the telemetry hooks cost one nil check when disabled.
func BenchmarkObserverDisabled(b *testing.B) {
	m := NewManager(Options{})
	p, _ := m.Create(DefaultRule())
	m.Activate(p)
	key := ResourceKey(7)
	for i := 0; i < 100; i++ {
		runDisabledEventPath(m, p, key)
	}
	if !raceEnabled {
		if allocs := testing.AllocsPerRun(1000, func() { runDisabledEventPath(m, p, key) }); allocs != 0 {
			b.Fatalf("nil-observer event path allocates %.1f objects per op, want 0", allocs)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runDisabledEventPath(m, p, key)
	}
}

// BenchmarkObserverEnabled measures the same path with a no-op observer
// attached, for comparison against BenchmarkObserverDisabled.
func BenchmarkObserverEnabled(b *testing.B) {
	m := NewManager(Options{Observer: nopObserver{}})
	p, _ := m.Create(DefaultRule())
	m.Activate(p)
	key := ResourceKey(7)
	for i := 0; i < 100; i++ {
		runDisabledEventPath(m, p, key)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runDisabledEventPath(m, p, key)
	}
}

// nopObserver is the cheapest possible Observer, for overhead benchmarks.
type nopObserver struct{}

func (nopObserver) PBoxCreated(int, IsolationRule)                              {}
func (nopObserver) PBoxReleased(int)                                            {}
func (nopObserver) StateEvent(int, ResourceKey, EventType)                      {}
func (nopObserver) ActivityEnd(int, int64, int64)                               {}
func (nopObserver) Detection(int, int, ResourceKey, float64)                    {}
func (nopObserver) PenaltyAction(int, int, ResourceKey, PolicyKind, time.Duration) {}
func (nopObserver) PenaltyServed(int, time.Duration)                            {}

var _ = fmt.Sprintf // keep fmt imported for debugging helpers
