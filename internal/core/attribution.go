package core

import (
	"sort"
	"time"
)

// This file implements the interference attribution ledger: for every
// (culprit pBox, victim pBox, virtual resource) triple the manager has seen
// interact, it accumulates how long the culprit's holds blocked the victim,
// how many detection verdicts Algorithm 1 reached against the pair, how many
// penalty actions were scheduled, and how much penalty time was scheduled
// and actually served. The aggregate counters in internal/telemetry can say
// "defer ratios are rising"; the ledger answers the operator's question —
// who delayed whom, on what, and for how long (the paper's Section 8
// diagnosis story made quantitative).
//
// The ledger is enabled by Options.Attribution. When disabled it costs a
// single nil check per site and zero allocations, the same discipline as the
// Observer hooks. When enabled, the only allocations are the first touch of
// a new triple; steady-state updates are field increments on an existing
// entry under the verdict lock the call site already holds — the ledger only
// ever grows on the cold contention path, never on the no-contention fast
// path.

// AttributionObserver is an optional extension of Observer. If the Observer
// passed in Options also implements this interface, the manager delivers the
// per-triple attribution stream: Blocked fires (under manager locks, like
// StateEvent) whenever a culprit's hold is found to have overlapped a
// victim's wait, and PenaltyServedFor fires (outside the locks, like
// PenaltyServed) when a served penalty is attributable to a specific
// (victim, resource) — which it always is, because the manager never stacks
// a second action onto an unserved penalty.
type AttributionObserver interface {
	// Blocked reports that culprit's hold on key overlapped victim's wait
	// for deferNs nanoseconds, measured at the culprit's UNHOLD.
	Blocked(culpritID, victimID int, key ResourceKey, deferNs int64)
	// PenaltyServedFor reports a served penalty together with the victim
	// and resource whose detection scheduled it.
	PenaltyServedFor(culpritID, victimID int, key ResourceKey, d time.Duration)
}

// attrKey identifies one ledger entry.
type attrKey struct {
	culprit int
	victim  int
	key     ResourceKey
}

// attrEntry is the mutable accounting for one triple. Guarded by
// m.verdictMu.
type attrEntry struct {
	blockedNs   int64
	detections  int64
	actions     int64
	scheduledNs int64
	servedNs    int64
	// Last-seen pBox labels, kept so the ledger stays readable after the
	// pBoxes are released (connection closed, task finished).
	culpritLabel string
	victimLabel  string
}

// maxAttrEntries bounds the ledger so a pathological workload (unbounded
// pBox churn against many resources) cannot grow manager memory without
// limit. New triples beyond the cap are counted, not recorded.
const maxAttrEntries = 4096

// attributionLedger is the per-manager triple store. Guarded by m.verdictMu.
type attributionLedger struct {
	entries map[attrKey]*attrEntry
	order   []attrKey // insertion order, for deterministic reports
	dropped int64
}

func newAttributionLedger() *attributionLedger {
	return &attributionLedger{entries: make(map[attrKey]*attrEntry)}
}

// attrVerdict finds or creates the ledger entry for (culprit, victim, key)
// and refreshes the cached labels. Returns nil when attribution is disabled
// or the ledger is full. Caller holds m.verdictMu.
func (m *Manager) attrVerdict(culprit, victim *PBox, key ResourceKey) *attrEntry {
	if m.attr == nil {
		return nil
	}
	k := attrKey{culprit: culprit.id, victim: victim.id, key: key}
	e := m.attr.entries[k]
	if e == nil {
		if len(m.attr.entries) >= maxAttrEntries {
			m.attr.dropped++
			return nil
		}
		e = &attrEntry{}
		m.attr.entries[k] = e
		m.attr.order = append(m.attr.order, k)
	}
	if l := culprit.labelString(); l != "" {
		e.culpritLabel = l
	}
	if l := victim.labelString(); l != "" {
		e.victimLabel = l
	}
	return e
}

// attrByIDVerdict looks up an existing entry without creating one (used on
// the served path, where the victim pBox may already be gone). Caller holds
// m.verdictMu.
func (m *Manager) attrByIDVerdict(culpritID, victimID int, key ResourceKey) *attrEntry {
	if m.attr == nil {
		return nil
	}
	return m.attr.entries[attrKey{culprit: culpritID, victim: victimID, key: key}]
}

// AttributionRecord is the read-only view of one ledger entry: the causal
// chain behind penalties, exported by /attribution and pboxctl top.
type AttributionRecord struct {
	CulpritID    int
	CulpritLabel string
	VictimID     int
	VictimLabel  string
	Key          ResourceKey
	Resource     string // registered resource name, "" when unnamed
	// Blocked is the total time the culprit's holds overlapped the
	// victim's waits on the resource.
	Blocked time.Duration
	// Detections counts verdicts (including ones whose action was
	// suppressed by a pending penalty or cooldown); Actions counts
	// scheduled penalties.
	Detections int64
	Actions    int64
	// PenaltyScheduled and PenaltyServed are the penalty time scheduled by
	// take_action and actually slept for this triple.
	PenaltyScheduled time.Duration
	PenaltyServed    time.Duration
}

// attributionVerdict builds the report. Caller holds m.verdictMu; lookup
// resolves a pBox id to its live handle (or nil) and is supplied by the
// caller because the registry lock, which guards the live table, is ordered
// before verdictMu and must already be held.
func (m *Manager) attributionVerdict(lookup func(id int) *PBox) []AttributionRecord {
	if m.attr == nil {
		return nil
	}
	out := make([]AttributionRecord, 0, len(m.attr.order))
	for _, k := range m.attr.order {
		e := m.attr.entries[k]
		rec := AttributionRecord{
			CulpritID:        k.culprit,
			CulpritLabel:     e.culpritLabel,
			VictimID:         k.victim,
			VictimLabel:      e.victimLabel,
			Key:              k.key,
			Resource:         m.resourceName(k.key),
			Blocked:          time.Duration(e.blockedNs),
			Detections:       e.detections,
			Actions:          e.actions,
			PenaltyScheduled: time.Duration(e.scheduledNs),
			PenaltyServed:    time.Duration(e.servedNs),
		}
		// Live pBoxes may have been relabeled since the last ledger touch.
		if p := lookup(k.culprit); p != nil {
			if l := p.labelString(); l != "" {
				rec.CulpritLabel = l
			}
		}
		if p := lookup(k.victim); p != nil {
			if l := p.labelString(); l != "" {
				rec.VictimLabel = l
			}
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Blocked != out[j].Blocked {
			return out[i].Blocked > out[j].Blocked
		}
		if out[i].CulpritID != out[j].CulpritID {
			return out[i].CulpritID < out[j].CulpritID
		}
		if out[i].VictimID != out[j].VictimID {
			return out[i].VictimID < out[j].VictimID
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// lookupPBoxRegLocked resolves an id in the live table. Caller holds the
// registry lock.
func (m *Manager) lookupPBoxRegLocked(id int) *PBox { return m.reg.pboxes[id] }

// Attribution returns the culprit↔victim ledger, most-blocking triple first.
// It returns nil when Options.Attribution was not set.
func (m *Manager) Attribution() []AttributionRecord {
	m.sweepSpools() // flush-on-read: spooled blocking must reach the ledger
	m.reg.Lock()
	defer m.reg.Unlock()
	m.verdictMu.Lock()
	defer m.verdictMu.Unlock()
	return m.attributionVerdict(m.lookupPBoxRegLocked)
}

// AttributionDropped returns how many triples were not recorded because the
// ledger hit its size cap.
func (m *Manager) AttributionDropped() int64 {
	m.verdictMu.Lock()
	defer m.verdictMu.Unlock()
	if m.attr == nil {
		return 0
	}
	return m.attr.dropped
}

// Status is a consistent combined view of the manager: the per-pBox
// snapshots and the attribution ledger, read under one stop-the-world
// acquisition so an exporter (or incident dump) never pairs a pBox list
// from one instant with a ledger from another.
type Status struct {
	Snapshots   []Snapshot
	Attribution []AttributionRecord
	// AttributionDropped counts triples lost to the ledger size cap.
	AttributionDropped int64
	// Resources summarizes per-resource contention (live waiter and holder
	// counts), ordered by key.
	Resources []ResourceView
	// TraceSeq is the trace ring's latest sequence number at snapshot time
	// (0 when tracing is disabled): the cursor a reader passes to
	// TraceView/TraceSince to stream events newer than this view.
	TraceSeq uint64
}

// Status returns the combined snapshot, built precisely: spools are swept
// first (flush-on-read), so every event issued before the call is visible.
// Most consumers should use StatusView instead (the epoch-published view,
// DESIGN.md §12), which costs readers one atomic load; Status remains for
// consumers that need exactness — `pboxctl dump -precise`, differential
// tests, and the snapshot rebuild itself.
//
// With the sharded manager there is no single lock whose acquisition makes
// the view consistent, so the assembly briefly stops the world: it takes
// the registry lock (no pBox can appear or vanish), then every shard lock
// in index order (no event can move a waiter or holder or reach a verdict,
// since verdicts are only reached from event paths that hold a shard lock),
// then the verdict lock (the ledger cannot move). The combined view is
// therefore exactly as consistent as the old single-mutex one.
func (m *Manager) Status() Status {
	return m.collectStatus()
}
