package core

import (
	"sort"
	"time"
)

// This file implements the interference attribution ledger: for every
// (culprit pBox, victim pBox, virtual resource) triple the manager has seen
// interact, it accumulates how long the culprit's holds blocked the victim,
// how many detection verdicts Algorithm 1 reached against the pair, how many
// penalty actions were scheduled, and how much penalty time was scheduled
// and actually served. The aggregate counters in internal/telemetry can say
// "defer ratios are rising"; the ledger answers the operator's question —
// who delayed whom, on what, and for how long (the paper's Section 8
// diagnosis story made quantitative).
//
// The ledger is enabled by Options.Attribution. When disabled it costs a
// single nil check per site and zero allocations, the same discipline as the
// Observer hooks. When enabled, the only allocations are the first touch of
// a new triple; steady-state updates are field increments on an existing
// entry under the manager lock the call site already holds.

// AttributionObserver is an optional extension of Observer. If the Observer
// passed in Options also implements this interface, the manager delivers the
// per-triple attribution stream: Blocked fires (under the manager lock, like
// StateEvent) whenever a culprit's hold is found to have overlapped a
// victim's wait, and PenaltyServedFor fires (outside the lock, like
// PenaltyServed) when a served penalty is attributable to a specific
// (victim, resource) — which it always is, because the manager never stacks
// a second action onto an unserved penalty.
type AttributionObserver interface {
	// Blocked reports that culprit's hold on key overlapped victim's wait
	// for deferNs nanoseconds, measured at the culprit's UNHOLD.
	Blocked(culpritID, victimID int, key ResourceKey, deferNs int64)
	// PenaltyServedFor reports a served penalty together with the victim
	// and resource whose detection scheduled it.
	PenaltyServedFor(culpritID, victimID int, key ResourceKey, d time.Duration)
}

// attrKey identifies one ledger entry.
type attrKey struct {
	culprit int
	victim  int
	key     ResourceKey
}

// attrEntry is the mutable accounting for one triple. Guarded by m.mu.
type attrEntry struct {
	blockedNs   int64
	detections  int64
	actions     int64
	scheduledNs int64
	servedNs    int64
	// Last-seen pBox labels, kept so the ledger stays readable after the
	// pBoxes are released (connection closed, task finished).
	culpritLabel string
	victimLabel  string
}

// maxAttrEntries bounds the ledger so a pathological workload (unbounded
// pBox churn against many resources) cannot grow manager memory without
// limit. New triples beyond the cap are counted, not recorded.
const maxAttrEntries = 4096

// attributionLedger is the per-manager triple store.
type attributionLedger struct {
	entries map[attrKey]*attrEntry
	order   []attrKey // insertion order, for deterministic reports
	dropped int64
}

func newAttributionLedger() *attributionLedger {
	return &attributionLedger{entries: make(map[attrKey]*attrEntry)}
}

// attrLocked finds or creates the ledger entry for (culprit, victim, key)
// and refreshes the cached labels. Returns nil when attribution is disabled
// or the ledger is full. Caller holds m.mu.
func (m *Manager) attrLocked(culprit, victim *PBox, key ResourceKey) *attrEntry {
	if m.attr == nil {
		return nil
	}
	k := attrKey{culprit: culprit.id, victim: victim.id, key: key}
	e := m.attr.entries[k]
	if e == nil {
		if len(m.attr.entries) >= maxAttrEntries {
			m.attr.dropped++
			return nil
		}
		e = &attrEntry{}
		m.attr.entries[k] = e
		m.attr.order = append(m.attr.order, k)
	}
	if culprit.label != "" {
		e.culpritLabel = culprit.label
	}
	if victim.label != "" {
		e.victimLabel = victim.label
	}
	return e
}

// attrByIDLocked looks up an existing entry without creating one (used on
// the served path, where the victim pBox may already be gone). Caller holds
// m.mu.
func (m *Manager) attrByIDLocked(culpritID, victimID int, key ResourceKey) *attrEntry {
	if m.attr == nil {
		return nil
	}
	return m.attr.entries[attrKey{culprit: culpritID, victim: victimID, key: key}]
}

// AttributionRecord is the read-only view of one ledger entry: the causal
// chain behind penalties, exported by /attribution and pboxctl top.
type AttributionRecord struct {
	CulpritID    int
	CulpritLabel string
	VictimID     int
	VictimLabel  string
	Key          ResourceKey
	Resource     string // registered resource name, "" when unnamed
	// Blocked is the total time the culprit's holds overlapped the
	// victim's waits on the resource.
	Blocked time.Duration
	// Detections counts verdicts (including ones whose action was
	// suppressed by a pending penalty or cooldown); Actions counts
	// scheduled penalties.
	Detections int64
	Actions    int64
	// PenaltyScheduled and PenaltyServed are the penalty time scheduled by
	// take_action and actually slept for this triple.
	PenaltyScheduled time.Duration
	PenaltyServed    time.Duration
}

// attributionLocked builds the report. Caller holds m.mu.
func (m *Manager) attributionLocked() []AttributionRecord {
	if m.attr == nil {
		return nil
	}
	out := make([]AttributionRecord, 0, len(m.attr.order))
	for _, k := range m.attr.order {
		e := m.attr.entries[k]
		rec := AttributionRecord{
			CulpritID:        k.culprit,
			CulpritLabel:     e.culpritLabel,
			VictimID:         k.victim,
			VictimLabel:      e.victimLabel,
			Key:              k.key,
			Resource:         m.resourceName(k.key),
			Blocked:          time.Duration(e.blockedNs),
			Detections:       e.detections,
			Actions:          e.actions,
			PenaltyScheduled: time.Duration(e.scheduledNs),
			PenaltyServed:    time.Duration(e.servedNs),
		}
		// Live pBoxes may have been relabeled since the last ledger touch.
		if p := m.pboxes[k.culprit]; p != nil && p.label != "" {
			rec.CulpritLabel = p.label
		}
		if p := m.pboxes[k.victim]; p != nil && p.label != "" {
			rec.VictimLabel = p.label
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Blocked != out[j].Blocked {
			return out[i].Blocked > out[j].Blocked
		}
		if out[i].CulpritID != out[j].CulpritID {
			return out[i].CulpritID < out[j].CulpritID
		}
		if out[i].VictimID != out[j].VictimID {
			return out[i].VictimID < out[j].VictimID
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Attribution returns the culprit↔victim ledger, most-blocking triple first.
// It returns nil when Options.Attribution was not set.
func (m *Manager) Attribution() []AttributionRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.attributionLocked()
}

// AttributionDropped returns how many triples were not recorded because the
// ledger hit its size cap.
func (m *Manager) AttributionDropped() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.attr == nil {
		return 0
	}
	return m.attr.dropped
}

// Status is a consistent combined view of the manager: the per-pBox
// snapshots and the attribution ledger, read under a single acquisition of
// the manager lock so an exporter (or incident dump) never pairs a pBox list
// from one instant with a ledger from another.
type Status struct {
	Snapshots   []Snapshot
	Attribution []AttributionRecord
	// AttributionDropped counts triples lost to the ledger size cap.
	AttributionDropped int64
}

// Status returns the combined snapshot. The HTTP /attribution endpoint and
// the flight recorder's incident builder use it instead of separate
// Snapshots/Attribution calls.
func (m *Manager) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{
		Snapshots:   m.snapshotsLocked(),
		Attribution: m.attributionLocked(),
	}
	if m.attr != nil {
		st.AttributionDropped = m.attr.dropped
	}
	return st
}
