package core

import (
	"sync/atomic"
	"time"
)

// Adaptive shard/spool topology (DESIGN.md §13). The stripe count and spool
// capacity chosen at construction are guesses: 4×GOMAXPROCS stripes and
// 256-record spools are right for a balanced load, wrong for a skewed one.
// This file makes both self-tuning. A sizer tick — piggybacked on the
// snapshot rebuild's cadence, so it costs no goroutine and follows the
// manager clock — reads the manager's own telemetry deltas (per-stripe lock
// traffic, spool overflows versus flushed batch sizes) and, within fixed
// bounds, doubles or halves the shard stripe set and the per-worker spool
// capacity.
//
// Resize protocol (shards). The live topology is one immutable shardSet
// behind Manager.shards. The resizer, under Manager.topo:
//
//  1. builds the new set unpublished,
//  2. locks every old stripe in index order (the lockAllShards order, so the
//     two all-shard holders cannot deadlock),
//  3. per old stripe: takes its name leaf lock, moves competitors, holder
//     indexes, and names into the new set, folds its lock counter into the
//     retired total (keeping SelfStats monotone), and sets the moved flag —
//     while both locks are held, so any later acquirer of either lock
//     observes it,
//  4. publishes the new set, then releases the old locks in reverse.
//
// An event path that locked a stripe through the stale pointer finds moved
// set and retries against the published set (lockShard); the stale maps are
// never read or written again. The window costs stale lockers one extra
// lock/unlock — there is no reader-side barrier, and the hot path is
// unchanged: one atomic pointer load.
//
// Verdict neutrality: shard assignment decides which mutex serializes a
// key's bookkeeping, never the bookkeeping itself, and the migration moves
// the waiter/holder structures wholesale under full mutual exclusion with
// no event applied in between. Spool capacity only changes batch boundaries,
// and replay applies records with their recorded timestamps. A resized run
// therefore produces the identical verdict stream to a fixed-topology twin
// over the same events — which the differential test asserts.
//
// Lock rank: Manager.topo sits between snap and spools (snap → topo →
// spools → …): the sizer runs under snap (from the rebuild), and a spool
// resize flushes spools under topo. The lockorder pass enforces the rank.

// Topology bounds. Shard bounds (minShards/maxShards) live in shard.go and
// are shared with the static default.
const (
	// minSpoolCap and maxSpoolCap bound the adaptive per-worker spool
	// capacity. The floor keeps the flush amortization meaningful; the
	// ceiling bounds per-worker memory (two buffers of 24-byte records)
	// and the worst-case replay batch a reader can stall behind.
	minSpoolCap = 64
	maxSpoolCap = 8192

	// sizerMinIntervalNs rate-limits sizer ticks on the manager clock; the
	// snapshot rebuild cadence already bounds them above, this keeps a
	// forced-rebuild storm from thrashing the topology.
	sizerMinIntervalNs = int64(10 * time.Millisecond)

	// sizerGrowLocksPerStripe is the per-stripe lock-acquisition delta per
	// tick past which the stripe set doubles: the stripes are hot enough
	// that halving the collision odds is worth one migration.
	sizerGrowLocksPerStripe = 512

	// sizerShrinkLocksPerStripe is the per-stripe delta below which a tick
	// counts as quiet; sizerQuietTicks consecutive quiet ticks halve the
	// stripe set (hysteresis, so one idle interval cannot flap the
	// topology that the next burst needs).
	sizerShrinkLocksPerStripe = 32
	sizerQuietTicks           = 3

	// Spool policy: grow when the interval saw overflows and the average
	// flushed batch nearly fills the buffer (the workload produces longer
	// uncontended runs than the spool can hold); shrink after
	// sizerQuietTicks intervals whose average batch used under 1/8 of the
	// capacity (the memory buys nothing).
	sizerSpoolFillNum = 3
	sizerSpoolFillDen = 4
	sizerSpoolLowDen  = 8

	// topologyDecisionLog bounds the retained decision history.
	topologyDecisionLog = 32
)

// TopologyDecision is one sizer (or manual) resize decision, retained in a
// bounded log exposed through SelfStats for `pboxctl self` and telemetry.
type TopologyDecision struct {
	// AtNs is the manager-clock time of the decision.
	AtNs int64
	// Kind is "shards" or "spool".
	Kind string
	// From and To are the stripe counts or spool capacities.
	From int
	To   int
	// Reason is the triggering condition ("grow:lock-traffic",
	// "shrink:quiet", "grow:overflow", "shrink:underfill", "manual").
	Reason string
}

// topologyStats is the sizer's lock-free telemetry: counters updated under
// Manager.topo but read by SelfStats with no locks, plus a copy-on-write
// decision log swapped whole.
type topologyStats struct {
	ticks        atomic.Int64
	shardResizes atomic.Int64
	spoolResizes atomic.Int64
	// shardLocksRetired folds the lock counters of retired shard sets so
	// SelfStats.ShardLockAcquisitions stays monotone across resizes.
	shardLocksRetired atomic.Int64
	decisions         atomic.Pointer[[]TopologyDecision]
}

// record appends one decision to the bounded log. Caller holds Manager.topo
// (the single writer); readers Load the slice pointer and never mutate it.
func (ts *topologyStats) record(d TopologyDecision) {
	var base []TopologyDecision
	if old := ts.decisions.Load(); old != nil {
		base = *old
	}
	start := 0
	if n := len(base); n >= topologyDecisionLog {
		start = n - topologyDecisionLog + 1
	}
	nw := make([]TopologyDecision, 0, len(base)-start+1)
	nw = append(nw, base[start:]...)
	nw = append(nw, d)
	ts.decisions.Store(&nw)
}

// sizerState is the sizer's between-ticks memory: the last tick time and the
// last-seen counter values the per-tick deltas are taken against, plus the
// shrink hysteresis counters. Guarded by Manager.topo.
type sizerState struct {
	lastTickNs        int64
	ticked            bool // first tick only establishes the baselines
	lastShardLocks    int64
	lastOverflows     int64
	lastFlushes       int64
	lastFlushedEvents int64
	shardQuiet        int
	spoolQuiet        int
}

// maybeAdaptTopology is the sizer hook on the snapshot rebuild path: a no-op
// unless Options.AdaptiveTopology is set and the rate limit has elapsed.
// Caller holds m.snap (rank −30; topo is −25, so the descent is in order).
func (m *Manager) maybeAdaptTopology(now int64) {
	if !m.opts.AdaptiveTopology {
		return
	}
	m.topo.Lock()
	defer m.topo.Unlock()
	sz := &m.topo.sizer
	if sz.ticked && now-sz.lastTickNs < sizerMinIntervalNs {
		return
	}
	m.adaptLocked(now)
}

// AdaptTopology forces one sizer tick immediately, ignoring the rate limit —
// the deterministic entry point for tests and for operators who just changed
// the load shape. It requires Options.AdaptiveTopology; with the sizer
// disabled it is a no-op. Caller holds no manager locks.
func (m *Manager) AdaptTopology() {
	if !m.opts.AdaptiveTopology {
		return
	}
	m.topo.Lock()
	defer m.topo.Unlock()
	m.adaptLocked(m.opts.Now())
}

// adaptLocked runs one sizer tick: compute the telemetry deltas since the
// previous tick, decide, resize. Caller holds m.topo.
func (m *Manager) adaptLocked(now int64) {
	sz := &m.topo.sizer
	m.topoStats.ticks.Add(1)

	shardLocks := m.shardLocksTotal()
	overflows := m.self.spoolOverflows.Load()
	flushes := m.self.spoolFlushes.Load()
	flushedEvents := m.self.spoolFlushedEvents.Load()

	if !sz.ticked {
		// First tick: establish the delta baselines, decide nothing — a
		// manager that ran minutes before the sizer was first consulted
		// must not resize on its lifetime totals.
		sz.ticked = true
	} else {
		m.adaptShardsLocked(now, shardLocks-sz.lastShardLocks)
		m.adaptSpoolLocked(now,
			overflows-sz.lastOverflows,
			flushes-sz.lastFlushes,
			flushedEvents-sz.lastFlushedEvents)
	}
	sz.lastTickNs = now
	sz.lastShardLocks = shardLocks
	sz.lastOverflows = overflows
	sz.lastFlushes = flushes
	sz.lastFlushedEvents = flushedEvents
}

// shardLocksTotal is the monotone all-time shard-lock acquisition count:
// live stripes plus retired sets.
func (m *Manager) shardLocksTotal() int64 {
	total := m.topoStats.shardLocksRetired.Load()
	for _, s := range m.shards.Load().shards {
		total += s.locks.Load()
	}
	return total
}

// adaptShardsLocked applies the stripe-count policy to one tick's lock-delta.
// Caller holds m.topo.
func (m *Manager) adaptShardsLocked(now, lockDelta int64) {
	n := len(m.shards.Load().shards)
	perStripe := lockDelta / int64(n)
	switch {
	case perStripe >= sizerGrowLocksPerStripe && n < maxShards:
		sz := &m.topo.sizer
		sz.shardQuiet = 0
		m.resizeShardsLocked(now, n*2, "grow:lock-traffic")
	case perStripe < sizerShrinkLocksPerStripe:
		sz := &m.topo.sizer
		sz.shardQuiet++
		if sz.shardQuiet >= sizerQuietTicks && n > minShards {
			sz.shardQuiet = 0
			m.resizeShardsLocked(now, n/2, "shrink:quiet")
		}
	default:
		m.topo.sizer.shardQuiet = 0
	}
}

// adaptSpoolLocked applies the spool-capacity policy to one tick's deltas.
// Caller holds m.topo.
func (m *Manager) adaptSpoolLocked(now, overflows, flushes, flushedEvents int64) {
	cap := int(m.spoolCap.Load())
	if cap <= 0 {
		return // spooling disabled; nothing to tune
	}
	var avgBatch int64
	if flushes > 0 {
		avgBatch = flushedEvents / flushes
	}
	sz := &m.topo.sizer
	switch {
	case overflows > 0 && avgBatch >= int64(cap*sizerSpoolFillNum/sizerSpoolFillDen) && cap < maxSpoolCap:
		sz.spoolQuiet = 0
		m.resizeSpoolLocked(now, cap*2, "grow:overflow")
	case flushes > 0 && avgBatch < int64(cap/sizerSpoolLowDen):
		sz.spoolQuiet++
		if sz.spoolQuiet >= sizerQuietTicks && cap > minSpoolCap {
			sz.spoolQuiet = 0
			m.resizeSpoolLocked(now, cap/2, "shrink:underfill")
		}
	default:
		sz.spoolQuiet = 0
	}
}

// ResizeShards sets the stripe count explicitly (rounded up to a power of
// two, clamped to [minShards, maxShards]): the manual override and the test
// entry point for the resize protocol. Caller holds no manager locks.
func (m *Manager) ResizeShards(n int) {
	n = nextPow2(n)
	if n < minShards {
		n = minShards
	}
	if n > maxShards {
		n = maxShards
	}
	m.topo.Lock()
	defer m.topo.Unlock()
	m.resizeShardsLocked(m.opts.Now(), n, "manual")
}

// resizeShardsLocked migrates the live shard topology to n stripes per the
// resize protocol in the file comment. Caller holds m.topo; n is a power of
// two within bounds.
func (m *Manager) resizeShardsLocked(now int64, n int, reason string) {
	old := m.shards.Load()
	if len(old.shards) == n {
		return
	}
	next := newShardSet(n)
	for _, s := range old.shards {
		//pboxlint:ignore lockorder topology migration locks old stripes in ascending index order, the same sanctioned sweep as lockAllShards (DESIGN.md §13)
		s.mu.Lock()
	}
	for _, s := range old.shards {
		s.namesMu.Lock()
		for key, cl := range s.competitors {
			next.shardOf(key).competitors[key] = cl
		}
		for key, hm := range s.holdersByKey {
			next.shardOf(key).holdersByKey[key] = hm
		}
		for key, name := range s.names {
			ns := next.shardOf(key)
			if ns.names == nil {
				ns.names = make(map[ResourceKey]string)
			}
			ns.names[key] = name
		}
		m.topoStats.shardLocksRetired.Add(s.locks.Load())
		// moved is set while both the stripe lock and the name leaf lock
		// are held: any acquirer of either lock after this release observes
		// it and retries against the published set.
		s.moved.Store(true)
		s.namesMu.Unlock()
	}
	// Publish before releasing the old locks, so a retrying lockShard finds
	// the new set on its very next load instead of spinning on moved
	// stripes.
	m.shards.Store(next)
	for i := len(old.shards) - 1; i >= 0; i-- {
		old.shards[i].mu.Unlock()
	}
	m.topoStats.shardResizes.Add(1)
	m.topoStats.record(TopologyDecision{
		AtNs: now, Kind: "shards", From: len(old.shards), To: n, Reason: reason,
	})
}

// ResizeSpoolCapacity sets the per-worker spool capacity explicitly (clamped
// to [minSpoolCap, maxSpoolCap]): the manual override and the test entry
// point. New workers spool at the new capacity immediately; live spools are
// re-sized best-effort (a spool with a racing append keeps its old buffer
// until the next resize reaches it). No-op when spooling is disabled.
// Caller holds no manager locks.
func (m *Manager) ResizeSpoolCapacity(n int) {
	if n < minSpoolCap {
		n = minSpoolCap
	}
	if n > maxSpoolCap {
		n = maxSpoolCap
	}
	m.topo.Lock()
	defer m.topo.Unlock()
	m.resizeSpoolLocked(m.opts.Now(), n, "manual")
}

// resizeSpoolLocked retunes the spool capacity: the new-worker capacity is
// set first, then every registered spool is flushed and reallocated.
// setCapacity declines when an append raced in between — those spools keep
// their old buffers and are caught by a later resize; correctness never
// depends on capacity, only batching does. Caller holds m.topo; n is within
// bounds.
func (m *Manager) resizeSpoolLocked(now int64, n int, reason string) {
	if m.spoolCap.Load() <= 0 {
		return // spooling disabled at construction stays disabled
	}
	from := int(m.spoolCap.Load())
	if from == n {
		return
	}
	m.spoolCap.Store(int64(n))
	m.spools.Lock()
	for _, sp := range m.spools.list {
		sp.flush(false)
		sp.setCapacity(n)
	}
	m.spools.Unlock()
	m.topoStats.spoolResizes.Add(1)
	m.topoStats.record(TopologyDecision{
		AtNs: now, Kind: "spool", From: from, To: n, Reason: reason,
	})
}
