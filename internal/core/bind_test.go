package core

import (
	"errors"
	"testing"
	"time"
)

func TestWorkerBindUnbindRoundTrip(t *testing.T) {
	h := newHarness(t)
	p := h.pbox(0.5)
	w := h.m.NewWorker()
	if err := w.BindDirect(p); err != nil {
		t.Fatalf("BindDirect: %v", err)
	}
	if w.Current() != p {
		t.Fatal("Current != bound pBox")
	}
	const connKey = uintptr(0xbeef)
	id, err := w.Unbind(connKey, BindShared)
	if err != nil {
		t.Fatalf("Unbind: %v", err)
	}
	if id != p.ID() {
		t.Fatalf("Unbind returned id %d, want %d", id, p.ID())
	}
	if w.Current() != nil {
		t.Fatal("Current should be nil after unbind")
	}
	got, err := w.Bind(connKey, BindShared)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if got != p {
		t.Fatal("Bind returned a different pBox")
	}
}

// TestLazyUnbindAvoidsCrossings: unbind immediately followed by bind of the
// same pBox must not cost manager crossings (Section 5's optimization).
func TestLazyUnbindAvoidsCrossings(t *testing.T) {
	h := newHarness(t)
	p := h.pbox(0.5)
	w := h.m.NewWorker()
	if err := w.BindDirect(p); err != nil {
		t.Fatal(err)
	}
	base := h.m.Crossings()
	for i := 0; i < 100; i++ {
		if _, err := w.Unbind(uintptr(0x1), BindShared); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Bind(uintptr(0x1), BindShared); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.m.Crossings() - base; got != 0 {
		t.Fatalf("lazy unbind/bind cost %d crossings, want 0", got)
	}
}

// TestEagerUnbindPublishes: binding a different pBox after a lazy unbind
// publishes the detached association so another worker can pick it up.
func TestEagerUnbindPublishes(t *testing.T) {
	h := newHarness(t)
	p1 := h.pbox(0.5)
	p2 := h.pbox(0.5)
	h.m.Associate(p2, uintptr(0x2))

	w := h.m.NewWorker()
	if err := w.BindDirect(p1); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Unbind(uintptr(0x1), BindShared); err != nil {
		t.Fatal(err)
	}
	// Bind a different key: the lazy detach of p1 must be published.
	got, err := w.Bind(uintptr(0x2), BindShared)
	if err != nil {
		t.Fatalf("Bind(0x2): %v", err)
	}
	if got != p2 {
		t.Fatal("bound wrong pBox")
	}
	// Another worker finds p1 under key 0x1.
	w2 := h.m.NewWorker()
	got1, err := w2.Bind(uintptr(0x1), BindShared)
	if err != nil {
		t.Fatalf("worker2 Bind(0x1): %v", err)
	}
	if got1 != p1 {
		t.Fatal("worker2 bound wrong pBox")
	}
}

func TestBindUnknownKeyFails(t *testing.T) {
	h := newHarness(t)
	w := h.m.NewWorker()
	if _, err := w.Bind(uintptr(0x404), BindShared); err == nil {
		t.Fatal("expected error binding unknown key")
	}
}

func TestUnbindWithoutBindFails(t *testing.T) {
	h := newHarness(t)
	w := h.m.NewWorker()
	if _, err := w.Unbind(uintptr(1), BindShared); err == nil {
		t.Fatal("expected error unbinding with nothing bound")
	}
}

// TestBindPenalizedSharedPBox: a shared-thread pBox under penalty must fail
// Bind with ErrPenalized carrying the remaining wait.
func TestBindPenalizedSharedPBox(t *testing.T) {
	h := newHarness(t)
	noisy := h.pbox(0.5)
	victim := h.pbox(0.5)
	h.m.MarkShared(noisy)
	h.m.Associate(noisy, uintptr(0x7))
	key := ResourceKey(5)

	h.m.Activate(noisy)
	h.m.Activate(victim)
	h.m.Update(noisy, key, Hold)
	h.m.Update(victim, key, Prepare)
	h.advance(4 * time.Millisecond)
	h.m.Update(noisy, key, Unhold) // penalty -> penaltyUntil

	w := h.m.NewWorker()
	_, err := w.Bind(uintptr(0x7), BindShared)
	var pe *ErrPenalized
	if !errors.As(err, &pe) {
		t.Fatalf("Bind err = %v, want ErrPenalized", err)
	}
	if pe.Wait <= 0 || pe.PBoxID != noisy.ID() {
		t.Fatalf("ErrPenalized = %+v", pe)
	}
	// After the deadline, bind succeeds.
	h.advance(pe.Wait + time.Millisecond)
	if _, err := w.Bind(uintptr(0x7), BindShared); err != nil {
		t.Fatalf("Bind after deadline: %v", err)
	}
}

// TestReleaseDropsBinding: releasing an associated pBox removes the key.
func TestReleaseDropsBinding(t *testing.T) {
	h := newHarness(t)
	p := h.pbox(0.5)
	h.m.Associate(p, uintptr(0x9))
	if err := h.m.Release(p); err != nil {
		t.Fatal(err)
	}
	w := h.m.NewWorker()
	if _, err := w.Bind(uintptr(0x9), BindShared); err == nil {
		t.Fatal("bind to released pBox's key should fail")
	}
}
