package core

import "fmt"

// Hibernation (DESIGN.md §15) is the storage tier below StateFrozen for the
// million-registered, few-active tenant regime of the wire ingestion tier: a
// registered pBox that will stay idle for a while is compacted down to its
// bare struct — event-structural maps freed, blame map dropped, the activity
// history ring shrunk to an exact-size slice — while its identity, isolation
// rule, label, lifetime accounting, bindings, and any carried penalty all
// survive. The next Activate wakes it transparently; no caller can tell a
// woken pBox from one that was merely frozen, and the verdict stream over a
// given event sequence is identical either way (the differential test in
// hibernate_test.go proves it).
//
// State machine:
//
//	started/frozen ── Hibernate ──▶ hibernated ── Activate ──▶ active
//	                                    │
//	                                 Release ──▶ destroyed
//
// Hibernate refuses mid-activity pBoxes (StateActive) and pBoxes holding
// resources or waits across activities (their shard-side records reference
// the maps being freed). Pending penalties are carried, not discarded: they
// live in scalar fields that cost nothing to keep, and dropping them would
// let a noisy pBox launder an unserved penalty through a hibernate cycle.

// Hibernate compacts an idle pBox to its minimal resident footprint. The
// handle stays valid and registered; Activate wakes it transparently.
// It is idempotent on an already-hibernated pBox and returns an error when
// the pBox is mid-activity (StateActive), destroyed, or holds resources or
// waits across activities.
func (m *Manager) Hibernate(p *PBox) error {
	m.crossings.Add(1)
	// Stragglers spooled against this pBox must reach the books (or be
	// dropped by the replay's state check) before its structures go away.
	m.flushSpoolsFor(p)
	p.mu.Lock()
	defer p.mu.Unlock()
	switch State(p.state.Load()) {
	case StateHibernated:
		return nil
	case StateActive:
		return fmt.Errorf("pbox: cannot hibernate pbox %d mid-activity", p.id)
	case StateDestroyed:
		return ErrReleased
	}
	if len(p.holders) > 0 || len(p.preparing) > 0 {
		return fmt.Errorf("pbox: cannot hibernate pbox %d: holds resources or waits across activities", p.id)
	}
	// Free the event-structural maps; Activate reallocates them at wake.
	// Both are empty here, so no shard-side record can reference them.
	p.holders = nil
	p.preparing = nil
	p.actMu.Lock()
	p.compactHistoryLocked()
	// blame is per-activity state reset by the next Activate anyway.
	p.blame = nil
	p.actMu.Unlock()
	p.setState(StateHibernated)
	m.self.hibernations.Add(1)
	m.self.hibernated.Add(1)
	m.traceEvent(p, 0, "hibernate", 0)
	return nil
}

// Hibernated returns the number of currently hibernated pBoxes.
func (m *Manager) Hibernated() int64 { return m.self.hibernated.Load() }

// compactHistoryLocked rewrites the activity-history ring as an exact-size,
// oldest-first slice, shedding the slack capacity append growth left behind.
// Verdict-neutral: every history consumer (the totalDefer/totalExec sums,
// the sorted tail/max percentile, the windowed adaptive-penalty score) is
// insensitive to element order, and when the ring was full the oldest record
// lands at position 0 with histPos reset to 0, so the next overwrite evicts
// exactly the record the un-compacted ring would have evicted. Caller holds
// p.actMu.
func (p *PBox) compactHistoryLocked() {
	if len(p.history) == 0 {
		p.history = nil
		p.histPos = 0
		return
	}
	out := make([]activityRecord, len(p.history))
	if p.histFull {
		n := copy(out, p.history[p.histPos:])
		copy(out[n:], p.history[:p.histPos])
	} else {
		copy(out, p.history)
	}
	p.history = out
	p.histPos = 0
}
