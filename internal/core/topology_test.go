package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// Tests for the adaptive shard/spool topology (topology.go, DESIGN.md §13):
// the sizing rule, the resize protocol's state preservation, the sizer's
// grow/shrink policy, verdict neutrality under mid-run resizes, and the
// -race stress of resizing under live two-tier load.

// TestDefaultShardCountRule pins the sizing rule: 4× parallelism, rounded up
// to a power of two, clamped to [8, 256], and fed from GOMAXPROCS (not
// NumCPU) so a CPU-quota'd container does not over-stripe.
func TestDefaultShardCountRule(t *testing.T) {
	cases := []struct{ parallelism, want int }{
		{1, 8},   // floor
		{2, 8},   // 4×2 = 8, at the floor exactly
		{3, 16},  // 12 rounds up
		{4, 16},  // exact power of two
		{6, 32},  // 24 rounds up
		{16, 64}, // 4×16
		{64, 256},
		{100, 256}, // ceiling
		{512, 256}, // ceiling holds however large the host
	}
	for _, c := range cases {
		if got := defaultShardCountFor(c.parallelism); got != c.want {
			t.Errorf("defaultShardCountFor(%d) = %d, want %d", c.parallelism, got, c.want)
		}
	}
	// The zero-Options default must agree with the rule applied to the
	// live GOMAXPROCS value.
	m := NewManager(Options{})
	if got, want := m.ShardCount(), defaultShardCount(); got != want {
		t.Errorf("default ShardCount = %d, want %d", got, want)
	}
}

// TestResizeShardsPreservesState: live waiters, holders, and resource names
// must survive a grow and a shrink unchanged, the lock-acquisition total
// must stay monotone across the migrations, and every diagnostic keeps
// answering through the new topology.
func TestResizeShardsPreservesState(t *testing.T) {
	h := newHarness(t)
	holder := h.pbox(0.5)
	waiter := h.pbox(0.5)
	h.m.Activate(holder)
	h.m.Activate(waiter)

	// Spread state across many keys so both resizes really redistribute.
	keys := make([]ResourceKey, 40)
	for i := range keys {
		keys[i] = ResourceKey(0x1000 + i*0x61) // odd stride: hit many stripes
		h.m.NameResource(keys[i], fmt.Sprintf("res-%d", i))
		h.m.Update(holder, keys[i], Hold)
		h.m.Update(waiter, keys[i], Prepare)
	}
	check := func(stage string, wantShards int) {
		t.Helper()
		if got := h.m.ShardCount(); got != wantShards {
			t.Fatalf("%s: ShardCount = %d, want %d", stage, got, wantShards)
		}
		for i, key := range keys {
			if w := h.m.Waiters(key); w != 1 {
				t.Fatalf("%s: Waiters(key %d) = %d, want 1", stage, i, w)
			}
			if hd := h.m.Holders(key); hd != 1 {
				t.Fatalf("%s: Holders(key %d) = %d, want 1", stage, i, hd)
			}
			if name := h.m.ResourceName(key); name != fmt.Sprintf("res-%d", i) {
				t.Fatalf("%s: ResourceName(key %d) = %q", stage, i, name)
			}
		}
	}

	check("before", defaultShardCount())
	locksBefore := h.m.SelfStats().ShardLockAcquisitions

	h.m.ResizeShards(64)
	check("after grow", 64)
	if got := h.m.SelfStats().ShardLockAcquisitions; got < locksBefore {
		t.Fatalf("lock total went backwards across grow: %d -> %d", locksBefore, got)
	}

	h.m.ResizeShards(8)
	check("after shrink", 8)

	// The event machinery must keep working through migrated state: the
	// held keys release cleanly and detection still sees the old waits.
	h.advance(time.Millisecond)
	for _, key := range keys {
		h.m.Update(holder, key, Unhold)
		h.m.Update(waiter, key, Enter)
		h.m.Update(waiter, key, Hold)
		h.m.Update(waiter, key, Unhold)
	}
	for i, key := range keys {
		if w, hd := h.m.Waiters(key), h.m.Holders(key); w != 0 || hd != 0 {
			t.Fatalf("dangling bookkeeping on key %d: waiters=%d holders=%d", i, w, hd)
		}
	}
	st := h.m.SelfStats()
	if st.ShardResizes != 2 {
		t.Fatalf("ShardResizes = %d, want 2", st.ShardResizes)
	}
	if n := len(st.TopologyDecisions); n != 2 {
		t.Fatalf("decision log has %d entries, want 2: %+v", n, st.TopologyDecisions)
	}
	if d := st.TopologyDecisions[0]; d.Kind != "shards" || d.To != 64 || d.Reason != "manual" {
		t.Fatalf("first decision = %+v", d)
	}
}

// TestResizeShardsClamps: the manual resize rounds to a power of two and
// respects the [minShards, maxShards] bounds.
func TestResizeShardsClamps(t *testing.T) {
	h := newHarness(t)
	h.m.ResizeShards(3)
	if got := h.m.ShardCount(); got != minShards {
		t.Fatalf("ResizeShards(3) -> %d, want floor %d", got, minShards)
	}
	h.m.ResizeShards(100)
	if got := h.m.ShardCount(); got != 128 {
		t.Fatalf("ResizeShards(100) -> %d, want next pow2 128", got)
	}
	h.m.ResizeShards(1 << 20)
	if got := h.m.ShardCount(); got != maxShards {
		t.Fatalf("ResizeShards(1<<20) -> %d, want ceiling %d", got, maxShards)
	}
}

// TestResizeSpoolCapacity: live spools and new workers adopt the retuned
// capacity; a spooling-disabled manager stays disabled.
func TestResizeSpoolCapacity(t *testing.T) {
	h := newHarness(t)
	p := h.pbox(0.5)
	h.m.Activate(p)
	w := h.m.NewWorker()
	if err := w.BindDirect(p); err != nil {
		t.Fatalf("BindDirect: %v", err)
	}
	w.Update(ResourceKey(7), Hold) // leave a record buffered

	h.m.ResizeSpoolCapacity(128)
	if got := h.m.SpoolCapacity(); got != 128 {
		t.Fatalf("SpoolCapacity = %d, want 128", got)
	}
	// The resize flushed the live spool before reallocating: the buffered
	// HOLD must be visible, not lost.
	if got := h.m.Holders(ResourceKey(7)); got != 1 {
		t.Fatalf("Holders after spool resize = %d, want 1 (flushed, not dropped)", got)
	}
	if got := len(w.spool.recs); got != 128 {
		t.Fatalf("live spool capacity = %d, want 128", got)
	}
	if w2 := h.m.NewWorker(); len(w2.spool.recs) != 128 {
		t.Fatalf("new worker spool capacity = %d, want 128", len(w2.spool.recs))
	}
	// Bounds clamp.
	h.m.ResizeSpoolCapacity(1)
	if got := h.m.SpoolCapacity(); got != minSpoolCap {
		t.Fatalf("SpoolCapacity after clamp = %d, want %d", got, minSpoolCap)
	}

	// Spooling disabled at construction stays disabled through a resize.
	h2 := newHarness(t, func(o *Options) { o.SpoolSize = -1 })
	h2.m.ResizeSpoolCapacity(256)
	if got := h2.m.SpoolCapacity(); got > 0 {
		t.Fatalf("disabled manager gained spool capacity %d", got)
	}
	if w := h2.m.NewWorker(); w.spool != nil {
		t.Fatal("disabled manager handed out a spool after resize")
	}
}

// TestAdaptiveSizerGrowShrink drives the sizer's policy deterministically:
// telemetry counters are advanced by hand between forced ticks, and the
// stripe set and spool capacity must double on hot deltas, halve only after
// the quiet-tick hysteresis, and respect the bounds.
func TestAdaptiveSizerGrowShrink(t *testing.T) {
	h := newHarness(t, func(o *Options) {
		o.AdaptiveTopology = true
		o.Shards = 8
	})
	m := h.m
	tick := func() {
		h.advance(20 * time.Millisecond)
		m.AdaptTopology()
	}

	tick() // first tick: baselines only, no decision
	if got := m.ShardCount(); got != 8 {
		t.Fatalf("shards after baseline tick = %d", got)
	}

	// Hot interval: per-stripe delta ≥ the grow threshold → double.
	m.shards.Load().shards[0].locks.Add(8 * sizerGrowLocksPerStripe)
	tick()
	if got := m.ShardCount(); got != 16 {
		t.Fatalf("shards after hot tick = %d, want 16", got)
	}

	// One quiet interval must NOT shrink (hysteresis)...
	tick()
	if got := m.ShardCount(); got != 16 {
		t.Fatalf("shards after one quiet tick = %d, want 16 (hysteresis)", got)
	}
	// ...but sizerQuietTicks of them do, down to the floor and no further.
	for i := 0; i < 3*sizerQuietTicks; i++ {
		tick()
	}
	if got := m.ShardCount(); got != minShards {
		t.Fatalf("shards after sustained quiet = %d, want floor %d", got, minShards)
	}

	// Spool grow: overflows with near-full average batches.
	m.self.spoolOverflows.Add(4)
	m.self.spoolFlushes.Add(10)
	m.self.spoolFlushedEvents.Add(10 * 250) // avg 250 of 256: nearly full
	tick()
	if got := m.SpoolCapacity(); got != 512 {
		t.Fatalf("spool capacity after overflow tick = %d, want 512", got)
	}

	// Spool shrink: sustained tiny batches.
	for i := 0; i < sizerQuietTicks; i++ {
		m.self.spoolFlushes.Add(10)
		m.self.spoolFlushedEvents.Add(10 * 2) // avg 2 of 512
		tick()
	}
	if got := m.SpoolCapacity(); got != 256 {
		t.Fatalf("spool capacity after underfill ticks = %d, want 256", got)
	}

	st := m.SelfStats()
	if !st.AdaptiveTopology {
		t.Fatal("SelfStats.AdaptiveTopology = false")
	}
	if st.TopologyTicks == 0 || st.ShardResizes < 2 || st.SpoolResizes < 2 {
		t.Fatalf("telemetry: ticks=%d shardResizes=%d spoolResizes=%d",
			st.TopologyTicks, st.ShardResizes, st.SpoolResizes)
	}
	for _, d := range st.TopologyDecisions {
		if d.Reason == "manual" {
			t.Fatalf("sizer decision logged as manual: %+v", d)
		}
	}

	// The sizer must be inert when disabled.
	h2 := newHarness(t)
	h2.m.shards.Load().shards[0].locks.Add(1 << 20)
	h2.m.AdaptTopology()
	h2.m.AdaptTopology()
	if got := h2.m.SelfStats(); got.TopologyTicks != 0 || got.ShardResizes != 0 {
		t.Fatalf("disabled sizer acted: %+v", got)
	}
}

// TestAdaptiveSizerTicksFromRebuild: with AdaptiveTopology on, the snapshot
// rebuild cadence drives sizer ticks with no explicit AdaptTopology call.
func TestAdaptiveSizerTicksFromRebuild(t *testing.T) {
	h := newHarness(t, func(o *Options) {
		o.AdaptiveTopology = true
		o.Shards = 8
		o.SnapshotInterval = 10 * time.Millisecond
	})
	h.m.StatusView() // first rebuild: baseline tick
	h.m.shards.Load().shards[0].locks.Add(8 * sizerGrowLocksPerStripe)
	h.advance(20 * time.Millisecond)
	h.m.StatusView() // stale view: rebuild, sizer observes the hot delta
	if got := h.m.ShardCount(); got != 16 {
		t.Fatalf("shards after rebuild-driven tick = %d, want 16", got)
	}
	if ticks := h.m.SelfStats().TopologyTicks; ticks < 2 {
		t.Fatalf("TopologyTicks = %d, want ≥ 2", ticks)
	}
}

// runTopologyDiffScript is the verdict-neutrality differential: the exact
// interference script of the spool differential, optionally with topology
// churn injected mid-script — shard grows and shrinks, spool retunes, and
// forced sizer ticks between phases and inside the contended window.
func runTopologyDiffScript(t *testing.T, churn bool) diffResult {
	t.Helper()
	var obs *diffObserver
	h := newHarness(t, func(o *Options) {
		o.Attribution = true
		o.SpoolSize = 16
		o.AdaptiveTopology = churn
		obs = newDiffObserver()
		o.Observer = obs
	})
	noisy := h.pbox(0.5)
	victim := h.pbox(0.5)
	h.m.Activate(noisy)
	h.m.Activate(victim)

	nw := h.m.NewWorker()
	vw := h.m.NewWorker()
	if err := nw.BindDirect(noisy); err != nil {
		t.Fatalf("BindDirect(noisy): %v", err)
	}
	if err := vw.BindDirect(victim); err != nil {
		t.Fatalf("BindDirect(victim): %v", err)
	}
	resize := func(shards, spool int) {
		if churn {
			h.m.ResizeShards(shards)
			h.m.ResizeSpoolCapacity(spool)
			h.m.AdaptTopology()
		}
	}

	// Phase 1: disjoint fast-path traffic with a resize in the middle of
	// the spooling, so buffered records cross a spool-capacity flush and a
	// shard migration.
	const coldN, coldV = ResourceKey(0x100), ResourceKey(0x200)
	for i := 0; i < 40; i++ {
		if i == 20 {
			resize(64, 64)
		}
		nw.Update(coldN, Hold)
		h.advance(2 * time.Microsecond)
		nw.Update(coldN, Unhold)
		h.advance(2 * time.Microsecond)
		vw.Update(coldV, Prepare)
		h.advance(time.Microsecond)
		vw.Update(coldV, Enter)
		h.advance(3 * time.Microsecond)
		vw.Update(coldV, Hold)
		vw.Update(coldV, Unhold)
		h.advance(2 * time.Microsecond)
	}
	resize(8, 128)

	// Phase 2: cross-pBox interference, with a shard migration while the
	// noisy HOLD and the victim's wait are live on the shared key's shard —
	// the waiter/holder records cross the migration and the verdict must
	// still fire identically.
	const shared = ResourceKey(42)
	nw.Update(shared, Hold)
	h.advance(100 * time.Microsecond)
	vw.Update(shared, Prepare)
	resize(32, 64)
	h.advance(900 * time.Microsecond)
	nw.Update(shared, Unhold) // settle: detection + penalty on noisy
	h.advance(10 * time.Microsecond)
	vw.Update(shared, Enter)
	h.advance(50 * time.Microsecond)
	vw.Update(shared, Hold)
	h.advance(20 * time.Microsecond)
	vw.Update(shared, Unhold)

	nw.Flush()
	vw.Flush()
	h.m.Freeze(noisy)
	h.m.Freeze(victim)

	res := diffResult{
		sleeps:    h.sleeps,
		obs:       obs,
		snapshots: make(map[int]Snapshot),
		attr:      make(map[diffTriple]AttributionRecord),
		crossings: h.m.Crossings(),
	}
	st := h.m.Status()
	for _, s := range st.Snapshots {
		res.snapshots[s.ID] = s
	}
	for _, r := range st.Attribution {
		res.attr[diffTriple{r.CulpritID, r.VictimID, r.Key}] = r
	}
	return res
}

// TestTopologyDifferentialVerdicts is the verdict-neutrality acceptance
// check: a run whose topology is grown, shrunk, and sizer-ticked mid-script
// must produce the identical detection verdicts, penalty actions, sleeps,
// snapshots, and attribution totals as a fixed-topology run of the same
// script.
func TestTopologyDifferentialVerdicts(t *testing.T) {
	churned := runTopologyDiffScript(t, true)
	fixed := runTopologyDiffScript(t, false)

	if len(fixed.obs.dets) == 0 || len(fixed.obs.acts) == 0 || len(fixed.sleeps) == 0 {
		t.Fatalf("script produced no interference: dets=%d acts=%d sleeps=%d",
			len(fixed.obs.dets), len(fixed.obs.acts), len(fixed.sleeps))
	}
	compareDiffResults(t, churned, fixed)
	if len(churned.obs.dets) != len(fixed.obs.dets) {
		t.Fatalf("detections: churned %v, fixed %v", churned.obs.dets, fixed.obs.dets)
	}
	for i := range fixed.obs.dets {
		if churned.obs.dets[i] != fixed.obs.dets[i] {
			t.Fatalf("detection %d: churned %+v, fixed %+v", i, churned.obs.dets[i], fixed.obs.dets[i])
		}
	}
	for i := range fixed.obs.acts {
		if churned.obs.acts[i] != fixed.obs.acts[i] {
			t.Fatalf("action %d: churned %+v, fixed %+v", i, churned.obs.acts[i], fixed.obs.acts[i])
		}
	}
}

// TestNoCachePadLayout: the benchmark-only unpadded switch selects the
// adjacent-slot table; both layouts route a key to a working slot.
func TestNoCachePadLayout(t *testing.T) {
	padded := NewManager(Options{})
	if got := padded.contention.stride(); got != padWords {
		t.Fatalf("padded stride = %d words, want %d", got, padWords)
	}
	unpadded := NewManager(Options{NoCachePad: true})
	if got := unpadded.contention.stride(); got != 1 {
		t.Fatalf("unpadded stride = %d words, want 1", got)
	}
	for _, m := range []*Manager{padded, unpadded} {
		slot := m.contentionSlot(ResourceKey(0xdeadbeef))
		slot.Store(7)
		if got := m.contentionSlot(ResourceKey(0xdeadbeef)).Load(); got != 7 {
			t.Fatal("slot lookup is not stable")
		}
		slot.Store(contendedSlot)
		if got := m.contention.stickySlots(); got != 1 {
			t.Fatalf("stickySlots = %d, want 1", got)
		}
	}
}

// TestConcurrentTopologyResizeStress runs disjoint fast-path load, contended
// slow-path load, and diagnostic readers while the topology is resized
// continuously — both by explicit ResizeShards/ResizeSpoolCapacity cycling
// and by the adaptive sizer ticking off forced snapshot rebuilds. Run under
// -race (the CI race step matches TestConcurrent*). Asserts: snapshot epochs
// are strictly monotone per refresh and non-decreasing per read, no view is
// torn (resource views never go negative and the pBox list stays sorted),
// and after quiescence every waiter/holder record is gone and the lock
// totals are monotone.
func TestConcurrentTopologyResizeStress(t *testing.T) {
	m := NewManager(Options{
		MinPenalty:       20 * time.Microsecond,
		MaxPenalty:       100 * time.Microsecond,
		AdaptiveTopology: true,
		Shards:           8,
		SpoolSize:        64,
		SnapshotInterval: time.Millisecond,
	})
	const (
		workers = 6
		rounds  = 40
	)
	hotKeys := []ResourceKey{0x10, 0x11}

	stop := make(chan struct{})
	var aux sync.WaitGroup

	// Topology churn: cycle the stripe set and spool capacity while load runs.
	aux.Add(1)
	go func() {
		defer aux.Done()
		sizes := []int{8, 16, 64, 32}
		caps := []int{64, 128, 256}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m.ResizeShards(sizes[i%len(sizes)])
			m.ResizeSpoolCapacity(caps[i%len(caps)])
			m.AdaptTopology()
		}
	}()

	// Snapshot readers: epochs must never go backwards, forced refreshes
	// must strictly advance, and no view may be torn.
	aux.Add(1)
	go func() {
		defer aux.Done()
		var lastEpoch uint64
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var v *StatusView
			if i%4 == 0 {
				v = m.RefreshStatusView()
				if v.Epoch <= lastEpoch {
					t.Errorf("refresh epoch not strictly monotone: %d after %d", v.Epoch, lastEpoch)
					return
				}
			} else {
				v = m.StatusView()
				if v.Epoch < lastEpoch {
					t.Errorf("view epoch went backwards: %d after %d", v.Epoch, lastEpoch)
					return
				}
			}
			lastEpoch = v.Epoch
			for _, rv := range v.Resources {
				if rv.Waiters < 0 || rv.Holders < 0 {
					t.Errorf("torn resource view: %+v", rv)
					return
				}
			}
			for j := 1; j < len(v.Snapshots); j++ {
				if v.Snapshots[j-1].ID >= v.Snapshots[j].ID {
					t.Errorf("torn snapshot list: ids %d, %d", v.Snapshots[j-1].ID, v.Snapshots[j].ID)
					return
				}
			}
			_ = m.SelfStats()
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			worker := m.NewWorker()
			p, err := m.Create(DefaultRule())
			if err != nil {
				t.Error(err)
				return
			}
			defer func() {
				if err := m.Release(p); err != nil {
					t.Error(err)
				}
			}()
			if err := worker.BindDirect(p); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < rounds; i++ {
				m.Activate(p)
				// Disjoint fast-path traffic on per-goroutine keys.
				for k := 0; k < 8; k++ {
					cold := ResourceKey(0x1000 + g*64 + k)
					worker.Update(cold, Hold)
					worker.Update(cold, Unhold)
				}
				// Contended slow-path traffic on the shared hot set.
				hot := hotKeys[(g+i)%len(hotKeys)]
				m.Update(p, hot, Prepare)
				m.Update(p, hot, Enter)
				m.Update(p, hot, Hold)
				if i%8 == 0 {
					time.Sleep(20 * time.Microsecond)
				}
				m.Update(p, hot, Unhold)
				worker.Flush()
				m.Freeze(p)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	aux.Wait()

	if live := m.Live(); live != 0 {
		t.Fatalf("live pboxes after stress = %d", live)
	}
	for g := 0; g < workers; g++ {
		for k := 0; k < 8; k++ {
			if key := ResourceKey(0x1000 + g*64 + k); m.Waiters(key) != 0 || m.Holders(key) != 0 {
				t.Fatalf("dangling bookkeeping on cold key %#x", uintptr(key))
			}
		}
	}
	for _, key := range hotKeys {
		if m.Waiters(key) != 0 || m.Holders(key) != 0 {
			t.Fatalf("dangling bookkeeping on hot key %#x", uintptr(key))
		}
	}
	st := m.SelfStats()
	if st.ShardResizes == 0 || st.SpoolResizes == 0 {
		t.Fatalf("stress performed no resizes: %+v", st)
	}
	if st.ShardLockAcquisitions <= 0 {
		t.Fatalf("lock total not preserved across resizes: %d", st.ShardLockAcquisitions)
	}
}
