package core

import (
	"fmt"
	"sync"
	"time"
)

// TraceEntry is one record in the manager's in-memory trace ring. The paper
// notes (Section 8) that pBox log traces help developers understand an
// interference issue; the ring is the reproduction's equivalent.
type TraceEntry struct {
	At    time.Duration // manager-clock offset
	PBox  int
	Key   ResourceKey
	What  string        // event name, lifecycle op, or "action:<policy>"
	Extra time.Duration // penalty length or defer time where applicable
}

// String formats the entry for human consumption.
func (t TraceEntry) String() string {
	if t.Extra != 0 {
		return fmt.Sprintf("%12v pbox=%-4d key=%#x %-12s %v", t.At, t.PBox, uintptr(t.Key), t.What, t.Extra)
	}
	return fmt.Sprintf("%12v pbox=%-4d key=%#x %-12s", t.At, t.PBox, uintptr(t.Key), t.What)
}

// traceRing is a fixed-capacity concurrent ring buffer of trace entries.
type traceRing struct {
	mu      sync.Mutex
	entries []TraceEntry
	pos     int
	full    bool
}

func newTraceRing(n int) *traceRing {
	return &traceRing{entries: make([]TraceEntry, 0, n)}
}

func (r *traceRing) add(e TraceEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) < cap(r.entries) {
		r.entries = append(r.entries, e)
		return
	}
	r.entries[r.pos] = e
	r.pos = (r.pos + 1) % cap(r.entries)
	r.full = true
}

func (r *traceRing) snapshot() []TraceEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]TraceEntry, len(r.entries))
		copy(out, r.entries)
		return out
	}
	out := make([]TraceEntry, 0, cap(r.entries))
	out = append(out, r.entries[r.pos:]...)
	out = append(out, r.entries[:r.pos]...)
	return out
}

// traceEvent appends to the ring when tracing is enabled. Caller holds m.mu
// (or is otherwise race-free with respect to the pBox fields it reads).
func (m *Manager) traceEvent(p *PBox, key ResourceKey, what string, extra time.Duration) {
	if m.trace == nil {
		return
	}
	m.trace.add(TraceEntry{
		At:    time.Duration(m.opts.Now()),
		PBox:  p.id,
		Key:   key,
		What:  what,
		Extra: extra,
	})
}

// Trace returns the trace entries recorded so far, oldest first. It returns
// nil when tracing was not enabled.
func (m *Manager) Trace() []TraceEntry {
	if m.trace == nil {
		return nil
	}
	return m.trace.snapshot()
}
