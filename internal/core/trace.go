package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceEntry is one record in the manager's in-memory trace ring. The paper
// notes (Section 8) that pBox log traces help developers understand an
// interference issue; the ring is the reproduction's equivalent.
type TraceEntry struct {
	Seq   uint64        // monotonically increasing sequence number
	At    time.Duration // manager-clock offset
	PBox  int
	Key   ResourceKey
	Name  string        // human-readable resource name, when registered
	What  string        // event name, lifecycle op, or "action:<policy>"
	Extra time.Duration // penalty length or defer time where applicable
}

// String formats the entry for human consumption.
func (t TraceEntry) String() string {
	key := t.Name
	if key == "" {
		key = fmt.Sprintf("%#x", uintptr(t.Key))
	}
	if t.Extra != 0 {
		return fmt.Sprintf("%12v pbox=%-4d key=%s %-12s %v", t.At, t.PBox, key, t.What, t.Extra)
	}
	return fmt.Sprintf("%12v pbox=%-4d key=%s %-12s", t.At, t.PBox, key, t.What)
}

// traceRing is a fixed-capacity concurrent ring buffer of trace entries.
// Every entry carries a sequence number, and adds signal a notification
// channel, so readers can snapshot incrementally and long-poll for new
// entries (the /trace streaming endpoint). The ring has its own mutex (a
// leaf in the manager's lock order); the sequence counter is an atomic so
// long-poll readers can check for progress without touching the lock the
// event path appends under.
type traceRing struct {
	mu      sync.Mutex
	entries []TraceEntry
	pos     int
	full    bool
	seq     atomic.Uint64 // total entries ever added
	notify  chan struct{} // closed and replaced on every add
}

func newTraceRing(n int) *traceRing {
	if n <= 0 {
		// Reject degenerate capacities: a zero-capacity ring would divide
		// by cap()==0 on the full path of add. The minimum usable ring
		// holds one entry.
		n = 1
	}
	return &traceRing{
		entries: make([]TraceEntry, 0, n),
		notify:  make(chan struct{}),
	}
}

func (r *traceRing) add(e TraceEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.Seq = r.seq.Add(1)
	if len(r.entries) < cap(r.entries) {
		r.entries = append(r.entries, e)
	} else {
		r.entries[r.pos] = e
		r.pos = (r.pos + 1) % cap(r.entries)
		r.full = true
	}
	close(r.notify)
	r.notify = make(chan struct{})
}

// orderedLocked returns the ring contents oldest first. Caller holds r.mu;
// the result aliases nothing.
func (r *traceRing) orderedLocked() []TraceEntry {
	if !r.full {
		out := make([]TraceEntry, len(r.entries))
		copy(out, r.entries)
		return out
	}
	out := make([]TraceEntry, 0, cap(r.entries))
	out = append(out, r.entries[r.pos:]...)
	out = append(out, r.entries[:r.pos]...)
	return out
}

func (r *traceRing) snapshot() []TraceEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.orderedLocked()
}

// snapshotSince returns the entries with sequence number > since that are
// still in the ring (older ones have been overwritten), plus the current
// tail sequence to pass to the next call.
func (r *traceRing) snapshotSince(since uint64) ([]TraceEntry, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	all := r.orderedLocked()
	for i, e := range all {
		if e.Seq > since {
			return all[i:], r.seq.Load()
		}
	}
	return nil, r.seq.Load()
}

// waitCh returns a channel that is closed once the ring's sequence advances
// past since. If it already has, the returned channel is already closed —
// decided on the atomic alone, so a caught-up long-poller never contends
// with the event path for the ring lock.
func (r *traceRing) waitCh(since uint64) <-chan struct{} {
	if r.seq.Load() > since {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq.Load() > since {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	return r.notify
}

// traceEvent appends to the ring when tracing is enabled. Safe from any
// call site: the ring and the resource-name lookup use their own leaf
// locks, and the pBox fields read here (id) are immutable.
//
//pbox:hotpath
func (m *Manager) traceEvent(p *PBox, key ResourceKey, what string, extra time.Duration) {
	if m.trace == nil {
		return
	}
	m.traceEventAt(p, key, what, extra, m.opts.Now())
}

// traceEventAt is traceEvent with an explicit manager-clock timestamp: spool
// replays stamp entries with the recorded event time, so a batched event's At
// reflects when it happened, not when it was flushed. Sequence numbers are
// assigned at add time, so a ring holding replayed entries can show At values
// out of order across pBoxes — At is event time, Seq is ingestion order.
//
//pbox:hotpath
func (m *Manager) traceEventAt(p *PBox, key ResourceKey, what string, extra time.Duration, atNs int64) {
	if m.trace == nil {
		return
	}
	m.trace.add(TraceEntry{
		At:    time.Duration(atNs),
		PBox:  p.id,
		Key:   key,
		Name:  m.resourceName(key),
		What:  what,
		Extra: extra,
	})
}

// Trace returns the trace entries recorded so far, oldest first. It returns
// nil when tracing was not enabled.
func (m *Manager) Trace() []TraceEntry {
	if m.trace == nil {
		return nil
	}
	m.sweepSpools() // flush-on-read: spooled events must reach the ring
	return m.trace.snapshot()
}

// TraceSince returns the trace entries with sequence number greater than
// since that are still in the ring, plus the latest sequence number. With
// since == 0 it behaves like Trace. It returns (nil, 0) when tracing was not
// enabled.
func (m *Manager) TraceSince(since uint64) ([]TraceEntry, uint64) {
	if m.trace == nil {
		return nil, 0
	}
	m.sweepSpools() // flush-on-read: spooled events must reach the ring
	return m.trace.snapshotSince(since)
}

// TraceNotify returns a channel that is closed once an entry with sequence
// number greater than since exists (immediately, if one already does).
// Long-poll readers select on it together with their timeout. It returns nil
// when tracing was not enabled.
func (m *Manager) TraceNotify(since uint64) <-chan struct{} {
	if m.trace == nil {
		return nil
	}
	return m.trace.waitCh(since)
}
