package core

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSnapshotBoundedStaleness pins the §12 contract: a view returned by
// StatusView is never older than SnapshotInterval under the manager clock,
// reads inside the interval share one published view, and the first read
// past the interval rebuilds with the next epoch.
func TestSnapshotBoundedStaleness(t *testing.T) {
	h := newHarness(t)
	p := h.pbox(0.5)
	h.m.Activate(p)

	v1 := h.m.StatusView()
	if v1.Epoch != 1 {
		t.Fatalf("first view epoch = %d, want 1", v1.Epoch)
	}
	if v2 := h.m.StatusView(); v2 != v1 {
		t.Fatalf("second read inside the interval rebuilt: epoch %d", v2.Epoch)
	}

	h.advance(50 * time.Millisecond)
	v3 := h.m.StatusView()
	if v3 != v1 {
		t.Fatalf("read at 50ms rebuilt: epoch %d (interval is 100ms)", v3.Epoch)
	}
	if got := h.m.ViewAge(v3); got != 50*time.Millisecond {
		t.Fatalf("ViewAge = %v, want 50ms", got)
	}

	h.advance(60 * time.Millisecond) // age 110ms > 100ms interval
	v4 := h.m.StatusView()
	if v4 == v1 || v4.Epoch != 2 {
		t.Fatalf("read at 110ms did not rebuild: epoch %d, want 2", v4.Epoch)
	}
	if got := h.m.ViewAge(v4); got != 0 {
		t.Fatalf("fresh view age = %v, want 0", got)
	}

	st := h.m.SelfStats()
	if st.SnapshotBuilds != 2 {
		t.Fatalf("SnapshotBuilds = %d, want 2", st.SnapshotBuilds)
	}
	if st.SnapshotCacheHits != 2 {
		t.Fatalf("SnapshotCacheHits = %d, want 2", st.SnapshotCacheHits)
	}
	if st.SnapshotEpoch != 2 {
		t.Fatalf("SelfStats epoch = %d, want 2", st.SnapshotEpoch)
	}
}

// TestSnapshotRefreshForcesRebuild: RefreshStatusView bumps the epoch even
// when the published view is fresh, so detection-time captures always see
// pre-call events.
func TestSnapshotRefreshForcesRebuild(t *testing.T) {
	h := newHarness(t)
	v1 := h.m.StatusView()
	v2 := h.m.RefreshStatusView()
	if v2.Epoch != v1.Epoch+1 {
		t.Fatalf("refresh epoch = %d, want %d", v2.Epoch, v1.Epoch+1)
	}
	if v3 := h.m.StatusView(); v3 != v2 {
		t.Fatalf("read after refresh did not return the refreshed view")
	}
}

// TestSnapshotIntervalDisabled: a negative SnapshotInterval turns caching
// off — every read rebuilds.
func TestSnapshotIntervalDisabled(t *testing.T) {
	h := newHarness(t, func(o *Options) { o.SnapshotInterval = -1 })
	v1 := h.m.StatusView()
	v2 := h.m.StatusView()
	if v2.Epoch != v1.Epoch+1 {
		t.Fatalf("disabled caching still served epoch %d after %d", v2.Epoch, v1.Epoch)
	}
}

// TestSnapshotDifferentialQuiesced: with no concurrent writers, a forced
// snapshot equals the precise flush-on-read Status() dump field for field —
// the epoch path loses only freshness, never content.
func TestSnapshotDifferentialQuiesced(t *testing.T) {
	h := newHarness(t, func(o *Options) { o.Attribution = true })
	noisy := h.pbox(0.5)
	h.m.SetLabel(noisy, "noisy")
	victim := h.pbox(0.5)
	h.m.Activate(noisy)
	h.m.Activate(victim)
	h.m.NameResource(0x100, "cache_lock")

	// Drive contention through a spooled worker and a direct victim so the
	// attribution ledger, holder sets, and trace all have content.
	w := h.m.NewWorker()
	if err := w.BindDirect(noisy); err != nil {
		t.Fatalf("BindDirect: %v", err)
	}
	for i := 0; i < 10; i++ {
		w.Update(0x100, Hold)
		h.advance(2 * time.Millisecond)
		h.m.Update(victim, 0x100, Prepare)
		h.m.Update(victim, 0x100, Enter)
		h.advance(2 * time.Millisecond)
		w.Update(0x100, Unhold)
		h.m.Update(victim, 0x100, Hold)
		h.m.Update(victim, 0x100, Unhold)
	}
	w.Update(0x200, Hold) // leave an open holder so Resources is non-empty
	w.Flush()

	precise := h.m.Status()
	snap := h.m.RefreshStatusView()
	if !reflect.DeepEqual(precise, snap.Status) {
		t.Fatalf("quiesced snapshot diverges from precise Status():\nprecise: %+v\nsnapshot: %+v", precise, snap.Status)
	}
	if len(snap.Resources) == 0 {
		t.Fatal("expected a non-empty Resources view (open holder on 0x200)")
	}
}

// TestSnapshotCachedViewMissesSpooledEvents pins the staleness trade
// explicitly: events still sitting in a worker spool are invisible to the
// cached view but visible to the precise flush-on-read Status() — and the
// precise read does not republish, so the cached view stays stale until the
// interval expires or a refresh is forced.
func TestSnapshotCachedViewMissesSpooledEvents(t *testing.T) {
	h := newHarness(t)
	p := h.pbox(0.5)
	h.m.Activate(p)
	w := h.m.NewWorker()
	if err := w.BindDirect(p); err != nil {
		t.Fatalf("BindDirect: %v", err)
	}

	v1 := h.m.StatusView() // epoch 1, before any event
	w.Update(0x300, Hold)  // spooled: uncontended fast path, not yet replayed

	if v2 := h.m.StatusView(); v2 != v1 || len(v2.Resources) != 0 {
		t.Fatalf("cached view changed or sees the spooled hold: epoch %d resources %v", v2.Epoch, v2.Resources)
	}

	precise := h.m.Status() // flush-on-read: sweeps the spool
	if len(precise.Resources) != 1 || precise.Resources[0].Key != 0x300 || precise.Resources[0].Holders != 1 {
		t.Fatalf("precise Status missed the spooled hold: %+v", precise.Resources)
	}

	// Status() must not have republished: the cached view is still epoch 1
	// without the holder.
	if v3 := h.m.StatusView(); v3 != v1 {
		t.Fatalf("precise read republished the view: epoch %d", v3.Epoch)
	}

	v4 := h.m.RefreshStatusView()
	if len(v4.Resources) != 1 || v4.Resources[0].Holders != 1 {
		t.Fatalf("refreshed view missed the flushed hold: %+v", v4.Resources)
	}
}

// TestConcurrentSnapshotReadersWriters races spooled writers, snapshot
// readers, self-telemetry readers, and forced refreshes (run under -race in
// CI). Readers assert the epoch protocol: epochs never move backwards, and
// every view is internally non-torn (BuiltAt set, epoch > 0).
func TestConcurrentSnapshotReadersWriters(t *testing.T) {
	m := NewManager(Options{
		Sleep:            func(time.Duration) {},
		SnapshotInterval: time.Millisecond,
		TraceSize:        256,
		Attribution:      true,
	})
	const writers, readers = 4, 3
	var quit atomic.Bool
	var wg sync.WaitGroup

	for i := 0; i < writers; i++ {
		p, err := m.Create(DefaultRule())
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		m.Activate(p)
		w := m.NewWorker()
		if err := w.BindDirect(p); err != nil {
			t.Fatalf("BindDirect: %v", err)
		}
		wg.Add(1)
		go func(w *Worker, key ResourceKey) {
			defer wg.Done()
			for !quit.Load() {
				w.Update(key, Hold)
				w.Update(key, Unhold)
				w.Update(0x999, Hold) // shared key: exercises the contended tier
				w.Update(0x999, Unhold)
			}
			w.Flush()
		}(w, ResourceKey(0x1000+i))
	}

	errs := make(chan string, readers+1)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			for !quit.Load() {
				v := m.StatusView()
				if v.Epoch == 0 || v.BuiltAt < 0 {
					errs <- "torn view published"
					return
				}
				if v.Epoch < lastEpoch {
					errs <- "epoch moved backwards"
					return
				}
				lastEpoch = v.Epoch
				_ = m.ViewAge(v)
				_ = m.SelfStats()
				_, _ = m.TraceView(v.TraceSeq)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !quit.Load() {
			v := m.RefreshStatusView()
			if v.Epoch == 0 {
				errs <- "refresh returned epoch 0"
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	time.Sleep(100 * time.Millisecond)
	quit.Store(true)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	st := m.SelfStats()
	if st.SnapshotBuilds == 0 || st.ShardLockAcquisitions == 0 {
		t.Fatalf("self-telemetry silent under load: %+v", st)
	}
}
