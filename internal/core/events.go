// Package core implements the pBox abstraction from "Pushing Performance
// Isolation Boundaries into Application with pBox" (SOSP 2023) as a
// userspace library. A pBox is a performance isolation domain within an
// application: developers create one per activity boundary (a client
// connection, a background task), annotate virtual-resource usage with four
// state events, and the manager detects imminent interference (Algorithm 1)
// and applies adaptive delay penalties to noisy pBoxes so that each pBox
// meets its relative isolation goal.
//
// The paper's implementation lives in the Linux kernel and communicates via
// syscalls; here the manager is in-process and "threads" are goroutines.
// Penalties are executed by making the noisy pBox's own goroutine sleep at
// its next safe point (no virtual resources held, no outstanding waits),
// which is exactly where the kernel version would have parked the thread
// with schedule_hrtimeout.
package core

import (
	"fmt"
	"time"
)

// EventType enumerates the four general state events of Table 1 in the
// paper. They describe the usage status of an application virtual resource
// (a buffer pool, an UNDO log, tickets, a queue, ...) without the manager
// needing to understand its semantics.
type EventType int

const (
	// Prepare: the pBox is deferred by a virtual resource currently held
	// by another pBox (it started waiting).
	Prepare EventType = iota
	// Enter: the pBox is no longer deferred by the resource.
	Enter
	// Hold: the pBox is holding the virtual resource.
	Hold
	// Unhold: the pBox has released the virtual resource.
	Unhold
)

// String returns the paper's name for the event.
func (e EventType) String() string {
	switch e {
	case Prepare:
		return "PREPARE"
	case Enter:
		return "ENTER"
	case Hold:
		return "HOLD"
	case Unhold:
		return "UNHOLD"
	default:
		return fmt.Sprintf("EventType(%d)", int(e))
	}
}

// ResourceKey names a virtual resource. The paper uses the address of the
// resource object; instrumented resources in internal/vres do the same via
// their own identity, and tests may use arbitrary integers.
type ResourceKey uintptr

// AggregateKey is the pseudo-resource used when the pBox-level monitor
// (Section 4.3.1, the 90%-of-goal average check) takes an action that is not
// attributable to one specific resource.
const AggregateKey ResourceKey = 0

// Metric selects how a pBox's interference level is aggregated across
// activities for the pBox-level monitor. Section 4.3.1: "Besides calculating
// the average, the manager supports other metrics including tail and max
// based on the same principle."
type Metric int

const (
	// MetricAverage compares the average interference level across the
	// pBox's history against the goal. This is the default.
	MetricAverage Metric = iota
	// MetricTail compares the 95th-percentile per-activity interference
	// level against the goal.
	MetricTail
	// MetricMax compares the maximum per-activity interference level
	// against the goal.
	MetricMax
)

// String returns a readable metric name.
func (m Metric) String() string {
	switch m {
	case MetricAverage:
		return "average"
	case MetricTail:
		return "tail"
	case MetricMax:
		return "max"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// RuleType enumerates isolation rule flavors. The paper's evaluation uses
// relative rules exclusively ("latency increase compared to the ideal,
// non-interference execution").
type RuleType int

const (
	// Relative bounds the interference level Tf = Td/(Te-Td): the
	// activity should be at most Level worse than its (unknown)
	// interference-free execution, which the manager treats as an ideal
	// run with zero deferring time.
	Relative RuleType = iota
)

// IsolationRule is the goal a pBox is created with (the IsolationRule
// argument of create_pbox in Figure 7). A Level of 0.5 means "no more than
// 50% worse than interference-free execution", the default in Section 6.2.
type IsolationRule struct {
	Type   RuleType
	Level  float64
	Metric Metric
}

// DefaultRule is the 50% relative rule used for the paper's main evaluation.
func DefaultRule() IsolationRule {
	return IsolationRule{Type: Relative, Level: 0.5, Metric: MetricAverage}
}

// Valid reports whether the rule is well formed.
func (r IsolationRule) Valid() bool {
	return r.Type == Relative && r.Level > 0 &&
		r.Metric >= MetricAverage && r.Metric <= MetricMax
}

// State is the pBox lifecycle status tracked by the manager
// (Section 4.3.2): start, active, freeze, destroy.
type State int

const (
	// StateStarted: the pBox exists (e.g. connection established) but no
	// activity is being traced.
	StateStarted State = iota
	// StateActive: an activity is executing and state events are traced.
	StateActive
	// StateFrozen: the activity finished; tracing stopped.
	StateFrozen
	// StateDestroyed: the pBox has been released.
	StateDestroyed
	// StateHibernated: the pBox is registered but compacted to its minimal
	// footprint (Manager.Hibernate); the next Activate wakes it
	// transparently. Like StateFrozen, no tracing happens.
	StateHibernated
)

// String returns a readable state name.
func (s State) String() string {
	switch s {
	case StateStarted:
		return "started"
	case StateActive:
		return "active"
	case StateFrozen:
		return "frozen"
	case StateDestroyed:
		return "destroyed"
	case StateHibernated:
		return "hibernated"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// BindFlags modify bind/unbind behaviour for event-driven applications
// (Section 4.1 and Section 5, "Supporting Event-driven Model").
type BindFlags int

const (
	// BindDedicated marks the binding thread as dedicated to this pBox;
	// penalties may delay the thread directly.
	BindDedicated BindFlags = iota
	// BindShared marks the binding thread as shared among pBoxes;
	// penalties must not delay the thread, so the manager instead makes
	// the noisy pBox's next activities wait in the task queue (surfaced
	// to the application as ErrPenalized from Bind).
	BindShared
)

// ErrPenalized is returned by Worker.Bind when the pBox being bound is a
// shared-thread pBox still under penalty: the activity must be put back on
// the task queue and retried after Wait. This is the userspace surface of
// the paper's kernel-queue manipulation.
type ErrPenalized struct {
	PBoxID int
	Wait   time.Duration
}

// Error implements the error interface.
func (e *ErrPenalized) Error() string {
	return fmt.Sprintf("pbox %d penalized for another %v", e.PBoxID, e.Wait)
}
