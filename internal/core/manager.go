package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pbox/internal/exec"
)

// Options configures a Manager. The zero value selects the paper's defaults.
type Options struct {
	// Now supplies the monotonic clock (ns). Defaults to exec.Now. Tests
	// inject a fake clock to drive the detection logic deterministically.
	Now func() int64
	// Sleep executes a penalty delay. Defaults to exec.SleepPrecise; tests
	// replace it to observe penalties without real delays.
	Sleep func(time.Duration)

	// MinPenalty and MaxPenalty clamp every penalty length. The kernel
	// implementation is bounded below by timer resolution and above by
	// sanity; we default to 200µs and 20ms (scaled to the µs–ms world the
	// simulated applications run in — a penalty below the applications'
	// wait-loop poll interval cannot open a usable window).
	MinPenalty time.Duration
	MaxPenalty time.Duration

	// Alpha is the α divisor of the score-based adaptive policy
	// (p_{i+1} = p1 × (1 + score/α)); the paper's default is 5.
	Alpha float64

	// PBoxLevelThreshold is the fraction of the goal at which the
	// pBox-level monitor acts (default 0.9, Section 4.3.1).
	PBoxLevelThreshold float64

	// GapPolicyFactor selects the gap-based policy when the triggering
	// wait exceeds factor × previous penalty ("If the deferring time is
	// much larger than the penalty, it chooses the second policy").
	// Default 2.
	GapPolicyFactor float64

	// FixedPenalty, when non-zero, disables the adaptive policies and
	// always applies this length (the Table 4 comparison mode).
	FixedPenalty time.Duration

	// DisablePBoxLevel turns off the end-of-activity average monitor,
	// leaving only Algorithm 1's per-resource detection.
	DisablePBoxLevel bool

	// DisableDetection turns the manager into a pure tracer: events are
	// accounted but no actions are taken. Used to measure tracing
	// overhead in isolation.
	DisableDetection bool

	// EventFilter, when set, is consulted on every Update; returning
	// false drops the event. The mistake-tolerance experiment
	// (Section 6.8) uses it to remove a fraction of update_pbox calls.
	EventFilter func(key ResourceKey, ev EventType) bool

	// TraceSize, when positive, enables the in-memory trace ring of that
	// capacity.
	TraceSize int

	// Observer, when non-nil, receives live notifications of manager
	// activity (see the Observer interface). The nil default keeps every
	// event path allocation-free. An Observer that also implements
	// AttributionObserver additionally receives the per-triple attribution
	// stream.
	Observer Observer

	// Attribution, when true, maintains the per-(culprit, victim,
	// resource) interference ledger (see AttributionRecord). Disabled it
	// costs one nil check per site and zero allocations.
	Attribution bool
}

func (o Options) withDefaults() Options {
	if o.Now == nil {
		o.Now = exec.Now
	}
	if o.Sleep == nil {
		o.Sleep = exec.SleepPrecise
	}
	if o.MinPenalty <= 0 {
		o.MinPenalty = 200 * time.Microsecond
	}
	if o.MaxPenalty <= 0 {
		o.MaxPenalty = 20 * time.Millisecond
	}
	if o.Alpha <= 0 {
		o.Alpha = 5
	}
	if o.PBoxLevelThreshold <= 0 {
		o.PBoxLevelThreshold = 0.9
	}
	if o.GapPolicyFactor <= 0 {
		o.GapPolicyFactor = 2
	}
	return o
}

// Manager is the pBox manager: it tracks every pBox's execution, receives
// state events, runs the interference detection of Algorithm 1, and applies
// penalty actions (Section 4.4). One Manager corresponds to the kernel-side
// component of the paper; an application process creates exactly one.
type Manager struct {
	opts Options

	mu          sync.Mutex
	nextID      int
	pboxes      map[int]*PBox
	competitors map[ResourceKey]*competitorList
	// holdersByKey indexes current holders per resource so PREPARE can
	// attribute blame and tests can inspect contention.
	holdersByKey map[ResourceKey]map[*PBox]int64
	// bindings maps unbind keys to detached pBoxes (event-driven model).
	bindings map[uintptr]*PBox

	// resourceNames maps virtual-resource keys to human-readable names
	// registered via NameResource, for traces and telemetry. It is guarded
	// by its own lock (not m.mu) so Observer implementations may resolve
	// names from inside hook callbacks without deadlocking; the only lock
	// ordering is m.mu → namesMu, never the reverse.
	namesMu       sync.RWMutex
	resourceNames map[ResourceKey]string

	actions *actionHistory
	trace   *traceRing
	obs     Observer
	// attrObs is opts.Observer's AttributionObserver side, cached at
	// construction so hook sites pay a nil check instead of a type assert.
	attrObs AttributionObserver
	// attr is the interference attribution ledger (nil unless
	// Options.Attribution).
	attr *attributionLedger

	// crossings counts conceptual user/kernel boundary crossings: every
	// manager entry point increments it. The lazy-unbind optimization
	// (Section 5) is validated by this counter going down.
	crossings atomic.Int64
}

// NewManager creates a manager with the given options.
func NewManager(opts Options) *Manager {
	opts = opts.withDefaults()
	m := &Manager{
		opts:         opts,
		pboxes:       make(map[int]*PBox),
		competitors:  make(map[ResourceKey]*competitorList),
		holdersByKey: make(map[ResourceKey]map[*PBox]int64),
		bindings:     make(map[uintptr]*PBox),
		actions:      newActionHistory(),
		obs:          opts.Observer,
	}
	if ao, ok := opts.Observer.(AttributionObserver); ok {
		m.attrObs = ao
	}
	if opts.Attribution {
		m.attr = newAttributionLedger()
	}
	if opts.TraceSize > 0 {
		m.trace = newTraceRing(opts.TraceSize)
	}
	return m
}

// ErrReleased is returned when an operation references a destroyed pBox.
var ErrReleased = errors.New("pbox: operation on released pBox")

// Create creates a pBox with the given isolation rule (create_pbox). The
// pBox starts in StateStarted; no tracing happens until Activate.
func (m *Manager) Create(rule IsolationRule) (*PBox, error) {
	if !rule.Valid() {
		return nil, fmt.Errorf("pbox: invalid isolation rule %+v", rule)
	}
	m.crossings.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	p := &PBox{
		id:        m.nextID,
		rule:      rule,
		mgr:       m,
		state:     StateStarted,
		holders:   make(map[ResourceKey]holdInfo),
		preparing: make(map[ResourceKey]int),
	}
	m.pboxes[p.id] = p
	m.traceEvent(p, 0, "create", 0)
	if m.obs != nil {
		m.obs.PBoxCreated(p.id, rule)
	}
	return p, nil
}

// Release destroys the pBox (release_pbox), removing it from every
// bookkeeping structure. Pending penalties are discarded: the activity they
// would have delayed no longer exists.
func (m *Manager) Release(p *PBox) error {
	m.crossings.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	if p.state == StateDestroyed {
		return ErrReleased
	}
	p.state = StateDestroyed
	for key := range p.preparing {
		if cl := m.competitors[key]; cl != nil {
			cl.removeAllFor(p)
		}
	}
	for key := range p.holders {
		m.dropHolderLocked(key, p)
	}
	p.holders = make(map[ResourceKey]holdInfo)
	p.preparing = make(map[ResourceKey]int)
	if p.hasBoundKey {
		if m.bindings[p.boundKey] == p {
			delete(m.bindings, p.boundKey)
		}
		p.hasBoundKey = false
	}
	delete(m.pboxes, p.id)
	m.traceEvent(p, 0, "release", 0)
	if m.obs != nil {
		m.obs.PBoxReleased(p.id)
	}
	return nil
}

// Activate starts tracing a new activity in the pBox (activate_pbox). If the
// pBox carries a pending penalty from a previous activity that could not be
// applied in time, it is served now, before the activity clock starts, so
// the penalty delays the noisy pBox without polluting its own metrics.
func (m *Manager) Activate(p *PBox) {
	m.crossings.Add(1)
	m.mu.Lock()
	if p.state == StateDestroyed {
		m.mu.Unlock()
		return
	}
	var pen time.Duration
	if len(p.holders) == 0 && len(p.preparing) == 0 {
		pen = m.takePendingLocked(p)
	}
	m.mu.Unlock()
	if pen > 0 {
		m.sleepPenalty(p, pen)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if p.state == StateDestroyed {
		return
	}
	p.state = StateActive
	p.activityStart = m.opts.Now()
	p.deferTime = 0
	p.blame = nil
	m.traceEvent(p, 0, "activate", 0)
}

// Freeze stops tracing the pBox's current activity (freeze_pbox), folds the
// activity into the pBox's history, and runs the pBox-level interference
// monitor (Section 4.3.1): if the aggregate interference level is within
// PBoxLevelThreshold of the goal, the manager takes action against the most
// recent blocker at the end of the activity.
func (m *Manager) Freeze(p *PBox) {
	m.crossings.Add(1)
	now := m.opts.Now()
	m.mu.Lock()
	if p.state != StateActive {
		m.mu.Unlock()
		return
	}
	p.state = StateFrozen
	te := now - p.activityStart
	td := p.deferTime
	if td > te {
		td = te
	}
	p.recordActivityLocked(td, te)
	if m.obs != nil {
		m.obs.ActivityEnd(p.id, td, te)
	}
	// Remove stale PREPARE records that never saw a matching ENTER
	// (e.g. the activity bailed out of a wait loop).
	for key := range p.preparing {
		if cl := m.competitors[key]; cl != nil {
			cl.removeAllFor(p)
		}
		delete(m.preparingOf(p), key)
	}
	m.traceEvent(p, 0, "freeze", time.Duration(td))

	// The pBox-level monitor penalizes the largest contributor to this
	// pBox's deferring time when the aggregate level nears the goal.
	if !m.opts.DisablePBoxLevel && !m.opts.DisableDetection {
		level := p.interferenceLevelLocked()
		if level >= m.opts.PBoxLevelThreshold*p.rule.Level {
			var noisy *PBox
			var info blameInfo
			for b, bi := range p.blame {
				if b != p && b.state != StateDestroyed && bi.deferNs > info.deferNs {
					noisy, info = b, bi
				}
			}
			if noisy != nil {
				m.takeActionLocked(noisy, p, info.key, now, info.deferNs, level)
			}
		}
	}
	// Serve this pBox's own pending penalty (scheduled while it held
	// resources) now that its activity is over — unless it still holds
	// resources across activities (e.g. transaction locks spanning
	// statements), in which case the delay must keep waiting.
	var pen time.Duration
	if len(p.holders) == 0 && len(p.preparing) == 0 {
		pen = m.takePendingLocked(p)
	}
	m.mu.Unlock()
	if pen > 0 {
		m.sleepPenalty(p, pen)
	}
}

// preparingOf returns p.preparing (indirection so Freeze can mutate it while
// ranging safely).
func (m *Manager) preparingOf(p *PBox) map[ResourceKey]int { return p.preparing }

// Update is the update_pbox API: the application informs the manager of a
// state event about virtual resource key in pBox p. It runs Algorithm 1 and
// may execute a penalty delay on the calling goroutine (which is, by
// construction, the goroutine running p's activity) before returning.
func (m *Manager) Update(p *PBox, key ResourceKey, ev EventType) {
	if m.opts.EventFilter != nil && !m.opts.EventFilter(key, ev) {
		return
	}
	m.crossings.Add(1)
	now := m.opts.Now()
	m.mu.Lock()
	if p.state != StateActive {
		// Events outside an active window are ignored, matching the
		// manager tracing only between activate and freeze.
		m.mu.Unlock()
		return
	}
	m.traceEvent(p, key, ev.String(), 0)
	if m.obs != nil {
		m.obs.StateEvent(p.id, key, ev)
	}
	switch ev {
	case Prepare:
		m.onPrepareLocked(p, key, now)
	case Enter:
		m.onEnterLocked(p, key, now)
	case Hold:
		m.onHoldLocked(p, key, now)
	case Unhold:
		m.onUnholdLocked(p, key, now)
	}
	// Safe-point check: a penalty scheduled for p (by this event's
	// detection pass or an earlier one) can run only when p holds nothing
	// and waits for nothing, so delaying it cannot defer anyone else or
	// inflate p's own deferring time.
	var pen time.Duration
	if p.pendingPenalty > 0 && len(p.holders) == 0 && len(p.preparing) == 0 {
		pen = m.takePendingLocked(p)
	}
	m.mu.Unlock()
	if pen > 0 {
		m.sleepPenalty(p, pen)
	}
}

// onPrepareLocked implements the PREPARE arm of Algorithm 1: note the pBox
// in the competitor map for the resource.
func (m *Manager) onPrepareLocked(p *PBox, key ResourceKey, now int64) {
	cl := m.competitors[key]
	if cl == nil {
		cl = &competitorList{}
		m.competitors[key] = cl
	}
	cl.add(waiter{pbox: p, since: now})
	p.preparing[key]++
}

// onEnterLocked implements the ENTER arm: the deferred state ends and the
// deferring time is folded into the pBox's activity accounting.
func (m *Manager) onEnterLocked(p *PBox, key ResourceKey, now int64) {
	cl := m.competitors[key]
	if cl == nil {
		return
	}
	w, ok := cl.removeFor(p)
	if !ok {
		return
	}
	if p.preparing[key] > 1 {
		p.preparing[key]--
	} else {
		delete(p.preparing, key)
	}
	defer_ := now - w.since
	if defer_ < 0 {
		defer_ = 0
	}
	p.deferTime += defer_
}

// onHoldLocked implements the HOLD arm: record the pBox in the holder map.
// holdInfo is stored by value: the hold/unhold cycle is the hottest hook
// path, and a pointer entry would allocate on every re-acquisition.
func (m *Manager) onHoldLocked(p *PBox, key ResourceKey, now int64) {
	h, held := p.holders[key]
	if !held {
		p.holders[key] = holdInfo{count: 1, since: now}
		hm := m.holdersByKey[key]
		if hm == nil {
			hm = make(map[*PBox]int64)
			m.holdersByKey[key] = hm
		}
		hm[p] = now
		return
	}
	h.count++
	p.holders[key] = h
}

// onUnholdLocked implements the UNHOLD arm of Algorithm 1: if the pBox was
// the holder, scan the waiting pBoxes, estimate each waiter's interference
// level with the worst-case projection tf = td/(te-td), and if a waiter's
// goal is endangered and this pBox held the resource before the waiter
// arrived, identify (noisy=p, victim=waiter) and take action.
func (m *Manager) onUnholdLocked(p *PBox, key ResourceKey, now int64) {
	h, held := p.holders[key]
	if !held {
		return
	}
	if h.count > 1 {
		h.count--
		p.holders[key] = h
		return
	}
	heldSince := h.since
	delete(p.holders, key)
	m.dropHolderLocked(key, p)

	cl := m.competitors[key]
	if cl == nil || len(cl.waiters) == 0 {
		return
	}
	// Attribute to this holder the part of each waiter's wait that its
	// hold overlapped, for the pBox-level monitor's blame accounting.
	for _, c := range cl.waiters {
		since := c.since
		if heldSince > since {
			since = heldSince
		}
		if overlap := now - since; overlap > 0 {
			if c.pbox.blame == nil {
				c.pbox.blame = make(map[*PBox]blameInfo)
			}
			bi := c.pbox.blame[p]
			bi.deferNs += overlap
			bi.key = key
			c.pbox.blame[p] = bi
			if e := m.attrLocked(p, c.pbox, key); e != nil {
				e.blockedNs += overlap
			}
			if m.attrObs != nil {
				m.attrObs.Blocked(p.id, c.pbox.id, key, overlap)
			}
		}
	}
	detect := !m.opts.DisableDetection
	for i := range cl.waiters {
		c := &cl.waiters[i]
		victim := c.pbox
		if victim == p || victim.state != StateActive {
			continue
		}
		te := now - victim.activityStart
		defer_ := now - c.since
		if defer_ < 0 {
			defer_ = 0
		}
		td := victim.deferTime + defer_
		if td > te {
			td = te
		}
		if detect && te > 0 {
			tf := averageRatio(td, te)
			// Act when the projected interference level exceeds the
			// goal and this hold overlapped the victim's wait. The
			// paper's line-23 condition (holder predates waiter) is
			// the special case of a single long hold; overlap also
			// covers a noisy pBox that re-acquires the resource past
			// sleeping waiters (back-to-back chunk holds), charging
			// each holder exactly for the wait time its hold covered.
			overlapStart := c.since
			if heldSince > overlapStart {
				overlapStart = heldSince
			}
			overlap := now - overlapStart
			// Causality threshold: act only when this hold accounts
			// for a meaningful share of the victim's current wait
			// window (since the last release of the resource). A
			// bystander that briefly held the resource during a wait
			// dominated by others must not absorb the blame — but a
			// swarm of holders each covering the window (overlapping
			// shared holders, back-to-back re-acquirers) all remain
			// accountable.
			if tf > victim.rule.Level && overlap > 0 && overlap*10 >= defer_ {
				m.takeActionLocked(p, victim, key, now, overlap, tf)
			}
		}
		// Futex-style re-arm: a release wakes the waiters; one that
		// fails to enter re-queues with a fresh wait record (what the
		// kernel implementation observes by tracing futex, Section 7).
		// The elapsed wait folds into the activity's deferring time,
		// and the fresh timestamp makes a holder that re-acquires past
		// the sleeping waiter blameable at its next release —
		// back-to-back re-acquisition must not exonerate the holder.
		victim.deferTime += defer_
		c.since = now
	}
}

// dropHolderLocked removes p from the reverse holder index for key. The
// inner map is kept when it empties — resources are held and released in a
// tight loop, and recreating the map on every re-acquisition would allocate
// on the hook path; like m.competitors, the index is bounded by the number
// of distinct resources the application touches.
func (m *Manager) dropHolderLocked(key ResourceKey, p *PBox) {
	if hm := m.holdersByKey[key]; hm != nil {
		delete(hm, p)
	}
}

// takePendingLocked consumes p's pending penalty. Caller holds m.mu. The
// pending attribution triple is copied aside for the serve that follows, so
// a new action scheduled between the consume and the sleep cannot
// misattribute the served time.
func (m *Manager) takePendingLocked(p *PBox) time.Duration {
	pen := p.pendingPenalty
	if pen <= 0 {
		return 0
	}
	p.pendingPenalty = 0
	p.servingAttrVictim = p.pendingAttrVictim
	p.servingAttrKey = p.pendingAttrKey
	if p.sharedThread {
		// Shared-thread pBoxes are never slept directly; instead their
		// next activities wait in the task queue until the deadline.
		until := m.opts.Now() + pen
		if until > p.penaltyUntil {
			p.penaltyUntil = until
		}
		return 0
	}
	return time.Duration(pen)
}

// sleepPenalty executes a penalty delay on the calling goroutine (the noisy
// pBox's own goroutine) and accounts it.
func (m *Manager) sleepPenalty(p *PBox, d time.Duration) {
	m.mu.Lock()
	p.penaltySleeping = true
	p.penaltiesReceived++
	p.penaltyTotal += int64(d)
	victimID, key := p.servingAttrVictim, p.servingAttrKey
	if e := m.attrByIDLocked(p.id, victimID, key); e != nil {
		e.servedNs += int64(d)
	}
	m.traceEvent(p, 0, "penalty", d)
	m.mu.Unlock()
	m.opts.Sleep(d)
	m.mu.Lock()
	p.penaltySleeping = false
	m.mu.Unlock()
	if m.obs != nil {
		m.obs.PenaltyServed(p.id, d)
	}
	if m.attrObs != nil {
		m.attrObs.PenaltyServedFor(p.id, victimID, key, d)
	}
	// The sleep inflates the pBox's execution time but adds no deferring
	// time, so its own interference level tf = td/(te-td) strictly drops.
	// That is the cascade-avoidance property of Section 4.4.1: a goal
	// violation caused by the penalty itself never reads as interference
	// and never triggers further actions on the penalized pBox's behalf.
}

// MarkShared marks the pBox as running on shared worker threads: penalties
// become requeue deadlines (see Worker.Bind and PenaltyWait) instead of
// direct delays, so a penalty never stalls the thread other pBoxes share.
func (m *Manager) MarkShared(p *PBox) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p.sharedThread = true
}

// Crossings returns the number of conceptual kernel crossings so far.
func (m *Manager) Crossings() int64 { return m.crossings.Load() }

// Waiters returns how many pBoxes currently wait on key (tests/diagnostics).
func (m *Manager) Waiters(key ResourceKey) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cl := m.competitors[key]; cl != nil {
		return len(cl.waiters)
	}
	return 0
}

// Holders returns how many pBoxes currently hold key (tests/diagnostics).
func (m *Manager) Holders(key ResourceKey) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.holdersByKey[key])
}

// Live returns the number of non-destroyed pBoxes.
func (m *Manager) Live() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pboxes)
}

// NameResource registers a human-readable name for a virtual-resource key,
// so traces and telemetry print "bufpool" instead of a raw pointer value.
// An empty name removes the registration. Names live under their own lock,
// so ResourceName is safe to call from Observer hook callbacks.
func (m *Manager) NameResource(key ResourceKey, name string) {
	m.namesMu.Lock()
	defer m.namesMu.Unlock()
	if name == "" {
		delete(m.resourceNames, key)
		return
	}
	if m.resourceNames == nil {
		m.resourceNames = make(map[ResourceKey]string)
	}
	m.resourceNames[key] = name
}

// ResourceName returns the registered name for key ("" when unnamed).
// Unlike most Manager methods it does not take the manager lock, so
// Observer implementations may call it from inside hook callbacks.
func (m *Manager) ResourceName(key ResourceKey) string {
	return m.resourceName(key)
}

// resourceName looks up a registered resource name under the names lock.
func (m *Manager) resourceName(key ResourceKey) string {
	m.namesMu.RLock()
	defer m.namesMu.RUnlock()
	return m.resourceNames[key]
}

// SetLabel attaches a diagnostic label to the pBox (connection name,
// background-task name). Labels appear in Snapshots and telemetry.
func (m *Manager) SetLabel(p *PBox, label string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p.label = label
}

// Snapshots returns the accounting of every live pBox, ordered by id. It is
// the data source of the telemetry exporter's /pboxes endpoint.
func (m *Manager) Snapshots() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotsLocked()
}

// snapshotsLocked builds the ordered snapshot list. Caller holds m.mu.
func (m *Manager) snapshotsLocked() []Snapshot {
	out := make([]Snapshot, 0, len(m.pboxes))
	for _, p := range m.pboxes {
		out = append(out, p.snapshotLocked())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
