package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pbox/internal/exec"
)

// Options configures a Manager. The zero value selects the paper's defaults.
type Options struct {
	// Now supplies the monotonic clock (ns). Defaults to exec.Now. Tests
	// inject a fake clock to drive the detection logic deterministically.
	Now func() int64
	// Sleep executes a penalty delay. Defaults to exec.SleepPrecise; tests
	// replace it to observe penalties without real delays.
	Sleep func(time.Duration)

	// MinPenalty and MaxPenalty clamp every penalty length. The kernel
	// implementation is bounded below by timer resolution and above by
	// sanity; we default to 200µs and 20ms (scaled to the µs–ms world the
	// simulated applications run in — a penalty below the applications'
	// wait-loop poll interval cannot open a usable window).
	MinPenalty time.Duration
	MaxPenalty time.Duration

	// Alpha is the α divisor of the score-based adaptive policy
	// (p_{i+1} = p1 × (1 + score/α)); the paper's default is 5.
	Alpha float64

	// PBoxLevelThreshold is the fraction of the goal at which the
	// pBox-level monitor acts (default 0.9, Section 4.3.1).
	PBoxLevelThreshold float64

	// GapPolicyFactor selects the gap-based policy when the triggering
	// wait exceeds factor × previous penalty ("If the deferring time is
	// much larger than the penalty, it chooses the second policy").
	// Default 2.
	GapPolicyFactor float64

	// FixedPenalty, when non-zero, disables the adaptive policies and
	// always applies this length (the Table 4 comparison mode).
	FixedPenalty time.Duration

	// DisablePBoxLevel turns off the end-of-activity average monitor,
	// leaving only Algorithm 1's per-resource detection.
	DisablePBoxLevel bool

	// DisableDetection turns the manager into a pure tracer: events are
	// accounted but no actions are taken. Used to measure tracing
	// overhead in isolation.
	DisableDetection bool

	// EventFilter, when set, is consulted on every Update; returning
	// false drops the event. The mistake-tolerance experiment
	// (Section 6.8) uses it to remove a fraction of update_pbox calls.
	EventFilter func(key ResourceKey, ev EventType) bool

	// TraceSize, when positive, enables the in-memory trace ring of that
	// capacity.
	TraceSize int

	// Observer, when non-nil, receives live notifications of manager
	// activity (see the Observer interface). The nil default keeps every
	// event path allocation-free. An Observer that also implements
	// AttributionObserver additionally receives the per-triple attribution
	// stream.
	Observer Observer

	// Attribution, when true, maintains the per-(culprit, victim,
	// resource) interference ledger (see AttributionRecord). Disabled it
	// costs one nil check per site and zero allocations.
	Attribution bool

	// Shards is the number of lock stripes for resource-side state
	// (waiter lists, holder indexes, resource names). It is rounded up to
	// a power of two; zero selects 4×GOMAXPROCS clamped to [8, 256].
	// More shards mean less contention between events on unrelated
	// resources at a fixed small memory cost per shard.
	Shards int

	// SpoolSize is the per-Worker event-spool capacity of the uncontended
	// fast path (DESIGN.md §10): events on resources with no cross-pBox
	// competition are buffered in the worker's spool and batch-replayed
	// into shard state at the flush triggers. Zero selects the default
	// (256); a negative value disables spooling entirely, making
	// Worker.Update equivalent to Manager.Update.
	SpoolSize int

	// SnapshotInterval is the bounded-staleness budget of the epoch
	// snapshot read path (DESIGN.md §12): StatusView returns the published
	// view as long as its manager-clock age is within the interval, and
	// rebuilds otherwise. Zero selects the default (100ms); a negative
	// value disables view caching, making every StatusView call a precise
	// rebuild.
	SnapshotInterval time.Duration

	// AdaptiveTopology enables the background topology sizer (DESIGN.md
	// §13): piggybacked on snapshot rebuilds, it reads the manager's own
	// contention and shard-lock telemetry and resizes the shard stripe set
	// and per-worker spool capacity within fixed bounds. Off (the default)
	// the topology chosen at construction is fixed for the manager's life.
	// Resizes are verdict-neutral: detection output is identical to a
	// fixed-topology run over the same event stream.
	AdaptiveTopology bool

	// NoCachePad selects the unpadded (adjacent-slot) contention-table
	// layout. Benchmark-only: it exists so the scalability sweep can
	// measure the false-sharing cost of the old layout from one binary
	// (BENCH_scale.json's padded/unpadded rows). Production code should
	// never set it.
	NoCachePad bool
}

func (o Options) withDefaults() Options {
	if o.Now == nil {
		o.Now = exec.Now
	}
	if o.Sleep == nil {
		o.Sleep = exec.SleepPrecise
	}
	if o.MinPenalty <= 0 {
		o.MinPenalty = 200 * time.Microsecond
	}
	if o.MaxPenalty <= 0 {
		o.MaxPenalty = 20 * time.Millisecond
	}
	if o.Alpha <= 0 {
		o.Alpha = 5
	}
	if o.PBoxLevelThreshold <= 0 {
		o.PBoxLevelThreshold = 0.9
	}
	if o.GapPolicyFactor <= 0 {
		o.GapPolicyFactor = 2
	}
	if o.Shards <= 0 {
		o.Shards = defaultShardCount()
	} else {
		o.Shards = nextPow2(o.Shards)
	}
	if o.SpoolSize == 0 {
		o.SpoolSize = defaultSpoolSize
	}
	if o.SnapshotInterval == 0 {
		o.SnapshotInterval = defaultSnapshotInterval
	}
	return o
}

// Manager is the pBox manager: it tracks every pBox's execution, receives
// state events, runs the interference detection of Algorithm 1, and applies
// penalty actions (Section 4.4). One Manager corresponds to the kernel-side
// component of the paper; an application process creates exactly one.
//
// Concurrency (DESIGN.md §8): the manager has no global event lock. The
// event hot path takes the calling pBox's own mutex plus the lock stripe of
// the one resource involved, so events from different pBoxes on different
// resources proceed fully in parallel. Only the cold verdict path — an
// UNHOLD that found waiters, or the freeze-time monitor deciding to act —
// serializes on verdictMu, which also guards the action history and the
// attribution ledger. The documented lock order is
//
//	snap → topo → spools → flushMu → registry → pbox.mu → shard.mu →
//	verdictMu → leaves (actMu, penMu, …)
//
// and a shard lock is never held while acquiring the registry lock.
// Consistent reads go through the epoch snapshot (StatusView, DESIGN.md
// §12); only the precise APIs and the view rebuild itself stop the world.
type Manager struct {
	opts Options

	// reg is the pBox registry: id allocation, the live-pBox table, and
	// the unbind-key associations of the event-driven model. All registry
	// operations (Create, Release, Associate, Bind lookups) are cold
	// relative to the event path.
	reg struct {
		sync.Mutex
		nextID   int
		pboxes   map[int]*PBox
		bindings map[uintptr]*PBox
	}

	// shards is the live stripe topology for resource-side state, one
	// immutable shardSet swapped whole by the adaptive sizer (topology.go).
	// Lock sites revalidate with the per-shard moved flag via lockShard.
	shards atomic.Pointer[shardSet]

	// contention is the per-resource claim/contended slot table of the
	// two-tier ingestion path (see spool.go): 0 untouched, >0 the id of
	// the single pBox spooling fast-path events for keys hashing here,
	// -1 contended (slow path only, sticky). Embedded by value: the hot
	// path indexes it straight off the manager pointer (see
	// contentionTable in spool.go).
	contention contentionTable

	// spoolCap is the capacity newly created Worker spools are sized to;
	// the adaptive sizer retunes it (and live spools) within bounds.
	spoolCap atomic.Int64

	// topo serializes topology resizes (manual and sizer-driven) and holds
	// the sizer's tick state. It ranks between snap and spools in the §8
	// order: the sizer runs under it from the snapshot rebuild (which holds
	// snap), and a resize sweeps spools and takes every shard lock under it.
	topo struct {
		sync.Mutex
		sizer sizerState
	}

	// topoStats is the lock-free telemetry of the adaptive sizer: resize
	// counters and the copy-on-write decision log behind atomics, so
	// SelfStats stays a no-lock reader.
	topoStats topologyStats

	// spools registers every Worker's event spool so slow-path events and
	// consistent reads can drain them (flush-on-read). The list only
	// grows — workers are per-thread state and live as long as their
	// threads. Its lock is the outermost in the §8 order.
	spools struct {
		sync.Mutex
		list []*eventSpool
	}

	// verdictMu is the cold-path epoch lock: it serializes detection
	// verdicts and penalty scheduling so the multi-pBox view Algorithm 1
	// compares (victim ratios against noisy state) is consistent, and it
	// guards actions and attr. It is only ever taken when contention has
	// already been observed, so it cannot become the scaling bottleneck
	// the old global mutex was.
	verdictMu sync.Mutex
	actions   *actionHistory
	// attr is the interference attribution ledger (nil unless
	// Options.Attribution).
	attr *attributionLedger

	// snap is the epoch-published snapshot state of the zero-interference
	// read path (DESIGN.md §12): view holds the current immutable
	// StatusView, swapped whole by rebuilds. The embedded mutex
	// single-flights rebuilds and is the outermost lock of the §8 order —
	// a rebuild sweeps the spools and stops the world under it, and nothing
	// that holds any manager lock may acquire it.
	snap struct {
		sync.Mutex
		view atomic.Pointer[StatusView]
	}

	// self is the manager's self-telemetry: lock-free counters about the
	// manager's own overhead (snapshot builds, spool flushes, contention
	// claims, shard-lock traffic, verdict latency). See SelfStats.
	self selfCounters

	trace *traceRing
	obs   Observer
	// attrObs is opts.Observer's AttributionObserver side, cached at
	// construction so hook sites pay a nil check instead of a type assert.
	attrObs AttributionObserver
	// timeObs is opts.Observer's EventTimeObserver side, likewise cached:
	// state events are delivered through it with the manager-clock
	// timestamp their bookkeeping used, so an observer that cares (the
	// flight recorder, the capture recorder) sees event time, not callback
	// time.
	timeObs EventTimeObserver
	// lifeObs is opts.Observer's LifecycleObserver side: activity-window
	// boundary timestamps and shared-marking flips, for capture logs.
	lifeObs LifecycleObserver

	// crossings counts conceptual user/kernel boundary crossings: every
	// manager entry point increments it. The lazy-unbind optimization
	// (Section 5) is validated by this counter going down.
	crossings atomic.Int64
}

// NewManager creates a manager with the given options.
func NewManager(opts Options) *Manager {
	opts = opts.withDefaults()
	m := &Manager{
		opts:    opts,
		actions: newActionHistory(),
		obs:     opts.Observer,
	}
	m.reg.pboxes = make(map[int]*PBox)
	m.reg.bindings = make(map[uintptr]*PBox)
	m.shards.Store(newShardSet(opts.Shards))
	m.contention.unpadded = opts.NoCachePad
	m.spoolCap.Store(int64(opts.SpoolSize))
	if ao, ok := opts.Observer.(AttributionObserver); ok {
		m.attrObs = ao
	}
	if to, ok := opts.Observer.(EventTimeObserver); ok {
		m.timeObs = to
	}
	if lo, ok := opts.Observer.(LifecycleObserver); ok {
		m.lifeObs = lo
	}
	if opts.Attribution {
		m.attr = newAttributionLedger()
	}
	if opts.TraceSize > 0 {
		m.trace = newTraceRing(opts.TraceSize)
	}
	return m
}

// ShardCount returns the current number of resource-side lock stripes (which
// the adaptive sizer may change over the manager's life).
func (m *Manager) ShardCount() int { return len(m.shards.Load().shards) }

// SpoolCapacity returns the capacity new Worker spools are sized to (which
// the adaptive sizer may change over the manager's life). Non-positive means
// spooling is disabled.
func (m *Manager) SpoolCapacity() int { return int(m.spoolCap.Load()) }

// ErrReleased is returned when an operation references a destroyed pBox.
var ErrReleased = errors.New("pbox: operation on released pBox")

// Create creates a pBox with the given isolation rule (create_pbox). The
// pBox starts in StateStarted; no tracing happens until Activate.
func (m *Manager) Create(rule IsolationRule) (*PBox, error) {
	if !rule.Valid() {
		return nil, fmt.Errorf("pbox: invalid isolation rule %+v", rule)
	}
	m.crossings.Add(1)
	// The event-structural maps are allocated lazily at the first Activate
	// (the same point a hibernated pBox re-inflates), so a registered-but-
	// idle pBox costs only the struct itself — the million-registered,
	// few-active regime Manager.Hibernate exists for.
	p := &PBox{rule: rule, mgr: m}
	m.reg.Lock()
	m.reg.nextID++
	p.id = m.reg.nextID
	m.reg.pboxes[p.id] = p
	m.reg.Unlock()
	m.traceEvent(p, 0, "create", 0)
	if m.obs != nil {
		m.obs.PBoxCreated(p.id, rule)
	}
	return p, nil
}

// Release destroys the pBox (release_pbox), removing it from every
// bookkeeping structure. Pending penalties are discarded: the activity they
// would have delayed no longer exists.
func (m *Manager) Release(p *PBox) error {
	m.crossings.Add(1)
	// Drain spooled records first: events buffered before the release must
	// reach the books (or be dropped by the replay's state check) before
	// the pBox's shard-side state is torn down.
	m.flushSpoolsFor(p)
	p.mu.Lock()
	if p.stateIs(StateDestroyed) {
		p.mu.Unlock()
		return ErrReleased
	}
	if p.stateIs(StateHibernated) {
		m.self.hibernated.Add(-1)
	}
	p.setState(StateDestroyed)
	for key := range p.preparing {
		s := m.lockShard(key)
		if cl := s.competitors[key]; cl != nil {
			cl.removeAllFor(p)
		}
		s.mu.Unlock()
	}
	for key := range p.holders {
		s := m.lockShard(key)
		if hm := s.holdersByKey[key]; hm != nil {
			delete(hm, p)
		}
		s.mu.Unlock()
	}
	// Clear in place rather than allocating fresh maps: the pBox is dead,
	// so the release path should shed work, not create garbage.
	clear(p.holders)
	clear(p.preparing)
	p.mu.Unlock()
	m.reg.Lock()
	if p.hasBoundKey {
		if m.reg.bindings[p.boundKey] == p {
			delete(m.reg.bindings, p.boundKey)
		}
		p.hasBoundKey = false
	}
	delete(m.reg.pboxes, p.id)
	m.reg.Unlock()
	m.traceEvent(p, 0, "release", 0)
	if m.obs != nil {
		m.obs.PBoxReleased(p.id)
	}
	return nil
}

// Activate starts tracing a new activity in the pBox (activate_pbox). If the
// pBox carries a pending penalty from a previous activity that could not be
// applied in time, it is served now, before the activity clock starts, so
// the penalty delays the noisy pBox without polluting its own metrics.
func (m *Manager) Activate(p *PBox) {
	m.crossings.Add(1)
	// Stragglers spooled after the previous freeze belong to no active
	// window; drain them now (the replay drops them) so the new activity
	// starts with an empty spool.
	m.flushSpoolsFor(p)
	p.mu.Lock()
	if p.stateIs(StateDestroyed) {
		p.mu.Unlock()
		return
	}
	var pen time.Duration
	if len(p.holders) == 0 && len(p.preparing) == 0 {
		pen = m.takePending(p)
	}
	p.mu.Unlock()
	if pen > 0 {
		m.sleepPenalty(p, pen)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stateIs(StateDestroyed) {
		return
	}
	if p.stateIs(StateHibernated) {
		// Transparent wake: hibernation is invisible to callers because
		// Activate — the only entry into an active window — restores
		// everything Hibernate compacted before tracing resumes.
		m.self.wakes.Add(1)
		m.self.hibernated.Add(-1)
		m.traceEvent(p, 0, "wake", 0)
	}
	if p.holders == nil {
		p.holders = make(map[ResourceKey]holdInfo)
	}
	if p.preparing == nil {
		p.preparing = make(map[ResourceKey]int)
	}
	p.setState(StateActive)
	now := m.opts.Now()
	p.activityStart.Store(now)
	p.actMu.Lock()
	p.deferTime = 0
	p.blame = nil
	p.actMu.Unlock()
	m.traceEvent(p, 0, "activate", 0)
	if m.lifeObs != nil {
		m.lifeObs.PBoxActivated(p.id, now)
	}
}

// Freeze stops tracing the pBox's current activity (freeze_pbox), folds the
// activity into the pBox's history, and runs the pBox-level interference
// monitor (Section 4.3.1): if the aggregate interference level is within
// PBoxLevelThreshold of the goal, the manager takes action against the most
// recent blocker at the end of the activity.
func (m *Manager) Freeze(p *PBox) {
	m.crossings.Add(1)
	// Fold spooled events into the activity before it closes: the
	// pBox-level monitor below must see the full deferring time.
	m.flushSpoolsFor(p)
	now := m.opts.Now()
	p.mu.Lock()
	if !p.stateIs(StateActive) {
		p.mu.Unlock()
		return
	}
	p.setState(StateFrozen)
	te := now - p.activityStart.Load()
	if m.lifeObs != nil {
		m.lifeObs.PBoxFrozen(p.id, now)
	}

	// Fold the activity into the history and, in the same actMu hold,
	// pick the pBox-level monitor's target: the largest contributor to
	// this pBox's deferring time. The action itself is taken after actMu
	// is released — verdictMu is never acquired while holding a leaf lock.
	p.actMu.Lock()
	td := p.deferTime
	if td > te {
		td = te
	}
	p.recordActivityLocked(td, te)
	var noisy *PBox
	var info blameInfo
	var level float64
	if !m.opts.DisablePBoxLevel && !m.opts.DisableDetection {
		level = p.interferenceLevelLocked()
		if level >= m.opts.PBoxLevelThreshold*p.rule.Level {
			for b, bi := range p.blame {
				if b != p && !b.stateIs(StateDestroyed) && bi.deferNs > info.deferNs {
					noisy, info = b, bi
				}
			}
		}
	}
	p.actMu.Unlock()
	if m.obs != nil {
		m.obs.ActivityEnd(p.id, td, te)
	}

	// Remove stale PREPARE records that never saw a matching ENTER
	// (e.g. the activity bailed out of a wait loop): drop the shard-side
	// waiter records first, then clear the map in one sweep.
	if len(p.preparing) > 0 {
		for key := range p.preparing {
			s := m.lockShard(key)
			if cl := s.competitors[key]; cl != nil {
				cl.removeAllFor(p)
			}
			s.mu.Unlock()
		}
		clear(p.preparing)
	}
	m.traceEvent(p, 0, "freeze", time.Duration(td))

	if noisy != nil {
		t0 := exec.Now()
		m.verdictMu.Lock()
		m.takeActionVerdict(noisy, p, info.key, now, info.deferNs, level)
		m.verdictMu.Unlock()
		m.self.verdictLatency.observe(exec.Now() - t0)
	}
	// Serve this pBox's own pending penalty (scheduled while it held
	// resources) now that its activity is over — unless it still holds
	// resources across activities (e.g. transaction locks spanning
	// statements), in which case the delay must keep waiting.
	var pen time.Duration
	if len(p.holders) == 0 && len(p.preparing) == 0 {
		pen = m.takePending(p)
	}
	p.mu.Unlock()
	if pen > 0 {
		m.sleepPenalty(p, pen)
	}
}

// Update is the update_pbox API: the application informs the manager of a
// state event about virtual resource key in pBox p. It runs Algorithm 1 and
// may execute a penalty delay on the calling goroutine (which is, by
// construction, the goroutine running p's activity) before returning.
//
// This is the hot path. A pBox outside an active window is rejected with a
// single atomic load — no lock at all. An accepted event takes p's own
// mutex and the lock stripe of key; two pBoxes updating unrelated resources
// share nothing but atomic counters.
//
//pbox:hotpath
func (m *Manager) Update(p *PBox, key ResourceKey, ev EventType) {
	// The filter runs before anything else — a dropped event must do no
	// slot, spool, or shard work at all, or a filtered UNHOLD could flip
	// the contended flag for an event that never applies.
	if m.opts.EventFilter != nil && !m.opts.EventFilter(key, ev) {
		return
	}
	m.updateSlow(p, key, ev)
}

// updateSlow is Update past the filter: the Tier B slow path, shared with
// Worker.Update's contended hand-off (which has already filtered).
//
//pbox:hotpath
func (m *Manager) updateSlow(p *PBox, key ResourceKey, ev EventType) {
	m.crossings.Add(1)
	// Lock-free fast reject: events outside an active window are ignored,
	// matching the manager tracing only between activate and freeze.
	if !p.stateIs(StateActive) {
		return
	}
	// Two-tier handshake: a direct slow-path event may create cross-pBox
	// overlap, so any fast-path claim on this key's slot is revoked and
	// every spooled record replayed before this event lands (spool.go).
	m.markContended(key)
	now := m.opts.Now()
	p.mu.Lock()
	if !p.stateIs(StateActive) {
		p.mu.Unlock()
		return
	}
	m.applyLocked(p, key, ev, now)
	// Safe-point check: a penalty scheduled for p (by this event's
	// detection pass or an earlier one) can run only when p holds nothing
	// and waits for nothing, so delaying it cannot defer anyone else or
	// inflate p's own deferring time. The pending amount is an atomic so
	// the common no-penalty case is a single load.
	var pen time.Duration
	if p.pendingPenalty.Load() > 0 && len(p.holders) == 0 && len(p.preparing) == 0 {
		pen = m.takePending(p)
	}
	p.mu.Unlock()
	if pen > 0 {
		m.sleepPenalty(p, pen)
	}
}

// applyLocked delivers one event to the trace ring, the observer, and the
// Algorithm 1 arms, at manager-clock time now — the same now the arms use
// for their bookkeeping, whether the event arrives directly (now = issue
// time) or via a spool replay (now = recorded event time). An observer that
// implements EventTimeObserver receives every event through StateEventAt
// with that timestamp, so a capture log of StateEventAt calls replayed at
// the recorded times reproduces the arms' arithmetic exactly. Caller holds
// p.mu.
//
//pbox:hotpath
func (m *Manager) applyLocked(p *PBox, key ResourceKey, ev EventType, now int64) {
	m.traceEventAt(p, key, ev.String(), 0, now)
	if m.timeObs != nil {
		m.timeObs.StateEventAt(p.id, key, ev, now)
	} else if m.obs != nil {
		m.obs.StateEvent(p.id, key, ev)
	}
	s := m.lockShard(key)
	m.applyArmLocked(p, s, key, ev, now)
	s.mu.Unlock()
}

// applyArmLocked dispatches one event to its Algorithm 1 arm. Caller holds
// p.mu and s.mu, where s is key's shard — the arms take the shard from the
// caller so a spool replay can hold one shard lock across a run of
// same-shard records instead of re-acquiring it per event.
//
//pbox:hotpath
func (m *Manager) applyArmLocked(p *PBox, s *shard, key ResourceKey, ev EventType, now int64) {
	switch ev {
	case Prepare:
		m.onPrepare(p, s, key, now)
	case Enter:
		m.onEnter(p, s, key, now)
	case Hold:
		m.onHold(p, s, key, now)
	case Unhold:
		m.onUnhold(p, s, key, now)
	}
}

// onPrepare implements the PREPARE arm of Algorithm 1: note the pBox in the
// competitor map for the resource. Caller holds p.mu and s.mu.
func (m *Manager) onPrepare(p *PBox, s *shard, key ResourceKey, now int64) {
	cl := s.competitors[key]
	if cl == nil {
		cl = &competitorList{}
		s.competitors[key] = cl
	}
	cl.add(waiter{pbox: p, since: now})
	p.preparing[key]++
}

// onEnter implements the ENTER arm: the deferred state ends and the
// deferring time is folded into the pBox's activity accounting. Caller
// holds p.mu and s.mu.
func (m *Manager) onEnter(p *PBox, s *shard, key ResourceKey, now int64) {
	var w waiter
	var ok bool
	if cl := s.competitors[key]; cl != nil {
		w, ok = cl.removeFor(p)
	}
	if !ok {
		return
	}
	if p.preparing[key] > 1 {
		p.preparing[key]--
	} else {
		delete(p.preparing, key)
	}
	defer_ := now - w.since
	if defer_ < 0 {
		defer_ = 0
	}
	p.actMu.Lock()
	p.deferTime += defer_
	p.actMu.Unlock()
}

// onHold implements the HOLD arm: record the pBox in the holder map.
// holdInfo is stored by value: the hold/unhold cycle is the hottest hook
// path, and a pointer entry would allocate on every re-acquisition. Caller
// holds p.mu and s.mu.
func (m *Manager) onHold(p *PBox, s *shard, key ResourceKey, now int64) {
	h, held := p.holders[key]
	if !held {
		p.holders[key] = holdInfo{count: 1, since: now}
		hm := s.holdersByKey[key]
		if hm == nil {
			hm = make(map[*PBox]int64)
			s.holdersByKey[key] = hm
		}
		hm[p] = now
		return
	}
	h.count++
	p.holders[key] = h
}

// onUnhold implements the UNHOLD arm of Algorithm 1: if the pBox was the
// holder, scan the waiting pBoxes, estimate each waiter's interference
// level with the worst-case projection tf = td/(te-td), and if a waiter's
// goal is endangered and this pBox held the resource before the waiter
// arrived, identify (noisy=p, victim=waiter) and take action. Caller holds
// p.mu and s.mu; with no waiters present this releases only shard state —
// the verdict lock is touched exclusively when contention already happened.
func (m *Manager) onUnhold(p *PBox, s *shard, key ResourceKey, now int64) {
	h, held := p.holders[key]
	if !held {
		return
	}
	if h.count > 1 {
		h.count--
		p.holders[key] = h
		return
	}
	heldSince := h.since
	delete(p.holders, key)
	// The inner holder map is kept when it empties — resources are held
	// and released in a tight loop, and recreating the map on every
	// re-acquisition would allocate on the hook path; like competitors,
	// the index is bounded by the number of distinct resources touched.
	if hm := s.holdersByKey[key]; hm != nil {
		delete(hm, p)
	}
	cl := s.competitors[key]
	if cl == nil || len(cl.waiters) == 0 {
		return
	}
	// Cold verdict path: waiters exist, so this release must attribute
	// blame and may take action. verdictMu serializes the multi-pBox view.
	// The critical section is timed (real clock) into the self-telemetry
	// verdict-latency histogram — lock wait included, since that wait is
	// exactly the cross-pBox cost the histogram exists to expose.
	t0 := exec.Now()
	m.verdictMu.Lock()
	m.settleWaiters(p, s, cl, key, heldSince, now)
	m.verdictMu.Unlock()
	m.self.verdictLatency.observe(exec.Now() - t0)
}

// settleWaiters runs the blame and detection passes over key's waiter list
// after p released its hold. Caller holds p.mu, the key's shard lock, and
// verdictMu; victim-side accounting is touched one leaf lock at a time.
func (m *Manager) settleWaiters(p *PBox, s *shard, cl *competitorList, key ResourceKey, heldSince, now int64) {
	// Attribute to this holder the part of each waiter's wait that its
	// hold overlapped, for the pBox-level monitor's blame accounting.
	for i := range cl.waiters {
		c := &cl.waiters[i]
		since := c.since
		if heldSince > since {
			since = heldSince
		}
		if overlap := now - since; overlap > 0 {
			v := c.pbox
			v.actMu.Lock()
			if v.blame == nil {
				v.blame = make(map[*PBox]blameInfo)
			}
			bi := v.blame[p]
			bi.deferNs += overlap
			bi.key = key
			v.blame[p] = bi
			v.actMu.Unlock()
			if e := m.attrVerdict(p, v, key); e != nil {
				e.blockedNs += overlap
			}
			if m.attrObs != nil {
				m.attrObs.Blocked(p.id, v.id, key, overlap)
			}
		}
	}
	detect := !m.opts.DisableDetection
	for i := range cl.waiters {
		c := &cl.waiters[i]
		victim := c.pbox
		if victim == p || !victim.stateIs(StateActive) {
			continue
		}
		te := now - victim.activityStart.Load()
		defer_ := now - c.since
		if defer_ < 0 {
			defer_ = 0
		}
		victim.actMu.Lock()
		td := victim.deferTime + defer_
		victim.actMu.Unlock()
		if td > te {
			td = te
		}
		if detect && te > 0 {
			tf := averageRatio(td, te)
			// Act when the projected interference level exceeds the
			// goal and this hold overlapped the victim's wait. The
			// paper's line-23 condition (holder predates waiter) is
			// the special case of a single long hold; overlap also
			// covers a noisy pBox that re-acquires the resource past
			// sleeping waiters (back-to-back chunk holds), charging
			// each holder exactly for the wait time its hold covered.
			overlapStart := c.since
			if heldSince > overlapStart {
				overlapStart = heldSince
			}
			overlap := now - overlapStart
			// Causality threshold: act only when this hold accounts
			// for a meaningful share of the victim's current wait
			// window (since the last release of the resource). A
			// bystander that briefly held the resource during a wait
			// dominated by others must not absorb the blame — but a
			// swarm of holders each covering the window (overlapping
			// shared holders, back-to-back re-acquirers) all remain
			// accountable.
			if tf > victim.rule.Level && overlap > 0 && overlap*10 >= defer_ {
				m.takeActionVerdict(p, victim, key, now, overlap, tf)
			}
		}
		// Futex-style re-arm: a release wakes the waiters; one that
		// fails to enter re-queues with a fresh wait record (what the
		// kernel implementation observes by tracing futex, Section 7).
		// The elapsed wait folds into the activity's deferring time,
		// and the fresh timestamp makes a holder that re-acquires past
		// the sleeping waiter blameable at its next release —
		// back-to-back re-acquisition must not exonerate the holder.
		victim.actMu.Lock()
		victim.deferTime += defer_
		victim.actMu.Unlock()
		// Monotonic guard: a spool-replayed release carries its recorded
		// (possibly older) timestamp; the re-arm must never move a wait
		// record backwards in time, or a later real release would double
		// count the wait.
		if now > c.since {
			c.since = now
		}
	}
}

// takePending consumes p's pending penalty. Caller holds p.mu. The pending
// attribution triple is copied aside for the serve that follows, so a new
// action scheduled between the consume and the sleep cannot misattribute
// the served time.
//
//pbox:hotpath
func (m *Manager) takePending(p *PBox) time.Duration {
	if p.pendingPenalty.Load() <= 0 {
		return 0
	}
	p.penMu.Lock()
	defer p.penMu.Unlock()
	pen := p.pendingPenalty.Load()
	if pen <= 0 {
		return 0
	}
	p.pendingPenalty.Store(0)
	p.servingAttrVictim = p.pendingAttrVictim
	p.servingAttrKey = p.pendingAttrKey
	if p.sharedThread {
		// Shared-thread pBoxes are never slept directly; instead their
		// next activities wait in the task queue until the deadline.
		until := m.opts.Now() + pen
		if until > p.penaltyUntil {
			p.penaltyUntil = until
		}
		return 0
	}
	return time.Duration(pen)
}

// sleepPenalty executes a penalty delay on the calling goroutine (the noisy
// pBox's own goroutine) and accounts it. Caller holds no locks.
func (m *Manager) sleepPenalty(p *PBox, d time.Duration) {
	p.penMu.Lock()
	p.penaltySleeping = true
	p.penaltiesReceived++
	p.penaltyTotal += int64(d)
	victimID, key := p.servingAttrVictim, p.servingAttrKey
	p.penMu.Unlock()
	if m.attr != nil {
		m.verdictMu.Lock()
		if e := m.attrByIDVerdict(p.id, victimID, key); e != nil {
			e.servedNs += int64(d)
		}
		m.verdictMu.Unlock()
	}
	m.traceEvent(p, 0, "penalty", d)
	m.opts.Sleep(d)
	p.penMu.Lock()
	p.penaltySleeping = false
	p.penMu.Unlock()
	if m.obs != nil {
		m.obs.PenaltyServed(p.id, d)
	}
	if m.attrObs != nil {
		m.attrObs.PenaltyServedFor(p.id, victimID, key, d)
	}
	// The sleep inflates the pBox's execution time but adds no deferring
	// time, so its own interference level tf = td/(te-td) strictly drops.
	// That is the cascade-avoidance property of Section 4.4.1: a goal
	// violation caused by the penalty itself never reads as interference
	// and never triggers further actions on the penalized pBox's behalf.
}

// MarkShared marks the pBox as running on shared worker threads: penalties
// become requeue deadlines (see Worker.Bind and PenaltyWait) instead of
// direct delays, so a penalty never stalls the thread other pBoxes share.
func (m *Manager) MarkShared(p *PBox) { m.SetShared(p, true) }

// SetShared sets the pBox's shared-thread marking explicitly. Worker binds
// maintain the marking implicitly; SetShared exists for applications that
// manage the flag directly and for replay-time injection (internal/capture
// re-applies recorded marking flips to a fresh manager).
func (m *Manager) SetShared(p *PBox, shared bool) {
	p.penMu.Lock()
	m.setSharedLocked(p, shared)
	p.penMu.Unlock()
}

// setSharedLocked flips the shared-thread flag and notifies the lifecycle
// observer on a change. Caller holds p.penMu; the callback runs under that
// leaf lock, so the usual no-reentry rules apply.
func (m *Manager) setSharedLocked(p *PBox, shared bool) {
	if p.sharedThread == shared {
		return
	}
	p.sharedThread = shared
	if m.lifeObs != nil {
		m.lifeObs.PBoxSharedChanged(p.id, shared)
	}
}

// Crossings returns the number of conceptual kernel crossings so far.
func (m *Manager) Crossings() int64 { return m.crossings.Load() }

// Waiters returns how many pBoxes currently wait on key (tests/diagnostics).
func (m *Manager) Waiters(key ResourceKey) int {
	m.sweepSpools() // flush-on-read: spooled records must be visible
	s := m.lockShard(key)
	defer s.mu.Unlock()
	if cl := s.competitors[key]; cl != nil {
		return len(cl.waiters)
	}
	return 0
}

// Holders returns how many pBoxes currently hold key (tests/diagnostics).
func (m *Manager) Holders(key ResourceKey) int {
	m.sweepSpools() // flush-on-read: spooled records must be visible
	s := m.lockShard(key)
	defer s.mu.Unlock()
	return len(s.holdersByKey[key])
}

// Live returns the number of non-destroyed pBoxes.
func (m *Manager) Live() int {
	m.reg.Lock()
	defer m.reg.Unlock()
	return len(m.reg.pboxes)
}

// NameResource registers a human-readable name for a virtual-resource key,
// so traces and telemetry print "bufpool" instead of a raw pointer value.
// An empty name removes the registration. Names live under their shard's
// dedicated name lock, so ResourceName is safe to call from Observer hook
// callbacks.
func (m *Manager) NameResource(key ResourceKey, name string) {
	for {
		s := m.shardFor(key)
		s.namesMu.Lock()
		if s.moved.Load() {
			// A topology resize migrated this stripe's names to the new
			// shard set (under namesMu, with moved set before release):
			// retry against the live topology so the write cannot land in
			// an orphaned map.
			s.namesMu.Unlock()
			continue
		}
		if name == "" {
			delete(s.names, key)
		} else {
			if s.names == nil {
				s.names = make(map[ResourceKey]string)
			}
			s.names[key] = name
		}
		s.namesMu.Unlock()
		return
	}
}

// ResourceName returns the registered name for key ("" when unnamed).
// It takes only the owning shard's name lock, so Observer implementations
// may call it from inside hook callbacks.
func (m *Manager) ResourceName(key ResourceKey) string {
	return m.resourceName(key)
}

// resourceName looks up a registered resource name under the shard's name
// lock, retrying across topology resizes like NameResource.
func (m *Manager) resourceName(key ResourceKey) string {
	for {
		s := m.shardFor(key)
		s.namesMu.RLock()
		if s.moved.Load() {
			s.namesMu.RUnlock()
			continue
		}
		name := s.names[key]
		s.namesMu.RUnlock()
		return name
	}
}

// SetLabel attaches a diagnostic label to the pBox (connection name,
// background-task name). Labels appear in Snapshots and telemetry.
func (m *Manager) SetLabel(p *PBox, label string) {
	p.label.Store(&label)
}

// Snapshots returns the accounting of every live pBox, ordered by id. It is
// the data source of the telemetry exporter's /pboxes endpoint.
func (m *Manager) Snapshots() []Snapshot {
	m.sweepSpools() // flush-on-read: spooled records must be visible
	m.reg.Lock()
	defer m.reg.Unlock()
	return m.snapshotsRegLocked()
}

// snapshotsRegLocked builds the ordered snapshot list. Caller holds the
// registry lock; per-pBox accounting is read under each pBox's leaf locks.
func (m *Manager) snapshotsRegLocked() []Snapshot {
	out := make([]Snapshot, 0, len(m.reg.pboxes))
	for _, p := range m.reg.pboxes {
		out = append(out, p.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
