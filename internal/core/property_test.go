package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// TestPropAverageRatioBounds: for any td ≤ te the ratio is non-negative and
// finite, and increases with td.
func TestPropAverageRatioBounds(t *testing.T) {
	f := func(a, b uint32) bool {
		td, te := int64(a), int64(b)
		if td > te {
			td, te = te, td
		}
		r := averageRatio(td, te)
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return false
		}
		// Monotonic in td (with te fixed), as long as we stay below te.
		if td > 0 && td < te {
			if averageRatio(td-1, te) > r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropClampPenalty: clamping always lands in [Min, Max].
func TestPropClampPenalty(t *testing.T) {
	h := newHarness(t)
	f := func(raw int64) bool {
		got := h.m.clampPenalty(float64(raw))
		return got >= float64(h.m.opts.MinPenalty) && got <= float64(h.m.opts.MaxPenalty)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropDeferNeverNegative: random interleavings of PREPARE/ENTER with a
// monotonic clock never yield negative defer time, and the competitor map
// never underflows.
func TestPropDeferNeverNegative(t *testing.T) {
	f := func(ops []uint8) bool {
		h := newHarness(t)
		p := h.pbox(0.5)
		h.m.Activate(p)
		keys := []ResourceKey{1, 2, 3}
		for _, op := range ops {
			key := keys[int(op)%len(keys)]
			switch (op / 4) % 4 {
			case 0:
				h.m.Update(p, key, Prepare)
			case 1:
				h.m.Update(p, key, Enter)
			case 2:
				h.m.Update(p, key, Hold)
			case 3:
				h.m.Update(p, key, Unhold)
			}
			h.advance(time.Duration(op%7) * time.Microsecond)
		}
		h.m.Freeze(p)
		snap := p.Snapshot()
		if snap.TotalDefer < 0 || snap.TotalDefer > snap.TotalExec {
			return false
		}
		for _, key := range keys {
			if h.m.Waiters(key) != 0 {
				return false // freeze must clear stale waiters
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropConvergenceStepsWithinRange: convergence index is always within
// [0, len].
func TestPropConvergenceStepsWithinRange(t *testing.T) {
	f := func(raw []uint16) bool {
		lengths := make([]float64, len(raw))
		for i, v := range raw {
			lengths[i] = float64(v) + 1
		}
		got := convergenceSteps(lengths)
		if len(lengths) < 2 {
			return got == 0
		}
		return got >= 1 && got <= len(lengths)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropManagerSurvivesRandomMultiPBoxTraffic: random event sequences
// across several pBoxes leave the manager consistent (no panics, bookkeeping
// empty after release).
func TestPropManagerSurvivesRandomMultiPBoxTraffic(t *testing.T) {
	f := func(ops []uint16) bool {
		h := newHarness(t)
		pboxes := make([]*PBox, 4)
		for i := range pboxes {
			pboxes[i] = h.pbox(0.5)
			h.m.Activate(pboxes[i])
		}
		keys := []ResourceKey{10, 20}
		for _, op := range ops {
			p := pboxes[int(op)%len(pboxes)]
			key := keys[int(op/4)%len(keys)]
			switch (op / 8) % 6 {
			case 0:
				h.m.Update(p, key, Prepare)
			case 1:
				h.m.Update(p, key, Enter)
			case 2:
				h.m.Update(p, key, Hold)
			case 3:
				h.m.Update(p, key, Unhold)
			case 4:
				h.m.Freeze(p)
			case 5:
				h.m.Activate(p)
			}
			h.advance(time.Duration(op%11) * time.Microsecond)
		}
		for _, p := range pboxes {
			if err := h.m.Release(p); err != nil {
				return false
			}
		}
		for _, key := range keys {
			if h.m.Waiters(key) != 0 || h.m.Holders(key) != 0 {
				return false
			}
		}
		return h.m.Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
