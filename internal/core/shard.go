package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The manager's resource-side state (who waits on a resource, who holds it,
// what it is called) is striped across a power-of-two number of shards keyed
// by a hash of the ResourceKey, so PREPARE/ENTER/HOLD/UNHOLD traffic on
// unrelated resources never touches the same lock. See DESIGN.md §8 for the
// full lock-order contract:
//
//	snap → spools → flushMu → registry → pbox.mu → shard.mu → verdictMu →
//	leaf locks (actMu, penMu, shard.namesMu, trace ring)
//
// with two extra rules: a shard lock is never held while acquiring the
// registry lock, and at most one pBox's actMu (or penMu) is held at a time.

// shard is one stripe of the resource-side state. The trailing pad keeps
// hot shards on different cache lines so disjoint-resource traffic does not
// false-share.
type shard struct {
	mu sync.Mutex
	// competitors holds the per-resource waiter lists (the competitor map
	// of Algorithm 1) for keys hashing to this shard.
	competitors map[ResourceKey]*competitorList
	// holdersByKey indexes current holders per resource so UNHOLD can
	// attribute blame and tests can inspect contention.
	holdersByKey map[ResourceKey]map[*PBox]int64

	// names maps virtual-resource keys to human-readable names registered
	// via NameResource. It lives under its own lock (not shard.mu) so
	// Observer implementations may resolve names from inside hook
	// callbacks — including callbacks fired while shard.mu is held —
	// without deadlocking. namesMu is a leaf lock: nothing is acquired
	// under it.
	namesMu sync.RWMutex
	names   map[ResourceKey]string

	// locks counts mu acquisitions on this stripe for the self-telemetry
	// report (SelfStats.ShardLockAcquisitions): every s.mu.Lock() site adds
	// one. It is an atomic so SelfStats can read it without the stripe lock.
	locks atomic.Int64

	_ [64]byte // cache-line padding against false sharing
}

// fibMix is the 64-bit golden-ratio multiplier of Fibonacci hashing. Raw
// ResourceKeys are usually pointer values whose low bits are all zero from
// alignment; the multiply spreads them across the high bits, which shardFor
// then shifts down.
const fibMix = 0x9e3779b97f4a7c15

// shardFor returns the shard owning key.
//
//pbox:hotpath
func (m *Manager) shardFor(key ResourceKey) *shard {
	// shardShift is 64 - log2(len(shards)); a shift of 64 (single shard)
	// yields index 0 by Go's defined >=width shift semantics.
	return m.shards[(uint64(key)*fibMix)>>m.shardShift]
}

// newShards allocates n shards (n must be a power of two) and returns them
// with the matching index shift.
func newShards(n int) ([]*shard, uint) {
	shards := make([]*shard, n)
	for i := range shards {
		shards[i] = &shard{
			competitors:  make(map[ResourceKey]*competitorList),
			holdersByKey: make(map[ResourceKey]map[*PBox]int64),
		}
	}
	bits := uint(0)
	for 1<<bits < n {
		bits++
	}
	return shards, 64 - bits
}

// defaultShardCount sizes the stripe set when Options.Shards is zero:
// 4× the scheduler's parallelism, rounded up to a power of two and clamped
// to [8, 256]. Oversubscribing the core count keeps two hot resources from
// colliding in one stripe by birthday accident.
func defaultShardCount() int {
	n := nextPow2(4 * runtime.GOMAXPROCS(0))
	if n < 8 {
		n = 8
	}
	if n > 256 {
		n = 256
	}
	return n
}

// nextPow2 rounds n up to the next power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// lockAllShards acquires every shard lock in index order (the only order in
// which more than one shard lock may ever be held) and returns the matching
// reverse-order unlock. It is the stop-the-world half of Status(): with all
// shards held, no event can move a waiter or holder, so the combined
// snapshot can never pair a pBox list from one instant with resource-side
// state from another.
func (m *Manager) lockAllShards() func() {
	for _, s := range m.shards {
		//pboxlint:ignore lockorder stop-the-world sweep: shard locks are taken in ascending index order, the one sanctioned multi-shard hold (DESIGN.md §8)
		s.mu.Lock()
		s.locks.Add(1)
	}
	return func() {
		for i := len(m.shards) - 1; i >= 0; i-- {
			m.shards[i].mu.Unlock()
		}
	}
}
