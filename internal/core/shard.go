package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The manager's resource-side state (who waits on a resource, who holds it,
// what it is called) is striped across a power-of-two number of shards keyed
// by a hash of the ResourceKey, so PREPARE/ENTER/HOLD/UNHOLD traffic on
// unrelated resources never touches the same lock. See DESIGN.md §8 for the
// full lock-order contract:
//
//	snap → topo → spools → flushMu → registry → pbox.mu → shard.mu →
//	verdictMu → leaf locks (actMu, penMu, shard.namesMu, trace ring)
//
// with two extra rules: a shard lock is never held while acquiring the
// registry lock, and at most one pBox's actMu (or penMu) is held at a time.
//
// The stripe set itself is no longer fixed for the manager's lifetime: the
// adaptive-topology sizer (topology.go, DESIGN.md §13) may grow or shrink
// it at runtime. The live topology is one immutable shardSet behind an
// atomic pointer, and every lock site revalidates with the per-shard moved
// flag (see lockShard) so a resize can migrate state without a reader-side
// lock on the hot path.

// shard is one stripe of the resource-side state. Field groups are spaced
// by cache-line pads (pad.go): the stripe mutex + maps that one event
// mutates, the name leaf lock that observer callbacks read, and the
// acquisition counter that SelfStats sums are touched by different
// goroutines for different reasons, and hot shards must not false-share
// across groups or with neighboring allocations.
type shard struct {
	mu sync.Mutex
	// competitors holds the per-resource waiter lists (the competitor map
	// of Algorithm 1) for keys hashing to this shard.
	competitors map[ResourceKey]*competitorList
	// holdersByKey indexes current holders per resource so UNHOLD can
	// attribute blame and tests can inspect contention.
	holdersByKey map[ResourceKey]map[*PBox]int64

	// moved marks a stripe whose state has migrated to a newer shardSet
	// (set under mu by the topology resize, before the old locks are
	// released). Any path that locked this shard via a stale topology
	// pointer observes the flag and retries against the current set; the
	// stale maps are never mutated again. Atomic because the namesMu-only
	// paths read it without holding mu.
	moved atomic.Bool

	_ cacheLinePad

	// names maps virtual-resource keys to human-readable names registered
	// via NameResource. It lives under its own lock (not shard.mu) so
	// Observer implementations may resolve names from inside hook
	// callbacks — including callbacks fired while shard.mu is held —
	// without deadlocking. namesMu is a leaf lock: nothing is acquired
	// under it.
	namesMu sync.RWMutex
	names   map[ResourceKey]string

	_ cacheLinePad

	// locks counts mu acquisitions on this stripe for the self-telemetry
	// report (SelfStats.ShardLockAcquisitions): every s.mu.Lock() site adds
	// one. It is an atomic so SelfStats can read it without the stripe lock.
	locks atomic.Int64

	_ cacheLinePad // keep the counter off the next allocation's line
}

// shardSet is one immutable shard topology: the stripe array plus the
// matching index shift. The manager publishes the live set through one
// atomic pointer (Manager.shards); a resize builds a fresh set, migrates
// state under every old stripe lock, and swaps the pointer whole, so
// shardFor stays a single load on the hot path.
type shardSet struct {
	shards []*shard
	// shift is 64 - log2(len(shards)); a shift of 64 (single shard) yields
	// index 0 by Go's defined >=width shift semantics.
	shift uint
}

// shardOf returns the shard owning key within this set.
//
//pbox:hotpath
func (ss *shardSet) shardOf(key ResourceKey) *shard {
	return ss.shards[(uint64(key)*fibMix)>>ss.shift]
}

// fibMix is the 64-bit golden-ratio multiplier of Fibonacci hashing. Raw
// ResourceKeys are usually pointer values whose low bits are all zero from
// alignment; the multiply spreads them across the high bits, which shardOf
// then shifts down.
const fibMix = 0x9e3779b97f4a7c15

// shardFor returns the shard owning key in the current topology. The result
// is advisory until locked and revalidated — see lockShard.
//
//pbox:hotpath
func (m *Manager) shardFor(key ResourceKey) *shard {
	return m.shards.Load().shardOf(key)
}

// lockShard returns key's shard with its stripe lock held, retrying across
// topology swaps: a shard locked through a stale set pointer carries the
// moved flag (set by the resize before it released the old locks), in which
// case its maps have migrated and the current set must be consulted again.
// Every event-side shard acquisition goes through here so a resize is
// invisible to correctness and costs stale lockers one extra lock/unlock.
//
//pbox:hotpath
func (m *Manager) lockShard(key ResourceKey) *shard {
	for {
		s := m.shardFor(key)
		s.mu.Lock()
		if !s.moved.Load() {
			s.locks.Add(1)
			return s
		}
		s.mu.Unlock()
	}
}

// newShardSet allocates a set of n shards (n must be a power of two).
func newShardSet(n int) *shardSet {
	shards := make([]*shard, n)
	for i := range shards {
		shards[i] = &shard{
			competitors:  make(map[ResourceKey]*competitorList),
			holdersByKey: make(map[ResourceKey]map[*PBox]int64),
		}
	}
	bits := uint(0)
	for 1<<bits < n {
		bits++
	}
	return &shardSet{shards: shards, shift: 64 - bits}
}

// defaultShardCount sizes the stripe set when Options.Shards is zero.
func defaultShardCount() int {
	return defaultShardCountFor(runtime.GOMAXPROCS(0))
}

// defaultShardCountFor is the sizing rule: 4× the scheduler's parallelism,
// rounded up to a power of two and clamped to [8, 256]. Oversubscribing the
// core count keeps two hot resources from colliding in one stripe by
// birthday accident. The input is deliberately GOMAXPROCS, not NumCPU: in a
// container with a CPU quota GOMAXPROCS reflects the runnable parallelism
// the runtime will actually use, while NumCPU reports the host's cores —
// sizing from NumCPU would over-stripe a quota-limited process (wasted
// memory, colder stripe maps) for parallelism it can never exhibit.
// TestDefaultShardCountRule pins this rule.
func defaultShardCountFor(parallelism int) int {
	n := nextPow2(4 * parallelism)
	if n < minShards {
		n = minShards
	}
	if n > maxShards {
		n = maxShards
	}
	return n
}

// minShards and maxShards bound the stripe count, for both the static
// default and the adaptive sizer (topology.go). The floor keeps birthday
// collisions rare even at GOMAXPROCS=1; the ceiling caps the stop-the-world
// sweep cost of Status() and the per-manager memory.
const (
	minShards = 8
	maxShards = 256
)

// nextPow2 rounds n up to the next power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// lockAllShards acquires every stripe lock of the current topology in index
// order (the only order in which more than one shard lock may ever be held)
// and returns the matching reverse-order unlock. It is the stop-the-world
// half of Status(): with all shards held, no event can move a waiter or
// holder, so the combined snapshot can never pair a pBox list from one
// instant with resource-side state from another. If a topology resize wins
// the race (the pointer moved while this sweep was acquiring the old set),
// the old locks are dropped and the sweep restarts on the new set — the
// resize holds every old lock across its migration, so a completed sweep
// over an unchanged pointer is guaranteed un-migrated.
func (m *Manager) lockAllShards() func() {
	for {
		ss := m.shards.Load()
		for _, s := range ss.shards {
			//pboxlint:ignore lockorder stop-the-world sweep: shard locks are taken in ascending index order, the one sanctioned multi-shard hold (DESIGN.md §8)
			s.mu.Lock()
			s.locks.Add(1)
		}
		if m.shards.Load() == ss {
			return func() {
				for i := len(ss.shards) - 1; i >= 0; i-- {
					ss.shards[i].mu.Unlock()
				}
			}
		}
		// A resize published a new set while this sweep held none-to-some
		// of the old locks; the old stripes are (or are about to be)
		// migrated. Release and restart against the live topology.
		for i := len(ss.shards) - 1; i >= 0; i-- {
			ss.shards[i].mu.Unlock()
		}
	}
}
