package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// Two-tier event ingestion (DESIGN.md §10). The sharded Update path still
// takes the calling pBox's mutex and one shard lock on every event, even when
// the resource has no competitors at all — the overwhelmingly common case.
// The paper's kernel pBox keeps tracing overhead negligible with per-thread
// state tracking, falling into the manager only when a transition can
// actually trigger detection (§5); this file is that idea in userspace.
//
// Tier A (fast path): when a resource's contention slot shows no cross-pBox
// competition, Worker.Update records the event in the worker's own fixed
// capacity spool — (key, event, timestamp) plus a locally accumulated
// crossing count — under a single worker-local leaf lock, touching no shard
// and no pBox mutex. Tier B (slow path): any event on a contended slot — or
// any direct Manager.Update, which by definition may create cross-pBox
// overlap — flips the slot, drains every registered spool, and then runs the
// full Algorithm 1 bookkeeping, so detection verdicts, penalties,
// attribution, flight-recorder captures, and observer callbacks see exactly
// the event stream the unspooled manager produces: batched events are
// replayed in order with their recorded timestamps.
//
// Contention-slot state machine (one atomic.Int64 per slot, keys hashed onto
// slots with the same Fibonacci mix as shards):
//
//	 0  untouched: no pBox has ever touched a key hashing here
//	>0  claimed: the id of the single pBox spooling events for keys here
//	-1  contended: slow path only (sticky; see below)
//
// The fast path claims a slot with CAS(0→id) or proceeds when it already
// holds its own id. Anything else — another pBox's claim, or -1 — is the
// cross-pBox overlap condition ("first HOLD by X while the holder hint names
// Y, first PREPARE while a holder exists" both reduce to this, because any
// shard-side state for the slot's keys was created by the claimant alone).
// The slow path revokes claims with markContended: swap in -1 and, if a
// claim was present, drain every spool before applying the triggering event.
// The -1 is sticky: distinct keys alias the same slot, so "the key's state
// emptied" never proves the slot is reclaimable — resetting could hand a
// fast-path claim to a key whose alias still has live shard state. Stickiness
// degrades performance only, never correctness: a contended slot simply runs
// today's slow path forever.
//
// Lock order (extends DESIGN.md §8; the lint lockorder table enforces it):
//
//	Manager.snap → Manager.topo → Manager.spools → eventSpool.flushMu →
//	registry → pbox.mu → shard.mu → verdictMu → leaves (eventSpool.mu
//	joins actMu, penMu, …)
//
// Flush triggers: the spool fills, a slow-path event arrives on the worker
// (own spool first, so per-pBox order holds), the worker rebinds or unbinds,
// the pBox is Activated/Frozen/Released, or a consistent read needs the
// spooled state (Status, Snapshots, Attribution, Trace, Waiters, Holders —
// flush-on-read via the registered-spool sweep).

// contentionSlots is the fixed size of the contention-slot table (power of
// two). More slots mean fewer aliasing collisions, and a collision costs
// performance only (a shared claim fails and falls to the slow path).
const (
	contentionSlots = 1024
	contentionShift = 54 // 64 - log2(contentionSlots)
)

// contentionTable is the slot array of the fast path, embedded by value in
// the Manager so Worker.Update resolves a slot with one offset computation
// from the manager pointer — no table-pointer chase, slice-header load, or
// runtime stride multiply, each of which measurably taxes the ~50 ns
// uncontended op. Storage is always the padded size; the layout switch only
// changes index arithmetic. Padded (the default), consecutive slots sit on
// distinct cache lines — 64 KiB per manager — because adjacent 8-byte
// atomics hammered by different workers' CAS/Load traffic false-share
// catastrophically on multicore (pad.go). The benchmark-only
// Options.NoCachePad packs the slots adjacently into the first 8 KiB (the
// old layout) so BENCH_scale.json can carry before/after rows from one
// binary.
type contentionTable struct {
	slots    [contentionSlots * padWords]atomic.Int64
	unpadded bool
}

// stride is the slot spacing, in 8-byte words, of the active layout.
func (t *contentionTable) stride() uint64 {
	if t.unpadded {
		return 1
	}
	return padWords
}

// slot returns the contention slot owning key. Each arm indexes with a
// compile-time-constant stride into a fixed-size array, so the shift-bounded
// index needs no bounds check.
//
//pbox:hotpath
func (t *contentionTable) slot(key ResourceKey) *atomic.Int64 {
	idx := (uint64(key) * fibMix) >> contentionShift
	if t.unpadded {
		return &t.slots[idx]
	}
	return &t.slots[idx*padWords]
}

// stickySlots counts slots currently stuck at the contended value.
//
//pbox:snapshotreader
func (t *contentionTable) stickySlots() int {
	n, stride := 0, t.stride()
	for i := uint64(0); i < contentionSlots; i++ {
		if t.slots[i*stride].Load() == contendedSlot {
			n++
		}
	}
	return n
}

// defaultSpoolSize is the per-worker spool capacity when Options.SpoolSize
// is zero.
const defaultSpoolSize = 256

// spoolRec is one spooled event. No pointers: the spool buffer is reused for
// the life of the worker and must hold nothing alive.
type spoolRec struct {
	key ResourceKey
	ev  EventType
	at  int64 // manager-clock ns recorded at append time
}

// eventSpool is one worker's Tier A buffer. Two locks split the roles:
// flushMu serializes whole flushes (copy-out plus replay), so two concurrent
// flushers — the owning worker racing a flush-on-read sweep — can never
// replay the same batch out of order; mu is a terminal leaf guarding the
// buffer itself, so the append path is a leaf-only operation ("the spool is
// a leaf owned by its Worker"). The buffers are preallocated at construction
// and the append/flush cycle allocates nothing.
// The flush-side fields (flushMu, drain) and the append-side fields (mu and
// the buffer header) form two groups touched by different goroutines — the
// owning worker appends while a sweep flushes — separated by cache-line pads
// (pad.go) so a sweep on one core does not invalidate the append header's
// line on the worker's core. Spool headers are the per-worker hot state; one
// line of padding per worker is the whole cost.
type eventSpool struct {
	m *Manager

	// flushMu serializes flushes end to end. It ranks before the registry
	// in the lock order: replay acquires pbox/shard/verdict locks under it,
	// and nothing may acquire it while holding any manager lock.
	flushMu sync.Mutex

	// drain is the flush-side copy buffer, touched only under flushMu.
	drain []spoolRec

	_ cacheLinePad

	// mu is the buffer leaf. Held only for the few stores of an append or
	// the copy-out of a flush; nothing is ever acquired under it.
	mu   sync.Mutex
	pbox *PBox // owner of the buffered records (nil when empty)
	recs []spoolRec
	n    int
	// draining is set while a flush replays records copied out of the
	// buffer; mustFlush treats an in-flight replay like buffered records so
	// a slow-path hand-off always orders after the events that preceded it.
	draining bool
	// crossings accumulates the conceptual kernel crossings of spooled
	// events locally, folded into the manager counter at flush — the
	// "locally-accumulated sums" half of the spool, kept off the shared
	// atomic the fast path would otherwise contend on.
	crossings int64

	_ cacheLinePad // keep the header off the next allocation's line
}

func newEventSpool(m *Manager, capacity int) *eventSpool {
	return &eventSpool{
		m:     m,
		recs:  make([]spoolRec, capacity),
		drain: make([]spoolRec, capacity),
	}
}

// append records one event for p, returning false when the caller must
// flush first (buffer full, or the buffer holds another pBox's records
// after a rebind).
//
//pbox:hotpath
func (sp *eventSpool) append(p *PBox, key ResourceKey, ev EventType, now int64) bool {
	sp.mu.Lock()
	if sp.n >= len(sp.recs) || (sp.n > 0 && sp.pbox != p) {
		sp.mu.Unlock()
		return false
	}
	sp.pbox = p
	sp.recs[sp.n] = spoolRec{key: key, ev: ev, at: now}
	sp.n++
	sp.crossings++
	sp.mu.Unlock()
	return true
}

// pending reports whether the spool currently buffers records for p
// (flushSpoolsFor's cheap pre-check).
func (sp *eventSpool) pending(p *PBox) bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.n > 0 && sp.pbox == p
}

// mustFlush reports whether a slow-path hand-off has anything to wait for:
// buffered records, or a concurrent flush still replaying records it copied
// out (the hand-off's event must apply after them, which flush's flushMu
// guarantees). False means the hand-off may proceed straight to the slow
// path — the common case once a slot has gone contended, where paying two
// mutexes per event to flush an empty spool would erase the point of the
// check.
//
//pbox:hotpath
func (sp *eventSpool) mustFlush() bool {
	sp.mu.Lock()
	v := sp.n > 0 || sp.draining
	sp.mu.Unlock()
	return v
}

// flush drains the spool into manager state: the buffered records are copied
// out under the leaf lock, then replayed in order with their recorded
// timestamps under flushMu. serve selects whether a penalty that became
// servable by the replay is slept here — true only when the flush runs on
// the owning worker's goroutine (its own fills and slow-path hand-offs);
// sweep flushes pass false so a diagnostics reader never serves another
// pBox's delay.
func (sp *eventSpool) flush(serve bool) {
	sp.flushMu.Lock()
	sp.mu.Lock()
	p, n, crossings := sp.pbox, sp.n, sp.crossings
	copy(sp.drain[:n], sp.recs[:n])
	sp.n, sp.pbox, sp.crossings = 0, nil, 0
	sp.draining = n > 0
	sp.mu.Unlock()

	var pen time.Duration
	if crossings > 0 {
		sp.m.crossings.Add(crossings)
	}
	if n > 0 {
		sp.m.self.spoolFlushes.Add(1)
		sp.m.self.spoolFlushedEvents.Add(int64(n))
		pen = sp.m.replay(p, sp.drain[:n], serve)
		sp.mu.Lock()
		sp.draining = false
		sp.mu.Unlock()
	}
	sp.flushMu.Unlock()
	// The penalty sleep runs after flushMu is released so a concurrent
	// Status sweep never stalls behind a millisecond-scale delay.
	if pen > 0 {
		sp.m.sleepPenalty(p, pen)
	}
}

// contentionSlot returns the slot owning key.
//
//pbox:hotpath
func (m *Manager) contentionSlot(key ResourceKey) *atomic.Int64 {
	return m.contention.slot(key)
}

// setCapacity reallocates the spool buffers to n records. It succeeds only
// when the spool is empty and no flush is replaying — the adaptive sizer
// (topology.go) flushes first, and a racing append simply defers the resize
// to the next tick. Buffered records are never dropped or copied across a
// capacity change.
func (sp *eventSpool) setCapacity(n int) bool {
	sp.flushMu.Lock()
	defer sp.flushMu.Unlock()
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.n > 0 || sp.draining {
		return false
	}
	if len(sp.recs) == n {
		return true
	}
	sp.recs = make([]spoolRec, n)
	sp.drain = make([]spoolRec, n)
	return true
}

// markContended revokes any fast-path claim on key's slot before a slow-path
// event is applied. If a claim was present, every registered spool is
// drained first, so spooled records — which logically precede the triggering
// event — reach the shard state before it. Caller holds no manager locks.
//
//pbox:hotpath
func (m *Manager) markContended(key ResourceKey) {
	slot := m.contentionSlot(key)
	if slot.Load() == contendedSlot {
		return
	}
	if prev := slot.Swap(contendedSlot); prev > 0 {
		m.self.contentionRevokes.Add(1)
		m.sweepSpools()
	}
}

// contendedSlot is the sticky "slow path only" slot value.
const contendedSlot = -1

// sweepSpools flushes every registered spool (flush-on-read, and the drain
// half of markContended). Flushes run with serve=false: the sweep may be a
// diagnostics reader, which must never sleep a penalty on a pBox's behalf.
func (m *Manager) sweepSpools() {
	m.self.spoolSweeps.Add(1)
	m.spools.Lock()
	for _, sp := range m.spools.list {
		sp.flush(false)
	}
	m.spools.Unlock()
}

// flushSpoolsFor drains the spools buffering records for p — the lifecycle
// flush of Activate/Freeze/Release, which must observe every event the
// pBox's worker recorded before the transition. Caller holds no manager
// locks (the flush acquires p.mu itself).
func (m *Manager) flushSpoolsFor(p *PBox) {
	m.spools.Lock()
	for _, sp := range m.spools.list {
		if sp.pending(p) {
			sp.flush(false)
		}
	}
	m.spools.Unlock()
}

// replay applies a drained batch under p's mutex with the recorded
// timestamps as the event clock, so the slow-path bookkeeping — trace
// entries, observer callbacks, Algorithm 1 arms — sees the stream the
// unspooled manager would have seen. Records of a pBox that left its active
// window (frozen or released while the batch was buffered) are dropped,
// mirroring the unspooled drop of events outside activate…freeze. Returns a
// penalty to serve (only when serve is set and the safe-point check passes);
// the caller sleeps it after releasing flushMu.
func (m *Manager) replay(p *PBox, recs []spoolRec, serve bool) time.Duration {
	p.mu.Lock()
	if !p.stateIs(StateActive) {
		p.mu.Unlock()
		return 0
	}
	if m.trace == nil && m.obs == nil {
		m.replayQuiet(p, recs)
	} else {
		// An attached observer or trace ring must see the per-event stream
		// exactly as the slow path delivers it, so each record goes through
		// the full delivery path (with its recorded timestamp).
		for i := range recs {
			r := &recs[i]
			m.applyLocked(p, r.key, r.ev, r.at)
		}
	}
	var pen time.Duration
	if serve && p.pendingPenalty.Load() > 0 && len(p.holders) == 0 && len(p.preparing) == 0 {
		pen = m.takePending(p)
	}
	p.mu.Unlock()
	return pen
}

// replayQuiet applies a batch with no observer and no trace ring attached —
// the perf configuration the fast path exists for. With p.mu held for the
// whole batch and each key's shard lock held across every record that
// touches it, no intermediate state is observable, which licenses two
// batch-local reductions the per-event path cannot make:
//
//   - one shard lock acquisition covers a run of same-shard records, and
//   - an adjacent balanced pair that provably changes nothing collapses:
//     HOLD+UNHOLD on an already-held key is a hold-count up/down; HOLD+UNHOLD
//     on an unheld key with no waiters inserts and removes the same holder
//     entries with nothing watching; PREPARE+ENTER is exactly a deferTime
//     contribution of the recorded interval (the waiter the PREPARE would
//     register is removed by the very next record, so no UNHOLD between them
//     can blame it).
//
// Anything else — unpaired records, pairs with waiters present — runs the
// ordinary Algorithm 1 arm, so verdicts, blame, and penalties come out
// exactly as the unspooled manager's. Caller holds p.mu.
//
//pbox:hotpath
func (m *Manager) replayQuiet(p *PBox, recs []spoolRec) {
	var s *shard
	var deferSum int64
	for i := 0; i < len(recs); i++ {
		r := &recs[i]
		paired := i+1 < len(recs) && recs[i+1].key == r.key
		if paired {
			if r.ev == Prepare && recs[i+1].ev == Enter {
				if d := recs[i+1].at - r.at; d > 0 {
					deferSum += d
				}
				i++
				continue
			}
			if r.ev == Hold && recs[i+1].ev == Unhold {
				if _, held := p.holders[r.key]; held {
					i++ // hold-count up then down: nothing changes
					continue
				}
			}
		}
		if ns := m.shardFor(r.key); ns != s {
			if s != nil {
				s.mu.Unlock()
			}
			// The held shard is always released above before the next one is
			// taken (the same blind spot as lockAllShards' index-ordered
			// sweep); lockShard revalidates the topology after acquiring, so
			// a resize racing the batch is retried, never mutated-through.
			s = m.lockShard(r.key)
		}
		if paired && r.ev == Hold && recs[i+1].ev == Unhold {
			if _, held := p.holders[r.key]; !held {
				if cl := s.competitors[r.key]; cl == nil || len(cl.waiters) == 0 {
					i++ // transient hold nobody waited on: nothing changes
					continue
				}
			}
		}
		m.applyArmLocked(p, s, r.key, r.ev, r.at)
	}
	if s != nil {
		s.mu.Unlock()
	}
	if deferSum > 0 {
		p.actMu.Lock()
		p.deferTime += deferSum
		p.actMu.Unlock()
	}
}

// Update is the Worker-side update_pbox of the two-tier path: the filter
// runs first (a dropped event does no spool or slot work at all), then the
// event takes the fast path when the worker's bound pBox holds (or can
// claim) the key's contention slot, and the slow path otherwise. A lazily
// detached worker has tracing paused, exactly like Manager.Update on a
// non-active pBox, so the call is a no-op.
//
//pbox:hotpath
func (w *Worker) Update(key ResourceKey, ev EventType) {
	m := w.mgr
	if m.opts.EventFilter != nil && !m.opts.EventFilter(key, ev) {
		return
	}
	p := w.cur
	if p == nil || w.detached {
		return
	}
	if w.spool == nil {
		m.updateSlow(p, key, ev)
		return
	}
	if !p.stateIs(StateActive) {
		return
	}
	slot := m.contentionSlot(key)
	id := int64(p.id)
	if v := slot.Load(); v != id {
		if v != 0 || !slot.CompareAndSwap(0, id) {
			// Cross-pBox overlap (another claim) or known contention: hand
			// off to the slow path, draining our own spool first so this
			// pBox's events apply in issue order.
			if w.spool.mustFlush() {
				w.spool.flush(true)
			}
			m.updateSlow(p, key, ev)
			return
		}
		m.self.contentionClaims.Add(1)
	}
	now := m.opts.Now()
	if !w.spool.append(p, key, ev, now) {
		m.self.spoolOverflows.Add(1)
		w.spool.flush(true)
		if !w.spool.append(p, key, ev, now) {
			// Degenerate capacity (a zero-slot spool can never hold the
			// record): apply directly. The claim is already ours, so the
			// slow path just runs the bookkeeping.
			m.updateSlow(p, key, ev)
			return
		}
	}
	// Straggler self-healing: if the slot changed between the claim check
	// and the append landing, a concurrent slow-path event has already
	// swept the spools — drain our own again so the late record cannot sit
	// past the revocation. Replay guards (monotonic re-arm, clamped
	// overlaps) keep an out-of-order late record detection-neutral.
	if slot.Load() != id {
		w.spool.flush(true)
	}
}

// Flush drains this worker's spool into manager state on the worker's own
// goroutine (a penalty that becomes servable is slept here). Applications
// call it at natural batching boundaries — end of a request, before
// blocking — when they want spooled state visible without waiting for a
// flush trigger.
func (w *Worker) Flush() {
	if w.spool != nil {
		w.spool.flush(true)
	}
}
