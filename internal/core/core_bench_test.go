package core

import (
	"sync/atomic"
	"testing"
	"time"
)

// Benchmarks for the manager's event hot path. Run with -cpu=1,4,N to see
// the scaling the sharded design exists for; BENCH_core.json (written by
// `pboxbench -exp core-json`) records the same scenarios against an
// emulated single-global-mutex baseline so regressions are visible across
// PRs.

// benchManager returns a manager configured for benchmarking: penalties are
// swallowed (a real sleep would measure the clock, not the manager) and
// everything else is at production defaults — observer nil, tracing off.
func benchManager() *Manager {
	return NewManager(Options{Sleep: func(time.Duration) {}})
}

// benchPBox creates and activates one pBox for a benchmark goroutine.
func benchPBox(b *testing.B, m *Manager) *PBox {
	p, err := m.Create(DefaultRule())
	if err != nil {
		b.Fatal(err)
	}
	m.Activate(p)
	return p
}

// BenchmarkManagerParallelUpdate drives the full PREPARE/ENTER/HOLD/UNHOLD
// cycle from every goroutine, each on its own pBox and resource — the
// general shape of many connections doing uncontended work.
func BenchmarkManagerParallelUpdate(b *testing.B) {
	m := benchManager()
	var ctr atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		key := ResourceKey(0x1000 + ctr.Add(1))
		p := benchPBox(b, m)
		for pb.Next() {
			m.Update(p, key, Prepare)
			m.Update(p, key, Enter)
			m.Update(p, key, Hold)
			m.Update(p, key, Unhold)
		}
	})
}

// BenchmarkManagerDisjointResources is the scaling benchmark: hold/unhold
// cycles on per-goroutine resources. With the old global manager mutex this
// was fully serialized; sharded, the goroutines share nothing but atomic
// counters and should scale with cores.
func BenchmarkManagerDisjointResources(b *testing.B) {
	m := benchManager()
	var ctr atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		key := ResourceKey(0x9000 + ctr.Add(1))
		p := benchPBox(b, m)
		for pb.Next() {
			m.Update(p, key, Hold)
			m.Update(p, key, Unhold)
		}
	})
}

// BenchmarkManagerDisjointFastpath is the disjoint scaling benchmark driven
// through per-goroutine Workers, so uncontended events take the Tier A spool
// (spool.go) instead of the per-event shard path — the headline case of the
// two-tier ingestion split.
func BenchmarkManagerDisjointFastpath(b *testing.B) {
	m := benchManager()
	var ctr atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		key := ResourceKey(0x9000 + ctr.Add(1))
		p := benchPBox(b, m)
		w := m.NewWorker()
		if err := w.BindDirect(p); err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			w.Update(key, Hold)
			w.Update(key, Unhold)
		}
		w.Flush()
	})
}

// BenchmarkManagerContendedResource hammers one resource from every
// goroutine — the worst case for striping (all traffic lands on one shard)
// and the floor the sharded design must not regress below.
func BenchmarkManagerContendedResource(b *testing.B) {
	m := benchManager()
	const key = ResourceKey(0x42)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		p := benchPBox(b, m)
		for pb.Next() {
			m.Update(p, key, Hold)
			m.Update(p, key, Unhold)
		}
	})
}

// BenchmarkUpdateHotPathAllocs gates the hot path at zero allocations: with
// the observer disabled, a steady-state hold/unhold cycle must not allocate
// at all — on the direct (Tier B) path and on the spooled (Tier A) path,
// whose assertion spans spool fills and flush replays. The assertions run
// before the timed loops so `go test -bench` fails loudly if any later
// change sneaks an allocation into the event path.
func BenchmarkUpdateHotPathAllocs(b *testing.B) {
	b.Run("direct", func(b *testing.B) {
		m := benchManager()
		p := benchPBox(b, m)
		const key = ResourceKey(0xbeef)
		// Warm the per-key structures (shard map entries, holder map) so the
		// measurement sees steady state, not first-touch setup.
		m.Update(p, key, Hold)
		m.Update(p, key, Unhold)
		if !raceEnabled {
			if allocs := testing.AllocsPerRun(1000, func() {
				m.Update(p, key, Hold)
				m.Update(p, key, Unhold)
			}); allocs != 0 {
				b.Fatalf("Update hot path allocates %.1f allocs per hold/unhold cycle; want 0", allocs)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Update(p, key, Hold)
			m.Update(p, key, Unhold)
		}
	})
	b.Run("spooled", func(b *testing.B) {
		m := benchManager()
		p := benchPBox(b, m)
		w := m.NewWorker()
		if err := w.BindDirect(p); err != nil {
			b.Fatal(err)
		}
		const key = ResourceKey(0xbee5)
		w.Update(key, Hold)
		w.Update(key, Unhold)
		w.Flush()
		if !raceEnabled {
			// 1000 runs cross several spool-fill flushes, so the assertion
			// covers append, flush copy-out, and batch replay.
			if allocs := testing.AllocsPerRun(1000, func() {
				w.Update(key, Hold)
				w.Update(key, Unhold)
			}); allocs != 0 {
				b.Fatalf("spooled hot path allocates %.1f allocs per hold/unhold cycle; want 0", allocs)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Update(key, Hold)
			w.Update(key, Unhold)
		}
	})
}
