package core

import (
	"sync/atomic"
	"testing"
	"time"
)

// Benchmarks for the manager's event hot path. Run with -cpu=1,4,N to see
// the scaling the sharded design exists for; BENCH_core.json (written by
// `pboxbench -exp core-json`) records the same scenarios against an
// emulated single-global-mutex baseline so regressions are visible across
// PRs.

// benchManager returns a manager configured for benchmarking: penalties are
// swallowed (a real sleep would measure the clock, not the manager) and
// everything else is at production defaults — observer nil, tracing off.
func benchManager() *Manager {
	return NewManager(Options{Sleep: func(time.Duration) {}})
}

// benchPBox creates and activates one pBox for a benchmark goroutine.
func benchPBox(b *testing.B, m *Manager) *PBox {
	p, err := m.Create(DefaultRule())
	if err != nil {
		b.Fatal(err)
	}
	m.Activate(p)
	return p
}

// BenchmarkManagerParallelUpdate drives the full PREPARE/ENTER/HOLD/UNHOLD
// cycle from every goroutine, each on its own pBox and resource — the
// general shape of many connections doing uncontended work.
func BenchmarkManagerParallelUpdate(b *testing.B) {
	m := benchManager()
	var ctr atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		key := ResourceKey(0x1000 + ctr.Add(1))
		p := benchPBox(b, m)
		for pb.Next() {
			m.Update(p, key, Prepare)
			m.Update(p, key, Enter)
			m.Update(p, key, Hold)
			m.Update(p, key, Unhold)
		}
	})
}

// BenchmarkManagerDisjointResources is the scaling benchmark: hold/unhold
// cycles on per-goroutine resources. With the old global manager mutex this
// was fully serialized; sharded, the goroutines share nothing but atomic
// counters and should scale with cores.
func BenchmarkManagerDisjointResources(b *testing.B) {
	m := benchManager()
	var ctr atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		key := ResourceKey(0x9000 + ctr.Add(1))
		p := benchPBox(b, m)
		for pb.Next() {
			m.Update(p, key, Hold)
			m.Update(p, key, Unhold)
		}
	})
}

// BenchmarkManagerContendedResource hammers one resource from every
// goroutine — the worst case for striping (all traffic lands on one shard)
// and the floor the sharded design must not regress below.
func BenchmarkManagerContendedResource(b *testing.B) {
	m := benchManager()
	const key = ResourceKey(0x42)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		p := benchPBox(b, m)
		for pb.Next() {
			m.Update(p, key, Hold)
			m.Update(p, key, Unhold)
		}
	})
}

// BenchmarkUpdateHotPathAllocs gates the hot path at zero allocations: with
// the observer disabled, a steady-state hold/unhold cycle must not allocate
// at all. The assertion runs before the timed loop so `go test -bench` fails
// loudly if the sharding refactor (or any later change) sneaks an allocation
// into the event path.
func BenchmarkUpdateHotPathAllocs(b *testing.B) {
	m := benchManager()
	p := benchPBox(b, m)
	const key = ResourceKey(0xbeef)
	// Warm the per-key structures (shard map entries, holder map) so the
	// measurement sees steady state, not first-touch setup.
	m.Update(p, key, Hold)
	m.Update(p, key, Unhold)
	if !raceEnabled {
		if allocs := testing.AllocsPerRun(1000, func() {
			m.Update(p, key, Hold)
			m.Update(p, key, Unhold)
		}); allocs != 0 {
			b.Fatalf("Update hot path allocates %.1f allocs per hold/unhold cycle; want 0", allocs)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Update(p, key, Hold)
		m.Update(p, key, Unhold)
	}
}
