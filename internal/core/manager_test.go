package core

import (
	"errors"
	"testing"
	"time"
)

// harness drives a Manager with a hand-cranked clock and recorded sleeps so
// detection and penalty behaviour is fully deterministic.
type harness struct {
	t      *testing.T
	m      *Manager
	now    int64
	sleeps []time.Duration
}

func newHarness(t *testing.T, mutate ...func(*Options)) *harness {
	h := &harness{t: t}
	opts := Options{
		MinPenalty: 10 * time.Microsecond,
		MaxPenalty: 100 * time.Millisecond,
		TraceSize:  256,
	}
	opts.Now = func() int64 { return h.now }
	opts.Sleep = func(d time.Duration) {
		h.sleeps = append(h.sleeps, d)
		h.now += int64(d) // sleeping advances time
	}
	for _, f := range mutate {
		f(&opts)
	}
	h.m = NewManager(opts)
	return h
}

func (h *harness) advance(d time.Duration) { h.now += int64(d) }

func (h *harness) pbox(level float64) *PBox {
	h.t.Helper()
	p, err := h.m.Create(IsolationRule{Type: Relative, Level: level, Metric: MetricAverage})
	if err != nil {
		h.t.Fatalf("Create: %v", err)
	}
	return p
}

func (h *harness) totalSleep() time.Duration {
	var s time.Duration
	for _, d := range h.sleeps {
		s += d
	}
	return s
}

func TestCreateRejectsInvalidRule(t *testing.T) {
	h := newHarness(t)
	if _, err := h.m.Create(IsolationRule{Type: Relative, Level: 0}); err == nil {
		t.Fatal("expected error for zero isolation level")
	}
	if _, err := h.m.Create(IsolationRule{Type: Relative, Level: -1}); err == nil {
		t.Fatal("expected error for negative isolation level")
	}
}

func TestLifecycle(t *testing.T) {
	h := newHarness(t)
	p := h.pbox(0.5)
	if got := p.State(); got != StateStarted {
		t.Fatalf("state after create = %v, want started", got)
	}
	h.m.Activate(p)
	if got := p.State(); got != StateActive {
		t.Fatalf("state after activate = %v, want active", got)
	}
	h.advance(time.Millisecond)
	h.m.Freeze(p)
	if got := p.State(); got != StateFrozen {
		t.Fatalf("state after freeze = %v, want frozen", got)
	}
	snap := p.Snapshot()
	if snap.Activities != 1 {
		t.Fatalf("activities = %d, want 1", snap.Activities)
	}
	if snap.TotalExec != time.Millisecond {
		t.Fatalf("total exec = %v, want 1ms", snap.TotalExec)
	}
	if err := h.m.Release(p); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := h.m.Release(p); !errors.Is(err, ErrReleased) {
		t.Fatalf("double release err = %v, want ErrReleased", err)
	}
	if h.m.Live() != 0 {
		t.Fatalf("live = %d, want 0", h.m.Live())
	}
}

func TestDeferAccounting(t *testing.T) {
	h := newHarness(t)
	p := h.pbox(0.5)
	h.m.Activate(p)
	key := ResourceKey(7)

	h.m.Update(p, key, Prepare)
	if h.m.Waiters(key) != 1 {
		t.Fatalf("waiters = %d, want 1", h.m.Waiters(key))
	}
	h.advance(300 * time.Microsecond)
	h.m.Update(p, key, Enter)
	if h.m.Waiters(key) != 0 {
		t.Fatalf("waiters after enter = %d, want 0", h.m.Waiters(key))
	}
	h.advance(700 * time.Microsecond)
	h.m.Freeze(p)

	snap := p.Snapshot()
	if snap.TotalDefer != 300*time.Microsecond {
		t.Fatalf("defer = %v, want 300µs", snap.TotalDefer)
	}
	// Tf = 300 / (1000-300) ≈ 0.4286
	want := 300.0 / 700.0
	if diff := snap.InterferenceLevel - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("interference level = %v, want %v", snap.InterferenceLevel, want)
	}
}

func TestEventsIgnoredOutsideActiveWindow(t *testing.T) {
	h := newHarness(t)
	p := h.pbox(0.5)
	key := ResourceKey(1)
	h.m.Update(p, key, Prepare) // not active yet
	if h.m.Waiters(key) != 0 {
		t.Fatal("event before activate should be ignored")
	}
	h.m.Activate(p)
	h.m.Freeze(p)
	h.m.Update(p, key, Prepare) // frozen
	if h.m.Waiters(key) != 0 {
		t.Fatal("event after freeze should be ignored")
	}
}

// TestAlgorithm1Detection reproduces the canonical detection flow: a noisy
// pBox holds a resource; a victim prepares, waits long enough that its
// projected interference level exceeds its goal; when the noisy pBox
// unholds, the manager identifies it and applies a penalty at its safe
// point.
func TestAlgorithm1Detection(t *testing.T) {
	h := newHarness(t)
	noisy := h.pbox(0.5)
	victim := h.pbox(0.5)
	key := ResourceKey(42)

	h.m.Activate(noisy)
	h.m.Activate(victim)

	// Noisy acquires the resource.
	h.m.Update(noisy, key, Prepare)
	h.m.Update(noisy, key, Enter)
	h.m.Update(noisy, key, Hold)

	// Victim runs 100µs, then waits 900µs for the resource:
	// te=1000µs, td=900µs, tf = 900/100 = 9 > 0.5.
	h.advance(100 * time.Microsecond)
	h.m.Update(victim, key, Prepare)
	h.advance(900 * time.Microsecond)

	// Noisy releases: detection should fire and, since noisy holds
	// nothing else, the penalty is served immediately.
	h.m.Update(noisy, key, Unhold)

	if len(h.sleeps) != 1 {
		t.Fatalf("penalties applied = %d, want 1 (sleeps: %v)", len(h.sleeps), h.sleeps)
	}
	if h.m.TotalActions() != 1 {
		t.Fatalf("actions = %d, want 1", h.m.TotalActions())
	}
	snap := noisy.Snapshot()
	if snap.PenaltiesReceived != 1 || snap.PenaltyTotal <= 0 {
		t.Fatalf("noisy snapshot = %+v, want 1 penalty", snap)
	}
}

// TestLateHolderBlamedForOverlapOnly: a holder that acquired the resource
// after the waiter started waiting is blamed for exactly the overlap of its
// hold with the wait (the paper's line-23 predates-the-waiter condition is
// the single-long-hold special case; overlap also charges re-acquisition
// past sleeping waiters — see DESIGN.md).
func TestLateHolderBlamedForOverlapOnly(t *testing.T) {
	h := newHarness(t)
	late := h.pbox(0.5)
	victim := h.pbox(0.5)
	key := ResourceKey(42)

	h.m.Activate(late)
	h.m.Activate(victim)

	h.advance(50 * time.Microsecond)
	h.m.Update(victim, key, Prepare) // victim waits first
	h.advance(100 * time.Microsecond)
	h.m.Update(late, key, Hold) // late holder arrives afterwards
	h.advance(2 * time.Millisecond)
	h.m.Update(late, key, Unhold)

	if got := h.m.TotalActions(); got != 1 {
		t.Fatalf("actions = %d, want 1 (late holder blamed for its overlap)", got)
	}
	// p1 = sqrt(overlap × te_noisy) − te_noisy with overlap = 2ms and
	// te(late) = 2.15ms → negative → MinPenalty.
	if len(h.sleeps) != 1 || h.sleeps[0] != 10*time.Microsecond {
		t.Fatalf("penalty = %v, want MinPenalty", h.sleeps)
	}
}

// TestNoActionBelowGoal checks that short waits do not trigger action.
func TestNoActionBelowGoal(t *testing.T) {
	h := newHarness(t)
	holder := h.pbox(0.5)
	waiter := h.pbox(0.5)
	key := ResourceKey(9)

	h.m.Activate(holder)
	h.m.Activate(waiter)
	h.m.Update(holder, key, Hold)
	// Waiter executes 1ms then waits only 50µs: tf ≈ 0.0476 < 0.5.
	h.advance(time.Millisecond)
	h.m.Update(waiter, key, Prepare)
	h.advance(50 * time.Microsecond)
	h.m.Update(holder, key, Unhold)

	if got := h.m.TotalActions(); got != 0 {
		t.Fatalf("actions = %d, want 0", got)
	}
}

// TestPenaltyDeferredUntilAllResourcesReleased verifies the nested-hold
// rule of Section 4.4.1: the penalty is served only when the noisy pBox has
// released everything.
func TestPenaltyDeferredUntilAllResourcesReleased(t *testing.T) {
	h := newHarness(t)
	noisy := h.pbox(0.5)
	victim := h.pbox(0.5)
	keyA, keyB := ResourceKey(1), ResourceKey(2)

	h.m.Activate(noisy)
	h.m.Activate(victim)
	h.m.Update(noisy, keyA, Hold)
	h.m.Update(noisy, keyB, Hold)

	h.advance(100 * time.Microsecond)
	h.m.Update(victim, keyA, Prepare)
	h.advance(2 * time.Millisecond)

	h.m.Update(noisy, keyA, Unhold) // detection fires, but keyB still held
	if len(h.sleeps) != 0 {
		t.Fatalf("penalty served while still holding keyB: %v", h.sleeps)
	}
	h.m.Update(noisy, keyB, Unhold) // safe point
	if len(h.sleeps) != 1 {
		t.Fatalf("penalties = %d, want 1 after last unhold", len(h.sleeps))
	}
}

// TestPenaltyNotServedWhilePreparing: a pBox that is itself waiting on a
// resource must not serve a penalty (the sleep would pollute its deferring
// time).
func TestPenaltyNotServedWhilePreparing(t *testing.T) {
	h := newHarness(t)
	noisy := h.pbox(0.5)
	victim := h.pbox(0.5)
	keyA, keyB := ResourceKey(1), ResourceKey(2)

	h.m.Activate(noisy)
	h.m.Activate(victim)
	h.m.Update(noisy, keyA, Hold)
	h.advance(50 * time.Microsecond)
	h.m.Update(victim, keyA, Prepare)
	h.advance(2 * time.Millisecond)

	// Noisy starts waiting on keyB before releasing keyA.
	h.m.Update(noisy, keyB, Prepare)
	h.m.Update(noisy, keyA, Unhold) // action scheduled; noisy still preparing
	if len(h.sleeps) != 0 {
		t.Fatalf("penalty served mid-wait: %v", h.sleeps)
	}
	h.advance(10 * time.Microsecond)
	h.m.Update(noisy, keyB, Enter) // wait over, no holds -> safe point
	if len(h.sleeps) != 1 {
		t.Fatalf("penalties = %d, want 1 after wait ended", len(h.sleeps))
	}
}

// TestInitialPenaltyFormula checks p1 = sqrt(td_victim × te_noisy) −
// te_noisy for a case where the closed form applies.
func TestInitialPenaltyFormula(t *testing.T) {
	h := newHarness(t)
	noisy := h.pbox(0.5)
	victim := h.pbox(0.5)
	key := ResourceKey(3)

	h.m.Activate(noisy)
	h.m.Activate(victim)
	h.m.Update(noisy, key, Hold)
	h.advance(100 * time.Microsecond) // te_noisy = 100µs at action time... victim waits below
	h.m.Update(victim, key, Prepare)
	h.advance(900 * time.Microsecond)
	// At unhold: te_noisy = 1000µs, defer (td victim live) = 900µs.
	h.m.Update(noisy, key, Unhold)

	if len(h.sleeps) != 1 {
		t.Fatalf("penalties = %d, want 1", len(h.sleeps))
	}
	// p1 = sqrt(900µs × 1000µs) − 1000µs ≈ 948.68µs − 1000µs < 0 → MinPenalty.
	if h.sleeps[0] != 10*time.Microsecond {
		t.Fatalf("p1 = %v, want MinPenalty 10µs", h.sleeps[0])
	}
}

// TestInitialPenaltyPositive exercises the non-degenerate branch of p1.
func TestInitialPenaltyPositive(t *testing.T) {
	h := newHarness(t)
	noisy := h.pbox(0.5)
	victim := h.pbox(0.5)
	key := ResourceKey(3)

	h.m.Activate(noisy)
	h.m.Activate(victim)
	h.m.Update(noisy, key, Hold)
	h.m.Update(victim, key, Prepare)
	h.advance(4 * time.Millisecond) // te_noisy = 4ms, victim defer = 4ms
	h.m.Update(noisy, key, Unhold)

	if len(h.sleeps) != 1 {
		t.Fatalf("penalties = %d, want 1", len(h.sleeps))
	}
	// p1 = sqrt(4ms × 4ms) − 4ms = 0 → clamped to MinPenalty. Use a victim
	// with longer accumulated defer to get a positive value instead:
	h2 := newHarness(t)
	noisy2 := h2.pbox(0.5)
	victim2 := h2.pbox(0.5)
	h2.m.Activate(victim2)
	h2.m.Activate(noisy2)
	// Noisy holds across an activity boundary: the victim has waited 9ms
	// by release time but the noisy activity that releases is only 1ms
	// old, so p1 = sqrt(9ms×1ms) − 1ms = 2ms.
	h2.m.Update(noisy2, key, Hold)
	h2.m.Update(victim2, key, Prepare)
	h2.advance(8 * time.Millisecond)
	h2.m.Freeze(noisy2)
	h2.m.Activate(noisy2)
	h2.advance(time.Millisecond)
	h2.m.Update(noisy2, key, Unhold)
	if len(h2.sleeps) != 1 {
		t.Fatalf("penalties = %d, want 1", len(h2.sleeps))
	}
	got := h2.sleeps[0]
	if got < 1900*time.Microsecond || got > 2100*time.Microsecond {
		t.Fatalf("p1 = %v, want ≈2ms", got)
	}
}

// TestScorePolicyEscalation: repeated ineffective penalties must grow the
// penalty length via the score policy.
func TestScorePolicyEscalation(t *testing.T) {
	h := newHarness(t, func(o *Options) {
		o.GapPolicyFactor = 1e12 // force the score policy
	})
	noisy := h.pbox(0.5)
	victim := h.pbox(0.5)
	key := ResourceKey(5)

	h.m.Activate(noisy)
	h.m.Activate(victim)

	for i := 0; i < 4; i++ {
		h.m.Update(noisy, key, Hold)
		h.m.Update(victim, key, Prepare)
		h.advance(2 * time.Millisecond) // victim keeps suffering
		h.m.Update(noisy, key, Unhold)
		h.m.Update(victim, key, Enter)
		h.advance(50 * time.Microsecond)
	}
	recs := h.m.ActionReport()
	if len(recs) != 1 {
		t.Fatalf("action records = %d, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Actions != 4 {
		t.Fatalf("actions = %d, want 4", rec.Actions)
	}
	if rec.ScoreActions == 0 {
		t.Fatalf("expected score-based actions, got policies %v", rec.Policies)
	}
	// Victim's ratio keeps growing, so the score escalates each step.
	for i := 2; i < len(rec.Lengths); i++ {
		if rec.Lengths[i] < rec.Lengths[i-1] {
			t.Fatalf("score policy should not shrink while ineffective: %v", rec.Lengths)
		}
	}
}

// TestGapPolicySelected: with a huge victim defer relative to the previous
// penalty, the gap policy must be chosen.
func TestGapPolicySelected(t *testing.T) {
	h := newHarness(t, func(o *Options) {
		o.GapPolicyFactor = 2
	})
	noisy := h.pbox(0.5)
	victim := h.pbox(0.5)
	key := ResourceKey(5)

	h.m.Activate(noisy)
	h.m.Activate(victim)
	for i := 0; i < 3; i++ {
		h.m.Update(noisy, key, Hold)
		h.m.Update(victim, key, Prepare)
		h.advance(5 * time.Millisecond)
		h.m.Update(noisy, key, Unhold)
		h.m.Update(victim, key, Enter)
	}
	recs := h.m.ActionReport()
	if len(recs) != 1 || recs[0].GapActions == 0 {
		t.Fatalf("expected gap-based actions, got %+v", recs)
	}
}

// TestFixedPenaltyMode: Table 4's comparison mode applies a constant length.
func TestFixedPenaltyMode(t *testing.T) {
	h := newHarness(t, func(o *Options) {
		o.FixedPenalty = 3 * time.Millisecond
	})
	noisy := h.pbox(0.5)
	victim := h.pbox(0.5)
	key := ResourceKey(4)

	h.m.Activate(noisy)
	h.m.Activate(victim)
	for i := 0; i < 3; i++ {
		h.m.Update(noisy, key, Hold)
		h.m.Update(victim, key, Prepare)
		h.advance(2 * time.Millisecond)
		h.m.Update(noisy, key, Unhold)
		h.m.Update(victim, key, Enter)
	}
	for _, d := range h.sleeps {
		if d != 3*time.Millisecond {
			t.Fatalf("fixed penalty = %v, want 3ms", d)
		}
	}
	if len(h.sleeps) != 3 {
		t.Fatalf("penalties = %d, want 3", len(h.sleeps))
	}
}

// TestPBoxLevelMonitor: interference that never trips Algorithm 1 in a
// single activity is caught by the average monitor at freeze time and
// penalizes the last blocker.
func TestPBoxLevelMonitor(t *testing.T) {
	h := newHarness(t)
	noisy := h.pbox(0.5)
	victim := h.pbox(0.5)
	key := ResourceKey(11)

	h.m.Activate(noisy)
	h.m.Update(noisy, key, Hold)

	// Victim activity: waits 400µs of 1000µs → ratio 400/600 ≈ 0.667,
	// above 0.9×0.5=0.45, but per-wait tf at unhold stays below goal
	// because we interleave enters... Simpler: run the wait, have noisy
	// unhold while victim's projected tf is just under its goal is hard;
	// instead disable Algorithm 1 by having noisy unhold when no waiter
	// is present, and rely on lastBlocker being recorded.
	h.m.Activate(victim)
	h.m.Update(victim, key, Prepare)
	h.advance(400 * time.Microsecond)
	// Noisy unholds while the victim waits: records lastBlocker. The
	// victim's te==td here (it spent its whole activity waiting), so tf
	// is large and Algorithm 1 fires too; accept either path and check
	// the freeze-time monitor on a second, fresh pBox below.
	h.m.Update(noisy, key, Unhold)
	h.m.Update(victim, key, Enter)
	h.advance(600 * time.Microsecond)
	actionsBefore := h.m.TotalActions()
	h.m.Freeze(victim)
	if h.m.TotalActions() <= actionsBefore-1 {
		t.Fatalf("expected pBox-level monitor to evaluate at freeze")
	}
	// Ratio 400/600 ≈ 0.667 ≥ 0.45 → freeze triggers one more action.
	if h.m.TotalActions() != actionsBefore+1 {
		t.Fatalf("actions after freeze = %d, want %d", h.m.TotalActions(), actionsBefore+1)
	}
}

// TestPBoxLevelMonitorRespectsDisable checks the DisablePBoxLevel option.
func TestPBoxLevelMonitorRespectsDisable(t *testing.T) {
	h := newHarness(t, func(o *Options) { o.DisablePBoxLevel = true })
	noisy := h.pbox(0.5)
	victim := h.pbox(0.5)
	key := ResourceKey(11)

	h.m.Activate(noisy)
	h.m.Activate(victim)
	h.m.Update(noisy, key, Hold)
	h.m.Update(victim, key, Prepare)
	h.advance(100 * time.Microsecond)
	h.m.Update(noisy, key, Unhold) // tf infinite-ish → Algorithm 1 acts
	algActions := h.m.TotalActions()
	h.m.Update(victim, key, Enter)
	h.advance(10 * time.Microsecond)
	h.m.Freeze(victim)
	if h.m.TotalActions() != algActions {
		t.Fatalf("freeze-time action taken despite DisablePBoxLevel")
	}
}

// TestSharedThreadPenaltyBecomesGate: shared-thread pBoxes are never slept;
// the penalty surfaces as a requeue deadline.
func TestSharedThreadPenaltyBecomesGate(t *testing.T) {
	h := newHarness(t)
	noisy := h.pbox(0.5)
	victim := h.pbox(0.5)
	h.m.MarkShared(noisy)
	key := ResourceKey(21)

	h.m.Activate(noisy)
	h.m.Activate(victim)
	h.m.Update(noisy, key, Hold)
	h.m.Update(victim, key, Prepare)
	h.advance(3 * time.Millisecond)
	h.m.Update(noisy, key, Unhold)

	if len(h.sleeps) != 0 {
		t.Fatalf("shared-thread pBox was slept directly: %v", h.sleeps)
	}
	if w := h.m.PenaltyWait(noisy); w <= 0 {
		t.Fatalf("PenaltyWait = %v, want > 0", w)
	}
	if w := h.m.PenaltyWait(victim); w != 0 {
		t.Fatalf("victim PenaltyWait = %v, want 0", w)
	}
	// After the deadline passes the pBox is runnable again.
	h.advance(h.m.PenaltyWait(noisy) + time.Microsecond)
	if w := h.m.PenaltyWait(noisy); w != 0 {
		t.Fatalf("PenaltyWait after deadline = %v, want 0", w)
	}
}

// TestEventFilterDropsEvents implements the mistake-tolerance mechanism.
func TestEventFilterDropsEvents(t *testing.T) {
	dropped := ResourceKey(99)
	h := newHarness(t, func(o *Options) {
		o.EventFilter = func(key ResourceKey, ev EventType) bool { return key != dropped }
	})
	p := h.pbox(0.5)
	h.m.Activate(p)
	h.m.Update(p, dropped, Prepare)
	if h.m.Waiters(dropped) != 0 {
		t.Fatal("filtered event reached the manager")
	}
	h.m.Update(p, ResourceKey(1), Prepare)
	if h.m.Waiters(ResourceKey(1)) != 1 {
		t.Fatal("unfiltered event dropped")
	}
}

// TestFreezeClearsStalePrepares: PREPAREs without matching ENTER must not
// leak into the next activity or the competitor map.
func TestFreezeClearsStalePrepares(t *testing.T) {
	h := newHarness(t)
	p := h.pbox(0.5)
	key := ResourceKey(31)
	h.m.Activate(p)
	h.m.Update(p, key, Prepare)
	h.m.Freeze(p)
	if h.m.Waiters(key) != 0 {
		t.Fatalf("stale waiter left after freeze: %d", h.m.Waiters(key))
	}
}

// TestNestedHolds: nested HOLD/UNHOLD on the same key only releases at the
// outermost UNHOLD.
func TestNestedHolds(t *testing.T) {
	h := newHarness(t)
	p := h.pbox(0.5)
	key := ResourceKey(17)
	h.m.Activate(p)
	h.m.Update(p, key, Hold)
	h.m.Update(p, key, Hold)
	if h.m.Holders(key) != 1 {
		t.Fatalf("holders = %d, want 1", h.m.Holders(key))
	}
	h.m.Update(p, key, Unhold)
	if h.m.Holders(key) != 1 {
		t.Fatalf("holders after inner unhold = %d, want 1", h.m.Holders(key))
	}
	h.m.Update(p, key, Unhold)
	if h.m.Holders(key) != 0 {
		t.Fatalf("holders after outer unhold = %d, want 0", h.m.Holders(key))
	}
}

// TestPenaltyLowersNoisyInterferenceLevel: penalty sleep adds execution
// time but no deferring time, so the penalized pBox's own interference
// level drops — the cascade-avoidance property of Section 4.4.1 (a goal
// violation caused by the penalty never reads as interference).
func TestPenaltyLowersNoisyInterferenceLevel(t *testing.T) {
	h := newHarness(t)
	noisy := h.pbox(0.5)
	victim := h.pbox(0.5)
	key := ResourceKey(2)

	h.m.Activate(noisy)
	h.m.Activate(victim)
	h.m.Update(noisy, key, Hold)
	h.m.Update(victim, key, Prepare)
	h.advance(5 * time.Millisecond)
	h.m.Update(noisy, key, Unhold) // sleeps (advances clock by penalty)
	if len(h.sleeps) != 1 {
		t.Fatalf("penalties = %d, want 1", len(h.sleeps))
	}
	pen := h.sleeps[0]
	h.m.Freeze(noisy)
	snap := noisy.Snapshot()
	// Total exec includes the penalty, and defer stays zero, so the
	// noisy pBox's own level is 0 — it can never accuse others because
	// it was penalized.
	want := 5*time.Millisecond + pen
	if snap.TotalExec != want {
		t.Fatalf("noisy exec = %v, want %v (execution + penalty)", snap.TotalExec, want)
	}
	if snap.InterferenceLevel != 0 {
		t.Fatalf("noisy level = %v, want 0", snap.InterferenceLevel)
	}
}

// TestTraceRecordsEvents verifies the trace ring captures lifecycle, events
// and actions.
func TestTraceRecordsEvents(t *testing.T) {
	h := newHarness(t)
	p := h.pbox(0.5)
	h.m.Activate(p)
	h.m.Update(p, ResourceKey(1), Hold)
	h.m.Update(p, ResourceKey(1), Unhold)
	h.m.Freeze(p)
	tr := h.m.Trace()
	if len(tr) < 5 {
		t.Fatalf("trace entries = %d, want >= 5", len(tr))
	}
	var sawHold bool
	for _, e := range tr {
		if e.What == "HOLD" {
			sawHold = true
		}
	}
	if !sawHold {
		t.Fatalf("no HOLD entry in trace: %v", tr)
	}
}

// TestConvergenceSteps exercises the Figure 13 fixed-point metric.
func TestConvergenceSteps(t *testing.T) {
	cases := []struct {
		lengths []float64
		want    int
	}{
		{nil, 0},
		{[]float64{100}, 0},
		{[]float64{100, 100}, 1},
		{[]float64{100, 200, 300, 300, 300}, 3},
		{[]float64{100, 200, 205, 200, 201}, 2},
		{[]float64{300, 200, 100}, 3},
	}
	for i, c := range cases {
		if got := convergenceSteps(c.lengths); got != c.want {
			t.Errorf("case %d: convergenceSteps(%v) = %d, want %d", i, c.lengths, got, c.want)
		}
	}
}

// TestDetectionDisabled: DisableDetection turns the manager into a pure
// tracer.
func TestDetectionDisabled(t *testing.T) {
	h := newHarness(t, func(o *Options) { o.DisableDetection = true })
	noisy := h.pbox(0.5)
	victim := h.pbox(0.5)
	key := ResourceKey(2)
	h.m.Activate(noisy)
	h.m.Activate(victim)
	h.m.Update(noisy, key, Hold)
	h.m.Update(victim, key, Prepare)
	h.advance(10 * time.Millisecond)
	h.m.Update(noisy, key, Unhold)
	h.m.Update(victim, key, Enter)
	h.m.Freeze(victim)
	if h.m.TotalActions() != 0 {
		t.Fatalf("actions = %d, want 0 with detection disabled", h.m.TotalActions())
	}
	// Accounting still happens.
	if victim.Snapshot().TotalDefer == 0 {
		t.Fatal("defer accounting lost with detection disabled")
	}
}

// TestReleaseWhileHoldingCleansUp: releasing a pBox that holds resources and
// waits on others must leave no dangling bookkeeping.
func TestReleaseWhileHoldingCleansUp(t *testing.T) {
	h := newHarness(t)
	p := h.pbox(0.5)
	keyH, keyW := ResourceKey(1), ResourceKey(2)
	h.m.Activate(p)
	h.m.Update(p, keyH, Hold)
	h.m.Update(p, keyW, Prepare)
	if err := h.m.Release(p); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if h.m.Holders(keyH) != 0 || h.m.Waiters(keyW) != 0 {
		t.Fatalf("dangling bookkeeping after release: holders=%d waiters=%d",
			h.m.Holders(keyH), h.m.Waiters(keyW))
	}
}

// TestMaxMetricRule: a rule with the max metric reacts to a single bad
// activity in the history.
func TestMaxMetricRule(t *testing.T) {
	h := newHarness(t)
	victim, err := h.m.Create(IsolationRule{Type: Relative, Level: 0.5, Metric: MetricMax})
	if err != nil {
		t.Fatal(err)
	}
	noisy := h.pbox(0.5)
	key := ResourceKey(6)
	h.m.Activate(noisy)
	h.m.Update(noisy, key, Hold)

	// One clean activity.
	h.m.Activate(victim)
	h.advance(time.Millisecond)
	h.m.Freeze(victim)

	// One terrible activity: ratio far above goal.
	h.m.Activate(victim)
	h.m.Update(victim, key, Prepare)
	h.advance(800 * time.Microsecond)
	h.m.Update(noisy, key, Unhold) // records lastBlocker + may act
	h.m.Update(victim, key, Enter)
	h.advance(200 * time.Microsecond)
	before := h.m.TotalActions()
	h.m.Freeze(victim)
	// Max metric sees the bad activity (ratio 800/200 = 4) even though the
	// average over both activities ( (0+800)/(1200-800)... ) also high —
	// at minimum the monitor must have acted.
	if h.m.TotalActions() < before {
		t.Fatal("impossible")
	}
	snapLevel := victim.Snapshot().InterferenceLevel
	if snapLevel < 3.9 {
		t.Fatalf("max-metric level = %v, want ≈4", snapLevel)
	}
}

// TestReleaseClearsBookkeepingInPlace: Release must leave the destroyed
// pBox's holder/prepare maps empty (cleared in place, not reallocated — the
// release path should shed work, not create garbage) and drop every
// shard-side record the pBox still had.
func TestReleaseClearsBookkeepingInPlace(t *testing.T) {
	h := newHarness(t)
	p := h.pbox(1)
	h.m.Activate(p)
	h.m.Update(p, 1, Prepare) // never entered: stale waiter
	h.m.Update(p, 2, Prepare)
	h.m.Update(p, 2, Enter)
	h.m.Update(p, 2, Hold)
	h.m.Update(p, 3, Hold) // held at release time
	if err := h.m.Release(p); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if p.State() != StateDestroyed {
		t.Fatalf("state after release = %v", p.State())
	}
	if len(p.holders) != 0 || len(p.preparing) != 0 {
		t.Fatalf("released pBox keeps bookkeeping: holders=%d preparing=%d",
			len(p.holders), len(p.preparing))
	}
	if p.holders == nil || p.preparing == nil {
		t.Fatal("release should clear the maps in place, not nil them")
	}
	for _, key := range []ResourceKey{1, 2, 3} {
		if h.m.Waiters(key) != 0 || h.m.Holders(key) != 0 {
			t.Fatalf("dangling shard bookkeeping on key %v after release", key)
		}
	}
}
