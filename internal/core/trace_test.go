package core

import (
	"strings"
	"testing"
	"time"
)

func TestTraceRingWraparound(t *testing.T) {
	r := newTraceRing(4)
	for i := 0; i < 10; i++ {
		r.add(TraceEntry{PBox: i})
	}
	got := r.snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot length = %d, want 4", len(got))
	}
	// Oldest-first: entries 6,7,8,9.
	for i, e := range got {
		if e.PBox != 6+i {
			t.Fatalf("entry %d = pbox %d, want %d", i, e.PBox, 6+i)
		}
	}
}

func TestTraceRingPartialFill(t *testing.T) {
	r := newTraceRing(8)
	r.add(TraceEntry{PBox: 1})
	r.add(TraceEntry{PBox: 2})
	got := r.snapshot()
	if len(got) != 2 || got[0].PBox != 1 || got[1].PBox != 2 {
		t.Fatalf("snapshot = %+v", got)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	m := NewManager(Options{})
	p, _ := m.Create(DefaultRule())
	m.Activate(p)
	m.Freeze(p)
	if tr := m.Trace(); tr != nil {
		t.Fatalf("trace = %v with tracing disabled", tr)
	}
}

func TestTraceEntryString(t *testing.T) {
	e := TraceEntry{At: time.Millisecond, PBox: 3, Key: 0x10, What: "HOLD"}
	s := e.String()
	for _, part := range []string{"pbox=3", "0x10", "HOLD"} {
		if !strings.Contains(s, part) {
			t.Fatalf("entry string %q missing %q", s, part)
		}
	}
	withExtra := TraceEntry{At: time.Millisecond, PBox: 3, What: "penalty", Extra: 2 * time.Millisecond}
	if !strings.Contains(withExtra.String(), "2ms") {
		t.Fatalf("entry string %q missing penalty length", withExtra.String())
	}
}

func TestTraceCapturesActions(t *testing.T) {
	h := newHarness(t)
	noisy := h.pbox(0.5)
	victim := h.pbox(0.5)
	h.m.Activate(noisy)
	h.m.Activate(victim)
	h.m.Update(noisy, ResourceKey(1), Hold)
	h.m.Update(victim, ResourceKey(1), Prepare)
	h.advance(5 * time.Millisecond)
	h.m.Update(noisy, ResourceKey(1), Unhold)

	var sawAction, sawPenalty bool
	for _, e := range h.m.Trace() {
		if strings.HasPrefix(e.What, "action:") {
			sawAction = true
			if e.Extra <= 0 {
				t.Fatal("action entry missing penalty length")
			}
		}
		if e.What == "penalty" {
			sawPenalty = true
		}
	}
	if !sawAction || !sawPenalty {
		t.Fatalf("trace missing action/penalty entries: action=%v penalty=%v", sawAction, sawPenalty)
	}
}
