package core

import (
	"strings"
	"testing"
	"time"
)

func TestTraceRingWraparound(t *testing.T) {
	r := newTraceRing(4)
	for i := 0; i < 10; i++ {
		r.add(TraceEntry{PBox: i})
	}
	got := r.snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot length = %d, want 4", len(got))
	}
	// Oldest-first: entries 6,7,8,9.
	for i, e := range got {
		if e.PBox != 6+i {
			t.Fatalf("entry %d = pbox %d, want %d", i, e.PBox, 6+i)
		}
	}
}

func TestTraceRingPartialFill(t *testing.T) {
	r := newTraceRing(8)
	r.add(TraceEntry{PBox: 1})
	r.add(TraceEntry{PBox: 2})
	got := r.snapshot()
	if len(got) != 2 || got[0].PBox != 1 || got[1].PBox != 2 {
		t.Fatalf("snapshot = %+v", got)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	m := NewManager(Options{})
	p, _ := m.Create(DefaultRule())
	m.Activate(p)
	m.Freeze(p)
	if tr := m.Trace(); tr != nil {
		t.Fatalf("trace = %v with tracing disabled", tr)
	}
}

func TestTraceEntryString(t *testing.T) {
	e := TraceEntry{At: time.Millisecond, PBox: 3, Key: 0x10, What: "HOLD"}
	s := e.String()
	for _, part := range []string{"pbox=3", "0x10", "HOLD"} {
		if !strings.Contains(s, part) {
			t.Fatalf("entry string %q missing %q", s, part)
		}
	}
	withExtra := TraceEntry{At: time.Millisecond, PBox: 3, What: "penalty", Extra: 2 * time.Millisecond}
	if !strings.Contains(withExtra.String(), "2ms") {
		t.Fatalf("entry string %q missing penalty length", withExtra.String())
	}
}

func TestTraceCapturesActions(t *testing.T) {
	h := newHarness(t)
	noisy := h.pbox(0.5)
	victim := h.pbox(0.5)
	h.m.Activate(noisy)
	h.m.Activate(victim)
	h.m.Update(noisy, ResourceKey(1), Hold)
	h.m.Update(victim, ResourceKey(1), Prepare)
	h.advance(5 * time.Millisecond)
	h.m.Update(noisy, ResourceKey(1), Unhold)

	var sawAction, sawPenalty bool
	for _, e := range h.m.Trace() {
		if strings.HasPrefix(e.What, "action:") {
			sawAction = true
			if e.Extra <= 0 {
				t.Fatal("action entry missing penalty length")
			}
		}
		if e.What == "penalty" {
			sawPenalty = true
		}
	}
	if !sawAction || !sawPenalty {
		t.Fatalf("trace missing action/penalty entries: action=%v penalty=%v", sawAction, sawPenalty)
	}
}

func TestTraceRingZeroCapacity(t *testing.T) {
	// A zero or negative requested capacity must clamp to a usable ring
	// instead of dividing by cap()==0 on the wraparound path.
	for _, n := range []int{0, -4} {
		r := newTraceRing(n)
		for i := 0; i < 3; i++ {
			r.add(TraceEntry{What: "e", PBox: i})
		}
		got := r.snapshot()
		if len(got) != 1 || got[0].PBox != 2 {
			t.Fatalf("newTraceRing(%d): snapshot = %+v, want the single latest entry", n, got)
		}
	}
}

func TestTraceSinceAndNotify(t *testing.T) {
	h := newHarness(t)
	p := h.pbox(0.5)
	h.m.Activate(p)

	all, next := h.m.TraceSince(0)
	if len(all) == 0 || next == 0 {
		t.Fatalf("TraceSince(0) = %d entries, next=%d; want the create/activate entries", len(all), next)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatalf("sequence numbers not increasing: %d then %d", all[i-1].Seq, all[i].Seq)
		}
	}
	if all[len(all)-1].Seq != next {
		t.Fatalf("next=%d does not match tail seq %d", next, all[len(all)-1].Seq)
	}

	// Caught up: nothing new, and the notify channel must block.
	more, next2 := h.m.TraceSince(next)
	if len(more) != 0 || next2 != next {
		t.Fatalf("TraceSince(tail) = %d entries, next=%d; want 0, %d", len(more), next2, next)
	}
	select {
	case <-h.m.TraceNotify(next):
		t.Fatal("TraceNotify fired with no new entries")
	default:
	}

	// A new event closes the channel and shows up incrementally.
	ch := h.m.TraceNotify(next)
	h.m.Update(p, ResourceKey(9), Prepare)
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("TraceNotify did not fire after a new event")
	}
	fresh, next3 := h.m.TraceSince(next)
	if len(fresh) == 0 || next3 <= next {
		t.Fatalf("TraceSince(%d) after event = %d entries, next=%d", next, len(fresh), next3)
	}
	for _, e := range fresh {
		if e.Seq <= next {
			t.Fatalf("incremental snapshot returned stale entry seq=%d <= %d", e.Seq, next)
		}
	}

	// TraceNotify on an already-passed sequence is immediately closed.
	select {
	case <-h.m.TraceNotify(next):
	default:
		t.Fatal("TraceNotify(stale) should be immediately closed")
	}
}

func TestTraceDisabledSinceNotify(t *testing.T) {
	m := NewManager(Options{})
	if entries, next := m.TraceSince(0); entries != nil || next != 0 {
		t.Fatalf("TraceSince on disabled tracing = %v, %d; want nil, 0", entries, next)
	}
	if ch := m.TraceNotify(0); ch != nil {
		t.Fatal("TraceNotify on disabled tracing should be nil")
	}
}

func TestTraceEntryStringUsesName(t *testing.T) {
	e := TraceEntry{At: time.Millisecond, PBox: 3, Key: ResourceKey(0xbeef), Name: "bufpool", What: "ENTER"}
	s := e.String()
	if !strings.Contains(s, "bufpool") || strings.Contains(s, "0xbeef") {
		t.Fatalf("String() = %q; want the registered name, not the raw key", s)
	}
}

func TestNameResourceFlowsIntoTrace(t *testing.T) {
	h := newHarness(t)
	key := ResourceKey(0x1234)
	h.m.NameResource(key, "bufpool")
	if got := h.m.ResourceName(key); got != "bufpool" {
		t.Fatalf("ResourceName = %q, want bufpool", got)
	}
	p := h.pbox(0.5)
	h.m.Activate(p)
	h.m.Update(p, key, Prepare)
	var found bool
	for _, e := range h.m.Trace() {
		if e.Key == key && e.What == "PREPARE" {
			found = true
			if e.Name != "bufpool" {
				t.Fatalf("trace entry Name = %q, want bufpool", e.Name)
			}
		}
	}
	if !found {
		t.Fatal("no PREPARE trace entry for the named resource")
	}
	// Unregistering reverts to the raw key.
	h.m.NameResource(key, "")
	if got := h.m.ResourceName(key); got != "" {
		t.Fatalf("ResourceName after unregister = %q, want empty", got)
	}
}
