package core

import (
	"sort"
	"sync/atomic"
	"time"

	"pbox/internal/exec"
)

// Epoch-based snapshot reads (DESIGN.md §12). The precise read path
// (Status, Snapshots, Attribution, Trace, Waiters, Holders) stops the
// world: it sweeps every worker spool and takes every shard lock in index
// order, so a 1 Hz dashboard poller against a manager ingesting millions of
// events per second is itself a source of cross-pBox interference — exactly
// the effect the isolation layer exists to prevent. This file is the
// zero-interference alternative: the manager publishes an immutable
// StatusView through one atomic pointer, readers load it with no locks and
// no flushes, and the view is rebuilt at most once per SnapshotInterval
// (bounded staleness, default 100ms). Only consumers that ask for precision
// (`pboxctl dump -precise`, the differential tests) still pay the
// stop-the-world flush-on-read cost.
//
// Epoch protocol: a reader that finds the published view older than the
// interval escalates to rebuildView, which single-flights concurrent
// escalations on Manager.snap (the outermost lock in the §8 order — the
// rebuild sweeps spools and stops the world under it), double-checks the
// view age, runs the same collectStatus assembly Status() uses, and
// publishes the result with Epoch = previous+1. Readers therefore observe a
// strictly monotonic epoch sequence of internally-consistent views, and a
// returned view's manager-clock age never exceeds the interval.

// defaultSnapshotInterval is the bounded-staleness budget when
// Options.SnapshotInterval is zero.
const defaultSnapshotInterval = 100 * time.Millisecond

// ResourceView is the per-resource contention summary of a snapshot: how
// many pBoxes wait on and hold one virtual resource.
type ResourceView struct {
	Key     ResourceKey
	Name    string // registered resource name, "" when unnamed
	Waiters int
	Holders int
}

// StatusView is one immutable published snapshot: the combined Status
// assembly plus the epoch metadata readers use to judge staleness. A view
// is never mutated after publication — readers may hold it indefinitely.
type StatusView struct {
	Status

	// Epoch increments by one on every rebuild (first view is 1).
	Epoch uint64
	// BuiltAt is the manager-clock time (ns) at which the build completed.
	// A view returned by StatusView satisfies now-BuiltAt ≤ SnapshotInterval
	// at return time — the bounded-staleness contract.
	BuiltAt int64
	// BuildDuration is the wall-clock cost of the stop-the-world assembly
	// that produced this view (real clock, independent of Options.Now).
	BuildDuration time.Duration
}

// StatusView returns the current published snapshot, rebuilding it first if
// it is older than Options.SnapshotInterval (or absent). The common case is
// one atomic pointer load and one clock read: no shard locks, no spool
// flushes, no allocation — a poller at any frequency costs the event hot
// path nothing beyond one rebuild per interval.
//
//pbox:snapshotreader
func (m *Manager) StatusView() *StatusView {
	now := m.opts.Now()
	if v := m.snap.view.Load(); v != nil {
		if iv := m.opts.SnapshotInterval; iv > 0 && now-v.BuiltAt <= int64(iv) {
			m.self.snapshotHits.Add(1)
			return v
		}
	}
	return m.rebuildView(now, false)
}

// RefreshStatusView forces a rebuild and returns the fresh view: every
// event applied before the call is visible in the result. It is the
// epoch-published equivalent of Status() — the flight recorder uses it for
// detection-triggered captures, where the verdict that fired must appear.
func (m *Manager) RefreshStatusView() *StatusView {
	return m.rebuildView(m.opts.Now(), true)
}

// ViewAge returns v's manager-clock age (0 for nil).
//
//pbox:snapshotreader
func (m *Manager) ViewAge(v *StatusView) time.Duration {
	if v == nil {
		return 0
	}
	return time.Duration(m.opts.Now() - v.BuiltAt)
}

// rebuildView is the sanctioned escalation of the snapshot read path: it
// single-flights concurrent rebuilds on m.snap, re-checks the published
// view's age under the lock (unless forced), and otherwise runs the
// stop-the-world assembly and publishes the result. m.snap is the outermost
// lock of the §8 order; nothing that holds any manager lock may call this.
//
//pbox:snapshotbuilder
func (m *Manager) rebuildView(now int64, force bool) *StatusView {
	m.snap.Lock()
	defer m.snap.Unlock()
	if !force {
		// Double-check: a rebuild that raced this one may have published a
		// fresh view while this caller waited on snap.
		if v := m.snap.view.Load(); v != nil {
			if iv := m.opts.SnapshotInterval; iv > 0 && now-v.BuiltAt <= int64(iv) {
				m.self.snapshotHits.Add(1)
				return v
			}
		}
	}
	t0 := exec.Now()
	st := m.collectStatus()
	v := &StatusView{
		Status:        st,
		Epoch:         1,
		BuiltAt:       m.opts.Now(),
		BuildDuration: time.Duration(exec.Now() - t0),
	}
	if prev := m.snap.view.Load(); prev != nil {
		v.Epoch = prev.Epoch + 1
	}
	m.snap.view.Store(v)
	m.self.snapshotBuilds.Add(1)
	m.self.snapshotLastBuildNs.Store(int64(v.BuildDuration))
	m.self.snapshotBuildTotalNs.Add(int64(v.BuildDuration))
	// The adaptive sizer ticks on the rebuild cadence (DESIGN.md §13): the
	// rebuild already runs on the manager clock, off the event hot path, at
	// a bounded rate — exactly the properties a background tuner needs, at
	// the cost of no extra goroutine. snap (held here) ranks before topo.
	m.maybeAdaptTopology(now)
	return v
}

// collectStatus is the precise stop-the-world assembly shared by Status()
// and the snapshot rebuild: sweep the spools (flush-on-read), then hold the
// registry, every shard in index order, and the verdict lock while reading
// the pBox list, the attribution ledger, and the resource-side
// waiter/holder sets, so the combined view never pairs state from two
// instants.
func (m *Manager) collectStatus() Status {
	m.sweepSpools() // flush-on-read: spooled events must be visible (§10)
	m.reg.Lock()
	defer m.reg.Unlock()
	unlockShards := m.lockAllShards()
	defer unlockShards()
	m.verdictMu.Lock()
	defer m.verdictMu.Unlock()
	st := Status{
		Snapshots:   m.snapshotsRegLocked(),
		Attribution: m.attributionVerdict(m.lookupPBoxRegLocked),
		Resources:   m.resourceViewsShardsLocked(),
	}
	if m.attr != nil {
		st.AttributionDropped = m.attr.dropped
	}
	if m.trace != nil {
		st.TraceSeq = m.trace.seq.Load()
	}
	return st
}

// resourceViewsShardsLocked builds the per-resource contention summary,
// ordered by key. Caller holds every shard lock (names resolve under each
// shard's leaf name lock).
func (m *Manager) resourceViewsShardsLocked() []ResourceView {
	var out []ResourceView
	idx := make(map[ResourceKey]int)
	add := func(key ResourceKey) int {
		i, ok := idx[key]
		if !ok {
			i = len(out)
			idx[key] = i
			out = append(out, ResourceView{Key: key, Name: m.resourceName(key)})
		}
		return i
	}
	for _, s := range m.shards.Load().shards {
		for key, cl := range s.competitors {
			if len(cl.waiters) == 0 {
				continue
			}
			out[add(key)].Waiters = len(cl.waiters)
		}
		for key, hm := range s.holdersByKey {
			if len(hm) == 0 {
				continue
			}
			out[add(key)].Holders = len(hm)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// TraceView returns trace entries with sequence number greater than since
// straight from the ring — no spool sweep, unlike TraceSince, so spooled
// events not yet flushed by a write-side trigger are not visible. Pair it
// with a StatusView's TraceSeq cursor to stream events newer than the
// snapshot. Returns (nil, 0) when tracing was not enabled.
//
//pbox:snapshotreader
func (m *Manager) TraceView(since uint64) ([]TraceEntry, uint64) {
	if m.trace == nil {
		return nil, 0
	}
	return m.trace.snapshotSince(since)
}

// selfCounters is the manager's self-telemetry state: lock-free counters
// about the manager's own overhead, updated from the paths they measure
// with single atomic adds and read by SelfStats with no locks.
type selfCounters struct {
	snapshotBuilds       atomic.Int64
	snapshotHits         atomic.Int64
	snapshotLastBuildNs  atomic.Int64
	snapshotBuildTotalNs atomic.Int64
	spoolFlushes         atomic.Int64
	spoolFlushedEvents   atomic.Int64
	spoolSweeps          atomic.Int64
	spoolOverflows       atomic.Int64
	contentionClaims     atomic.Int64
	contentionRevokes    atomic.Int64
	hibernations         atomic.Int64
	wakes                atomic.Int64
	hibernated           atomic.Int64 // gauge: currently hibernated pBoxes
	verdictLatency       latencyHist
}

// verdictBucketBoundsNs are the finite upper bounds of the verdict-latency
// histogram (1µs … 10ms); a final +Inf bucket follows.
var verdictBucketBoundsNs = [...]int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000}

// latencyHist is a fixed-bucket lock-free histogram (observe is a bucket
// scan plus three atomic adds — safe from the event path).
type latencyHist struct {
	counts [len(verdictBucketBoundsNs) + 1]atomic.Int64
	sumNs  atomic.Int64
	n      atomic.Int64
}

func (h *latencyHist) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	i := 0
	for i < len(verdictBucketBoundsNs) && ns > verdictBucketBoundsNs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(ns)
	h.n.Add(1)
}

func (h *latencyHist) snapshot() LatencyHistogram {
	out := LatencyHistogram{
		Bounds: make([]time.Duration, len(verdictBucketBoundsNs)),
		Counts: make([]int64, len(h.counts)),
		Sum:    time.Duration(h.sumNs.Load()),
		Count:  h.n.Load(),
	}
	for i, b := range verdictBucketBoundsNs {
		out.Bounds[i] = time.Duration(b)
	}
	for i := range h.counts {
		out.Counts[i] = h.counts[i].Load()
	}
	return out
}

// LatencyHistogram is the read-only view of a fixed-bucket histogram.
// Counts has one more entry than Bounds: the final bucket is unbounded.
type LatencyHistogram struct {
	Bounds []time.Duration
	Counts []int64
	Sum    time.Duration
	Count  int64
}

// SelfStats is the manager-observes-itself report: how much work the
// isolation layer's own machinery is doing, so reader-interference
// regressions are visible rather than inferred. Exported on /metrics as the
// pbox_self_* series and rendered by `pboxctl self`.
type SelfStats struct {
	// Snapshot read path.
	SnapshotEpoch      uint64        // epoch of the published view (0 = none yet)
	SnapshotAge        time.Duration // manager-clock age of the published view
	SnapshotInterval   time.Duration // configured staleness budget
	SnapshotBuilds     int64         // stop-the-world view rebuilds
	SnapshotCacheHits  int64         // reads served by the published view
	SnapshotLastBuild  time.Duration // wall-clock cost of the latest rebuild
	SnapshotBuildTotal time.Duration // cumulative wall-clock rebuild cost

	// Spool / two-tier ingestion.
	SpoolFlushes       int64 // non-empty spool flushes
	SpoolFlushedEvents int64 // events replayed out of spools
	SpoolSweeps        int64 // all-spool sweeps (contended hand-offs + precise reads)
	SpoolOverflows     int64 // appends that failed (full or foreign buffer), forcing a flush

	// Contention-slot table.
	ContentionClaims      int64 // successful fast-path slot claims (CAS 0→id)
	ContentionRevocations int64 // slow-path revocations of a live claim
	ContentionStickySlots int   // slots currently stuck at the contended value

	// Shard locks. Acquisitions are monotone across topology resizes
	// (retired stripe sets fold into the total); Max covers live stripes
	// only.
	ShardLockAcquisitions int64 // total shard-lock acquisitions, all stripes ever
	ShardLockMax          int64 // acquisitions on the hottest live stripe
	Shards                int

	// Adaptive topology (DESIGN.md §13). Zero-valued when the sizer is off,
	// except SpoolCapacity which always reports the current new-worker
	// capacity (≤0 = spooling disabled).
	AdaptiveTopology  bool
	SpoolCapacity     int
	TopologyTicks     int64              // sizer ticks run
	ShardResizes      int64              // stripe-set migrations performed
	SpoolResizes      int64              // spool-capacity retunes performed
	TopologyDecisions []TopologyDecision // bounded recent decision log

	// Hibernation (DESIGN.md §15): registered-but-idle pBoxes compacted to
	// their minimal footprint by Manager.Hibernate and woken transparently
	// by Activate.
	Hibernations int64 // pBoxes compacted by Manager.Hibernate
	Wakes        int64 // hibernated pBoxes transparently woken by Activate
	Hibernated   int64 // pBoxes currently hibernated (gauge)

	// VerdictLatency distributes the wall-clock length of the verdictMu
	// critical sections (lock wait + detection + action scheduling).
	VerdictLatency LatencyHistogram

	Crossings int64 // conceptual kernel crossings (same as Crossings())
}

// SelfStats assembles the self-telemetry report from atomics alone — no
// locks, no flushes; safe to poll at any frequency.
//
//pbox:snapshotreader
func (m *Manager) SelfStats() SelfStats {
	st := SelfStats{
		SnapshotInterval:      m.opts.SnapshotInterval,
		SnapshotBuilds:        m.self.snapshotBuilds.Load(),
		SnapshotCacheHits:     m.self.snapshotHits.Load(),
		SnapshotLastBuild:     time.Duration(m.self.snapshotLastBuildNs.Load()),
		SnapshotBuildTotal:    time.Duration(m.self.snapshotBuildTotalNs.Load()),
		SpoolFlushes:          m.self.spoolFlushes.Load(),
		SpoolFlushedEvents:    m.self.spoolFlushedEvents.Load(),
		SpoolSweeps:           m.self.spoolSweeps.Load(),
		SpoolOverflows:        m.self.spoolOverflows.Load(),
		ContentionClaims:      m.self.contentionClaims.Load(),
		ContentionRevocations: m.self.contentionRevokes.Load(),
		Hibernations:          m.self.hibernations.Load(),
		Wakes:                 m.self.wakes.Load(),
		Hibernated:            m.self.hibernated.Load(),
		VerdictLatency:        m.self.verdictLatency.snapshot(),
		Crossings:             m.crossings.Load(),
		AdaptiveTopology:      m.opts.AdaptiveTopology,
		SpoolCapacity:         int(m.spoolCap.Load()),
		TopologyTicks:         m.topoStats.ticks.Load(),
		ShardResizes:          m.topoStats.shardResizes.Load(),
		SpoolResizes:          m.topoStats.spoolResizes.Load(),
	}
	if v := m.snap.view.Load(); v != nil {
		st.SnapshotEpoch = v.Epoch
		st.SnapshotAge = time.Duration(m.opts.Now() - v.BuiltAt)
	}
	st.ContentionStickySlots = m.contention.stickySlots()
	ss := m.shards.Load()
	st.Shards = len(ss.shards)
	st.ShardLockAcquisitions = m.topoStats.shardLocksRetired.Load()
	for _, s := range ss.shards {
		n := s.locks.Load()
		st.ShardLockAcquisitions += n
		if n > st.ShardLockMax {
			st.ShardLockMax = n
		}
	}
	if d := m.topoStats.decisions.Load(); d != nil {
		st.TopologyDecisions = *d
	}
	return st
}
