package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ratioHistorySize bounds the per-activity interference-ratio ring buffer
// used by the tail and max metrics.
const ratioHistorySize = 64

// PBox is one performance isolation domain. Applications interact with a
// PBox only through Manager methods and treat the handle as opaque.
//
// Field grouping follows the lock architecture of DESIGN.md §8: the
// lifecycle fields the event hot path checks are atomics (readable with no
// lock at all); the event-structural maps live under the pBox's own mu; the
// per-activity accounting lives under the actMu leaf lock; the penalty
// plumbing lives under the penMu leaf lock; and the binding association is
// part of the manager's registry.
type PBox struct {
	id   int
	rule IsolationRule
	mgr  *Manager
	// label is a diagnostic name (connection or task name) set via
	// Manager.SetLabel; it appears in Snapshots and telemetry. An atomic
	// pointer so SetLabel never contends with the event path.
	label atomic.Pointer[string]

	// state and activityStart are atomics so Update can reject events
	// outside an active window — the dominant disabled/idle case — with a
	// single load and zero locks. Writes happen with mu held (setState),
	// so mu holders see a stable value.
	state         atomic.Int32
	activityStart atomic.Int64 // manager-clock ns; valid while StateActive

	// mu guards the pBox's event-structural state (holders, preparing)
	// and orders its lifecycle transitions. It nests inside the manager
	// registry lock and outside shard locks; see DESIGN.md §8.
	mu sync.Mutex
	// holders tracks virtual resources currently held by this pBox
	// (the holder_map of Algorithm 1), with nesting counts and the
	// earliest hold timestamp, which line 23 of Algorithm 1 compares
	// against each waiter's arrival time.
	holders map[ResourceKey]holdInfo
	// preparing tracks outstanding PREPARE events (keys this pBox is
	// currently deferred on) so stale records can be removed at freeze
	// and so penalties are never applied mid-wait (a sleep during a wait
	// would pollute the deferring-time metric and re-trigger detection —
	// the cascaded-penalty hazard of Section 4.4.1).
	preparing map[ResourceKey]int

	// actMu is a leaf lock guarding the activity accounting: the live
	// deferring time, the cross-activity history, and the blame map.
	// It is a separate lock (not mu) because the detection path must
	// read a *victim's* accounting while holding the *releasing* pBox's
	// mu — taking a second pBox mu there would deadlock, a second leaf
	// cannot. Nothing is ever acquired while holding an actMu, and no
	// two actMus are ever held together.
	actMu     sync.Mutex
	deferTime int64 // deferring time accumulated in the current activity

	// History across frozen activities, for the pBox-level monitor.
	totalDefer int64
	totalExec  int64
	activities int
	// history is a ring of recent per-activity (defer, exec) pairs; the
	// windowed aggregate ratio sum(td)/sum(te-td) drives the adaptive
	// penalty score and the tail/max rule metrics.
	history  []activityRecord
	histPos  int
	histFull bool

	// blame attributes this pBox's deferring time to the pBoxes whose
	// holds overlapped its waits, per resource; the pBox-level monitor
	// penalizes the largest contributor when the average interference
	// level approaches the goal. Reset at activate.
	blame map[*PBox]blameInfo

	// pendingPenalty is delay (ns) scheduled by take_action but not yet
	// executed because the pBox still held resources at decision time.
	// It is an atomic so every event's safe-point check is one load in
	// the (overwhelmingly common) no-penalty case; writes happen with
	// penMu held.
	pendingPenalty atomic.Int64

	// penMu is a leaf lock guarding the penalty plumbing below. Like
	// actMu it exists so the verdict path can schedule a penalty on a
	// *different* pBox than the one whose mu it holds.
	penMu sync.Mutex
	// pendingAttrVictim/Key identify the victim and resource whose
	// detection scheduled the pending penalty — well-defined because
	// take_action never stacks a second action onto an unserved penalty.
	// servingAttr* are the copy taken when the penalty is consumed, so the
	// serve attributes correctly even if a new action lands mid-sleep.
	pendingAttrVictim int
	pendingAttrKey    ResourceKey
	servingAttrVictim int
	servingAttrKey    ResourceKey
	// penaltyUntil is the requeue deadline for shared-thread pBoxes.
	penaltyUntil int64
	sharedThread bool
	// penaltySleeping marks that the pBox's goroutine is currently
	// executing a penalty sleep, so concurrent bookkeeping can tell
	// penalty delay apart from real execution.
	penaltySleeping bool

	// Per-pBox statistics (Figures 13 and 14).
	penaltiesReceived int
	penaltyTotal      int64

	// boundKey is the association key set by unbind_pbox for event-driven
	// hand-off (not a virtual resource key). Guarded by the manager's
	// registry lock along with the bindings table it indexes.
	boundKey    uintptr
	hasBoundKey bool
}

// stateIs reports whether the pBox is currently in s, with a single atomic
// load. Safe with no locks held; callers needing the state to stay put
// across a sequence must hold p.mu.
//
//pbox:hotpath
func (p *PBox) stateIs(s State) bool { return State(p.state.Load()) == s }

// setState publishes a lifecycle transition. Caller holds p.mu.
func (p *PBox) setState(s State) { p.state.Store(int32(s)) }

type holdInfo struct {
	count int
	since int64
}

// activityRecord is one finished activity's accounting.
type activityRecord struct {
	td, te int64
}

// blameInfo accumulates one blocker's contribution to a victim's deferring
// time.
type blameInfo struct {
	deferNs int64
	key     ResourceKey
}

// ID returns the pBox identifier (the psid of the paper's API).
func (p *PBox) ID() int { return p.id }

// Rule returns the isolation rule the pBox was created with.
func (p *PBox) Rule() IsolationRule { return p.rule }

// State returns the current lifecycle state.
func (p *PBox) State() State { return State(p.state.Load()) }

// labelString returns the diagnostic label ("" when unset).
func (p *PBox) labelString() string {
	if l := p.label.Load(); l != nil {
		return *l
	}
	return ""
}

// Snapshot is a read-only view of a pBox's accounting, used by tests, the
// experiment harness, and the telemetry exporter's /pboxes endpoint.
type Snapshot struct {
	ID                int
	Label             string
	State             State
	Goal              float64 // the rule's isolation level
	Metric            Metric
	Activities        int
	TotalDefer        time.Duration
	TotalExec         time.Duration
	InterferenceLevel float64 // aggregate defer ratio per the rule's metric
	PenaltiesReceived int
	PenaltyTotal      time.Duration // served penalty time
}

// Snapshot returns the pBox's current accounting.
func (p *PBox) Snapshot() Snapshot { return p.snapshot() }

// snapshot builds the snapshot under the pBox's leaf locks (taken one at a
// time); it needs no manager-wide lock.
func (p *PBox) snapshot() Snapshot {
	s := Snapshot{
		ID:     p.id,
		Label:  p.labelString(),
		State:  State(p.state.Load()),
		Goal:   p.rule.Level,
		Metric: p.rule.Metric,
	}
	p.actMu.Lock()
	s.Activities = p.activities
	s.TotalDefer = time.Duration(p.totalDefer)
	s.TotalExec = time.Duration(p.totalExec)
	s.InterferenceLevel = p.interferenceLevelLocked()
	p.actMu.Unlock()
	p.penMu.Lock()
	s.PenaltiesReceived = p.penaltiesReceived
	s.PenaltyTotal = time.Duration(p.penaltyTotal)
	p.penMu.Unlock()
	return s
}

// interferenceLevelLocked computes the pBox's aggregate interference level
// according to its rule's metric. Caller holds p.actMu.
func (p *PBox) interferenceLevelLocked() float64 {
	switch p.rule.Metric {
	case MetricTail:
		return p.ratioPercentileLocked(0.95)
	case MetricMax:
		return p.ratioPercentileLocked(1.0)
	default:
		return averageRatio(p.totalDefer, p.totalExec)
	}
}

// currentRatioLocked computes the pBox's recent interference level including
// the in-flight activity — the s(i) score used by the adaptive penalty
// (Section 4.4.2). The paper computes averages "until the i-th action" over
// its 90-second runs; at the reproduction's millisecond scale an all-time
// cumulative average reacts too slowly for the feedback loop to converge, so
// the score is windowed over the recent per-activity ratio history plus the
// live activity. Caller holds p.actMu.
func (p *PBox) currentRatioLocked(now int64) float64 {
	var td, te int64
	for _, r := range p.history {
		td += r.td
		te += r.te
	}
	if p.stateIs(StateActive) {
		ltd := p.deferTime
		lte := now - p.activityStart.Load()
		if ltd > lte {
			ltd = lte
		}
		td += ltd
		te += lte
	}
	return averageRatio(td, te)
}

// maxRatio caps an interference level: an activity that spent (essentially)
// all its time deferred reads as 100× — beyond that the extra magnitude
// carries no signal and would poison windowed averages and the gap policy.
const maxRatio = 100.0

// averageRatio computes Tf = Td / (Te - Td) with guards against the
// degenerate cases (no execution yet, defer >= exec) and the maxRatio cap.
func averageRatio(td, te int64) float64 {
	if te <= 0 || td <= 0 {
		return 0
	}
	if td >= te {
		return maxRatio
	}
	r := float64(td) / float64(te-td)
	if r > maxRatio {
		return maxRatio
	}
	return r
}

// recordActivityLocked folds a finished activity into the history rings.
// Caller holds p.actMu.
func (p *PBox) recordActivityLocked(td, te int64) {
	p.totalDefer += td
	p.totalExec += te
	p.activities++
	rec := activityRecord{td: td, te: te}
	if len(p.history) < ratioHistorySize {
		p.history = append(p.history, rec)
	} else {
		p.history[p.histPos] = rec
		p.histPos = (p.histPos + 1) % ratioHistorySize
		p.histFull = true
	}
}

// ratioPercentileLocked returns the q-quantile (0<q<=1) of the per-activity
// ratio history. Caller holds p.actMu.
func (p *PBox) ratioPercentileLocked(q float64) float64 {
	if len(p.history) == 0 {
		return 0
	}
	tmp := make([]float64, 0, len(p.history))
	for _, r := range p.history {
		tmp = append(tmp, averageRatio(r.td, r.te))
	}
	sort.Float64s(tmp)
	idx := int(q*float64(len(tmp))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

// waiter is one entry in the competitor map: a pBox that issued PREPARE on a
// resource and has not yet issued ENTER.
type waiter struct {
	pbox  *PBox
	since int64
}

// competitorList holds the pBoxes waiting for one resource. The paper keeps
// a list per resource in a hashtable; appends are O(1) and removals are
// linear in the number of waiters (Section 6.6 discusses why that is
// acceptable).
type competitorList struct {
	waiters []waiter
}

func (c *competitorList) add(w waiter) {
	c.waiters = append(c.waiters, w)
}

// removeFor removes the first record belonging to p and returns it.
func (c *competitorList) removeFor(p *PBox) (waiter, bool) {
	for i, w := range c.waiters {
		if w.pbox == p {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return w, true
		}
	}
	return waiter{}, false
}

// removeAllFor removes every record belonging to p.
func (c *competitorList) removeAllFor(p *PBox) {
	out := c.waiters[:0]
	for _, w := range c.waiters {
		if w.pbox != p {
			out = append(out, w)
		}
	}
	c.waiters = out
}
