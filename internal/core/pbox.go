package core

import (
	"sort"
	"time"
)

// ratioHistorySize bounds the per-activity interference-ratio ring buffer
// used by the tail and max metrics.
const ratioHistorySize = 64

// PBox is one performance isolation domain. All mutable fields are guarded
// by the owning Manager's lock; applications interact with a PBox only
// through Manager methods and treat the handle as opaque.
type PBox struct {
	id   int
	rule IsolationRule
	mgr  *Manager
	// label is a diagnostic name (connection or task name) set via
	// Manager.SetLabel; it appears in Snapshots and telemetry.
	label string

	state         State
	activityStart int64 // manager-clock ns; valid while StateActive
	deferTime     int64 // deferring time accumulated in the current activity

	// holders tracks virtual resources currently held by this pBox
	// (the holder_map of Algorithm 1), with nesting counts and the
	// earliest hold timestamp, which line 23 of Algorithm 1 compares
	// against each waiter's arrival time.
	holders map[ResourceKey]holdInfo
	// preparing tracks outstanding PREPARE events (keys this pBox is
	// currently deferred on) so stale records can be removed at freeze
	// and so penalties are never applied mid-wait (a sleep during a wait
	// would pollute the deferring-time metric and re-trigger detection —
	// the cascaded-penalty hazard of Section 4.4.1).
	preparing map[ResourceKey]int

	// History across frozen activities, for the pBox-level monitor.
	totalDefer int64
	totalExec  int64
	activities int
	// history is a ring of recent per-activity (defer, exec) pairs; the
	// windowed aggregate ratio sum(td)/sum(te-td) drives the adaptive
	// penalty score and the tail/max rule metrics.
	history  []activityRecord
	histPos  int
	histFull bool

	// blame attributes this pBox's deferring time to the pBoxes whose
	// holds overlapped its waits, per resource; the pBox-level monitor
	// penalizes the largest contributor when the average interference
	// level approaches the goal. Reset at activate.
	blame map[*PBox]blameInfo

	// pendingPenalty is delay (ns) scheduled by take_action but not yet
	// executed because the pBox still held resources at decision time.
	pendingPenalty int64
	// pendingAttrVictim/Key identify the victim and resource whose
	// detection scheduled the pending penalty — well-defined because
	// take_action never stacks a second action onto an unserved penalty.
	// servingAttr* are the copy taken when the penalty is consumed, so the
	// serve attributes correctly even if a new action lands mid-sleep.
	pendingAttrVictim int
	pendingAttrKey    ResourceKey
	servingAttrVictim int
	servingAttrKey    ResourceKey
	// penaltyUntil is the requeue deadline for shared-thread pBoxes.
	penaltyUntil int64
	sharedThread bool
	// penaltySleeping marks that the pBox's goroutine is currently
	// executing a penalty sleep, so concurrent bookkeeping can tell
	// penalty delay apart from real execution.
	penaltySleeping bool

	// Per-pBox statistics (Figures 13 and 14).
	penaltiesReceived int
	penaltyTotal      int64

	// boundKey is the association key set by unbind_pbox for event-driven
	// hand-off (not a virtual resource key).
	boundKey    uintptr
	hasBoundKey bool
}

type holdInfo struct {
	count int
	since int64
}

// activityRecord is one finished activity's accounting.
type activityRecord struct {
	td, te int64
}

// blameInfo accumulates one blocker's contribution to a victim's deferring
// time.
type blameInfo struct {
	deferNs int64
	key     ResourceKey
}

// ID returns the pBox identifier (the psid of the paper's API).
func (p *PBox) ID() int { return p.id }

// Rule returns the isolation rule the pBox was created with.
func (p *PBox) Rule() IsolationRule { return p.rule }

// State returns the current lifecycle state.
func (p *PBox) State() State {
	p.mgr.mu.Lock()
	defer p.mgr.mu.Unlock()
	return p.state
}

// Snapshot is a read-only view of a pBox's accounting, used by tests, the
// experiment harness, and the telemetry exporter's /pboxes endpoint.
type Snapshot struct {
	ID                int
	Label             string
	State             State
	Goal              float64 // the rule's isolation level
	Metric            Metric
	Activities        int
	TotalDefer        time.Duration
	TotalExec         time.Duration
	InterferenceLevel float64 // aggregate defer ratio per the rule's metric
	PenaltiesReceived int
	PenaltyTotal      time.Duration // served penalty time
}

// Snapshot returns the pBox's current accounting.
func (p *PBox) Snapshot() Snapshot {
	p.mgr.mu.Lock()
	defer p.mgr.mu.Unlock()
	return p.snapshotLocked()
}

// snapshotLocked builds the snapshot. Caller holds mgr.mu.
func (p *PBox) snapshotLocked() Snapshot {
	return Snapshot{
		ID:                p.id,
		Label:             p.label,
		State:             p.state,
		Goal:              p.rule.Level,
		Metric:            p.rule.Metric,
		Activities:        p.activities,
		TotalDefer:        time.Duration(p.totalDefer),
		TotalExec:         time.Duration(p.totalExec),
		InterferenceLevel: p.interferenceLevelLocked(),
		PenaltiesReceived: p.penaltiesReceived,
		PenaltyTotal:      time.Duration(p.penaltyTotal),
	}
}

// interferenceLevelLocked computes the pBox's aggregate interference level
// according to its rule's metric. Caller holds mgr.mu.
func (p *PBox) interferenceLevelLocked() float64 {
	switch p.rule.Metric {
	case MetricTail:
		return p.ratioPercentileLocked(0.95)
	case MetricMax:
		return p.ratioPercentileLocked(1.0)
	default:
		return averageRatio(p.totalDefer, p.totalExec)
	}
}

// currentRatioLocked computes the pBox's recent interference level including
// the in-flight activity — the s(i) score used by the adaptive penalty
// (Section 4.4.2). The paper computes averages "until the i-th action" over
// its 90-second runs; at the reproduction's millisecond scale an all-time
// cumulative average reacts too slowly for the feedback loop to converge, so
// the score is windowed over the recent per-activity ratio history plus the
// live activity. Caller holds mgr.mu.
func (p *PBox) currentRatioLocked(now int64) float64 {
	var td, te int64
	for _, r := range p.history {
		td += r.td
		te += r.te
	}
	if p.state == StateActive {
		ltd := p.deferTime
		lte := now - p.activityStart
		if ltd > lte {
			ltd = lte
		}
		td += ltd
		te += lte
	}
	return averageRatio(td, te)
}

// maxRatio caps an interference level: an activity that spent (essentially)
// all its time deferred reads as 100× — beyond that the extra magnitude
// carries no signal and would poison windowed averages and the gap policy.
const maxRatio = 100.0

// averageRatio computes Tf = Td / (Te - Td) with guards against the
// degenerate cases (no execution yet, defer >= exec) and the maxRatio cap.
func averageRatio(td, te int64) float64 {
	if te <= 0 || td <= 0 {
		return 0
	}
	if td >= te {
		return maxRatio
	}
	r := float64(td) / float64(te-td)
	if r > maxRatio {
		return maxRatio
	}
	return r
}

// recordActivityLocked folds a finished activity into the history rings.
// Caller holds mgr.mu.
func (p *PBox) recordActivityLocked(td, te int64) {
	p.totalDefer += td
	p.totalExec += te
	p.activities++
	rec := activityRecord{td: td, te: te}
	if len(p.history) < ratioHistorySize {
		p.history = append(p.history, rec)
	} else {
		p.history[p.histPos] = rec
		p.histPos = (p.histPos + 1) % ratioHistorySize
		p.histFull = true
	}
}

// ratioPercentileLocked returns the q-quantile (0<q<=1) of the per-activity
// ratio history. Caller holds mgr.mu.
func (p *PBox) ratioPercentileLocked(q float64) float64 {
	if len(p.history) == 0 {
		return 0
	}
	tmp := make([]float64, 0, len(p.history))
	for _, r := range p.history {
		tmp = append(tmp, averageRatio(r.td, r.te))
	}
	sort.Float64s(tmp)
	idx := int(q*float64(len(tmp))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

// waiter is one entry in the competitor map: a pBox that issued PREPARE on a
// resource and has not yet issued ENTER.
type waiter struct {
	pbox  *PBox
	since int64
}

// competitorList holds the pBoxes waiting for one resource. The paper keeps
// a list per resource in a hashtable; appends are O(1) and removals are
// linear in the number of waiters (Section 6.6 discusses why that is
// acceptable).
type competitorList struct {
	waiters []waiter
}

func (c *competitorList) add(w waiter) {
	c.waiters = append(c.waiters, w)
}

// removeFor removes the first record belonging to p and returns it.
func (c *competitorList) removeFor(p *PBox) (waiter, bool) {
	for i, w := range c.waiters {
		if w.pbox == p {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return w, true
		}
	}
	return waiter{}, false
}

// removeAllFor removes every record belonging to p.
func (c *competitorList) removeAllFor(p *PBox) {
	out := c.waiters[:0]
	for _, w := range c.waiters {
		if w.pbox != p {
			out = append(out, w)
		}
	}
	c.waiters = out
}
