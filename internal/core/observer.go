package core

import "time"

// Observer receives live notifications of manager activity: pBox lifecycle,
// state events, detection verdicts, penalty actions, and served penalty
// durations. It is the hook layer the telemetry subsystem
// (internal/telemetry) builds on; the paper notes (Section 8) that the pBox
// event stream doubles as a diagnosis aid, and these callbacks are that
// stream surfaced programmatically rather than via post-hoc trace dumps.
//
// All callbacks except PenaltyServed are invoked synchronously while manager
// locks are held (the calling pBox's mutex, and on verdict callbacks the
// shard and verdict locks too — see DESIGN.md §8), so they observe a
// consistent per-pBox ordering: PBoxCreated precedes every other callback
// for an id, nothing follows PBoxReleased for it, and a PenaltyAction is
// always preceded by its Detection. In exchange, implementations must be
// fast, must not block, and must not call back into the Manager (doing so
// deadlocks) — the one exception is ResourceName, which uses a dedicated
// per-shard name lock precisely so observers can resolve resource names for
// labels. Counter bumps and other atomic updates are the intended
// use. PenaltyServed is invoked on the penalized pBox's own goroutine after
// the delay completes, outside the lock.
//
// An Observer that additionally implements AttributionObserver receives the
// per-(culprit, victim, resource) attribution stream as well.
//
// A nil Observer (the default) is checked before every callback site, so the
// disabled path costs one predictable branch and zero allocations — see
// BenchmarkObserverDisabled.
type Observer interface {
	// PBoxCreated fires when create_pbox succeeds.
	PBoxCreated(id int, rule IsolationRule)
	// PBoxReleased fires when release_pbox destroys the pBox.
	PBoxReleased(id int)
	// StateEvent fires for every accepted update_pbox call (after the
	// EventFilter, only while the pBox is active).
	StateEvent(pboxID int, key ResourceKey, ev EventType)
	// ActivityEnd fires at freeze_pbox with the finished activity's
	// deferring and execution time.
	ActivityEnd(pboxID int, deferNs, execNs int64)
	// Detection fires whenever Algorithm 1 or the pBox-level monitor
	// reaches a verdict that noisy interferes with victim on key, with the
	// projected interference level that crossed the goal. It fires even
	// when the subsequent action is suppressed (pending penalty, cooldown).
	Detection(noisyID, victimID int, key ResourceKey, projected float64)
	// PenaltyAction fires when take_action schedules a penalty of the
	// given length on noisy, chosen by policy.
	PenaltyAction(noisyID, victimID int, key ResourceKey, policy PolicyKind, length time.Duration)
	// PenaltyServed fires after a penalty delay of length d has been
	// slept on the pBox's goroutine (shared-thread requeue penalties are
	// not reported here; they surface through Gate/ErrPenalized).
	PenaltyServed(pboxID int, d time.Duration)
}

// EventTimeObserver is an optional extension for observers that record event
// timestamps (the flight recorder, the capture recorder). With the two-tier
// ingestion path (DESIGN.md §10) a spooled event is delivered to the observer
// at flush time, which can lag the event by the spool's fill interval; an
// observer stamping its own clock at callback time would record flush time,
// not event time. An Observer that also implements EventTimeObserver receives
// every state event — direct slow-path deliveries and spool replays alike —
// through StateEventAt instead of StateEvent, carrying the manager-clock
// timestamp the event's Algorithm 1 bookkeeping used. That single-timestamp
// property is what makes capture logs replayable: a replay that re-issues the
// event at exactly atNs reproduces the manager's arithmetic bit for bit
// (internal/capture builds on this). The same locking and no-reentry rules
// as StateEvent apply.
type EventTimeObserver interface {
	Observer
	// StateEventAt is StateEvent carrying the manager-clock nanosecond
	// timestamp the event was (or is being) accounted at: issue time for
	// direct deliveries, recorded event time for spool replays.
	StateEventAt(pboxID int, key ResourceKey, ev EventType, atNs int64)
}

// LifecycleObserver is an optional extension for observers that need
// manager-clock timestamps of activity-window boundaries and the
// shared-thread marking — together with EventTimeObserver it makes the
// callback stream complete enough to drive an offline replay
// (internal/capture). PBoxActivated and PBoxFrozen fire while the pBox's
// mutex is held (same rules as StateEvent: fast, no blocking, no manager
// re-entry); PBoxSharedChanged fires under the pBox's penalty lock, a §8
// leaf, so the same no-reentry rule applies.
type LifecycleObserver interface {
	Observer
	// PBoxActivated fires inside activate_pbox with the manager-clock
	// timestamp stored as the activity's start (after any pending penalty
	// from the previous activity has been served).
	PBoxActivated(pboxID int, atNs int64)
	// PBoxFrozen fires inside freeze_pbox with the manager-clock timestamp
	// that closes the activity window; the matching ActivityEnd follows it.
	PBoxFrozen(pboxID int, atNs int64)
	// PBoxSharedChanged fires when the pBox's shared-thread marking flips
	// (MarkShared, SetShared, or a worker bind with a different flag).
	PBoxSharedChanged(pboxID int, shared bool)
}
