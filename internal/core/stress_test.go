package core

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentManagerStress drives a real Manager (real clock, tiny real
// penalties) from many goroutines at once: per-connection pBoxes running
// activities against shared resources, with creates/releases interleaved.
// Run under -race this covers the manager's locking discipline end to end.
func TestConcurrentManagerStress(t *testing.T) {
	m := NewManager(Options{
		MinPenalty: 50 * time.Microsecond,
		MaxPenalty: 200 * time.Microsecond,
	})
	keys := []ResourceKey{1, 2, 3}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p, err := m.Create(DefaultRule())
			if err != nil {
				t.Error(err)
				return
			}
			defer func() {
				if err := m.Release(p); err != nil {
					t.Error(err)
				}
			}()
			for i := 0; i < 60; i++ {
				m.Activate(p)
				key := keys[(g+i)%len(keys)]
				m.Update(p, key, Prepare)
				m.Update(p, key, Enter)
				m.Update(p, key, Hold)
				if i%3 == 0 {
					time.Sleep(50 * time.Microsecond)
				}
				m.Update(p, key, Unhold)
				m.Freeze(p)
			}
		}(g)
	}
	wg.Wait()
	if m.Live() != 0 {
		t.Fatalf("live pboxes after stress = %d", m.Live())
	}
	for _, key := range keys {
		if m.Waiters(key) != 0 || m.Holders(key) != 0 {
			t.Fatalf("dangling bookkeeping on key %v", key)
		}
	}
}

// TestConcurrentBindStress drives the event-driven worker shim from several
// worker goroutines binding/unbinding a shared set of pBoxes.
func TestConcurrentBindStress(t *testing.T) {
	m := NewManager(Options{})
	const nConns = 4
	for i := 0; i < nConns; i++ {
		p, err := m.Create(DefaultRule())
		if err != nil {
			t.Fatal(err)
		}
		m.MarkShared(p)
		m.Associate(p, uintptr(0x100+i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := m.NewWorker()
			for i := 0; i < 100; i++ {
				key := uintptr(0x100 + (w+i)%nConns)
				p, err := worker.Bind(key, BindShared)
				if err != nil {
					continue // penalized or taken — requeue semantics
				}
				m.Activate(p)
				m.Update(p, ResourceKey(9), Hold)
				m.Update(p, ResourceKey(9), Unhold)
				m.Freeze(p)
				if _, err := worker.Unbind(key, BindShared); err != nil {
					t.Errorf("unbind: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestPenaltySleepRunsOffManagerLock: while one pBox serves a (real) penalty
// sleep, other pBoxes must be able to use the manager — the penalty must
// never be served holding the manager's mutex.
func TestPenaltySleepRunsOffManagerLock(t *testing.T) {
	m := NewManager(Options{
		MinPenalty: 5 * time.Millisecond,
		MaxPenalty: 5 * time.Millisecond,
	})
	noisy, _ := m.Create(DefaultRule())
	victim, _ := m.Create(DefaultRule())
	m.Activate(noisy)
	m.Activate(victim)
	key := ResourceKey(5)
	m.Update(noisy, key, Hold)
	m.Update(victim, key, Prepare)
	time.Sleep(4 * time.Millisecond)

	done := make(chan struct{})
	go func() {
		m.Update(noisy, key, Unhold) // serves a 5ms penalty inline
		close(done)
	}()
	time.Sleep(time.Millisecond) // the penalty sleep is in progress
	t0 := time.Now()
	other, _ := m.Create(DefaultRule())
	m.Activate(other)
	m.Freeze(other)
	if el := time.Since(t0); el > 3*time.Millisecond {
		t.Fatalf("manager blocked for %v during a penalty sleep", el)
	}
	<-done
	if noisy.Snapshot().PenaltiesReceived != 1 {
		t.Fatal("penalty was not served")
	}
}
