package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentManagerStress drives a real Manager (real clock, tiny real
// penalties) from many goroutines at once: per-connection pBoxes running
// activities against shared resources, with creates/releases interleaved.
// Run under -race this covers the manager's locking discipline end to end.
func TestConcurrentManagerStress(t *testing.T) {
	m := NewManager(Options{
		MinPenalty: 50 * time.Microsecond,
		MaxPenalty: 200 * time.Microsecond,
	})
	keys := []ResourceKey{1, 2, 3}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p, err := m.Create(DefaultRule())
			if err != nil {
				t.Error(err)
				return
			}
			defer func() {
				if err := m.Release(p); err != nil {
					t.Error(err)
				}
			}()
			for i := 0; i < 60; i++ {
				m.Activate(p)
				key := keys[(g+i)%len(keys)]
				m.Update(p, key, Prepare)
				m.Update(p, key, Enter)
				m.Update(p, key, Hold)
				if i%3 == 0 {
					time.Sleep(50 * time.Microsecond)
				}
				m.Update(p, key, Unhold)
				m.Freeze(p)
			}
		}(g)
	}
	wg.Wait()
	if m.Live() != 0 {
		t.Fatalf("live pboxes after stress = %d", m.Live())
	}
	for _, key := range keys {
		if m.Waiters(key) != 0 || m.Holders(key) != 0 {
			t.Fatalf("dangling bookkeeping on key %v", key)
		}
	}
}

// TestConcurrentBindStress drives the event-driven worker shim from several
// worker goroutines binding/unbinding a shared set of pBoxes.
func TestConcurrentBindStress(t *testing.T) {
	m := NewManager(Options{})
	const nConns = 4
	for i := 0; i < nConns; i++ {
		p, err := m.Create(DefaultRule())
		if err != nil {
			t.Fatal(err)
		}
		m.MarkShared(p)
		m.Associate(p, uintptr(0x100+i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := m.NewWorker()
			for i := 0; i < 100; i++ {
				key := uintptr(0x100 + (w+i)%nConns)
				p, err := worker.Bind(key, BindShared)
				if err != nil {
					continue // penalized or taken — requeue semantics
				}
				m.Activate(p)
				m.Update(p, ResourceKey(9), Hold)
				m.Update(p, ResourceKey(9), Unhold)
				m.Freeze(p)
				if _, err := worker.Unbind(key, BindShared); err != nil {
					t.Errorf("unbind: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestPenaltySleepRunsOffManagerLock: while one pBox serves a (real) penalty
// sleep, other pBoxes must be able to use the manager — the penalty must
// never be served holding the manager's mutex.
func TestPenaltySleepRunsOffManagerLock(t *testing.T) {
	m := NewManager(Options{
		MinPenalty: 5 * time.Millisecond,
		MaxPenalty: 5 * time.Millisecond,
	})
	noisy, _ := m.Create(DefaultRule())
	victim, _ := m.Create(DefaultRule())
	m.Activate(noisy)
	m.Activate(victim)
	key := ResourceKey(5)
	m.Update(noisy, key, Hold)
	m.Update(victim, key, Prepare)
	time.Sleep(4 * time.Millisecond)

	done := make(chan struct{})
	go func() {
		m.Update(noisy, key, Unhold) // serves a 5ms penalty inline
		close(done)
	}()
	time.Sleep(time.Millisecond) // the penalty sleep is in progress
	t0 := time.Now()
	other, _ := m.Create(DefaultRule())
	m.Activate(other)
	m.Freeze(other)
	if el := time.Since(t0); el > 3*time.Millisecond {
		t.Fatalf("manager blocked for %v during a penalty sleep", el)
	}
	<-done
	if noisy.Snapshot().PenaltiesReceived != 1 {
		t.Fatal("penalty was not served")
	}
}

// reconcileObserver counts the attribution-relevant observer stream with
// atomics only (the callbacks fire under manager locks and must not call
// back into the Manager).
type reconcileObserver struct {
	created, released atomic.Int64
	blockedNs         atomic.Int64
	servedNs          atomic.Int64
	servedForNs       atomic.Int64
}

func (o *reconcileObserver) PBoxCreated(int, IsolationRule)                  { o.created.Add(1) }
func (o *reconcileObserver) PBoxReleased(int)                                { o.released.Add(1) }
func (o *reconcileObserver) StateEvent(int, ResourceKey, EventType)          {}
func (o *reconcileObserver) ActivityEnd(int, int64, int64)                   {}
func (o *reconcileObserver) Detection(int, int, ResourceKey, float64)        {}
func (o *reconcileObserver) PenaltyAction(int, int, ResourceKey, PolicyKind, time.Duration) {}
func (o *reconcileObserver) PenaltyServed(_ int, d time.Duration)            { o.servedNs.Add(int64(d)) }
func (o *reconcileObserver) Blocked(_, _ int, _ ResourceKey, deferNs int64)  { o.blockedNs.Add(deferNs) }
func (o *reconcileObserver) PenaltyServedFor(_, _ int, _ ResourceKey, d time.Duration) {
	o.servedForNs.Add(int64(d))
}

// TestConcurrentStressReconciles runs the full lifecycle mix — concurrent
// Create/Release/Activate/Update/Freeze across 8 worker goroutines, 64 cold
// per-worker resource keys plus a small hot contended set, with attribution
// and tracing on and diagnostic readers (Status, Snapshots, ActionReport)
// polling throughout — then checks the books balance after quiescence:
// every holder and waiter record is gone, and the attribution ledger's
// blocked/served totals equal what the observer stream saw. Cold-key events
// go through per-goroutine Workers (the Tier A spool of spool.go) while
// hot-key events take direct Manager.Update, so the two ingestion tiers
// interleave: round-over-round pBox turnover revokes fast-path claims
// mid-stream and the diagnostic readers force flush-on-read sweeps. Run
// under -race this exercises the sharded lock order and the spool's flush
// serialization end to end.
func TestConcurrentStressReconciles(t *testing.T) {
	obs := &reconcileObserver{}
	m := NewManager(Options{
		MinPenalty:  20 * time.Microsecond,
		MaxPenalty:  100 * time.Microsecond,
		Attribution: true,
		Observer:    obs,
		TraceSize:   512,
	})
	// 8 workers × 8 distinct cold keys each = 64 disjoint resource keys,
	// plus the shared hot set below.
	const (
		workers = 8
		rounds  = 8
	)
	hotKeys := []ResourceKey{0x10, 0x11} // the contended set
	var (
		handleMu sync.Mutex
		handles  []*PBox
	)

	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stopReaders:
				return
			default:
			}
			_ = m.Status()
			_ = m.Snapshots()
			_ = m.ActionReport()
			_ = m.Trace()
			_ = m.Attribution()
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			worker := m.NewWorker()
			for r := 0; r < rounds; r++ {
				p, err := m.Create(DefaultRule())
				if err != nil {
					t.Error(err)
					return
				}
				handleMu.Lock()
				handles = append(handles, p)
				handleMu.Unlock()
				m.SetLabel(p, "w")
				if err := worker.BindDirect(p); err != nil {
					t.Errorf("BindDirect: %v", err)
					return
				}
				for i := 0; i < 20; i++ {
					m.Activate(p)
					cold := ResourceKey(0x1000 + g*8 + i%8)
					worker.Update(cold, Hold)
					hot := hotKeys[(g+i)%len(hotKeys)]
					m.Update(p, hot, Prepare)
					m.Update(p, hot, Enter)
					m.Update(p, hot, Hold)
					if i%4 == 0 {
						time.Sleep(30 * time.Microsecond)
					}
					m.Update(p, hot, Unhold)
					worker.Update(cold, Unhold)
					m.Freeze(p)
				}
				if err := m.Release(p); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stopReaders)
	readers.Wait()

	// Quiescent: the books must balance.
	if live := m.Live(); live != 0 {
		t.Fatalf("live pboxes after stress = %d", live)
	}
	if obs.created.Load() != int64(workers*rounds) || obs.released.Load() != int64(workers*rounds) {
		t.Fatalf("lifecycle stream: created=%d released=%d want %d each",
			obs.created.Load(), obs.released.Load(), workers*rounds)
	}
	for g := 0; g < workers; g++ {
		for i := 0; i < 8; i++ {
			if key := ResourceKey(0x1000 + g*8 + i); m.Waiters(key) != 0 || m.Holders(key) != 0 {
				t.Fatalf("dangling bookkeeping on cold key %#x", uintptr(key))
			}
		}
	}
	for _, key := range hotKeys {
		if m.Waiters(key) != 0 || m.Holders(key) != 0 {
			t.Fatalf("dangling bookkeeping on hot key %#x", uintptr(key))
		}
	}
	if d := m.AttributionDropped(); d != 0 {
		t.Fatalf("attribution ledger dropped %d triples; totals would not reconcile", d)
	}
	var ledgerBlocked, ledgerServed time.Duration
	for _, rec := range m.Attribution() {
		ledgerBlocked += rec.Blocked
		ledgerServed += rec.PenaltyServed
	}
	if got, want := int64(ledgerBlocked), obs.blockedNs.Load(); got != want {
		t.Fatalf("blocked time: ledger=%d observer=%d", got, want)
	}
	if got, want := int64(ledgerServed), obs.servedForNs.Load(); got != want {
		t.Fatalf("served time: ledger=%d attribution observer=%d", got, want)
	}
	if got, want := obs.servedForNs.Load(), obs.servedNs.Load(); got != want {
		t.Fatalf("served time: attribution observer=%d observer=%d", got, want)
	}
	var snapshotServed time.Duration
	for _, p := range handles {
		snapshotServed += p.Snapshot().PenaltyTotal
	}
	if got, want := int64(snapshotServed), obs.servedNs.Load(); got != want {
		t.Fatalf("served time: per-pbox snapshots=%d observer=%d", got, want)
	}
}
