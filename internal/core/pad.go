package core

// Cache-line padding helpers (DESIGN.md §13). The manager's hottest shared
// state — the contention-slot table, the shard stripes, the per-worker spool
// headers — is written by many OS threads at once. Two logically independent
// 8-byte fields that land on one coherence line turn that independence into
// a cache-line ping-pong: every write by one core invalidates the line in
// every other core's cache, and the "uncontended" paths serialize on the
// memory system instead of on locks. The helpers here space such fields a
// full line apart so independence in the locking design stays independence
// in the hardware.
//
// The cost is memory only: padding the 1024-slot contention table grows it
// from 8 KiB to 64 KiB per manager, and each shard/spool grows by at most
// two lines. BENCH_scale.json carries padded-versus-unpadded rows (the
// benchmark-only Options.NoCachePad switch selects the old adjacent layout)
// so the win is measured, not assumed.

// cacheLineSize is the assumed coherence granularity. 64 bytes is correct
// for every amd64 and the common arm64 server parts; on the rare 128-byte
// platforms the padding is half-effective but never wrong.
const cacheLineSize = 64

// cacheLinePad is an anonymous spacer field: placing one between two field
// groups guarantees the groups do not share a line (the second group may
// still share its line with whatever follows the struct in memory, which is
// why hot structs also end with one).
type cacheLinePad [cacheLineSize]byte

// padWords is the slot stride, in 8-byte words, that places consecutive
// contention-table slots on distinct cache lines.
const padWords = cacheLineSize / 8
